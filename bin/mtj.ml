(* The mtj command-line tool.

   Subcommands:
     list              enumerate the benchmark registry
     run               run a benchmark (or source file) under a VM config,
                       with phase breakdown and JIT statistics
     trace             dump the compiled JIT traces of a run
     serve             multi-tenant serving mode: stream a seeded Zipf mix
                       of short requests onto worker domains, with the
                       cross-context shared JIT code cache on or off
     exec              execute a pylite / rklite source file and print its
                       program output *)

open Cmdliner
module R = Mtj_harness.Runner
module B = Mtj_benchmarks.Registry

let config_conv =
  let parse s =
    match s with
    | "cpython" -> Ok R.Cpython
    | "pypy-nojit" -> Ok R.Pypy_nojit
    | "pypy" -> Ok R.Pypy_jit
    | "pypy-2tier" -> Ok R.Pypy_tiered
    | "pypy-1tier" -> Ok R.Pypy_baseline
    | "racket" -> Ok R.Racket
    | "pycket-nojit" -> Ok R.Pycket_nojit
    | "pycket" -> Ok R.Pycket_jit
    | "c" -> Ok R.Native_c
    | other -> Error (`Msg ("unknown VM config: " ^ other))
  in
  Arg.conv (parse, fun fmt c -> Format.pp_print_string fmt (R.config_name c))

(* --- list --- *)

let list_cmd =
  let doc = "List the benchmark registry" in
  let run () =
    Printf.printf "%-20s %-4s %-6s %s\n" "name" "lang" "suite" "regime";
    Printf.printf "%s\n" (String.make 90 '-');
    List.iter
      (fun (b : B.bench) ->
        Printf.printf "%-20s %-4s %-6s %s\n" b.B.name
          (match b.B.lang with B.Py -> "py" | B.Rk -> "rk")
          (match b.B.suite with B.Pypy_suite -> "pypy" | B.Clbg -> "clbg")
          b.B.regime)
      B.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- run --- *)

let bench_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK")

let benches_arg =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"BENCHMARK")

let jobs_arg =
  Arg.(value & opt int 0
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"worker domains for multi-benchmark runs (0 = auto: \
                 \\$(b,MTJ_JOBS) or the hardware's recommended count)")

let config_arg =
  Arg.(value & opt config_conv R.Pypy_jit & info [ "vm" ] ~docv:"VM"
         ~doc:"VM configuration: cpython, pypy-nojit, pypy, pypy-2tier, \
               pypy-1tier, racket, pycket-nojit, pycket, c")

let budget_arg =
  Arg.(value & opt int R.default_budget
       & info [ "budget" ] ~docv:"INSNS" ~doc:"instruction budget")

let threaded_arg =
  let mode = Arg.enum [ ("on", true); ("off", false) ] in
  Arg.(value & opt (some mode) None
       & info [ "threaded-interp" ] ~docv:"on|off"
           ~doc:"threaded interpreter dispatch: translate each code object \
                 once into an array of pre-bound handler closures (default \
                 on, or \\$(b,MTJ_THREADED_INTERP)); simulated counters are \
                 identical either way, only host wall time changes")

let apply_threaded = function Some b -> R.set_threaded_interp b | None -> ()

let frame_pool_arg =
  let mode = Arg.enum [ ("on", true); ("off", false) ] in
  Arg.(value & opt (some mode) None
       & info [ "frame-pool" ] ~docv:"on|off"
           ~doc:"frame pooling: recycle dead frames' locals/stack arrays \
                 through per-context free lists (default on, or \
                 \\$(b,MTJ_FRAME_POOL)); simulated counters are identical \
                 either way, only host allocation and wall time change")

let apply_frame_pool = function Some b -> R.set_frame_pool b | None -> ()

let tier_policy_arg =
  let policy =
    Arg.enum
      (List.map
         (fun p -> (Mtj_core.Config.tier_policy_name p, p))
         Mtj_core.Config.all_tier_policies)
  in
  Arg.(value & opt (some policy) None
       & info [ "tier-policy" ] ~docv:"POLICY"
           ~doc:"trace-compilation tier policy: $(b,optimizing) compiles \
                 every trace through the full optimizer (the default), \
                 $(b,baseline) compiles cheap unoptimized traces early and \
                 never promotes, $(b,adaptive) starts at the baseline tier \
                 and promotes hot guard-stable traces (demoting them again \
                 if bridges proliferate); unset, \\$(b,MTJ_TIER_POLICY) \
                 applies")

let apply_tier_policy = function Some p -> R.set_tier_policy p | None -> ()

let with_threaded config =
  let config =
    match R.tier_policy_override () with
    | Some p -> { config with Mtj_core.Config.tier_policy = p }
    | None -> config
  in
  {
    config with
    Mtj_core.Config.threaded_interp = R.threaded_interp ();
    frame_pool = R.frame_pool ();
  }

let show_output_arg =
  Arg.(value & flag & info [ "output" ] ~doc:"print the program's output")

let print_result (r : R.result) show_output =
  Printf.printf "benchmark: %s   vm: %s\n" r.R.bench_name
    (R.config_name r.R.config);
  Printf.printf "status:    %s\n"
    (match r.R.status with
    | R.Ok_run -> "completed"
    | R.Hit_budget -> "stopped at instruction budget"
    | R.Failed e -> "FAILED: " ^ e);
  Printf.printf "instructions: %d   cycles: %.0f   IPC: %.2f   MPKI: %.1f\n"
    r.R.insns r.R.cycles (R.ipc r) (R.mpki r);
  Printf.printf "work (dispatch ticks): %d\n" r.R.ticks;
  Printf.printf "\nphases:\n";
  List.iter
    (fun (p, n) ->
      if n > 0 then
        Printf.printf "  %-12s %10d  (%.1f%%)\n" (Mtj_core.Phase.name p) n
          (100.0 *. R.phase_fraction r p))
    r.R.phase_insns;
  (match r.R.jit with
  | Some j when j.R.traces > 0 ->
      Printf.printf
        "\njit: %d traces (%d bridges), %d deopts, %d aborts, %d IR compiled, \
         hot-95%% = %.1f%%\n"
        j.R.traces j.R.bridges j.R.deopts j.R.aborts j.R.ir_compiled
        j.R.hot_fraction_95
  | _ -> ());
  let g = r.R.gc in
  Printf.printf
    "gc: %d minor, %d major, %d objects allocated, %d freed, %d promoted\n"
    g.Mtj_rt.Gc_sim.minor_collections g.Mtj_rt.Gc_sim.major_collections
    g.Mtj_rt.Gc_sim.allocated_objects g.Mtj_rt.Gc_sim.freed_objects
    g.Mtj_rt.Gc_sim.promoted_objects;
  if r.R.aot_top <> [] then begin
    Printf.printf "\ntop AOT functions called from JIT code:\n";
    List.iteri
      (fun i (src, name, insns) ->
        if i < 6 then
          Printf.printf "  %4.1f%%  %s  %s\n"
            (100.0 *. float_of_int insns /. float_of_int (max 1 r.R.insns))
            src name)
      r.R.aot_top
  end;
  if show_output then begin
    Printf.printf "\nprogram output:\n%s" r.R.output
  end

let run_cmd =
  let doc =
    "Run benchmarks under a VM configuration (several benchmarks run in \
     parallel on worker domains; results print in argument order)"
  in
  let run names vm budget jobs show_output threaded frame_pool tier_policy =
    apply_threaded threaded;
    apply_frame_pool frame_pool;
    apply_tier_policy tier_policy;
    if jobs > 0 then R.set_jobs jobs;
    (* fill the cache in parallel; a benchmark that fails to run is
       reported per-name below, after the others have completed *)
    (try R.prefetch ~budget (List.map (fun n -> (n, vm)) names)
     with Invalid_argument _ -> ());
    let ok = ref true in
    List.iteri
      (fun i name ->
        if i > 0 then print_newline ();
        match R.run ~budget name vm with
        | r -> print_result r show_output
        | exception Invalid_argument msg ->
            ok := false;
            Printf.eprintf "error: %s\n" msg)
      names;
    if not !ok then exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ benches_arg $ config_arg $ budget_arg $ jobs_arg
      $ show_output_arg $ threaded_arg $ frame_pool_arg $ tier_policy_arg)

(* --- trace --- *)

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"record the run's cross-layer event stream and write it as \
                 Chrome trace-event JSON (load in Perfetto or \
                 chrome://tracing)")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"write the run's per-phase and per-trace counters as \
                 versioned JSON")

let trace_cmd =
  let doc =
    "Dump the JIT traces compiled for a benchmark, or (with \
     $(b,--trace-out)/$(b,--metrics-out)) export the run's timeline and \
     counters as JSON"
  in
  let run name budget trace_out metrics_out threaded frame_pool tier_policy =
    apply_threaded threaded;
    apply_frame_pool frame_pool;
    apply_tier_policy tier_policy;
    let observing = trace_out <> None || metrics_out <> None in
    let config =
      with_threaded (Mtj_core.Config.with_budget budget Mtj_core.Config.default)
    in
    let attach eng =
      if observing then Some (Mtj_obs.Sink.attach eng) else None
    in
    let status_of = function
      | Mtj_rjit.Driver.Completed _ -> "ok"
      | Mtj_rjit.Driver.Budget_exceeded -> "budget"
      | Mtj_rjit.Driver.Runtime_error _ -> "failed"
    in
    let jl, header, eng, rtc, sink, status =
      match B.find ~lang:B.Py name with
      | Some b ->
          let vm = Mtj_pylite.Vm.create ~config () in
          let eng = Mtj_pylite.Vm.engine vm in
          let sink = attach eng in
          let outcome = Mtj_pylite.Vm.run_source vm b.B.source in
          ( Mtj_pylite.Vm.jitlog vm, "pylite", eng, Mtj_pylite.Vm.rtc vm,
            sink, status_of outcome )
      | None ->
          let b = B.find_exn ~lang:B.Rk name in
          let vm = Mtj_rklite.Kvm.create ~config () in
          let eng = Mtj_rklite.Kvm.engine vm in
          let sink = attach eng in
          let outcome = Mtj_rklite.Kvm.run_source vm b.B.source in
          ( Mtj_rklite.Kvm.jitlog vm, "rklite", eng, Mtj_rklite.Kvm.rtc vm,
            sink, status_of outcome )
    in
    Option.iter Mtj_obs.Sink.finalize sink;
    (match (trace_out, sink) with
    | Some file, Some s ->
        Mtj_obs.Chrome_trace.write ~bench:name ~vm:header ~file s;
        Printf.eprintf "[trace written to %s]\n%!" file
    | _ -> ());
    (match metrics_out with
    | Some file ->
        let run_record =
          Mtj_obs.Metrics.run_json ~bench:name ~config:header ~status
            ~engine:eng ~jitlog:jl
            ~gc:(Mtj_rt.Gc_sim.stats (Mtj_rt.Ctx.gc rtc))
            ?ticks:(Option.map Mtj_obs.Sink.ticks sink)
            ~hstats:(Mtj_rt.Ctx.hstats rtc) ()
        in
        Mtj_obs.Metrics.write ~file ~runs:[ run_record ] ();
        Printf.eprintf "[metrics written to %s]\n%!" file
    | None -> ());
    if not observing then begin
      Printf.printf "%s: %d traces, %d aborts, %d deopts\n\n" header
        (Mtj_rjit.Jitlog.num_traces jl)
        jl.Mtj_rjit.Jitlog.aborts jl.Mtj_rjit.Jitlog.deopts;
      List.iter
        (fun (tr : Mtj_rjit.Ir.trace) ->
          Printf.printf "=== trace %d  %s  ops=%d  entries=%d\n" tr.trace_id
            (match tr.kind with
            | Mtj_rjit.Ir.Loop { loop_code; loop_pc } ->
                Printf.sprintf "loop code=%d pc=%d" loop_code loop_pc
            | Mtj_rjit.Ir.Bridge { from_guard; _ } ->
                Printf.sprintf "bridge from guard %d" from_guard)
            (Array.length tr.ops) tr.exec_count;
          Array.iteri
            (fun i (op : Mtj_rjit.Ir.op) ->
              Printf.printf "%4d [%9d] %s%s\n" i tr.op_exec.(i)
                (if i = tr.loop_start && tr.loop_start > 0 then "LOOP: "
                 else "")
                (Format.asprintf "%a" Mtj_rjit.Ir.pp_op op))
            tr.ops;
          print_newline ())
        (Mtj_rjit.Jitlog.traces jl)
    end
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ bench_arg $ budget_arg $ trace_out_arg $ metrics_out_arg
      $ threaded_arg $ frame_pool_arg $ tier_policy_arg)

(* --- serve --- *)

let serve_cmd =
  let doc =
    "Multi-tenant serving mode: stream many short VM requests (mixed \
     pylite/rklite tenants, Zipf-distributed over the registry) onto a \
     fixed pool of worker domains, with an optional shared, domain-safe \
     cache of compiled-program bundles"
  in
  let requests_arg =
    Arg.(value & opt int 2000
         & info [ "requests" ] ~docv:"N" ~doc:"requests in the session")
  in
  let zipf_arg =
    Arg.(value & opt float 1.1
         & info [ "zipf-s"; "zipf-alpha" ] ~docv:"S"
             ~doc:"Zipf popularity exponent of the tenant program mix \
                   (weight of rank r is 1/r^S)")
  in
  let seed_arg =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"workload seed; the request stream is a pure function \
                   of (corpus, requests, zipf-s, seed)")
  in
  let shared_arg =
    let mode = Arg.enum [ ("on", true); ("off", false) ] in
    Arg.(value & opt mode true
         & info [ "shared-cache" ] ~docv:"on|off"
             ~doc:"cross-context shared JIT code cache: compile each \
                   (program, config) once process-wide and import the \
                   bundle on later requests; simulated counters are \
                   identical either way, only host wall time changes")
  in
  let serve_budget_arg =
    Arg.(value & opt int Mtj_harness.Serve.default_budget
         & info [ "budget" ] ~docv:"INSNS"
             ~doc:"per-request instruction budget (serving requests are \
                   short by design)")
  in
  let profile_seed_arg =
    let mode = Arg.enum [ ("on", true); ("off", false) ] in
    Arg.(value & opt mode true
         & info [ "profile-seed" ] ~docv:"on|off"
             ~doc:"trace-profile seeding: publishers attach the trace \
                   profile their run learned and warm requests seed \
                   their JIT from it, so hot loops tier up on first \
                   entry; program outputs are identical either way, \
                   simulated JIT counters legitimately differ")
  in
  let cache_capacity_arg =
    Arg.(value & opt int 0
         & info [ "cache-capacity" ] ~docv:"N"
             ~doc:"bound the shared cache to N entries with per-shard \
                   LRU eviction (0 = unbounded)")
  in
  let tenant_quota_arg =
    Arg.(value & opt int 0
         & info [ "tenant-quota" ] ~docv:"N"
             ~doc:"bound any one tenant to N live published entries \
                   (0 = unbounded)")
  in
  let corpus_size_arg =
    Arg.(value & opt int 0
         & info [ "corpus-size" ] ~docv:"N"
             ~doc:"draw requests from only the first N corpus programs \
                   (0 = the whole corpus)")
  in
  let run requests jobs zipf_s seed shared profile_seed cache_capacity
      tenant_quota corpus_size budget metrics_out threaded frame_pool
      tier_policy =
    if requests < 1 then begin
      Printf.eprintf "mtj: --requests must be >= 1 (got %d)\n" requests;
      exit 2
    end;
    if budget < 1 then begin
      Printf.eprintf "mtj: --budget must be >= 1 (got %d)\n" budget;
      exit 2
    end;
    if zipf_s <= 0.0 then begin
      Printf.eprintf "mtj: --zipf-s must be > 0 (got %g)\n" zipf_s;
      exit 2
    end;
    if cache_capacity < 0 then begin
      Printf.eprintf "mtj: --cache-capacity must be >= 0 (got %d)\n"
        cache_capacity;
      exit 2
    end;
    if tenant_quota < 0 then begin
      Printf.eprintf "mtj: --tenant-quota must be >= 0 (got %d)\n" tenant_quota;
      exit 2
    end;
    let corpus_len = List.length Mtj_harness.Serve.default_corpus in
    if corpus_size < 0 || corpus_size > corpus_len then begin
      Printf.eprintf "mtj: --corpus-size must be in 0..%d (got %d)\n"
        corpus_len corpus_size;
      exit 2
    end;
    apply_threaded threaded;
    apply_frame_pool frame_pool;
    apply_tier_policy tier_policy;
    if jobs > 0 then R.set_jobs jobs;
    let s =
      Mtj_harness.Serve.serve ~budget ~zipf_s ~seed ~shared ~profile_seed
        ~cache_capacity ~tenant_quota ~corpus_size ~requests ()
    in
    Mtj_harness.Serve.print_summary stdout s;
    match metrics_out with
    | None -> ()
    | Some file ->
        Mtj_obs.Metrics.write ~file ~runs:[]
          ~serve:(Mtj_harness.Serve.summary_json s) ();
        Printf.eprintf "[metrics written to %s]\n%!" file
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ requests_arg $ jobs_arg $ zipf_arg $ seed_arg $ shared_arg
      $ profile_seed_arg $ cache_capacity_arg $ tenant_quota_arg
      $ corpus_size_arg $ serve_budget_arg $ metrics_out_arg $ threaded_arg
      $ frame_pool_arg $ tier_policy_arg)

(* --- exec --- *)

let exec_cmd =
  let doc = "Execute a pylite (.py) or rklite (.rkt/.scm) source file" in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let nojit_arg =
    Arg.(value & flag & info [ "no-jit" ] ~doc:"disable the meta-tracing JIT")
  in
  let tiered_arg =
    Arg.(
      value & flag
      & info [ "tiered" ]
          ~doc:
            "two-tier compilation: compile traces quickly first,              recompile hot ones through the full optimizer")
  in
  let run file nojit tiered budget threaded frame_pool tier_policy =
    apply_threaded threaded;
    apply_frame_pool frame_pool;
    apply_tier_policy tier_policy;
    let src = In_channel.with_open_text file In_channel.input_all in
    let config =
      with_threaded
        (Mtj_core.Config.with_budget budget
           (if nojit then Mtj_core.Config.no_jit
            else if tiered then Mtj_core.Config.two_tier
            else Mtj_core.Config.default))
    in
    let is_scheme =
      Filename.check_suffix file ".rkt" || Filename.check_suffix file ".scm"
    in
    let outcome_str, output, insns =
      if is_scheme then begin
        let outcome, vm = Mtj_rklite.Kvm.run ~config src in
        ( (match outcome with
          | Mtj_rjit.Driver.Completed _ -> "ok"
          | Mtj_rjit.Driver.Budget_exceeded -> "budget exceeded"
          | Mtj_rjit.Driver.Runtime_error e -> "error: " ^ e),
          Mtj_rklite.Kvm.output vm,
          Mtj_machine.Engine.total_insns (Mtj_rklite.Kvm.engine vm) )
      end
      else begin
        let outcome, vm = Mtj_pylite.Vm.run ~config src in
        ( (match outcome with
          | Mtj_rjit.Driver.Completed _ -> "ok"
          | Mtj_rjit.Driver.Budget_exceeded -> "budget exceeded"
          | Mtj_rjit.Driver.Runtime_error e -> "error: " ^ e),
          Mtj_pylite.Vm.output vm,
          Mtj_machine.Engine.total_insns (Mtj_pylite.Vm.engine vm) )
      end
    in
    print_string output;
    Printf.eprintf "[%s; %d simulated instructions]\n" outcome_str insns
  in
  Cmd.v (Cmd.info "exec" ~doc)
    Term.(
      const run $ file_arg $ nojit_arg $ tiered_arg $ budget_arg
      $ threaded_arg $ frame_pool_arg $ tier_policy_arg)

let () =
  let doc = "meta-tracing JIT workload characterization tools" in
  let info = Cmd.info "mtj" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; trace_cmd; serve_cmd; exec_cmd ]))
