(* Benchmark harness entry point.

   With no arguments (or "all"), regenerates every table and figure of
   the paper from live simulated runs.  Individual experiments can be
   selected by name; "bechamel" runs wall-clock micro-benchmarks of the
   simulation substrate itself.

   The run matrix executes on a pool of worker domains: -j N (or
   MTJ_JOBS) selects the worker count, defaulting to what the hardware
   recommends, capped at the matrix size.  Table/figure output is
   byte-identical at any -j and either --threaded-interp mode (the
   threaded tier changes host wall time only); --timings FILE
   additionally writes a machine-readable JSON report of per-run and
   per-experiment wall-clock. *)

module E = Mtj_harness.Experiments
module R = Mtj_harness.Runner

(* --- bechamel micro-benchmarks of the substrate --- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let pylite_src =
    "def f(n):\n    s = 0\n    for i in range(n):\n        s = s + i * i\n    return s\nprint(f(2000))\n"
  in
  let run_pylite jit () =
    let config =
      Mtj_core.Config.with_budget 30_000_000
        (if jit then Mtj_core.Config.default else Mtj_core.Config.no_jit)
    in
    ignore (Mtj_pylite.Vm.run ~config pylite_src)
  in
  let bigint () =
    let a = Mtj_rt.Rbigint.of_string "123456789012345678901234567890" in
    let b = Mtj_rt.Rbigint.of_string "98765432109876543210" in
    ignore (Mtj_rt.Rbigint.divmod (Mtj_rt.Rbigint.mul a b) b)
  in
  let predictor () =
    let p = Mtj_machine.Predictor.create () in
    for i = 0 to 999 do
      ignore (Mtj_machine.Predictor.conditional p ~site:(i land 15) ~taken:(i mod 3 <> 0))
    done
  in
  let engine () =
    let e = Mtj_machine.Engine.create () in
    let c = Mtj_core.Cost.make ~alu:4 ~load:2 ~store:1 () in
    for i = 0 to 999 do
      Mtj_machine.Engine.emit e c;
      Mtj_machine.Engine.branch e ~site:7 ~taken:(i land 3 <> 0)
    done
  in
  let tests =
    [
      Test.make ~name:"pylite-interp-run" (Staged.stage (run_pylite false));
      Test.make ~name:"pylite-jit-run" (Staged.stage (run_pylite true));
      Test.make ~name:"rbigint-mul-divmod" (Staged.stage bigint);
      Test.make ~name:"predictor-1k-branches" (Staged.stage predictor);
      Test.make ~name:"engine-1k-bundles" (Staged.stage engine);
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      (Instance.monotonic_clock) results
  in
  List.iter
    (fun t ->
      let results = benchmark (Test.make_grouped ~name:"g" [ t ]) in
      let res = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        res)
    tests

(* --- serving mode: the shared JIT code cache and profile seeding --- *)

(* Host wall-clock comparison of a serving session across the three
   cache modes — off, shared bundles only, shared bundles + trace-
   profile seeding — on the same seeded workload.  Like "bechamel",
   this row reports real wall time, so it is selected by name and not
   part of "all" (whose output is byte-pinned). *)
let serve_bench ?(zipf_s = 1.1) ?(corpus_size = 0) () =
  let module S = Mtj_harness.Serve in
  let requests = 1000 in
  let off = S.serve ~shared:false ~zipf_s ~corpus_size ~requests () in
  let unseeded =
    S.serve ~shared:true ~profile_seed:false ~zipf_s ~corpus_size ~requests ()
  in
  let seeded =
    S.serve ~shared:true ~profile_seed:true ~zipf_s ~corpus_size ~requests ()
  in
  Printf.printf
    "serving: %d requests, %d jobs, zipf_s=%.2f seed=%d corpus=%d, budget %d \
     insns/request\n\n"
    requests seeded.S.sv_jobs seeded.S.sv_zipf_s seeded.S.sv_seed
    seeded.S.sv_corpus_size seeded.S.sv_budget;
  Printf.printf "%-22s %12s %12s %12s %12s %12s\n" "mode" "wall s"
    "req/s" "p50 ms" "p95 ms" "p99 ms";
  let row name (s : S.summary) =
    Printf.printf "%-22s %12.3f %12.1f %12.3f %12.3f %12.3f\n" name s.S.sv_wall_s
      s.S.sv_throughput s.S.sv_p50_ms s.S.sv_p95_ms s.S.sv_p99_ms
  in
  row "cache off" off;
  row "cache on" unseeded;
  row "cache on + seeding" seeded;
  Printf.printf
    "\nseeded session: %d cold (compile; p50 %.3f ms), %d warm (import; \
     p50 %.3f ms), %d profile-seeded\n"
    seeded.S.sv_cold seeded.S.sv_cold_p50_ms seeded.S.sv_warm
    seeded.S.sv_warm_p50_ms seeded.S.sv_seeded;
  Printf.printf
    "simulated insns to first trace entry: %.0f seeded vs %.0f unseeded \
     (same session) vs %.0f with seeding off\n"
    seeded.S.sv_seeded_first_entry_mean seeded.S.sv_unseeded_first_entry_mean
    unseeded.S.sv_unseeded_first_entry_mean;
  let c = seeded.S.sv_cache in
  Printf.printf
    "shared cache: %d hits, %d misses, %d publications, %d profiles \
     attached, %d seeded imports, %d lock contentions\n"
    (c.Mtj_rjit.Sharedcache.shared_hits + c.Mtj_rjit.Sharedcache.local_hits)
    c.Mtj_rjit.Sharedcache.misses c.Mtj_rjit.Sharedcache.publications
    c.Mtj_rjit.Sharedcache.profile_publications
    c.Mtj_rjit.Sharedcache.seeded_imports c.Mtj_rjit.Sharedcache.contention;
  if off.S.sv_wall_s > 0.0 then
    Printf.printf "session speedup from sharing: %.2fx (seeded %.2fx)\n"
      (off.S.sv_wall_s /. unseeded.S.sv_wall_s)
      (off.S.sv_wall_s /. seeded.S.sv_wall_s)

(* --- argument handling --- *)

let usage () =
  print_endline
    "usage: main.exe [-j N] [--threaded-interp on|off] [--frame-pool on|off] \
     [--tier-policy optimizing|baseline|adaptive] \
     [--zipf-alpha S] [--corpus-size N] \
     [--timings FILE] [--metrics-out FILE] \
     [all | bechamel | serve | <experiment> ...]";
  print_endline "experiments:";
  List.iter
    (fun (e : E.experiment) ->
      Printf.printf "  %-10s %s\n" e.E.ex_name e.E.ex_doc)
    E.registry

type parsed = {
  names : string list;  (* in command-line order *)
  run_all : bool;
  jobs : int option;
  threaded : bool option;
  frame_pool : bool option;
  tier_policy : Mtj_core.Config.tier_policy option;
  zipf_s : float option;       (* "serve" workload knobs *)
  corpus_size : int option;
  timings_file : string option;
  metrics_file : string option;
  help : bool;
}

let parse_args argv =
  let rec go acc = function
    | [] -> Ok acc
    | ("-j" | "--jobs") :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> go { acc with jobs = Some n } rest
        | _ -> Error (Printf.sprintf "bad job count %S" v))
    | [ ("-j" | "--jobs") ] -> Error "-j requires an argument"
    | "--threaded-interp" :: v :: rest -> (
        match v with
        | "on" -> go { acc with threaded = Some true } rest
        | "off" -> go { acc with threaded = Some false } rest
        | _ -> Error (Printf.sprintf "bad --threaded-interp value %S" v))
    | [ "--threaded-interp" ] -> Error "--threaded-interp requires on|off"
    | "--frame-pool" :: v :: rest -> (
        match v with
        | "on" -> go { acc with frame_pool = Some true } rest
        | "off" -> go { acc with frame_pool = Some false } rest
        | _ -> Error (Printf.sprintf "bad --frame-pool value %S" v))
    | [ "--frame-pool" ] -> Error "--frame-pool requires on|off"
    | "--tier-policy" :: v :: rest -> (
        match Mtj_core.Config.tier_policy_of_string v with
        | Some p -> go { acc with tier_policy = Some p } rest
        | None -> Error (Printf.sprintf "bad --tier-policy value %S" v))
    | [ "--tier-policy" ] ->
        Error "--tier-policy requires optimizing|baseline|adaptive"
    | ("--zipf-alpha" | "--zipf-s") :: v :: rest -> (
        match float_of_string_opt v with
        | Some s when s > 0.0 -> go { acc with zipf_s = Some s } rest
        | _ -> Error (Printf.sprintf "bad --zipf-alpha value %S (want > 0)" v))
    | [ ("--zipf-alpha" | "--zipf-s") ] ->
        Error "--zipf-alpha requires a positive exponent"
    | "--corpus-size" :: v :: rest -> (
        let corpus_len = List.length Mtj_harness.Serve.default_corpus in
        match int_of_string_opt v with
        | Some n when n >= 0 && n <= corpus_len ->
            go { acc with corpus_size = Some n } rest
        | _ ->
            Error
              (Printf.sprintf "bad --corpus-size value %S (want 0..%d)" v
                 corpus_len))
    | [ "--corpus-size" ] -> Error "--corpus-size requires an argument"
    | "--timings" :: f :: rest -> go { acc with timings_file = Some f } rest
    | [ "--timings" ] -> Error "--timings requires an argument"
    | "--metrics-out" :: f :: rest -> go { acc with metrics_file = Some f } rest
    | [ "--metrics-out" ] -> Error "--metrics-out requires an argument"
    | ("help" | "--help" | "-h") :: rest -> go { acc with help = true } rest
    | "all" :: rest -> go { acc with run_all = true } rest
    | name :: _ when String.length name > 0 && name.[0] = '-' ->
        Error (Printf.sprintf "unknown option %S" name)
    | name :: rest -> go { acc with names = acc.names @ [ name ] } rest
  in
  go
    { names = []; run_all = false; jobs = None; threaded = None;
      frame_pool = None; tier_policy = None; zipf_s = None;
      corpus_size = None; timings_file = None; metrics_file = None;
      help = false }
    argv

let () =
  let argv = List.tl (Array.to_list Sys.argv) in
  match parse_args argv with
  | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      usage ();
      exit 2
  | Ok { help = true; _ } -> usage ()
  | Ok p ->
      Option.iter R.set_jobs p.jobs;
      Option.iter R.set_threaded_interp p.threaded;
      Option.iter R.set_frame_pool p.frame_pool;
      Option.iter R.set_tier_policy p.tier_policy;
      (* validate every requested name before running anything *)
      let unknown =
        List.filter
          (fun n -> n <> "bechamel" && n <> "serve" && E.find n = None)
          p.names
      in
      if unknown <> [] then begin
        List.iter
          (fun n -> Printf.eprintf "unknown experiment %S\n" n)
          unknown;
        usage ();
        exit 2
      end;
      let t_start = Unix.gettimeofday () in
      let exp_walls = ref [] in
      let timed name f =
        let t0 = Unix.gettimeofday () in
        f ();
        exp_walls := (name, Unix.gettimeofday () -. t0) :: !exp_walls
      in
      if p.run_all || p.names = [] then begin
        print_endline
          "Cross-Layer Workload Characterization of Meta-Tracing JIT VMs";
        print_endline
          "(OCaml reproduction; times are simulated megacycles, see DESIGN.md)";
        timed "prefetch" (fun () -> E.prefetch_for E.registry);
        List.iter
          (fun (e : E.experiment) -> timed e.E.ex_name e.E.ex_render)
          E.registry
      end
      else begin
        (* one parallel prefetch wave over the union of the requested
           experiments' matrices, then render each in order *)
        let exps = List.filter_map E.find p.names in
        if exps <> [] then
          timed "prefetch" (fun () -> E.prefetch_for exps);
        List.iter
          (fun name ->
            if name = "bechamel" then timed name bechamel
            else if name = "serve" then
              timed name (fun () ->
                  serve_bench ?zipf_s:p.zipf_s ?corpus_size:p.corpus_size ())
            else
              match E.find name with
              | Some e -> timed name e.E.ex_render
              | None -> assert false)
          p.names
      end;
      (match p.timings_file with
      | None -> ()
      | Some file ->
          Mtj_harness.Report.write_timings ~file ~jobs:(R.jobs ())
            ~total_wall:(Unix.gettimeofday () -. t_start)
            ~experiments:(List.rev !exp_walls));
      match p.metrics_file with
      | None -> ()
      | Some file ->
          (* every cached run, in the stable (bench, config) order of the
             timing report *)
          let results =
            List.map
              (fun (rt : R.run_timing) -> R.run rt.R.rt_bench rt.R.rt_config)
              (R.run_timings ())
          in
          Mtj_harness.Report.write_metrics ~file results
