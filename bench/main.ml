(* Benchmark harness entry point.

   With no arguments (or "all"), regenerates every table and figure of
   the paper from live simulated runs.  Individual experiments can be
   selected by name; "bechamel" runs wall-clock micro-benchmarks of the
   simulation substrate itself (one Test.make group per experiment
   driver plus core kernels). *)

let experiments : (string * string * (unit -> unit)) list =
  [
    ("table1", "PyPy-suite performance (time, IPC, MPKI x 3 VMs)",
     Mtj_harness.Experiments.table1);
    ("table2", "CLBG performance across languages + C",
     Mtj_harness.Experiments.table2);
    ("table3", "significant AOT functions called from traces",
     Mtj_harness.Experiments.table3);
    ("table4", "per-phase microarchitectural statistics",
     Mtj_harness.Experiments.table4);
    ("fig2", "phase breakdown per benchmark", Mtj_harness.Experiments.fig2);
    ("fig3", "phase timeline during warmup", Mtj_harness.Experiments.fig3);
    ("fig4", "PyPy vs Pycket phase breakdown (CLBG)",
     Mtj_harness.Experiments.fig4);
    ("fig5", "warmup curves and break-even points",
     Mtj_harness.Experiments.fig5);
    ("fig6", "IR nodes compiled / hotness / dynamic rate",
     Mtj_harness.Experiments.fig6);
    ("fig7", "meta-trace composition by IR category",
     Mtj_harness.Experiments.fig7);
    ("fig8", "dynamic IR node-type histogram", Mtj_harness.Experiments.fig8);
    ("fig9", "x86 instructions per IR node type",
     Mtj_harness.Experiments.fig9);
    ("activity", "JIT machinery counters (extension)",
     Mtj_harness.Experiments.jit_activity);
    ("ablation", "optimizer-pass ablation (extension)",
     Mtj_harness.Experiments.ablation);
    ("tiers", "two-tier compilation: warmup vs steady state (extension)",
     Mtj_harness.Experiments.tiers);
    ("thresholds", "hot-loop threshold sensitivity (extension)",
     Mtj_harness.Experiments.thresholds);
  ]

(* --- bechamel micro-benchmarks of the substrate --- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let pylite_src =
    "def f(n):\n    s = 0\n    for i in range(n):\n        s = s + i * i\n    return s\nprint(f(2000))\n"
  in
  let run_pylite jit () =
    let config =
      Mtj_core.Config.with_budget 30_000_000
        (if jit then Mtj_core.Config.default else Mtj_core.Config.no_jit)
    in
    ignore (Mtj_pylite.Vm.run ~config pylite_src)
  in
  let bigint () =
    let a = Mtj_rt.Rbigint.of_string "123456789012345678901234567890" in
    let b = Mtj_rt.Rbigint.of_string "98765432109876543210" in
    ignore (Mtj_rt.Rbigint.divmod (Mtj_rt.Rbigint.mul a b) b)
  in
  let predictor () =
    let p = Mtj_machine.Predictor.create () in
    for i = 0 to 999 do
      ignore (Mtj_machine.Predictor.conditional p ~site:(i land 15) ~taken:(i mod 3 <> 0))
    done
  in
  let engine () =
    let e = Mtj_machine.Engine.create () in
    let c = Mtj_core.Cost.make ~alu:4 ~load:2 ~store:1 () in
    for i = 0 to 999 do
      Mtj_machine.Engine.emit e c;
      Mtj_machine.Engine.branch e ~site:7 ~taken:(i land 3 <> 0)
    done
  in
  let tests =
    [
      Test.make ~name:"pylite-interp-run" (Staged.stage (run_pylite false));
      Test.make ~name:"pylite-jit-run" (Staged.stage (run_pylite true));
      Test.make ~name:"rbigint-mul-divmod" (Staged.stage bigint);
      Test.make ~name:"predictor-1k-branches" (Staged.stage predictor);
      Test.make ~name:"engine-1k-bundles" (Staged.stage engine);
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
    Benchmark.all cfg instances test
  in
  let analyze results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
      (Instance.monotonic_clock) results
  in
  List.iter
    (fun t ->
      let results = benchmark (Test.make_grouped ~name:"g" [ t ]) in
      let res = analyze results in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] ->
              Printf.printf "%-28s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        res)
    tests

let usage () =
  print_endline "usage: main.exe [all | bechamel | <experiment> ...]";
  print_endline "experiments:";
  List.iter
    (fun (name, doc, _) -> Printf.printf "  %-10s %s\n" name doc)
    experiments

let () =
  match Array.to_list Sys.argv with
  | [] | _ :: [] | _ :: [ "all" ] ->
      print_endline
        "Cross-Layer Workload Characterization of Meta-Tracing JIT VMs";
      print_endline
        "(OCaml reproduction; times are simulated megacycles, see DESIGN.md)";
      Mtj_harness.Experiments.all ()
  | _ :: [ "bechamel" ] -> bechamel ()
  | _ :: [ "help" ] | _ :: [ "--help" ] -> usage ()
  | _ :: names ->
      List.iter
        (fun name ->
          match
            List.find_opt (fun (n, _, _) -> n = name) experiments
          with
          | Some (_, _, f) -> f ()
          | None ->
              Printf.printf "unknown experiment %S\n" name;
              usage ())
        names
