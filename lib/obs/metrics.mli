(** Metrics registry: versioned JSON export of the cross-layer counters.

    Gathers what the textual [--timings] report prints — per-phase
    machine counters with their derived rates, GC statistics, the JIT
    log's per-trace rows and machinery counters — into one
    machine-readable document, so experiment results can be archived and
    diffed without scraping terminal tables. *)

val schema : string
(** ["mtj-metrics/8"]; written to the document's ["schema"] field. *)

val snapshot_json : Mtj_machine.Counters.snapshot -> Json.t
(** Raw counters plus the derived rates ([ipc], [branch_mpki],
    [branch_miss_rate], [cache_miss_rate]). *)

val phases_json : Mtj_machine.Counters.t -> Json.t
(** Object mapping each phase name (plus ["total"]) to its
    {!snapshot_json}.  Phases that saw no instructions are omitted. *)

val gc_json : Mtj_rt.Gc_sim.stats -> Json.t

val trace_row_json : Mtj_rjit.Ir.trace -> Json.t
(** One row per compiled trace: id, kind (["loop"]/["bridge"]), tier,
    static op count, entry count and dynamic IR executions. *)

val jitlog_json : Mtj_rjit.Jitlog.t -> Json.t
(** Machinery counters (aborts, deopts, bridges, blacklists, retiers),
    multi-tier accounting (per-tier compiles, demotions, the
    first-entry warmup latch, per-tier residency), aggregate IR
    statistics and the per-trace rows. *)

val run_json :
  bench:string ->
  config:string ->
  status:string ->
  engine:Mtj_machine.Engine.t ->
  ?jitlog:Mtj_rjit.Jitlog.t ->
  ?gc:Mtj_rt.Gc_sim.stats ->
  ?ticks:int ->
  ?hstats:Mtj_rt.Hstats.t ->
  unit ->
  Json.t
(** The full record for one benchmark run.  [ticks] is the
    application-level dispatch-tick total when a {!Sink} counted one;
    [hstats] carries the host fast-path counters (v5: interned-value
    hits, frame-pool reuses, precomputed-hash skips) — absent, the
    fields are [null]. *)

val document : ?serve:Json.t -> runs:Json.t list -> unit -> Json.t
(** Wrap run records into the versioned top-level document.  [serve],
    when given, becomes the optional top-level ["serve"] block (a
    serving session's latency/throughput/shared-cache summary, built by
    the harness; see OBS_SCHEMA.md). *)

val write : ?serve:Json.t -> file:string -> runs:Json.t list -> unit -> unit
