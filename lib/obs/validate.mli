(** Structural validators for the exported JSON documents.

    Each validator takes a parsed {!Json.t} document, checks the schema
    tag and the format invariants, and either returns summary statistics
    or a description of the first violation.  They are pure consumers of
    the JSON — no access to the producing run — so the round-trip tests
    and the CI artifact check exercise exactly what an external tool
    (Perfetto, a results archive) would read. *)

type trace_stats = {
  events : int;  (** traceEvents entries, metadata included *)
  duration_tracks : int;  (** distinct [tid]s carrying B/E spans *)
  counter_tracks : int;  (** distinct counter-event names *)
  instants : int;
  auto_closed : int;  (** spans the exporter closed at end-of-run *)
  phase_self_cycles : (string * float) list;
      (** self time per phase name, from the [phase]/[gc] span stream,
          innermost-phase attribution (what {!Mtj_machine.Counters}
          charges); display order of {!Mtj_core.Phase.all} *)
}

val trace : Json.t -> (trace_stats, string) result
(** Check a ["mtj-trace/1"] document: schema tag, required event fields,
    per-[tid] B/E balance (every E matches an open B, nothing left open),
    globally non-decreasing timestamps, and counter values that are
    finite and non-negative. *)

val metrics : Json.t -> (int, string) result
(** Check a ["mtj-metrics/8"] document; returns the number of run
    records.  Verifies each run's required fields, that rate fields lie
    in [0, 1], that the per-phase instruction counts sum to the run's
    ["total"] row, and the multi-tier JIT accounting: tier-1 + tier-2
    compiles partition the traces, promotions/demotions are bounded by
    the tier compile counts, the first-entry warmup latch lies within
    the run, and per-tier residency equals the per-trace row sums. *)

val timings : Json.t -> (int, string) result
(** Check a ["mtj-bench-timings/2"] document; returns the number of run
    rows.  Verifies the experiment and run records carry non-negative
    wall-clock seconds and host minor-heap allocation counts. *)
