type trace_stats = {
  events : int;
  duration_tracks : int;
  counter_tracks : int;
  instants : int;
  auto_closed : int;
  phase_self_cycles : (string * float) list;
}

exception Invalid of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Invalid msg)) fmt

let need what = function Some v -> v | None -> fail "missing %s" what

let str_field j key =
  need (key ^ " (string)") (Option.bind (Json.member key j) Json.get_str)

let int_field j key =
  need (key ^ " (int)") (Option.bind (Json.member key j) Json.get_int)

let num_field j key =
  need (key ^ " (number)") (Option.bind (Json.member key j) Json.get_num)

let arr_field j key =
  need (key ^ " (array)") (Option.bind (Json.member key j) Json.get_arr)

let check_schema j expected =
  let s = str_field j "schema" in
  if s <> expected then fail "schema %S, expected %S" s expected

let wrap f j = match f j with v -> Ok v | exception Invalid msg -> Error msg

(* --- chrome trace --- *)

let trace_exn j =
  check_schema j "mtj-trace/1";
  let events = arr_field j "traceEvents" in
  (* per-tid span stacks: tid -> (name, begin ts) list *)
  let stacks : (int, (string * float) list) Hashtbl.t = Hashtbl.create 8 in
  let counter_names = Hashtbl.create 8 in
  let duration_tids = Hashtbl.create 8 in
  let instants = ref 0 in
  let auto_closed = ref 0 in
  let prev_ts = ref neg_infinity in
  (* innermost-phase attribution over the combined phase/gc stream *)
  let phase_self : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let phase_stack = ref [] in
  let phase_last_ts = ref 0.0 in
  let accrue ts =
    (match !phase_stack with
    | [] -> ()
    | top :: _ ->
        let prev = Option.value ~default:0.0 (Hashtbl.find_opt phase_self top) in
        Hashtbl.replace phase_self top (prev +. (ts -. !phase_last_ts)));
    phase_last_ts := ts
  in
  let n = ref 0 in
  List.iteri
    (fun i ev ->
      incr n;
      let ph = str_field ev "ph" in
      if ph = "M" then ()
      else begin
        let ts = num_field ev "ts" in
        if Float.is_nan ts then fail "event %d: NaN timestamp" i;
        if ts < !prev_ts then
          fail "event %d: timestamp %g before previous %g" i ts !prev_ts;
        prev_ts := ts;
        let tid = int_field ev "tid" in
        match ph with
        | "B" ->
            let name = str_field ev "name" in
            let cat = str_field ev "cat" in
            Hashtbl.replace duration_tids tid ();
            let st =
              Option.value ~default:[] (Hashtbl.find_opt stacks tid)
            in
            Hashtbl.replace stacks tid ((name, ts) :: st);
            if cat = "phase" || cat = "gc" then begin
              accrue ts;
              phase_stack := name :: !phase_stack
            end
        | "E" -> (
            let name = str_field ev "name" in
            let cat = str_field ev "cat" in
            (match Option.bind (Json.member "args" ev)
                     (Json.member "auto_closed")
             with
            | Some (Json.Bool true) -> incr auto_closed
            | _ -> ());
            (match Hashtbl.find_opt stacks tid with
            | Some ((open_name, _) :: rest) ->
                if open_name <> name then
                  fail "event %d: E %S closes open span %S on tid %d" i name
                    open_name tid;
                Hashtbl.replace stacks tid rest
            | _ -> fail "event %d: E %S on tid %d with no open span" i name tid);
            match cat with
            | "phase" | "gc" -> (
                accrue ts;
                match !phase_stack with
                | top :: rest ->
                    if top <> name then
                      fail "event %d: phase E %S but innermost phase is %S" i
                        name top;
                    phase_stack := rest
                | [] -> fail "event %d: phase E %S with empty phase stack" i name)
            | _ -> ())
        | "i" ->
            ignore (str_field ev "name");
            incr instants
        | "C" ->
            let name = str_field ev "name" in
            let v =
              need "counter args.value"
                (Option.bind
                   (Option.bind (Json.member "args" ev) (Json.member "value"))
                   Json.get_num)
            in
            if Float.is_nan v || v = Float.infinity || v < 0.0 then
              fail "event %d: counter %S has bad value %g" i name v;
            Hashtbl.replace counter_names name ()
        | ph -> fail "event %d: unknown ph %S" i ph
      end)
    events;
  Hashtbl.iter
    (fun tid st ->
      match st with
      | [] -> ()
      | (name, _) :: _ -> fail "span %S left open on tid %d" name tid)
    stacks;
  if !phase_stack <> [] then fail "phase stack not empty at end of stream";
  let phase_self_cycles =
    List.filter_map
      (fun p ->
        let name = Mtj_core.Phase.name p in
        Option.map (fun c -> (name, c)) (Hashtbl.find_opt phase_self name))
      Mtj_core.Phase.all
  in
  {
    events = !n;
    duration_tracks = Hashtbl.length duration_tids;
    counter_tracks = Hashtbl.length counter_names;
    instants = !instants;
    auto_closed = !auto_closed;
    phase_self_cycles;
  }

let trace = wrap trace_exn

(* --- metrics --- *)

let check_rate run what j key =
  match Option.bind (Json.member key j) Json.get_num with
  | None -> fail "run %s: %s missing %s" run what key
  | Some v ->
      if Float.is_nan v || v < 0.0 || v > 1.0 then
        fail "run %s: %s %s=%g outside [0,1]" run what key v

let check_snapshot run what j =
  List.iter
    (fun key ->
      if int_field j key < 0 then fail "run %s: %s %s negative" run what key)
    [ "insns"; "branches"; "branch_misses"; "loads"; "stores"; "cache_misses" ];
  if num_field j "cycles" < 0.0 then fail "run %s: %s cycles negative" run what;
  if num_field j "ipc" < 0.0 then fail "run %s: %s ipc negative" run what;
  check_rate run what j "branch_miss_rate";
  check_rate run what j "cache_miss_rate"

(* jit block (v2): threaded-code cache counters.  Every registered trace
   is translated at compile time, so [translations] dominates the trace
   count and each per-trace row carries at least one translation. *)
let check_jit run j insns =
  match Json.member "jit" j with
  | None | Some Json.Null -> ()
  | Some jit ->
      let num_traces = int_field jit "num_traces" in
      let translations = int_field jit "translations" in
      let hits = int_field jit "code_cache_hits" in
      if translations < 0 then fail "run %s: negative translations" run;
      if hits < 0 then fail "run %s: negative code_cache_hits" run;
      if translations < num_traces then
        fail "run %s: translations %d < num_traces %d" run translations
          num_traces;
      (* shared-cache split (v7): [code_cache_hits] is the same-context
         ("local") side, [shared_code_hits] counts cross-context imports,
         and the exported total must be exactly their sum — the
         accounting invariant that keeps the two tiers from double- or
         under-counting each other. *)
      let shared_hits = int_field jit "shared_code_hits" in
      let total_hits = int_field jit "code_cache_total_hits" in
      if shared_hits < 0 then fail "run %s: negative shared_code_hits" run;
      if total_hits <> hits + shared_hits then
        fail "run %s: code_cache_total_hits %d <> local %d + shared %d" run
          total_hits hits shared_hits;
      (* threaded interpreter tier (v4): a cache can only hit after at
         least one code object was translated into it *)
      let itrans = int_field jit "interp_translations" in
      let ihits = int_field jit "threaded_code_hits" in
      if itrans < 0 then fail "run %s: negative interp_translations" run;
      if ihits < 0 then fail "run %s: negative threaded_code_hits" run;
      if ihits > 0 && itrans = 0 then
        fail "run %s: threaded_code_hits %d with no interp_translations" run
          ihits;
      (* multi-tier counters (v6).  Every compile is exactly one tier-1
         or tier-2 compile; every promotion (retier) recompiled a tier-1
         loop through the optimizer, so promotions are bounded by tier-1
         compiles; demotions recompile an optimized loop, so they are
         bounded by tier-2 compiles; and the first compiled-trace entry
         cannot happen after the end of the run. *)
      let t1c = int_field jit "tier1_compiles" in
      let t2c = int_field jit "tier2_compiles" in
      let demotions = int_field jit "demotions" in
      let retiers = int_field jit "retiers" in
      let first_entry = int_field jit "first_entry_insns" in
      if t1c < 0 then fail "run %s: negative tier1_compiles" run;
      if t2c < 0 then fail "run %s: negative tier2_compiles" run;
      if demotions < 0 then fail "run %s: negative demotions" run;
      if t1c + t2c <> num_traces then
        fail "run %s: tier compiles %d+%d <> num_traces %d" run t1c t2c
          num_traces;
      if retiers > t1c then
        fail "run %s: tier2 promotions %d > tier1 compiles %d" run retiers t1c;
      if demotions > t2c then
        fail "run %s: demotions %d > tier2 compiles %d" run demotions t2c;
      if first_entry < -1 then
        fail "run %s: first_entry_insns %d < -1" run first_entry;
      if first_entry > insns then
        fail "run %s: first_entry_insns %d exceeds run insns %d" run
          first_entry insns;
      (* profile seeding (v9): seeded sites are loop sites, bounded by
         nothing the document carries per run except non-negativity *)
      if int_field jit "seeded_sites" < 0 then
        fail "run %s: negative seeded_sites" run;
      (* per-tier residency reconciles exactly with the trace rows *)
      let residency =
        need (run ^ " jit.tier_residency")
          (Json.member "tier_residency" jit)
      in
      let r_t1e = int_field residency "tier1_entries" in
      let r_t2e = int_field residency "tier2_entries" in
      let r_t1d = int_field residency "tier1_dynamic_ir" in
      let r_t2d = int_field residency "tier2_dynamic_ir" in
      let s_t1e = ref 0 and s_t2e = ref 0 in
      let s_t1d = ref 0 and s_t2d = ref 0 in
      let s_hits = ref 0 in
      List.iter
        (fun tr ->
          let id = int_field tr "id" in
          if int_field tr "translations" < 1 then
            fail "run %s: trace %d never translated" run id;
          if int_field tr "cache_hits" < 0 then
            fail "run %s: trace %d negative cache_hits" run id;
          s_hits := !s_hits + int_field tr "cache_hits";
          if int_field tr "deopts" < 0 then
            fail "run %s: trace %d negative deopts" run id;
          if int_field tr "bridges" < 0 then
            fail "run %s: trace %d negative bridges" run id;
          let entries = int_field tr "entries" in
          let dyn = int_field tr "dynamic_ir" in
          if int_field tr "tier" <= 1 then begin
            s_t1e := !s_t1e + entries;
            s_t1d := !s_t1d + dyn
          end
          else begin
            s_t2e := !s_t2e + entries;
            s_t2d := !s_t2d + dyn
          end)
        (arr_field jit "traces");
      if (r_t1e, r_t2e, r_t1d, r_t2d) <> (!s_t1e, !s_t2e, !s_t1d, !s_t2d) then
        fail
          "run %s: tier_residency (%d,%d,%d,%d) <> trace-row sums \
           (%d,%d,%d,%d)"
          run r_t1e r_t2e r_t1d r_t2d !s_t1e !s_t2e !s_t1d !s_t2d;
      (* every local hit is attributed to exactly one trace row, so the
         row sums must reconcile with the machinery counter (v7:
         no-double-counting between the local and shared tiers) *)
      if !s_hits <> hits then
        fail "run %s: trace-row cache_hits sum %d <> code_cache_hits %d" run
          !s_hits hits

(* charging fast-path stats (v3).  Every bundle — including the implicit
   one-insn bundle of a memory access — goes through the staged
   [Counters] path, so a run with any loads or stores must report at
   least one fast-path bundle; and since exporting queries the counters
   (which writes the staged state back), a run that retired insns must
   have flushed at least once. *)
let check_charge_stats run j total =
  let flushes = int_field j "charge_flushes" in
  let bundles = int_field j "fast_path_bundles" in
  if flushes < 0 then fail "run %s: negative charge_flushes" run;
  if bundles < 0 then fail "run %s: negative fast_path_bundles" run;
  let mem = int_field total "loads" + int_field total "stores" in
  if bundles = 0 && mem > 0 then
    fail "run %s: %d loads+stores but no fast-path bundles" run mem;
  if int_field j "insns" > 0 && flushes = 0 then
    fail "run %s: insns retired but charge_flushes = 0" run

(* host fast-path counters (v5).  Null is allowed (exporters without a
   runtime context, e.g. native kernels, omit them); present values must
   be non-negative, and since every counted fast-path hit corresponds to
   at least one simulated instruction retired by the run, each counter
   is bounded by the run's insn total. *)
let check_hstats run j insns =
  List.iter
    (fun key ->
      match Json.member key j with
      | None -> fail "run %s: missing %s" run key
      | Some Json.Null -> ()
      | Some v -> (
          match Json.get_int v with
          | None -> fail "run %s: %s not an int" run key
          | Some n ->
              if n < 0 then fail "run %s: negative %s" run key;
              if n > insns then
                fail "run %s: %s %d exceeds insns %d" run key n insns))
    [
      "imm_fast_path_hits";
      "boxed_slow_path_hits";
      "typed_ops_total";
      "frame_pool_reuses";
      "dict_hash_skips";
    ];
  (* the immediate-representation split partitions the typed-op total:
     every counted typed-arithmetic entry is exactly one of the two *)
  match
    ( Json.member "imm_fast_path_hits" j,
      Json.member "boxed_slow_path_hits" j,
      Json.member "typed_ops_total" j )
  with
  | Some a, Some b, Some t -> (
      match (Json.get_int a, Json.get_int b, Json.get_int t) with
      | Some a, Some b, Some t ->
          if a + b <> t then
            fail
              "run %s: imm_fast_path_hits %d + boxed_slow_path_hits %d <> \
               typed_ops_total %d"
              run a b t
      | _ -> ())
  | _ -> ()

(* serve block (v7): a serving session's latency/throughput summary and
   shared-cache counters.  Invariants: percentiles are ordered; every
   request is either cold or warm; with the shared cache off nothing may
   touch it (a session resets the counters); with it on, every request
   performs exactly one lookup, every hit is a warm request, and only a
   miss can publish. *)
let check_serve j =
  match Json.member "serve" j with
  | None | Some Json.Null -> ()
  | Some s ->
      let bool_field key =
        match Json.member key s with
        | Some (Json.Bool b) -> b
        | _ -> fail "serve: missing %s (bool)" key
      in
      let requests = int_field s "requests" in
      if requests < 1 then fail "serve: requests < 1";
      if int_field s "jobs" < 1 then fail "serve: jobs < 1";
      if num_field s "wall_s" < 0.0 then fail "serve: negative wall_s";
      if num_field s "throughput_rps" < 0.0 then
        fail "serve: negative throughput_rps";
      let lat = need "serve.latency_ms" (Json.member "latency_ms" s) in
      let p50 = num_field lat "p50" in
      let p95 = num_field lat "p95" in
      let p99 = num_field lat "p99" in
      if p50 < 0.0 then fail "serve: negative p50";
      if not (p50 <= p95 && p95 <= p99) then
        fail "serve: percentiles not ordered (p50 %g, p95 %g, p99 %g)" p50 p95
          p99;
      let cold = need "serve.cold" (Json.member "cold" s) in
      let warm = need "serve.warm" (Json.member "warm" s) in
      let n_cold = int_field cold "count" in
      let n_warm = int_field warm "count" in
      if n_cold < 0 || n_warm < 0 then fail "serve: negative warm/cold count";
      if n_cold + n_warm <> requests then
        fail "serve: cold %d + warm %d <> requests %d" n_cold n_warm requests;
      if num_field cold "p50_ms" < 0.0 || num_field warm "p50_ms" < 0.0 then
        fail "serve: negative warm/cold p50";
      (* bounded-cache and seeding knobs (v9) *)
      let capacity = int_field s "cache_capacity" in
      let quota = int_field s "tenant_quota" in
      let corpus_size = int_field s "corpus_size" in
      let cache_entries = int_field s "cache_entries" in
      if capacity < 0 then fail "serve: negative cache_capacity";
      if quota < 0 then fail "serve: negative tenant_quota";
      if corpus_size < 1 then fail "serve: corpus_size < 1";
      if cache_entries < 0 then fail "serve: negative cache_entries";
      if capacity > 0 && cache_entries > capacity then
        fail "serve: cache_entries %d exceeds cache_capacity %d" cache_entries
          capacity;
      let seeded = need "serve.seeded" (Json.member "seeded" s) in
      let n_seeded = int_field seeded "count" in
      if n_seeded < 0 then fail "serve: negative seeded count";
      if n_seeded > n_warm then
        fail "serve: seeded %d > warm %d" n_seeded n_warm;
      if num_field seeded "first_entry_insns_mean" < 0.0 then
        fail "serve: negative seeded first-entry mean";
      if num_field s "unseeded_first_entry_insns_mean" < 0.0 then
        fail "serve: negative unseeded first-entry mean";
      let st = need "serve.shared_cache_stats" (Json.member "shared_cache_stats" s) in
      let shared_hits = int_field st "shared_hits" in
      let local_hits = int_field st "local_hits" in
      let misses = int_field st "misses" in
      let pubs = int_field st "publications" in
      let evictions = int_field st "evictions" in
      let requeues = int_field st "requeues" in
      let quota_rejections = int_field st "quota_rejections" in
      let profile_pubs = int_field st "profile_publications" in
      let seeded_imports = int_field st "seeded_imports" in
      List.iter
        (fun key ->
          if int_field st key < 0 then fail "serve: negative %s" key)
        [ "shared_hits"; "local_hits"; "misses"; "publications";
          "invalidations"; "evictions"; "requeues"; "quota_rejections";
          "profile_publications"; "seeded_imports"; "contention" ];
      if bool_field "shared_cache" then begin
        if shared_hits + local_hits + misses <> requests then
          fail "serve: hits %d+%d + misses %d <> requests %d" shared_hits
            local_hits misses requests;
        if shared_hits + local_hits <> n_warm then
          fail "serve: hits %d+%d <> warm count %d" shared_hits local_hits
            n_warm;
        (* a publication is attempted exactly on a miss, and resolves to
           a success or a quota rejection — the attempts cannot exceed
           the misses *)
        if pubs + quota_rejections > misses then
          fail "serve: publications %d + quota_rejections %d > misses %d" pubs
            quota_rejections misses;
        (* each eviction (and each requeue) is triggered by a successful
           publication; each attached profile annotates one *)
        if evictions > pubs then
          fail "serve: evictions %d > publications %d" evictions pubs;
        if requeues > pubs then
          fail "serve: requeues %d > publications %d" requeues pubs;
        if profile_pubs > pubs then
          fail "serve: profile_publications %d > publications %d" profile_pubs
            pubs;
        (* a seeded import is a cache hit that carried a profile, and
           every seeded request made exactly one *)
        if seeded_imports > shared_hits + local_hits then
          fail "serve: seeded_imports %d > hits %d" seeded_imports
            (shared_hits + local_hits);
        if n_seeded > seeded_imports then
          fail "serve: seeded requests %d > seeded_imports %d" n_seeded
            seeded_imports;
        if capacity = 0 && evictions + requeues > 0 then
          fail "serve: unbounded cache but evictions/requeues nonzero";
        if quota = 0 && quota_rejections > 0 then
          fail "serve: unbounded quota but quota_rejections nonzero";
        if not (bool_field "profile_seed")
           && n_seeded + seeded_imports + profile_pubs > 0
        then fail "serve: profile_seed off but seeding counters nonzero"
      end
      else if shared_hits + local_hits + misses + pubs > 0 then
        fail "serve: shared cache off but cache counters nonzero"

let metrics_exn j =
  check_schema j "mtj-metrics/9";
  check_serve j;
  let runs = arr_field j "runs" in
  List.iter
    (fun run ->
      let label =
        Printf.sprintf "%s/%s" (str_field run "bench") (str_field run "config")
      in
      ignore (str_field run "status");
      let insns = int_field run "insns" in
      if insns < 0 then fail "run %s: negative insns" label;
      if num_field run "cycles" < 0.0 then fail "run %s: negative cycles" label;
      let phases =
        need "phases (object)"
          (Option.bind (Json.member "phases" run) Json.get_obj)
      in
      let total =
        need (label ^ " phases.total")
          (List.assoc_opt "total" phases)
      in
      check_snapshot label "total" total;
      let sum = ref 0 in
      List.iter
        (fun (name, snap) ->
          if name <> "total" then begin
            check_snapshot label name snap;
            sum := !sum + int_field snap "insns"
          end)
        phases;
      let total_insns = int_field total "insns" in
      if !sum <> total_insns then
        fail "run %s: per-phase insns sum %d <> total %d" label !sum total_insns;
      if total_insns <> insns then
        fail "run %s: phases.total.insns %d <> run insns %d" label total_insns
          insns;
      check_charge_stats label run total;
      check_hstats label run insns;
      check_jit label run insns)
    runs;
  List.length runs

let metrics = wrap metrics_exn

(* --- bench timings --- *)

let timings_exn j =
  check_schema j "mtj-bench-timings/2";
  if int_field j "jobs" < 1 then fail "jobs < 1";
  if num_field j "total_wall_s" < 0.0 then fail "negative total_wall_s";
  List.iter
    (fun e ->
      ignore (str_field e "name");
      if num_field e "wall_s" < 0.0 then
        fail "experiment %s: negative wall_s" (str_field e "name"))
    (arr_field j "experiments");
  let runs = arr_field j "runs" in
  List.iter
    (fun r ->
      let label =
        Printf.sprintf "%s/%s" (str_field r "bench") (str_field r "config")
      in
      if num_field r "wall_s" < 0.0 then fail "run %s: negative wall_s" label;
      if int_field r "insns" < 0 then fail "run %s: negative insns" label;
      if num_field r "cycles" < 0.0 then fail "run %s: negative cycles" label;
      (* v2: host minor-heap allocation of the run, for the CI
         allocation gate *)
      if num_field r "minor_words" < 0.0 then
        fail "run %s: negative minor_words" label)
    runs;
  List.length runs

let timings = wrap timings_exn
