(** Chrome trace-event exporter (loadable in Perfetto / chrome://tracing).

    Renders a {!Sink} recording as the JSON object format: one process
    ([pid] 1) with three named threads — {e phases} (tid 1: interpreter /
    tracing / jit / jit_call / blackhole / native spans), {e jit-traces}
    (tid 2: one span per compiled-trace execution, plus instant events
    for trace compiles, aborts and guard failures) and {e gc} (tid 3:
    minor/major collection spans) — and counter tracks (["IPC"],
    ["branch_miss_rate"], ["cache_miss_rate"], ["work_rate"]) derived
    from the periodic counter samples.

    Timestamps are simulated cycles.  [B]/[E] events always balance:
    spans left open by a budget-exhausted run (or by event-buffer
    overflow) are closed at the final timestamp with
    [args.auto_closed = true].  The per-phase self time recoverable from
    the [phase]/[gc] spans equals, cycle for cycle, what
    {!Mtj_machine.Counters} attributed to each phase between attach and
    finalize ({!Validate.trace} recomputes and checks this). *)

val schema : string
(** ["mtj-trace/1"]; written to the document's ["schema"] field. *)

val export : ?bench:string -> ?vm:string -> Sink.t -> Json.t
(** Build the document (finalizes the sink if needed).  [bench]/[vm]
    label the process and are recorded under ["otherData"]. *)

val write : ?bench:string -> ?vm:string -> file:string -> Sink.t -> unit
