open Mtj_core
module Counters = Mtj_machine.Counters

let schema = "mtj-trace/1"
let pid = 1
let tid_phases = 1
let tid_traces = 2
let tid_gc = 3

let phase_tid p = if Phase.is_gc p then tid_gc else tid_phases
let phase_cat p = if Phase.is_gc p then "gc" else "phase"

let duration ph ~name ~cat ~tid ~ts ~insns ?(extra = []) () =
  Json.Obj
    ([
       ("name", Json.Str name);
       ("cat", Json.Str cat);
       ("ph", Json.Str ph);
       ("pid", Json.Int pid);
       ("tid", Json.Int tid);
       ("ts", Json.Float ts);
     ]
    @ [ ("args", Json.Obj (("insns", Json.Int insns) :: extra)) ])

let instant ~name ~cat ~tid ~ts ~insns ~extra =
  Json.Obj
    [
      ("name", Json.Str name);
      ("cat", Json.Str cat);
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("ts", Json.Float ts);
      ("args", Json.Obj (("insns", Json.Int insns) :: extra));
    ]

let counter ~name ~ts ~value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "C");
      ("pid", Json.Int pid);
      ("tid", Json.Int 0);
      ("ts", Json.Float ts);
      ("args", Json.Obj [ ("value", Json.Float value) ]);
    ]

let metadata ~name ~tid ~value =
  Json.Obj
    [
      ("name", Json.Str name);
      ("ph", Json.Str "M");
      ("pid", Json.Int pid);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.Str value) ]);
    ]

(* counter events for the window between two cumulative samples *)
let counter_events (prev : Sink.sample) (cur : Sink.sample) =
  let ts = cur.Sink.s_cycles in
  let p = prev.Sink.s_counters and c = cur.Sink.s_counters in
  let d_insns = c.Counters.insns - p.Counters.insns in
  let d_cycles = c.Counters.cycles -. p.Counters.cycles in
  let d_br = c.Counters.branches - p.Counters.branches in
  let d_miss = c.Counters.branch_misses - p.Counters.branch_misses in
  let d_mem =
    c.Counters.loads + c.Counters.stores - p.Counters.loads
    - p.Counters.stores
  in
  let d_cmiss = c.Counters.cache_misses - p.Counters.cache_misses in
  let d_ticks = cur.Sink.s_ticks - prev.Sink.s_ticks in
  let ratio num den = if den <= 0.0 then 0.0 else num /. den in
  [
    counter ~name:"IPC" ~ts
      ~value:(ratio (float_of_int d_insns) d_cycles);
    counter ~name:"branch_miss_rate" ~ts
      ~value:(ratio (float_of_int d_miss) (float_of_int d_br));
    counter ~name:"cache_miss_rate" ~ts
      ~value:(ratio (float_of_int d_cmiss) (float_of_int d_mem));
    (* dispatch ticks per 1000 instructions: the application-work rate
       that makes warmup visible on the timeline (Fig. 5) *)
    counter ~name:"work_rate" ~ts
      ~value:(ratio (1000.0 *. float_of_int d_ticks) (float_of_int d_insns));
  ]

let export ?bench ?vm (sink : Sink.t) : Json.t =
  Sink.finalize sink;
  let end_ts = Sink.end_cycles sink in
  let end_insns = Sink.end_insns sink in
  let rev_events = ref [] in
  let push e = rev_events := e :: !rev_events in
  (* open spans, innermost first: (name, cat, tid) *)
  let open_spans = ref [] in
  let begin_span ~name ~cat ~tid ~ts ~insns ?extra () =
    open_spans := (name, cat, tid) :: !open_spans;
    push (duration "B" ~name ~cat ~tid ~ts ~insns ?extra ())
  in
  let end_span ~ts ~insns ?(extra = []) () =
    match !open_spans with
    | [] -> ()
    | (name, cat, tid) :: rest ->
        open_spans := rest;
        push (duration "E" ~name ~cat ~tid ~ts ~insns ~extra ())
  in
  (* the root span: whatever phase the engine was in at attach *)
  let root = Sink.start_phase sink in
  begin_span ~name:(Phase.name root) ~cat:(phase_cat root)
    ~tid:(phase_tid root) ~ts:(Sink.start_cycles sink)
    ~insns:(Sink.start_insns sink) ();
  let trace_depth = ref 0 in
  let on_event (e : Sink.event) =
    let ts = e.Sink.at_cycles and insns = e.Sink.at_insns in
    match e.Sink.kind with
    | Sink.Phase_begin p ->
        begin_span ~name:(Phase.name p) ~cat:(phase_cat p)
          ~tid:(phase_tid p) ~ts ~insns ()
    | Sink.Phase_end _ -> end_span ~ts ~insns ()
    | Sink.Trace_enter id ->
        incr trace_depth;
        begin_span
          ~name:(Printf.sprintf "trace-%d" id)
          ~cat:"trace" ~tid:tid_traces ~ts ~insns
          ~extra:[ ("trace_id", Json.Int id) ]
          ()
    | Sink.Trace_exit _ ->
        if !trace_depth > 0 then begin
          decr trace_depth;
          end_span ~ts ~insns ()
        end
    | Sink.Guard_fail id ->
        push
          (instant ~name:"guard_fail" ~cat:"jit" ~tid:tid_traces ~ts ~insns
             ~extra:[ ("guard_id", Json.Int id) ])
    | Sink.Trace_compile id ->
        push
          (instant ~name:"trace_compile" ~cat:"jit" ~tid:tid_traces ~ts
             ~insns
             ~extra:[ ("trace_id", Json.Int id) ])
    | Sink.Trace_abort code ->
        push
          (instant ~name:"trace_abort" ~cat:"jit" ~tid:tid_traces ~ts ~insns
             ~extra:[ ("code_ref", Json.Int code) ])
    | Sink.Marker n ->
        push
          (instant ~name:"app_marker" ~cat:"app" ~tid:tid_phases ~ts ~insns
             ~extra:[ ("value", Json.Int n) ])
  in
  (* merge the event stream with the counter-sample stream so the whole
     array is timestamp-ordered *)
  let samples = Array.of_list (Sink.samples sink) in
  let si = ref 1 (* samples.(0) is the attach baseline *) in
  let flush_samples_upto ts =
    while
      !si < Array.length samples && samples.(!si).Sink.s_cycles <= ts
    do
      List.iter push (counter_events samples.(!si - 1) samples.(!si));
      incr si
    done
  in
  Sink.iter_events sink (fun e ->
      flush_samples_upto e.Sink.at_cycles;
      on_event e);
  flush_samples_upto end_ts;
  (* close everything still open (budget-exhausted runs, dropped pops),
     innermost first, at the final timestamp *)
  while !open_spans <> [] do
    end_span ~ts:end_ts ~insns:end_insns
      ~extra:[ ("auto_closed", Json.Bool true) ]
      ()
  done;
  let process_label =
    match (bench, vm) with
    | Some b, Some v -> Printf.sprintf "mtj %s (%s)" b v
    | Some b, None -> Printf.sprintf "mtj %s" b
    | _ -> "mtj-sim"
  in
  let meta =
    [
      metadata ~name:"process_name" ~tid:0 ~value:process_label;
      metadata ~name:"thread_name" ~tid:tid_phases ~value:"phases";
      metadata ~name:"thread_name" ~tid:tid_traces ~value:"jit-traces";
      metadata ~name:"thread_name" ~tid:tid_gc ~value:"gc";
    ]
  in
  let other =
    [
      ("bench", match bench with Some b -> Json.Str b | None -> Json.Null);
      ("vm", match vm with Some v -> Json.Str v | None -> Json.Null);
      ("events", Json.Int (Sink.num_events sink));
      ("dropped", Json.Int (Sink.dropped sink));
      ("ticks", Json.Int (Sink.ticks sink));
      ("start_insns", Json.Int (Sink.start_insns sink));
      ("end_insns", Json.Int end_insns);
      ("start_cycles", Json.Float (Sink.start_cycles sink));
      ("end_cycles", Json.Float end_ts);
    ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("displayTimeUnit", Json.Str "ms");
      ("otherData", Json.Obj other);
      ("traceEvents", Json.Arr (meta @ List.rev !rev_events));
    ]

let write ?bench ?vm ~file sink =
  Json.write_file ~file (export ?bench ?vm sink)
