(** Minimal JSON tree, printer and parser.

    The observability exporters ({!Chrome_trace}, {!Metrics}) build
    documents as values of {!t} and serialize them here; the round-trip
    tests and the schema validator ({!Validate}) parse reports back with
    {!parse}.  Self-contained on purpose: the repository deliberately
    carries no external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** {2 Printing} *)

val to_buffer : ?indent:int -> Buffer.t -> t -> unit
(** Serialize. [indent] > 0 pretty-prints with that step (default 0:
    compact). Floats are printed with enough digits to round-trip
    ([%.17g]); non-finite floats are clamped to [0] so the output is
    always valid JSON. *)

val to_string : ?indent:int -> t -> string

val write_file : ?indent:int -> file:string -> t -> unit
(** Serialize to [file] with a trailing newline. *)

(** {2 Parsing} *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing garbage is an error. Numbers
    without [.], [e] or [E] parse as [Int], the rest as [Float]. The
    error string carries a byte offset. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** Field of an object ([None] on non-objects and missing keys). *)

val get_str : t -> string option
val get_int : t -> int option

val get_num : t -> float option
(** [Int] or [Float], as a float. *)

val get_arr : t -> t list option
val get_obj : t -> (string * t) list option
