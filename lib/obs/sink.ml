open Mtj_core
module Engine = Mtj_machine.Engine
module Counters = Mtj_machine.Counters

type kind =
  | Phase_begin of Phase.t
  | Phase_end of Phase.t
  | Trace_enter of int
  | Trace_exit of int
  | Guard_fail of int
  | Trace_compile of int
  | Trace_abort of int
  | Marker of int

type event = { kind : kind; at_insns : int; at_cycles : float }

type sample = {
  s_insns : int;
  s_cycles : float;
  s_ticks : int;
  s_counters : Counters.snapshot;
}

(* Events are stored structure-of-arrays so recording is three unboxed
   stores and a counter bump: an int tag, an int argument, and the two
   timestamps.  Tags: 0 phase_begin, 1 phase_end, 2 trace_enter,
   3 trace_exit, 4 guard_fail, 5 trace_compile, 6 trace_abort, 7 marker. *)
type t = {
  eng : Engine.t;
  capacity : int;
  tags : int array;
  args : int array;
  ev_insns : int array;
  ev_cycles : float array;
  mutable n : int;
  mutable dropped : int;
  (* counter sampling *)
  window : int;
  mutable next_mark : int;
  mutable ticks : int;
  mutable rev_samples : sample list;
  (* run boundaries *)
  start_phase : Phase.t;
  start_insns : int;
  start_cycles : float;
  mutable end_insns : int;
  mutable end_cycles : float;
  mutable finalized : bool;
}

(* Samples are taken from inside listener dispatch, i.e. mid-stream of
   the engine's staged charging fast path.  [Counters.total] flushes the
   staged state before reading (and [total_cycles]/[insns] are always
   exact), so ring-buffer samples observe exact counts with no explicit
   synchronization here. *)
let take_sample t insns =
  t.rev_samples <-
    {
      s_insns = insns;
      s_cycles = Engine.total_cycles t.eng;
      s_ticks = t.ticks;
      s_counters = Counters.total (Engine.counters t.eng);
    }
    :: t.rev_samples

let record t tag arg insns =
  if t.n < t.capacity then begin
    let i = t.n in
    t.tags.(i) <- tag;
    t.args.(i) <- arg;
    t.ev_insns.(i) <- insns;
    t.ev_cycles.(i) <- Engine.total_cycles t.eng;
    t.n <- i + 1
  end
  else t.dropped <- t.dropped + 1

let on_annot t ~insns (a : Annot.t) =
  (match a with
  | Annot.Phase_push p -> record t 0 (Phase.index p) insns
  | Annot.Phase_pop p -> record t 1 (Phase.index p) insns
  | Annot.Trace_enter id -> record t 2 id insns
  | Annot.Trace_exit id -> record t 3 id insns
  | Annot.Guard_fail id -> record t 4 id insns
  | Annot.Trace_compile id -> record t 5 id insns
  | Annot.Trace_abort code -> record t 6 code insns
  | Annot.App_marker n -> record t 7 n insns
  | Annot.Dispatch_tick -> t.ticks <- t.ticks + 1
  | Annot.Ir_exec _ | Annot.Aot_enter _ | Annot.Aot_exit _ -> ());
  if insns >= t.next_mark then begin
    take_sample t insns;
    t.next_mark <- t.next_mark + t.window
  end

let attach ?(capacity = 1 lsl 18) ?counter_window eng =
  let window =
    match counter_window with
    | Some w -> max 1 w
    | None -> (Engine.config eng).Config.sample_window
  in
  let capacity = max 16 capacity in
  let t =
    {
      eng;
      capacity;
      tags = Array.make capacity 0;
      args = Array.make capacity 0;
      ev_insns = Array.make capacity 0;
      ev_cycles = Array.make capacity 0.0;
      n = 0;
      dropped = 0;
      window;
      next_mark = Engine.total_insns eng + window;
      ticks = 0;
      rev_samples = [];
      start_phase = Engine.current_phase eng;
      start_insns = Engine.total_insns eng;
      start_cycles = Engine.total_cycles eng;
      end_insns = 0;
      end_cycles = 0.0;
      finalized = false;
    }
  in
  (* baseline sample: counter windows are deltas between consecutive
     samples, so the exporters need the totals at attach time *)
  take_sample t t.start_insns;
  Engine.add_listener eng (fun ~insns a -> on_annot t ~insns a);
  t

let finalize t =
  if not t.finalized then begin
    t.end_insns <- Engine.total_insns t.eng;
    t.end_cycles <- Engine.total_cycles t.eng;
    take_sample t t.end_insns;
    t.finalized <- true
  end

let kind_of t i =
  let arg = t.args.(i) in
  match t.tags.(i) with
  | 0 -> Phase_begin (Phase.of_index arg)
  | 1 -> Phase_end (Phase.of_index arg)
  | 2 -> Trace_enter arg
  | 3 -> Trace_exit arg
  | 4 -> Guard_fail arg
  | 5 -> Trace_compile arg
  | 6 -> Trace_abort arg
  | 7 -> Marker arg
  | tag -> invalid_arg (Printf.sprintf "Sink: bad event tag %d" tag)

let event_of t i =
  { kind = kind_of t i; at_insns = t.ev_insns.(i); at_cycles = t.ev_cycles.(i) }

let events t = Array.init t.n (event_of t)

let iter_events t f =
  for i = 0 to t.n - 1 do
    f (event_of t i)
  done

let samples t = List.rev t.rev_samples
let num_events t = t.n
let dropped t = t.dropped
let ticks t = t.ticks
let start_phase t = t.start_phase
let start_insns t = t.start_insns
let start_cycles t = t.start_cycles

let end_insns t = if t.finalized then t.end_insns else Engine.total_insns t.eng
let end_cycles t =
  if t.finalized then t.end_cycles else Engine.total_cycles t.eng

let engine t = t.eng
