type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_nan f || Float.is_integer f && Float.abs f < 1e15 then
    (* integral values (and NaN, clamped) print without an exponent so
       the common case — counters that happen to be whole — stays easy
       to read *)
    Buffer.add_string buf
      (Printf.sprintf "%.1f" (if Float.is_nan f then 0.0 else f))
  else if Float.abs f = Float.infinity then Buffer.add_string buf "0.0"
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let to_buffer ?(indent = 0) buf t =
  let pad n = if indent > 0 then Buffer.add_string buf (String.make n ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | Str s -> add_escaped buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad ((depth + 1) * indent);
            go (depth + 1) item)
          items;
        nl ();
        pad (depth * indent);
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              nl ()
            end;
            pad ((depth + 1) * indent);
            add_escaped buf k;
            Buffer.add_string buf (if indent > 0 then ": " else ":");
            go (depth + 1) v)
          fields;
        nl ();
        pad (depth * indent);
        Buffer.add_char buf '}'
  in
  go 0 t

let to_string ?indent t =
  let buf = Buffer.create 4096 in
  to_buffer ?indent buf t;
  Buffer.contents buf

let write_file ?indent ~file t =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ?indent t);
      output_char oc '\n')

(* --- parsing --- *)

exception Bad of int * string

let parse (s : string) : (t, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | None -> fail "bad \\u escape"
               | Some code ->
                   (* BMP only; enough for our own escaping of control
                      characters *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else
                     Buffer.add_string buf
                       (Printf.sprintf "\\u%04x" code));
               pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    let has_frac =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text
    in
    if has_frac then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail ("bad number " ^ text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail ("bad number " ^ text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "json parse error at byte %d: %s" at msg)

(* --- accessors --- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let get_str = function Str s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_num = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let get_arr = function Arr l -> Some l | _ -> None
let get_obj = function Obj l -> Some l | _ -> None
