(** Low-overhead structured event sink.

    Attaches to a machine engine as an ordinary annotation listener and
    records the cross-layer event stream — phase pushes/pops (framework,
    GC, blackhole), compiled-trace enters/exits, guard failures, trace
    compiles/aborts, application markers — into a preallocated flat
    buffer, timestamped with the simulated instruction and cycle counts
    at the moment each event fired.  Alongside the event stream it takes
    periodic counter samples (engine counter snapshots + dispatch-tick
    totals) from which the exporters derive IPC / miss-rate / work-rate
    counter tracks.

    Disabled by default: a run only pays for the sink when one is
    attached.  When attached, the per-event cost is a handful of array
    stores into preallocated arrays — no allocation on the hot path
    (counter samples, taken every [counter_window] instructions, are the
    only allocating operation). *)

type t

(** Event kinds, in the order they appear in the stream. *)
type kind =
  | Phase_begin of Mtj_core.Phase.t
  | Phase_end of Mtj_core.Phase.t  (** carries the phase that was popped *)
  | Trace_enter of int
  | Trace_exit of int
  | Guard_fail of int
  | Trace_compile of int
  | Trace_abort of int  (** payload: code ref of the aborted loop header *)
  | Marker of int       (** application-level [annotate(n)] *)

type event = { kind : kind; at_insns : int; at_cycles : float }

(** One periodic counter sample: cumulative totals at the sample point. *)
type sample = {
  s_insns : int;
  s_cycles : float;
  s_ticks : int;  (** cumulative dispatch ticks *)
  s_counters : Mtj_machine.Counters.snapshot;  (** engine totals *)
}

val attach :
  ?capacity:int -> ?counter_window:int -> Mtj_machine.Engine.t -> t
(** Register on the engine.  [capacity] bounds the event buffer (default
    [1 lsl 18] events); once full, further events are counted in
    {!dropped} but not stored, so the recorded prefix stays well-formed.
    [counter_window] is the counter-sampling interval in instructions
    (default: the engine configuration's [sample_window]). *)

val finalize : t -> unit
(** Record the final timestamps and a closing counter sample.  Call once
    after the run completes; idempotent. *)

(* --- observation (used by the exporters) --- *)

val events : t -> event array
(** The recorded events, oldest first.  Allocates; call after the run. *)

val iter_events : t -> (event -> unit) -> unit
val samples : t -> sample list
(** Counter samples, oldest first.  The first sample is the baseline
    taken at attach time; {!finalize} appends a closing sample. *)

val num_events : t -> int
val dropped : t -> int
val ticks : t -> int

val start_phase : t -> Mtj_core.Phase.t
(** The engine's current phase when the sink attached (the root span). *)

val start_insns : t -> int
val start_cycles : t -> float
val end_insns : t -> int
val end_cycles : t -> float
val engine : t -> Mtj_machine.Engine.t
