open Mtj_core
module Counters = Mtj_machine.Counters
module Engine = Mtj_machine.Engine

(* v2: per-trace rows gained [translations]/[cache_hits] and the jit
   block gained [translations]/[code_cache_hits] (threaded-code cache
   effectiveness).
   v3: run records gained [charge_flushes]/[fast_path_bundles] — the
   engine's staged charging fast path exposes how many bundles were
   coalesced and how many counter writebacks that took.
   v4: the jit block gained [interp_translations]/[threaded_code_hits] —
   the threaded interpreter tier's translate-once cache (code objects
   translated to handler-closure arrays, and code switches served from
   the cache).
   v5: run records gained [value_interned_hits]/[frame_pool_reuses]/
   [dict_hash_skips] — the allocation-free value fast paths (small-int
   interning, frame pooling, precomputed key hashes); host-side
   counters, invisible to the simulated machine.
   v6: the jit block gained the multi-tier counters
   [tier1_compiles]/[tier2_compiles]/[demotions]/[first_entry_insns]
   and the per-tier residency block [tier_residency]
   (entries/dynamic_ir per tier); trace rows gained
   [deopts]/[bridges].
   v7: the jit block gained [shared_code_hits] (code objects imported
   from the cross-context shared cache instead of compiled locally —
   serving mode) and the derived [code_cache_total_hits] =
   code_cache_hits + shared_code_hits; documents gained an optional
   top-level [serve] block (latency percentiles, warm/cold split and
   shared-cache counters of a serving session).
   v8: run records replaced [value_interned_hits] with the
   immediate-representation counters [imm_fast_path_hits]/
   [boxed_slow_path_hits]/[typed_ops_total] — typed arithmetic entries
   that stayed on the unboxed immediate path vs. fell through to a
   boxed slow path (floats, bigints, strings, overflow); the two always
   sum to the total.  Host-side counters, invisible to the simulated
   machine.
   v9: the jit block gained [seeded_sites] (loop sites seeded from an
   imported trace profile — serving mode); the serve block gained the
   seeding/bounded-cache session knobs ([profile_seed],
   [cache_capacity], [tenant_quota], [corpus_size]), the warmup
   comparison ([seeded] count + first-entry-insns means) and
   [cache_entries]; [shared_cache_stats] gained
   [evictions]/[requeues]/[quota_rejections]/[profile_publications]/
   [seeded_imports]. *)
let schema = "mtj-metrics/9"

let snapshot_json (s : Counters.snapshot) =
  let cache_miss_rate =
    let mem = s.Counters.loads + s.Counters.stores in
    if mem = 0 then 0.0
    else float_of_int s.Counters.cache_misses /. float_of_int mem
  in
  Json.Obj
    [
      ("insns", Json.Int s.Counters.insns);
      ("cycles", Json.Float s.Counters.cycles);
      ("branches", Json.Int s.Counters.branches);
      ("branch_misses", Json.Int s.Counters.branch_misses);
      ("loads", Json.Int s.Counters.loads);
      ("stores", Json.Int s.Counters.stores);
      ("cache_misses", Json.Int s.Counters.cache_misses);
      ("ipc", Json.Float (Counters.ipc s));
      ("branch_mpki", Json.Float (Counters.branch_mpki s));
      ("branch_miss_rate", Json.Float (Counters.branch_miss_rate s));
      ("cache_miss_rate", Json.Float cache_miss_rate);
    ]

let phases_json (c : Counters.t) =
  let rows =
    List.filter_map
      (fun p ->
        let s = Counters.phase c p in
        if s.Counters.insns = 0 then None
        else Some (Phase.name p, snapshot_json s))
      Phase.all
  in
  Json.Obj (rows @ [ ("total", snapshot_json (Counters.total c)) ])

let gc_json (g : Mtj_rt.Gc_sim.stats) =
  Json.Obj
    [
      ("minor_collections", Json.Int g.Mtj_rt.Gc_sim.minor_collections);
      ("major_collections", Json.Int g.Mtj_rt.Gc_sim.major_collections);
      ("allocated_objects", Json.Int g.Mtj_rt.Gc_sim.allocated_objects);
      ("allocated_words", Json.Int g.Mtj_rt.Gc_sim.allocated_words);
      ("promoted_objects", Json.Int g.Mtj_rt.Gc_sim.promoted_objects);
      ("freed_objects", Json.Int g.Mtj_rt.Gc_sim.freed_objects);
    ]

let trace_row_json (tr : Mtj_rjit.Ir.trace) =
  let open Mtj_rjit in
  let kind, loop_code =
    match tr.Ir.kind with
    | Ir.Loop { loop_code; _ } -> ("loop", loop_code)
    | Ir.Bridge { loop_code; _ } -> ("bridge", loop_code)
  in
  let dynamic_ir = Array.fold_left ( + ) 0 tr.Ir.op_exec in
  Json.Obj
    [
      ("id", Json.Int tr.Ir.trace_id);
      ("kind", Json.Str kind);
      ("tier", Json.Int tr.Ir.tier);
      ("loop_code", Json.Int loop_code);
      ("static_ops", Json.Int (Array.length tr.Ir.ops));
      ("entries", Json.Int tr.Ir.exec_count);
      ("dynamic_ir", Json.Int dynamic_ir);
      ("translations", Json.Int tr.Ir.translations);
      ("cache_hits", Json.Int tr.Ir.cache_hits);
      ("deopts", Json.Int tr.Ir.deopts);
      ("bridges", Json.Int tr.Ir.bridges);
    ]

let jitlog_json (jl : Mtj_rjit.Jitlog.t) =
  let open Mtj_rjit in
  let traces = Jitlog.traces jl in
  let t1_entries, t2_entries, t1_dyn, t2_dyn = Jitlog.tier_residency jl in
  Json.Obj
    [
      ("num_traces", Json.Int (Jitlog.num_traces jl));
      ("aborts", Json.Int jl.Jitlog.aborts);
      ( "abort_reasons",
        Json.Obj
          (List.map
             (fun (r, n) -> (r, Json.Int n))
             (List.sort compare jl.Jitlog.abort_reasons)) );
      ("deopts", Json.Int jl.Jitlog.deopts);
      ("bridges_attached", Json.Int jl.Jitlog.bridges_attached);
      ("blacklisted", Json.Int jl.Jitlog.blacklisted);
      ("retiers", Json.Int jl.Jitlog.retiers);
      ("translations", Json.Int jl.Jitlog.translations);
      ("code_cache_hits", Json.Int jl.Jitlog.code_cache_hits);
      ("shared_code_hits", Json.Int jl.Jitlog.shared_code_hits);
      ("code_cache_total_hits", Json.Int (Jitlog.total_code_hits jl));
      ("interp_translations", Json.Int jl.Jitlog.interp_translations);
      ("threaded_code_hits", Json.Int jl.Jitlog.threaded_code_hits);
      ("tier1_compiles", Json.Int jl.Jitlog.tier1_compiles);
      ("tier2_compiles", Json.Int jl.Jitlog.tier2_compiles);
      ("demotions", Json.Int jl.Jitlog.demotions);
      ("first_entry_insns", Json.Int jl.Jitlog.first_entry_insns);
      ("seeded_sites", Json.Int jl.Jitlog.seeded_sites);
      ( "tier_residency",
        Json.Obj
          [
            ("tier1_entries", Json.Int t1_entries);
            ("tier2_entries", Json.Int t2_entries);
            ("tier1_dynamic_ir", Json.Int t1_dyn);
            ("tier2_dynamic_ir", Json.Int t2_dyn);
          ] );
      ("total_ir_compiled", Json.Int (Jitlog.total_ir_compiled jl));
      ("total_dynamic_ir", Json.Int (Jitlog.total_dynamic_ir jl));
      ("traces", Json.Arr (List.map trace_row_json traces));
    ]

let run_json ~bench ~config ~status ~engine ?jitlog ?gc ?ticks ?hstats () =
  let opt f = function Some v -> f v | None -> Json.Null in
  let hstat f =
    opt (fun (h : Mtj_rt.Hstats.t) -> Json.Int (f h)) hstats
  in
  Json.Obj
    [
      ("bench", Json.Str bench);
      ("config", Json.Str config);
      ("status", Json.Str status);
      ("insns", Json.Int (Engine.total_insns engine));
      ("cycles", Json.Float (Engine.total_cycles engine));
      ("ticks", opt (fun n -> Json.Int n) ticks);
      ("charge_flushes", Json.Int (Engine.charge_flushes engine));
      ("fast_path_bundles", Json.Int (Engine.fast_path_bundles engine));
      ( "imm_fast_path_hits",
        hstat (fun h -> h.Mtj_rt.Hstats.imm_fast_path_hits) );
      ( "boxed_slow_path_hits",
        hstat (fun h -> h.Mtj_rt.Hstats.boxed_slow_path_hits) );
      ("typed_ops_total", hstat (fun h -> h.Mtj_rt.Hstats.typed_ops_total));
      ("frame_pool_reuses", hstat (fun h -> h.Mtj_rt.Hstats.frame_pool_reuses));
      ("dict_hash_skips", hstat (fun h -> h.Mtj_rt.Hstats.dict_hash_skips));
      ("phases", phases_json (Engine.counters engine));
      ("gc", opt gc_json gc);
      ("jit", opt jitlog_json jitlog);
    ]

let document ?serve ~runs () =
  Json.Obj
    ([ ("schema", Json.Str schema); ("runs", Json.Arr runs) ]
    @ match serve with Some s -> [ ("serve", s) ] | None -> [])

let write ?serve ~file ~runs () =
  Json.write_file ~indent:2 ~file (document ?serve ~runs ())
