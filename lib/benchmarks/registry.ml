(** Benchmark registry: every workload the harness runs, with its
    language, suite, and the execution regime it exercises (per the
    paper's per-benchmark discussion). *)

type lang = Py | Rk

type suite = Pypy_suite | Clbg

type bench = {
  name : string;
  lang : lang;
  suite : suite;
  source : string;
  regime : string;  (* what dominates, per the paper *)
}

let regime_of = function
  | "richards" -> "branchy method dispatch; guards dominate"
  | "crypto_pyaes" -> "int ops + list indexing; strong JIT win"
  | "chaos" -> "float arithmetic + list grid"
  | "telco" -> "int arithmetic with data-dependent branches"
  | "spectral_norm" | "spectralnorm" -> "dense float kernel; hot tiny trace"
  | "django" -> "dict lookups + string building (template rendering)"
  | "twisted_iteration" -> "object allocation + method calls (event loop)"
  | "spitfire_cstringio" -> "string-builder appends (rbuilder AOT calls)"
  | "raytrace_simple" -> "float vector objects; allocation + getfield"
  | "hexiom2" -> "recursive search over lists; branchy"
  | "float" -> "float object fields; math AOT calls"
  | "ai" -> "recursive backtracking; stays interpreted"
  | "json_bench" -> "string escaping module calls (AOT) + builder"
  | "meteor_contest" -> "set algebra AOT calls dominate"
  | "pidigits" -> "bignum arithmetic: all time in rbigint AOT calls"
  | "fannkuch" | "fannkuchredux" -> "list slicing/permutation (setslice AOT)"
  | "nbody_modified" | "nbody" -> "float kernel with C pow() calls"
  | "pyflate_fast" -> "bit/str ops; find_char AOT calls"
  | "sympy_str" -> "very branchy recursion; worst case, mostly interpreter"
  | "bm_mako" -> "string replace (AOT) heavy templates"
  | "bm_mdp" -> "dict probes dominate (ll_call_lookup_function)"
  | "genshi_xml" -> "unicode translate AOT calls"
  | "eparse" -> "split/strip/join string parsing"
  | "binarytrees" -> "allocation/GC bound"
  | "fasta" -> "string building + table lookup"
  | "mandelbrot" -> "pure float loop; best JIT case"
  | "revcomp" -> "translate + reverse; library-call bound"
  | "knucleotide" -> "dict-counting bound"
  | "chameneosredux" -> "tiny int loop; library/GIL bound in CPython"
  | _ -> "mixed"

let pypy_suite : bench list =
  List.map
    (fun (name, source) ->
      { name; lang = Py; suite = Pypy_suite; source; regime = regime_of name })
    Py_suite.all

let clbg_py : bench list =
  List.map
    (fun (name, source) ->
      { name; lang = Py; suite = Clbg; source; regime = regime_of name })
    Clbg_py.all

let clbg_rk : bench list =
  List.map
    (fun (name, source) ->
      { name; lang = Rk; suite = Clbg; source; regime = regime_of name })
    Clbg_rk.all

let all = pypy_suite @ clbg_py @ clbg_rk

let find ~lang name =
  List.find_opt (fun b -> b.name = name && b.lang = lang) all

let find_exn ~lang name =
  match find ~lang name with
  | Some b -> b
  | None -> invalid_arg ("unknown benchmark: " ^ name)
