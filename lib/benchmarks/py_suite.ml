(** The PyPy-Benchmark-Suite analogues, written in pylite.

    Each program is a scaled-down but regime-faithful version of the
    benchmark the paper characterizes: the same kind of work dominates
    (bigint arithmetic in pidigits, dict probes in django/genshi, string
    building in spitfire, guards in richards, ...), so the phase and
    IR-mix shapes of Figures 2–9 are exercised by the same mechanisms. *)

(* ---------------------------------------------------------------- *)
let richards =
  {|
class Packet:
    def __init__(self, link, ident, kind):
        self.link = link
        self.ident = ident
        self.kind = kind
        self.datum = 0
        self.data = [0, 0, 0, 0]

class Task:
    def __init__(self, ident, priority, work, scheduler):
        self.ident = ident
        self.priority = priority
        self.work = work
        self.scheduler = scheduler
        self.state_wait = False
        self.state_hold = False
        self.v1 = 0
        self.v2 = 0

    def run_task(self, pkt):
        return None

class IdleTask(Task):
    def run_task(self, pkt):
        s = self.scheduler
        self.v2 = self.v2 - 1
        if self.v2 == 0:
            self.state_hold = True
            return None
        if self.v1 % 2 == 0:
            self.v1 = self.v1 // 2
            return s.find_task(5)
        self.v1 = (self.v1 // 2) ^ 53256
        return s.find_task(6)

class WorkTask(Task):
    def run_task(self, pkt):
        s = self.scheduler
        if pkt is None:
            self.state_wait = True
            return None
        if self.v1 == 2:
            self.v1 = 3
        else:
            self.v1 = 2
        pkt.ident = self.v1
        pkt.datum = 0
        i = 0
        while i < 4:
            self.v2 = self.v2 + 1
            if self.v2 > 26:
                self.v2 = 1
            pkt.data[i] = 64 + self.v2
            i = i + 1
        return s.queue_packet(pkt, self.v1)

class HandlerTask(Task):
    def __init__(self, ident, priority, work, scheduler):
        Task.__init__(self, ident, priority, work, scheduler)
        self.work_in = []
        self.device_in = []

    def run_task(self, pkt):
        s = self.scheduler
        if pkt is not None:
            if pkt.kind == 1:
                self.work_in.append(pkt)
            else:
                self.device_in.append(pkt)
        if len(self.work_in) > 0:
            work = self.work_in[0]
            count = work.datum
            if count >= 4:
                self.work_in.pop(0)
                return s.queue_packet(work, 2)
            if len(self.device_in) > 0:
                dev = self.device_in.pop(0)
                dev.datum = work.data[count]
                work.datum = count + 1
                return s.queue_packet(dev, self.ident + 2)
        self.state_wait = True
        return None

class DeviceTask(Task):
    def run_task(self, pkt):
        s = self.scheduler
        if pkt is None:
            if self.v1 == 0:
                self.state_wait = True
                return None
            p = self.v1
            self.v1 = 0
            s.holdcount = s.holdcount + 1
            return s.queue_packet_obj(p)
        self.v1 = pkt
        self.state_hold = True
        return None

class Scheduler:
    def __init__(self):
        self.tasks = []
        self.queues = {}
        self.holdcount = 0
        self.qpktcount = 0

    def add_task(self, task, kind):
        self.tasks.append(task)
        self.queues[kind] = []

    def find_task(self, kind):
        return kind

    def queue_packet(self, pkt, kind):
        if kind in self.queues:
            self.queues[kind].append(pkt)
            self.qpktcount = self.qpktcount + 1
        return None

    def queue_packet_obj(self, pkt):
        self.qpktcount = self.qpktcount + 1
        return None

    def schedule(self, rounds):
        n = len(self.tasks)
        r = 0
        while r < rounds:
            i = 0
            while i < n:
                task = self.tasks[i]
                if not task.state_hold:
                    kind = task.ident
                    q = self.queues[kind]
                    pkt = None
                    if len(q) > 0:
                        pkt = q.pop(0)
                    task.run_task(pkt)
                    if task.state_hold and task.v2 == 0:
                        task.state_hold = False
                        task.v2 = 10
                i = i + 1
            r = r + 1

def main():
    s = Scheduler()
    idle = IdleTask(5, 0, 0, s)
    idle.v1 = 1
    idle.v2 = 10000
    s.add_task(idle, 5)
    w = WorkTask(6, 1000, 0, s)
    w.v1 = 2
    s.add_task(w, 6)
    h1 = HandlerTask(7, 2000, 0, s)
    s.add_task(h1, 7)
    h2 = HandlerTask(8, 3000, 0, s)
    s.add_task(h2, 8)
    d1 = DeviceTask(9, 4000, 0, s)
    s.add_task(d1, 9)
    d2 = DeviceTask(10, 5000, 0, s)
    s.add_task(d2, 10)
    k = 0
    while k < 12:
        p = Packet(None, 6, 1)
        s.queue_packet(p, 6)
        q = Packet(None, 9, 2)
        s.queue_packet(q, 9)
        k = k + 1
    s.schedule(1500)
    print(s.qpktcount)
    print(s.holdcount)

main()
|}

(* ---------------------------------------------------------------- *)
let crypto_pyaes =
  {|
def make_sbox():
    sbox = []
    for i in range(256):
        x = i
        x = (x * 7 + 99) % 256
        x = (x ^ (x * 13 % 251)) % 256
        sbox.append(x)
    return sbox

def encrypt_block(block, sbox, rounds):
    for r in range(rounds):
        for i in range(16):
            block[i] = sbox[block[i]]
        t = block[0]
        for i in range(15):
            block[i] = block[i + 1] ^ (t & 15)
        block[15] = t
        acc = 0
        for i in range(16):
            acc = (acc + block[i]) % 256
        block[0] = block[0] ^ acc
    return block

def main():
    sbox = make_sbox()
    total = 0
    for b in range(260):
        block = []
        for i in range(16):
            block.append((b * 31 + i * 7) % 256)
        encrypt_block(block, sbox, 10)
        total = (total + block[0] + block[15]) % 65536
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let chaos =
  {|
def main():
    width = 60
    height = 40
    grid = []
    for y in range(height):
        row = []
        for x in range(width):
            row.append(0)
        grid.append(row)
    x = 0.35
    y = 0.71
    seed = 1234567
    count = 0
    for i in range(15000):
        seed = (seed * 1103515245 + 12345) % 2147483648
        r = seed % 3
        if r == 0:
            x = x * 0.5
            y = y * 0.5
        elif r == 1:
            x = x * 0.5 + 0.5
            y = y * 0.5
        else:
            x = x * 0.5 + 0.25
            y = y * 0.5 + 0.5
        gx = int(x * width)
        gy = int(y * height)
        if gx >= 0 and gx < width and gy >= 0 and gy < height:
            row = grid[gy]
            row[gx] = row[gx] + 1
            count = count + 1
    total = 0
    for yy in range(height):
        row = grid[yy]
        for xx in range(width):
            if row[xx] > 0:
                total = total + 1
    print(count)
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let telco =
  {|
def rate_call(duration, rate_num, rate_den):
    price = duration * rate_num // rate_den
    tax = price * 6 // 100
    dist_tax = 0
    if duration > 120:
        dist_tax = price * 3 // 100
    return price + tax + dist_tax

def main():
    seed = 42
    total = 0
    calls = 0
    for i in range(26000):
        seed = (seed * 69069 + 1) % 4294967296
        duration = seed % 2879
        kind = seed % 3
        if kind == 0:
            p = rate_call(duration, 9, 1000)
        elif kind == 1:
            p = rate_call(duration, 27, 1000)
        else:
            p = rate_call(duration, 77, 10000)
        total = total + p
        calls = calls + 1
    print(total)
    print(calls)

main()
|}

(* ---------------------------------------------------------------- *)
let spectral_norm =
  {|
def eval_a(i, j):
    return 1.0 / ((i + j) * (i + j + 1) / 2.0 + i + 1.0)

def eval_a_times_u(u, n, out):
    for i in range(n):
        s = 0.0
        for j in range(n):
            s = s + eval_a(i, j) * u[j]
        out[i] = s

def eval_at_times_u(u, n, out):
    for i in range(n):
        s = 0.0
        for j in range(n):
            s = s + eval_a(j, i) * u[j]
        out[i] = s

def main():
    n = 34
    u = []
    v = []
    w = []
    for i in range(n):
        u.append(1.0)
        v.append(0.0)
        w.append(0.0)
    for k in range(10):
        eval_a_times_u(u, n, w)
        eval_at_times_u(w, n, v)
        eval_a_times_u(v, n, w)
        eval_at_times_u(w, n, u)
    vbv = 0.0
    vv = 0.0
    for i in range(n):
        vbv = vbv + u[i] * v[i]
        vv = vv + v[i] * v[i]
    result = math.sqrt(vbv / vv)
    print(int(result * 1000000000))

main()
|}

(* ---------------------------------------------------------------- *)
let django =
  {|
def render_row(ctx, cols):
    parts = []
    for c in cols:
        key = "col" + str(c)
        v = ctx.get(key, "-")
        parts.append("<td>")
        parts.append(v)
        parts.append("</td>")
    return "".join(parts)

def main():
    cols = []
    for c in range(10):
        cols.append(c)
    out_len = 0
    for row in range(1300):
        ctx = {}
        for c in range(10):
            ctx["col" + str(c)] = "value" + str((row + c) % 17)
        html = "<tr>" + render_row(ctx, cols) + "</tr>"
        html = html.replace("value3", "TAGGED")
        out_len = out_len + len(html)
    print(out_len)

main()
|}

(* ---------------------------------------------------------------- *)
let twisted_iteration =
  {|
class Deferred:
    def __init__(self, value):
        self.value = value
        self.callbacks = []

    def add_callback(self, tag):
        self.callbacks.append(tag)

    def fire(self):
        v = self.value
        for tag in self.callbacks:
            if tag == 0:
                v = v + 1
            elif tag == 1:
                v = v * 2
            else:
                v = v - 3
        return v

class Reactor:
    def __init__(self):
        self.pending = []
        self.processed = 0

    def push(self, d):
        self.pending.append(d)

    def iterate(self):
        work = self.pending
        self.pending = []
        total = 0
        for d in work:
            total = total + d.fire()
            self.processed = self.processed + 1
        return total

def main():
    r = Reactor()
    total = 0
    for it in range(1100):
        for k in range(8):
            d = Deferred(k + it % 5)
            d.add_callback(k % 3)
            d.add_callback((k + 1) % 3)
            r.push(d)
        total = (total + r.iterate()) % 1000003
    print(total)
    print(r.processed)

main()
|}

(* ---------------------------------------------------------------- *)
let spitfire_cstringio =
  {|
def render_table(rows, cols):
    buf = StringIO()
    buf.write("<table>")
    for r in range(rows):
        buf.write("<tr>")
        for c in range(cols):
            buf.write("<td>")
            buf.write(str(r * cols + c))
            buf.write("</td>")
        buf.write("</tr>")
    buf.write("</table>")
    return buf.getvalue()

def main():
    total = 0
    for i in range(26):
        s = render_table(100, 10)
        total = total + len(s)
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let raytrace_simple =
  {|
class Vec:
    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z

    def dot(self, o):
        return self.x * o.x + self.y * o.y + self.z * o.z

    def scale(self, k):
        return Vec(self.x * k, self.y * k, self.z * k)

    def sub(self, o):
        return Vec(self.x - o.x, self.y - o.y, self.z - o.z)

    def add(self, o):
        return Vec(self.x + o.x, self.y + o.y, self.z + o.z)

class Sphere:
    def __init__(self, center, radius):
        self.center = center
        self.radius = radius

    def intersect(self, origin, direction):
        oc = origin.sub(self.center)
        b = 2.0 * oc.dot(direction)
        c = oc.dot(oc) - self.radius * self.radius
        disc = b * b - 4.0 * c
        if disc < 0.0:
            return -1.0
        return (0.0 - b - math.sqrt(disc)) / 2.0

def main():
    spheres = []
    spheres.append(Sphere(Vec(0.0, 0.0, -5.0), 1.0))
    spheres.append(Sphere(Vec(1.5, 0.5, -6.0), 1.2))
    spheres.append(Sphere(Vec(-1.5, -0.5, -4.0), 0.8))
    width = 48
    height = 36
    hits = 0
    shade = 0.0
    for py in range(height):
        for px in range(width):
            dx = (px - width / 2.0) / width
            dy = (py - height / 2.0) / height
            d = Vec(dx, dy, -1.0)
            norm = math.sqrt(d.dot(d))
            d = d.scale(1.0 / norm)
            origin = Vec(0.0, 0.0, 0.0)
            best = 1000000.0
            for s in spheres:
                t = s.intersect(origin, d)
                if t > 0.0 and t < best:
                    best = t
            if best < 1000000.0:
                hits = hits + 1
                p = origin.add(d.scale(best))
                shade = shade + (p.z if p.z > -10.0 else 0.0)
    print(hits)
    print(int(shade * 1000))

main()
|}

(* ---------------------------------------------------------------- *)
let hexiom2 =
  {|
def neighbours(pos, size):
    out = []
    x = pos % size
    y = pos // size
    if x > 0:
        out.append(pos - 1)
    if x < size - 1:
        out.append(pos + 1)
    if y > 0:
        out.append(pos - size)
    if y < size - 1:
        out.append(pos + size)
    return out

def solve(board, pos, size, depth):
    if depth == 0 or pos >= size * size:
        score = 0
        for i in range(size * size):
            if board[i] > 0:
                ns = neighbours(i, size)
                cnt = 0
                for n in ns:
                    if board[n] > 0:
                        cnt = cnt + 1
                if cnt == board[i]:
                    score = score + 1
        return score
    best = 0
    for v in range(3):
        board[pos] = v
        r = solve(board, pos + 1, size, depth - 1)
        if r > best:
            best = r
    board[pos] = 0
    return best

def main():
    size = 4
    total = 0
    for round in range(7):
        board = []
        for i in range(size * size):
            board.append((round + i) % 3)
        total = total + solve(board, 0, size, 4)
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let float_bench =
  {|
class Point:
    def __init__(self, i):
        self.x = math.sin(i * 0.1)
        self.y = math.cos(i * 0.1) * 3.0
        self.z = (self.x * self.x) / 2.0

    def normalize(self):
        norm = math.sqrt(self.x * self.x + self.y * self.y + self.z * self.z)
        self.x = self.x / norm
        self.y = self.y / norm
        self.z = self.z / norm

    def maximize(self, other):
        self.x = self.x if self.x > other.x else other.x
        self.y = self.y if self.y > other.y else other.y
        self.z = self.z if self.z > other.z else other.z
        return self

def maximize(points):
    nxt = points[0]
    for i in range(1, len(points)):
        nxt = nxt.maximize(points[i])
    return nxt

def benchmark(n):
    points = []
    for i in range(n):
        points.append(Point(i))
    for p in points:
        p.normalize()
    return maximize(points)

def main():
    best = None
    for i in range(9):
        best = benchmark(400)
    print(int(best.x * 1000000))
    print(int(best.y * 1000000))

main()
|}

(* ---------------------------------------------------------------- *)
let ai =
  {|
def ok(queens, row, col):
    for r in range(row):
        c = queens[r]
        if c == col:
            return False
        if c - r == col - row:
            return False
        if c + r == col + row:
            return False
    return True

def solve(queens, row, n):
    if row == n:
        return 1
    count = 0
    for col in range(n):
        if ok(queens, row, col):
            queens[row] = col
            count = count + solve(queens, row + 1, n)
    return count

def main():
    n = 6
    total = 0
    for i in range(14):
        queens = []
        for j in range(n):
            queens.append(-1)
        total = total + solve(queens, 0, n)
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let json_bench =
  {|
def encode_value(v, out):
    t = str(v)
    out.write(t)

def encode_pair(k, v, out):
    out.write("\"")
    out.write(encode_json(k))
    out.write("\":")
    encode_value(v, out)

def encode_record(rec_keys, rec, out):
    out.write("{")
    first = True
    for k in rec_keys:
        if not first:
            out.write(",")
        encode_pair(k, rec[k], out)
        first = False
    out.write("}")

def main():
    keys = ["alpha", "beta", "gamma\n", "delta\"x", "epsilon"]
    total = 0
    for i in range(1300):
        rec = {}
        for j in range(5):
            rec[keys[j]] = (i * 31 + j * 7) % 10007
        out = StringIO()
        encode_record(keys, rec, out)
        total = total + len(out.getvalue())
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let meteor_contest =
  {|
def main():
    universe = []
    for i in range(60):
        universe.append(i)
    total = 0
    for round in range(420):
        a = {1}
        b = {0}
        a.remove(1)
        b.remove(0)
        for i in universe:
            if i % 2 == 0:
                a.add(i)
            if i % 3 == 0:
                b.add(i)
        c = a.difference(b)
        d = a.intersection(b)
        e = a.union(b)
        if d.issubset(a) and d.issubset(b):
            total = total + len(c) + len(e) - len(d)
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let pidigits =
  {|
def main():
    ndigits = 160
    q = bigint(1)
    r = bigint(0)
    t = bigint(1)
    k = 1
    digits = 0
    checksum = 0
    while digits < ndigits:
        y = (q * (4 * k + 2) + r * (2 * k + 1)) // (t * (2 * k + 1))
        y3 = (q * (4 * k + 6) + r * (2 * k + 1) + (q + q + q)) // (t * (2 * k + 1))
        if y == y3:
            d = int(str(y))
            checksum = (checksum * 10 + d) % 1000000007
            digits = digits + 1
            r = (r - t * y) * 10
            q = q * 10
        else:
            r = (q + q + r) * (2 * k + 1)
            t = t * (2 * k + 1)
            q = q * k
            k = k + 1
    print(checksum)

main()
|}

(* ---------------------------------------------------------------- *)
let fannkuch =
  {|
def fannkuch(n):
    perm1 = []
    for i in range(n):
        perm1.append(i)
    count = []
    for i in range(n):
        count.append(0)
    max_flips = 0
    checksum = 0
    r = n
    sign = 1
    while True:
        if perm1[0] != 0:
            perm = perm1[0:n]
            flips = 0
            k = perm[0]
            while k != 0:
                lo = 0
                hi = k
                while lo < hi:
                    t = perm[lo]
                    perm[lo] = perm[hi]
                    perm[hi] = t
                    lo = lo + 1
                    hi = hi - 1
                flips = flips + 1
                k = perm[0]
            if flips > max_flips:
                max_flips = flips
            checksum = checksum + sign * flips
        sign = 0 - sign
        i = 1
        done = False
        while i < n:
            t = perm1[0]
            for j in range(i):
                perm1[j] = perm1[j + 1]
            perm1[i] = t
            count[i] = count[i] + 1
            if count[i] <= i:
                done = True
                break
            count[i] = 0
            i = i + 1
        if not done:
            return max_flips, checksum

def main():
    mf, cs = fannkuch(6)
    print(mf)
    print(cs)

main()
|}

(* ---------------------------------------------------------------- *)
let nbody_modified =
  {|
def advance(xs, ys, zs, vxs, vys, vzs, ms, n, dt):
    for i in range(n):
        for j in range(i + 1, n):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            dz = zs[i] - zs[j]
            d2 = dx * dx + dy * dy + dz * dz
            mag = dt / (d2 * pow(d2, 0.5))
            vxs[i] = vxs[i] - dx * ms[j] * mag
            vys[i] = vys[i] - dy * ms[j] * mag
            vzs[i] = vzs[i] - dz * ms[j] * mag
            vxs[j] = vxs[j] + dx * ms[i] * mag
            vys[j] = vys[j] + dy * ms[i] * mag
            vzs[j] = vzs[j] + dz * ms[i] * mag
    for i in range(n):
        xs[i] = xs[i] + dt * vxs[i]
        ys[i] = ys[i] + dt * vys[i]
        zs[i] = zs[i] + dt * vzs[i]

def energy(xs, ys, zs, vxs, vys, vzs, ms, n):
    e = 0.0
    for i in range(n):
        e = e + 0.5 * ms[i] * (vxs[i] * vxs[i] + vys[i] * vys[i] + vzs[i] * vzs[i])
        for j in range(i + 1, n):
            dx = xs[i] - xs[j]
            dy = ys[i] - ys[j]
            dz = zs[i] - zs[j]
            e = e - ms[i] * ms[j] / pow(dx * dx + dy * dy + dz * dz, 0.5)
    return e

def main():
    n = 5
    xs = [0.0, 4.84, 8.34, 12.89, 15.37]
    ys = [0.0, -1.16, 4.12, -15.11, -25.91]
    zs = [0.0, -0.1, -0.4, -0.22, 0.17]
    vxs = [0.0, 0.00166, -0.00276, 0.00296, 0.00268]
    vys = [0.0, 0.00769, 0.0049, 0.00237, 0.00162]
    vzs = [0.0, -0.00002, 0.00002, -0.00003, -0.00009]
    ms = [39.47, 0.03769, 0.011286, 0.0017237, 0.0020336]
    px = 0.0
    py = 0.0
    pz = 0.0
    for i in range(n):
        px = px + vxs[i] * ms[i]
        py = py + vys[i] * ms[i]
        pz = pz + vzs[i] * ms[i]
    vxs[0] = 0.0 - px / ms[0]
    vys[0] = 0.0 - py / ms[0]
    vzs[0] = 0.0 - pz / ms[0]
    e0 = energy(xs, ys, zs, vxs, vys, vzs, ms, n)
    for step in range(700):
        advance(xs, ys, zs, vxs, vys, vzs, ms, n, 0.01)
    e1 = energy(xs, ys, zs, vxs, vys, vzs, ms, n)
    print(int(e0 * 1000000000))
    print(int(e1 * 1000000000))

main()
|}

(* ---------------------------------------------------------------- *)
let pyflate_fast =
  {|
def read_bits(data, bitpos, nbits):
    acc = 0
    for i in range(nbits):
        byte_i = (bitpos + i) // 8
        bit_i = (bitpos + i) % 8
        ch = ord(data[byte_i])
        bit = (ch >> bit_i) & 1
        acc = acc | (bit << i)
    return acc

def main():
    parts = []
    seed = 7
    for i in range(700):
        seed = (seed * 1103515245 + 12345) % 2147483648
        parts.append(chr(32 + seed % 95))
    data = "".join(parts)
    total = 0
    markers = 0
    bitpos = 0
    limit = len(data) * 8 - 16
    while bitpos < limit:
        v = read_bits(data, bitpos, 5)
        total = (total + v) % 1000003
        if v == 17:
            markers = markers + 1
            bitpos = bitpos + 11
        else:
            bitpos = bitpos + 3
    idx = data.find("zz")
    print(total)
    print(markers)
    print(idx)

main()
|}

(* ---------------------------------------------------------------- *)
let sympy_str =
  {|
def node_str(kind, a, b, depth):
    if depth == 0:
        return str(a % 10)
    left = node_str((kind * 7 + 3) % 4, a * 2 + 1, b, depth - 1)
    right = node_str((kind * 5 + 1) % 4, b * 2 + 1, a, depth - 1)
    if kind == 0:
        return "(" + left + " + " + right + ")"
    if kind == 1:
        return "(" + left + "*" + right + ")"
    if kind == 2:
        return "(" + left + " - " + right + ")"
    return "(" + left + "/" + right + ")"

def simplify_str(s):
    t = s.replace("(0 + ", "(")
    t = t.replace("*1)", ")")
    t = t.replace(" - 0)", ")")
    return t

def main():
    total = 0
    for i in range(170):
        s = node_str(i % 4, i, i + 1, 6)
        t = simplify_str(s)
        total = (total + len(t) + len(s)) % 1000003
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let bm_mako =
  {|
def render(template, ctx_keys, ctx):
    out = template
    for k in ctx_keys:
        out = out.replace("${" + k + "}", ctx[k])
    return out

def main():
    template = "<html><body><h1>${title}</h1><p>${body}</p><i>${footer}</i>${title}</body></html>"
    keys = ["title", "body", "footer"]
    total = 0
    for i in range(2600):
        ctx = {}
        ctx["title"] = "Page" + str(i % 100)
        ctx["body"] = "content " + str(i) + " lorem ipsum dolor"
        ctx["footer"] = "(c) " + str(2000 + i % 20)
        html = render(template, keys, ctx)
        total = total + len(html)
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let bm_mdp =
  {|
def value_iteration(states, transitions, rounds):
    values = {}
    for s in states:
        values[s] = 0
    for r in range(rounds):
        new_values = {}
        for s in states:
            best = -1000000
            moves = transitions[s]
            for m in moves:
                nxt, reward = m
                v = reward + values[nxt] * 9 // 10
                if v > best:
                    best = v
            new_values[s] = best
        values = new_values
    return values

def main():
    n = 60
    states = []
    for i in range(n):
        states.append(i)
    transitions = {}
    for i in range(n):
        moves = []
        moves.append(((i + 1) % n, i % 7))
        moves.append(((i * 3 + 1) % n, (i * 2) % 5))
        moves.append(((i + n - 1) % n, 1))
        transitions[i] = moves
    values = value_iteration(states, transitions, 110)
    total = 0
    for s in states:
        total = total + values[s]
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let genshi_xml =
  {|
def escape(s, table):
    return s.translate(table)

def main():
    table = {}
    table["<"] = "&lt;"
    table[">"] = "&gt;"
    table["&"] = "&amp;"
    total = 0
    for i in range(2400):
        raw = "<item id=" + str(i) + ">text & stuff <b>bold</b></item>"
        esc = escape(raw, table)
        xml = "<entry>" + esc + "</entry>"
        total = total + len(xml)
    print(total)

main()
|}

(* ---------------------------------------------------------------- *)
let eparse =
  {|
def parse_line(line):
    fields = line.split(",")
    total = 0
    for fld in fields:
        s = fld.strip()
        if s.startswith("n"):
            total = total + int(s[1:len(s)])
        else:
            total = total + len(s)
    return total

def main():
    lines = []
    for i in range(900):
        lines.append("n" + str(i) + ", word" + str(i % 13) + " , n42,x," + str(i % 7))
    total = 0
    for line in lines:
        total = total + parse_line(line)
    parts = []
    for i in range(400):
        parts.append(str(i % 10))
    joined = ",".join(parts)
    total = total + len(joined)
    print(total)

main()
|}

let all : (string * string) list =
  [
    ("richards", richards);
    ("crypto_pyaes", crypto_pyaes);
    ("chaos", chaos);
    ("telco", telco);
    ("spectral_norm", spectral_norm);
    ("django", django);
    ("twisted_iteration", twisted_iteration);
    ("spitfire_cstringio", spitfire_cstringio);
    ("raytrace_simple", raytrace_simple);
    ("hexiom2", hexiom2);
    ("float", float_bench);
    ("ai", ai);
    ("json_bench", json_bench);
    ("meteor_contest", meteor_contest);
    ("pidigits", pidigits);
    ("fannkuch", fannkuch);
    ("nbody_modified", nbody_modified);
    ("pyflate_fast", pyflate_fast);
    ("sympy_str", sympy_str);
    ("bm_mako", bm_mako);
    ("bm_mdp", bm_mdp);
    ("genshi_xml", genshi_xml);
    ("eparse", eparse);
  ]
