(** Computer Language Benchmarks Game programs in rklite, for the
    Racket/Pycket columns of Table II and Figure 4. *)

let binarytrees =
  {|
(define (make-level n acc)
  (if (= n 0) acc (make-level (- n 1) (cons (cons '() '()) acc))))

(define (pair-up l acc)
  (if (null? l)
      acc
      (pair-up (cdr (cdr l)) (cons (cons (car l) (car (cdr l))) acc))))

(define (build level)
  (if (null? (cdr level)) (car level) (build (pair-up level '()))))

(define (make-tree depth) (build (make-level (expt 2 depth) '())))

(define (check-tree root)
  (let loop ((stack (cons root '())) (count 0))
    (if (null? stack)
        count
        (let ((node (car stack)) (rest (cdr stack)))
          (if (null? (car node))
              (loop rest (+ count 1))
              (loop (cons (car node) (cons (cdr node) rest)) (+ count 1)))))))

(define (main)
  (let ((max-depth 8))
    (display (check-tree (make-tree (+ max-depth 1))))
    (newline)
    (let ((long-lived (make-tree max-depth)))
      (let depth-loop ((depth 4) (total 0))
        (if (<= depth max-depth)
            (let ((iterations (* 16 (expt 2 (- max-depth depth)))))
              (let iter ((i 0) (check 0))
                (if (< i iterations)
                    (iter (+ i 1) (+ check (check-tree (make-tree depth))))
                    (depth-loop (+ depth 2) (+ total check)))))
            (begin
              (display total)
              (newline)
              (display (check-tree long-lived))
              (newline)))))))

(main)
|}

let fasta =
  {|
(define probs (vector 270 120 120 270 20 20 20 20 20 120))
(define chars (vector "a" "c" "g" "t" "B" "D" "H" "K" "M" "N"))

(define (select-nucleotide r)
  (let loop ((i 0) (r r))
    (if (and (< i 9) (>= r (vector-ref probs i)))
        (loop (+ i 1) (- r (vector-ref probs i)))
        (vector-ref chars i))))

(define (main)
  (let loop ((i 0) (seed 42) (len 0) (acount 0))
    (if (< i 11000)
        (let ((seed2 (modulo (+ (* seed 3877) 29573) 139968)))
          (let ((c (select-nucleotide (modulo seed2 1000))))
            (loop (+ i 1) seed2
                  (+ len (string-length c))
                  (if (equal? c "a") (+ acount 1) acount))))
        (begin
          (display len) (newline)
          (display acount) (newline)))))

(main)
|}

let mandelbrot =
  {|
(define (main)
  (let ((size 40))
    (let yloop ((py 0) (total 0))
      (if (< py size)
          (let ((ci (- (/ (* 2.0 py) size) 1.0)))
            (let xloop ((px 0) (total total))
              (if (< px size)
                  (let ((cr (- (/ (* 2.0 px) size) 1.5)))
                    (let iter ((i 0) (zr 0.0) (zi 0.0))
                      (if (>= i 50)
                          (xloop (+ px 1) (+ total 1))
                          (let ((zr2 (* zr zr)) (zi2 (* zi zi)))
                            (if (> (+ zr2 zi2) 4.0)
                                (xloop (+ px 1) total)
                                (iter (+ i 1)
                                      (+ (- zr2 zi2) cr)
                                      (+ (* 2.0 (* zr zi)) ci)))))))
                  (yloop (+ py 1) total))))
          (begin (display total) (newline))))))

(main)
|}

let nbody =
  {|
(define n 5)
(define xs (vector 0.0 4.84 8.34 12.89 15.37))
(define ys (vector 0.0 -1.16 4.12 -15.11 -25.91))
(define zs (vector 0.0 -0.1 -0.4 -0.22 0.17))
(define vxs (vector 0.0 0.00166 -0.00276 0.00296 0.00268))
(define vys (vector 0.0 0.00769 0.0049 0.00237 0.00162))
(define vzs (vector 0.0 -0.00002 0.00002 -0.00003 -0.00009))
(define ms (vector 39.47 0.03769 0.011286 0.0017237 0.0020336))

(define (advance dt)
  (let iloop ((i 0))
    (when (< i n)
      (let jloop ((j (+ i 1)))
        (when (< j n)
          (let ((dx (- (vector-ref xs i) (vector-ref xs j)))
                (dy (- (vector-ref ys i) (vector-ref ys j)))
                (dz (- (vector-ref zs i) (vector-ref zs j))))
            (let ((d2 (+ (+ (* dx dx) (* dy dy)) (* dz dz))))
              (let ((mag (/ dt (* d2 (expt d2 0.5)))))
                (vector-set! vxs i (- (vector-ref vxs i) (* (* dx (vector-ref ms j)) mag)))
                (vector-set! vys i (- (vector-ref vys i) (* (* dy (vector-ref ms j)) mag)))
                (vector-set! vzs i (- (vector-ref vzs i) (* (* dz (vector-ref ms j)) mag)))
                (vector-set! vxs j (+ (vector-ref vxs j) (* (* dx (vector-ref ms i)) mag)))
                (vector-set! vys j (+ (vector-ref vys j) (* (* dy (vector-ref ms i)) mag)))
                (vector-set! vzs j (+ (vector-ref vzs j) (* (* dz (vector-ref ms i)) mag))))))
          (jloop (+ j 1))))
      (let ((dtv dt))
        (vector-set! xs i (+ (vector-ref xs i) (* dtv (vector-ref vxs i))))
        (vector-set! ys i (+ (vector-ref ys i) (* dtv (vector-ref vys i))))
        (vector-set! zs i (+ (vector-ref zs i) (* dtv (vector-ref vzs i)))))
      (iloop (+ i 1)))))

(define (energy)
  (let iloop ((i 0) (e 0.0))
    (if (< i n)
        (let ((e1 (+ e (* (* 0.5 (vector-ref ms i))
                          (+ (+ (* (vector-ref vxs i) (vector-ref vxs i))
                                (* (vector-ref vys i) (vector-ref vys i)))
                             (* (vector-ref vzs i) (vector-ref vzs i)))))))
          (let jloop ((j (+ i 1)) (e e1))
            (if (< j n)
                (let ((dx (- (vector-ref xs i) (vector-ref xs j)))
                      (dy (- (vector-ref ys i) (vector-ref ys j)))
                      (dz (- (vector-ref zs i) (vector-ref zs j))))
                  (jloop (+ j 1)
                         (- e (/ (* (vector-ref ms i) (vector-ref ms j))
                                 (expt (+ (+ (* dx dx) (* dy dy)) (* dz dz)) 0.5)))))
                (iloop (+ i 1) e))))
        e)))

(define (main)
  (display (floor (* (energy) 1000000.0))) (newline)
  (let loop ((step 0))
    (when (< step 700)
      (advance 0.01)
      (loop (+ step 1))))
  (display (floor (* (energy) 1000000.0))) (newline))

(main)
|}

let spectralnorm =
  {|
(define (eval-a i j)
  (/ 1.0 (+ (+ (/ (* (+ i j) (+ (+ i j) 1)) 2.0) i) 1.0)))

(define (a-times-u u n out)
  (let iloop ((i 0))
    (when (< i n)
      (let jloop ((j 0) (s 0.0))
        (if (< j n)
            (jloop (+ j 1) (+ s (* (eval-a i j) (vector-ref u j))))
            (vector-set! out i s)))
      (iloop (+ i 1)))))

(define (at-times-u u n out)
  (let iloop ((i 0))
    (when (< i n)
      (let jloop ((j 0) (s 0.0))
        (if (< j n)
            (jloop (+ j 1) (+ s (* (eval-a j i) (vector-ref u j))))
            (vector-set! out i s)))
      (iloop (+ i 1)))))

(define (main)
  (let ((n 34))
    (let ((u (make-vector n 1.0))
          (v (make-vector n 0.0))
          (w (make-vector n 0.0)))
      (let loop ((k 0))
        (when (< k 10)
          (a-times-u u n w)
          (at-times-u w n v)
          (a-times-u v n w)
          (at-times-u w n u)
          (loop (+ k 1))))
      (let dots ((i 0) (vbv 0.0) (vv 0.0))
        (if (< i n)
            (dots (+ i 1)
                  (+ vbv (* (vector-ref u i) (vector-ref v i)))
                  (+ vv (* (vector-ref v i) (vector-ref v i))))
            (begin
              (display (floor (* (sqrt (/ vbv vv)) 1000000000.0)))
              (newline)))))))

(main)
|}

let fannkuchredux =
  {|
(define (flips-of perm1 n)
  (let ((perm (make-vector n 0)))
    (let copy ((i 0))
      (when (< i n)
        (vector-set! perm i (vector-ref perm1 i))
        (copy (+ i 1))))
    (let count-flips ((flips 0))
      (let ((k (vector-ref perm 0)))
        (if (= k 0)
            flips
            (begin
              (let rev ((lo 0) (hi k))
                (when (< lo hi)
                  (let ((t (vector-ref perm lo)))
                    (vector-set! perm lo (vector-ref perm hi))
                    (vector-set! perm hi t))
                  (rev (+ lo 1) (- hi 1))))
              (count-flips (+ flips 1))))))))

(define (main)
  (let ((n 6))
    (let ((perm1 (make-vector n 0))
          (count (make-vector n 0)))
      (let init ((i 0))
        (when (< i n)
          (vector-set! perm1 i i)
          (init (+ i 1))))
      (let loop ((max-flips 0) (checksum 0) (sign 1) (done #f))
        (if done
            (begin
              (display max-flips) (newline)
              (display checksum) (newline))
            (let ((flips (if (= (vector-ref perm1 0) 0)
                             0
                             (flips-of perm1 n))))
              (let ((mf (max max-flips flips))
                    (cs (+ checksum (* sign flips))))
                ;; next permutation
                (let next ((i 1))
                  (if (>= i n)
                      (loop mf cs (- 0 sign) #t)
                      (begin
                        (let ((t (vector-ref perm1 0)))
                          (let shift ((j 0))
                            (when (< j i)
                              (vector-set! perm1 j (vector-ref perm1 (+ j 1)))
                              (shift (+ j 1))))
                          (vector-set! perm1 i t))
                        (vector-set! count i (+ (vector-ref count i) 1))
                        (if (<= (vector-ref count i) i)
                            (loop mf cs (- 0 sign) #f)
                            (begin
                              (vector-set! count i 0)
                              (next (+ i 1))))))))))))))

(main)
|}

let pidigits =
  {|
;; spigot with native bignums (rklite ints promote automatically)
(define (main)
  (let loop ((q 1) (r 0) (t 1) (k 1) (digits 0) (checksum 0))
    (if (>= digits 160)
        (begin (display checksum) (newline))
        (let ((y (quotient (+ (* q (+ (* 4 k) 2)) (* r (+ (* 2 k) 1)))
                           (* t (+ (* 2 k) 1))))
              (y3 (quotient (+ (+ (* q (+ (* 4 k) 6)) (* r (+ (* 2 k) 1))) (* 3 q))
                            (* t (+ (* 2 k) 1)))))
          (if (= y y3)
              (loop (* q 10)
                    (* (- r (* t y)) 10)
                    t k (+ digits 1)
                    (modulo (+ (* checksum 10) y) 1000000007))
              (loop (* q k)
                    (* (+ (+ q q) r) (+ (* 2 k) 1))
                    (* t (+ (* 2 k) 1))
                    (+ k 1) digits checksum))))))

(main)
|}

let all : (string * string) list =
  [
    ("binarytrees", binarytrees);
    ("fasta", fasta);
    ("mandelbrot", mandelbrot);
    ("nbody", nbody);
    ("spectralnorm", spectralnorm);
    ("fannkuchredux", fannkuchredux);
    ("pidigits", pidigits);
  ]
