(** Computer Language Benchmarks Game programs in pylite (Table II /
    Figure 4 workloads). *)

let binarytrees =
  {|
class Node:
    def __init__(self, left, right):
        self.left = left
        self.right = right

def make_tree(depth):
    level = []
    for i in range(1 << depth):
        level.append(Node(None, None))
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(Node(level[i], level[i + 1]))
        level = nxt
    return level[0]

def check_tree(root):
    count = 0
    stack = [root]
    while len(stack) > 0:
        node = stack.pop()
        count = count + 1
        if node.left is not None:
            stack.append(node.left)
            stack.append(node.right)
    return count

def main():
    max_depth = 8
    stretch = make_tree(max_depth + 1)
    print(check_tree(stretch))
    long_lived = make_tree(max_depth)
    total = 0
    depth = 4
    while depth <= max_depth:
        iterations = 1 << (max_depth - depth + 4)
        check = 0
        for i in range(iterations):
            t = make_tree(depth)
            check = check + check_tree(t)
        total = total + check
        depth = depth + 2
    print(total)
    print(check_tree(long_lived))

main()
|}

let fasta =
  {|
def select_nucleotide(probs, chars, r):
    i = 0
    n = len(probs)
    while i < n - 1 and r >= probs[i]:
        r = r - probs[i]
        i = i + 1
    return chars[i]

def main():
    chars = ["a", "c", "g", "t", "B", "D", "H", "K", "M", "N"]
    probs = [270, 120, 120, 270, 20, 20, 20, 20, 20, 120]
    out = StringIO()
    seed = 42
    line = []
    count = 0
    for i in range(11000):
        seed = (seed * 3877 + 29573) % 139968
        r = seed % 1000
        c = select_nucleotide(probs, chars, r)
        line.append(c)
        count = count + 1
        if count == 60:
            out.write("".join(line))
            out.write("\n")
            line = []
            count = 0
    s = out.getvalue()
    total = 0
    for i in range(len(s)):
        if s[i] == "a":
            total = total + 1
    print(len(s))
    print(total)

main()
|}

let mandelbrot =
  {|
def main():
    size = 52
    total = 0
    for py in range(size):
        ci = 2.0 * py / size - 1.0
        for px in range(size):
            cr = 2.0 * px / size - 1.5
            zr = 0.0
            zi = 0.0
            inside = True
            for i in range(50):
                zr2 = zr * zr
                zi2 = zi * zi
                if zr2 + zi2 > 4.0:
                    inside = False
                    break
                zi = 2.0 * zr * zi + ci
                zr = zr2 - zi2 + cr
            if inside:
                total = total + 1
    print(total)

main()
|}

let revcomp =
  {|
def main():
    table = {}
    table["a"] = "t"
    table["t"] = "a"
    table["c"] = "g"
    table["g"] = "c"
    chars = ["a", "c", "g", "t"]
    parts = []
    seed = 13
    for i in range(5200):
        seed = (seed * 1103515245 + 12345) % 2147483648
        parts.append(chars[seed % 4])
    seq = "".join(parts)
    comp = seq.translate(table)
    out = []
    n = len(comp)
    for i in range(n):
        out.append(comp[n - 1 - i])
    rc = "".join(out)
    matches = 0
    for i in range(len(rc)):
        if rc[i] == "g":
            matches = matches + 1
    print(len(rc))
    print(matches)

main()
|}

let knucleotide =
  {|
def count_kmers(seq, k):
    counts = {}
    n = len(seq)
    for i in range(n - k + 1):
        kmer = seq[i:i + k]
        if kmer in counts:
            counts[kmer] = counts[kmer] + 1
        else:
            counts[kmer] = 1
    return counts

def main():
    chars = ["a", "c", "g", "t"]
    parts = []
    seed = 99
    for i in range(4200):
        seed = (seed * 69069 + 1) % 4294967296
        parts.append(chars[seed % 4])
    seq = "".join(parts)
    total = 0
    for k in [1, 2, 3, 4]:
        counts = count_kmers(seq, k)
        best = 0
        for kmer in counts:
            c = counts[kmer]
            if c > best:
                best = c
        total = total + best + len(counts)
    print(total)

main()
|}

let chameneos =
  {|
def complement(c1, c2):
    if c1 == c2:
        return c1
    if c1 == 0:
        return 1 if c2 == 2 else 2
    if c1 == 1:
        return 0 if c2 == 2 else 2
    return 0 if c2 == 1 else 1

def main():
    creatures = [0, 1, 2, 0, 1, 2, 0, 1]
    meets = []
    for c in creatures:
        meets.append(0)
    n = len(creatures)
    meetings = 26000
    seed = 5
    a = -1
    for m in range(meetings):
        seed = (seed * 1103515245 + 12345) % 2147483648
        i = seed % n
        j = (i + 1 + seed % (n - 1)) % n
        new_colour = complement(creatures[i], creatures[j])
        creatures[i] = new_colour
        creatures[j] = new_colour
        meets[i] = meets[i] + 1
        meets[j] = meets[j] + 1
    total = 0
    for c in range(n):
        total = total + meets[c]
    print(total)
    print(creatures[0])

main()
|}

(* CLBG entries reusing the PyPy-suite implementations at CLBG-style
   scales *)
let all : (string * string) list =
  [
    ("binarytrees", binarytrees);
    ("fasta", fasta);
    ("mandelbrot", mandelbrot);
    ("revcomp", revcomp);
    ("knucleotide", knucleotide);
    ("chameneosredux", chameneos);
    ("nbody", Py_suite.nbody_modified);
    ("spectralnorm", Py_suite.spectral_norm);
    ("fannkuchredux", Py_suite.fannkuch);
    ("pidigits", Py_suite.pidigits);
  ]
