type t = { alu : int; fpu : int; load : int; store : int; other : int }

let zero = { alu = 0; fpu = 0; load = 0; store = 0; other = 0 }

let make ?(alu = 0) ?(fpu = 0) ?(load = 0) ?(store = 0) ?(other = 0) () =
  { alu; fpu; load; store; other }

let total c = c.alu + c.fpu + c.load + c.store + c.other

let ( + ) a b =
  {
    alu = a.alu + b.alu;
    fpu = a.fpu + b.fpu;
    load = a.load + b.load;
    store = a.store + b.store;
    other = a.other + b.other;
  }

let scale_field f n =
  if n = 0 then 0
  else
    let scaled = int_of_float (Float.round (f *. float_of_int n)) in
    max 1 scaled

let scale f c =
  {
    alu = scale_field f c.alu;
    fpu = scale_field f c.fpu;
    load = scale_field f c.load;
    store = scale_field f c.store;
    other = scale_field f c.other;
  }

let scale_all f costs = Array.map (scale f) costs

let pp fmt c =
  Format.fprintf fmt "{alu=%d; fpu=%d; ld=%d; st=%d; other=%d}" c.alu c.fpu
    c.load c.store c.other
