type tier_policy = Optimizing | Baseline | Adaptive

type t = {
  jit_threshold : int;
  bridge_threshold : int;
  retrace_limit : int;
  max_trace_ops : int;
  max_inline_depth : int;
  opt_fold : bool;
  opt_guard_elim : bool;
  opt_forward : bool;
  opt_virtuals : bool;
  opt_peel : bool;
  nursery_words : int;
  major_growth : float;
  insn_budget : int;
  sample_window : int;
  jit_enabled : bool;
  threaded_interp : bool;
  frame_pool : bool;
  tier_policy : tier_policy;
  tier1_threshold : int;
  tier2_threshold : int;
  tier_stable_every : int;
  demote_bridges : int;
  max_demotions : int;
}

let default =
  {
    jit_threshold = 131;
    bridge_threshold = 17;
    retrace_limit = 4;
    max_trace_ops = 4000;
    max_inline_depth = 12;
    opt_fold = true;
    opt_guard_elim = true;
    opt_forward = true;
    opt_virtuals = true;
    opt_peel = true;
    nursery_words = 12 * 1024;
    major_growth = 1.5;
    insn_budget = 20_000_000;
    sample_window = 100_000;
    jit_enabled = true;
    threaded_interp = true;
    frame_pool = true;
    tier_policy = Optimizing;
    tier1_threshold = 37;
    tier2_threshold = 40;
    tier_stable_every = 8;
    demote_bridges = 5;
    max_demotions = 2;
  }

let no_jit = { default with jit_enabled = false }
let two_tier = { default with tier_policy = Adaptive }
let baseline_tier = { default with tier_policy = Baseline }
let with_budget insn_budget t = { t with insn_budget }

let tier_policy_name = function
  | Optimizing -> "optimizing"
  | Baseline -> "baseline"
  | Adaptive -> "adaptive"

let tier_policy_of_string = function
  | "optimizing" | "opt" | "1tier-opt" -> Some Optimizing
  | "baseline" | "base" | "1tier-base" -> Some Baseline
  | "adaptive" | "2tier" | "multi" -> Some Adaptive
  | _ -> None

let all_tier_policies = [ Optimizing; Baseline; Adaptive ]

let paper_scale =
  "Paper: loop threshold 1039, benchmarks run for 10e9 instructions. \
   Here: threshold 131, budget 2e7 instructions; the threshold/budget \
   ratio is kept within ~2x of the paper's so warmup occupies a \
   comparable fraction of each run."
