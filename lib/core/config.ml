type t = {
  jit_threshold : int;
  bridge_threshold : int;
  retrace_limit : int;
  max_trace_ops : int;
  max_inline_depth : int;
  opt_fold : bool;
  opt_guard_elim : bool;
  opt_forward : bool;
  opt_virtuals : bool;
  opt_peel : bool;
  nursery_words : int;
  major_growth : float;
  insn_budget : int;
  sample_window : int;
  jit_enabled : bool;
  threaded_interp : bool;
  frame_pool : bool;
  tiered : bool;
  tier2_threshold : int;
}

let default =
  {
    jit_threshold = 131;
    bridge_threshold = 17;
    retrace_limit = 4;
    max_trace_ops = 4000;
    max_inline_depth = 12;
    opt_fold = true;
    opt_guard_elim = true;
    opt_forward = true;
    opt_virtuals = true;
    opt_peel = true;
    nursery_words = 12 * 1024;
    major_growth = 1.5;
    insn_budget = 20_000_000;
    sample_window = 100_000;
    jit_enabled = true;
    threaded_interp = true;
    frame_pool = true;
    tiered = false;
    tier2_threshold = 40;
  }

let no_jit = { default with jit_enabled = false }
let two_tier = { default with tiered = true }
let with_budget insn_budget t = { t with insn_budget }

let paper_scale =
  "Paper: loop threshold 1039, benchmarks run for 10e9 instructions. \
   Here: threshold 131, budget 2e7 instructions; the threshold/budget \
   ratio is kept within ~2x of the paper's so warmup occupies a \
   comparable fraction of each run."
