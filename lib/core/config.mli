(** Global configuration of the meta-tracing framework and the simulation.

    The paper's PyPy uses a loop threshold of 1039 iterations and runs
    benchmarks for 10 billion instructions; we scale workloads down to a
    few million simulated instructions, so thresholds scale too
    (documented in DESIGN.md Sec. 4). *)

(** How the driver distributes compilation work across trace tiers
    (DESIGN.md Sec. 3j, after Izawa & Bolz-Tereick's multi-tier method):

    - [Optimizing]: the classic single-tier tracer — every trace runs
      the full optimizer pipeline at [jit_threshold];
    - [Baseline]: tier-1 only — cheap unoptimized compiles at the low
      [tier1_threshold], never promoted;
    - [Adaptive]: baseline compiles early, promotion to the optimizing
      tier once a trace is hot {e and} its guard-fail profile is stable,
      demotion back to tier 1 when bridges proliferate on an optimized
      loop. *)
type tier_policy = Optimizing | Baseline | Adaptive

type t = {
  (* --- JIT driver --- *)
  jit_threshold : int;
      (** loop-header executions before tracing starts (PyPy: 1039) *)
  bridge_threshold : int;
      (** guard failures before a bridge is traced (PyPy: 200, scaled) *)
  retrace_limit : int;
      (** trace aborts at a loop header before the header is blacklisted *)
  max_trace_ops : int;  (** abort tracing past this many IR operations *)
  max_inline_depth : int;
      (** abort tracing past this application-level call depth *)
  (* --- optimizer pass toggles (for ablation benches) --- *)
  opt_fold : bool;       (** constant folding / algebraic simplification *)
  opt_guard_elim : bool; (** remove guards implied by earlier guards *)
  opt_forward : bool;    (** heap load forwarding (getfield after set/get) *)
  opt_virtuals : bool;   (** escape analysis: remove non-escaping [new]s *)
  opt_peel : bool;
      (** loop peeling: duplicate the trace into preamble + loop so that
          loop-invariant guards (types, bounds) run only in the preamble *)
  (* --- GC --- *)
  nursery_words : int;       (** nursery capacity in heap words *)
  major_growth : float;      (** major GC when old gen grows by this factor *)
  (* --- simulation --- *)
  insn_budget : int;     (** stop a run after this many simulated insns *)
  sample_window : int;   (** warmup-curve sampling window, in insns *)
  jit_enabled : bool;
  threaded_interp : bool;
      (** dispatch interpreter bytecodes through translate-once arrays of
          pre-bound step closures (the threaded tier) instead of the
          reference decode-and-match loop; simulated counters are
          byte-identical either way *)
  frame_pool : bool;
      (** recycle dead interpreter frames' locals/stack arrays through
          per-context free lists instead of reallocating; a host-side
          optimization only — simulated counters are byte-identical
          either way *)
  (* --- multi-tier compilation (extends the paper's Q4/Q5 warmup
     questions to a per-tier dimension) --- *)
  tier_policy : tier_policy;
  tier1_threshold : int;
      (** loop-header executions before a {e baseline} trace is recorded
          (Baseline/Adaptive policies; the effective threshold is
          [min jit_threshold tier1_threshold]) *)
  tier2_threshold : int;
      (** tier-1 trace executions before promotion is considered
          (Adaptive policy) *)
  tier_stable_every : int;
      (** promotion requires a stable guard-fail profile:
          [deopts * tier_stable_every <= exec_count] — at most one
          deoptimization per this many trace executions *)
  demote_bridges : int;
      (** bridges attached to an optimized loop trace before it is
          demoted back to tier 1 (Adaptive policy) *)
  max_demotions : int;
      (** demotions of one loop site before it is pinned at tier 1
          (prevents tier oscillation) *)
}

val default : t
(** Scaled defaults: threshold 131, bridge threshold 17, 256 Ki-word
    nursery, 20 M-instruction budget; [Optimizing] tier policy. *)

val no_jit : t
(** [default] with the meta-tracing JIT disabled (the "PyPy w/o JIT"
    configuration of Table I). *)

val with_budget : int -> t -> t
(** Override the instruction budget. *)

val two_tier : t
(** [default] with the [Adaptive] tier policy: traces are first compiled
    unoptimized (cheap, slow code) at [tier1_threshold], promoted
    through the full optimizer once hot and guard-stable, and demoted
    when bridges proliferate. *)

val baseline_tier : t
(** [default] with the [Baseline] tier policy: tier-1 compiles only,
    never promoted — the fastest warmup, the slowest peak. *)

val tier_policy_name : tier_policy -> string
(** ["optimizing"] / ["baseline"] / ["adaptive"]. *)

val tier_policy_of_string : string -> tier_policy option
(** Inverse of {!tier_policy_name} (also accepts a few aliases);
    [None] for unknown names. *)

val all_tier_policies : tier_policy list

val paper_scale : string
(** Human-readable note mapping scaled parameters to the paper's. *)
