(** Global configuration of the meta-tracing framework and the simulation.

    The paper's PyPy uses a loop threshold of 1039 iterations and runs
    benchmarks for 10 billion instructions; we scale workloads down to a
    few million simulated instructions, so thresholds scale too
    (documented in DESIGN.md Sec. 4). *)

type t = {
  (* --- JIT driver --- *)
  jit_threshold : int;
      (** loop-header executions before tracing starts (PyPy: 1039) *)
  bridge_threshold : int;
      (** guard failures before a bridge is traced (PyPy: 200, scaled) *)
  retrace_limit : int;
      (** trace aborts at a loop header before the header is blacklisted *)
  max_trace_ops : int;  (** abort tracing past this many IR operations *)
  max_inline_depth : int;
      (** abort tracing past this application-level call depth *)
  (* --- optimizer pass toggles (for ablation benches) --- *)
  opt_fold : bool;       (** constant folding / algebraic simplification *)
  opt_guard_elim : bool; (** remove guards implied by earlier guards *)
  opt_forward : bool;    (** heap load forwarding (getfield after set/get) *)
  opt_virtuals : bool;   (** escape analysis: remove non-escaping [new]s *)
  opt_peel : bool;
      (** loop peeling: duplicate the trace into preamble + loop so that
          loop-invariant guards (types, bounds) run only in the preamble *)
  (* --- GC --- *)
  nursery_words : int;       (** nursery capacity in heap words *)
  major_growth : float;      (** major GC when old gen grows by this factor *)
  (* --- simulation --- *)
  insn_budget : int;     (** stop a run after this many simulated insns *)
  sample_window : int;   (** warmup-curve sampling window, in insns *)
  jit_enabled : bool;
  threaded_interp : bool;
      (** dispatch interpreter bytecodes through translate-once arrays of
          pre-bound step closures (the threaded tier) instead of the
          reference decode-and-match loop; simulated counters are
          byte-identical either way *)
  frame_pool : bool;
      (** recycle dead interpreter frames' locals/stack arrays through
          per-context free lists instead of reallocating; a host-side
          optimization only — simulated counters are byte-identical
          either way *)
  (* --- extension: two-tier compilation (the paper's Q5 discussion) --- *)
  tiered : bool;
      (** tier-1: compile traces unoptimized at a fraction of the compile
          cost; recompile with the full pass pipeline once hot *)
  tier2_threshold : int;
      (** tier-1 trace executions before the tier-2 recompile *)
}

val default : t
(** Scaled defaults: threshold 131, bridge threshold 17, 256 Ki-word
    nursery, 20 M-instruction budget. *)

val no_jit : t
(** [default] with the meta-tracing JIT disabled (the "PyPy w/o JIT"
    configuration of Table I). *)

val with_budget : int -> t -> t
(** Override the instruction budget. *)

val two_tier : t
(** [default] with two-tier compilation enabled: traces are first
    compiled unoptimized (cheap, slow code), then recompiled through the
    full optimizer once they have run [tier2_threshold] times. *)

val paper_scale : string
(** Human-readable note mapping scaled parameters to the paper's. *)
