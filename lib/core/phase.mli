(** Execution phases of a meta-tracing JIT VM.

    The paper (Sec. V-B) divides the execution of an RPython-based VM into
    phases: the bytecode interpreter, the tracing meta-interpreter, the
    execution of JIT-compiled code, calls from JIT code into AOT-compiled
    runtime functions, garbage collection, and the blackhole interpreter
    used for deoptimization.  [Native] covers statically-compiled baseline
    code (the C/C++ reference implementations of Table II). *)

type t =
  | Interpreter  (** bytecode dispatch loop + handlers *)
  | Tracing      (** the meta-interpreter recording a trace *)
  | Jit          (** executing JIT-compiled trace code *)
  | Jit_call     (** AOT-compiled runtime function called from JIT code *)
  | Gc_minor     (** nursery collection *)
  | Gc_major     (** full-heap collection *)
  | Blackhole    (** deoptimization: rebuilding interpreter state *)
  | Native       (** statically-compiled baseline code *)

val all : t list
(** Every phase, in the display order used by the paper's figures. *)

val index : t -> int
(** Stable dense index of a phase, for use in per-phase counter arrays. *)

val count : int
(** Number of distinct phases ([List.length all]). *)

val of_index : int -> t
(** Inverse of {!index}.  Raises [Invalid_argument] on out-of-range. *)

val name : t -> string
(** Short lowercase name, e.g. ["jit_call"]. *)

val is_gc : t -> bool
(** True for [Gc_minor] and [Gc_major]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer (prints {!name}). *)

val equal : t -> t -> bool
val compare : t -> t -> int
