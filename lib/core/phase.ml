type t =
  | Interpreter
  | Tracing
  | Jit
  | Jit_call
  | Gc_minor
  | Gc_major
  | Blackhole
  | Native

let all =
  [ Interpreter; Tracing; Jit; Jit_call; Gc_minor; Gc_major; Blackhole; Native ]

let index = function
  | Interpreter -> 0
  | Tracing -> 1
  | Jit -> 2
  | Jit_call -> 3
  | Gc_minor -> 4
  | Gc_major -> 5
  | Blackhole -> 6
  | Native -> 7

let count = List.length all

let of_index = function
  | 0 -> Interpreter
  | 1 -> Tracing
  | 2 -> Jit
  | 3 -> Jit_call
  | 4 -> Gc_minor
  | 5 -> Gc_major
  | 6 -> Blackhole
  | 7 -> Native
  | n -> invalid_arg (Printf.sprintf "Phase.of_index: %d" n)

let name = function
  | Interpreter -> "interpreter"
  | Tracing -> "tracing"
  | Jit -> "jit"
  | Jit_call -> "jit_call"
  | Gc_minor -> "gc_minor"
  | Gc_major -> "gc_major"
  | Blackhole -> "blackhole"
  | Native -> "native"

let is_gc = function
  | Gc_minor | Gc_major -> true
  | Interpreter | Tracing | Jit | Jit_call | Blackhole | Native -> false

let pp fmt t = Format.pp_print_string fmt (name t)
let equal (a : t) (b : t) = a = b
let compare a b = Int.compare (index a) (index b)
