type t = {
  name : string;
  dispatch : Cost.t;
  dispatch_indirect : bool;
  op_scale : float;
  frame_cost : Cost.t;
  interp_width : float;
}

let cpython =
  {
    name = "cpython";
    dispatch = Cost.make ~alu:9 ~load:7 ~store:2 ~other:7 ();
    dispatch_indirect = true;
    op_scale = 1.8;
    frame_cost = Cost.make ~alu:14 ~load:10 ~store:14 ~other:10 ();
    interp_width = 1.95;
  }

let rpython_interp =
  {
    name = "rpython-interp";
    dispatch = Cost.make ~alu:17 ~load:14 ~store:5 ~other:14 ();
    dispatch_indirect = true;
    op_scale = 3.5;
    frame_cost = Cost.make ~alu:24 ~load:18 ~store:24 ~other:18 ();
    interp_width = 1.45;
  }

let racket_custom =
  {
    name = "racket";
    dispatch = Cost.make ~alu:3 ~load:2 ~other:3 ();
    dispatch_indirect = true;
    op_scale = 0.85;
    frame_cost = Cost.make ~alu:6 ~load:4 ~store:6 ~other:4 ();
    interp_width = 2.2;
  }

let native =
  {
    name = "native";
    dispatch = Cost.zero;
    dispatch_indirect = false;
    op_scale = 0.3;
    frame_cost = Cost.make ~alu:2 ~load:1 ~store:2 ~other:2 ();
    interp_width = 2.6;
  }

let pp fmt t = Format.pp_print_string fmt t.name
