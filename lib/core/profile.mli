(** VM execution-style cost profiles.

    The paper compares VMs that share semantics but differ in how much
    machine work each unit of interpretation costs: CPython is hand-written
    C tuned as an interpreter; the RPython-generated interpreter is
    translated from a high-level language and roughly 2x slower (Table I);
    Racket is a mature custom JIT VM; the C/C++ baselines are statically
    compiled.  A profile captures the interpreter-side parameters of one
    such execution style; JIT-compiled trace code has its own fixed cost
    model in the backend. *)

type t = {
  name : string;
  dispatch : Cost.t;
      (** instruction overhead of one dispatch-loop iteration (fetch,
          decode, bounds checks), excluding the handler's semantic work *)
  dispatch_indirect : bool;
      (** whether dispatch performs an indirect branch on the opcode (all
          interpreters here do; native code does not) *)
  op_scale : float;
      (** multiplier applied to the semantic cost of runtime operations
          executed by handlers (boxing, type dispatch, field access...) *)
  frame_cost : Cost.t;  (** overhead of an application-level call/return *)
  interp_width : float;
      (** effective superscalar issue width achieved by this VM's
          interpreter-style code (dependency chains limit real ILP) *)
}

val cpython : t
(** The reference C interpreter: modest dispatch cost, tuned handlers. *)

val rpython_interp : t
(** An RPython-translated interpreter with the meta-tracing JIT disabled:
    heavier dispatch and handlers (Table I: ~2x slower than CPython, IPC
    ~32% worse). *)

val racket_custom : t
(** Racket's custom JIT-optimizing VM, modelled as a uniformly fast
    baseline execution style (Table II). *)

val native : t
(** Statically-compiled C/C++ code (Table II reference rows). *)

val pp : Format.formatter -> t -> unit
