type t =
  | Phase_push of Phase.t
  | Phase_pop of Phase.t
  | Dispatch_tick
  | Ir_exec of int
  | Aot_enter of int
  | Aot_exit of int
  | Trace_enter of int
  | Trace_exit of int
  | Trace_compile of int
  | Trace_abort of int
  | Guard_fail of int
  | App_marker of int

let to_string = function
  | Phase_push p -> "phase_push:" ^ Phase.name p
  | Phase_pop p -> "phase_pop:" ^ Phase.name p
  | Dispatch_tick -> "dispatch_tick"
  | Ir_exec id -> Printf.sprintf "ir_exec:%d" id
  | Aot_enter id -> Printf.sprintf "aot_enter:%d" id
  | Aot_exit id -> Printf.sprintf "aot_exit:%d" id
  | Trace_enter id -> Printf.sprintf "trace_enter:%d" id
  | Trace_exit id -> Printf.sprintf "trace_exit:%d" id
  | Trace_compile id -> Printf.sprintf "trace_compile:%d" id
  | Trace_abort code -> Printf.sprintf "trace_abort:%d" code
  | Guard_fail id -> Printf.sprintf "guard_fail:%d" id
  | App_marker id -> Printf.sprintf "app_marker:%d" id

let pp fmt t = Format.pp_print_string fmt (to_string t)
