(** Cross-layer annotations.

    The paper's central methodological contribution (Sec. IV): events of
    interest are annotated at a {e higher} layer (application, interpreter,
    JIT framework, JIT backend) and intercepted at a {e lower} layer.  On
    real hardware the annotation is a tagged [nop] x86 instruction observed
    by a Pin tool; here it is a zero-cost pseudo-instruction carried in the
    simulated instruction stream and delivered to the listeners registered
    on the machine engine (see {!Mtj_machine.Engine}). *)

type t =
  | Phase_push of Phase.t
      (** Enter a framework phase (framework layer).  Phases nest, e.g. a
          GC can interrupt JIT code, an AOT call is made from JIT code. *)
  | Phase_pop of Phase.t
      (** Leave the phase pushed by the matching {!Phase_push}. *)
  | Dispatch_tick
      (** One unit of application-level work completed: one iteration of
          the interpreter dispatch loop, or (in JIT-compiled code) one
          bytecode-level merge point crossed.  Inserted at the interpreter
          layer; this is the work measure that makes warmup curves and
          break-even points observable (Sec. IV, Fig. 5). *)
  | Ir_exec of int
      (** The assembly lowered from JIT IR node [id] is about to execute
          (backend layer). *)
  | Aot_enter of int  (** Entering AOT-compiled runtime function [id]. *)
  | Aot_exit of int   (** Leaving AOT-compiled runtime function [id]. *)
  | Trace_enter of int  (** Execution enters compiled trace [id]. *)
  | Trace_exit of int   (** Execution leaves compiled trace [id]. *)
  | Trace_compile of int
      (** The backend finished assembling trace [id] (loop or bridge);
          emitted under the [Tracing] phase, at the end of the compile. *)
  | Trace_abort of int
      (** A recording session aborted; the payload is the [code_ref] of
          the loop header the session started from. *)
  | Guard_fail of int   (** Guard [id] failed; deoptimization follows. *)
  | App_marker of int
      (** Application-level annotation emitted through the language-level
          API (e.g. [annotate(n)] in pylite). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
