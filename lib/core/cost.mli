(** Instruction-class cost bundles.

    All VMs in this reproduction charge their work to the simulated
    machine as bundles of instructions broken down by class.  Branches are
    {e not} part of a bundle: they are emitted individually through
    {!Mtj_machine.Engine.branch} so the branch predictor sees real control
    flow. *)

type t = {
  alu : int;    (** integer ALU instructions *)
  fpu : int;    (** floating-point instructions *)
  load : int;   (** memory loads *)
  store : int;  (** memory stores *)
  other : int;  (** moves, lea, pushes — instructions with no modelled cost *)
}

val zero : t
val make : ?alu:int -> ?fpu:int -> ?load:int -> ?store:int -> ?other:int -> unit -> t
val ( + ) : t -> t -> t
val scale : float -> t -> t
(** [scale f c] multiplies every field by [f], rounding to nearest,
    keeping at least one instruction in a field that was nonzero. *)

val scale_all : float -> t array -> t array
(** Map {!scale} over a table of base costs.  Used to preintern a
    profile-scaled cost table once at VM setup, so hot paths charge the
    interned records instead of rescaling per dispatch. *)

val total : t -> int
(** Total instruction count of the bundle. *)

val pp : Format.formatter -> t -> unit
