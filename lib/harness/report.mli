(** Machine-readable reports over {!Runner} results.

    Two versioned JSON documents, both built on {!Mtj_obs.Json} and
    checked by {!Mtj_obs.Validate}:

    - ["mtj-bench-timings/1"] — per-experiment and per-run wall-clock of
      a bench invocation ([--timings FILE]);
    - ["mtj-metrics/8"] — the full cross-layer counter export of a set
      of runs ([--metrics-out FILE]): per-phase machine counters with
      derived rates, GC statistics, JIT machinery counters (multi-tier
      accounting included) and per-trace rows. *)

val percentile : float array -> float -> float
(** [percentile xs p] is the exact nearest-rank p-th percentile of [xs]:
    the smallest sample whose cumulative rank reaches [ceil (p/100 * n)].
    No interpolation — the result is always an observed sample.  Raises
    [Invalid_argument] on an empty array or [p] outside [(0, 100]]. *)

val timings_json :
  jobs:int ->
  total_wall:float ->
  experiments:(string * float) list ->
  runs:Runner.run_timing list ->
  Mtj_obs.Json.t

val write_timings :
  file:string ->
  jobs:int ->
  total_wall:float ->
  experiments:(string * float) list ->
  unit
(** Render {!timings_json} over [Runner.run_timings ()] and write it. *)

val status_name : Runner.status -> string
(** ["ok"], ["budget"] or ["failed"]. *)

val metrics_json : Runner.result -> Mtj_obs.Json.t
(** One ["mtj-metrics/8"] run record, built purely from the memoized
    result (no live engine needed). *)

val write_metrics : file:string -> Runner.result list -> unit
(** Wrap the run records into the versioned document and write it. *)
