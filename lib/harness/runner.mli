(** Benchmark runner: executes one benchmark under one VM configuration
    with the full cross-layer instrumentation attached, and collects
    everything the paper's tables and figures need.  Results are
    memoized per (benchmark, configuration) since several experiments
    share runs; {!prefetch} fills the cache from a pool of worker
    domains, and the simulation is deterministic, so rendered output is
    byte-identical at any [-j]. *)

(** The VM configurations of the paper's run matrix (Table II). *)
type vm_config =
  | Cpython        (** reference C interpreter (pylite) *)
  | Pypy_nojit     (** RPython-translated interpreter, JIT off *)
  | Pypy_jit       (** the meta-tracing JIT *)
  | Pypy_tiered    (** extension: adaptive multi-tier compile *)
  | Pypy_baseline  (** extension: baseline tier only, never promoted *)
  | Racket         (** custom-JIT reference VM (rklite) *)
  | Pycket_nojit
  | Pycket_jit
  | Native_c       (** statically-compiled kernel *)

val config_name : vm_config -> string

type status = Ok_run | Hit_budget | Failed of string

(** One row per compiled trace, in compilation order; everything the
    metrics export needs, without retaining the trace IR itself. *)
type trace_row = {
  tr_id : int;
  tr_kind : string;  (** ["loop"] or ["bridge"] *)
  tr_tier : int;
  tr_loop_code : int;
  tr_static_ops : int;
  tr_entries : int;
  tr_dynamic_ir : int;
  tr_translations : int;  (** times threaded code was (re)built *)
  tr_cache_hits : int;    (** entries served from the code cache *)
  tr_deopts : int;        (** guard-fail side exits taken from it *)
  tr_bridges : int;       (** bridges attached to its guards *)
}

type jit_stats = {
  traces : int;
  bridges : int;
  deopts : int;
  aborts : int;
  blacklisted : int;
  retiers : int;
  translations : int;      (** traces translated to threaded code *)
  code_cache_hits : int;   (** trace entries served from the cache *)
  shared_code_hits : int;
      (** code objects imported from the cross-context shared cache
          ({!Mtj_rjit.Sharedcache}) instead of compiled locally; always
          0 outside serving mode *)
  interp_translations : int;
      (** code objects translated once into threaded interpreter steps *)
  threaded_code_hits : int;
      (** interpreter code switches served from the threaded cache *)
  tier1_compiles : int;  (** baseline-tier trace compiles *)
  tier2_compiles : int;  (** optimizing-tier trace compiles *)
  demotions : int;
      (** optimized loops recompiled back at the baseline tier *)
  first_entry_insns : int;
      (** simulated instructions retired before the first compiled-trace
          entry, or [-1] if no trace ever ran — the
          time-to-first-compiled-execution warmup metric *)
  seeded_sites : int;
      (** loop sites seeded from an imported trace profile (serving
          mode); 0 everywhere else *)
  tier1_entries : int;       (** per-tier residency: trace entries *)
  tier2_entries : int;
  tier1_dynamic_ir : int;    (** per-tier residency: dynamic IR *)
  tier2_dynamic_ir : int;
  ir_compiled : int;
  ir_dynamic : int;
  hot_fraction_95 : float;
  by_category : (Mtj_rjit.Ir.cat * int) list;
  by_node_type : (string * int) list;
  x86_per_type : (string * float) list;
  trace_rows : trace_row list;
}

type result = {
  bench : Mtj_benchmarks.Registry.bench option;  (** [None] for native kernels *)
  bench_name : string;
  config : vm_config;
  status : status;
  output : string;
  insns : int;
  cycles : float;
  total : Mtj_machine.Counters.snapshot;
  per_phase : (Mtj_core.Phase.t * Mtj_machine.Counters.snapshot) list;
  phase_insns : (Mtj_core.Phase.t * int) list;
      (** from the annotation stream *)
  timeline : (Mtj_core.Phase.t * float) array array;
  timeline_bucket : int;
  ticks : int;  (** dispatch-loop work units *)
  samples : (int * int) array;  (** warmup curve *)
  aot_top : (string * string * int) list;  (** (src, name, insns) desc *)
  jit : jit_stats option;
  gc : Mtj_rt.Gc_sim.stats;
  charge_flushes : int;
      (** staged-counter writebacks performed by the charging fast path *)
  fast_path_bundles : int;
      (** bundles charged through the batched [Counters] fast path *)
  imm_fast_path_hits : int;
      (** typed arithmetic entries that completed on the immediate
          (unboxed int/bool) fast path (host counter, see
          {!Mtj_rt.Hstats}) *)
  boxed_slow_path_hits : int;
      (** typed arithmetic entries that fell through to a boxed slow
          path (float, bigint, string, overflow) *)
  typed_ops_total : int;
      (** every counted typed-arithmetic entry; always equals
          [imm_fast_path_hits + boxed_slow_path_hits] *)
  frame_pool_reuses : int;
      (** locals/stack arrays recycled from a frame pool free list *)
  dict_hash_skips : int;
      (** dict/set operations entered with a precomputed key hash *)
}

val default_budget : int

val config_of : ?budget:int -> vm_config -> Mtj_core.Config.t
(** The {!Mtj_core.Config.t} a given [vm_config] runs under, with the
    session's [--threaded-interp] / [--frame-pool] / [--tier-policy]
    settings applied.  This is exactly the config {!run} builds; the
    serving harness ({!Serve}) uses it so shared-cache keys reflect
    every knob that affects compiled code. *)

(* --- running --- *)

val run : ?budget:int -> string -> vm_config -> result
(** Memoized: the first call per (benchmark, config) simulates, later
    calls return the cached result.  Raises [Invalid_argument] for an
    unknown benchmark name. *)

val run_many :
  ?jobs:int -> ?budget:int -> (string * vm_config) list -> result list
(** {!prefetch} in parallel, then return the results in input order. *)

val prefetch : ?jobs:int -> ?budget:int -> (string * vm_config) list -> unit
(** Fill the memo cache for every pair, running the missing ones on
    worker domains.  Renderers that subsequently call {!run} read cached
    results in their own deterministic order. *)

val clear_cache : unit -> unit

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Map on the configured number of worker domains, preserving order.
    The function must be self-contained (create its VMs within the
    call). *)

(* --- the -j setting --- *)

val set_jobs : int -> unit
(** [0] means "auto" ([MTJ_JOBS], else the hardware's recommendation). *)

val jobs : unit -> int

(* --- the --threaded-interp setting --- *)

val set_threaded_interp : bool -> unit
(** Force the threaded-dispatch interpreter tier on or off for every
    configuration built after the call.  Unset, the tier is "auto":
    [MTJ_THREADED_INTERP] ("off"/"0"/"false"/"no" disables), else on.
    Simulated counters are byte-identical either way; only host wall
    time moves (see [Config.threaded_interp]). *)

val threaded_interp : unit -> bool
(** The effective setting a [config_of] call would apply right now. *)

(* --- the --frame-pool setting --- *)

val set_frame_pool : bool -> unit
(** Force the frame pools on or off for every configuration built after
    the call.  Unset, the pools are "auto": [MTJ_FRAME_POOL]
    ("off"/"0"/"false"/"no" disables), else on.  Simulated counters are
    byte-identical either way; only host allocation and wall time move
    (see [Config.frame_pool]). *)

val frame_pool : unit -> bool
(** The effective setting a [config_of] call would apply right now. *)

(* --- the --tier-policy setting --- *)

val set_tier_policy : Mtj_core.Config.tier_policy -> unit
(** Force the tier policy of every JIT configuration built after the
    call ([Pypy_jit]/[Pycket_jit]; [Pypy_tiered] and [Pypy_baseline]
    pin their policy by name and ignore the override).  Unset, the
    policy is "auto": [MTJ_TIER_POLICY]
    ("optimizing"/"baseline"/"adaptive"), else each config's default.
    Unlike the dispatch/pool toggles this {e changes simulated
    behavior}: compile costs, warmup and trace tiers all move with the
    policy. *)

val tier_policy_override : unit -> Mtj_core.Config.tier_policy option
(** The override a [config_of] call would apply right now, if any. *)

(* --- timing report --- *)

type run_timing = {
  rt_bench : string;
  rt_config : vm_config;
  rt_wall_s : float;
  rt_insns : int;
  rt_cycles : float;
  rt_minor_words : float;
      (** host minor-heap words allocated while simulating this run
          ([Gc.minor_words] delta on the run's worker domain) —
          deterministic, since the allocation counter is monotonic and
          the simulation allocates the same objects every run *)
}

val run_timings : unit -> run_timing list
(** Wall-clock and simulated work of every cached run, sorted by
    (benchmark, config) for stable reporting. *)

(* --- derived metrics --- *)

val mcycles : result -> float
val ipc : result -> float
val mpki : result -> float

val speedup : baseline:result -> result -> float

val phase_insns_of : result -> Mtj_core.Phase.t -> int
val phase_fraction : result -> Mtj_core.Phase.t -> float
