module J = Mtj_obs.Json
module Metrics = Mtj_obs.Metrics
module Counters = Mtj_machine.Counters
module R = Runner

(* --- percentiles (exact nearest-rank) --- *)

(* The p-th percentile by the nearest-rank definition: the smallest
   sample whose cumulative rank is >= ceil(p/100 * n).  Exact (no
   interpolation), so reported latencies are always observed samples —
   the convention serving-latency dashboards use.  p50 of [|1.;2.;3.;4.|]
   is 2., p100 is the maximum, p of a singleton is that sample. *)
let percentile (xs : float array) (p : float) : float =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Report.percentile: empty sample set";
  if not (p > 0. && p <= 100.) then
    invalid_arg "Report.percentile: p must be in (0, 100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
  sorted.(min (n - 1) (max 0 (rank - 1)))

(* --- bench timings ("mtj-bench-timings/2") --- *)

let timings_json ~jobs ~total_wall ~experiments ~runs =
  J.Obj
    [
      ("schema", J.Str "mtj-bench-timings/2");
      ("jobs", J.Int jobs);
      ("total_wall_s", J.Float total_wall);
      ( "experiments",
        J.Arr
          (List.map
             (fun (name, wall) ->
               J.Obj [ ("name", J.Str name); ("wall_s", J.Float wall) ])
             experiments) );
      ( "runs",
        J.Arr
          (List.map
             (fun (rt : R.run_timing) ->
               J.Obj
                 [
                   ("bench", J.Str rt.R.rt_bench);
                   ("config", J.Str (R.config_name rt.R.rt_config));
                   ("wall_s", J.Float rt.R.rt_wall_s);
                   ("insns", J.Int rt.R.rt_insns);
                   ("cycles", J.Float rt.R.rt_cycles);
                   ("minor_words", J.Float rt.R.rt_minor_words);
                 ])
             runs) );
    ]

let write_timings ~file ~jobs ~total_wall ~experiments =
  J.write_file ~indent:2 ~file
    (timings_json ~jobs ~total_wall ~experiments ~runs:(R.run_timings ()));
  Printf.eprintf "[timings written to %s]\n%!" file

(* --- metrics ("mtj-metrics/8") --- *)

let status_name = function
  | R.Ok_run -> "ok"
  | R.Hit_budget -> "budget"
  | R.Failed _ -> "failed"

let jit_json (j : R.jit_stats) =
  J.Obj
    [
      ("num_traces", J.Int j.R.traces);
      ("aborts", J.Int j.R.aborts);
      ("deopts", J.Int j.R.deopts);
      ("bridges_attached", J.Int j.R.bridges);
      ("blacklisted", J.Int j.R.blacklisted);
      ("retiers", J.Int j.R.retiers);
      ("translations", J.Int j.R.translations);
      ("code_cache_hits", J.Int j.R.code_cache_hits);
      ("shared_code_hits", J.Int j.R.shared_code_hits);
      ( "code_cache_total_hits",
        J.Int (j.R.code_cache_hits + j.R.shared_code_hits) );
      ("interp_translations", J.Int j.R.interp_translations);
      ("threaded_code_hits", J.Int j.R.threaded_code_hits);
      ("tier1_compiles", J.Int j.R.tier1_compiles);
      ("tier2_compiles", J.Int j.R.tier2_compiles);
      ("demotions", J.Int j.R.demotions);
      ("first_entry_insns", J.Int j.R.first_entry_insns);
      ("seeded_sites", J.Int j.R.seeded_sites);
      ( "tier_residency",
        J.Obj
          [
            ("tier1_entries", J.Int j.R.tier1_entries);
            ("tier2_entries", J.Int j.R.tier2_entries);
            ("tier1_dynamic_ir", J.Int j.R.tier1_dynamic_ir);
            ("tier2_dynamic_ir", J.Int j.R.tier2_dynamic_ir);
          ] );
      ("total_ir_compiled", J.Int j.R.ir_compiled);
      ("total_dynamic_ir", J.Int j.R.ir_dynamic);
      ( "traces",
        J.Arr
          (List.map
             (fun (tr : R.trace_row) ->
               J.Obj
                 [
                   ("id", J.Int tr.R.tr_id);
                   ("kind", J.Str tr.R.tr_kind);
                   ("tier", J.Int tr.R.tr_tier);
                   ("loop_code", J.Int tr.R.tr_loop_code);
                   ("static_ops", J.Int tr.R.tr_static_ops);
                   ("entries", J.Int tr.R.tr_entries);
                   ("dynamic_ir", J.Int tr.R.tr_dynamic_ir);
                   ("translations", J.Int tr.R.tr_translations);
                   ("cache_hits", J.Int tr.R.tr_cache_hits);
                   ("deopts", J.Int tr.R.tr_deopts);
                   ("bridges", J.Int tr.R.tr_bridges);
                 ])
             j.R.trace_rows) );
    ]

let metrics_json (r : R.result) =
  let phase_rows =
    List.filter_map
      (fun (p, s) ->
        if s.Counters.insns = 0 then None
        else Some (Mtj_core.Phase.name p, Metrics.snapshot_json s))
      r.R.per_phase
  in
  J.Obj
    [
      ("bench", J.Str r.R.bench_name);
      ("config", J.Str (R.config_name r.R.config));
      ("status", J.Str (status_name r.R.status));
      ("insns", J.Int r.R.insns);
      ("cycles", J.Float r.R.cycles);
      ("ticks", J.Int r.R.ticks);
      ("charge_flushes", J.Int r.R.charge_flushes);
      ("fast_path_bundles", J.Int r.R.fast_path_bundles);
      ("imm_fast_path_hits", J.Int r.R.imm_fast_path_hits);
      ("boxed_slow_path_hits", J.Int r.R.boxed_slow_path_hits);
      ("typed_ops_total", J.Int r.R.typed_ops_total);
      ("frame_pool_reuses", J.Int r.R.frame_pool_reuses);
      ("dict_hash_skips", J.Int r.R.dict_hash_skips);
      ( "phases",
        J.Obj (phase_rows @ [ ("total", Metrics.snapshot_json r.R.total) ]) );
      ("gc", Metrics.gc_json r.R.gc);
      ("jit", match r.R.jit with Some j -> jit_json j | None -> J.Null);
    ]

let write_metrics ~file results =
  Metrics.write ~file ~runs:(List.map metrics_json results) ();
  Printf.eprintf "[metrics written to %s]\n%!" file
