(** ASCII rendering helpers for the tables and figures. *)

let pr fmt = Printf.printf fmt

let heading title =
  let line = String.make (String.length title) '=' in
  pr "\n%s\n%s\n" title line

let subheading title = pr "\n--- %s ---\n" title

(* column-aligned table *)
let table ~(header : string list) ~(rows : string list list) =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let print_row r =
    List.iteri
      (fun i cell ->
        if i = 0 then pr "%-*s" widths.(i) cell
        else pr "  %*s" widths.(i) cell)
      r;
    pr "\n"
  in
  print_row header;
  pr "%s\n" (String.make (Array.fold_left (fun a w -> a + w + 2) 0 widths) '-');
  List.iter print_row rows

let f1 v = Printf.sprintf "%.1f" v
let f2 v = Printf.sprintf "%.2f" v

(* phase letter codes for the stacked bars *)
let phase_letter (p : Mtj_core.Phase.t) =
  match p with
  | Mtj_core.Phase.Interpreter -> 'I'
  | Tracing -> 'T'
  | Jit -> 'J'
  | Jit_call -> 'C'
  | Gc_minor | Gc_major -> 'G'
  | Blackhole -> 'B'
  | Native -> 'N'

let phase_legend =
  "I=interpreter T=tracing J=jit C=jit_call G=gc B=blackhole N=native"

(* a stacked horizontal bar: each (phase, fraction) gets proportional
   width, rendered with the phase's letter *)
let stacked_bar ?(width = 50) (parts : (Mtj_core.Phase.t * float) list) =
  let buf = Buffer.create width in
  let used = ref 0 in
  let parts = List.filter (fun (_, f) -> f > 0.0) parts in
  let n = List.length parts in
  List.iteri
    (fun i (p, frac) ->
      let w =
        if i = n - 1 then width - !used
        else int_of_float (Float.round (frac *. float_of_int width))
      in
      let w = max 0 (min w (width - !used)) in
      Buffer.add_string buf (String.make w (phase_letter p));
      used := !used + w)
    parts;
  Buffer.add_string buf (String.make (max 0 (width - !used)) ' ');
  Buffer.contents buf

(* sparkline over [0, vmax] *)
let spark_chars = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let sparkline ?(vmax = 0.0) (values : float array) =
  let vmax =
    if vmax > 0.0 then vmax
    else Array.fold_left Float.max 0.000001 values
  in
  String.concat ""
    (Array.to_list
       (Array.map
          (fun v ->
            let i =
              int_of_float (Float.round (v /. vmax *. 9.0))
            in
            String.make 1 spark_chars.(max 0 (min 9 i)))
          values))

let simple_bar ?(width = 40) frac =
  let w = max 0 (min width (int_of_float (frac *. float_of_int width))) in
  String.make w '#' ^ String.make (width - w) ' '

let mean_std values =
  match values with
  | [] -> (0.0, 0.0)
  | _ ->
      let n = float_of_int (List.length values) in
      let mean = List.fold_left ( +. ) 0.0 values /. n in
      let var =
        List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 values
        /. n
      in
      (mean, sqrt var)
