(** Fixed-size worker pool over raw OCaml 5 domains.

    Built from [Domain] + [Mutex]/[Condition] only (no dependency on a
    scheduler library).  Jobs are closures submitted to a shared queue;
    each returns its value through a future, and an exception raised by
    a job is captured with its backtrace and re-raised at [await] time
    in the submitting domain.

    Spawning a pool calls {!Mtj_rt.Aot.freeze}: all global registration
    in the runtime happens at module-initialization time, and freezing
    the registry before the first worker exists is what makes its
    lock-free concurrent reads sound (see DESIGN.md, "Domain-safety
    audit"). *)

type job = unit -> unit

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : job Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

type 'a state =
  | Pending
  | Value of 'a
  | Error of exn * Printexc.raw_backtrace

type 'a future = {
  flock : Mutex.t;
  fdone : Condition.t;
  mutable state : 'a state;
}

(* the default worker count: MTJ_JOBS if set, else what the hardware
   recommends *)
let default_jobs () =
  match Sys.getenv_opt "MTJ_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let rec worker t =
  Mutex.lock t.lock;
  let rec next () =
    match Queue.take_opt t.queue with
    | Some job -> Some job
    | None ->
        if t.closed then None
        else begin
          Condition.wait t.nonempty t.lock;
          next ()
        end
  in
  let job = next () in
  Mutex.unlock t.lock;
  match job with
  | None -> ()
  | Some job ->
      job ();
      worker t

let create ~jobs =
  let jobs = max 1 jobs in
  Mtj_rt.Aot.freeze ();
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [||];
    }
  in
  t.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t f =
  let fut = { flock = Mutex.create (); fdone = Condition.create (); state = Pending } in
  let job () =
    let outcome =
      match f () with
      | v -> Value v
      | exception e -> Error (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.flock;
    fut.state <- outcome;
    Condition.broadcast fut.fdone;
    Mutex.unlock fut.flock
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add job t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  fut

(* wait without raising; used internally so [map] can drain every
   future before propagating the first failure *)
let await_result fut =
  Mutex.lock fut.flock;
  let rec wait () =
    match fut.state with
    | Pending ->
        Condition.wait fut.fdone fut.flock;
        wait ()
    | Value v -> Ok v
    | Error (e, bt) -> Stdlib.Error (e, bt)
  in
  let r = wait () in
  Mutex.unlock fut.flock;
  r

let await fut =
  match await_result fut with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  (* joining a domain twice is an error, so take the worker array under
     the lock — a second (even concurrent) shutdown finds it empty and
     is a no-op *)
  let workers = t.workers in
  t.workers <- [||];
  Mutex.unlock t.lock;
  Array.iter Domain.join workers

(** [map ~jobs f xs] applies [f] to every element of [xs] on a temporary
    pool of [jobs] workers and returns the results in list order.  All
    jobs run to completion even if some fail; the first failure (in list
    order) is then re-raised with its original backtrace.  With one job
    (or one element) it degrades to [List.map] on the calling domain. *)
let map ~jobs f xs =
  let n = List.length xs in
  let jobs = min (max 1 jobs) n in
  if jobs <= 1 then List.map f xs
  else begin
    let t = create ~jobs in
    let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
    let results = List.map await_result futs in
    shutdown t;
    List.map
      (function
        | Ok v -> v
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      results
  end

let iter ~jobs f xs = ignore (map ~jobs (fun x -> f x; ()) xs)
