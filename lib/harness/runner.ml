(** Benchmark runner: executes one benchmark under one VM configuration
    with the full cross-layer instrumentation attached, and collects
    everything the paper's tables and figures need.  Results are memoized
    per (benchmark, configuration) since several experiments share runs. *)

open Mtj_core
open Mtj_rt
module Engine = Mtj_machine.Engine
module Counters = Mtj_machine.Counters
module B = Mtj_benchmarks.Registry
module Ir = Mtj_rjit.Ir
module Jitlog = Mtj_rjit.Jitlog

type vm_config =
  | Cpython        (** reference C interpreter (pylite) *)
  | Pypy_nojit     (** RPython-translated interpreter, JIT off *)
  | Pypy_jit       (** the meta-tracing JIT *)
  | Pypy_tiered    (** extension: adaptive multi-tier compile *)
  | Pypy_baseline  (** extension: baseline tier only, never promoted *)
  | Racket         (** custom-JIT reference VM (rklite) *)
  | Pycket_nojit
  | Pycket_jit
  | Native_c       (** statically-compiled kernel *)

let config_name = function
  | Cpython -> "cpython"
  | Pypy_nojit -> "pypy-nojit"
  | Pypy_jit -> "pypy"
  | Pypy_tiered -> "pypy-2tier"
  | Pypy_baseline -> "pypy-1tier"
  | Racket -> "racket"
  | Pycket_nojit -> "pycket-nojit"
  | Pycket_jit -> "pycket"
  | Native_c -> "c"

type status = Ok_run | Hit_budget | Failed of string

(* one row per compiled trace, in compilation order; everything the
   metrics export needs, without retaining the trace IR itself *)
type trace_row = {
  tr_id : int;
  tr_kind : string;  (* "loop" | "bridge" *)
  tr_tier : int;
  tr_loop_code : int;
  tr_static_ops : int;
  tr_entries : int;
  tr_dynamic_ir : int;
  tr_translations : int;
  tr_cache_hits : int;
  tr_deopts : int;
  tr_bridges : int;
}

type jit_stats = {
  traces : int;
  bridges : int;
  deopts : int;
  aborts : int;
  blacklisted : int;
  retiers : int;
  translations : int;
  code_cache_hits : int;
  shared_code_hits : int;  (* cross-context imports; 0 outside serving *)
  interp_translations : int;
  threaded_code_hits : int;
  tier1_compiles : int;
  tier2_compiles : int;
  demotions : int;
  first_entry_insns : int;   (* -1 if no trace ever ran *)
  seeded_sites : int;        (* profile-seeded loop sites; 0 outside serving *)
  tier1_entries : int;       (* per-tier residency *)
  tier2_entries : int;
  tier1_dynamic_ir : int;
  tier2_dynamic_ir : int;
  ir_compiled : int;
  ir_dynamic : int;
  hot_fraction_95 : float;
  by_category : (Ir.cat * int) list;
  by_node_type : (string * int) list;
  x86_per_type : (string * float) list;
  trace_rows : trace_row list;
}

type result = {
  bench : B.bench option;  (* None for native kernels *)
  bench_name : string;
  config : vm_config;
  status : status;
  output : string;
  insns : int;
  cycles : float;
  total : Counters.snapshot;
  per_phase : (Phase.t * Counters.snapshot) list;
  phase_insns : (Phase.t * int) list;      (* from the annotation stream *)
  timeline : (Phase.t * float) array array;
  timeline_bucket : int;
  ticks : int;                              (* dispatch-loop work units *)
  samples : (int * int) array;              (* warmup curve *)
  aot_top : (string * string * int) list;   (* (src, name, insns) desc *)
  jit : jit_stats option;
  gc : Gc_sim.stats;
  charge_flushes : int;                     (* staged-counter writebacks *)
  fast_path_bundles : int;                  (* bundles charged via fast path *)
  imm_fast_path_hits : int;                 (* host fast-path counters *)
  boxed_slow_path_hits : int;
  typed_ops_total : int;
  frame_pool_reuses : int;
  dict_hash_skips : int;
}

let default_budget = 200_000_000

let profile_of = function
  | Cpython -> Profile.cpython
  | Pypy_nojit | Pypy_jit | Pypy_tiered | Pypy_baseline | Pycket_nojit
  | Pycket_jit ->
      Profile.rpython_interp
  | Racket -> Profile.racket_custom
  | Native_c -> Profile.native

let jit_enabled = function
  | Pypy_jit | Pypy_tiered | Pypy_baseline | Pycket_jit -> true
  | _ -> false

(* the --threaded-interp setting; 0 = auto (MTJ_THREADED_INTERP, else on) *)
let threaded_setting = Atomic.make 0
let set_threaded_interp b = Atomic.set threaded_setting (if b then 1 else 2)

let threaded_interp () =
  match Atomic.get threaded_setting with
  | 1 -> true
  | 2 -> false
  | _ -> (
      match Sys.getenv_opt "MTJ_THREADED_INTERP" with
      | Some ("0" | "off" | "false" | "no") -> false
      | _ -> true)

(* the --frame-pool setting; 0 = auto (MTJ_FRAME_POOL, else on) *)
let frame_pool_setting = Atomic.make 0
let set_frame_pool b = Atomic.set frame_pool_setting (if b then 1 else 2)

let frame_pool () =
  match Atomic.get frame_pool_setting with
  | 1 -> true
  | 2 -> false
  | _ -> (
      match Sys.getenv_opt "MTJ_FRAME_POOL" with
      | Some ("0" | "off" | "false" | "no") -> false
      | _ -> true)

(* the --tier-policy setting; None = auto (MTJ_TIER_POLICY, else the
   per-vm_config default: Pypy_tiered adaptive, Pypy_baseline baseline,
   everything else optimizing) *)
let tier_policy_setting = Atomic.make None
let set_tier_policy p = Atomic.set tier_policy_setting (Some p)

let tier_policy_override () =
  match Atomic.get tier_policy_setting with
  | Some p -> Some p
  | None ->
      Option.bind
        (Sys.getenv_opt "MTJ_TIER_POLICY")
        Config.tier_policy_of_string

let config_of ?(budget = default_budget) vc =
  let base =
    match vc with
    | Pypy_tiered -> Config.two_tier
    | Pypy_baseline -> Config.baseline_tier
    | _ -> if jit_enabled vc then Config.default else Config.no_jit
  in
  let base =
    (* the explicit policy override applies to JIT-enabled configs that
       don't already pin a tier policy by name *)
    match (vc, tier_policy_override ()) with
    | (Pypy_jit | Pycket_jit), Some p -> { base with Config.tier_policy = p }
    | _ -> base
  in
  let base =
    {
      base with
      Config.threaded_interp = threaded_interp ();
      frame_pool = frame_pool ();
    }
  in
  Config.with_budget budget base

let jit_stats_of jl =
  let t1_entries, t2_entries, t1_dyn, t2_dyn = Jitlog.tier_residency jl in
  {
    traces = Jitlog.num_traces jl;
    bridges = jl.Jitlog.bridges_attached;
    deopts = jl.Jitlog.deopts;
    aborts = jl.Jitlog.aborts;
    blacklisted = jl.Jitlog.blacklisted;
    retiers = jl.Jitlog.retiers;
    translations = jl.Jitlog.translations;
    code_cache_hits = jl.Jitlog.code_cache_hits;
    shared_code_hits = jl.Jitlog.shared_code_hits;
    interp_translations = jl.Jitlog.interp_translations;
    threaded_code_hits = jl.Jitlog.threaded_code_hits;
    tier1_compiles = jl.Jitlog.tier1_compiles;
    tier2_compiles = jl.Jitlog.tier2_compiles;
    demotions = jl.Jitlog.demotions;
    first_entry_insns = jl.Jitlog.first_entry_insns;
    seeded_sites = jl.Jitlog.seeded_sites;
    tier1_entries = t1_entries;
    tier2_entries = t2_entries;
    tier1_dynamic_ir = t1_dyn;
    tier2_dynamic_ir = t2_dyn;
    ir_compiled = Jitlog.total_ir_compiled jl;
    ir_dynamic = Jitlog.total_dynamic_ir jl;
    hot_fraction_95 = Jitlog.hot_ir_fraction jl ~coverage:0.95;
    by_category = Jitlog.dynamic_by_category jl;
    by_node_type = Jitlog.dynamic_by_node_type jl;
    x86_per_type = Jitlog.x86_per_node_type jl;
    trace_rows =
      List.map
        (fun (tr : Ir.trace) ->
          let kind, loop_code =
            match tr.Ir.kind with
            | Ir.Loop { loop_code; _ } -> ("loop", loop_code)
            | Ir.Bridge { loop_code; _ } -> ("bridge", loop_code)
          in
          {
            tr_id = tr.Ir.trace_id;
            tr_kind = kind;
            tr_tier = tr.Ir.tier;
            tr_loop_code = loop_code;
            tr_static_ops = Array.length tr.Ir.ops;
            tr_entries = tr.Ir.exec_count;
            tr_dynamic_ir = Array.fold_left ( + ) 0 tr.Ir.op_exec;
            tr_translations = tr.Ir.translations;
            tr_cache_hits = tr.Ir.cache_hits;
            tr_deopts = tr.Ir.deopts;
            tr_bridges = tr.Ir.bridges;
          })
        (Jitlog.traces jl);
  }

let aot_ranking attrib =
  Mtj_pintool.Aot_attrib.top attrib ~n:12
  |> List.filter_map (fun (id, insns) ->
         match Aot.find id with
         | Some fn ->
             Some (Aot.src_letter (Aot.src fn), Aot.name fn, insns)
         | None -> None)

let run_uncached ?budget (bench_name : string) (vc : vm_config) : result =
  let config = config_of ?budget vc in
  let finish ~bench ~status ~output ~ticks ~aot_top ~jit rtc tracker sampler =
    Mtj_pintool.Phase_tracker.finalize tracker;
    Mtj_pintool.Rate_sampler.finalize sampler;
    let eng = Ctx.engine rtc in
    let counters = Engine.counters eng in
    {
      bench;
      bench_name;
      config = vc;
      status;
      output;
      insns = Engine.total_insns eng;
      cycles = Engine.total_cycles eng;
      total = Counters.total counters;
      per_phase =
        List.map (fun p -> (p, Counters.phase counters p)) Phase.all;
      phase_insns =
        List.map
          (fun p -> (p, Mtj_pintool.Phase_tracker.phase_insns tracker p))
          Phase.all;
      timeline = Mtj_pintool.Phase_tracker.timeline tracker;
      timeline_bucket = Mtj_pintool.Phase_tracker.bucket_insns tracker;
      ticks = (if ticks >= 0 then ticks else Mtj_pintool.Rate_sampler.ticks sampler);
      samples = Mtj_pintool.Rate_sampler.samples sampler;
      aot_top;
      jit;
      gc = Gc_sim.stats (Ctx.gc rtc);
      (* read after [Counters.total] above so the final writeback of the
         staged fast path is included in the flush count *)
      charge_flushes = Engine.charge_flushes eng;
      fast_path_bundles = Engine.fast_path_bundles eng;
      imm_fast_path_hits = (Ctx.hstats rtc).Hstats.imm_fast_path_hits;
      boxed_slow_path_hits = (Ctx.hstats rtc).Hstats.boxed_slow_path_hits;
      typed_ops_total = (Ctx.hstats rtc).Hstats.typed_ops_total;
      frame_pool_reuses = (Ctx.hstats rtc).Hstats.frame_pool_reuses;
      dict_hash_skips = (Ctx.hstats rtc).Hstats.dict_hash_skips;
    }
  in
  match vc with
  | Native_c -> (
      match Mtj_baselines.Native.find bench_name with
      | None -> invalid_arg ("no native kernel for " ^ bench_name)
      | Some kernel ->
          let rtc = Ctx.create ~config () in
          let tracker = Mtj_pintool.Phase_tracker.attach (Ctx.engine rtc) in
          let sampler = Mtj_pintool.Rate_sampler.attach (Ctx.engine rtc) in
          let status, output =
            match Mtj_baselines.Native.run rtc kernel with
            | out -> (Ok_run, out)
            | exception Engine.Budget_exhausted -> (Hit_budget, "")
          in
          finish ~bench:None ~status ~output ~ticks:(-1) ~aot_top:[]
            ~jit:None rtc tracker sampler)
  | Cpython | Pypy_nojit | Pypy_jit | Pypy_tiered | Pypy_baseline ->
      let b = B.find_exn ~lang:B.Py bench_name in
      let vm = Mtj_pylite.Vm.create ~config ~profile:(profile_of vc) () in
      let eng = Mtj_pylite.Vm.engine vm in
      let tracker = Mtj_pintool.Phase_tracker.attach eng in
      let sampler = Mtj_pintool.Rate_sampler.attach eng in
      let attrib = Mtj_pintool.Aot_attrib.attach eng in
      let status =
        match Mtj_pylite.Vm.run_source vm b.B.source with
        | Mtj_rjit.Driver.Completed _ -> Ok_run
        | Mtj_rjit.Driver.Budget_exceeded -> Hit_budget
        | Mtj_rjit.Driver.Runtime_error e -> Failed e
      in
      finish ~bench:(Some b) ~status ~output:(Mtj_pylite.Vm.output vm)
        ~ticks:(-1) ~aot_top:(aot_ranking attrib)
        ~jit:(Some (jit_stats_of (Mtj_pylite.Vm.jitlog vm)))
        (Mtj_pylite.Vm.rtc vm) tracker sampler
  | Racket | Pycket_nojit | Pycket_jit ->
      let b = B.find_exn ~lang:B.Rk bench_name in
      let vm = Mtj_rklite.Kvm.create ~config ~profile:(profile_of vc) () in
      let eng = Mtj_rklite.Kvm.engine vm in
      let tracker = Mtj_pintool.Phase_tracker.attach eng in
      let sampler = Mtj_pintool.Rate_sampler.attach eng in
      let attrib = Mtj_pintool.Aot_attrib.attach eng in
      let status =
        match Mtj_rklite.Kvm.run_source vm b.B.source with
        | Mtj_rjit.Driver.Completed _ -> Ok_run
        | Mtj_rjit.Driver.Budget_exceeded -> Hit_budget
        | Mtj_rjit.Driver.Runtime_error e -> Failed e
      in
      finish ~bench:(Some b) ~status ~output:(Mtj_rklite.Kvm.output vm)
        ~ticks:(-1) ~aot_top:(aot_ranking attrib)
        ~jit:(Some (jit_stats_of (Mtj_rklite.Kvm.jitlog vm)))
        (Mtj_rklite.Kvm.rtc vm) tracker sampler

(* --- memoized entry point --- *)

(* The cache is shared across domains; every access happens under
   [cache_lock].  The (long) simulation itself runs outside the lock:
   [prefetch] deduplicates keys before fanning out, so no key is
   computed twice, and a racing duplicate would in any case store an
   identical (deterministic) result. *)

let cache : (string * vm_config, result) Hashtbl.t = Hashtbl.create 128
let run_walls : (string * vm_config, float) Hashtbl.t = Hashtbl.create 128

(* host minor-heap words allocated while simulating each run.
   [Gc.minor_words] is domain-local in OCaml 5 and each run executes
   wholly on one worker domain, so the delta isolates that run's
   allocations; it is a monotonic allocation counter (collections do not
   reset it), so the value is deterministic for a deterministic
   simulation.  Kept out of stdout — only the timings JSON reports it —
   so table output stays byte-identical at any [-j]. *)
let run_allocs : (string * vm_config, float) Hashtbl.t = Hashtbl.create 128
let cache_lock = Mutex.create ()

let with_cache_lock f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let run ?budget (bench_name : string) (vc : vm_config) : result =
  let key = (bench_name, vc) in
  match with_cache_lock (fun () -> Hashtbl.find_opt cache key) with
  | Some r -> r
  | None ->
      let t0 = Unix.gettimeofday () in
      let mw0 = Gc.minor_words () in
      let r = run_uncached ?budget bench_name vc in
      let minor_words = Gc.minor_words () -. mw0 in
      let wall = Unix.gettimeofday () -. t0 in
      with_cache_lock (fun () ->
          Hashtbl.replace cache key r;
          Hashtbl.replace run_walls key wall;
          Hashtbl.replace run_allocs key minor_words);
      r

let clear_cache () =
  with_cache_lock (fun () ->
      Hashtbl.reset cache;
      Hashtbl.reset run_walls;
      Hashtbl.reset run_allocs)

(* --- parallel execution --- *)

(* the -j setting; 0 means "auto" (MTJ_JOBS, else the hardware) *)
let jobs_setting = Atomic.make 0
let set_jobs n = Atomic.set jobs_setting (max 0 n)
let jobs () =
  let n = Atomic.get jobs_setting in
  if n > 0 then n else Pool.default_jobs ()

(** [parallel_map f xs] maps [f] over [xs] on the configured number of
    worker domains (capped at the list length), preserving list order.
    [f] must be self-contained: create its VMs and run them entirely
    within the call. *)
let parallel_map ?jobs:j f xs =
  let j = match j with Some j -> j | None -> jobs () in
  Pool.map ~jobs:j f xs

(** [prefetch pairs] fills the memo cache for every (benchmark,
    vm_config) pair, running the missing ones in parallel.  Renderers
    that subsequently call {!run} read cached results in their own
    deterministic order, so output is byte-identical to a serial run. *)
let prefetch ?jobs:j ?budget (pairs : (string * vm_config) list) =
  let seen = Hashtbl.create 64 in
  let pending =
    List.filter
      (fun key ->
        (not (Hashtbl.mem seen key))
        && begin
             Hashtbl.replace seen key ();
             not (with_cache_lock (fun () -> Hashtbl.mem cache key))
           end)
      pairs
  in
  ignore
    (parallel_map ?jobs:j
       (fun (b, vc) -> ignore (run ?budget b vc))
       pending)

(** [run_many pairs] = prefetch in parallel, then return the results in
    input order. *)
let run_many ?jobs:j ?budget (pairs : (string * vm_config) list) :
    result list =
  prefetch ?jobs:j ?budget pairs;
  List.map (fun (b, vc) -> run ?budget b vc) pairs

(* --- timing report --- *)

type run_timing = {
  rt_bench : string;
  rt_config : vm_config;
  rt_wall_s : float;
  rt_insns : int;
  rt_cycles : float;
  rt_minor_words : float;
}

(** wall-clock and simulated work of every cached run, sorted by
    (benchmark, config) for stable reporting *)
let run_timings () : run_timing list =
  with_cache_lock (fun () ->
      Hashtbl.fold
        (fun ((b, vc) as key) (r : result) acc ->
          let wall =
            Option.value ~default:0.0 (Hashtbl.find_opt run_walls key)
          in
          let minor_words =
            Option.value ~default:0.0 (Hashtbl.find_opt run_allocs key)
          in
          {
            rt_bench = b;
            rt_config = vc;
            rt_wall_s = wall;
            rt_insns = r.insns;
            rt_cycles = r.cycles;
            rt_minor_words = minor_words;
          }
          :: acc)
        cache [])
  |> List.sort (fun a b ->
         match compare a.rt_bench b.rt_bench with
         | 0 -> compare (config_name a.rt_config) (config_name b.rt_config)
         | c -> c)

(* --- derived metrics --- *)

let mcycles r = r.cycles /. 1.0e6
let ipc r = Counters.ipc r.total
let mpki r = Counters.branch_mpki r.total

let speedup ~baseline r =
  if r.cycles <= 0.0 then 0.0 else baseline.cycles /. r.cycles

let phase_insns_of r p =
  Option.value ~default:0 (List.assoc_opt p r.phase_insns)

let phase_fraction r p =
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 r.phase_insns in
  if total = 0 then 0.0
  else
    (* a phase absent from the annotation stream contributes 0, it is
       not an error *)
    float_of_int (phase_insns_of r p) /. float_of_int total
