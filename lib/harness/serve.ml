(** Multi-tenant serving harness (see serve.mli).

    Design notes:

    - Requests are generated up front from a seeded splitmix64 stream,
      so the workload is a pure function of (corpus, requests, zipf_s,
      seed) — workers consume a fixed array and never touch the RNG.

    - Every request builds a fresh {!Mtj_rt.Ctx} (own engine, GC,
      globals, JIT driver): tenant isolation is per-request.  The only
      cross-request state is a per-session {!Mtj_rjit.Sharedcache},
      which stores immutable compiled-program bundles (and the trace
      profiles their publishers attach) keyed by (language, program,
      config digest).  Trace and threaded-interpreter translations
      close over their context and are never shared; see DESIGN.md §3k
      and §3m.

    - The shared cache saves host wall only; profile seeding
      additionally moves WHEN the simulated machine traces (earlier),
      never WHAT the program computes.  [digest_of] hashes simulated
      state, so it is identical across shared-cache mode, job count and
      scheduling at a FIXED profile-seed setting, while [out_digest_of]
      (status and program output only) is identical across every mode.
      The differential tests pin both. *)

module B = Mtj_benchmarks.Registry
module Sharedcache = Mtj_rjit.Sharedcache
module Jitlog = Mtj_rjit.Jitlog
module Ctx = Mtj_rt.Ctx
module Engine = Mtj_machine.Engine
module J = Mtj_obs.Json

type request = { req_id : int; req_lang : B.lang; req_bench : string }

type record = {
  r_id : int;
  r_bench : string;
  r_lang : string;
  r_status : string;
  r_warm : bool;
  r_seeded : bool;
  r_wall_s : float;
  r_shared_code_hits : int;
  r_first_entry_insns : int;
  r_digest : string;
  r_out_digest : string;
}

type summary = {
  sv_requests : int;
  sv_jobs : int;
  sv_zipf_s : float;
  sv_seed : int;
  sv_shared : bool;
  sv_profile_seed : bool;
  sv_cache_capacity : int;
  sv_tenant_quota : int;
  sv_corpus_size : int;
  sv_budget : int;
  sv_wall_s : float;
  sv_throughput : float;
  sv_p50_ms : float;
  sv_p95_ms : float;
  sv_p99_ms : float;
  sv_cold : int;
  sv_warm : int;
  sv_seeded : int;
  sv_cold_p50_ms : float;
  sv_warm_p50_ms : float;
  sv_seeded_first_entry_mean : float;
  sv_unseeded_first_entry_mean : float;
  sv_cache_entries : int;
  sv_cache : Sharedcache.stats;
  sv_records : record array;
}

(* Short requests on purpose: the serving regime is many small
   programs, where compile wall is a large slice of each request and
   the shared cache has something to save. *)
let default_budget = 300_000

(* Most-popular-first (Zipf rank 1 first).  Compile-heavy programs
   lead — richards and nbody spend most of a short run's wall in the
   compiler — and the mix alternates pylite and rklite tenants. *)
let default_corpus =
  [
    (B.Py, "richards");
    (B.Py, "nbody_modified");
    (B.Rk, "mandelbrot");
    (B.Py, "telco");
    (B.Py, "hexiom2");
    (B.Rk, "spectralnorm");
    (B.Py, "chaos");
    (B.Rk, "fasta");
  ]

(* --- seeded RNG: splitmix64 --- *)

(* Standard splitmix64: one 64-bit state, one output per step.  Chosen
   over [Random] for exact cross-platform reproducibility and because
   the stream must be a pure function of the seed. *)
let sm64_next (state : int64) : int64 * int64 =
  let open Int64 in
  let s = add state 0x9E3779B97F4A7C15L in
  let z = mul (logxor s (shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (s, logxor z (shift_right_logical z 31))

(* uniform in [0,1) from the top 53 bits *)
let sm64_float z =
  Int64.to_float (Int64.shift_right_logical z 11) *. (1.0 /. 9007199254740992.0)

(* --- Zipf sampling --- *)

(* cumulative Zipf weights over ranks 1..n: weight of rank r is 1/r^s *)
let zipf_cumulative ~n ~s =
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
    cum.(i) <- !acc
  done;
  cum

let zipf_index cum u =
  let total = cum.(Array.length cum - 1) in
  let x = u *. total in
  let i = ref 0 in
  while cum.(!i) <= x do incr i done;
  !i

let gen_requests ~corpus ~requests ~zipf_s ~seed =
  if requests <= 0 then invalid_arg "Serve.gen_requests: requests <= 0";
  if corpus = [] then invalid_arg "Serve.gen_requests: empty corpus";
  if zipf_s <= 0.0 then invalid_arg "Serve.gen_requests: zipf_s <= 0";
  let corpus = Array.of_list corpus in
  let cum = zipf_cumulative ~n:(Array.length corpus) ~s:zipf_s in
  let state = ref (Int64.of_int seed) in
  Array.init requests (fun req_id ->
      let s, z = sm64_next !state in
      state := s;
      let lang, bench = corpus.(zipf_index cum (sm64_float z)) in
      { req_id; req_lang = lang; req_bench = bench })

(* --- per-request execution --- *)

(* the shared cache stores language-layer bundles through the
   extensible entry type; unknown constructors are treated as a miss *)
type Sharedcache.entry +=
  | Py_bundle of Mtj_pylite.Vm.bundle
  | Rk_bundle of Mtj_rklite.Kvm.bundle

let lang_name = function B.Py -> "py" | B.Rk -> "rk"

let status_of = function
  | Mtj_rjit.Driver.Completed _ -> "ok"
  | Mtj_rjit.Driver.Budget_exceeded -> "budget"
  | Mtj_rjit.Driver.Runtime_error e -> "failed:" ^ e

(* Everything the simulated machine determined, nothing the host did:
   status, retired work, GC totals, JIT machinery counters and program
   output.  Shared-cache hits and warm/cold are deliberately absent —
   they depend on scheduling.  Seeding legitimately changes the JIT
   counters (the machine traces earlier), so this digest is pinned per
   profile-seed setting; cross-setting invariance is [out_digest_of]'s
   job. *)
let digest_of ~status ~insns ~cycles ~output ~(gc : Mtj_rt.Gc_sim.stats)
    ~(jl : Jitlog.t) =
  let s =
    Printf.sprintf
      "%s|%d|%.6f|%d.%d.%d.%d|%d.%d.%d.%d.%d.%d.%d.%d|%s" status insns cycles
      gc.Mtj_rt.Gc_sim.minor_collections gc.Mtj_rt.Gc_sim.major_collections
      gc.Mtj_rt.Gc_sim.allocated_objects gc.Mtj_rt.Gc_sim.allocated_words
      (Jitlog.num_traces jl) jl.Jitlog.bridges_attached jl.Jitlog.deopts
      jl.Jitlog.translations jl.Jitlog.code_cache_hits
      jl.Jitlog.tier1_compiles jl.Jitlog.tier2_compiles
      jl.Jitlog.threaded_code_hits output
  in
  Digest.to_hex (Digest.string s)

(* What the tenant's program computed, full stop.  Invariant across
   shared-cache mode, profile seeding, eviction churn and job count —
   the "seeding never changes outputs" guarantee, pinned as such. *)
let out_digest_of ~status ~output =
  Digest.to_hex (Digest.string (status ^ "|" ^ output))

let run_py ~shared ~profile_seed ~cache ~config ~cfg_digest (req : request) =
  let b = B.find_exn ~lang:B.Py req.req_bench in
  let vm = Mtj_pylite.Vm.create ~config () in
  let key =
    Sharedcache.key ~lang:"py" ~program:req.req_bench ~config_digest:cfg_digest
  in
  let tenant = "py:" ^ req.req_bench in
  let uid = Ctx.uid (Mtj_pylite.Vm.rtc vm) in
  let warm, seeded, published, outcome =
    if not shared then (false, false, false, Mtj_pylite.Vm.run_source vm b.B.source)
    else
      let lookup () =
        if profile_seed then Sharedcache.find_with_profile cache ~ctx_uid:uid key
        else
          match Sharedcache.find cache ~ctx_uid:uid key with
          | Some e -> Some (e, None)
          | None -> None
      in
      match lookup () with
      | Some (Py_bundle bu, prof) ->
          Mtj_pylite.Vm.import_bundle vm bu;
          Jitlog.record_shared_code_hits (Mtj_pylite.Vm.jitlog vm)
            ~n:(Mtj_pylite.Vm.bundle_size bu);
          let seeded =
            match prof with
            | Some p ->
                Mtj_pylite.Vm.seed_profile vm p;
                true
            | None -> false
          in
          (true, seeded, false, Mtj_pylite.Vm.run_bundle vm bu)
      | Some _ | None ->
          let bu = Mtj_pylite.Vm.compile_bundle b.B.source in
          let pr =
            Sharedcache.publish cache ~ctx_uid:uid ~tenant key (Py_bundle bu)
          in
          (false, false, pr = Sharedcache.Published,
           Mtj_pylite.Vm.run_bundle vm bu)
  in
  let status = status_of outcome in
  (match outcome with
  | Mtj_rjit.Driver.Runtime_error _ when shared ->
      (* a tenant program that faults must not keep serving from the
         cache: drop the artifact so the next request recompiles *)
      Sharedcache.invalidate cache key
  | _ ->
      (* only the winning, unseeded (cold) run attaches its profile:
         its execution is a pure function of the key, so whichever
         racer wins, the attached profile is byte-identical *)
      if published && profile_seed then
        ignore
          (Sharedcache.attach_profile cache key
             (Mtj_pylite.Vm.export_profile vm)));
  let eng = Mtj_pylite.Vm.engine vm in
  let jl = Mtj_pylite.Vm.jitlog vm in
  let output = Mtj_pylite.Vm.output vm in
  ( warm,
    seeded,
    status,
    jl.Jitlog.shared_code_hits,
    jl.Jitlog.first_entry_insns,
    digest_of ~status ~insns:(Engine.total_insns eng)
      ~cycles:(Engine.total_cycles eng) ~output
      ~gc:(Mtj_rt.Gc_sim.stats (Ctx.gc (Mtj_pylite.Vm.rtc vm)))
      ~jl,
    out_digest_of ~status ~output )

let run_rk ~shared ~profile_seed ~cache ~config ~cfg_digest (req : request) =
  let b = B.find_exn ~lang:B.Rk req.req_bench in
  let vm = Mtj_rklite.Kvm.create ~config () in
  let key =
    Sharedcache.key ~lang:"rk" ~program:req.req_bench ~config_digest:cfg_digest
  in
  let tenant = "rk:" ^ req.req_bench in
  let uid = Ctx.uid (Mtj_rklite.Kvm.rtc vm) in
  let warm, seeded, published, outcome =
    if not shared then (false, false, false, Mtj_rklite.Kvm.run_source vm b.B.source)
    else
      let lookup () =
        if profile_seed then Sharedcache.find_with_profile cache ~ctx_uid:uid key
        else
          match Sharedcache.find cache ~ctx_uid:uid key with
          | Some e -> Some (e, None)
          | None -> None
      in
      match lookup () with
      | Some (Rk_bundle bu, prof) ->
          Mtj_rklite.Kvm.import_bundle vm bu;
          Jitlog.record_shared_code_hits (Mtj_rklite.Kvm.jitlog vm)
            ~n:(Mtj_rklite.Kvm.bundle_size bu);
          let seeded =
            match prof with
            | Some p ->
                Mtj_rklite.Kvm.seed_profile vm p;
                true
            | None -> false
          in
          (true, seeded, false, Mtj_rklite.Kvm.run_bundle vm bu)
      | Some _ | None ->
          let bu = Mtj_rklite.Kvm.compile_bundle b.B.source in
          let pr =
            Sharedcache.publish cache ~ctx_uid:uid ~tenant key (Rk_bundle bu)
          in
          (false, false, pr = Sharedcache.Published,
           Mtj_rklite.Kvm.run_bundle vm bu)
  in
  let status = status_of outcome in
  (match outcome with
  | Mtj_rjit.Driver.Runtime_error _ when shared ->
      Sharedcache.invalidate cache key
  | _ ->
      if published && profile_seed then
        ignore
          (Sharedcache.attach_profile cache key
             (Mtj_rklite.Kvm.export_profile vm)));
  let eng = Mtj_rklite.Kvm.engine vm in
  let jl = Mtj_rklite.Kvm.jitlog vm in
  let output = Mtj_rklite.Kvm.output vm in
  ( warm,
    seeded,
    status,
    jl.Jitlog.shared_code_hits,
    jl.Jitlog.first_entry_insns,
    digest_of ~status ~insns:(Engine.total_insns eng)
      ~cycles:(Engine.total_cycles eng) ~output
      ~gc:(Mtj_rt.Gc_sim.stats (Ctx.gc (Mtj_rklite.Kvm.rtc vm)))
      ~jl,
    out_digest_of ~status ~output )

let run_one ~shared ~profile_seed ~cache ~config ~cfg_digest (req : request) :
    record =
  let t0 = Unix.gettimeofday () in
  let warm, seeded, status, shared_hits, first_entry, digest, out_digest =
    match req.req_lang with
    | B.Py -> run_py ~shared ~profile_seed ~cache ~config ~cfg_digest req
    | B.Rk -> run_rk ~shared ~profile_seed ~cache ~config ~cfg_digest req
  in
  {
    r_id = req.req_id;
    r_bench = req.req_bench;
    r_lang = lang_name req.req_lang;
    r_status = status;
    r_warm = warm;
    r_seeded = seeded;
    r_wall_s = Unix.gettimeofday () -. t0;
    r_shared_code_hits = shared_hits;
    r_first_entry_insns = first_entry;
    r_digest = digest;
    r_out_digest = out_digest;
  }

(* --- the serving session --- *)

let serve ?jobs ?(budget = default_budget) ?(zipf_s = 1.1) ?(seed = 42)
    ?(shared = true) ?(profile_seed = true) ?(cache_capacity = 0)
    ?(tenant_quota = 0) ?(corpus = default_corpus) ?(corpus_size = 0)
    ~requests () : summary =
  let jobs = match jobs with Some j -> max 1 j | None -> Runner.jobs () in
  if corpus_size < 0 then invalid_arg "Serve.serve: corpus_size < 0";
  if corpus_size > List.length corpus then
    invalid_arg "Serve.serve: corpus_size exceeds the corpus";
  let corpus =
    if corpus_size = 0 then corpus
    else List.filteri (fun i _ -> i < corpus_size) corpus
  in
  (* each session owns its cache, so capacity and quota are session
     parameters and sessions never see each other's entries or stats *)
  let cache =
    Sharedcache.create ~capacity:cache_capacity ~tenant_quota ()
  in
  (* the serving config: the plain meta-tracing JIT under the session's
     threaded/frame-pool/tier-policy settings, per-request budget *)
  let config = Runner.config_of ~budget Runner.Pypy_jit in
  let cfg_digest = Digest.to_hex (Digest.string (Marshal.to_string config [])) in
  let reqs =
    Array.to_list (gen_requests ~corpus ~requests ~zipf_s ~seed)
  in
  let t0 = Unix.gettimeofday () in
  let records =
    Array.of_list
      (Pool.map ~jobs
         (run_one ~shared ~profile_seed ~cache ~config ~cfg_digest)
         reqs)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let lat_ms =
    Array.map (fun r -> r.r_wall_s *. 1000.0) records
  in
  let split warm =
    Array.of_list
      (List.filter_map
         (fun r -> if r.r_warm = warm then Some (r.r_wall_s *. 1000.0) else None)
         (Array.to_list records))
  in
  let cold_ms = split false and warm_ms = split true in
  let p a q = if Array.length a = 0 then 0.0 else Report.percentile a q in
  (* warmup comparison: mean simulated insns to first compiled-trace
     entry, seeded vs unseeded requests (requests that never entered a
     trace, first_entry_insns = -1, are excluded from both) *)
  let mean_first pred =
    let n = ref 0 and sum = ref 0 in
    Array.iter
      (fun r ->
        if pred r && r.r_first_entry_insns >= 0 then begin
          incr n;
          sum := !sum + r.r_first_entry_insns
        end)
      records;
    if !n = 0 then 0.0 else float_of_int !sum /. float_of_int !n
  in
  {
    sv_requests = requests;
    sv_jobs = jobs;
    sv_zipf_s = zipf_s;
    sv_seed = seed;
    sv_shared = shared;
    sv_profile_seed = profile_seed;
    sv_cache_capacity = cache_capacity;
    sv_tenant_quota = tenant_quota;
    sv_corpus_size = List.length corpus;
    sv_budget = budget;
    sv_wall_s = wall;
    sv_throughput = (if wall > 0.0 then float_of_int requests /. wall else 0.0);
    sv_p50_ms = p lat_ms 50.0;
    sv_p95_ms = p lat_ms 95.0;
    sv_p99_ms = p lat_ms 99.0;
    sv_cold = Array.length cold_ms;
    sv_warm = Array.length warm_ms;
    sv_seeded =
      Array.fold_left (fun n r -> if r.r_seeded then n + 1 else n) 0 records;
    sv_cold_p50_ms = p cold_ms 50.0;
    sv_warm_p50_ms = p warm_ms 50.0;
    sv_seeded_first_entry_mean = mean_first (fun r -> r.r_seeded);
    sv_unseeded_first_entry_mean = mean_first (fun r -> not r.r_seeded);
    sv_cache_entries = Sharedcache.size cache;
    sv_cache = Sharedcache.stats cache;
    sv_records = records;
  }

(* --- export --- *)

let summary_json (s : summary) : J.t =
  let c = s.sv_cache in
  J.Obj
    [
      ("requests", J.Int s.sv_requests);
      ("jobs", J.Int s.sv_jobs);
      ("zipf_s", J.Float s.sv_zipf_s);
      ("seed", J.Int s.sv_seed);
      ("shared_cache", J.Bool s.sv_shared);
      ("profile_seed", J.Bool s.sv_profile_seed);
      ("cache_capacity", J.Int s.sv_cache_capacity);
      ("tenant_quota", J.Int s.sv_tenant_quota);
      ("corpus_size", J.Int s.sv_corpus_size);
      ("budget", J.Int s.sv_budget);
      ("wall_s", J.Float s.sv_wall_s);
      ("throughput_rps", J.Float s.sv_throughput);
      ( "latency_ms",
        J.Obj
          [
            ("p50", J.Float s.sv_p50_ms);
            ("p95", J.Float s.sv_p95_ms);
            ("p99", J.Float s.sv_p99_ms);
          ] );
      ( "cold",
        J.Obj [ ("count", J.Int s.sv_cold); ("p50_ms", J.Float s.sv_cold_p50_ms) ]
      );
      ( "warm",
        J.Obj [ ("count", J.Int s.sv_warm); ("p50_ms", J.Float s.sv_warm_p50_ms) ]
      );
      ( "seeded",
        J.Obj
          [
            ("count", J.Int s.sv_seeded);
            ("first_entry_insns_mean", J.Float s.sv_seeded_first_entry_mean);
          ] );
      ( "unseeded_first_entry_insns_mean",
        J.Float s.sv_unseeded_first_entry_mean );
      ("cache_entries", J.Int s.sv_cache_entries);
      ( "shared_cache_stats",
        J.Obj
          [
            ("shared_hits", J.Int c.Sharedcache.shared_hits);
            ("local_hits", J.Int c.Sharedcache.local_hits);
            ("misses", J.Int c.Sharedcache.misses);
            ("publications", J.Int c.Sharedcache.publications);
            ("invalidations", J.Int c.Sharedcache.invalidations);
            ("evictions", J.Int c.Sharedcache.evictions);
            ("requeues", J.Int c.Sharedcache.requeues);
            ("quota_rejections", J.Int c.Sharedcache.quota_rejections);
            ("profile_publications", J.Int c.Sharedcache.profile_publications);
            ("seeded_imports", J.Int c.Sharedcache.seeded_imports);
            ("contention", J.Int c.Sharedcache.contention);
          ] );
    ]

let print_summary oc (s : summary) =
  let c = s.sv_cache in
  let failed =
    Array.fold_left
      (fun n r -> if String.length r.r_status >= 6 && String.sub r.r_status 0 6 = "failed" then n + 1 else n)
      0 s.sv_records
  in
  Printf.fprintf oc
    "serve: %d requests, %d jobs, zipf_s=%.2f seed=%d budget=%d \
     shared-cache=%s profile-seed=%s capacity=%s quota=%s corpus=%d\n"
    s.sv_requests s.sv_jobs s.sv_zipf_s s.sv_seed s.sv_budget
    (if s.sv_shared then "on" else "off")
    (if s.sv_profile_seed then "on" else "off")
    (if s.sv_cache_capacity = 0 then "unbounded"
     else string_of_int s.sv_cache_capacity)
    (if s.sv_tenant_quota = 0 then "unbounded"
     else string_of_int s.sv_tenant_quota)
    s.sv_corpus_size;
  Printf.fprintf oc "  wall %.3f s   throughput %.1f req/s   failed %d\n"
    s.sv_wall_s s.sv_throughput failed;
  Printf.fprintf oc "  latency ms: p50 %.3f  p95 %.3f  p99 %.3f\n" s.sv_p50_ms
    s.sv_p95_ms s.sv_p99_ms;
  Printf.fprintf oc "  cold %d (p50 %.3f ms)   warm %d (p50 %.3f ms)\n"
    s.sv_cold s.sv_cold_p50_ms s.sv_warm s.sv_warm_p50_ms;
  Printf.fprintf oc
    "  warmup: %d seeded requests, first-trace-entry insns %.0f seeded vs \
     %.0f unseeded\n"
    s.sv_seeded s.sv_seeded_first_entry_mean s.sv_unseeded_first_entry_mean;
  Printf.fprintf oc
    "  shared cache: hits %d shared / %d local, misses %d, published %d, \
     invalidated %d, contention %d\n"
    c.Sharedcache.shared_hits c.Sharedcache.local_hits c.Sharedcache.misses
    c.Sharedcache.publications c.Sharedcache.invalidations
    c.Sharedcache.contention;
  Printf.fprintf oc
    "  bounded cache: %d live entries, evicted %d, requeued %d, \
     quota-rejected %d, profiles %d, seeded imports %d\n"
    s.sv_cache_entries c.Sharedcache.evictions c.Sharedcache.requeues
    c.Sharedcache.quota_rejections c.Sharedcache.profile_publications
    c.Sharedcache.seeded_imports
