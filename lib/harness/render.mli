(** ASCII rendering helpers for the tables and figures. *)

val pr : ('a, out_channel, unit) format -> 'a
(** [Printf.printf]. *)

val heading : string -> unit
val subheading : string -> unit

val table : header:string list -> rows:string list list -> unit
(** Column-aligned table with a rule under the header. *)

val f1 : float -> string
(** one decimal place *)

val f2 : float -> string
(** two decimal places *)

val phase_letter : Mtj_core.Phase.t -> char
(** Letter codes for the stacked bars (I/T/J/C/G/B/N). *)

val phase_legend : string

val stacked_bar : ?width:int -> (Mtj_core.Phase.t * float) list -> string
(** A stacked horizontal bar: each (phase, fraction) gets proportional
    width, rendered with the phase's letter. *)

val sparkline : ?vmax:float -> float array -> string
(** Density sparkline over [\[0, vmax\]] (default: the data maximum). *)

val simple_bar : ?width:int -> float -> string
(** A plain [#] bar for a fraction in [\[0, 1\]]. *)

val mean_std : float list -> float * float
(** Population mean and standard deviation; [(0, 0)] on the empty
    list. *)
