(** Multi-tenant serving harness: streams thousands of short VM
    requests onto a fixed worker-domain pool ({!Pool}), modelling a
    long-lived server that executes many small, mutually-untrusting
    tenant programs.

    Each request gets a fresh, fully-isolated VM context
    ({!Mtj_rt.Ctx}); what is shared across requests is a per-session,
    domain-safe cache of compiled-program bundles
    ({!Mtj_rjit.Sharedcache}), translated once per (language, program,
    configuration) and imported by every later request for the same
    program ("warm") instead of recompiled ("cold").

    Two independent axes extend the cache (DESIGN.md §3m):

    - {e Trace-profile seeding}: the cold request that publishes a
      bundle also attaches, after its run, the trace profile it learned
      (hot loop sites with tier decisions, threaded-translated code
      refs).  Warm requests seed their fresh driver from it, so hot
      loops reach the JIT on their first header visit instead of after
      the full tracing threshold.  Seeding changes {e when} the
      simulated machine traces, never what the program computes:
      [r_out_digest] is byte-identical across every mode, while the
      full [r_digest] is pinned per profile-seed setting.

    - {e Bounded capacity}: [cache_capacity] bounds the total entry
      count with per-shard LRU eviction, and [tenant_quota] bounds any
      one tenant's live publications — the knobs the cache-capacity
      sweep experiment characterizes under the Zipf stream. *)

type request = {
  req_id : int;                       (** position in the stream *)
  req_lang : Mtj_benchmarks.Registry.lang;
  req_bench : string;                 (** registry benchmark name *)
}

(** Per-request outcome.  [r_digest] covers only simulated state
    (status, instruction/cycle totals, GC and JIT counters, program
    output) — never the warm flag, latency, or shared-cache counters,
    which legitimately vary with mode, jobs and scheduling.  It is
    invariant in job count and cache mode at a fixed profile-seed
    setting; [r_out_digest] (status and program output only) is
    invariant across everything. *)
type record = {
  r_id : int;
  r_bench : string;
  r_lang : string;      (** ["py"] or ["rk"] *)
  r_status : string;    (** ["ok"], ["budget"] or ["failed:<msg>"] *)
  r_warm : bool;        (** served from the shared cache *)
  r_seeded : bool;      (** warm AND the driver was profile-seeded *)
  r_wall_s : float;     (** host wall time of this request *)
  r_shared_code_hits : int;
      (** code objects imported from the shared cache (0 when cold) *)
  r_first_entry_insns : int;
      (** simulated insns at the first compiled-trace entry, [-1] if no
          trace ran — the per-request warmup metric seeding improves *)
  r_digest : string;    (** MD5 over the simulated-state rendering *)
  r_out_digest : string;  (** MD5 over status and program output only *)
}

type summary = {
  sv_requests : int;
  sv_jobs : int;
  sv_zipf_s : float;
  sv_seed : int;
  sv_shared : bool;
  sv_profile_seed : bool;
  sv_cache_capacity : int;    (** 0 = unbounded *)
  sv_tenant_quota : int;      (** 0 = unbounded *)
  sv_corpus_size : int;       (** programs actually drawn from *)
  sv_budget : int;
  sv_wall_s : float;          (** whole-stream host wall *)
  sv_throughput : float;      (** requests per host second *)
  sv_p50_ms : float;          (** per-request latency percentiles *)
  sv_p95_ms : float;
  sv_p99_ms : float;
  sv_cold : int;              (** requests that compiled *)
  sv_warm : int;              (** requests served from the cache *)
  sv_seeded : int;            (** warm requests that imported a profile *)
  sv_cold_p50_ms : float;
  sv_warm_p50_ms : float;     (** 0.0 when no warm requests *)
  sv_seeded_first_entry_mean : float;
      (** mean [r_first_entry_insns] over seeded requests that entered
          a trace; 0.0 when none *)
  sv_unseeded_first_entry_mean : float;
      (** same over unseeded (cold or profile-less) requests *)
  sv_cache_entries : int;     (** live entries at session end *)
  sv_cache : Mtj_rjit.Sharedcache.stats;
  sv_records : record array;  (** in request order *)
}

val default_budget : int
(** Per-request instruction budget.  Small by design: serving requests
    are short, which is exactly the regime where compilation wall time
    is a large fraction of the request and a shared code cache pays. *)

val default_corpus : (Mtj_benchmarks.Registry.lang * string) list
(** The tenant program mix, ordered most-popular first (Zipf rank 1
    first).  Compile-heavy programs lead, mixed pylite/rklite. *)

val gen_requests :
  corpus:(Mtj_benchmarks.Registry.lang * string) list ->
  requests:int ->
  zipf_s:float ->
  seed:int ->
  request array
(** The whole request stream, generated up front: request [i] draws its
    program from [corpus] Zipf-distributed with exponent [zipf_s]
    (weight of rank r is 1/r^s) using a splitmix64 stream seeded with
    [seed].  Pure and deterministic: same arguments, same stream, on
    any platform.  Raises [Invalid_argument] on [requests <= 0], an
    empty corpus, or [zipf_s <= 0]. *)

val serve :
  ?jobs:int ->
  ?budget:int ->
  ?zipf_s:float ->
  ?seed:int ->
  ?shared:bool ->
  ?profile_seed:bool ->
  ?cache_capacity:int ->
  ?tenant_quota:int ->
  ?corpus:(Mtj_benchmarks.Registry.lang * string) list ->
  ?corpus_size:int ->
  requests:int ->
  unit ->
  summary
(** Run a serving session: generate the stream, execute it on a pool of
    [jobs] worker domains (default {!Runner.jobs}), and aggregate.
    [shared] (default [true]) turns the cross-context code cache on or
    off; [profile_seed] (default [true]) turns trace-profile
    publication and seeding on or off; [cache_capacity] and
    [tenant_quota] (default 0 = unbounded) bound the session cache;
    [corpus_size] (default 0 = all) truncates [corpus] to its first n
    entries, raising [Invalid_argument] when negative or larger than
    the corpus.  Each session builds its own {!Mtj_rjit.Sharedcache},
    so capacities and statistics never leak across sessions.

    Program outputs ([r_out_digest], [r_status]) are deterministic in
    (corpus, requests, zipf_s, seed, budget) alone — any mode, any
    [-j].  Full simulated digests ([r_digest]) are additionally
    deterministic per profile-seed setting at [jobs = 1] (the pool
    executes in stream order); at [jobs > 1] with seeding on, {e which}
    requests find a profile depends on scheduling, so only seed-off
    digests are jobs-invariant.  Wall times, warm/cold splits and cache
    statistics are host-side measurements. *)

val summary_json : summary -> Mtj_obs.Json.t
(** The ["serve"] block of an ["mtj-metrics/9"] document (see
    OBS_SCHEMA.md and {!Mtj_obs.Validate}). *)

val print_summary : out_channel -> summary -> unit
(** Human-readable session report (latency percentiles, throughput,
    warm/cold split, warmup comparison, shared-cache counters). *)
