(** Multi-tenant serving harness: streams thousands of short VM
    requests onto a fixed worker-domain pool ({!Pool}), modelling a
    long-lived server that executes many small, mutually-untrusting
    tenant programs.

    Each request gets a fresh, fully-isolated VM context
    ({!Mtj_rt.Ctx}); what is shared across requests is a process-wide,
    domain-safe cache of compiled-program bundles
    ({!Mtj_rjit.Sharedcache}), translated once per (language, program,
    configuration) and imported by every later request for the same
    program ("warm") instead of recompiled ("cold").

    The shared cache is a host-wall optimization only: compilation
    charges nothing to the simulated machine, so a request's simulated
    counters and output are byte-identical warm or cold, at any [-j],
    with the cache on or off — which is what {!digest} captures and the
    differential tests pin. *)

type request = {
  req_id : int;                       (** position in the stream *)
  req_lang : Mtj_benchmarks.Registry.lang;
  req_bench : string;                 (** registry benchmark name *)
}

(** Per-request outcome.  [r_digest] covers only simulated state
    (status, instruction/cycle totals, GC and JIT counters, program
    output) — never the warm flag, latency, or shared-cache counters,
    which legitimately vary with mode, jobs and scheduling. *)
type record = {
  r_id : int;
  r_bench : string;
  r_lang : string;      (** ["py"] or ["rk"] *)
  r_status : string;    (** ["ok"], ["budget"] or ["failed:<msg>"] *)
  r_warm : bool;        (** served from the shared cache *)
  r_wall_s : float;     (** host wall time of this request *)
  r_shared_code_hits : int;
      (** code objects imported from the shared cache (0 when cold) *)
  r_digest : string;    (** MD5 over the simulated-state rendering *)
}

type summary = {
  sv_requests : int;
  sv_jobs : int;
  sv_zipf_s : float;
  sv_seed : int;
  sv_shared : bool;
  sv_budget : int;
  sv_wall_s : float;          (** whole-stream host wall *)
  sv_throughput : float;      (** requests per host second *)
  sv_p50_ms : float;          (** per-request latency percentiles *)
  sv_p95_ms : float;
  sv_p99_ms : float;
  sv_cold : int;              (** requests that compiled *)
  sv_warm : int;              (** requests served from the cache *)
  sv_cold_p50_ms : float;
  sv_warm_p50_ms : float;     (** 0.0 when no warm requests *)
  sv_cache : Mtj_rjit.Sharedcache.stats;
  sv_records : record array;  (** in request order *)
}

val default_budget : int
(** Per-request instruction budget.  Small by design: serving requests
    are short, which is exactly the regime where compilation wall time
    is a large fraction of the request and a shared code cache pays. *)

val default_corpus : (Mtj_benchmarks.Registry.lang * string) list
(** The tenant program mix, ordered most-popular first (Zipf rank 1
    first).  Compile-heavy programs lead, mixed pylite/rklite. *)

val gen_requests :
  corpus:(Mtj_benchmarks.Registry.lang * string) list ->
  requests:int ->
  zipf_s:float ->
  seed:int ->
  request array
(** The whole request stream, generated up front: request [i] draws its
    program from [corpus] Zipf-distributed with exponent [zipf_s]
    (weight of rank r is 1/r^s) using a splitmix64 stream seeded with
    [seed].  Pure and deterministic: same arguments, same stream, on
    any platform. *)

val serve :
  ?jobs:int ->
  ?budget:int ->
  ?zipf_s:float ->
  ?seed:int ->
  ?shared:bool ->
  ?corpus:(Mtj_benchmarks.Registry.lang * string) list ->
  requests:int ->
  unit ->
  summary
(** Run a serving session: generate the stream, execute it on a pool of
    [jobs] worker domains (default {!Runner.jobs}), and aggregate.
    [shared] (default [true]) turns the cross-context code cache on or
    off; the global cache and its statistics are reset at session
    start.  Simulated per-request state ([r_digest], [r_status]) is
    deterministic in (corpus, requests, zipf_s, seed, budget) alone;
    wall times, warm/cold splits and cache statistics are host-side
    measurements and may vary run to run at [jobs > 1]. *)

val summary_json : summary -> Mtj_obs.Json.t
(** The ["serve"] block of an ["mtj-metrics/8"] document (see
    OBS_SCHEMA.md and {!Mtj_obs.Validate}). *)

val print_summary : out_channel -> summary -> unit
(** Human-readable session report (latency percentiles, throughput,
    warm/cold split, shared-cache counters). *)
