(** Fixed-size worker pool over raw OCaml 5 domains.

    Built from [Domain] + [Mutex]/[Condition] only (no dependency on a
    scheduler library).  Jobs are closures submitted to a shared queue;
    each returns its value through a future, and an exception raised by
    a job is captured with its backtrace and re-raised at {!await} time
    in the submitting domain.

    Spawning a pool calls [Mtj_rt.Aot.freeze]: all global registration
    in the runtime happens at module-initialization time, and freezing
    the registry before the first worker exists is what makes its
    lock-free concurrent reads sound (see DESIGN.md, "Domain-safety
    audit"). *)

type t

type 'a future

val default_jobs : unit -> int
(** [MTJ_JOBS] if set and valid, else the hardware's recommendation. *)

val create : jobs:int -> t
(** Spawn [max 1 jobs] worker domains. *)

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job.  Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the job finishes; re-raises its exception (with the
    original backtrace) if it failed. *)

val shutdown : t -> unit
(** Close the queue, let queued jobs drain, and join every worker.
    Idempotent: later calls (even concurrent ones) are no-ops. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] applies [f] on a temporary pool of [jobs] workers
    and returns the results in list order.  All jobs run to completion
    even if some fail; the first failure (in list order) is then
    re-raised with its original backtrace.  With one job (or one
    element) it degrades to [List.map] on the calling domain. *)

val iter : jobs:int -> ('a -> unit) -> 'a list -> unit
