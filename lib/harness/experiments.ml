(** The paper's evaluation, experiment by experiment.

    Each function regenerates one table or figure of Ilbeyi et al.
    (IISWC 2017) from live runs on the simulated machine.  Absolute
    numbers are in simulated megacycles, not seconds; the claims under
    test are the {e shapes}: orderings, ratios, crossovers, and the
    per-phase microarchitectural contrasts. *)

open Mtj_core
module R = Runner
module B = Mtj_benchmarks.Registry
module Counters = Mtj_machine.Counters

let pr = Render.pr

(* PyPy-suite benchmarks, in registry order *)
let suite_names () = List.map (fun b -> b.B.name) B.pypy_suite

(* CLBG benchmarks present in a given language *)
let clbg_py_names () = List.map (fun b -> b.B.name) B.clbg_py
let clbg_rk_names () = List.map (fun b -> b.B.name) B.clbg_rk

let clbg_common () =
  List.filter (fun n -> List.mem n (clbg_rk_names ())) (clbg_py_names ())

(* sort by PyPy-with-JIT speedup over CPython, descending (the paper's
   row order for Table I and Figures 2/5/6/7) *)
let suite_by_speedup () =
  suite_names ()
  |> List.map (fun n ->
         let c = R.run n R.Cpython and j = R.run n R.Pypy_jit in
         (n, R.speedup ~baseline:c j))
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.map fst

let status_mark (r : R.result) =
  match r.R.status with
  | R.Ok_run -> ""
  | R.Hit_budget -> "*"
  | R.Failed e -> "!" ^ e

(* ---------------- Table I ---------------- *)

let table1 () =
  Render.heading
    "TABLE I: PyPy Benchmark Suite Performance (simulated Mcycles)";
  pr "vC = speedup vs CPython; IPC = instructions/cycle; M = branch MPKI\n";
  pr "(* = stopped at the instruction budget)\n\n";
  let rows =
    List.map
      (fun name ->
        let c = R.run name R.Cpython in
        let nj = R.run name R.Pypy_nojit in
        let j = R.run name R.Pypy_jit in
        [
          name;
          Render.f1 (R.mcycles c) ^ status_mark c;
          Render.f2 (R.ipc c);
          Render.f1 (R.mpki c);
          Render.f1 (R.mcycles nj) ^ status_mark nj;
          Render.f2 (R.speedup ~baseline:c nj);
          Render.f2 (R.ipc nj);
          Render.f1 (R.mpki nj);
          Render.f1 (R.mcycles j) ^ status_mark j;
          Render.f2 (R.speedup ~baseline:c j);
          Render.f2 (R.ipc j);
          Render.f1 (R.mpki j);
        ])
      (suite_by_speedup ())
  in
  Render.table
    ~header:
      [ "benchmark"; "Cpy-t"; "IPC"; "M"; "noJIT-t"; "vC"; "IPC"; "M";
        "JIT-t"; "vC"; "IPC"; "M" ]
    ~rows

(* ---------------- Table II ---------------- *)

let table2 () =
  Render.heading "TABLE II: CLBG Performance (simulated Mcycles)";
  pr "xC = slowdown relative to the statically-compiled C kernel\n\n";
  let native_names =
    List.map (fun k -> k.Mtj_baselines.Native.kname) Mtj_baselines.Native.kernels
  in
  let rows =
    List.map
      (fun name ->
        let cell config =
          R.run name config |> fun r ->
          Render.f1 (R.mcycles r) ^ status_mark r
        in
        let nat =
          if List.mem name native_names then Some (R.run name R.Native_c)
          else None
        in
        let vs_c r =
          match nat with
          | Some n when n.R.cycles > 0.0 ->
              Printf.sprintf "%.1fx" (r.R.cycles /. n.R.cycles)
          | _ -> "-"
        in
        let has_rk = List.mem name (clbg_rk_names ()) in
        [
          name;
          (match nat with Some n -> Render.f1 (R.mcycles n) | None -> "-");
          cell R.Cpython;
          vs_c (R.run name R.Cpython);
          cell R.Pypy_jit;
          vs_c (R.run name R.Pypy_jit);
          (if has_rk then cell R.Racket else "-");
          (if has_rk then vs_c (R.run name R.Racket) else "-");
          (if has_rk then cell R.Pycket_jit else "-");
          (if has_rk then vs_c (R.run name R.Pycket_jit) else "-");
        ])
      (clbg_py_names ())
  in
  Render.table
    ~header:
      [ "benchmark"; "C"; "CPython"; "xC"; "PyPy"; "xC"; "Racket"; "xC";
        "Pycket"; "xC" ]
    ~rows

(* ---------------- Table III ---------------- *)

let table3 () =
  Render.heading
    "TABLE III: Significant AOT-Compiled Functions Called from Meta-Traces";
  pr "functions with >=%d%% of total execution; src: R=RPython intrinsics,\n" 8;
  pr "L=RPython stdlib, C=external C, I=interpreter, M=module\n\n";
  let rows = ref [] in
  List.iter
    (fun name ->
      let r = R.run name R.Pypy_jit in
      let total = max 1 r.R.insns in
      List.iter
        (fun (src, fname, insns) ->
          let pct = 100.0 *. float_of_int insns /. float_of_int total in
          if pct >= 8.0 then
            rows := [ name; Render.f1 pct; src; fname ] :: !rows)
        r.R.aot_top)
    (suite_by_speedup ());
  Render.table ~header:[ "benchmark"; "%"; "src"; "function" ]
    ~rows:(List.rev !rows)

(* ---------------- Table IV ---------------- *)

let table4 () =
  Render.heading
    "TABLE IV: Microarchitectural Statistics by Phase (mean +/- std)";
  pr "across the PyPy suite under the meta-tracing JIT; phases with\n";
  pr "fewer than 50k instructions in a run are excluded from that mean\n\n";
  let interesting =
    [ Phase.Interpreter; Phase.Tracing; Phase.Jit; Phase.Jit_call;
      Phase.Gc_minor; Phase.Blackhole ]
  in
  let per_phase =
    List.map
      (fun p ->
        let snaps =
          List.filter_map
            (fun name ->
              let r = R.run name R.Pypy_jit in
              let s = List.assoc p r.R.per_phase in
              if s.Counters.insns > 50_000 then Some s else None)
            (suite_names ())
        in
        (p, snaps))
      interesting
  in
  let rows =
    List.map
      (fun (p, snaps) ->
        let stat f = Render.mean_std (List.map f snaps) in
        let ipc_m, ipc_s = stat Counters.ipc in
        let bpi_m, bpi_s = stat Counters.branch_per_insn in
        let mr_m, mr_s = stat Counters.branch_miss_rate in
        [
          Phase.name p;
          string_of_int (List.length snaps);
          Printf.sprintf "%.2f +/- %.2f" ipc_m ipc_s;
          Printf.sprintf "%.3f +/- %.3f" bpi_m bpi_s;
          Printf.sprintf "%.3f +/- %.3f" mr_m mr_s;
        ])
      per_phase
  in
  Render.table
    ~header:[ "phase"; "n"; "IPC"; "branches/insn"; "miss rate" ]
    ~rows

(* ---------------- Figure 2 ---------------- *)

let phase_parts (r : R.result) =
  List.filter_map
    (fun (p, n) ->
      let total =
        List.fold_left (fun acc (_, m) -> acc + m) 0 r.R.phase_insns
      in
      if n = 0 || total = 0 then None
      else Some (p, float_of_int n /. float_of_int total))
    r.R.phase_insns

let fig2 () =
  Render.heading
    "FIGURE 2: Time Spent in Each Phase (PyPy suite, JIT enabled)";
  pr "%s\n\n" Render.phase_legend;
  List.iter
    (fun name ->
      let r = R.run name R.Pypy_jit in
      let parts = phase_parts r in
      pr "%-20s |%s|" name (Render.stacked_bar parts);
      List.iter
        (fun (p, f) ->
          if f >= 0.005 then pr " %c=%.0f%%" (Render.phase_letter p) (100. *. f))
        parts;
      pr "\n")
    (suite_by_speedup ())

(* ---------------- Figure 3 ---------------- *)

let fig3 () =
  Render.heading
    "FIGURE 3: Phase Timeline During Warmup (best vs worst benchmark)";
  pr "each column is one instruction-count bucket; letter = dominant phase\n";
  pr "%s\n" Render.phase_legend;
  let names = suite_by_speedup () in
  let best = List.hd names in
  let worst = List.nth names (List.length names - 1) in
  List.iter
    (fun name ->
      let r = R.run name R.Pypy_jit in
      Render.subheading
        (Printf.sprintf "%s (bucket = %dk instructions)" name
           (r.R.timeline_bucket / 1000));
      let cols = Array.length r.R.timeline in
      let step = max 1 (cols / 100) in
      let line = Buffer.create 100 in
      let i = ref 0 in
      while !i < cols do
        let bucket = r.R.timeline.(!i) in
        let dominant =
          Array.fold_left
            (fun (bp, bf) (p, f) -> if f > bf then (p, f) else (bp, bf))
            (Phase.Interpreter, 0.0) bucket
        in
        Buffer.add_char line (Render.phase_letter (fst dominant));
        i := !i + step
      done;
      pr "%s\n" (Buffer.contents line);
      (* GC before/after JIT warmup, the Fig. 3 observation *)
      let halves =
        let mid = cols / 2 in
        let frac lo hi p =
          let num = ref 0.0 and den = ref 0.0 in
          for k = lo to hi - 1 do
            Array.iter
              (fun (q, f) ->
                if q = p then num := !num +. f;
                ignore f)
              r.R.timeline.(k);
            den := !den +. 1.0
          done;
          if !den = 0.0 then 0.0 else !num /. !den
        in
        ( frac 0 mid Phase.Gc_minor +. frac 0 mid Phase.Gc_major,
          frac mid cols Phase.Gc_minor +. frac mid cols Phase.Gc_major )
      in
      pr "gc share: first half %.1f%%, second half %.1f%%\n"
        (100. *. fst halves) (100. *. snd halves))
    [ best; worst ]

(* ---------------- Figure 4 ---------------- *)

let fig4 () =
  Render.heading
    "FIGURE 4: Phase Breakdown, PyPy vs Pycket on CLBG benchmarks";
  pr "%s\n\n" Render.phase_legend;
  List.iter
    (fun name ->
      let py = R.run name R.Pypy_jit in
      let rk = R.run name R.Pycket_jit in
      pr "%-16s pypy   |%s|\n" name (Render.stacked_bar (phase_parts py));
      pr "%-16s pycket |%s|\n" "" (Render.stacked_bar (phase_parts rk)))
    (clbg_common ())

(* ---------------- Figure 5 ---------------- *)

(* bytecode rate of [r] normalized to CPython at the same instruction
   count, sampled over the run *)
let warmup_curve (r : R.result) (cpython : R.result) npoints =
  let span = min r.R.insns cpython.R.insns in
  Array.init npoints (fun i ->
      let x = span * (i + 1) / npoints in
      let window = max 1 (span / npoints) in
      let rate run =
        let sampler_ticks_at insns =
          (* interpolate over the recorded samples *)
          let s = run.R.samples in
          let n = Array.length s in
          if n = 0 then 0
          else begin
            let rec find i =
              if i >= n then snd s.(n - 1)
              else if fst s.(i) >= insns then
                if i = 0 then
                  if fst s.(0) = 0 then snd s.(0)
                  else insns * snd s.(0) / fst s.(0)
                else
                  let x0, y0 = s.(i - 1) and x1, y1 = s.(i) in
                  if x1 = x0 then y0
                  else y0 + ((insns - x0) * (y1 - y0) / (x1 - x0))
              else find (i + 1)
            in
            find 0
          end
        in
        float_of_int (sampler_ticks_at x - sampler_ticks_at (x - window))
      in
      let c = rate cpython in
      if c <= 0.0 then 0.0 else rate r /. c)

let break_even (fast : R.result) (slow : R.result) =
  (* first instruction count where fast's cumulative ticks catch up *)
  let ticks_at (run : R.result) insns =
    let s = run.R.samples in
    let n = Array.length s in
    let rec find i =
      if i >= n then (if n = 0 then 0 else snd s.(n - 1))
      else if fst s.(i) >= insns then
        if i = 0 then snd s.(0)
        else
          let x0, y0 = s.(i - 1) and x1, y1 = s.(i) in
          if x1 = x0 then y0 else y0 + ((insns - x0) * (y1 - y0) / (x1 - x0))
      else find (i + 1)
    in
    find 0
  in
  let span = min fast.R.insns slow.R.insns in
  let rec scan x =
    if x > span then None
    else if ticks_at fast x >= ticks_at slow x && ticks_at fast x > 0 then
      Some x
    else scan (x + max 1 (span / 200))
  in
  scan (max 1 (span / 200))

let fig5 () =
  Render.heading
    "FIGURE 5: PyPy Warmup - bytecode rate normalized to CPython";
  pr "sparkline: execution-rate ratio over the run (peak in brackets);\n";
  pr "BE-C / BE-noJIT: break-even instruction counts (work caught up)\n\n";
  List.iter
    (fun name ->
      let c = R.run name R.Cpython in
      let nj = R.run name R.Pypy_nojit in
      let j = R.run name R.Pypy_jit in
      let curve = warmup_curve j c 60 in
      let peak = Array.fold_left Float.max 0.0 curve in
      let be_c = break_even j c in
      let be_nj = break_even j nj in
      let fmt_be = function
        | Some x -> Printf.sprintf "%.1fM" (float_of_int x /. 1e6)
        | None -> "never"
      in
      pr "%-20s [x%4.1f] %s  BE-C=%s BE-noJIT=%s\n" name peak
        (Render.sparkline curve) (fmt_be be_c) (fmt_be be_nj))
    (suite_by_speedup ())

(* ---------------- Figure 6 ---------------- *)

let fig6 () =
  Render.heading "FIGURE 6: JIT IR Node Compilation and Execution";
  let rows =
    List.map
      (fun name ->
        let r = R.run name R.Pypy_jit in
        match r.R.jit with
        | None -> [ name; "-"; "-"; "-" ]
        | Some j ->
            [
              name;
              string_of_int j.R.ir_compiled;
              Render.f1 j.R.hot_fraction_95;
              string_of_int
                (if r.R.insns = 0 then 0
                 else j.R.ir_dynamic / max 1 (r.R.insns / 1_000_000));
            ])
      (suite_by_speedup ())
  in
  Render.table
    ~header:
      [ "benchmark"; "(a) IR compiled"; "(b) hot-95% (%)";
        "(c) IR-exec / Minsn" ]
    ~rows

(* ---------------- Figure 7 ---------------- *)

let fig7 () =
  Render.heading
    "FIGURE 7: Meta-Trace Composition by IR Category (dynamic, %)";
  let cats = Mtj_rjit.Ir.all_cats in
  let header =
    "benchmark" :: List.map Mtj_rjit.Ir.cat_name cats
  in
  let rows =
    List.filter_map
      (fun name ->
        let r = R.run name R.Pypy_jit in
        match r.R.jit with
        | None -> None
        | Some j ->
            let total =
              List.fold_left (fun acc (_, n) -> acc + n) 0 j.R.by_category
            in
            if total = 0 then None
            else
              Some
                (name
                :: List.map
                     (fun c ->
                       let n =
                         Option.value ~default:0 (List.assoc_opt c j.R.by_category)
                       in
                       Render.f1 (100.0 *. float_of_int n /. float_of_int total))
                     cats))
      (suite_by_speedup ())
  in
  (* aggregate row *)
  let totals = Hashtbl.create 16 in
  List.iter
    (fun name ->
      let r = R.run name R.Pypy_jit in
      match r.R.jit with
      | None -> ()
      | Some j ->
          List.iter
            (fun (c, n) ->
              Hashtbl.replace totals c
                (n + Option.value ~default:0 (Hashtbl.find_opt totals c)))
            j.R.by_category)
    (suite_names ());
  let grand =
    Hashtbl.fold (fun _ n acc -> acc + n) totals 0
  in
  let agg_row =
    "ALL"
    :: List.map
         (fun c ->
           let n = Option.value ~default:0 (Hashtbl.find_opt totals c) in
           Render.f1 (100.0 *. float_of_int n /. float_of_int (max 1 grand)))
         cats
  in
  Render.table ~header ~rows:(rows @ [ agg_row ])

(* ---------------- Figure 8 ---------------- *)

let aggregate_node_types () =
  let totals : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun name ->
      let r = R.run name R.Pypy_jit in
      match r.R.jit with
      | None -> ()
      | Some j ->
          List.iter
            (fun (ty, n) ->
              Hashtbl.replace totals ty
                (n + Option.value ~default:0 (Hashtbl.find_opt totals ty)))
            j.R.by_node_type)
    (suite_names ());
  Hashtbl.fold (fun ty n acc -> (ty, n) :: acc) totals []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let fig8 () =
  Render.heading
    "FIGURE 8: Dynamic Frequency of IR Node Types (PyPy suite aggregate)";
  let types = aggregate_node_types () in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 types in
  let cum = ref 0.0 in
  let rows =
    List.filteri (fun i _ -> i < 30) types
    |> List.map (fun (ty, n) ->
           let pct = 100.0 *. float_of_int n /. float_of_int (max 1 total) in
           cum := !cum +. pct;
           [ ty; Render.f1 pct; Render.f1 !cum;
             Render.simple_bar ~width:30 (pct /. 30.0) ])
  in
  Render.table ~header:[ "IR node type"; "%"; "cum%"; "" ] ~rows;
  pr "\n%d distinct node types; the tail below 1%% covers %d of them\n"
    (List.length types)
    (List.length (List.filter (fun (_, n) ->
         100.0 *. float_of_int n /. float_of_int (max 1 total) < 1.0) types))

(* ---------------- Figure 9 ---------------- *)

let fig9 () =
  Render.heading
    "FIGURE 9: x86 Instructions per IR Node Type (dynamically weighted)";
  (* merge per-run means weighted by per-run execution counts *)
  let acc : (string, float * float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun name ->
      let r = R.run name R.Pypy_jit in
      match r.R.jit with
      | None -> ()
      | Some j ->
          List.iter
            (fun (ty, mean) ->
              let execs =
                float_of_int
                  (Option.value ~default:0 (List.assoc_opt ty j.R.by_node_type))
              in
              let w, s = Option.value ~default:(0.0, 0.0) (Hashtbl.find_opt acc ty) in
              Hashtbl.replace acc ty (w +. execs, s +. (mean *. execs)))
            j.R.x86_per_type)
    (suite_names ());
  let rows =
    Hashtbl.fold
      (fun ty (w, s) out ->
        if w > 0.0 then (ty, s /. w) :: out else out)
      acc []
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
    |> List.map (fun (ty, mean) ->
           [ ty; Render.f1 mean; Render.simple_bar ~width:34 (mean /. 34.0) ])
  in
  Render.table ~header:[ "IR node type"; "x86 insns"; "" ] ~rows

(* ---------------- summary of JIT machinery activity ---------------- *)

let jit_activity () =
  Render.heading "JIT machinery activity (PyPy suite)";
  let rows =
    List.map
      (fun name ->
        let r = R.run name R.Pypy_jit in
        match r.R.jit with
        | None -> [ name ]
        | Some j ->
            [
              name;
              string_of_int j.R.traces;
              string_of_int j.R.bridges;
              string_of_int j.R.deopts;
              string_of_int j.R.aborts;
              string_of_int j.R.blacklisted;
              string_of_int r.R.gc.Mtj_rt.Gc_sim.minor_collections;
              string_of_int r.R.gc.Mtj_rt.Gc_sim.major_collections;
            ])
      (suite_by_speedup ())
  in
  Render.table
    ~header:
      [ "benchmark"; "traces"; "bridges"; "deopts"; "aborts"; "blacklist";
        "gc-"; "gc+" ]
    ~rows

(* ---------------- ablation of optimizer passes ---------------- *)

let ablation_benches = [ "richards"; "raytrace_simple"; "crypto_pyaes"; "django" ]

let ablation_variants =
  [
    ("full", fun (c : Config.t) -> c);
    ("-fold", fun c -> { c with Config.opt_fold = false });
    ("-guards", fun c -> { c with Config.opt_guard_elim = false });
    ("-forward", fun c -> { c with Config.opt_forward = false });
    ("-virtuals", fun c -> { c with Config.opt_virtuals = false });
    ("-peel", fun c -> { c with Config.opt_peel = false });
    ( "none",
      fun c ->
        {
          c with
          Config.opt_fold = false;
          opt_guard_elim = false;
          opt_forward = false;
          opt_virtuals = false;
        } );
  ]

(* one self-contained VM run with a tweaked config; used by the custom
   sweeps below, outside the (bench, vm_config) memo cache *)
let py_cycles_of name tweak =
  let config = tweak (Config.with_budget R.default_budget Config.default) in
  let b = B.find_exn ~lang:B.Py name in
  let vm = Mtj_pylite.Vm.create ~config () in
  match Mtj_pylite.Vm.run_source vm b.B.source with
  | _ -> Mtj_machine.Engine.total_cycles (Mtj_pylite.Vm.engine vm)

(* split [xs] into consecutive chunks of [n] *)
let rec chunks n xs =
  match xs with
  | [] -> []
  | _ ->
      let rec take k acc = function
        | rest when k = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (k - 1) (x :: acc) rest
      in
      let chunk, rest = take n [] xs in
      chunk :: chunks n rest

let ablation () =
  Render.heading
    "ABLATION: optimizer passes (JIT cycles, normalized to full optimizer)";
  pr "passes: fold=constant folding, guards=guard elimination,\n";
  pr "forward=heap forwarding, virtuals=escape analysis, peel=loop peeling\n\n";
  (* the (bench x variant) matrix is embarrassingly parallel: each cell
     is its own VM.  Cells come back in matrix order, so the rendered
     table is identical at any -j. *)
  let matrix =
    List.concat_map
      (fun name -> List.map (fun (_, tweak) -> (name, tweak)) ablation_variants)
      ablation_benches
  in
  let cells =
    R.parallel_map (fun (name, tweak) -> py_cycles_of name tweak) matrix
  in
  let rows =
    List.map2
      (fun name cells ->
        (* variant 0 is "full": the normalization baseline *)
        let full = List.hd cells in
        name :: List.map (fun c -> Printf.sprintf "%.2fx" (c /. full)) cells)
      ablation_benches
      (chunks (List.length ablation_variants) cells)
  in
  Render.table ~header:("benchmark" :: List.map fst ablation_variants) ~rows

(* ---------------- extension: two-tier compilation ---------------- *)

let tiers_benches =
  [ "richards"; "crypto_pyaes"; "spectral_norm"; "float"; "django";
    "fannkuch" ]

let tiers () =
  Render.heading
    "EXTENSION: two-tier compilation (the paper's Q5 multi-tier discussion)";
  pr "tier-1 compiles traces unoptimized at ~30%% of the compile cost;\n";
  pr "traces hot for %d runs are recompiled through the full optimizer.\n"
    Config.two_tier.Config.tier2_threshold;
  pr "break-even = instructions until cumulative work rate catches CPython.\n\n";
  let benches = tiers_benches in
  let rows =
    List.map
      (fun name ->
        let one = R.run name R.Pypy_jit in
        let two = R.run name R.Pypy_tiered in
        let cpy = R.run name R.Cpython in
        let be r =
          match break_even r cpy with
          | Some x -> Printf.sprintf "%.2f" (float_of_int x /. 1.0e6)
          | None -> "never"
        in
        let retiers =
          match two.R.jit with Some j -> j.R.retiers | None -> 0
        in
        let tracing r = float_of_int (R.phase_insns_of r Phase.Tracing) /. 1.0e6 in
        [
          name;
          Render.f1 (R.mcycles one);
          Render.f1 (R.mcycles two);
          Printf.sprintf "%.3fx" (two.R.cycles /. one.R.cycles);
          be one;
          be two;
          Render.f2 (tracing one);
          Render.f2 (tracing two);
          string_of_int retiers;
        ])
      benches
  in
  Render.table
    ~header:
      [ "benchmark"; "1-tier Mcyc"; "2-tier Mcyc"; "ratio"; "BE-1 (Mi)";
        "BE-2 (Mi)"; "compile-1 Mi"; "compile-2 Mi"; "retiers" ]
    ~rows;
  pr "\ncompile-N = instructions spent in the tracing/compiling phase.\n"

(* ------------ extension: adaptive multi-tier policy family ------------ *)

let tierpolicy_benches =
  [ "richards"; "crypto_pyaes"; "spectral_norm"; "float"; "django";
    "fannkuch" ]

let tierpolicy_configs =
  [ ("optimizing", R.Pypy_jit); ("baseline", R.Pypy_baseline);
    ("adaptive", R.Pypy_tiered) ]

let tierpolicy () =
  Render.heading
    "EXTENSION: tier policies (warmup, residency, compile cost per tier)";
  pr "optimizing = every trace through the full optimizer (the default);\n";
  pr "baseline   = cheap tier-1 compiles at threshold %d, never promoted;\n"
    Config.default.Config.tier1_threshold;
  pr "adaptive   = baseline first, promotion after %d stable runs,\n"
    Config.default.Config.tier2_threshold;
  pr "             demotion after %d bridges on an optimized loop.\n\n"
    Config.default.Config.demote_bridges;
  (* 1. warmup: when does the first compiled trace run, and when does
     cumulative work rate catch CPython *)
  pr "warmup: first compiled-trace entry (Mi = 1e6 simulated insns) and\n";
  pr "break-even vs CPython; lower is better.\n\n";
  let first_entry r =
    match r.R.jit with
    | Some j when j.R.first_entry_insns >= 0 ->
        Printf.sprintf "%.3f" (float_of_int j.R.first_entry_insns /. 1.0e6)
    | _ -> "never"
  in
  let rows =
    List.map
      (fun name ->
        let cpy = R.run name R.Cpython in
        let cells =
          List.concat_map
            (fun (_, vc) ->
              let r = R.run name vc in
              let be =
                match break_even r cpy with
                | Some x -> Printf.sprintf "%.2f" (float_of_int x /. 1.0e6)
                | None -> "never"
              in
              [ first_entry r; be ])
            tierpolicy_configs
        in
        name :: cells)
      tierpolicy_benches
  in
  Render.table
    ~header:
      ("benchmark"
      :: List.concat_map
           (fun (n, _) -> [ n ^ " 1st (Mi)"; n ^ " BE (Mi)" ])
           tierpolicy_configs)
    ~rows;
  (* 2. per-tier residency under the adaptive policy *)
  pr "\nadaptive-policy tier residency: where do trace entries and dynamic\n";
  pr "IR executions live once both tiers are active?\n\n";
  let rows =
    List.map
      (fun name ->
        let r = R.run name R.Pypy_tiered in
        match r.R.jit with
        | None -> [ name; "-"; "-"; "-"; "-"; "-" ]
        | Some j ->
            let dyn_total = j.R.tier1_dynamic_ir + j.R.tier2_dynamic_ir in
            let t2_share =
              if dyn_total = 0 then 0.0
              else
                100.0 *. float_of_int j.R.tier2_dynamic_ir
                /. float_of_int dyn_total
            in
            [
              name;
              string_of_int j.R.tier1_entries;
              string_of_int j.R.tier2_entries;
              Printf.sprintf "%.1f%%" t2_share;
              string_of_int j.R.retiers;
              string_of_int j.R.demotions;
            ])
      tierpolicy_benches
  in
  Render.table
    ~header:
      [ "benchmark"; "t1 entries"; "t2 entries"; "t2 dyn-IR"; "promoted";
        "demoted" ]
    ~rows;
  (* 3. compile-cost breakdown: tracing-phase instructions per policy *)
  pr "\ncompile cost: tracing/compiling-phase Mi per policy, with the\n";
  pr "tier-1/tier-2 compile counts behind it.\n\n";
  let rows =
    List.map
      (fun name ->
        let cells =
          List.concat_map
            (fun (_, vc) ->
              let r = R.run name vc in
              let tracing =
                float_of_int (R.phase_insns_of r Phase.Tracing) /. 1.0e6
              in
              let compiles =
                match r.R.jit with
                | Some j ->
                    Printf.sprintf "%d/%d" j.R.tier1_compiles
                      j.R.tier2_compiles
                | None -> "-"
              in
              [ Render.f2 tracing; compiles ])
            tierpolicy_configs
        in
        name :: cells)
      tierpolicy_benches
  in
  Render.table
    ~header:
      ("benchmark"
      :: List.concat_map
           (fun (n, _) -> [ n ^ " Mi"; n ^ " t1/t2" ])
           tierpolicy_configs)
    ~rows;
  pr
    "\nThe adaptive policy buys its warmup win with cheap tier-1 code:\n\
     the first compiled entry lands earlier than under the optimizing\n\
     policy, and hot loops are promoted once their guard profile is\n\
     stable, so steady state converges on the optimizing tier. Demotion\n\
     stays rare -- it only fires where bridges proliferate on an\n\
     optimized loop.\n"

(* ---------------- extension: threshold sensitivity ---------------- *)

let thresholds () =
  Render.heading
    "EXTENSION: hot-loop threshold sensitivity (the paper's Q2 discussion)";
  pr "PyPy's production threshold is 1039 iterations; ours scales to 131.\n";
  pr "Each cell: total simulated Mcycles under that threshold (JIT on).\n\n";
  let benches =
    [ "richards"; "crypto_pyaes"; "spectral_norm"; "django"; "hexiom2";
      "pyflate_fast" ]
  in
  let sweep = [ 17; 37; 131; 523; 2099 ] in
  let matrix =
    List.concat_map (fun name -> List.map (fun th -> (name, th)) sweep) benches
  in
  let cells =
    R.parallel_map
      (fun (name, th) ->
        py_cycles_of name (fun c -> { c with Config.jit_threshold = th }))
      matrix
  in
  let rows =
    List.map2
      (fun name cells ->
        (* normalize to the th=131 cell (the scaled production default) *)
        let base =
          List.nth cells
            (Option.value ~default:0
               (List.find_index (fun th -> th = 131) sweep))
        in
        name
        :: List.map
             (fun c -> Printf.sprintf "%.1f (%.2fx)" (c /. 1e6) (c /. base))
             cells)
      benches
      (chunks (List.length sweep) cells)
  in
  Render.table
    ~header:
      ("benchmark"
      :: List.map (fun th -> Printf.sprintf "th=%d" th) sweep)
    ~rows;
  pr
    "\nThe sensitivity is asymmetric. Lowering the threshold is usually a\n\
     small win (hot code compiles sooner) but can backfire where eager\n\
     tracing catches loops before their types settle (crypto at th=17\n\
     pays 1.8x in bridges and retracing). Raising it is uniformly costly\n\
     -- hot code stays interpreted, up to several times slower at 16x\n\
     the default -- which is why PyPy ships an aggressive 1039 despite\n\
     the compile-time it spends on marginal loops.\n"

(* ------------ extension: bounded shared-cache capacity sweep ------------ *)

module SC = Mtj_rjit.Sharedcache

(* the sweep never runs a VM: cache entries are probe tokens *)
type SC.entry += Probe

(* Pure cache replay: the serving harness's Zipf request stream (same
   generator, same seed as `mtj serve`) driven over fresh bounded
   {!Mtj_rjit.Sharedcache} instances, one per capacity.  Each request
   performs the serve flow's cache half — one lookup, publish on miss —
   so what the table characterizes is the per-shard LRU policy against
   the workload's popularity skew, deterministically and without
   running any programs. *)
let cachesweep () =
  Render.heading
    "EXTENSION: bounded shared-cache capacity sweep (Zipf replay)";
  let requests = 2000 and zipf_s = 1.1 and seed = 42 in
  let corpus = Serve.default_corpus in
  pr
    "The serving request stream (corpus %d, zipf_s=%.1f, seed=%d, %d\n\
     requests) replayed over bounded caches with per-shard LRU eviction.\n\n"
    (List.length corpus) zipf_s seed requests;
  let stream = Serve.gen_requests ~corpus ~requests ~zipf_s ~seed in
  let caps = [ 1; 2; 3; 4; 6; 8; 0 ] in
  let rows =
    List.map
      (fun cap ->
        let cache = SC.create ~capacity:cap () in
        Array.iter
          (fun (rq : Serve.request) ->
            let lang =
              match rq.Serve.req_lang with B.Py -> "py" | B.Rk -> "rk"
            in
            let key =
              SC.key ~lang ~program:rq.Serve.req_bench ~config_digest:"sweep"
            in
            match SC.find cache ~ctx_uid:0 key with
            | Some _ -> ()
            | None -> ignore (SC.publish cache ~ctx_uid:0 key Probe))
          stream;
        let st = SC.stats cache in
        let hits = st.SC.shared_hits + st.SC.local_hits in
        [
          (if cap = 0 then "unbounded" else string_of_int cap);
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int hits /. float_of_int requests);
          string_of_int st.SC.misses;
          string_of_int st.SC.publications;
          string_of_int st.SC.evictions;
          string_of_int st.SC.requeues;
          string_of_int (SC.size cache);
        ])
      caps
  in
  Render.table
    ~header:
      [ "capacity"; "hit rate"; "misses"; "published"; "evicted";
        "requeued"; "live" ]
    ~rows;
  pr
    "\nDegradation under the Zipf mix is graceful: the rank-1 tenant\n\
     dominates the stream, so even a one-entry cache keeps a large\n\
     fraction of the unbounded hit rate, and each added slot recovers\n\
     most of a rank's worth of misses. The requeue column is the thrash\n\
     signal -- re-publications of previously evicted keys -- which goes\n\
     to zero exactly when the capacity covers the working set, and the\n\
     live count never exceeds the configured bound.\n"

(* ---------------- the experiment registry ---------------- *)

(* Each experiment declares the (benchmark, vm_config) matrix it reads
   up front; the harness prefetches the union through the worker pool,
   then the renderers replay against the warm cache in deterministic
   order.  Experiments that sweep custom configs (ablation, thresholds)
   have an empty matrix and parallelize internally via
   [Runner.parallel_map]. *)

type experiment = {
  ex_name : string;
  ex_doc : string;
  ex_runs : unit -> (string * R.vm_config) list;
  ex_render : unit -> unit;
}

let suite_runs configs () =
  List.concat_map
    (fun n -> List.map (fun c -> (n, c)) configs)
    (suite_names ())

(* suite_by_speedup's row ordering needs these two columns *)
let order_runs = suite_runs [ R.Cpython; R.Pypy_jit ]

let table2_runs () =
  let native_names =
    List.map (fun k -> k.Mtj_baselines.Native.kname) Mtj_baselines.Native.kernels
  in
  let rk = clbg_rk_names () in
  List.concat_map
    (fun n ->
      [ (n, R.Cpython); (n, R.Pypy_jit) ]
      @ (if List.mem n native_names then [ (n, R.Native_c) ] else [])
      @
      if List.mem n rk then [ (n, R.Racket); (n, R.Pycket_jit) ] else [])
    (clbg_py_names ())

let fig4_runs () =
  List.concat_map
    (fun n -> [ (n, R.Pypy_jit); (n, R.Pycket_jit) ])
    (clbg_common ())

let tiers_runs () =
  List.concat_map
    (fun n -> [ (n, R.Pypy_jit); (n, R.Pypy_tiered); (n, R.Cpython) ])
    tiers_benches

let tierpolicy_runs () =
  List.concat_map
    (fun n ->
      (n, R.Cpython)
      :: List.map (fun (_, vc) -> (n, vc)) tierpolicy_configs)
    tierpolicy_benches

let registry : experiment list =
  [
    { ex_name = "table1";
      ex_doc = "PyPy-suite performance (time, IPC, MPKI x 3 VMs)";
      ex_runs = suite_runs [ R.Cpython; R.Pypy_nojit; R.Pypy_jit ];
      ex_render = table1 };
    { ex_name = "table2";
      ex_doc = "CLBG performance across languages + C";
      ex_runs = table2_runs;
      ex_render = table2 };
    { ex_name = "table3";
      ex_doc = "significant AOT functions called from traces";
      ex_runs = order_runs;
      ex_render = table3 };
    { ex_name = "table4";
      ex_doc = "per-phase microarchitectural statistics";
      ex_runs = suite_runs [ R.Pypy_jit ];
      ex_render = table4 };
    { ex_name = "fig2";
      ex_doc = "phase breakdown per benchmark";
      ex_runs = order_runs;
      ex_render = fig2 };
    { ex_name = "fig3";
      ex_doc = "phase timeline during warmup";
      ex_runs = order_runs;
      ex_render = fig3 };
    { ex_name = "fig4";
      ex_doc = "PyPy vs Pycket phase breakdown (CLBG)";
      ex_runs = fig4_runs;
      ex_render = fig4 };
    { ex_name = "fig5";
      ex_doc = "warmup curves and break-even points";
      ex_runs = suite_runs [ R.Cpython; R.Pypy_nojit; R.Pypy_jit ];
      ex_render = fig5 };
    { ex_name = "fig6";
      ex_doc = "IR nodes compiled / hotness / dynamic rate";
      ex_runs = order_runs;
      ex_render = fig6 };
    { ex_name = "fig7";
      ex_doc = "meta-trace composition by IR category";
      ex_runs = order_runs;
      ex_render = fig7 };
    { ex_name = "fig8";
      ex_doc = "dynamic IR node-type histogram";
      ex_runs = order_runs;
      ex_render = fig8 };
    { ex_name = "fig9";
      ex_doc = "x86 instructions per IR node type";
      ex_runs = order_runs;
      ex_render = fig9 };
    { ex_name = "activity";
      ex_doc = "JIT machinery counters (extension)";
      ex_runs = order_runs;
      ex_render = jit_activity };
    { ex_name = "ablation";
      ex_doc = "optimizer-pass ablation (extension)";
      ex_runs = (fun () -> []);
      ex_render = ablation };
    { ex_name = "tiers";
      ex_doc = "two-tier compilation: warmup vs steady state (extension)";
      ex_runs = tiers_runs;
      ex_render = tiers };
    { ex_name = "tierpolicy";
      ex_doc = "tier policies: warmup/residency/compile cost (extension)";
      ex_runs = tierpolicy_runs;
      ex_render = tierpolicy };
    { ex_name = "thresholds";
      ex_doc = "hot-loop threshold sensitivity (extension)";
      ex_runs = (fun () -> []);
      ex_render = thresholds };
    { ex_name = "cachesweep";
      ex_doc = "bounded shared-cache hit rate vs capacity (extension)";
      ex_runs = (fun () -> []);
      ex_render = cachesweep };
  ]

let find name = List.find_opt (fun e -> e.ex_name = name) registry

(** fill the memo cache for a set of experiments in one parallel wave *)
let prefetch_for (exps : experiment list) =
  R.prefetch (List.concat_map (fun e -> e.ex_runs ()) exps)

(* ---------------- everything ---------------- *)

let all () =
  prefetch_for registry;
  List.iter (fun e -> e.ex_render ()) registry
