(** pylite bytecode: a CPython-flavoured stack machine.

    For-loops are lowered at compile time to counter-based forms
    ([FOR_RANGE] over integer ranges, [FOR_ITER] over indexable
    sequences) so that hot loops allocate no iterator objects — the same
    shape PyPy's traces reach after virtualizing iterators. *)

open Mtj_rt

type instr =
  | LOAD_CONST of Value.t
  | LOAD_FAST of int
  | STORE_FAST of int
  | LOAD_GLOBAL of string
  | STORE_GLOBAL of string
  | LOAD_ATTR of string
  | STORE_ATTR of string        (* stack: [obj; value] *)
  | LOAD_METHOD of string       (* [obj] -> [callable; self_or_nil] *)
  | CALL_METHOD of int
  | CALL_FUNCTION of int
  | BINARY of Ast.binop
  | UNARY_NEG
  | UNARY_NOT
  | COMPARE of Mtj_rjit.Ops_intf.cmp
  | JUMP of int
  | POP_JUMP_IF_FALSE of int
  | POP_JUMP_IF_TRUE of int
  | JUMP_IF_FALSE_OR_POP of int
  | JUMP_IF_TRUE_OR_POP of int
  | BUILD_LIST of int
  | BUILD_TUPLE of int
  | BUILD_DICT of int           (* n key/value pairs *)
  | BUILD_SET of int
  | BINARY_SUBSCR
  | STORE_SUBSCR                (* [obj; key; value] *)
  | DELETE_SUBSCR               (* [obj; key] *)
  | GET_SLICE                   (* [obj; lo; hi] *)
  | SET_SLICE                   (* [obj; lo; hi; value] *)
  | RETURN_VALUE
  | RETURN_NONE
  | POP_TOP
  | DUP_TOP
  | UNPACK_SEQUENCE of int
  | GET_INDEXABLE
  | FOR_RANGE of { var : int; cur : int; stop : int; step : int; exit : int }
  | FOR_ITER of { var : int; seq : int; idx : int; exit : int }
  | MAKE_FUNCTION of { code_ref : int; fname : string; arity : int }
  | MAKE_CLASS of { cls_name : string; parent : string option; methods : string list }
  | NOP

type code = {
  id : int;
  name : string;
  nargs : int;
  nlocals : int;
  stacksize : int;
  instrs : instr array;
  headers : bool array;  (* per-pc: is this a hot-loop merge point? *)
  varnames : string array;
}

(* numeric tag for the dispatch-branch target model *)
let tag = function
  | LOAD_CONST _ -> 0
  | LOAD_FAST _ -> 1
  | STORE_FAST _ -> 2
  | LOAD_GLOBAL _ -> 3
  | STORE_GLOBAL _ -> 4
  | LOAD_ATTR _ -> 5
  | STORE_ATTR _ -> 6
  | LOAD_METHOD _ -> 7
  | CALL_METHOD _ -> 8
  | CALL_FUNCTION _ -> 9
  | BINARY _ -> 10
  | UNARY_NEG -> 11
  | UNARY_NOT -> 12
  | COMPARE _ -> 13
  | JUMP _ -> 14
  | POP_JUMP_IF_FALSE _ -> 15
  | POP_JUMP_IF_TRUE _ -> 16
  | JUMP_IF_FALSE_OR_POP _ -> 17
  | JUMP_IF_TRUE_OR_POP _ -> 18
  | BUILD_LIST _ -> 19
  | BUILD_TUPLE _ -> 20
  | BUILD_DICT _ -> 21
  | BUILD_SET _ -> 22
  | BINARY_SUBSCR -> 23
  | STORE_SUBSCR -> 24
  | DELETE_SUBSCR -> 25
  | GET_SLICE -> 26
  | SET_SLICE -> 27
  | RETURN_VALUE -> 28
  | RETURN_NONE -> 29
  | POP_TOP -> 30
  | DUP_TOP -> 31
  | UNPACK_SEQUENCE _ -> 32
  | GET_INDEXABLE -> 33
  | FOR_RANGE _ -> 34
  | FOR_ITER _ -> 35
  | MAKE_FUNCTION _ -> 36
  | MAKE_CLASS _ -> 37
  | NOP -> 38

let name_of_instr i =
  match i with
  | LOAD_CONST _ -> "LOAD_CONST"
  | LOAD_FAST _ -> "LOAD_FAST"
  | STORE_FAST _ -> "STORE_FAST"
  | LOAD_GLOBAL _ -> "LOAD_GLOBAL"
  | STORE_GLOBAL _ -> "STORE_GLOBAL"
  | LOAD_ATTR _ -> "LOAD_ATTR"
  | STORE_ATTR _ -> "STORE_ATTR"
  | LOAD_METHOD _ -> "LOAD_METHOD"
  | CALL_METHOD _ -> "CALL_METHOD"
  | CALL_FUNCTION _ -> "CALL_FUNCTION"
  | BINARY _ -> "BINARY"
  | UNARY_NEG -> "UNARY_NEG"
  | UNARY_NOT -> "UNARY_NOT"
  | COMPARE _ -> "COMPARE"
  | JUMP _ -> "JUMP"
  | POP_JUMP_IF_FALSE _ -> "POP_JUMP_IF_FALSE"
  | POP_JUMP_IF_TRUE _ -> "POP_JUMP_IF_TRUE"
  | JUMP_IF_FALSE_OR_POP _ -> "JUMP_IF_FALSE_OR_POP"
  | JUMP_IF_TRUE_OR_POP _ -> "JUMP_IF_TRUE_OR_POP"
  | BUILD_LIST _ -> "BUILD_LIST"
  | BUILD_TUPLE _ -> "BUILD_TUPLE"
  | BUILD_DICT _ -> "BUILD_DICT"
  | BUILD_SET _ -> "BUILD_SET"
  | BINARY_SUBSCR -> "BINARY_SUBSCR"
  | STORE_SUBSCR -> "STORE_SUBSCR"
  | DELETE_SUBSCR -> "DELETE_SUBSCR"
  | GET_SLICE -> "GET_SLICE"
  | SET_SLICE -> "SET_SLICE"
  | RETURN_VALUE -> "RETURN_VALUE"
  | RETURN_NONE -> "RETURN_NONE"
  | POP_TOP -> "POP_TOP"
  | DUP_TOP -> "DUP_TOP"
  | UNPACK_SEQUENCE _ -> "UNPACK_SEQUENCE"
  | GET_INDEXABLE -> "GET_INDEXABLE"
  | FOR_RANGE _ -> "FOR_RANGE"
  | FOR_ITER _ -> "FOR_ITER"
  | MAKE_FUNCTION _ -> "MAKE_FUNCTION"
  | MAKE_CLASS _ -> "MAKE_CLASS"
  | NOP -> "NOP"

(* net stack effect; [branch] distinguishes the jump-taken path for the
   OR_POP conditionals *)
let stack_effect ?(taken = false) = function
  | LOAD_CONST _ | LOAD_FAST _ | LOAD_GLOBAL _ | DUP_TOP -> 1
  | STORE_FAST _ | STORE_GLOBAL _ | POP_TOP -> -1
  | LOAD_ATTR _ -> 0
  | STORE_ATTR _ -> -2
  | LOAD_METHOD _ -> 1
  | CALL_METHOD n -> -(n + 1)  (* pops callable+self+args, pushes result *)
  | CALL_FUNCTION n -> -n      (* pops callee+args, pushes result *)
  | BINARY _ | COMPARE _ -> -1
  | UNARY_NEG | UNARY_NOT -> 0
  | JUMP _ -> 0
  | POP_JUMP_IF_FALSE _ | POP_JUMP_IF_TRUE _ -> -1
  | JUMP_IF_FALSE_OR_POP _ | JUMP_IF_TRUE_OR_POP _ ->
      if taken then 0 else -1
  | BUILD_LIST n | BUILD_TUPLE n | BUILD_SET n -> 1 - n
  | BUILD_DICT n -> 1 - (2 * n)
  | BINARY_SUBSCR -> -1
  | STORE_SUBSCR -> -3
  | DELETE_SUBSCR -> -2
  | GET_SLICE -> -2
  | SET_SLICE -> -4
  | RETURN_VALUE -> -1
  | RETURN_NONE -> 0
  | UNPACK_SEQUENCE n -> n - 1
  | GET_INDEXABLE -> 0
  | FOR_RANGE _ | FOR_ITER _ -> 0
  | MAKE_FUNCTION _ -> 1
  | MAKE_CLASS { methods; _ } -> 1 - List.length methods
  | NOP -> 0

let jump_targets = function
  | JUMP t | POP_JUMP_IF_FALSE t | POP_JUMP_IF_TRUE t
  | JUMP_IF_FALSE_OR_POP t | JUMP_IF_TRUE_OR_POP t ->
      [ t ]
  | FOR_RANGE { exit; _ } | FOR_ITER { exit; _ } -> [ exit ]
  | _ -> []

let falls_through = function
  | JUMP _ | RETURN_VALUE | RETURN_NONE -> false
  | _ -> true

let pp_instr fmt i =
  match i with
  | LOAD_CONST v -> Format.fprintf fmt "LOAD_CONST %s" (Value.repr v)
  | LOAD_FAST n -> Format.fprintf fmt "LOAD_FAST %d" n
  | STORE_FAST n -> Format.fprintf fmt "STORE_FAST %d" n
  | LOAD_GLOBAL s -> Format.fprintf fmt "LOAD_GLOBAL %s" s
  | STORE_GLOBAL s -> Format.fprintf fmt "STORE_GLOBAL %s" s
  | LOAD_ATTR s -> Format.fprintf fmt "LOAD_ATTR %s" s
  | STORE_ATTR s -> Format.fprintf fmt "STORE_ATTR %s" s
  | LOAD_METHOD s -> Format.fprintf fmt "LOAD_METHOD %s" s
  | CALL_METHOD n -> Format.fprintf fmt "CALL_METHOD %d" n
  | CALL_FUNCTION n -> Format.fprintf fmt "CALL_FUNCTION %d" n
  | JUMP t -> Format.fprintf fmt "JUMP %d" t
  | POP_JUMP_IF_FALSE t -> Format.fprintf fmt "POP_JUMP_IF_FALSE %d" t
  | POP_JUMP_IF_TRUE t -> Format.fprintf fmt "POP_JUMP_IF_TRUE %d" t
  | FOR_RANGE { var; exit; _ } ->
      Format.fprintf fmt "FOR_RANGE var=%d exit=%d" var exit
  | FOR_ITER { var; exit; _ } ->
      Format.fprintf fmt "FOR_ITER var=%d exit=%d" var exit
  | other -> Format.pp_print_string fmt (name_of_instr other)

(* String constants of a code object paired with their [Value.py_hash],
   as the threaded translator precomputes them for subscript fusion;
   test_value_diff checks these against a fresh [str_hash]. *)
let str_const_khashes (c : code) : (string * int) list =
  Array.to_list c.instrs
  |> List.filter_map (function
       | LOAD_CONST v when Mtj_rt.Value.is_str v ->
           Some (Mtj_rt.Value.to_str_unchecked v, Mtj_rt.Value.py_hash v)
       | _ -> None)
