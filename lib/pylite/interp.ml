(** The pylite bytecode interpreter, written once against the OPS seam.

    Instantiated with {!Mtj_rjit.Direct_ops} this is "the interpreter";
    instantiated with {!Mtj_rjit.Trace_ops} it is the meta-interpreter
    recording traces.  Handler discipline: within one bytecode all
    guard-recording / error-raising operations run before the first heap
    side effect, and [pc] is committed last. *)

open Mtj_rt
open Mtj_rjit
open Bytecode

module Step (O : Ops_intf.OPS) = struct
  type frame = (O.t, Bytecode.code) Frame.t

  let err = Semantics.err

  let make_frame cx code parent : frame =
    Frame.create_pooled
      ~pool:(O.frame_pool cx)
      ~code ~code_ref:code.Bytecode.id ~nlocals:code.Bytecode.nlocals
      ~stack_size:code.Bytecode.stacksize ~parent

  (* pop [n] operands into a fresh positional-order array (top of stack
     is the last argument) *)
  let pop_args cx (f : frame) n : O.t array =
    if n = 0 then [||]
    else begin
      let args = Array.make n (O.const cx Value.nil) in
      for i = n - 1 downto 0 do
        args.(i) <- Frame.pop f
      done;
      args
    end

  (* [first :: args] as a single fresh array (one allocation, unlike
     [Array.append [| first |] args]) — the receiver-prepend of every
     method call *)
  let prepend (first : O.t) (args : O.t array) : O.t array =
    let n = Array.length args in
    let out = Array.make (n + 1) first in
    Array.blit args 0 out 1 n;
    out

  (* dispatch a call to any callable value; [args] is in positional
     order (collected off the stack by [pop_args], no list building) *)
  let rec call_value cx (f : frame) callee (args : O.t array) :
      (O.t, Bytecode.code) Frame.outcome =
    let nargs = Array.length args in
    let cv = O.concrete callee in
    if not (Value.is_obj cv) then
      err "%s object is not callable" (Value.type_name cv)
    else
    match (Value.to_obj_unchecked cv).Value.payload with
    | Value.Func fn ->
        if fn.Value.code_ref < 0 then begin
          let fn = O.guard_func cx callee in
          let b = Builtin.of_tag (-fn.Value.code_ref - 1) in
          let r = O.call_builtin cx b args in
          Frame.push f r;
          f.Frame.pc <- f.Frame.pc + 1;
          Frame.Continue
        end
        else begin
          let fn = O.guard_func cx callee in
          if fn.Value.arity <> nargs then
            err "%s() takes %d arguments (%d given)" fn.Value.func_name
              fn.Value.arity nargs;
          let code = Code_table.lookup fn.Value.code_ref in
          f.Frame.pc <- f.Frame.pc + 1;
          let nf = make_frame cx code (Some f) in
          Array.blit args 0 nf.Frame.locals 0 nargs;
          Frame.Call nf
        end
    | Value.Class _ ->
        let inst = O.alloc_instance cx callee in
        (match O.class_init_func cx callee with
        | Some initf ->
            if initf.Value.arity <> nargs + 1 then
              err "__init__ takes %d arguments (%d given)" initf.Value.arity
                (nargs + 1);
            let code = Code_table.lookup initf.Value.code_ref in
            Frame.push f inst;
            f.Frame.pc <- f.Frame.pc + 1;
            let nf = make_frame cx code (Some f) in
            nf.Frame.discard_return <- true;
            nf.Frame.locals.(0) <- inst;
            Array.blit args 0 nf.Frame.locals 1 nargs;
            Frame.Call nf
        | None ->
            if nargs <> 0 then err "this class takes no constructor arguments";
            Frame.push f inst;
            f.Frame.pc <- f.Frame.pc + 1;
            Frame.Continue)
    | Value.Method _ -> (
        match O.method_parts cx callee with
        | Some (func, recv) -> call_value cx f func (prepend recv args)
        | None -> err "broken bound method")
    | _ -> err "%s object is not callable" (Value.type_name cv)

  let binary cx op a b =
    match (op : Ast.binop) with
    | Ast.Add -> O.add cx a b
    | Ast.Sub -> O.sub cx a b
    | Ast.Mult -> O.mul cx a b
    | Ast.Div -> O.truediv cx a b
    | Ast.Floordiv -> O.floordiv cx a b
    | Ast.Mod -> O.modulo cx a b
    | Ast.Pow -> O.pow cx a b
    | Ast.Lshift -> O.lshift cx a b
    | Ast.Rshift -> O.rshift cx a b
    | Ast.Bitand -> O.bitand cx a b
    | Ast.Bitor -> O.bitor cx a b
    | Ast.Bitxor -> O.bitxor cx a b

  let step cx (globals : Globals.t) (f : frame) :
      (O.t, Bytecode.code) Frame.outcome =
    let pc = f.Frame.pc in
    let instr = f.Frame.code.Bytecode.instrs.(pc) in
    let continue_at next =
      f.Frame.pc <- next;
      Frame.Continue
    in
    let next () = continue_at (pc + 1) in
    match instr with
    | NOP -> next ()
    | LOAD_CONST v ->
        Frame.push f (O.const cx v);
        next ()
    | LOAD_FAST slot ->
        Frame.push f f.Frame.locals.(slot);
        next ()
    | STORE_FAST slot ->
        f.Frame.locals.(slot) <- Frame.pop f;
        next ()
    | LOAD_GLOBAL name ->
        Frame.push f (O.load_global cx globals name);
        next ()
    | STORE_GLOBAL name ->
        O.store_global cx globals name (Frame.pop f);
        next ()
    | LOAD_ATTR name ->
        let obj = Frame.pop f in
        Frame.push f (O.getattr cx obj name);
        next ()
    | STORE_ATTR name ->
        let v = Frame.pop f in
        let obj = Frame.pop f in
        O.setattr cx obj name v;
        next ()
    | LOAD_METHOD name ->
        let obj = Frame.pop f in
        let callable, self = O.load_method cx obj name in
        Frame.push f callable;
        Frame.push f self;
        next ()
    | CALL_METHOD nargs ->
        let args = pop_args cx f nargs in
        let self = Frame.pop f in
        let callable = Frame.pop f in
        if Value.is_nil (O.concrete self) then call_value cx f callable args
        else call_value cx f callable (prepend self args)
    | CALL_FUNCTION nargs ->
        let args = pop_args cx f nargs in
        let callee = Frame.pop f in
        call_value cx f callee args
    | BINARY op ->
        let b = Frame.pop f in
        let a = Frame.pop f in
        Frame.push f (binary cx op a b);
        next ()
    | UNARY_NEG ->
        let a = Frame.pop f in
        Frame.push f (O.neg cx a);
        next ()
    | UNARY_NOT ->
        let a = Frame.pop f in
        Frame.push f (O.not_ cx a);
        next ()
    | COMPARE op ->
        let b = Frame.pop f in
        let a = Frame.pop f in
        Frame.push f (O.compare cx op a b);
        next ()
    | JUMP t -> continue_at t
    | POP_JUMP_IF_FALSE t ->
        let v = Frame.pop f in
        if O.is_true cx v then next () else continue_at t
    | POP_JUMP_IF_TRUE t ->
        let v = Frame.pop f in
        if O.is_true cx v then continue_at t else next ()
    | JUMP_IF_FALSE_OR_POP t ->
        let v = Frame.peek f 0 in
        if O.is_true cx v then begin
          ignore (Frame.pop f);
          next ()
        end
        else continue_at t
    | JUMP_IF_TRUE_OR_POP t ->
        let v = Frame.peek f 0 in
        if O.is_true cx v then continue_at t
        else begin
          ignore (Frame.pop f);
          next ()
        end
    | BUILD_LIST n ->
        let items = Array.make n (O.const cx Value.nil) in
        for i = n - 1 downto 0 do
          items.(i) <- Frame.pop f
        done;
        Frame.push f (O.make_list cx items);
        next ()
    | BUILD_TUPLE n ->
        let items = Array.make n (O.const cx Value.nil) in
        for i = n - 1 downto 0 do
          items.(i) <- Frame.pop f
        done;
        Frame.push f (O.make_tuple cx items);
        next ()
    | BUILD_DICT n ->
        let pairs = Array.make n (O.const cx Value.nil, O.const cx Value.nil) in
        for i = n - 1 downto 0 do
          let v = Frame.pop f in
          let k = Frame.pop f in
          pairs.(i) <- (k, v)
        done;
        Frame.push f (O.make_dict cx pairs);
        next ()
    | BUILD_SET n ->
        let items = Array.make n (O.const cx Value.nil) in
        for i = n - 1 downto 0 do
          items.(i) <- Frame.pop f
        done;
        Frame.push f (O.make_set cx items);
        next ()
    | BINARY_SUBSCR ->
        let k = Frame.pop f in
        let obj = Frame.pop f in
        Frame.push f (O.getitem cx obj k);
        next ()
    | STORE_SUBSCR ->
        let v = Frame.pop f in
        let k = Frame.pop f in
        let obj = Frame.pop f in
        O.setitem cx obj k v;
        next ()
    | DELETE_SUBSCR ->
        let k = Frame.pop f in
        let obj = Frame.pop f in
        ignore (O.call_builtin cx Builtin.Del_item [| obj; k |]);
        next ()
    | GET_SLICE ->
        let hi = Frame.pop f in
        let lo = Frame.pop f in
        let obj = Frame.pop f in
        Frame.push f (O.call_builtin cx Builtin.Slice_get [| obj; lo; hi |]);
        next ()
    | SET_SLICE ->
        let v = Frame.pop f in
        let hi = Frame.pop f in
        let lo = Frame.pop f in
        let obj = Frame.pop f in
        ignore (O.call_builtin cx Builtin.Slice_set [| obj; lo; hi; v |]);
        next ()
    | RETURN_VALUE -> Frame.Return (Frame.pop f)
    | RETURN_NONE -> Frame.Return (O.const cx Value.nil)
    | POP_TOP ->
        ignore (Frame.pop f);
        next ()
    | DUP_TOP ->
        Frame.push f (Frame.peek f 0);
        next ()
    | UNPACK_SEQUENCE n ->
        let seq = Frame.pop f in
        let items = O.unpack cx seq n in
        for i = n - 1 downto 0 do
          Frame.push f items.(i)
        done;
        next ()
    | GET_INDEXABLE ->
        let v = Frame.pop f in
        Frame.push f (O.call_builtin cx Builtin.Indexable [| v |]);
        next ()
    | FOR_RANGE { var; cur; stop; step; exit } ->
        let c = f.Frame.locals.(cur) in
        let s = f.Frame.locals.(stop) in
        let st = f.Frame.locals.(step) in
        let stepi = O.guard_int cx st in
        let cond =
          if stepi > 0 then O.compare cx Ops_intf.Lt c s
          else O.compare cx Ops_intf.Gt c s
        in
        if O.is_true cx cond then begin
          f.Frame.locals.(var) <- c;
          f.Frame.locals.(cur) <- O.add cx c st;
          next ()
        end
        else continue_at exit
    | FOR_ITER { var; seq; idx; exit } ->
        let s = f.Frame.locals.(seq) in
        let i = f.Frame.locals.(idx) in
        let n = O.len_ cx s in
        let cond = O.compare cx Ops_intf.Lt i n in
        if O.is_true cx cond then begin
          let v = O.getitem cx s i in
          f.Frame.locals.(var) <- v;
          f.Frame.locals.(idx) <- O.add cx i (O.const cx (Value.of_int 1));
          next ()
        end
        else continue_at exit
    | MAKE_FUNCTION { code_ref; fname; arity } ->
        (* function objects are created during (cold) module setup *)
        let fv =
          Gc_sim.obj
            (Ctx.gc (O.rt cx))
            (Value.Func
               {
                 func_id = code_ref;
                 func_name = fname;
                 arity;
                 code_ref;
                 captured = [||];
               })
        in
        Frame.push f (O.const cx fv);
        next ()
    | MAKE_CLASS { cls_name; parent; methods } ->
        let parent_obj =
          match parent with
          | None -> None
          | Some pname -> (
              let pv = O.concrete (O.load_global cx globals pname) in
              if Value.is_obj pv then
                let p = Value.to_obj_unchecked pv in
                match p.Value.payload with
                | Value.Class _ -> Some p
                | _ -> err "class parent %s is %s" pname (Value.type_name pv)
              else err "class parent %s is %s" pname (Value.type_name pv))
        in
        let n = List.length methods in
        let method_values = pop_args cx f n in
        let attrs =
          List.mapi
            (fun i name -> (name, O.concrete method_values.(i)))
            methods
        in
        (* instances of a subclass share the parent's layout prefix *)
        let layout =
          match parent_obj with
          | Some { Value.payload = Value.Class pc; _ } ->
              Array.copy pc.Value.layout
          | _ -> [||]
        in
        let next_cls_id = Code_table.fresh_id () in
        let cls =
          Gc_sim.obj
            (Ctx.gc (O.rt cx))
            (Value.Class
               {
                 Value.cls_id = next_cls_id;
                 cls_name;
                 layout;
                 attrs;
                 parent = parent_obj;
               })
        in
        Frame.push f (O.const cx cls);
        next ()

  (* the reference decode-and-match loop, under the name the driver and
     the threaded tier know it by *)
  let step_ref = step
end

(* ------------------------------------------------------------------ *)
(* The threaded-dispatch tier (the pylite half of {!Mtj_rjit.Threaded}).

   Each code object is translated once into an array of pre-bound step
   closures over [Direct_ops]: operands are decoded at translate time
   (local slots, constant-pool values via [O.const], jump targets, the
   pre-selected binop function), and the hottest shapes are fused into
   superinstructions.  Every step emits exactly the charge sequence of
   one reference dispatch iteration — [Threaded.charge] first, then the
   handler's operations in reference order — so simulated counters are
   byte-identical to [Step(Direct_ops).step_ref] (held by
   test/test_dispatch_diff.ml).  Cold bytecodes delegate to the
   reference handler so the tricky semantics (calls, classes, builders)
   exist exactly once. *)

module D_ref = Step (Direct_ops)

type dstep = (Direct_ops.t, Bytecode.code) Threaded.step

(* the [binary] dispatch of the reference handler, resolved at translate
   time instead of per execution *)
let binary_fn :
    Ast.binop -> Direct_ops.cx -> Direct_ops.t -> Direct_ops.t -> Direct_ops.t
    = function
  | Ast.Add -> Direct_ops.add
  | Ast.Sub -> Direct_ops.sub
  | Ast.Mult -> Direct_ops.mul
  | Ast.Div -> Direct_ops.truediv
  | Ast.Floordiv -> Direct_ops.floordiv
  | Ast.Mod -> Direct_ops.modulo
  | Ast.Pow -> Direct_ops.pow
  | Ast.Lshift -> Direct_ops.lshift
  | Ast.Rshift -> Direct_ops.rshift
  | Ast.Bitand -> Direct_ops.bitand
  | Ast.Bitor -> Direct_ops.bitor
  | Ast.Bitxor -> Direct_ops.bitxor

let threaded_code (cx : Direct_ops.cx) (globals : Globals.t)
    (d : Threaded.dispatch) (code : Bytecode.code) : dstep array =
  let instrs = code.Bytecode.instrs in
  let hdrs = code.Bytecode.headers in
  let n = Array.length instrs in
  let charge = Threaded.charger d in
  (* a stale code table must fail at translation, not mid-run: resolve
     every code_ref a step could bind right now *)
  Array.iter
    (function
      | MAKE_FUNCTION { code_ref; _ } -> ignore (Code_table.lookup code_ref)
      | _ -> ())
    instrs;
  (* the pre-bound standalone step of one bytecode *)
  let step_of pc instr : dstep =
    let target = Bytecode.tag instr in
    let next = pc + 1 in
    match instr with
    | NOP ->
        fun f ->
          charge ~target;
          f.Frame.pc <- next;
          Frame.Continue
    | LOAD_CONST v ->
        let c = Direct_ops.const cx v in
        fun f ->
          charge ~target;
          Frame.push f c;
          f.Frame.pc <- next;
          Frame.Continue
    | LOAD_FAST slot ->
        fun f ->
          charge ~target;
          Frame.push f f.Frame.locals.(slot);
          f.Frame.pc <- next;
          Frame.Continue
    | STORE_FAST slot ->
        fun f ->
          charge ~target;
          f.Frame.locals.(slot) <- Frame.pop f;
          f.Frame.pc <- next;
          Frame.Continue
    | LOAD_GLOBAL name ->
        fun f ->
          charge ~target;
          Frame.push f (Direct_ops.load_global cx globals name);
          f.Frame.pc <- next;
          Frame.Continue
    | STORE_GLOBAL name ->
        fun f ->
          charge ~target;
          Direct_ops.store_global cx globals name (Frame.pop f);
          f.Frame.pc <- next;
          Frame.Continue
    | LOAD_ATTR name ->
        fun f ->
          charge ~target;
          let obj = Frame.pop f in
          Frame.push f (Direct_ops.getattr cx obj name);
          f.Frame.pc <- next;
          Frame.Continue
    | STORE_ATTR name ->
        fun f ->
          charge ~target;
          let v = Frame.pop f in
          let obj = Frame.pop f in
          Direct_ops.setattr cx obj name v;
          f.Frame.pc <- next;
          Frame.Continue
    | LOAD_METHOD name ->
        fun f ->
          charge ~target;
          let obj = Frame.pop f in
          let callable, self = Direct_ops.load_method cx obj name in
          Frame.push f callable;
          Frame.push f self;
          f.Frame.pc <- next;
          Frame.Continue
    | CALL_METHOD nargs ->
        fun f ->
          charge ~target;
          let args = D_ref.pop_args cx f nargs in
          let self = Frame.pop f in
          let callable = Frame.pop f in
          if Value.is_nil (Direct_ops.concrete self) then
            D_ref.call_value cx f callable args
          else D_ref.call_value cx f callable (D_ref.prepend self args)
    | CALL_FUNCTION nargs ->
        fun f ->
          charge ~target;
          let args = D_ref.pop_args cx f nargs in
          let callee = Frame.pop f in
          D_ref.call_value cx f callee args
    | BINARY op ->
        let fn = binary_fn op in
        fun f ->
          charge ~target;
          let b = Frame.pop f in
          let a = Frame.pop f in
          Frame.push f (fn cx a b);
          f.Frame.pc <- next;
          Frame.Continue
    | UNARY_NEG ->
        fun f ->
          charge ~target;
          let a = Frame.pop f in
          Frame.push f (Direct_ops.neg cx a);
          f.Frame.pc <- next;
          Frame.Continue
    | UNARY_NOT ->
        fun f ->
          charge ~target;
          let a = Frame.pop f in
          Frame.push f (Direct_ops.not_ cx a);
          f.Frame.pc <- next;
          Frame.Continue
    | COMPARE op ->
        fun f ->
          charge ~target;
          let b = Frame.pop f in
          let a = Frame.pop f in
          Frame.push f (Direct_ops.compare cx op a b);
          f.Frame.pc <- next;
          Frame.Continue
    | JUMP t ->
        fun f ->
          charge ~target;
          f.Frame.pc <- t;
          Frame.Continue
    | POP_JUMP_IF_FALSE t ->
        fun f ->
          charge ~target;
          let v = Frame.pop f in
          f.Frame.pc <- (if Direct_ops.is_true cx v then next else t);
          Frame.Continue
    | POP_JUMP_IF_TRUE t ->
        fun f ->
          charge ~target;
          let v = Frame.pop f in
          f.Frame.pc <- (if Direct_ops.is_true cx v then t else next);
          Frame.Continue
    | JUMP_IF_FALSE_OR_POP t ->
        fun f ->
          charge ~target;
          let v = Frame.peek f 0 in
          if Direct_ops.is_true cx v then begin
            ignore (Frame.pop f);
            f.Frame.pc <- next
          end
          else f.Frame.pc <- t;
          Frame.Continue
    | JUMP_IF_TRUE_OR_POP t ->
        fun f ->
          charge ~target;
          let v = Frame.peek f 0 in
          if Direct_ops.is_true cx v then f.Frame.pc <- t
          else begin
            ignore (Frame.pop f);
            f.Frame.pc <- next
          end;
          Frame.Continue
    | BINARY_SUBSCR ->
        fun f ->
          charge ~target;
          let k = Frame.pop f in
          let obj = Frame.pop f in
          Frame.push f (Direct_ops.getitem cx obj k);
          f.Frame.pc <- next;
          Frame.Continue
    | STORE_SUBSCR ->
        fun f ->
          charge ~target;
          let v = Frame.pop f in
          let k = Frame.pop f in
          let obj = Frame.pop f in
          Direct_ops.setitem cx obj k v;
          f.Frame.pc <- next;
          Frame.Continue
    | RETURN_VALUE ->
        fun f ->
          charge ~target;
          Frame.Return (Frame.pop f)
    | RETURN_NONE ->
        let nil = Direct_ops.const cx Value.nil in
        fun _f ->
          charge ~target;
          Frame.Return nil
    | POP_TOP ->
        fun f ->
          charge ~target;
          ignore (Frame.pop f);
          f.Frame.pc <- next;
          Frame.Continue
    | DUP_TOP ->
        fun f ->
          charge ~target;
          Frame.push f (Frame.peek f 0);
          f.Frame.pc <- next;
          Frame.Continue
    | FOR_RANGE { var; cur; stop; step; exit } ->
        (* step variants: the two loop bodies (counting up / counting
           down) are pre-bound; the runtime sign guard picks one, as the
           reference handler's inline conditional does *)
        let iter cmp_op (f : (Direct_ops.t, Bytecode.code) Frame.t) c s st =
          let cond = Direct_ops.compare cx cmp_op c s in
          if Direct_ops.is_true cx cond then begin
            f.Frame.locals.(var) <- c;
            f.Frame.locals.(cur) <- Direct_ops.add cx c st;
            f.Frame.pc <- next
          end
          else f.Frame.pc <- exit
        in
        let up = iter Ops_intf.Lt and down = iter Ops_intf.Gt in
        fun f ->
          charge ~target;
          let c = f.Frame.locals.(cur) in
          let s = f.Frame.locals.(stop) in
          let st = f.Frame.locals.(step) in
          let stepi = Direct_ops.guard_int cx st in
          (if stepi > 0 then up else down) f c s st;
          Frame.Continue
    | FOR_ITER { var; seq; idx; exit } ->
        let one = Direct_ops.const cx (Value.of_int 1) in
        fun f ->
          charge ~target;
          let s = f.Frame.locals.(seq) in
          let i = f.Frame.locals.(idx) in
          let len = Direct_ops.len_ cx s in
          let cond = Direct_ops.compare cx Ops_intf.Lt i len in
          if Direct_ops.is_true cx cond then begin
            let v = Direct_ops.getitem cx s i in
            f.Frame.locals.(var) <- v;
            f.Frame.locals.(idx) <- Direct_ops.add cx i one;
            f.Frame.pc <- next
          end
          else f.Frame.pc <- exit;
          Frame.Continue
    | BUILD_LIST _ | BUILD_TUPLE _ | BUILD_DICT _ | BUILD_SET _
    | DELETE_SUBSCR | GET_SLICE | SET_SLICE | UNPACK_SEQUENCE _
    | GET_INDEXABLE | MAKE_FUNCTION _ | MAKE_CLASS _ ->
        (* cold bytecodes: pre-bind only the dispatch charge and run the
           reference handler *)
        fun f ->
          charge ~target;
          D_ref.step_ref cx globals f
  in
  let steps = Array.init n (fun pc -> step_of pc instrs.(pc)) in
  (* Superinstructions: fuse the hottest shapes.  The fused closure sits
     at the head pc only — every pc keeps its standalone step above, so
     a jump landing inside a fused pair behaves exactly as before — and
     interior pcs must not be loop headers (the driver consults the JIT
     portal between bytecodes; fusing across a merge point would skip
     it).  Interior dispatch charges are emitted inside the fused
     closure in reference order, so counters cannot tell the loops
     apart; only interior stack traffic (free in the cost model) is
     elided, which is GC-safe because the operands stay reachable
     through the locals. *)
  let interior pc = pc < n && not hdrs.(pc) in
  let tag i = Bytecode.tag instrs.(i) in
  let fused pc =
    (* two-operand loads: x and y resolved at translate time to either a
       local slot read or a hoisted constant *)
    let operand2 =
      match instrs.(pc) with
      | LOAD_FAST a when interior (pc + 1) -> (
          match instrs.(pc + 1) with
          | LOAD_FAST b ->
              Some (tag pc, tag (pc + 1),
                    (fun (f : (Direct_ops.t, Bytecode.code) Frame.t) ->
                       f.Frame.locals.(a)),
                    (fun (f : (Direct_ops.t, Bytecode.code) Frame.t) ->
                       f.Frame.locals.(b)),
                    None)
          | LOAD_CONST v ->
              let c = Direct_ops.const cx v in
              Some (tag pc, tag (pc + 1),
                    (fun (f : (Direct_ops.t, Bytecode.code) Frame.t) ->
                       f.Frame.locals.(a)),
                    (fun _ -> c),
                    Some c)
          | _ -> None)
      | _ -> None
    in
    match operand2 with
    | Some (t0, t1, getx, gety, yconst) when interior (pc + 2) -> (
        let t2 = tag (pc + 2) in
        match instrs.(pc + 2) with
        | BINARY op -> (
            let fn = binary_fn op in
            let nx = pc + 3 in
            match if interior nx then Some instrs.(nx) else None with
            | Some (STORE_FAST s) ->
                (* c = a op b : no operand stack traffic at all *)
                let t3 = tag nx in
                let nx4 = nx + 1 in
                Some
                  (fun f ->
                    charge ~target:t0;
                    let x = getx f in
                    charge ~target:t1;
                    let y = gety f in
                    charge ~target:t2;
                    let r = fn cx x y in
                    charge ~target:t3;
                    f.Frame.locals.(s) <- r;
                    f.Frame.pc <- nx4;
                    Frame.Continue)
            | _ ->
                Some
                  (fun f ->
                    charge ~target:t0;
                    let x = getx f in
                    charge ~target:t1;
                    let y = gety f in
                    charge ~target:t2;
                    Frame.push f (fn cx x y);
                    f.Frame.pc <- nx;
                    Frame.Continue))
        | COMPARE op -> (
            let nx = pc + 3 in
            match if interior nx then Some instrs.(nx) else None with
            | Some (POP_JUMP_IF_FALSE t) ->
                (* if a op b : full guard shape, branch straight off the
                   comparison result *)
                let t3 = tag nx in
                let nx4 = nx + 1 in
                Some
                  (fun f ->
                    charge ~target:t0;
                    let x = getx f in
                    charge ~target:t1;
                    let y = gety f in
                    charge ~target:t2;
                    let r = Direct_ops.compare cx op x y in
                    charge ~target:t3;
                    f.Frame.pc <-
                      (if Direct_ops.is_true cx r then nx4 else t);
                    Frame.Continue)
            | Some (POP_JUMP_IF_TRUE t) ->
                let t3 = tag nx in
                let nx4 = nx + 1 in
                Some
                  (fun f ->
                    charge ~target:t0;
                    let x = getx f in
                    charge ~target:t1;
                    let y = gety f in
                    charge ~target:t2;
                    let r = Direct_ops.compare cx op x y in
                    charge ~target:t3;
                    f.Frame.pc <-
                      (if Direct_ops.is_true cx r then t else nx4);
                    Frame.Continue)
            | _ ->
                Some
                  (fun f ->
                    charge ~target:t0;
                    let x = getx f in
                    charge ~target:t1;
                    let y = gety f in
                    charge ~target:t2;
                    Frame.push f (Direct_ops.compare cx op x y);
                    f.Frame.pc <- nx;
                    Frame.Continue))
        | BINARY_SUBSCR -> (
            (* a[i] with both operands pre-resolved *)
            let nx = pc + 3 in
            match yconst with
            | Some k when Value.is_str k ->
                (* string-constant key: the dict probe's hash is hoisted
                   to translate time ([py_hash] charges nothing, so the
                   counters cannot tell; test_value_diff.ml holds this) *)
                let khash = Value.py_hash k in
                Some
                  (fun f ->
                    charge ~target:t0;
                    let obj = getx f in
                    charge ~target:t1;
                    charge ~target:t2;
                    Frame.push f (Direct_ops.getitem_h cx obj k khash);
                    f.Frame.pc <- nx;
                    Frame.Continue)
            | _ ->
                Some
                  (fun f ->
                    charge ~target:t0;
                    let obj = getx f in
                    charge ~target:t1;
                    let k = gety f in
                    charge ~target:t2;
                    Frame.push f (Direct_ops.getitem cx obj k);
                    f.Frame.pc <- nx;
                    Frame.Continue))
        | _ -> None)
    | _ -> (
        match instrs.(pc) with
        | LOAD_FAST a when interior (pc + 1) -> (
            let t0 = tag pc and t1 = tag (pc + 1) in
            let nx = pc + 2 in
            match instrs.(pc + 1) with
            | STORE_FAST s ->
                (* b = a : local-to-local copy *)
                Some
                  (fun f ->
                    charge ~target:t0;
                    let x = f.Frame.locals.(a) in
                    charge ~target:t1;
                    f.Frame.locals.(s) <- x;
                    f.Frame.pc <- nx;
                    Frame.Continue)
            | BINARY op -> (
                (* <stack> op a : right operand from the local *)
                let fn = binary_fn op in
                match if interior nx then Some instrs.(nx) else None with
                | Some (STORE_FAST s) ->
                    let t2 = tag nx in
                    let nx3 = nx + 1 in
                    Some
                      (fun f ->
                        charge ~target:t0;
                        let y = f.Frame.locals.(a) in
                        charge ~target:t1;
                        let x = Frame.pop f in
                        let r = fn cx x y in
                        charge ~target:t2;
                        f.Frame.locals.(s) <- r;
                        f.Frame.pc <- nx3;
                        Frame.Continue)
                | _ ->
                    Some
                      (fun f ->
                        charge ~target:t0;
                        let y = f.Frame.locals.(a) in
                        charge ~target:t1;
                        let x = Frame.pop f in
                        Frame.push f (fn cx x y);
                        f.Frame.pc <- nx;
                        Frame.Continue))
            | BINARY_SUBSCR ->
                (* <stack>[a] : subscript from the local *)
                Some
                  (fun f ->
                    charge ~target:t0;
                    let k = f.Frame.locals.(a) in
                    charge ~target:t1;
                    let obj = Frame.pop f in
                    Frame.push f (Direct_ops.getitem cx obj k);
                    f.Frame.pc <- nx;
                    Frame.Continue)
            | LOAD_ATTR name ->
                (* a.name : attribute read off the local *)
                Some
                  (fun f ->
                    charge ~target:t0;
                    let obj = f.Frame.locals.(a) in
                    charge ~target:t1;
                    Frame.push f (Direct_ops.getattr cx obj name);
                    f.Frame.pc <- nx;
                    Frame.Continue)
            | _ -> None)
        | LOAD_CONST v when interior (pc + 1) -> (
            let c = Direct_ops.const cx v in
            let t0 = tag pc and t1 = tag (pc + 1) in
            let nx = pc + 2 in
            match instrs.(pc + 1) with
            | BINARY_SUBSCR ->
                (* <stack>[<const>] : dict reads with literal keys; for
                   string keys the probe hash is hoisted to translate
                   time *)
                let get =
                  if Value.is_str c then
                    let khash = Value.py_hash c in
                    fun obj -> Direct_ops.getitem_h cx obj c khash
                  else fun obj -> Direct_ops.getitem cx obj c
                in
                Some
                  (fun f ->
                    charge ~target:t0;
                    charge ~target:t1;
                    let obj = Frame.pop f in
                    Frame.push f (get obj);
                    f.Frame.pc <- nx;
                    Frame.Continue)
            | STORE_FAST s ->
                (* b = <const> : constant hoisted at translate time *)
                Some
                  (fun f ->
                    charge ~target:t0;
                    charge ~target:t1;
                    f.Frame.locals.(s) <- c;
                    f.Frame.pc <- nx;
                    Frame.Continue)
            | BINARY op -> (
                (* <stack> op <const> : the tail of every x*2+1 chain *)
                let fn = binary_fn op in
                match if interior nx then Some instrs.(nx) else None with
                | Some (STORE_FAST s) ->
                    let t2 = tag nx in
                    let nx3 = nx + 1 in
                    Some
                      (fun f ->
                        charge ~target:t0;
                        charge ~target:t1;
                        let x = Frame.pop f in
                        let r = fn cx x c in
                        charge ~target:t2;
                        f.Frame.locals.(s) <- r;
                        f.Frame.pc <- nx3;
                        Frame.Continue)
                | _ ->
                    Some
                      (fun f ->
                        charge ~target:t0;
                        charge ~target:t1;
                        let x = Frame.pop f in
                        Frame.push f (fn cx x c);
                        f.Frame.pc <- nx;
                        Frame.Continue))
            | COMPARE op -> (
                (* <stack> op <const>, usually feeding a conditional *)
                match if interior nx then Some instrs.(nx) else None with
                | Some (POP_JUMP_IF_FALSE t) ->
                    let t2 = tag nx in
                    let nx3 = nx + 1 in
                    Some
                      (fun f ->
                        charge ~target:t0;
                        charge ~target:t1;
                        let x = Frame.pop f in
                        let r = Direct_ops.compare cx op x c in
                        charge ~target:t2;
                        f.Frame.pc <-
                          (if Direct_ops.is_true cx r then nx3 else t);
                        Frame.Continue)
                | Some (POP_JUMP_IF_TRUE t) ->
                    let t2 = tag nx in
                    let nx3 = nx + 1 in
                    Some
                      (fun f ->
                        charge ~target:t0;
                        charge ~target:t1;
                        let x = Frame.pop f in
                        let r = Direct_ops.compare cx op x c in
                        charge ~target:t2;
                        f.Frame.pc <-
                          (if Direct_ops.is_true cx r then t else nx3);
                        Frame.Continue)
                | _ ->
                    Some
                      (fun f ->
                        charge ~target:t0;
                        charge ~target:t1;
                        let x = Frame.pop f in
                        Frame.push f (Direct_ops.compare cx op x c);
                        f.Frame.pc <- nx;
                        Frame.Continue))
            | _ -> None)
        | STORE_FAST s when interior (pc + 1) -> (
            let t0 = tag pc and t1 = tag (pc + 1) in
            let nx = pc + 2 in
            match instrs.(pc + 1) with
            | LOAD_FAST a ->
                (* store one local, immediately read another *)
                Some
                  (fun f ->
                    charge ~target:t0;
                    f.Frame.locals.(s) <- Frame.pop f;
                    charge ~target:t1;
                    Frame.push f f.Frame.locals.(a);
                    f.Frame.pc <- nx;
                    Frame.Continue)
            | JUMP t ->
                (* loop latch: store the induction value and branch *)
                Some
                  (fun f ->
                    charge ~target:t0;
                    f.Frame.locals.(s) <- Frame.pop f;
                    charge ~target:t1;
                    f.Frame.pc <- t;
                    Frame.Continue)
            | _ -> None)
        | JUMP t when interior t -> (
            (* forward jump into a plain local load (if/else join): run
               the landing instruction in the same step *)
            match instrs.(t) with
            | LOAD_FAST a ->
                let t0 = tag pc and t1 = tag t in
                let nx = t + 1 in
                Some
                  (fun f ->
                    charge ~target:t0;
                    charge ~target:t1;
                    Frame.push f f.Frame.locals.(a);
                    f.Frame.pc <- nx;
                    Frame.Continue)
            | _ -> None)
        | BINARY op when interior (pc + 1) -> (
            let fn = binary_fn op in
            match instrs.(pc + 1) with
            | STORE_FAST s -> (
                (* tail of mixed-operand expressions: result straight to
                   the local, folding a trailing loop-latch jump in *)
                let t0 = tag pc and t1 = tag (pc + 1) in
                let nx = pc + 2 in
                match if interior nx then Some instrs.(nx) else None with
                | Some (JUMP t) ->
                    let t2 = tag nx in
                    Some
                      (fun f ->
                        charge ~target:t0;
                        let y = Frame.pop f in
                        let x = Frame.pop f in
                        let r = fn cx x y in
                        charge ~target:t1;
                        f.Frame.locals.(s) <- r;
                        charge ~target:t2;
                        f.Frame.pc <- t;
                        Frame.Continue)
                | _ ->
                    Some
                      (fun f ->
                        charge ~target:t0;
                        let y = Frame.pop f in
                        let x = Frame.pop f in
                        let r = fn cx x y in
                        charge ~target:t1;
                        f.Frame.locals.(s) <- r;
                        f.Frame.pc <- nx;
                        Frame.Continue))
            | LOAD_CONST v when interior (pc + 2) -> (
                (* op-const-op chains like x*2+1: fold the middle
                   constant load into one superinstruction *)
                match instrs.(pc + 2) with
                | BINARY op2 ->
                    let c = Direct_ops.const cx v in
                    let fn2 = binary_fn op2 in
                    let t0 = tag pc and t1 = tag (pc + 1) in
                    let t2 = tag (pc + 2) in
                    let nx = pc + 3 in
                    Some
                      (fun f ->
                        charge ~target:t0;
                        let y = Frame.pop f in
                        let x = Frame.pop f in
                        let r = fn cx x y in
                        charge ~target:t1;
                        charge ~target:t2;
                        Frame.push f (fn2 cx r c);
                        f.Frame.pc <- nx;
                        Frame.Continue)
                | _ -> None)
            | _ -> None)
        | COMPARE op when interior (pc + 1) -> (
            let t0 = tag pc in
            let t1 = tag (pc + 1) in
            let nx = pc + 2 in
            match instrs.(pc + 1) with
            | POP_JUMP_IF_FALSE t ->
                Some
                  (fun f ->
                    charge ~target:t0;
                    let y = Frame.pop f in
                    let x = Frame.pop f in
                    let r = Direct_ops.compare cx op x y in
                    charge ~target:t1;
                    f.Frame.pc <- (if Direct_ops.is_true cx r then nx else t);
                    Frame.Continue)
            | POP_JUMP_IF_TRUE t ->
                Some
                  (fun f ->
                    charge ~target:t0;
                    let y = Frame.pop f in
                    let x = Frame.pop f in
                    let r = Direct_ops.compare cx op x y in
                    charge ~target:t1;
                    f.Frame.pc <- (if Direct_ops.is_true cx r then t else nx);
                    Frame.Continue)
            | _ -> None)
        | _ -> None)
  in
  for pc = 0 to n - 1 do
    match fused pc with Some s -> steps.(pc) <- s | None -> ()
  done;
  steps
