(** The pylite bytecode interpreter, written once against the OPS seam.

    Instantiated with {!Mtj_rjit.Direct_ops} this is "the interpreter";
    instantiated with {!Mtj_rjit.Trace_ops} it is the meta-interpreter
    recording traces.  Handler discipline: within one bytecode all
    guard-recording / error-raising operations run before the first heap
    side effect, and [pc] is committed last. *)

open Mtj_rt
open Mtj_rjit
open Bytecode

module Step (O : Ops_intf.OPS) = struct
  type frame = (O.t, Bytecode.code) Frame.t

  let err = Semantics.err

  let make_frame cx code parent : frame =
    Frame.create ~code ~code_ref:code.Bytecode.id ~nlocals:code.Bytecode.nlocals
      ~stack_size:code.Bytecode.stacksize
      ~default:(O.const cx Value.Nil)
      ~parent

  (* pop [n] operands into a fresh positional-order array (top of stack
     is the last argument) *)
  let pop_args cx (f : frame) n : O.t array =
    if n = 0 then [||]
    else begin
      let args = Array.make n (O.const cx Value.Nil) in
      for i = n - 1 downto 0 do
        args.(i) <- Frame.pop f
      done;
      args
    end

  (* [first :: args] as a single fresh array (one allocation, unlike
     [Array.append [| first |] args]) — the receiver-prepend of every
     method call *)
  let prepend (first : O.t) (args : O.t array) : O.t array =
    let n = Array.length args in
    let out = Array.make (n + 1) first in
    Array.blit args 0 out 1 n;
    out

  (* dispatch a call to any callable value; [args] is in positional
     order (collected off the stack by [pop_args], no list building) *)
  let rec call_value cx (f : frame) callee (args : O.t array) :
      (O.t, Bytecode.code) Frame.outcome =
    let nargs = Array.length args in
    match O.concrete callee with
    | Value.Obj { payload = Value.Func fn; _ } ->
        if fn.Value.code_ref < 0 then begin
          let fn = O.guard_func cx callee in
          let b = Builtin.of_tag (-fn.Value.code_ref - 1) in
          let r = O.call_builtin cx b args in
          Frame.push f r;
          f.Frame.pc <- f.Frame.pc + 1;
          Frame.Continue
        end
        else begin
          let fn = O.guard_func cx callee in
          if fn.Value.arity <> nargs then
            err "%s() takes %d arguments (%d given)" fn.Value.func_name
              fn.Value.arity nargs;
          let code = Code_table.lookup fn.Value.code_ref in
          f.Frame.pc <- f.Frame.pc + 1;
          let nf = make_frame cx code (Some f) in
          Array.blit args 0 nf.Frame.locals 0 nargs;
          Frame.Call nf
        end
    | Value.Obj { payload = Value.Class _; _ } ->
        let inst = O.alloc_instance cx callee in
        (match O.class_init_func cx callee with
        | Some initf ->
            if initf.Value.arity <> nargs + 1 then
              err "__init__ takes %d arguments (%d given)" initf.Value.arity
                (nargs + 1);
            let code = Code_table.lookup initf.Value.code_ref in
            Frame.push f inst;
            f.Frame.pc <- f.Frame.pc + 1;
            let nf = make_frame cx code (Some f) in
            nf.Frame.discard_return <- true;
            nf.Frame.locals.(0) <- inst;
            Array.blit args 0 nf.Frame.locals 1 nargs;
            Frame.Call nf
        | None ->
            if nargs <> 0 then err "this class takes no constructor arguments";
            Frame.push f inst;
            f.Frame.pc <- f.Frame.pc + 1;
            Frame.Continue)
    | Value.Obj { payload = Value.Method _; _ } -> (
        match O.method_parts cx callee with
        | Some (func, recv) -> call_value cx f func (prepend recv args)
        | None -> err "broken bound method")
    | v -> err "%s object is not callable" (Value.type_name v)

  let binary cx op a b =
    match (op : Ast.binop) with
    | Ast.Add -> O.add cx a b
    | Ast.Sub -> O.sub cx a b
    | Ast.Mult -> O.mul cx a b
    | Ast.Div -> O.truediv cx a b
    | Ast.Floordiv -> O.floordiv cx a b
    | Ast.Mod -> O.modulo cx a b
    | Ast.Pow -> O.pow cx a b
    | Ast.Lshift -> O.lshift cx a b
    | Ast.Rshift -> O.rshift cx a b
    | Ast.Bitand -> O.bitand cx a b
    | Ast.Bitor -> O.bitor cx a b
    | Ast.Bitxor -> O.bitxor cx a b

  let step cx (globals : Globals.t) (f : frame) :
      (O.t, Bytecode.code) Frame.outcome =
    let pc = f.Frame.pc in
    let instr = f.Frame.code.Bytecode.instrs.(pc) in
    let continue_at next =
      f.Frame.pc <- next;
      Frame.Continue
    in
    let next () = continue_at (pc + 1) in
    match instr with
    | NOP -> next ()
    | LOAD_CONST v ->
        Frame.push f (O.const cx v);
        next ()
    | LOAD_FAST slot ->
        Frame.push f f.Frame.locals.(slot);
        next ()
    | STORE_FAST slot ->
        f.Frame.locals.(slot) <- Frame.pop f;
        next ()
    | LOAD_GLOBAL name ->
        Frame.push f (O.load_global cx globals name);
        next ()
    | STORE_GLOBAL name ->
        O.store_global cx globals name (Frame.pop f);
        next ()
    | LOAD_ATTR name ->
        let obj = Frame.pop f in
        Frame.push f (O.getattr cx obj name);
        next ()
    | STORE_ATTR name ->
        let v = Frame.pop f in
        let obj = Frame.pop f in
        O.setattr cx obj name v;
        next ()
    | LOAD_METHOD name ->
        let obj = Frame.pop f in
        let callable, self = O.load_method cx obj name in
        Frame.push f callable;
        Frame.push f self;
        next ()
    | CALL_METHOD nargs ->
        let args = pop_args cx f nargs in
        let self = Frame.pop f in
        let callable = Frame.pop f in
        if O.concrete self = Value.Nil then call_value cx f callable args
        else call_value cx f callable (prepend self args)
    | CALL_FUNCTION nargs ->
        let args = pop_args cx f nargs in
        let callee = Frame.pop f in
        call_value cx f callee args
    | BINARY op ->
        let b = Frame.pop f in
        let a = Frame.pop f in
        Frame.push f (binary cx op a b);
        next ()
    | UNARY_NEG ->
        let a = Frame.pop f in
        Frame.push f (O.neg cx a);
        next ()
    | UNARY_NOT ->
        let a = Frame.pop f in
        Frame.push f (O.not_ cx a);
        next ()
    | COMPARE op ->
        let b = Frame.pop f in
        let a = Frame.pop f in
        Frame.push f (O.compare cx op a b);
        next ()
    | JUMP t -> continue_at t
    | POP_JUMP_IF_FALSE t ->
        let v = Frame.pop f in
        if O.is_true cx v then next () else continue_at t
    | POP_JUMP_IF_TRUE t ->
        let v = Frame.pop f in
        if O.is_true cx v then continue_at t else next ()
    | JUMP_IF_FALSE_OR_POP t ->
        let v = Frame.peek f 0 in
        if O.is_true cx v then begin
          ignore (Frame.pop f);
          next ()
        end
        else continue_at t
    | JUMP_IF_TRUE_OR_POP t ->
        let v = Frame.peek f 0 in
        if O.is_true cx v then continue_at t
        else begin
          ignore (Frame.pop f);
          next ()
        end
    | BUILD_LIST n ->
        let items = Array.make n (O.const cx Value.Nil) in
        for i = n - 1 downto 0 do
          items.(i) <- Frame.pop f
        done;
        Frame.push f (O.make_list cx items);
        next ()
    | BUILD_TUPLE n ->
        let items = Array.make n (O.const cx Value.Nil) in
        for i = n - 1 downto 0 do
          items.(i) <- Frame.pop f
        done;
        Frame.push f (O.make_tuple cx items);
        next ()
    | BUILD_DICT n ->
        let pairs = Array.make n (O.const cx Value.Nil, O.const cx Value.Nil) in
        for i = n - 1 downto 0 do
          let v = Frame.pop f in
          let k = Frame.pop f in
          pairs.(i) <- (k, v)
        done;
        Frame.push f (O.make_dict cx pairs);
        next ()
    | BUILD_SET n ->
        let items = Array.make n (O.const cx Value.Nil) in
        for i = n - 1 downto 0 do
          items.(i) <- Frame.pop f
        done;
        Frame.push f (O.make_set cx items);
        next ()
    | BINARY_SUBSCR ->
        let k = Frame.pop f in
        let obj = Frame.pop f in
        Frame.push f (O.getitem cx obj k);
        next ()
    | STORE_SUBSCR ->
        let v = Frame.pop f in
        let k = Frame.pop f in
        let obj = Frame.pop f in
        O.setitem cx obj k v;
        next ()
    | DELETE_SUBSCR ->
        let k = Frame.pop f in
        let obj = Frame.pop f in
        ignore (O.call_builtin cx Builtin.Del_item [| obj; k |]);
        next ()
    | GET_SLICE ->
        let hi = Frame.pop f in
        let lo = Frame.pop f in
        let obj = Frame.pop f in
        Frame.push f (O.call_builtin cx Builtin.Slice_get [| obj; lo; hi |]);
        next ()
    | SET_SLICE ->
        let v = Frame.pop f in
        let hi = Frame.pop f in
        let lo = Frame.pop f in
        let obj = Frame.pop f in
        ignore (O.call_builtin cx Builtin.Slice_set [| obj; lo; hi; v |]);
        next ()
    | RETURN_VALUE -> Frame.Return (Frame.pop f)
    | RETURN_NONE -> Frame.Return (O.const cx Value.Nil)
    | POP_TOP ->
        ignore (Frame.pop f);
        next ()
    | DUP_TOP ->
        Frame.push f (Frame.peek f 0);
        next ()
    | UNPACK_SEQUENCE n ->
        let seq = Frame.pop f in
        let items = O.unpack cx seq n in
        for i = n - 1 downto 0 do
          Frame.push f items.(i)
        done;
        next ()
    | GET_INDEXABLE ->
        let v = Frame.pop f in
        Frame.push f (O.call_builtin cx Builtin.Indexable [| v |]);
        next ()
    | FOR_RANGE { var; cur; stop; step; exit } ->
        let c = f.Frame.locals.(cur) in
        let s = f.Frame.locals.(stop) in
        let st = f.Frame.locals.(step) in
        let stepi = O.guard_int cx st in
        let cond =
          if stepi > 0 then O.compare cx Ops_intf.Lt c s
          else O.compare cx Ops_intf.Gt c s
        in
        if O.is_true cx cond then begin
          f.Frame.locals.(var) <- c;
          f.Frame.locals.(cur) <- O.add cx c st;
          next ()
        end
        else continue_at exit
    | FOR_ITER { var; seq; idx; exit } ->
        let s = f.Frame.locals.(seq) in
        let i = f.Frame.locals.(idx) in
        let n = O.len_ cx s in
        let cond = O.compare cx Ops_intf.Lt i n in
        if O.is_true cx cond then begin
          let v = O.getitem cx s i in
          f.Frame.locals.(var) <- v;
          f.Frame.locals.(idx) <- O.add cx i (O.const cx (Value.Int 1));
          next ()
        end
        else continue_at exit
    | MAKE_FUNCTION { code_ref; fname; arity } ->
        (* function objects are created during (cold) module setup *)
        let fv =
          Gc_sim.obj
            (Ctx.gc (O.rt cx))
            (Value.Func
               {
                 func_id = code_ref;
                 func_name = fname;
                 arity;
                 code_ref;
                 captured = [||];
               })
        in
        Frame.push f (O.const cx fv);
        next ()
    | MAKE_CLASS { cls_name; parent; methods } ->
        let parent_obj =
          match parent with
          | None -> None
          | Some pname -> (
              match O.concrete (O.load_global cx globals pname) with
              | Value.Obj ({ payload = Value.Class _; _ } as p) -> Some p
              | v -> err "class parent %s is %s" pname (Value.type_name v))
        in
        let n = List.length methods in
        let method_values = pop_args cx f n in
        let attrs =
          List.mapi
            (fun i name -> (name, O.concrete method_values.(i)))
            methods
        in
        (* instances of a subclass share the parent's layout prefix *)
        let layout =
          match parent_obj with
          | Some { Value.payload = Value.Class pc; _ } ->
              Array.copy pc.Value.layout
          | _ -> [||]
        in
        let next_cls_id = Code_table.fresh_id () in
        let cls =
          Gc_sim.obj
            (Ctx.gc (O.rt cx))
            (Value.Class
               {
                 Value.cls_id = next_cls_id;
                 cls_name;
                 layout;
                 attrs;
                 parent = parent_obj;
               })
        in
        Frame.push f (O.const cx cls);
        next ()
end
