(** The pylite virtual machine: a CPython-style bytecode interpreter for
    a Python subset, written once against the {!Mtj_rjit.Ops_intf.OPS}
    seam and driven by the generic meta-tracing JIT
    ({!Mtj_rjit.Driver.Make}).

    The same VM models both sides of Table I: with
    {!Mtj_core.Profile.cpython} and the JIT disabled it stands in for
    CPython; with {!Mtj_core.Profile.rpython_interp} it is the
    RPython-translated interpreter, with or without the meta-tracing
    JIT ({!Mtj_core.Config.jit_enabled}).

    {[
      let vm = Vm.create ~config:Mtj_core.Config.default () in
      match Vm.run_source vm "print(1 + 2)" with
      | Mtj_rjit.Driver.Completed _ -> print_string (Vm.output vm)
      | _ -> prerr_endline "failed"
    ]} *)

type t

val create :
  ?config:Mtj_core.Config.t -> ?profile:Mtj_core.Profile.t -> unit -> t
(** Fresh VM: its own machine engine, GC, globals (with builtins and the
    [math] module bound) and JIT driver. [profile] sets the interpreter's
    cost model (default {!Mtj_core.Profile.rpython_interp}). *)

val compile : string -> Bytecode.code
(** Compile source to bytecode. Raises {!Parser.Syntax_error} or
    {!Compiler.Compile_error} on invalid programs. VM-independent: code
    objects live in a global table keyed by [code_ref]. *)

val run_code : t -> Bytecode.code -> Mtj_rjit.Driver.outcome
val run_source : t -> string -> Mtj_rjit.Driver.outcome

type bundle
(** Everything one source string compiles to — the entry code object,
    every registered code object and the id watermark.  Immutable
    bytecode with scalar constants only, so a bundle is context-free:
    it may be published to {!Mtj_rjit.Sharedcache} and imported by a VM
    on any domain, and a warm (imported) run's simulated counters are
    byte-identical to a cold (compiled) run's. *)

val compile_bundle : string -> bundle
(** Compile source and snapshot the resulting code-table state.  Call
    on a freshly created VM's domain (the table must hold exactly this
    program). *)

val import_bundle : t -> bundle -> unit
(** Re-register a bundle's code objects into this domain's table,
    replacing its contents.  Must run right after {!create} (which
    reset the table), before the VM executes anything. *)

val run_bundle : t -> bundle -> Mtj_rjit.Driver.outcome
(** Run a bundle's entry code ({!import_bundle} first on warm VMs). *)

val bundle_size : bundle -> int
(** Number of code objects in the bundle (what a warm request records
    as shared-cache code hits). *)

val export_profile : t -> Mtj_rjit.Traceprofile.t
(** Snapshot this VM's learned trace profile — compiled loop sites
    (with their converged tier) and threaded-translated code refs —
    as a context-free artifact for {!Mtj_rjit.Sharedcache}.  Call after
    an unseeded run so the profile is deterministic per program and
    config. *)

val seed_profile : t -> Mtj_rjit.Traceprofile.t -> unit
(** Seed a fresh VM from a publisher's profile: hot loop sites start
    one header visit short of the tracing threshold (carrying the
    publisher's promotion decision as a hint) and profiled code objects
    are translated to threaded step arrays up front.  Must run after
    {!import_bundle}, before the VM executes anything.  Changes only
    when the simulated machine traces, never program output. *)

val run :
  ?config:Mtj_core.Config.t ->
  ?profile:Mtj_core.Profile.t ->
  string ->
  Mtj_rjit.Driver.outcome * t
(** Convenience: fresh VM, compile and run, return the outcome and the
    VM for inspection. *)

val output : t -> string
(** Everything the program printed (kept off stdout for the harness). *)

val rtc : t -> Mtj_rt.Ctx.t
val engine : t -> Mtj_machine.Engine.t
val jitlog : t -> Mtj_rjit.Jitlog.t
val globals : t -> Mtj_rjit.Globals.t
