(** The pylite virtual machine: a CPython-style bytecode interpreter for
    a Python subset, written once against the {!Mtj_rjit.Ops_intf.OPS}
    seam and driven by the generic meta-tracing JIT
    ({!Mtj_rjit.Driver.Make}).

    The same VM models both sides of Table I: with
    {!Mtj_core.Profile.cpython} and the JIT disabled it stands in for
    CPython; with {!Mtj_core.Profile.rpython_interp} it is the
    RPython-translated interpreter, with or without the meta-tracing
    JIT ({!Mtj_core.Config.jit_enabled}).

    {[
      let vm = Vm.create ~config:Mtj_core.Config.default () in
      match Vm.run_source vm "print(1 + 2)" with
      | Mtj_rjit.Driver.Completed _ -> print_string (Vm.output vm)
      | _ -> prerr_endline "failed"
    ]} *)

type t

val create :
  ?config:Mtj_core.Config.t -> ?profile:Mtj_core.Profile.t -> unit -> t
(** Fresh VM: its own machine engine, GC, globals (with builtins and the
    [math] module bound) and JIT driver. [profile] sets the interpreter's
    cost model (default {!Mtj_core.Profile.rpython_interp}). *)

val compile : string -> Bytecode.code
(** Compile source to bytecode. Raises {!Parser.Syntax_error} or
    {!Compiler.Compile_error} on invalid programs. VM-independent: code
    objects live in a global table keyed by [code_ref]. *)

val run_code : t -> Bytecode.code -> Mtj_rjit.Driver.outcome
val run_source : t -> string -> Mtj_rjit.Driver.outcome

val run :
  ?config:Mtj_core.Config.t ->
  ?profile:Mtj_core.Profile.t ->
  string ->
  Mtj_rjit.Driver.outcome * t
(** Convenience: fresh VM, compile and run, return the outcome and the
    VM for inspection. *)

val output : t -> string
(** Everything the program printed (kept off stdout for the harness). *)

val rtc : t -> Mtj_rt.Ctx.t
val engine : t -> Mtj_machine.Engine.t
val jitlog : t -> Mtj_rjit.Jitlog.t
val globals : t -> Mtj_rjit.Globals.t
