(** Abstract syntax of pylite, the hosted Python subset.

    Supported: ints (unbounded via the bignum runtime), floats, strings,
    booleans, None, lists, tuples, dicts, sets; arithmetic, comparison
    (including [is]/[in]), boolean operators; attribute and subscript
    access; 2-bound slices; [if]/[elif]/[else], [while], [for ... in]
    (over ranges, sequences, dicts), [break]/[continue]; function and
    class definitions (single inheritance, methods, [__init__]);
    [return], [pass], [global], [del d[k]]; calls with positional
    arguments.

    Not supported (and not needed by the benchmark suite): closures /
    nested functions, generators, exceptions ([try]/[raise]), keyword
    arguments, decorators, [with], imports (well-known modules such as
    [math] are pre-bound builtins). *)

type binop =
  | Add | Sub | Mult | Div | Floordiv | Mod | Pow
  | Lshift | Rshift | Bitand | Bitor | Bitxor

type unop = Neg | Not

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | None_lit
  | Name of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Cmp of Mtj_rjit.Ops_intf.cmp * expr * expr
  | Bool_op of [ `And | `Or ] * expr * expr
  | Call of expr * expr list
  | Attr of expr * string
  | Subscr of expr * expr
  | Slice of expr * expr option * expr option
  | List_lit of expr list
  | Tuple_lit of expr list
  | Dict_lit of (expr * expr) list
  | Set_lit of expr list
  | If_exp of expr * expr * expr  (* cond, then, else *)

type target =
  | T_name of string
  | T_attr of expr * string
  | T_subscr of expr * expr
  | T_slice of expr * expr option * expr option
  | T_tuple of string list

type stmt =
  | Expr_stmt of expr
  | Assign of target * expr
  | Aug_assign of target * binop * expr
  | If of (expr * stmt list) list * stmt list  (* arms, else *)
  | While of expr * stmt list
  | For of string list * expr * stmt list
      (* one or more loop variables (tuple unpacking), iterable, body *)
  | Def of string * string list * stmt list
  | Class of string * string option * stmt list  (* name, parent, body *)
  | Return of expr option
  | Break
  | Continue
  | Pass
  | Global of string list
  | Del of expr * expr  (* del d[k] *)

type program = stmt list
