(** Indentation-aware lexer for pylite. *)

exception Syntax_error of string

type token =
  | NAME of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | OP of string       (* operators and punctuation, by spelling *)
  | KW of string       (* keywords *)
  | NEWLINE
  | INDENT
  | DEDENT
  | EOF

let keywords =
  [ "def"; "class"; "if"; "elif"; "else"; "while"; "for"; "in"; "return";
    "break"; "continue"; "pass"; "and"; "or"; "not"; "True"; "False";
    "None"; "is"; "global"; "del"; "lambda" ]

let pp_token fmt = function
  | NAME s -> Format.fprintf fmt "NAME(%s)" s
  | INT i -> Format.fprintf fmt "INT(%d)" i
  | FLOAT f -> Format.fprintf fmt "FLOAT(%g)" f
  | STRING s -> Format.fprintf fmt "STRING(%S)" s
  | OP s -> Format.fprintf fmt "OP(%s)" s
  | KW s -> Format.fprintf fmt "KW(%s)" s
  | NEWLINE -> Format.fprintf fmt "NEWLINE"
  | INDENT -> Format.fprintf fmt "INDENT"
  | DEDENT -> Format.fprintf fmt "DEDENT"
  | EOF -> Format.fprintf fmt "EOF"

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* multi-character operators, longest first *)
let operators =
  [ "**="; "//="; "<<="; ">>="; "=="; "!="; "<="; ">="; "+="; "-="; "*=";
    "/="; "%="; "&="; "|="; "^="; "**"; "//"; "<<"; ">>"; "("; ")"; "[";
    "]"; "{"; "}"; ","; ":"; "."; ";"; "+"; "-"; "*"; "/"; "%"; "<"; ">";
    "="; "&"; "|"; "^"; "~" ]

let tokenize (src : string) : token list =
  let n = String.length src in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let indents = ref [ 0 ] in
  let paren_depth = ref 0 in
  let i = ref 0 in
  let line_start = ref true in
  let error fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let handle_indent width =
    let cur = List.hd !indents in
    if width > cur then begin
      indents := width :: !indents;
      emit INDENT
    end
    else begin
      while List.hd !indents > width do
        indents := List.tl !indents;
        emit DEDENT
      done;
      if List.hd !indents <> width then error "inconsistent indentation"
    end
  in
  while !i < n do
    if !line_start && !paren_depth = 0 then begin
      (* measure indentation; skip blank/comment lines *)
      let start = !i in
      let width = ref 0 in
      while !i < n && (src.[!i] = ' ' || src.[!i] = '\t') do
        width := !width + (if src.[!i] = '\t' then 8 else 1);
        incr i
      done;
      if !i >= n then ()
      else if src.[!i] = '\n' then begin
        incr i;
        ignore start
      end
      else if src.[!i] = '#' then begin
        while !i < n && src.[!i] <> '\n' do incr i done
      end
      else begin
        handle_indent !width;
        line_start := false
      end
    end
    else begin
      let c = src.[!i] in
      if c = ' ' || c = '\t' || c = '\r' then incr i
      else if c = '\\' && peek 1 = Some '\n' then i := !i + 2
      else if c = '#' then begin
        while !i < n && src.[!i] <> '\n' do incr i done
      end
      else if c = '\n' then begin
        incr i;
        if !paren_depth = 0 then begin
          emit NEWLINE;
          line_start := true
        end
      end
      else if is_digit c then begin
        let start = !i in
        while !i < n && is_digit src.[!i] do incr i done;
        if
          !i < n && src.[!i] = '.'
          && (match peek 1 with Some d -> is_digit d | None -> false)
        then begin
          incr i;
          while !i < n && is_digit src.[!i] do incr i done;
          if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
            incr i;
            if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
            while !i < n && is_digit src.[!i] do incr i done
          end;
          let lx = String.sub src start (!i - start) in
          (match float_of_string_opt lx with
          | Some f -> emit (FLOAT f)
          | None ->
              raise (Syntax_error ("invalid number literal: " ^ lx)))
        end
        else if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do incr i done;
          let lx = String.sub src start (!i - start) in
          (match float_of_string_opt lx with
          | Some f -> emit (FLOAT f)
          | None ->
              (* "42else": digits then a name — not an exponent after all *)
              raise (Syntax_error ("invalid number literal: " ^ lx)))
        end
        else
          let lx = String.sub src start (!i - start) in
          (match int_of_string_opt lx with
          | Some v -> emit (INT v)
          | None ->
              raise (Syntax_error ("invalid number literal: " ^ lx)))
      end
      else if is_name_start c then begin
        let start = !i in
        while !i < n && is_name_char src.[!i] do incr i done;
        let word = String.sub src start (!i - start) in
        if List.mem word keywords then emit (KW word) else emit (NAME word)
      end
      else if c = '\'' || c = '"' then begin
        let quote = c in
        incr i;
        let buf = Buffer.create 16 in
        let closed = ref false in
        while (not !closed) && !i < n do
          let c = src.[!i] in
          if c = quote then begin
            closed := true;
            incr i
          end
          else if c = '\\' && !i + 1 < n then begin
            (match src.[!i + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | '\\' -> Buffer.add_char buf '\\'
            | '\'' -> Buffer.add_char buf '\''
            | '"' -> Buffer.add_char buf '"'
            | '0' -> Buffer.add_char buf '\000'
            | other -> Buffer.add_char buf other);
            i := !i + 2
          end
          else begin
            Buffer.add_char buf c;
            incr i
          end
        done;
        if not !closed then error "unterminated string literal";
        emit (STRING (Buffer.contents buf))
      end
      else begin
        let matched =
          List.find_opt
            (fun op ->
              let len = String.length op in
              !i + len <= n && String.sub src !i len = op)
            operators
        in
        match matched with
        | Some op ->
            (match op with
            | "(" | "[" | "{" -> incr paren_depth
            | ")" | "]" | "}" -> decr paren_depth
            | _ -> ());
            i := !i + String.length op;
            emit (OP op)
        | None -> error "unexpected character %C" c
      end
    end
  done;
  (* close the final line and any open indentation *)
  (match !tokens with
  | NEWLINE :: _ | [] -> ()
  | _ -> emit NEWLINE);
  while List.hd !indents > 0 do
    indents := List.tl !indents;
    emit DEDENT
  done;
  emit EOF;
  List.rev !tokens
