(** The pylite virtual machine.

    Wires the language into the meta-tracing framework: with the JIT
    enabled and the RPython profile this models PyPy; with the JIT
    disabled it models "PyPy w/o JIT"; under the CPython profile (and no
    JIT) it models the reference CPython interpreter (Table I's three
    configurations). *)

open Mtj_core
open Mtj_rt
open Mtj_rjit

module Lang : Threaded.LANG with type code = Bytecode.code = struct
  type code = Bytecode.code

  let code_ref (c : code) = c.Bytecode.id
  let lookup_code = Code_table.lookup
  let nlocals (c : code) = c.Bytecode.nlocals
  let stack_size (c : code) = c.Bytecode.stacksize
  let loop_header (c : code) pc = c.Bytecode.headers.(pc)
  let opcode_at (c : code) pc = Bytecode.tag c.Bytecode.instrs.(pc)
  let name (c : code) = c.Bytecode.name

  module Step = Interp.Step

  (* the threaded-dispatch tier (Config.threaded_interp) *)
  let headers (c : code) = c.Bytecode.headers
  let threaded_code = Interp.threaded_code
  let lookup_threaded (c : code) = Code_table.lookup_threaded c.Bytecode.id
  let store_threaded (c : code) s = Code_table.store_threaded c.Bytecode.id s
end

module D = Driver.Make (Lang)

type t = { rtc : Ctx.t; driver : D.t }

(* names exposed as module-level globals *)
let global_builtins =
  Builtin.
    [ Len; Range2; Abs; Min2; Max2; Ord; Chr; To_int; To_float; To_str;
      Repr; Print; Sorted; Hashf; Sio_new; Annotate; Bigint_of; Powf;
      Encode_json ]

let bind_builtins rtc globals =
  List.iter
    (fun b ->
      Globals.define globals (Builtin.name b) (Builtins_impl.builtin_value rtc b))
    global_builtins;
  (* the math module is modelled as a class object with builtin attrs *)
  let math_attrs =
    [ ("sqrt", Builtin.Sqrt); ("sin", Builtin.Sin); ("cos", Builtin.Cos);
      ("floor", Builtin.Floor_f); ("pow", Builtin.Powf) ]
  in
  let math =
    Gc_sim.obj (Ctx.gc rtc)
      (Value.Class
         {
           Value.cls_id = -1;
           cls_name = "math";
           layout = [||];
           attrs =
             List.map
               (fun (n, b) -> (n, Builtins_impl.builtin_value rtc b))
               math_attrs;
           parent = None;
         })
  in
  Globals.define globals "math" math

let create ?(config = Config.default) ?(profile = Profile.rpython_interp) () =
  (* fresh per-VM code-id sequence: simulated behaviour must not depend
     on what compiled before us on this domain (see Code_table) *)
  Code_table.reset ();
  let rtc = Ctx.create ~config () in
  let globals = Globals.create () in
  bind_builtins rtc globals;
  let driver = D.create ~profile rtc globals in
  { rtc; driver }

let rtc t = t.rtc
let engine t = Ctx.engine t.rtc
let jitlog t = D.jitlog t.driver
let globals t = D.globals t.driver
let output t = Buffer.contents (Ctx.out t.rtc)

let compile = Compiler.compile_source

let run_code t (code : Bytecode.code) : Driver.outcome = D.run t.driver code

let run_source t (src : string) : Driver.outcome =
  run_code t (compile src)

(* --- compiled-program bundles (the shared serving cache) ---

   A bundle is everything one source string compiles to: the entry code
   object, every code object it registered, and the id watermark.  All
   of it is immutable bytecode with scalar constants, so a bundle is
   context-free and may be published to [Mtj_rjit.Sharedcache] and
   imported by a VM on any domain.  Importing reproduces exactly the
   code-table state a fresh compile would have built (ids restart at
   zero per VM), so a warm request's simulated behaviour is
   byte-identical to a cold one's: compilation itself charges nothing
   to the simulated machine, only host wall time. *)

type bundle = {
  b_entry : Bytecode.code;
  b_codes : Bytecode.code list;  (* sorted by id; includes [b_entry] *)
  b_next_id : int;
}

let bundle_size b = List.length b.b_codes

let compile_bundle src =
  let entry = compile src in
  let codes, next_id = Code_table.export_bundle () in
  { b_entry = entry; b_codes = codes; b_next_id = next_id }

(* must run after [create] (which reset the table) and before the VM
   executes anything that resolves a code_ref *)
let import_bundle (_ : t) b =
  Code_table.import_bundle b.b_codes ~next_id:b.b_next_id

let run_bundle t b : Driver.outcome = run_code t b.b_entry

(* trace-profile seeding (DESIGN.md §3m): export after an unseeded run,
   seed a fresh importer before it executes anything *)
let export_profile t = D.export_profile t.driver
let seed_profile t p = D.seed_profile t.driver p

(** convenience: fresh VM, run source, return (outcome, vm) *)
let run ?config ?profile src =
  let t = create ?config ?profile () in
  let outcome = run_source t src in
  (outcome, t)
