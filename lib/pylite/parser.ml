(** Recursive-descent parser for pylite. *)

open Ast

exception Syntax_error = Lexer.Syntax_error

type state = { toks : Lexer.token array; mutable pos : int }

let error fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt
let peek st = st.toks.(st.pos)
let peek2 st =
  if st.pos + 1 < Array.length st.toks then st.toks.(st.pos + 1) else Lexer.EOF

let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let expect_op st op =
  match next st with
  | Lexer.OP o when o = op -> ()
  | t -> error "expected '%s', got %s" op (Format.asprintf "%a" Lexer.pp_token t)

let expect_kw st kw =
  match next st with
  | Lexer.KW k when k = kw -> ()
  | t -> error "expected '%s', got %s" kw (Format.asprintf "%a" Lexer.pp_token t)

let expect_newline st =
  match next st with
  | Lexer.NEWLINE -> ()
  | t -> error "expected newline, got %s" (Format.asprintf "%a" Lexer.pp_token t)

let expect_name st =
  match next st with
  | Lexer.NAME n -> n
  | t -> error "expected name, got %s" (Format.asprintf "%a" Lexer.pp_token t)

let accept_op st op =
  match peek st with
  | Lexer.OP o when o = op ->
      advance st;
      true
  | _ -> false

let accept_kw st kw =
  match peek st with
  | Lexer.KW k when k = kw ->
      advance st;
      true
  | _ -> false

(* --- expressions --- *)

let rec parse_expr st : expr = parse_ternary st

and parse_ternary st =
  let e = parse_or st in
  if accept_kw st "if" then begin
    let cond = parse_or st in
    expect_kw st "else";
    let els = parse_expr st in
    If_exp (cond, e, els)
  end
  else e

and parse_or st =
  let rec go acc =
    if accept_kw st "or" then go (Bool_op (`Or, acc, parse_and st)) else acc
  in
  go (parse_and st)

and parse_and st =
  let rec go acc =
    if accept_kw st "and" then go (Bool_op (`And, acc, parse_not st)) else acc
  in
  go (parse_not st)

and parse_not st =
  if accept_kw st "not" then Un (Not, parse_not st) else parse_comparison st

and cmp_op st : Mtj_rjit.Ops_intf.cmp option =
  match peek st with
  | Lexer.OP "<" -> advance st; Some Mtj_rjit.Ops_intf.Lt
  | Lexer.OP "<=" -> advance st; Some Mtj_rjit.Ops_intf.Le
  | Lexer.OP ">" -> advance st; Some Mtj_rjit.Ops_intf.Gt
  | Lexer.OP ">=" -> advance st; Some Mtj_rjit.Ops_intf.Ge
  | Lexer.OP "==" -> advance st; Some Mtj_rjit.Ops_intf.Eq
  | Lexer.OP "!=" -> advance st; Some Mtj_rjit.Ops_intf.Ne
  | Lexer.KW "in" -> advance st; Some Mtj_rjit.Ops_intf.In
  | Lexer.KW "is" ->
      advance st;
      if accept_kw st "not" then Some Mtj_rjit.Ops_intf.Is_not
      else Some Mtj_rjit.Ops_intf.Is
  | Lexer.KW "not" when peek2 st = Lexer.KW "in" ->
      advance st;
      advance st;
      Some Mtj_rjit.Ops_intf.Not_in
  | _ -> None

and parse_comparison st =
  let first = parse_bitor st in
  match cmp_op st with
  | None -> first
  | Some op ->
      let second = parse_bitor st in
      let rec chain acc prev =
        match cmp_op st with
        | None -> acc
        | Some op2 ->
            let nxt = parse_bitor st in
            chain (Bool_op (`And, acc, Cmp (op2, prev, nxt))) nxt
      in
      chain (Cmp (op, first, second)) second

and parse_bitor st =
  let rec go acc =
    if accept_op st "|" then go (Bin (Bitor, acc, parse_bitxor st)) else acc
  in
  go (parse_bitxor st)

and parse_bitxor st =
  let rec go acc =
    if accept_op st "^" then go (Bin (Bitxor, acc, parse_bitand st)) else acc
  in
  go (parse_bitand st)

and parse_bitand st =
  let rec go acc =
    if accept_op st "&" then go (Bin (Bitand, acc, parse_shift st)) else acc
  in
  go (parse_shift st)

and parse_shift st =
  let rec go acc =
    if accept_op st "<<" then go (Bin (Lshift, acc, parse_arith st))
    else if accept_op st ">>" then go (Bin (Rshift, acc, parse_arith st))
    else acc
  in
  go (parse_arith st)

and parse_arith st =
  let rec go acc =
    if accept_op st "+" then go (Bin (Add, acc, parse_term st))
    else if accept_op st "-" then go (Bin (Sub, acc, parse_term st))
    else acc
  in
  go (parse_term st)

and parse_term st =
  let rec go acc =
    if accept_op st "*" then go (Bin (Mult, acc, parse_factor st))
    else if accept_op st "//" then go (Bin (Floordiv, acc, parse_factor st))
    else if accept_op st "/" then go (Bin (Div, acc, parse_factor st))
    else if accept_op st "%" then go (Bin (Mod, acc, parse_factor st))
    else acc
  in
  go (parse_factor st)

and parse_factor st =
  if accept_op st "-" then Un (Neg, parse_factor st)
  else if accept_op st "+" then parse_factor st
  else parse_power st

and parse_power st =
  let base = parse_postfix st in
  if accept_op st "**" then Bin (Pow, base, parse_factor st) else base

and parse_postfix st =
  let rec go e =
    match peek st with
    | Lexer.OP "(" ->
        advance st;
        let args = parse_call_args st in
        go (Call (e, args))
    | Lexer.OP "[" ->
        advance st;
        let e' = parse_subscript st e in
        go e'
    | Lexer.OP "." ->
        advance st;
        let name = expect_name st in
        go (Attr (e, name))
    | _ -> e
  in
  go (parse_atom st)

and parse_call_args st =
  if accept_op st ")" then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept_op st "," then
        if accept_op st ")" then List.rev (e :: acc) else go (e :: acc)
      else begin
        expect_op st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_subscript st e =
  (* after '[': expr | [expr] ':' [expr] *)
  if accept_op st ":" then begin
    let hi = if peek st = Lexer.OP "]" then None else Some (parse_expr st) in
    expect_op st "]";
    Slice (e, None, hi)
  end
  else begin
    let lo = parse_expr st in
    if accept_op st ":" then begin
      let hi = if peek st = Lexer.OP "]" then None else Some (parse_expr st) in
      expect_op st "]";
      Slice (e, Some lo, hi)
    end
    else begin
      expect_op st "]";
      Subscr (e, lo)
    end
  end

and parse_atom st =
  match next st with
  | Lexer.INT i -> Int_lit i
  | Lexer.FLOAT f -> Float_lit f
  | Lexer.STRING s ->
      (* adjacent string literals concatenate *)
      let rec go acc =
        match peek st with
        | Lexer.STRING s2 ->
            advance st;
            go (acc ^ s2)
        | _ -> Str_lit acc
      in
      go s
  | Lexer.KW "True" -> Bool_lit true
  | Lexer.KW "False" -> Bool_lit false
  | Lexer.KW "None" -> None_lit
  | Lexer.NAME n -> Name n
  | Lexer.OP "(" ->
      if accept_op st ")" then Tuple_lit []
      else begin
        let e = parse_expr st in
        if accept_op st "," then begin
          let rec go acc =
            if peek st = Lexer.OP ")" then List.rev acc
            else begin
              let e = parse_expr st in
              if accept_op st "," then go (e :: acc) else List.rev (e :: acc)
            end
          in
          let rest = go [] in
          expect_op st ")";
          Tuple_lit (e :: rest)
        end
        else begin
          expect_op st ")";
          e
        end
      end
  | Lexer.OP "[" ->
      if accept_op st "]" then List_lit []
      else begin
        let rec go acc =
          let e = parse_expr st in
          if accept_op st "," then
            if peek st = Lexer.OP "]" then List.rev (e :: acc)
            else go (e :: acc)
          else List.rev (e :: acc)
        in
        let items = go [] in
        expect_op st "]";
        List_lit items
      end
  | Lexer.OP "{" ->
      if accept_op st "}" then Dict_lit []
      else begin
        let first = parse_expr st in
        if accept_op st ":" then begin
          (* dict *)
          let v = parse_expr st in
          let rec go acc =
            if accept_op st "," then
              if peek st = Lexer.OP "}" then List.rev acc
              else begin
                let k = parse_expr st in
                expect_op st ":";
                let v = parse_expr st in
                go ((k, v) :: acc)
              end
            else List.rev acc
          in
          let pairs = go [ (first, v) ] in
          expect_op st "}";
          Dict_lit pairs
        end
        else begin
          (* set *)
          let rec go acc =
            if accept_op st "," then
              if peek st = Lexer.OP "}" then List.rev acc
              else go (parse_expr st :: acc)
            else List.rev acc
          in
          let items = go [ first ] in
          expect_op st "}";
          Set_lit items
        end
      end
  | t -> error "unexpected token %s" (Format.asprintf "%a" Lexer.pp_token t)

(* an expression list at statement level: [e, e, ...] makes a tuple *)
let parse_exprlist st =
  let e = parse_expr st in
  if peek st = Lexer.OP "," then begin
    let rec go acc =
      if accept_op st "," then
        match peek st with
        | Lexer.NEWLINE | Lexer.OP "=" -> List.rev acc
        | _ -> go (parse_expr st :: acc)
      else List.rev acc
    in
    Tuple_lit (go [ e ])
  end
  else e

(* --- statements --- *)

let target_of_expr (e : expr) : target =
  match e with
  | Name n -> T_name n
  | Attr (o, a) -> T_attr (o, a)
  | Subscr (o, k) -> T_subscr (o, k)
  | Slice (o, lo, hi) -> T_slice (o, lo, hi)
  | Tuple_lit items ->
      T_tuple
        (List.map
           (function
             | Name n -> n
             | _ -> error "only simple names in tuple assignment")
           items)
  | _ -> error "invalid assignment target"

let aug_of_op = function
  | "+=" -> Add
  | "-=" -> Sub
  | "*=" -> Mult
  | "/=" -> Div
  | "//=" -> Floordiv
  | "%=" -> Mod
  | "**=" -> Pow
  | "<<=" -> Lshift
  | ">>=" -> Rshift
  | "&=" -> Bitand
  | "|=" -> Bitor
  | "^=" -> Bitxor
  | op -> error "unknown augmented assignment %s" op

let rec parse_stmt st : stmt list =
  match peek st with
  | Lexer.NEWLINE ->
      advance st;
      []
  | Lexer.KW "if" -> [ parse_if st ]
  | Lexer.KW "while" ->
      advance st;
      let cond = parse_expr st in
      expect_op st ":";
      let body = parse_suite st in
      [ While (cond, body) ]
  | Lexer.KW "for" ->
      advance st;
      let first = expect_name st in
      let vars =
        if accept_op st "," then begin
          let rec go acc =
            let n = expect_name st in
            if accept_op st "," then go (n :: acc) else List.rev (n :: acc)
          in
          first :: go []
        end
        else [ first ]
      in
      expect_kw st "in";
      let iter = parse_exprlist st in
      expect_op st ":";
      let body = parse_suite st in
      [ For (vars, iter, body) ]
  | Lexer.KW "def" ->
      advance st;
      let name = expect_name st in
      expect_op st "(";
      let params =
        if accept_op st ")" then []
        else begin
          let rec go acc =
            let p = expect_name st in
            if accept_op st "," then go (p :: acc) else List.rev (p :: acc)
          in
          let ps = go [] in
          expect_op st ")";
          ps
        end
      in
      expect_op st ":";
      let body = parse_suite st in
      [ Def (name, params, body) ]
  | Lexer.KW "class" ->
      advance st;
      let name = expect_name st in
      let parent =
        if accept_op st "(" then begin
          if accept_op st ")" then None
          else begin
            let p = expect_name st in
            expect_op st ")";
            Some p
          end
        end
        else None
      in
      expect_op st ":";
      let body = parse_suite st in
      [ Class (name, parent, body) ]
  | _ -> parse_simple_line st

and parse_if st =
  expect_kw st "if";
  let cond = parse_expr st in
  expect_op st ":";
  let body = parse_suite st in
  let rec arms () =
    if accept_kw st "elif" then begin
      let c = parse_expr st in
      expect_op st ":";
      let b = parse_suite st in
      let rest, els = arms () in
      ((c, b) :: rest, els)
    end
    else if accept_kw st "else" then begin
      expect_op st ":";
      let b = parse_suite st in
      ([], b)
    end
    else ([], [])
  in
  let rest, els = arms () in
  If ((cond, body) :: rest, els)

and parse_simple_line st =
  let stmts = ref [] in
  let rec go () =
    stmts := parse_simple st :: !stmts;
    if accept_op st ";" then
      match peek st with Lexer.NEWLINE -> () | _ -> go ()
  in
  go ();
  expect_newline st;
  List.rev !stmts

and parse_simple st : stmt =
  match peek st with
  | Lexer.KW "return" ->
      advance st;
      (match peek st with
      | Lexer.NEWLINE | Lexer.OP ";" -> Return None
      | _ -> Return (Some (parse_exprlist st)))
  | Lexer.KW "break" ->
      advance st;
      Break
  | Lexer.KW "continue" ->
      advance st;
      Continue
  | Lexer.KW "pass" ->
      advance st;
      Pass
  | Lexer.KW "global" ->
      advance st;
      let rec go acc =
        let n = expect_name st in
        if accept_op st "," then go (n :: acc) else List.rev (n :: acc)
      in
      Global (go [])
  | Lexer.KW "del" ->
      advance st;
      let e = parse_expr st in
      (match e with
      | Subscr (o, k) -> Del (o, k)
      | _ -> error "only 'del x[k]' is supported")
  | _ -> (
      let e = parse_exprlist st in
      match peek st with
      | Lexer.OP "=" ->
          advance st;
          let rhs = parse_exprlist st in
          Assign (target_of_expr e, rhs)
      | Lexer.OP
          (( "+=" | "-=" | "*=" | "/=" | "//=" | "%=" | "**=" | "<<=" | ">>="
           | "&=" | "|=" | "^=" ) as op) ->
          advance st;
          let rhs = parse_exprlist st in
          Aug_assign (target_of_expr e, aug_of_op op, rhs)
      | _ -> Expr_stmt e)

and parse_suite st : stmt list =
  if accept_op st ";" then error "unexpected ';'"
  else if peek st = Lexer.NEWLINE then begin
    advance st;
    (match next st with
    | Lexer.INDENT -> ()
    | t -> error "expected indented block, got %s" (Format.asprintf "%a" Lexer.pp_token t));
    let stmts = ref [] in
    let rec go () =
      match peek st with
      | Lexer.DEDENT ->
          advance st;
          ()
      | Lexer.EOF -> ()
      | _ ->
          stmts := !stmts @ parse_stmt st;
          go ()
    in
    go ();
    !stmts
  end
  else parse_simple_line st

let parse (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let stmts = ref [] in
  let rec go () =
    match peek st with
    | Lexer.EOF -> ()
    | Lexer.NEWLINE | Lexer.DEDENT ->
        advance st;
        go ()
    | _ ->
        stmts := !stmts @ parse_stmt st;
        go ()
  in
  go ();
  !stmts
