(** AST-to-bytecode compiler for pylite. *)

open Ast
open Bytecode
open Mtj_rt

exception Compile_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

(* growable instruction buffer *)
type buf = { mutable arr : instr array; mutable len : int }

let buf_create () = { arr = Array.make 64 NOP; len = 0 }

let emit b i =
  if b.len >= Array.length b.arr then begin
    let bigger = Array.make (2 * Array.length b.arr) NOP in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- i;
  b.len <- b.len + 1;
  b.len - 1

let patch b pc i = b.arr.(pc) <- i

type ctx = {
  fname : string;
  is_module : bool;
  locals : (string, int) Hashtbl.t;
  mutable nlocals : int;
  globals_decl : (string, unit) Hashtbl.t;
  buf : buf;
  (* loop contexts: (continue target, break patch sites) *)
  mutable loops : (int * int list ref) list;
}

let fresh_temp ctx =
  let slot = ctx.nlocals in
  ctx.nlocals <- slot + 1;
  slot

let local_slot ctx name =
  if Hashtbl.mem ctx.globals_decl name then None
  else Hashtbl.find_opt ctx.locals name

let declare_local ctx name =
  if
    (not ctx.is_module)
    && (not (Hashtbl.mem ctx.globals_decl name))
    && not (Hashtbl.mem ctx.locals name)
  then begin
    Hashtbl.replace ctx.locals name ctx.nlocals;
    ctx.nlocals <- ctx.nlocals + 1
  end

(* find names assigned anywhere in the body: they become locals *)
let rec scan_stmt ctx (s : stmt) =
  match s with
  | Assign (t, _) | Aug_assign (t, _, _) -> (
      match t with
      | T_name n -> declare_local ctx n
      | T_tuple ns -> List.iter (declare_local ctx) ns
      | T_attr _ | T_subscr _ | T_slice _ -> ())
  | For (vars, _, body) ->
      List.iter (declare_local ctx) vars;
      List.iter (scan_stmt ctx) body
  | If (arms, els) ->
      List.iter (fun (_, b) -> List.iter (scan_stmt ctx) b) arms;
      List.iter (scan_stmt ctx) els
  | While (_, body) -> List.iter (scan_stmt ctx) body
  | Global names -> List.iter (fun n -> Hashtbl.replace ctx.globals_decl n ()) names
  | Def _ | Class _ | Expr_stmt _ | Return _ | Break | Continue | Pass
  | Del _ ->
      ()

let max_int_const = Value.of_int max_int

(* --- expressions --- *)

let rec compile_expr ctx (e : expr) =
  let b = ctx.buf in
  match e with
  | Int_lit i -> ignore (emit b (LOAD_CONST (Value.of_int i)))
  | Float_lit f -> ignore (emit b (LOAD_CONST (Value.of_float f)))
  | Str_lit s -> ignore (emit b (LOAD_CONST (Value.of_str s)))
  | Bool_lit v -> ignore (emit b (LOAD_CONST (Value.of_bool v)))
  | None_lit -> ignore (emit b (LOAD_CONST Value.nil))
  | Name n -> (
      match local_slot ctx n with
      | Some slot -> ignore (emit b (LOAD_FAST slot))
      | None -> ignore (emit b (LOAD_GLOBAL n)))
  | Bin (op, a, x) ->
      compile_expr ctx a;
      compile_expr ctx x;
      ignore (emit b (BINARY op))
  | Un (Neg, a) ->
      compile_expr ctx a;
      ignore (emit b UNARY_NEG)
  | Un (Not, a) ->
      compile_expr ctx a;
      ignore (emit b UNARY_NOT)
  | Cmp (op, a, x) ->
      compile_expr ctx a;
      compile_expr ctx x;
      ignore (emit b (COMPARE op))
  | Bool_op (`And, a, x) ->
      compile_expr ctx a;
      let j = emit b (JUMP_IF_FALSE_OR_POP (-1)) in
      compile_expr ctx x;
      patch b j (JUMP_IF_FALSE_OR_POP b.len)
  | Bool_op (`Or, a, x) ->
      compile_expr ctx a;
      let j = emit b (JUMP_IF_TRUE_OR_POP (-1)) in
      compile_expr ctx x;
      patch b j (JUMP_IF_TRUE_OR_POP b.len)
  | If_exp (cond, thn, els) ->
      compile_expr ctx cond;
      let jf = emit b (POP_JUMP_IF_FALSE (-1)) in
      compile_expr ctx thn;
      let jend = emit b (JUMP (-1)) in
      patch b jf (POP_JUMP_IF_FALSE b.len);
      compile_expr ctx els;
      patch b jend (JUMP b.len)
  | Call (Attr (obj, meth), args) ->
      compile_expr ctx obj;
      ignore (emit b (LOAD_METHOD meth));
      List.iter (compile_expr ctx) args;
      ignore (emit b (CALL_METHOD (List.length args)))
  | Call (callee, args) ->
      compile_expr ctx callee;
      List.iter (compile_expr ctx) args;
      ignore (emit b (CALL_FUNCTION (List.length args)))
  | Attr (obj, a) ->
      compile_expr ctx obj;
      ignore (emit b (LOAD_ATTR a))
  | Subscr (obj, k) ->
      compile_expr ctx obj;
      compile_expr ctx k;
      ignore (emit b BINARY_SUBSCR)
  | Slice (obj, lo, hi) ->
      compile_expr ctx obj;
      compile_slice_bounds ctx lo hi;
      ignore (emit b GET_SLICE)
  | List_lit items ->
      List.iter (compile_expr ctx) items;
      ignore (emit b (BUILD_LIST (List.length items)))
  | Tuple_lit items ->
      List.iter (compile_expr ctx) items;
      ignore (emit b (BUILD_TUPLE (List.length items)))
  | Dict_lit pairs ->
      List.iter
        (fun (k, v) ->
          compile_expr ctx k;
          compile_expr ctx v)
        pairs;
      ignore (emit b (BUILD_DICT (List.length pairs)))
  | Set_lit items ->
      List.iter (compile_expr ctx) items;
      ignore (emit b (BUILD_SET (List.length items)))

and compile_slice_bounds ctx lo hi =
  let b = ctx.buf in
  (match lo with
  | Some e -> compile_expr ctx e
  | None -> ignore (emit b (LOAD_CONST (Value.of_int 0))));
  match hi with
  | Some e -> compile_expr ctx e
  | None -> ignore (emit b (LOAD_CONST max_int_const))

(* --- statements --- *)

let store_name ctx n =
  let b = ctx.buf in
  match local_slot ctx n with
  | Some slot -> ignore (emit b (STORE_FAST slot))
  | None -> ignore (emit b (STORE_GLOBAL n))

(* a syntactic range(...) call that really refers to the builtin *)
let as_range_call ctx (e : expr) =
  match e with
  | Call (Name "range", args)
    when local_slot ctx "range" = None && List.length args >= 1
         && List.length args <= 3 ->
      Some args
  | _ -> None

let rec compile_stmt ctx (s : stmt) =
  let b = ctx.buf in
  match s with
  | Expr_stmt e ->
      compile_expr ctx e;
      ignore (emit b POP_TOP)
  | Assign (T_name n, e) ->
      compile_expr ctx e;
      store_name ctx n
  | Assign (T_attr (obj, a), e) ->
      compile_expr ctx obj;
      compile_expr ctx e;
      ignore (emit b (STORE_ATTR a))
  | Assign (T_subscr (obj, k), e) ->
      compile_expr ctx obj;
      compile_expr ctx k;
      compile_expr ctx e;
      ignore (emit b STORE_SUBSCR)
  | Assign (T_slice (obj, lo, hi), e) ->
      compile_expr ctx obj;
      compile_slice_bounds ctx lo hi;
      compile_expr ctx e;
      ignore (emit b SET_SLICE)
  | Assign (T_tuple names, e) ->
      compile_expr ctx e;
      ignore (emit b (UNPACK_SEQUENCE (List.length names)));
      List.iter (store_name ctx) names
  | Aug_assign (T_name n, op, e) ->
      compile_expr ctx (Name n);
      compile_expr ctx e;
      ignore (emit b (BINARY op));
      store_name ctx n
  | Aug_assign (T_attr (obj, a), op, e) ->
      compile_expr ctx obj;
      ignore (emit b DUP_TOP);
      ignore (emit b (LOAD_ATTR a));
      compile_expr ctx e;
      ignore (emit b (BINARY op));
      ignore (emit b (STORE_ATTR a))
  | Aug_assign (T_subscr (obj, k), op, e) ->
      let t_obj = fresh_temp ctx and t_key = fresh_temp ctx in
      compile_expr ctx obj;
      ignore (emit b (STORE_FAST t_obj));
      compile_expr ctx k;
      ignore (emit b (STORE_FAST t_key));
      ignore (emit b (LOAD_FAST t_obj));
      ignore (emit b (LOAD_FAST t_key));
      ignore (emit b (LOAD_FAST t_obj));
      ignore (emit b (LOAD_FAST t_key));
      ignore (emit b BINARY_SUBSCR);
      compile_expr ctx e;
      ignore (emit b (BINARY op));
      ignore (emit b STORE_SUBSCR)
  | Aug_assign ((T_slice _ | T_tuple _), _, _) ->
      error "augmented assignment target not supported"
  | If (arms, els) ->
      let end_jumps = ref [] in
      List.iter
        (fun (cond, body) ->
          compile_expr ctx cond;
          let jf = emit b (POP_JUMP_IF_FALSE (-1)) in
          List.iter (compile_stmt ctx) body;
          end_jumps := emit b (JUMP (-1)) :: !end_jumps;
          patch b jf (POP_JUMP_IF_FALSE b.len))
        arms;
      List.iter (compile_stmt ctx) els;
      List.iter (fun j -> patch b j (JUMP b.len)) !end_jumps
  | While (cond, body) ->
      let header = b.len in
      let always_true =
        match cond with Bool_lit true | Int_lit 1 -> true | _ -> false
      in
      let exit_patch =
        if always_true then None
        else begin
          compile_expr ctx cond;
          Some (emit b (POP_JUMP_IF_FALSE (-1)))
        end
      in
      let breaks = ref [] in
      ctx.loops <- (header, breaks) :: ctx.loops;
      List.iter (compile_stmt ctx) body;
      ctx.loops <- List.tl ctx.loops;
      ignore (emit b (JUMP header));
      (match exit_patch with
      | Some j -> patch b j (POP_JUMP_IF_FALSE b.len)
      | None -> ());
      List.iter (fun j -> patch b j (JUMP b.len)) !breaks
  | For (vars, iter, body) -> (
      match as_range_call ctx iter with
      | Some range_args -> compile_for_range ctx vars range_args body
      | None -> compile_for_each ctx vars iter body)
  | Def (name, params, body) ->
      if not ctx.is_module then error "nested functions are not supported";
      let code = compile_function ~fname:name ~params ~body in
      ignore
        (emit b
           (MAKE_FUNCTION
              { code_ref = code.id; fname = name; arity = List.length params }));
      ignore (emit b (STORE_GLOBAL name))
  | Class (name, parent, body) ->
      if not ctx.is_module then error "nested classes are not supported";
      let methods =
        List.filter_map
          (function
            | Def (mname, params, mbody) ->
                let code =
                  compile_function ~fname:(name ^ "." ^ mname) ~params
                    ~body:mbody
                in
                Some (mname, code, List.length params)
            | Pass -> None
            | _ -> error "class bodies may only contain methods")
          body
      in
      List.iter
        (fun (mname, (code : Bytecode.code), arity) ->
          ignore
            (emit b
               (MAKE_FUNCTION { code_ref = code.id; fname = mname; arity })))
        methods;
      ignore
        (emit b
           (MAKE_CLASS
              { cls_name = name; parent; methods = List.map (fun (m, _, _) -> m) methods }));
      ignore (emit b (STORE_GLOBAL name))
  | Return None -> ignore (emit b RETURN_NONE)
  | Return (Some e) ->
      compile_expr ctx e;
      ignore (emit b RETURN_VALUE)
  | Break -> (
      match ctx.loops with
      | (_, breaks) :: _ -> breaks := emit b (JUMP (-1)) :: !breaks
      | [] -> error "break outside loop")
  | Continue -> (
      match ctx.loops with
      | (header, _) :: _ -> ignore (emit b (JUMP header))
      | [] -> error "continue outside loop")
  | Pass -> ()
  | Global _ -> ()  (* handled in the scan pass *)
  | Del (obj, k) ->
      compile_expr ctx obj;
      compile_expr ctx k;
      ignore (emit b DELETE_SUBSCR)

(* the loop variable slot; at module level named variables are globals,
   so the loop writes a hidden local that is copied out at each
   iteration *)
and loop_var_slot ctx v =
  match local_slot ctx v with
  | Some slot -> (slot, None)
  | None -> (fresh_temp ctx, Some v)

and compile_for_range ctx vars args body =
  let b = ctx.buf in
  let var, global_copy =
    match vars with
    | [ v ] -> loop_var_slot ctx v
    | _ -> error "range loops take a single variable"
  in
  let cur = fresh_temp ctx and stop = fresh_temp ctx and step = fresh_temp ctx in
  (match args with
  | [ e_stop ] ->
      ignore (emit b (LOAD_CONST (Value.of_int 0)));
      ignore (emit b (STORE_FAST cur));
      compile_expr ctx e_stop;
      ignore (emit b (STORE_FAST stop));
      ignore (emit b (LOAD_CONST (Value.of_int 1)));
      ignore (emit b (STORE_FAST step))
  | [ e_start; e_stop ] ->
      compile_expr ctx e_start;
      ignore (emit b (STORE_FAST cur));
      compile_expr ctx e_stop;
      ignore (emit b (STORE_FAST stop));
      ignore (emit b (LOAD_CONST (Value.of_int 1)));
      ignore (emit b (STORE_FAST step))
  | [ e_start; e_stop; e_step ] ->
      compile_expr ctx e_start;
      ignore (emit b (STORE_FAST cur));
      compile_expr ctx e_stop;
      ignore (emit b (STORE_FAST stop));
      compile_expr ctx e_step;
      ignore (emit b (STORE_FAST step))
  | _ -> error "range() takes 1-3 arguments");
  let header = emit b NOP in
  let breaks = ref [] in
  ctx.loops <- (header, breaks) :: ctx.loops;
  (match global_copy with
  | None -> ()
  | Some name ->
      ignore (emit b (LOAD_FAST var));
      ignore (emit b (STORE_GLOBAL name)));
  List.iter (compile_stmt ctx) body;
  ctx.loops <- List.tl ctx.loops;
  ignore (emit b (JUMP header));
  patch b header (FOR_RANGE { var; cur; stop; step; exit = b.len });
  List.iter (fun j -> patch b j (JUMP b.len)) !breaks

and compile_for_each ctx vars iter body =
  let b = ctx.buf in
  let seq = fresh_temp ctx and idx = fresh_temp ctx in
  compile_expr ctx iter;
  ignore (emit b GET_INDEXABLE);
  ignore (emit b (STORE_FAST seq));
  ignore (emit b (LOAD_CONST (Value.of_int 0)));
  ignore (emit b (STORE_FAST idx));
  let var, prologue =
    match vars with
    | [ v ] -> (
        match loop_var_slot ctx v with
        | slot, None -> (slot, `None)
        | slot, Some name -> (slot, `Copy_global name))
    | many ->
        let t = fresh_temp ctx in
        (t, `Unpack many)
  in
  let header = emit b NOP in
  let breaks = ref [] in
  ctx.loops <- (header, breaks) :: ctx.loops;
  (match prologue with
  | `None -> ()
  | `Copy_global name ->
      ignore (emit b (LOAD_FAST var));
      ignore (emit b (STORE_GLOBAL name))
  | `Unpack names ->
      ignore (emit b (LOAD_FAST var));
      ignore (emit b (UNPACK_SEQUENCE (List.length names)));
      List.iter (store_name ctx) names);
  List.iter (compile_stmt ctx) body;
  ctx.loops <- List.tl ctx.loops;
  ignore (emit b (JUMP header));
  patch b header (FOR_ITER { var; seq; idx; exit = b.len });
  List.iter (fun j -> patch b j (JUMP b.len)) !breaks

(* --- code-object assembly --- *)

and finalize ctx ~nargs : Bytecode.code =
  let b = ctx.buf in
  (* ensure the code ends with a return *)
  ignore (emit b RETURN_NONE);
  let instrs = Array.sub b.arr 0 b.len in
  let n = Array.length instrs in
  (* loop headers: targets of backward jumps *)
  let headers = Array.make n false in
  Array.iteri
    (fun pc i ->
      match i with
      | JUMP t when t <= pc -> headers.(t) <- true
      | _ -> ())
    instrs;
  (* stack depth via worklist dataflow *)
  let depth = Array.make n (-1) in
  let maxdepth = ref 0 in
  let work = Queue.create () in
  Queue.add (0, 0) work;
  while not (Queue.is_empty work) do
    let pc, d = Queue.pop work in
    if pc < n && (depth.(pc) < 0 || depth.(pc) < d) then begin
      depth.(pc) <- max depth.(pc) d;
      maxdepth := max !maxdepth d;
      let i = instrs.(pc) in
      let continue_d =
        d + Bytecode.stack_effect i
      in
      maxdepth := max !maxdepth (max continue_d (d + 1));
      List.iter
        (fun t ->
          let taken_d = d + Bytecode.stack_effect ~taken:true i in
          Queue.add (t, max 0 taken_d) work)
        (Bytecode.jump_targets i);
      if Bytecode.falls_through i then Queue.add (pc + 1, max 0 continue_d) work
    end
  done;
  let code =
    {
      Bytecode.id = Code_table.fresh_id ();
      name = ctx.fname;
      nargs;
      nlocals = max 1 ctx.nlocals;
      stacksize = !maxdepth + 8;
      instrs;
      headers;
      varnames =
        begin
          let arr = Array.make (max 1 ctx.nlocals) "" in
          Hashtbl.iter (fun name slot -> if slot < Array.length arr then arr.(slot) <- name) ctx.locals;
          arr
        end;
    }
  in
  Code_table.register code;
  code

and compile_function ~fname ~params ~body : Bytecode.code =
  let ctx =
    {
      fname;
      is_module = false;
      locals = Hashtbl.create 16;
      nlocals = 0;
      globals_decl = Hashtbl.create 4;
      buf = buf_create ();
      loops = [];
    }
  in
  (* globals declarations must be seen before locals are assigned *)
  List.iter
    (function
      | Global names ->
          List.iter (fun n -> Hashtbl.replace ctx.globals_decl n ()) names
      | _ -> ())
    body;
  List.iter
    (fun p ->
      Hashtbl.replace ctx.locals p ctx.nlocals;
      ctx.nlocals <- ctx.nlocals + 1)
    params;
  List.iter (scan_stmt ctx) body;
  List.iter (compile_stmt ctx) body;
  finalize ctx ~nargs:(List.length params)

let compile_module (prog : Ast.program) : Bytecode.code =
  let ctx =
    {
      fname = "<module>";
      is_module = true;
      locals = Hashtbl.create 16;
      nlocals = 0;
      globals_decl = Hashtbl.create 4;
      buf = buf_create ();
      loops = [];
    }
  in
  List.iter (compile_stmt ctx) prog;
  finalize ctx ~nargs:0

let compile_source (src : string) : Bytecode.code =
  compile_module (Parser.parse src)
