(** Registry of compiled pylite code objects, resolving the [code_ref]s
    carried by function values and resume snapshots.

    The table is domain-local: a VM is created, compiled and run on one
    domain, and resolves only its own code objects, so domains never
    share entries (and never race).  {!reset} — called from [Vm.create]
    — restarts the id sequence at zero, which matters because code ids
    feed branch-predictor site hashes in the driver: with a per-VM id
    sequence, a run's simulated behaviour is independent of whatever ran
    before it, on any domain.  Entries of a previous VM on the same
    domain are dropped by the reset; they are unreachable by then (a VM
    only resolves code_refs while it runs). *)

type threaded =
  (Mtj_rjit.Direct_ops.t, Bytecode.code) Mtj_rjit.Threaded.step array
(** a code object's threaded-dispatch translation (see
    {!Mtj_rjit.Threaded} and [Interp.threaded_code]) *)

type store = {
  table : (int, Bytecode.code) Hashtbl.t;
  threaded : (int, threaded) Hashtbl.t;
      (* translate-once cache, keyed by code id.  Step closures bind the
         translating VM's engine and context, so this cache MUST be
         dropped whenever the id sequence restarts — [reset] clears it
         together with the code table. *)
  mutable next_id : int;
}

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { table = Hashtbl.create 256; threaded = Hashtbl.create 64; next_id = 0 })

let reset () =
  let s = Domain.DLS.get store_key in
  Hashtbl.reset s.table;
  Hashtbl.reset s.threaded;
  s.next_id <- 0

let fresh_id () =
  let s = Domain.DLS.get store_key in
  let id = s.next_id in
  s.next_id <- id + 1;
  id

let register (c : Bytecode.code) =
  Hashtbl.replace (Domain.DLS.get store_key).table c.Bytecode.id c

let lookup id =
  match Hashtbl.find_opt (Domain.DLS.get store_key).table id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "unknown pylite code_ref %d" id)

let lookup_threaded id =
  Hashtbl.find_opt (Domain.DLS.get store_key).threaded id

let store_threaded id (s : threaded) =
  Hashtbl.replace (Domain.DLS.get store_key).threaded id s

(* --- compiled-program bundles (the shared serving cache) ---

   Bytecode is immutable and its constants are immediate scalars, so a
   freshly compiled program's table contents — every code object plus
   the id watermark — form a context-free artifact that can cross
   domains.  [export_bundle] snapshots them right after a fresh
   reset+compile; [import_bundle] rebuilds an identical table state on
   any domain, so a warm request resolves the very same code_refs a
   cold compile would have produced (ids are deterministic because the
   sequence always restarts at zero).  The threaded cache is dropped on
   import for the usual reason: step closures bind the translating VM's
   context and must never be reused across VMs. *)

let export_bundle () =
  let s = Domain.DLS.get store_key in
  let codes = Hashtbl.fold (fun _ c acc -> c :: acc) s.table [] in
  ( List.sort
      (fun (a : Bytecode.code) b -> compare a.Bytecode.id b.Bytecode.id)
      codes,
    s.next_id )

let import_bundle codes ~next_id =
  let s = Domain.DLS.get store_key in
  Hashtbl.reset s.table;
  Hashtbl.reset s.threaded;
  List.iter (fun (c : Bytecode.code) -> Hashtbl.replace s.table c.Bytecode.id c) codes;
  s.next_id <- next_id
