(** Global registry of compiled pylite code objects, resolving the
    [code_ref]s carried by function values and resume snapshots. *)

let table : (int, Bytecode.code) Hashtbl.t = Hashtbl.create 256
let next_id = ref 0

let fresh_id () =
  let id = !next_id in
  incr next_id;
  id

let register (c : Bytecode.code) = Hashtbl.replace table c.Bytecode.id c

let lookup id =
  match Hashtbl.find_opt table id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "unknown pylite code_ref %d" id)
