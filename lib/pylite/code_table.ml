(** Registry of compiled pylite code objects, resolving the [code_ref]s
    carried by function values and resume snapshots.

    The table is domain-local: a VM is created, compiled and run on one
    domain, and resolves only its own code objects, so domains never
    share entries (and never race).  {!reset} — called from [Vm.create]
    — restarts the id sequence at zero, which matters because code ids
    feed branch-predictor site hashes in the driver: with a per-VM id
    sequence, a run's simulated behaviour is independent of whatever ran
    before it, on any domain.  Entries of a previous VM on the same
    domain are dropped by the reset; they are unreachable by then (a VM
    only resolves code_refs while it runs). *)

type store = {
  table : (int, Bytecode.code) Hashtbl.t;
  mutable next_id : int;
}

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { table = Hashtbl.create 256; next_id = 0 })

let reset () =
  let s = Domain.DLS.get store_key in
  Hashtbl.reset s.table;
  s.next_id <- 0

let fresh_id () =
  let s = Domain.DLS.get store_key in
  let id = s.next_id in
  s.next_id <- id + 1;
  id

let register (c : Bytecode.code) =
  Hashtbl.replace (Domain.DLS.get store_key).table c.Bytecode.id c

let lookup id =
  match Hashtbl.find_opt (Domain.DLS.get store_key).table id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "unknown pylite code_ref %d" id)
