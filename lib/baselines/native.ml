(** Statically-compiled (C/C++) reference implementations of the CLBG
    benchmarks (the C rows of Table II and the "still slower than C"
    discussion, Q9).

    Each kernel computes the same result as the hosted-language version
    (same algorithm, same PRNG seeds, same printed output) while charging
    the machine model the cost an optimizing C compiler's output would:
    unboxed arithmetic, direct array addressing, no dispatch.  The
    [pidigits] kernel uses the same {!Mtj_rt.Rbigint} library the VMs
    call — GMP-style bignum work is AOT-compiled C in every
    implementation, which is why CPython is competitive there (Table II,
    Q1 discussion). *)

open Mtj_core
open Mtj_rt
module Engine = Mtj_machine.Engine

type kernel = {
  kname : string;
  run : Ctx.t -> Buffer.t -> unit;
}

(* cost shorthands: tight compiled loops *)
let c_int = Cost.make ~alu:3 ~load:1 ()
let c_float = Cost.make ~fpu:4 ~alu:2 ~load:1 ()
let c_mem = Cost.make ~alu:2 ~load:1 ~store:1 ()

let out_line buf s =
  Buffer.add_string buf s;
  Buffer.add_char buf '\n'

(* --- binarytrees --- *)

type tree = Leaf | Node of tree * tree

let binarytrees ctx buf =
  let eng = Ctx.engine ctx in
  let rec make depth =
    (* malloc + initialize: C pays an allocator, too *)
    Engine.emit eng (Cost.make ~alu:14 ~load:6 ~store:8 ~other:4 ());
    if depth = 0 then Node (Leaf, Leaf) else Node (make (depth - 1), make (depth - 1))
  in
  let rec check t =
    Engine.emit eng (Cost.make ~alu:1 ~load:2 ());
    Engine.branch eng ~site:800_001 ~taken:(t <> Node (Leaf, Leaf));
    match t with
    | Leaf -> 0
    | Node (Leaf, Leaf) -> 1
    | Node (l, r) -> 1 + check l + check r
  in
  let max_depth = 8 in
  out_line buf (string_of_int (check (make (max_depth + 1))));
  let long_lived = make max_depth in
  let total = ref 0 in
  let depth = ref 4 in
  while !depth <= max_depth do
    let iterations = 1 lsl (max_depth - !depth + 4) in
    for _ = 1 to iterations do
      total := !total + check (make !depth)
    done;
    depth := !depth + 2
  done;
  out_line buf (string_of_int !total);
  out_line buf (string_of_int (check long_lived))

(* --- fasta --- *)

let fasta ctx buf =
  let eng = Ctx.engine ctx in
  let chars = [| "a"; "c"; "g"; "t"; "B"; "D"; "H"; "K"; "M"; "N" |] in
  let probs = [| 270; 120; 120; 270; 20; 20; 20; 20; 20; 120 |] in
  (* mirror the hosted version exactly: only complete 60-char lines are
     written, and the counts are taken over the written output *)
  let out = Buffer.create 4096 in
  let line = Buffer.create 64 in
  let seed = ref 42 in
  let count = ref 0 in
  for _ = 1 to 11000 do
    seed := (!seed * 3877 + 29573) mod 139968;
    let r = ref (!seed mod 1000) in
    let i = ref 0 in
    while !i < 9 && !r >= probs.(!i) do
      Engine.emit eng c_int;
      Engine.branch eng ~site:800_002 ~taken:true;
      r := !r - probs.(!i);
      incr i
    done;
    Engine.emit eng (Cost.make ~alu:6 ~load:2 ~store:1 ());
    Buffer.add_string line chars.(!i);
    incr count;
    if !count = 60 then begin
      Buffer.add_buffer out line;
      Buffer.add_char out '\n';
      Buffer.clear line;
      count := 0
    end
  done;
  let s = Buffer.contents out in
  let acount = ref 0 in
  String.iter (fun c -> if c = 'a' then incr acount) s;
  Engine.emit eng (Cost.make ~alu:(String.length s) ~load:(String.length s / 8) ());
  out_line buf (string_of_int (String.length s));
  out_line buf (string_of_int !acount)

(* --- mandelbrot --- *)

let mandelbrot ctx buf =
  let eng = Ctx.engine ctx in
  let size = 52 in
  let total = ref 0 in
  for py = 0 to size - 1 do
    let ci = (2.0 *. float_of_int py /. float_of_int size) -. 1.0 in
    for px = 0 to size - 1 do
      let cr = (2.0 *. float_of_int px /. float_of_int size) -. 1.5 in
      let zr = ref 0.0 and zi = ref 0.0 in
      let inside = ref true in
      (try
         for _ = 1 to 50 do
           Engine.emit eng (Cost.make ~fpu:10 ~alu:3 ());
           let zr2 = !zr *. !zr and zi2 = !zi *. !zi in
           let escaped = zr2 +. zi2 > 4.0 in
           Engine.branch eng ~site:800_003 ~taken:(not escaped);
           if escaped then begin
             inside := false;
             raise Exit
           end;
           zi := (2.0 *. !zr *. !zi) +. ci;
           zr := zr2 -. zi2 +. cr
         done
       with Exit -> ());
      if !inside then incr total
    done
  done;
  out_line buf (string_of_int !total)

(* --- nbody --- *)

let nbody ctx buf =
  let eng = Ctx.engine ctx in
  let n = 5 in
  let xs = [| 0.0; 4.84; 8.34; 12.89; 15.37 |] in
  let ys = [| 0.0; -1.16; 4.12; -15.11; -25.91 |] in
  let zs = [| 0.0; -0.1; -0.4; -0.22; 0.17 |] in
  let vxs = [| 0.0; 0.00166; -0.00276; 0.00296; 0.00268 |] in
  let vys = [| 0.0; 0.00769; 0.0049; 0.00237; 0.00162 |] in
  let vzs = [| 0.0; -0.00002; 0.00002; -0.00003; -0.00009 |] in
  let ms = [| 39.47; 0.03769; 0.011286; 0.0017237; 0.0020336 |] in
  let px = ref 0.0 and py = ref 0.0 and pz = ref 0.0 in
  for i = 0 to n - 1 do
    px := !px +. (vxs.(i) *. ms.(i));
    py := !py +. (vys.(i) *. ms.(i));
    pz := !pz +. (vzs.(i) *. ms.(i))
  done;
  vxs.(0) <- 0.0 -. (!px /. ms.(0));
  vys.(0) <- 0.0 -. (!py /. ms.(0));
  vzs.(0) <- 0.0 -. (!pz /. ms.(0));
  let energy () =
    let e = ref 0.0 in
    for i = 0 to n - 1 do
      Engine.emit eng c_float;
      e :=
        !e
        +. (0.5 *. ms.(i)
           *. ((vxs.(i) *. vxs.(i)) +. (vys.(i) *. vys.(i)) +. (vzs.(i) *. vzs.(i))));
      for j = i + 1 to n - 1 do
        Engine.emit eng (Cost.make ~fpu:12 ~alu:2 ());
        let dx = xs.(i) -. xs.(j)
        and dy = ys.(i) -. ys.(j)
        and dz = zs.(i) -. zs.(j) in
        e :=
          !e
          -. (ms.(i) *. ms.(j)
             /. Float.pow ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) 0.5)
      done
    done;
    !e
  in
  let e0 = energy () in
  for _ = 1 to 700 do
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        Engine.emit eng (Cost.make ~fpu:22 ~alu:4 ~load:6 ~store:6 ());
        let dx = xs.(i) -. xs.(j)
        and dy = ys.(i) -. ys.(j)
        and dz = zs.(i) -. zs.(j) in
        let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        let mag = 0.01 /. (d2 *. Float.pow d2 0.5) in
        vxs.(i) <- vxs.(i) -. (dx *. ms.(j) *. mag);
        vys.(i) <- vys.(i) -. (dy *. ms.(j) *. mag);
        vzs.(i) <- vzs.(i) -. (dz *. ms.(j) *. mag);
        vxs.(j) <- vxs.(j) +. (dx *. ms.(i) *. mag);
        vys.(j) <- vys.(j) +. (dy *. ms.(i) *. mag);
        vzs.(j) <- vzs.(j) +. (dz *. ms.(i) *. mag)
      done
    done;
    for i = 0 to n - 1 do
      Engine.emit eng (Cost.make ~fpu:6 ~load:3 ~store:3 ());
      xs.(i) <- xs.(i) +. (0.01 *. vxs.(i));
      ys.(i) <- ys.(i) +. (0.01 *. vys.(i));
      zs.(i) <- zs.(i) +. (0.01 *. vzs.(i))
    done
  done;
  let e1 = energy () in
  out_line buf (string_of_int (int_of_float (e0 *. 1000000000.)));
  out_line buf (string_of_int (int_of_float (e1 *. 1000000000.)))

(* --- spectralnorm --- *)

let spectralnorm ctx buf =
  let eng = Ctx.engine ctx in
  let n = 34 in
  let eval_a i j =
    1.0 /. ((float_of_int ((i + j) * (i + j + 1)) /. 2.0) +. float_of_int i +. 1.0)
  in
  let u = Array.make n 1.0 and v = Array.make n 0.0 and w = Array.make n 0.0 in
  let a_times_u src out =
    for i = 0 to n - 1 do
      let s = ref 0.0 in
      for j = 0 to n - 1 do
        Engine.emit eng (Cost.make ~fpu:7 ~alu:3 ~load:1 ());
        s := !s +. (eval_a i j *. src.(j))
      done;
      out.(i) <- !s
    done
  in
  let at_times_u src out =
    for i = 0 to n - 1 do
      let s = ref 0.0 in
      for j = 0 to n - 1 do
        Engine.emit eng (Cost.make ~fpu:7 ~alu:3 ~load:1 ());
        s := !s +. (eval_a j i *. src.(j))
      done;
      out.(i) <- !s
    done
  in
  for _ = 1 to 10 do
    a_times_u u w;
    at_times_u w v;
    a_times_u v w;
    at_times_u w u
  done;
  let vbv = ref 0.0 and vv = ref 0.0 in
  for i = 0 to n - 1 do
    vbv := !vbv +. (u.(i) *. v.(i));
    vv := !vv +. (v.(i) *. v.(i))
  done;
  out_line buf (string_of_int (int_of_float (sqrt (!vbv /. !vv) *. 1000000000.)))

(* --- fannkuchredux --- *)

let fannkuchredux ctx buf =
  let eng = Ctx.engine ctx in
  let n = 6 in
  let perm1 = Array.init n (fun i -> i) in
  let count = Array.make n 0 in
  let perm = Array.make n 0 in
  let max_flips = ref 0 and checksum = ref 0 and sign = ref 1 in
  let running = ref true in
  while !running do
    if perm1.(0) <> 0 then begin
      Array.blit perm1 0 perm 0 n;
      let flips = ref 0 in
      while perm.(0) <> 0 do
        Engine.emit eng (Cost.make ~alu:6 ~load:4 ~store:4 ());
        let k = perm.(0) in
        let lo = ref 0 and hi = ref k in
        while !lo < !hi do
          let t = perm.(!lo) in
          perm.(!lo) <- perm.(!hi);
          perm.(!hi) <- t;
          incr lo;
          decr hi
        done;
        incr flips
      done;
      if !flips > !max_flips then max_flips := !flips;
      checksum := !checksum + (!sign * !flips)
    end;
    sign := - !sign;
    let i = ref 1 in
    let advanced = ref false in
    while (not !advanced) && !i < n do
      Engine.emit eng c_mem;
      let t = perm1.(0) in
      for j = 0 to !i - 1 do
        perm1.(j) <- perm1.(j + 1)
      done;
      perm1.(!i) <- t;
      count.(!i) <- count.(!i) + 1;
      if count.(!i) <= !i then advanced := true
      else begin
        count.(!i) <- 0;
        incr i
      end
    done;
    if not !advanced then running := false
  done;
  out_line buf (string_of_int !max_flips);
  out_line buf (string_of_int !checksum)

(* --- pidigits (uses the same bignum library, as real C uses GMP) --- *)

let pidigits ctx buf =
  let module B = Rbigint in
  let eng = Ctx.engine ctx in
  let big = B.of_int in
  let q = ref B.one
  and r = ref B.zero
  and t = ref B.one
  and k = ref 1
  and digits = ref 0
  and checksum = ref 0 in
  while !digits < 160 do
    (* charge the glue code; bignum work itself is charged via the digit
       counts like any other AOT bigint call *)
    let work = B.num_digits !q + B.num_digits !r + B.num_digits !t in
    Engine.emit eng (Cost.make ~alu:(8 + (6 * work)) ~load:(4 + (2 * work)) ~store:(2 + work) ());
    let k2 = (2 * !k) + 1 in
    let y, _ =
      B.divmod
        (B.add (B.mul !q (big ((4 * !k) + 2))) (B.mul !r (big k2)))
        (B.mul !t (big k2))
    in
    let y3, _ =
      B.divmod
        (B.add
           (B.add (B.mul !q (big ((4 * !k) + 6))) (B.mul !r (big k2)))
           (B.mul !q (big 3)))
        (B.mul !t (big k2))
    in
    if B.equal y y3 then begin
      let d = int_of_string (B.to_string y) in
      checksum := ((!checksum * 10) + d) mod 1000000007;
      incr digits;
      r := B.mul (B.sub !r (B.mul !t y)) (big 10);
      q := B.mul !q (big 10)
    end
    else begin
      r := B.mul (B.add (B.add !q !q) !r) (big k2);
      t := B.mul !t (big k2);
      q := B.mul !q (big !k);
      incr k
    end
  done;
  out_line buf (string_of_int !checksum)

(* --- revcomp --- *)

let revcomp ctx buf =
  let eng = Ctx.engine ctx in
  let chars = [| 'a'; 'c'; 'g'; 't' |] in
  let n = 5200 in
  let seq = Bytes.create n in
  let seed = ref 13 in
  for i = 0 to n - 1 do
    seed := ((!seed * 1103515245) + 12345) mod 2147483648;
    Bytes.set seq i chars.(!seed mod 4)
  done;
  Engine.emit eng (Cost.make ~alu:(3 * n) ~load:n ~store:n ());
  let comp c =
    match c with 'a' -> 't' | 't' -> 'a' | 'c' -> 'g' | 'g' -> 'c' | c -> c
  in
  let rc = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set rc i (comp (Bytes.get seq (n - 1 - i)))
  done;
  Engine.emit eng (Cost.make ~alu:(2 * n) ~load:n ~store:n ());
  let matches = ref 0 in
  for i = 0 to n - 1 do
    if Bytes.get rc i = 'g' then incr matches
  done;
  Engine.emit eng (Cost.make ~alu:n ~load:n ());
  out_line buf (string_of_int n);
  out_line buf (string_of_int !matches)

(* --- knucleotide --- *)

let knucleotide ctx buf =
  let eng = Ctx.engine ctx in
  let chars = [| "a"; "c"; "g"; "t" |] in
  let nseq = 4200 in
  let parts = Buffer.create nseq in
  let seed = ref 99 in
  for _ = 1 to nseq do
    seed := ((!seed * 69069) + 1) mod 4294967296;
    Buffer.add_string parts chars.(!seed mod 4)
  done;
  let seq = Buffer.contents parts in
  let total = ref 0 in
  List.iter
    (fun k ->
      let counts = Hashtbl.create 1024 in
      for i = 0 to String.length seq - k do
        Engine.emit eng (Cost.make ~alu:8 ~load:4 ~store:1 ());
        Engine.branch eng ~site:800_004 ~taken:(i land 7 <> 0);
        let kmer = String.sub seq i k in
        Hashtbl.replace counts kmer
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts kmer))
      done;
      let best = Hashtbl.fold (fun _ v acc -> max v acc) counts 0 in
      total := !total + best + Hashtbl.length counts)
    [ 1; 2; 3; 4 ];
  out_line buf (string_of_int !total)

(* --- chameneosredux --- *)

let chameneosredux ctx buf =
  let eng = Ctx.engine ctx in
  let complement c1 c2 =
    if c1 = c2 then c1
    else if c1 = 0 then if c2 = 2 then 1 else 2
    else if c1 = 1 then if c2 = 2 then 0 else 2
    else if c2 = 1 then 0
    else 1
  in
  let creatures = [| 0; 1; 2; 0; 1; 2; 0; 1 |] in
  let n = Array.length creatures in
  let meets = Array.make n 0 in
  let seed = ref 5 in
  for _ = 1 to 26000 do
    Engine.emit eng (Cost.make ~alu:14 ~load:4 ~store:4 ());
    Engine.branch eng ~site:800_005 ~taken:(!seed land 1 = 0);
    seed := ((!seed * 1103515245) + 12345) mod 2147483648;
    let i = !seed mod n in
    let j = (i + 1 + (!seed mod (n - 1))) mod n in
    let nc = complement creatures.(i) creatures.(j) in
    creatures.(i) <- nc;
    creatures.(j) <- nc;
    meets.(i) <- meets.(i) + 1;
    meets.(j) <- meets.(j) + 1
  done;
  out_line buf (string_of_int (Array.fold_left ( + ) 0 meets));
  out_line buf (string_of_int creatures.(0))

let kernels : kernel list =
  [
    { kname = "binarytrees"; run = binarytrees };
    { kname = "fasta"; run = fasta };
    { kname = "mandelbrot"; run = mandelbrot };
    { kname = "nbody"; run = nbody };
    { kname = "spectralnorm"; run = spectralnorm };
    { kname = "fannkuchredux"; run = fannkuchredux };
    { kname = "pidigits"; run = pidigits };
    { kname = "revcomp"; run = revcomp };
    { kname = "knucleotide"; run = knucleotide };
    { kname = "chameneosredux"; run = chameneosredux };
  ]

let find name = List.find_opt (fun k -> k.kname = name) kernels

(** run a kernel under the native profile; returns its printed output *)
let run ctx (k : kernel) : string =
  let eng = Ctx.engine ctx in
  Engine.set_interp_width eng Profile.native.Profile.interp_width;
  let buf = Buffer.create 256 in
  Engine.in_phase eng Phase.Native (fun () -> k.run ctx buf);
  Buffer.contents buf
