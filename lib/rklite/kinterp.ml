(** The rklite bytecode interpreter, functorized over the OPS seam
    (the Pycket analogue: same meta-tracing framework, different hosted
    language). *)

open Mtj_rt
open Mtj_rjit
open Kbytecode

module Step (O : Ops_intf.OPS) = struct
  type frame = (O.t, Kbytecode.code) Frame.t

  let err = Semantics.err

  let make_frame cx code parent : frame =
    Frame.create_pooled ~pool:(O.frame_pool cx) ~code
      ~code_ref:code.Kbytecode.id ~nlocals:code.Kbytecode.nlocals
      ~stack_size:code.Kbytecode.stacksize ~parent

  (* pop [n] operands into a fresh positional-order array (top of stack
     is the last argument) — no per-call list building on the call path *)
  let pop_args cx (f : frame) n : O.t array =
    if n = 0 then [||]
    else begin
      let args = Array.make n (O.const cx Value.nil) in
      for i = n - 1 downto 0 do
        args.(i) <- Frame.pop f
      done;
      args
    end

  let pair_class cx globals = O.load_global cx globals "%pair"

  let cons cx globals car cdr =
    let p = O.alloc_instance cx (pair_class cx globals) in
    O.setattr cx p "car" car;
    O.setattr cx p "cdr" cdr;
    p

  let number_prim cx op (args : O.t list) identity =
    match args with
    | [] -> O.const cx identity
    | x :: rest -> List.fold_left (fun acc a -> op cx acc a) x rest

  let cmp_chain cx op (args : O.t list) =
    (* (< a b c ...) *)
    let rec go = function
      | a :: (b :: _ as rest) ->
          if O.is_true cx (O.compare cx op a b) then go rest else false
      | _ -> true
    in
    O.const cx (Value.of_bool (go args))

  let prim cx globals (f : frame) (p : prim) (args : O.t list) : O.t =
    ignore f;
    match (p, args) with
    | P_add, _ -> number_prim cx O.add args (Value.of_int 0)
    | P_sub, [ x ] -> O.neg cx x
    | P_sub, x :: rest when rest <> [] ->
        List.fold_left (fun acc a -> O.sub cx acc a) x rest
    | P_mul, _ -> number_prim cx O.mul args (Value.of_int 1)
    | P_div, [ a; b ] -> O.truediv cx a b
    | P_quotient, [ a; b ] -> O.floordiv cx a b
    | P_remainder, [ a; b ] | P_modulo, [ a; b ] -> O.modulo cx a b
    | P_lt, _ -> cmp_chain cx Ops_intf.Lt args
    | P_le, _ -> cmp_chain cx Ops_intf.Le args
    | P_gt, _ -> cmp_chain cx Ops_intf.Gt args
    | P_ge, _ -> cmp_chain cx Ops_intf.Ge args
    | P_numeq, _ -> cmp_chain cx Ops_intf.Eq args
    | P_eq, [ a; b ] -> O.compare cx Ops_intf.Is a b
    | P_equal, [ a; b ] -> O.compare cx Ops_intf.Eq a b
    | P_not, [ a ] -> O.not_ cx a
    | P_zerop, [ a ] -> O.compare cx Ops_intf.Eq a (O.const cx (Value.of_int 0))
    | P_nullp, [ a ] -> O.compare cx Ops_intf.Is a (O.const cx Value.nil)
    | P_pairp, [ a ] ->
        let cv = O.concrete a in
        O.const cx
          (Value.of_bool
             (Value.is_obj cv
             &&
             (* the only instances in rklite are pairs *)
             match (Value.to_obj_unchecked cv).Value.payload with
             | Value.Instance _ -> true
             | _ -> false))
    | P_car, [ a ] -> O.getattr cx a "car"
    | P_cdr, [ a ] -> O.getattr cx a "cdr"
    | P_cons, [ a; d ] -> cons cx globals a d
    | P_set_car, [ p; v ] ->
        O.setattr cx p "car" v;
        O.const cx Value.nil
    | P_set_cdr, [ p; v ] ->
        O.setattr cx p "cdr" v;
        O.const cx Value.nil
    | P_vector_ref, [ v; i ] -> O.getitem cx v i
    | P_vector_set, [ v; i; x ] ->
        O.setitem cx v i x;
        O.const cx Value.nil
    | P_vector_length, [ v ] -> O.len_ cx v
    | P_vector, _ -> O.make_list cx (Array.of_list args)
    | P_make_vector, [ n ] ->
        O.call_builtin cx Builtin.Make_vector [| n; O.const cx (Value.of_int 0) |]
    | P_make_vector, [ n; init ] ->
        O.call_builtin cx Builtin.Make_vector [| n; init |]
    | P_display, [ v ] -> O.call_builtin cx Builtin.Display [| v |]
    | P_newline, [] ->
        O.call_builtin cx Builtin.Display [| O.const cx (Value.of_str "\n") |]
    | P_sqrt, [ v ] -> O.call_builtin cx Builtin.Sqrt [| v |]
    | P_sin, [ v ] -> O.call_builtin cx Builtin.Sin [| v |]
    | P_cos, [ v ] -> O.call_builtin cx Builtin.Cos [| v |]
    | P_expt, [ a; b ] -> O.pow cx a b
    | P_abs, [ v ] -> O.call_builtin cx Builtin.Abs [| v |]
    | P_min, [ a; b ] -> O.call_builtin cx Builtin.Min2 [| a; b |]
    | P_max, [ a; b ] -> O.call_builtin cx Builtin.Max2 [| a; b |]
    | P_floor, [ v ] -> O.call_builtin cx Builtin.Floor_f [| v |]
    | P_num_to_str, [ v ] -> O.call_builtin cx Builtin.To_str [| v |]
    | P_str_append, _ ->
        number_prim cx O.add args (Value.of_str "")
    | P_str_length, [ v ] -> O.len_ cx v
    | P_to_float, [ v ] -> O.call_builtin cx Builtin.To_float [| v |]
    | P_list, _ ->
        List.fold_right (fun a acc -> cons cx globals a acc) args
          (O.const cx Value.nil)
    | P_annotate, [ v ] -> O.call_builtin cx Builtin.Annotate [| v |]
    | p, _ ->
        err "%s: wrong number of arguments (%d)" (prim_name p)
          (List.length args)

  let step cx (globals : Globals.t) (f : frame) :
      (O.t, Kbytecode.code) Frame.outcome =
    let pc = f.Frame.pc in
    let instr = f.Frame.code.Kbytecode.instrs.(pc) in
    let continue_at next =
      f.Frame.pc <- next;
      Frame.Continue
    in
    let next () = continue_at (pc + 1) in
    match instr with
    | K_CONST v ->
        Frame.push f (O.const cx v);
        next ()
    | K_LOCAL slot ->
        Frame.push f f.Frame.locals.(slot);
        next ()
    | K_SET_LOCAL slot ->
        f.Frame.locals.(slot) <- Frame.pop f;
        next ()
    | K_GLOBAL name ->
        Frame.push f (O.load_global cx globals name);
        next ()
    | K_SET_GLOBAL name ->
        O.store_global cx globals name (Frame.pop f);
        next ()
    | K_CELL_GET slot ->
        Frame.push f (O.cell_get cx f.Frame.locals.(slot));
        next ()
    | K_CELL_SET slot ->
        let v = Frame.pop f in
        O.cell_set cx f.Frame.locals.(slot) v;
        next ()
    | K_MAKE_CELL slot ->
        f.Frame.locals.(slot) <- O.make_cell cx f.Frame.locals.(slot);
        next ()
    | K_CLOSURE { code_ref; arity; cname; capture_slots } ->
        let cells = Array.map (fun s -> f.Frame.locals.(s)) capture_slots in
        Frame.push f (O.make_closure cx ~code_ref ~arity ~fname:cname cells);
        next ()
    | K_CALL nargs ->
        let args = pop_args cx f nargs in
        let callee = Frame.pop f in
        let fn = O.guard_func cx callee in
        if fn.Value.code_ref < 0 then begin
          let b = Builtin.of_tag (-fn.Value.code_ref - 1) in
          let r = O.call_builtin cx b args in
          Frame.push f r;
          next ()
        end
        else begin
          if fn.Value.arity <> nargs then
            err "%s: expects %d arguments, got %d" fn.Value.func_name
              fn.Value.arity nargs;
          let code = Kcode_table.lookup fn.Value.code_ref in
          f.Frame.pc <- pc + 1;
          let nf = make_frame cx code (Some f) in
          Array.blit args 0 nf.Frame.locals 0 nargs;
          (* copy the captured cells into the capture slots *)
          for i = 0 to code.Kbytecode.ncaptured - 1 do
            nf.Frame.locals.(code.Kbytecode.nargs + i) <-
              O.func_captured cx callee i
          done;
          Frame.Call nf
        end
    | K_TAILCALL nargs ->
        let args = pop_args cx f nargs in
        let callee = Frame.pop f in
        let fn = O.guard_func cx callee in
        if fn.Value.code_ref < 0 then begin
          let b = Builtin.of_tag (-fn.Value.code_ref - 1) in
          let r = O.call_builtin cx b args in
          Frame.Return r
        end
        else begin
          if fn.Value.arity <> nargs then
            err "%s: expects %d arguments, got %d" fn.Value.func_name
              fn.Value.arity nargs;
          let code = Kcode_table.lookup fn.Value.code_ref in
          (* proper tail call: the new frame replaces this one *)
          let nf = make_frame cx code f.Frame.parent in
          nf.Frame.discard_return <- f.Frame.discard_return;
          Array.blit args 0 nf.Frame.locals 0 nargs;
          for i = 0 to code.Kbytecode.ncaptured - 1 do
            nf.Frame.locals.(code.Kbytecode.nargs + i) <-
              O.func_captured cx callee i
          done;
          (* the replaced frame is dead the instant we hand back [nf]:
             nothing simulated can run between here and the driver
             swapping its chain head, so its arrays can be recycled *)
          Frame.release ~pool:(O.frame_pool cx) f;
          Frame.Call nf
        end
    | K_TAILJUMP nargs ->
        (* refresh the parameters and restart the function body *)
        for i = nargs - 1 downto 0 do
          f.Frame.locals.(i) <- Frame.pop f
        done;
        (* re-box celled parameters for the next iteration *)
        continue_at 0
    | K_JUMP t -> continue_at t
    | K_JUMP_IF_FALSE t ->
        let v = Frame.pop f in
        if O.is_true cx v then next () else continue_at t
    | K_JFALSE_OR_POP t ->
        let v = Frame.peek f 0 in
        if O.is_true cx v then begin
          ignore (Frame.pop f);
          next ()
        end
        else continue_at t
    | K_JTRUE_OR_POP t ->
        let v = Frame.peek f 0 in
        if O.is_true cx v then continue_at t
        else begin
          ignore (Frame.pop f);
          next ()
        end
    | K_RETURN -> Frame.Return (Frame.pop f)
    | K_POP ->
        ignore (Frame.pop f);
        next ()
    | K_PRIM (p, nargs) ->
        let rec pops n acc =
          if n = 0 then acc else pops (n - 1) (Frame.pop f :: acc)
        in
        let args = pops nargs [] in
        let r = prim cx globals f p args in
        Frame.push f r;
        next ()

  (* the reference decode-and-match loop, under the name the driver and
     the threaded tier know it by *)
  let step_ref = step
end

(* ------------------------------------------------------------------ *)
(* The threaded-dispatch tier (the rklite half of {!Mtj_rjit.Threaded}).

   Mirrors [Interp.threaded_code]: one pre-bound closure per bytecode
   over [Direct_ops], operands and prim dispatch resolved at translate
   time, hottest shapes fused.  Charge sequences are byte-identical to
   [Step(Direct_ops).step_ref] (held by test/test_dispatch_diff.ml). *)

module D_ref = Step (Direct_ops)

type dstep = (Direct_ops.t, Kbytecode.code) Threaded.step

(* 2-argument prims whose reference handler reduces to exactly one
   Direct_ops call (a single arithmetic charge): pre-resolved for the
   standalone K_PRIM step and the K_LOCAL+K_LOCAL+K_PRIM fusion *)
let arith2_fn :
    prim -> (Direct_ops.cx -> Direct_ops.t -> Direct_ops.t -> Direct_ops.t) option
    = function
  | P_add -> Some Direct_ops.add
  | P_sub -> Some Direct_ops.sub
  | P_mul -> Some Direct_ops.mul
  | P_div -> Some Direct_ops.truediv
  | P_quotient -> Some Direct_ops.floordiv
  | P_remainder | P_modulo -> Some Direct_ops.modulo
  | _ -> None

(* 2-argument comparison chains: [cmp_chain] on [a; b] charges one
   compare and one is_true, then pushes the (free) Bool const *)
let cmp2_op : prim -> Ops_intf.cmp option = function
  | P_lt -> Some Ops_intf.Lt
  | P_le -> Some Ops_intf.Le
  | P_gt -> Some Ops_intf.Gt
  | P_ge -> Some Ops_intf.Ge
  | P_numeq -> Some Ops_intf.Eq
  | _ -> None

let threaded_code (cx : Direct_ops.cx) (globals : Globals.t)
    (d : Threaded.dispatch) (code : Kbytecode.code) : dstep array =
  let instrs = code.Kbytecode.instrs in
  let hdrs = code.Kbytecode.headers in
  let n = Array.length instrs in
  let charge = Threaded.charger d in
  let err = Semantics.err in
  (* a stale code table must fail at translation, not mid-run *)
  Array.iter
    (function
      | K_CLOSURE { code_ref; _ } -> ignore (Kcode_table.lookup code_ref)
      | _ -> ())
    instrs;
  let step_of pc instr : dstep =
    let target = Kbytecode.tag instr in
    let next = pc + 1 in
    match instr with
    | K_CONST v ->
        let c = Direct_ops.const cx v in
        fun f ->
          charge ~target;
          Frame.push f c;
          f.Frame.pc <- next;
          Frame.Continue
    | K_LOCAL slot ->
        fun f ->
          charge ~target;
          Frame.push f f.Frame.locals.(slot);
          f.Frame.pc <- next;
          Frame.Continue
    | K_SET_LOCAL slot ->
        fun f ->
          charge ~target;
          f.Frame.locals.(slot) <- Frame.pop f;
          f.Frame.pc <- next;
          Frame.Continue
    | K_GLOBAL name ->
        fun f ->
          charge ~target;
          Frame.push f (Direct_ops.load_global cx globals name);
          f.Frame.pc <- next;
          Frame.Continue
    | K_SET_GLOBAL name ->
        fun f ->
          charge ~target;
          Direct_ops.store_global cx globals name (Frame.pop f);
          f.Frame.pc <- next;
          Frame.Continue
    | K_CELL_GET slot ->
        fun f ->
          charge ~target;
          Frame.push f (Direct_ops.cell_get cx f.Frame.locals.(slot));
          f.Frame.pc <- next;
          Frame.Continue
    | K_CELL_SET slot ->
        fun f ->
          charge ~target;
          let v = Frame.pop f in
          Direct_ops.cell_set cx f.Frame.locals.(slot) v;
          f.Frame.pc <- next;
          Frame.Continue
    | K_MAKE_CELL slot ->
        fun f ->
          charge ~target;
          f.Frame.locals.(slot) <- Direct_ops.make_cell cx f.Frame.locals.(slot);
          f.Frame.pc <- next;
          Frame.Continue
    | K_CLOSURE { code_ref; arity; cname; capture_slots } ->
        fun f ->
          charge ~target;
          let cells = Array.map (fun s -> f.Frame.locals.(s)) capture_slots in
          Frame.push f
            (Direct_ops.make_closure cx ~code_ref ~arity ~fname:cname cells);
          f.Frame.pc <- next;
          Frame.Continue
    | K_CALL nargs ->
        fun f ->
          charge ~target;
          let args = D_ref.pop_args cx f nargs in
          let callee = Frame.pop f in
          let fn = Direct_ops.guard_func cx callee in
          if fn.Value.code_ref < 0 then begin
            let b = Builtin.of_tag (-fn.Value.code_ref - 1) in
            let r = Direct_ops.call_builtin cx b args in
            Frame.push f r;
            f.Frame.pc <- next;
            Frame.Continue
          end
          else begin
            if fn.Value.arity <> nargs then
              err "%s: expects %d arguments, got %d" fn.Value.func_name
                fn.Value.arity nargs;
            let code = Kcode_table.lookup fn.Value.code_ref in
            f.Frame.pc <- next;
            let nf = D_ref.make_frame cx code (Some f) in
            Array.blit args 0 nf.Frame.locals 0 nargs;
            for i = 0 to code.Kbytecode.ncaptured - 1 do
              nf.Frame.locals.(code.Kbytecode.nargs + i) <-
                Direct_ops.func_captured cx callee i
            done;
            Frame.Call nf
          end
    | K_TAILCALL nargs ->
        fun f ->
          charge ~target;
          let args = D_ref.pop_args cx f nargs in
          let callee = Frame.pop f in
          let fn = Direct_ops.guard_func cx callee in
          if fn.Value.code_ref < 0 then begin
            let b = Builtin.of_tag (-fn.Value.code_ref - 1) in
            let r = Direct_ops.call_builtin cx b args in
            Frame.Return r
          end
          else begin
            if fn.Value.arity <> nargs then
              err "%s: expects %d arguments, got %d" fn.Value.func_name
                fn.Value.arity nargs;
            let code = Kcode_table.lookup fn.Value.code_ref in
            let nf = D_ref.make_frame cx code f.Frame.parent in
            nf.Frame.discard_return <- f.Frame.discard_return;
            Array.blit args 0 nf.Frame.locals 0 nargs;
            for i = 0 to code.Kbytecode.ncaptured - 1 do
              nf.Frame.locals.(code.Kbytecode.nargs + i) <-
                Direct_ops.func_captured cx callee i
            done;
            Frame.release ~pool:(Direct_ops.frame_pool cx) f;
            Frame.Call nf
          end
    | K_TAILJUMP nargs ->
        fun f ->
          charge ~target;
          for i = nargs - 1 downto 0 do
            f.Frame.locals.(i) <- Frame.pop f
          done;
          f.Frame.pc <- 0;
          Frame.Continue
    | K_JUMP t ->
        fun f ->
          charge ~target;
          f.Frame.pc <- t;
          Frame.Continue
    | K_JUMP_IF_FALSE t ->
        fun f ->
          charge ~target;
          let v = Frame.pop f in
          f.Frame.pc <- (if Direct_ops.is_true cx v then next else t);
          Frame.Continue
    | K_JFALSE_OR_POP t ->
        fun f ->
          charge ~target;
          let v = Frame.peek f 0 in
          if Direct_ops.is_true cx v then begin
            ignore (Frame.pop f);
            f.Frame.pc <- next
          end
          else f.Frame.pc <- t;
          Frame.Continue
    | K_JTRUE_OR_POP t ->
        fun f ->
          charge ~target;
          let v = Frame.peek f 0 in
          if Direct_ops.is_true cx v then f.Frame.pc <- t
          else begin
            ignore (Frame.pop f);
            f.Frame.pc <- next
          end;
          Frame.Continue
    | K_RETURN ->
        fun f ->
          charge ~target;
          Frame.Return (Frame.pop f)
    | K_POP ->
        fun f ->
          charge ~target;
          ignore (Frame.pop f);
          f.Frame.pc <- next;
          Frame.Continue
    | K_PRIM (p, 2) when arith2_fn p <> None ->
        let fn = Option.get (arith2_fn p) in
        fun f ->
          charge ~target;
          let y = Frame.pop f in
          let x = Frame.pop f in
          Frame.push f (fn cx x y);
          f.Frame.pc <- next;
          Frame.Continue
    | K_PRIM (p, 2) when cmp2_op p <> None ->
        let op = Option.get (cmp2_op p) in
        fun f ->
          charge ~target;
          let y = Frame.pop f in
          let x = Frame.pop f in
          let r = Direct_ops.compare cx op x y in
          Frame.push f (Value.of_bool (Direct_ops.is_true cx r));
          f.Frame.pc <- next;
          Frame.Continue
    | K_PRIM (p, nargs) ->
        (* cold prims: pre-bind the dispatch charge and the prim symbol,
           reuse the reference dispatcher *)
        fun f ->
          charge ~target;
          let rec pops n acc =
            if n = 0 then acc else pops (n - 1) (Frame.pop f :: acc)
          in
          let args = pops nargs [] in
          let r = D_ref.prim cx globals f p args in
          Frame.push f r;
          f.Frame.pc <- next;
          Frame.Continue
  in
  let steps = Array.init n (fun pc -> step_of pc instrs.(pc)) in
  (* superinstructions, same rules as the pylite translator: fused form
     at the head pc only, interior pcs keep their standalone steps and
     must not be loop headers, interior dispatch charges are emitted
     in-line in reference order *)
  let interior pc = pc < n && not hdrs.(pc) in
  let fused pc =
    match instrs.(pc) with
    | K_LOCAL a when interior (pc + 1) && interior (pc + 2) -> (
        let t0 = Kbytecode.tag instrs.(pc) in
        let t1 = Kbytecode.tag instrs.(pc + 1) in
        let t2 = Kbytecode.tag instrs.(pc + 2) in
        let nx = pc + 3 in
        match (instrs.(pc + 1), instrs.(pc + 2)) with
        | K_LOCAL b, K_PRIM (p, 2) when arith2_fn p <> None ->
            let fn = Option.get (arith2_fn p) in
            Some
              (fun f ->
                charge ~target:t0;
                let x = f.Frame.locals.(a) in
                charge ~target:t1;
                let y = f.Frame.locals.(b) in
                charge ~target:t2;
                Frame.push f (fn cx x y);
                f.Frame.pc <- nx;
                Frame.Continue)
        | _ -> None)
    | K_PRIM (p, 2) when cmp2_op p <> None && interior (pc + 1) -> (
        let op = Option.get (cmp2_op p) in
        let t0 = Kbytecode.tag instrs.(pc) in
        let t1 = Kbytecode.tag instrs.(pc + 1) in
        let nx = pc + 2 in
        match instrs.(pc + 1) with
        | K_JUMP_IF_FALSE t ->
            Some
              (fun f ->
                charge ~target:t0;
                let y = Frame.pop f in
                let x = Frame.pop f in
                let r = Direct_ops.compare cx op x y in
                let res = Direct_ops.is_true cx r in
                charge ~target:t1;
                f.Frame.pc <-
                  (if Direct_ops.is_true cx (Value.of_bool res) then nx else t);
                Frame.Continue)
        | _ -> None)
    | _ -> None
  in
  for pc = 0 to n - 1 do
    match fused pc with Some s -> steps.(pc) <- s | None -> ()
  done;
  steps
