(** The rklite bytecode interpreter, functorized over the OPS seam
    (the Pycket analogue: same meta-tracing framework, different hosted
    language). *)

open Mtj_rt
open Mtj_rjit
open Kbytecode

module Step (O : Ops_intf.OPS) = struct
  type frame = (O.t, Kbytecode.code) Frame.t

  let err = Semantics.err

  let make_frame cx code parent : frame =
    Frame.create ~code ~code_ref:code.Kbytecode.id
      ~nlocals:code.Kbytecode.nlocals ~stack_size:code.Kbytecode.stacksize
      ~default:(O.const cx Value.Nil)
      ~parent

  (* pop [n] operands into a fresh positional-order array (top of stack
     is the last argument) — no per-call list building on the call path *)
  let pop_args cx (f : frame) n : O.t array =
    if n = 0 then [||]
    else begin
      let args = Array.make n (O.const cx Value.Nil) in
      for i = n - 1 downto 0 do
        args.(i) <- Frame.pop f
      done;
      args
    end

  let pair_class cx globals = O.load_global cx globals "%pair"

  let cons cx globals car cdr =
    let p = O.alloc_instance cx (pair_class cx globals) in
    O.setattr cx p "car" car;
    O.setattr cx p "cdr" cdr;
    p

  let number_prim cx op (args : O.t list) identity =
    match args with
    | [] -> O.const cx identity
    | x :: rest -> List.fold_left (fun acc a -> op cx acc a) x rest

  let cmp_chain cx op (args : O.t list) =
    (* (< a b c ...) *)
    let rec go = function
      | a :: (b :: _ as rest) ->
          if O.is_true cx (O.compare cx op a b) then go rest else false
      | _ -> true
    in
    O.const cx (Value.Bool (go args))

  let prim cx globals (f : frame) (p : prim) (args : O.t list) : O.t =
    ignore f;
    match (p, args) with
    | P_add, _ -> number_prim cx O.add args (Value.Int 0)
    | P_sub, [ x ] -> O.neg cx x
    | P_sub, x :: rest when rest <> [] ->
        List.fold_left (fun acc a -> O.sub cx acc a) x rest
    | P_mul, _ -> number_prim cx O.mul args (Value.Int 1)
    | P_div, [ a; b ] -> O.truediv cx a b
    | P_quotient, [ a; b ] -> O.floordiv cx a b
    | P_remainder, [ a; b ] | P_modulo, [ a; b ] -> O.modulo cx a b
    | P_lt, _ -> cmp_chain cx Ops_intf.Lt args
    | P_le, _ -> cmp_chain cx Ops_intf.Le args
    | P_gt, _ -> cmp_chain cx Ops_intf.Gt args
    | P_ge, _ -> cmp_chain cx Ops_intf.Ge args
    | P_numeq, _ -> cmp_chain cx Ops_intf.Eq args
    | P_eq, [ a; b ] -> O.compare cx Ops_intf.Is a b
    | P_equal, [ a; b ] -> O.compare cx Ops_intf.Eq a b
    | P_not, [ a ] -> O.not_ cx a
    | P_zerop, [ a ] -> O.compare cx Ops_intf.Eq a (O.const cx (Value.Int 0))
    | P_nullp, [ a ] -> O.compare cx Ops_intf.Is a (O.const cx Value.Nil)
    | P_pairp, [ a ] -> (
        match O.concrete a with
        | Value.Obj { payload = Value.Instance _; _ } ->
            (* the only instances in rklite are pairs *)
            O.const cx (Value.Bool true)
        | _ -> O.const cx (Value.Bool false))
    | P_car, [ a ] -> O.getattr cx a "car"
    | P_cdr, [ a ] -> O.getattr cx a "cdr"
    | P_cons, [ a; d ] -> cons cx globals a d
    | P_set_car, [ p; v ] ->
        O.setattr cx p "car" v;
        O.const cx Value.Nil
    | P_set_cdr, [ p; v ] ->
        O.setattr cx p "cdr" v;
        O.const cx Value.Nil
    | P_vector_ref, [ v; i ] -> O.getitem cx v i
    | P_vector_set, [ v; i; x ] ->
        O.setitem cx v i x;
        O.const cx Value.Nil
    | P_vector_length, [ v ] -> O.len_ cx v
    | P_vector, _ -> O.make_list cx (Array.of_list args)
    | P_make_vector, [ n ] ->
        O.call_builtin cx Builtin.Make_vector [| n; O.const cx (Value.Int 0) |]
    | P_make_vector, [ n; init ] ->
        O.call_builtin cx Builtin.Make_vector [| n; init |]
    | P_display, [ v ] -> O.call_builtin cx Builtin.Display [| v |]
    | P_newline, [] ->
        O.call_builtin cx Builtin.Display [| O.const cx (Value.Str "\n") |]
    | P_sqrt, [ v ] -> O.call_builtin cx Builtin.Sqrt [| v |]
    | P_sin, [ v ] -> O.call_builtin cx Builtin.Sin [| v |]
    | P_cos, [ v ] -> O.call_builtin cx Builtin.Cos [| v |]
    | P_expt, [ a; b ] -> O.pow cx a b
    | P_abs, [ v ] -> O.call_builtin cx Builtin.Abs [| v |]
    | P_min, [ a; b ] -> O.call_builtin cx Builtin.Min2 [| a; b |]
    | P_max, [ a; b ] -> O.call_builtin cx Builtin.Max2 [| a; b |]
    | P_floor, [ v ] -> O.call_builtin cx Builtin.Floor_f [| v |]
    | P_num_to_str, [ v ] -> O.call_builtin cx Builtin.To_str [| v |]
    | P_str_append, _ ->
        number_prim cx O.add args (Value.Str "")
    | P_str_length, [ v ] -> O.len_ cx v
    | P_to_float, [ v ] -> O.call_builtin cx Builtin.To_float [| v |]
    | P_list, _ ->
        List.fold_right (fun a acc -> cons cx globals a acc) args
          (O.const cx Value.Nil)
    | P_annotate, [ v ] -> O.call_builtin cx Builtin.Annotate [| v |]
    | p, _ ->
        err "%s: wrong number of arguments (%d)" (prim_name p)
          (List.length args)

  let step cx (globals : Globals.t) (f : frame) :
      (O.t, Kbytecode.code) Frame.outcome =
    let pc = f.Frame.pc in
    let instr = f.Frame.code.Kbytecode.instrs.(pc) in
    let continue_at next =
      f.Frame.pc <- next;
      Frame.Continue
    in
    let next () = continue_at (pc + 1) in
    match instr with
    | K_CONST v ->
        Frame.push f (O.const cx v);
        next ()
    | K_LOCAL slot ->
        Frame.push f f.Frame.locals.(slot);
        next ()
    | K_SET_LOCAL slot ->
        f.Frame.locals.(slot) <- Frame.pop f;
        next ()
    | K_GLOBAL name ->
        Frame.push f (O.load_global cx globals name);
        next ()
    | K_SET_GLOBAL name ->
        O.store_global cx globals name (Frame.pop f);
        next ()
    | K_CELL_GET slot ->
        Frame.push f (O.cell_get cx f.Frame.locals.(slot));
        next ()
    | K_CELL_SET slot ->
        let v = Frame.pop f in
        O.cell_set cx f.Frame.locals.(slot) v;
        next ()
    | K_MAKE_CELL slot ->
        f.Frame.locals.(slot) <- O.make_cell cx f.Frame.locals.(slot);
        next ()
    | K_CLOSURE { code_ref; arity; cname; capture_slots } ->
        let cells = Array.map (fun s -> f.Frame.locals.(s)) capture_slots in
        Frame.push f (O.make_closure cx ~code_ref ~arity ~fname:cname cells);
        next ()
    | K_CALL nargs ->
        let args = pop_args cx f nargs in
        let callee = Frame.pop f in
        let fn = O.guard_func cx callee in
        if fn.Value.code_ref < 0 then begin
          let b = Builtin.of_tag (-fn.Value.code_ref - 1) in
          let r = O.call_builtin cx b args in
          Frame.push f r;
          next ()
        end
        else begin
          if fn.Value.arity <> nargs then
            err "%s: expects %d arguments, got %d" fn.Value.func_name
              fn.Value.arity nargs;
          let code = Kcode_table.lookup fn.Value.code_ref in
          f.Frame.pc <- pc + 1;
          let nf = make_frame cx code (Some f) in
          Array.blit args 0 nf.Frame.locals 0 nargs;
          (* copy the captured cells into the capture slots *)
          for i = 0 to code.Kbytecode.ncaptured - 1 do
            nf.Frame.locals.(code.Kbytecode.nargs + i) <-
              O.func_captured cx callee i
          done;
          Frame.Call nf
        end
    | K_TAILCALL nargs ->
        let args = pop_args cx f nargs in
        let callee = Frame.pop f in
        let fn = O.guard_func cx callee in
        if fn.Value.code_ref < 0 then begin
          let b = Builtin.of_tag (-fn.Value.code_ref - 1) in
          let r = O.call_builtin cx b args in
          Frame.Return r
        end
        else begin
          if fn.Value.arity <> nargs then
            err "%s: expects %d arguments, got %d" fn.Value.func_name
              fn.Value.arity nargs;
          let code = Kcode_table.lookup fn.Value.code_ref in
          (* proper tail call: the new frame replaces this one *)
          let nf = make_frame cx code f.Frame.parent in
          nf.Frame.discard_return <- f.Frame.discard_return;
          Array.blit args 0 nf.Frame.locals 0 nargs;
          for i = 0 to code.Kbytecode.ncaptured - 1 do
            nf.Frame.locals.(code.Kbytecode.nargs + i) <-
              O.func_captured cx callee i
          done;
          Frame.Call nf
        end
    | K_TAILJUMP nargs ->
        (* refresh the parameters and restart the function body *)
        for i = nargs - 1 downto 0 do
          f.Frame.locals.(i) <- Frame.pop f
        done;
        (* re-box celled parameters for the next iteration *)
        continue_at 0
    | K_JUMP t -> continue_at t
    | K_JUMP_IF_FALSE t ->
        let v = Frame.pop f in
        if O.is_true cx v then next () else continue_at t
    | K_JFALSE_OR_POP t ->
        let v = Frame.peek f 0 in
        if O.is_true cx v then begin
          ignore (Frame.pop f);
          next ()
        end
        else continue_at t
    | K_JTRUE_OR_POP t ->
        let v = Frame.peek f 0 in
        if O.is_true cx v then continue_at t
        else begin
          ignore (Frame.pop f);
          next ()
        end
    | K_RETURN -> Frame.Return (Frame.pop f)
    | K_POP ->
        ignore (Frame.pop f);
        next ()
    | K_PRIM (p, nargs) ->
        let rec pops n acc =
          if n = 0 then acc else pops (n - 1) (Frame.pop f :: acc)
        in
        let args = pops nargs [] in
        let r = prim cx globals f p args in
        Frame.push f r;
        next ()
end
