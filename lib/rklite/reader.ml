(** S-expression reader for rklite. *)

exception Syntax_error of string

type sexp =
  | Atom of string
  | Num of int
  | Fnum of float
  | Strlit of string
  | Slist of sexp list

let error fmt = Printf.ksprintf (fun s -> raise (Syntax_error s)) fmt

let is_delim c =
  c = '(' || c = ')' || c = '[' || c = ']' || c = ' ' || c = '\t'
  || c = '\n' || c = '\r' || c = ';' || c = '"'

let read_all (src : string) : sexp list =
  let n = String.length src in
  let i = ref 0 in
  let rec skip_ws () =
    if !i < n then
      match src.[!i] with
      | ' ' | '\t' | '\n' | '\r' ->
          incr i;
          skip_ws ()
      | ';' ->
          while !i < n && src.[!i] <> '\n' do incr i done;
          skip_ws ()
      | _ -> ()
  in
  let rec read_one () : sexp =
    skip_ws ();
    if !i >= n then error "unexpected end of input";
    match src.[!i] with
    | '(' | '[' ->
        incr i;
        let items = ref [] in
        let rec go () =
          skip_ws ();
          if !i >= n then error "unclosed parenthesis";
          if src.[!i] = ')' || src.[!i] = ']' then incr i
          else begin
            items := read_one () :: !items;
            go ()
          end
        in
        go ();
        Slist (List.rev !items)
    | ')' | ']' -> error "unexpected ')'"
    | '\'' ->
        incr i;
        Slist [ Atom "quote"; read_one () ]
    | '"' ->
        incr i;
        let buf = Buffer.create 16 in
        let rec go () =
          if !i >= n then error "unterminated string";
          match src.[!i] with
          | '"' -> incr i
          | '\\' when !i + 1 < n ->
              (match src.[!i + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | c -> Buffer.add_char buf c);
              i := !i + 2;
              go ()
          | c ->
              Buffer.add_char buf c;
              incr i;
              go ()
        in
        go ();
        Strlit (Buffer.contents buf)
    | '#' when !i + 1 < n && src.[!i + 1] = 't' ->
        i := !i + 2;
        Atom "#t"
    | '#' when !i + 1 < n && src.[!i + 1] = 'f' ->
        i := !i + 2;
        Atom "#f"
    | '#' when !i + 1 < n && src.[!i + 1] = '\\' ->
        (* character literal: #\a, #\space, #\newline *)
        i := !i + 2;
        let start = !i in
        while !i < n && not (is_delim src.[!i]) do incr i done;
        let word = String.sub src start (!i - start) in
        let s =
          match word with
          | "space" -> " "
          | "newline" -> "\n"
          | "tab" -> "\t"
          | w when String.length w = 1 -> w
          | w -> error "unknown character literal #\\%s" w
        in
        Strlit s
    | _ ->
        let start = !i in
        while !i < n && not (is_delim src.[!i]) do incr i done;
        let word = String.sub src start (!i - start) in
        if word = "" then error "empty token";
        (match int_of_string_opt word with
        | Some v -> Num v
        | None -> (
            match float_of_string_opt word with
            | Some f -> Fnum f
            | None -> Atom word))
  in
  let forms = ref [] in
  let rec go () =
    skip_ws ();
    if !i < n then begin
      forms := read_one () :: !forms;
      go ()
    end
  in
  go ();
  List.rev !forms

let rec pp fmt = function
  | Atom a -> Format.pp_print_string fmt a
  | Num n -> Format.pp_print_int fmt n
  | Fnum f -> Format.pp_print_float fmt f
  | Strlit s -> Format.fprintf fmt "%S" s
  | Slist items ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp)
        items
