(** rklite bytecode (the Pycket-analogue VM's instruction set).

    Scheme loops arrive as self tail calls; the compiler turns them into
    [K_TAILJUMP], a backward jump to pc 0 that refreshes the parameters —
    which is exactly a hot-loop merge point for the JIT driver, matching
    how Pycket finds loops in recursive Racket code. *)

open Mtj_rt

type prim =
  | P_add | P_sub | P_mul | P_div
  | P_quotient | P_remainder | P_modulo
  | P_lt | P_le | P_gt | P_ge | P_numeq
  | P_eq | P_equal
  | P_not | P_zerop | P_nullp | P_pairp
  | P_car | P_cdr | P_cons | P_set_car | P_set_cdr
  | P_vector_ref | P_vector_set | P_vector_length | P_vector | P_make_vector
  | P_display | P_newline
  | P_sqrt | P_sin | P_cos | P_expt | P_abs | P_min | P_max | P_floor
  | P_num_to_str | P_str_append | P_str_length | P_to_float
  | P_list
  | P_annotate

let prim_name = function
  | P_add -> "+" | P_sub -> "-" | P_mul -> "*" | P_div -> "/"
  | P_quotient -> "quotient" | P_remainder -> "remainder" | P_modulo -> "modulo"
  | P_lt -> "<" | P_le -> "<=" | P_gt -> ">" | P_ge -> ">=" | P_numeq -> "="
  | P_eq -> "eq?" | P_equal -> "equal?"
  | P_not -> "not" | P_zerop -> "zero?" | P_nullp -> "null?" | P_pairp -> "pair?"
  | P_car -> "car" | P_cdr -> "cdr" | P_cons -> "cons"
  | P_set_car -> "set-car!" | P_set_cdr -> "set-cdr!"
  | P_vector_ref -> "vector-ref" | P_vector_set -> "vector-set!"
  | P_vector_length -> "vector-length" | P_vector -> "vector"
  | P_make_vector -> "make-vector"
  | P_display -> "display" | P_newline -> "newline"
  | P_sqrt -> "sqrt" | P_sin -> "sin" | P_cos -> "cos" | P_expt -> "expt"
  | P_abs -> "abs" | P_min -> "min" | P_max -> "max" | P_floor -> "floor"
  | P_num_to_str -> "number->string" | P_str_append -> "string-append"
  | P_str_length -> "string-length" | P_to_float -> "exact->inexact"
  | P_list -> "list"
  | P_annotate -> "annotate"

type instr =
  | K_CONST of Value.t
  | K_LOCAL of int
  | K_SET_LOCAL of int
  | K_GLOBAL of string
  | K_SET_GLOBAL of string
  | K_CELL_GET of int   (* the local slot holds a cell; push its content *)
  | K_CELL_SET of int
  | K_MAKE_CELL of int  (* box locals[i] into a fresh cell, in place *)
  | K_CLOSURE of {
      code_ref : int;
      arity : int;
      cname : string;
      capture_slots : int array;  (* local slots (cells) to capture *)
    }
  | K_CALL of int
  | K_TAILCALL of int   (* proper tail call: replace the current frame *)
  | K_TAILJUMP of int   (* self tail call: refresh params, goto 0 *)
  | K_JUMP of int
  | K_JUMP_IF_FALSE of int      (* pops the condition *)
  | K_JFALSE_OR_POP of int
  | K_JTRUE_OR_POP of int
  | K_RETURN
  | K_POP
  | K_PRIM of prim * int

type code = {
  id : int;
  name : string;
  nargs : int;
  ncaptured : int;
  nlocals : int;
  stacksize : int;
  instrs : instr array;
  headers : bool array;
}

let tag = function
  | K_CONST _ -> 0
  | K_LOCAL _ -> 1
  | K_SET_LOCAL _ -> 2
  | K_GLOBAL _ -> 3
  | K_SET_GLOBAL _ -> 4
  | K_CELL_GET _ -> 5
  | K_CELL_SET _ -> 6
  | K_MAKE_CELL _ -> 7
  | K_CLOSURE _ -> 8
  | K_CALL _ -> 9
  | K_TAILCALL _ -> 18
  | K_TAILJUMP _ -> 10
  | K_JUMP _ -> 11
  | K_JUMP_IF_FALSE _ -> 12
  | K_JFALSE_OR_POP _ -> 13
  | K_JTRUE_OR_POP _ -> 14
  | K_RETURN -> 15
  | K_POP -> 16
  | K_PRIM (p, _) -> 17 + Hashtbl.hash (prim_name p) mod 64

let stack_effect ?(taken = false) = function
  | K_CONST _ | K_LOCAL _ | K_GLOBAL _ | K_CELL_GET _ | K_CLOSURE _ -> 1
  | K_SET_LOCAL _ | K_SET_GLOBAL _ | K_CELL_SET _ | K_POP
  | K_JUMP_IF_FALSE _ ->
      -1
  | K_MAKE_CELL _ | K_JUMP _ -> 0
  | K_JFALSE_OR_POP _ | K_JTRUE_OR_POP _ -> if taken then 0 else -1
  | K_CALL n -> -n
  | K_TAILCALL n -> -n
  | K_TAILJUMP n -> -n
  | K_RETURN -> -1
  | K_PRIM (_, n) -> 1 - n

let jump_targets = function
  | K_JUMP t | K_JUMP_IF_FALSE t | K_JFALSE_OR_POP t | K_JTRUE_OR_POP t ->
      [ t ]
  | K_TAILJUMP _ -> [ 0 ]
  | _ -> []

let falls_through = function
  | K_JUMP _ | K_TAILJUMP _ | K_TAILCALL _ | K_RETURN -> false
  | _ -> true

(* String constants paired with their [Value.py_hash]; counterpart of
   [Bytecode.str_const_khashes] for the differential hash test. *)
let str_const_khashes (c : code) : (string * int) list =
  Array.to_list c.instrs
  |> List.filter_map (function
       | K_CONST v when Mtj_rt.Value.is_str v ->
           Some (Mtj_rt.Value.to_str_unchecked v, Mtj_rt.Value.py_hash v)
       | _ -> None)
