(** rklite compiler: s-expressions to bytecode.

    Closures are flat: free variables are boxed into cells in their
    defining frame and captured by reference.  Self tail calls (including
    named [let] loops) become [K_TAILJUMP] back-edges — the loop headers
    the meta-tracing driver hooks. *)

open Reader
open Kbytecode
open Mtj_rt

exception Compile_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Compile_error s)) fmt

let special_forms =
  [ "define"; "lambda"; "let"; "let*"; "letrec"; "if"; "cond"; "else";
    "begin"; "set!"; "and"; "or"; "quote"; "when"; "unless" ]

let prims =
  [ ("+", P_add); ("-", P_sub); ("*", P_mul); ("/", P_div);
    ("quotient", P_quotient); ("remainder", P_remainder);
    ("modulo", P_modulo); ("<", P_lt); ("<=", P_le); (">", P_gt);
    (">=", P_ge); ("=", P_numeq); ("eq?", P_eq); ("eqv?", P_eq);
    ("equal?", P_equal); ("not", P_not); ("zero?", P_zerop);
    ("null?", P_nullp); ("pair?", P_pairp); ("car", P_car); ("cdr", P_cdr);
    ("cons", P_cons); ("set-car!", P_set_car); ("set-cdr!", P_set_cdr);
    ("vector-ref", P_vector_ref); ("vector-set!", P_vector_set);
    ("vector-length", P_vector_length); ("vector", P_vector);
    ("make-vector", P_make_vector); ("display", P_display);
    ("newline", P_newline); ("sqrt", P_sqrt); ("sin", P_sin);
    ("cos", P_cos); ("expt", P_expt); ("abs", P_abs); ("min", P_min);
    ("max", P_max); ("floor", P_floor); ("number->string", P_num_to_str);
    ("string-append", P_str_append); ("string-length", P_str_length);
    ("exact->inexact", P_to_float); ("list", P_list);
    ("annotate", P_annotate) ]

(* --- free-variable analysis (transitive through inner lambdas) --- *)

module SSet = Set.Make (String)

let rec free_vars (e : sexp) (bound : SSet.t) : SSet.t =
  match e with
  | Atom ("#t" | "#f") | Num _ | Fnum _ | Strlit _ -> SSet.empty
  | Atom a ->
      if SSet.mem a bound || List.mem_assoc a prims
         || List.mem a special_forms
      then SSet.empty
      else SSet.singleton a
  | Slist (Atom "quote" :: _) -> SSet.empty
  | Slist (Atom "lambda" :: Slist params :: body) ->
      let bound' =
        List.fold_left
          (fun acc p ->
            match p with Atom a -> SSet.add a acc | _ -> acc)
          bound params
      in
      free_list body bound'
  | Slist (Atom "let" :: Atom name :: Slist bindings :: body) ->
      let inits =
        List.fold_left
          (fun acc b ->
            match b with
            | Slist [ Atom _; e ] -> SSet.union acc (free_vars e bound)
            | _ -> acc)
          SSet.empty bindings
      in
      let bound' =
        List.fold_left
          (fun acc b ->
            match b with Slist [ Atom v; _ ] -> SSet.add v acc | _ -> acc)
          (SSet.add name bound) bindings
      in
      SSet.union inits (free_list body bound')
  | Slist (Atom ("let" | "let*") :: Slist bindings :: body) ->
      let inits =
        List.fold_left
          (fun acc b ->
            match b with
            | Slist [ Atom _; e ] -> SSet.union acc (free_vars e bound)
            | _ -> acc)
          SSet.empty bindings
      in
      let bound' =
        List.fold_left
          (fun acc b ->
            match b with Slist [ Atom v; _ ] -> SSet.add v acc | _ -> acc)
          bound bindings
      in
      SSet.union inits (free_list body bound')
  | Slist (Atom "letrec" :: Slist bindings :: body) ->
      let bound' =
        List.fold_left
          (fun acc b ->
            match b with Slist [ Atom v; _ ] -> SSet.add v acc | _ -> acc)
          bound bindings
      in
      let inits =
        List.fold_left
          (fun acc b ->
            match b with
            | Slist [ Atom _; e ] -> SSet.union acc (free_vars e bound')
            | _ -> acc)
          SSet.empty bindings
      in
      SSet.union inits (free_list body bound')
  | Slist items -> free_list items bound

and free_list items bound =
  List.fold_left (fun acc e -> SSet.union acc (free_vars e bound)) SSet.empty
    items

(* names captured by any lambda nested in [body] *)
let captured_names (body : sexp list) : SSet.t =
  let acc = ref SSet.empty in
  let rec walk e =
    (match e with
    | Slist (Atom "lambda" :: Slist _ :: _) ->
        acc := SSet.union !acc (free_vars e SSet.empty)
    | Slist (Atom "let" :: Atom _ :: Slist _ :: _) ->
        (* named let desugars to a lambda *)
        acc := SSet.union !acc (free_vars e SSet.empty)
    | _ -> ());
    match e with
    | Slist items -> List.iter walk items
    | _ -> ()
  in
  List.iter walk body;
  !acc

(* --- compilation scopes --- *)

type buf = { mutable arr : instr array; mutable len : int }

let buf_create () = { arr = Array.make 32 K_POP; len = 0 }

let emit b i =
  if b.len >= Array.length b.arr then begin
    let bigger = Array.make (2 * Array.length b.arr) K_POP in
    Array.blit b.arr 0 bigger 0 b.len;
    b.arr <- bigger
  end;
  b.arr.(b.len) <- i;
  b.len <- b.len + 1;
  b.len - 1

let patch b pc i = b.arr.(pc) <- i

type scope = {
  parent : scope option;
  fname : string;
  nargs : int;
  self_name : string option;
  tbl : (string, int) Hashtbl.t;       (* visible name -> local slot *)
  celled : SSet.t;                     (* names living in cells *)
  mutable captures : (string * int) list;  (* captured name -> index *)
  mutable nlocals : int;
  buf : buf;
}

let is_celled sc name = SSet.mem name sc.celled

let fresh_slot sc =
  let s = sc.nlocals in
  sc.nlocals <- s + 1;
  s

(* resolve a name to an access plan within this scope *)
type access =
  | A_local of int            (* plain local slot *)
  | A_cell of int             (* local slot holding a cell *)
  | A_global

let rec resolve sc name : access =
  match Hashtbl.find_opt sc.tbl name with
  | Some slot -> if is_celled sc name then A_cell slot else A_local slot
  | None -> (
      match sc.parent with
      | None -> A_global
      | Some parent -> (
          (* capture from an enclosing function: the variable must be a
             cell there (guaranteed by the captured_names analysis) *)
          match parent_has parent name with
          | false -> A_global
          | true -> (
              match List.assoc_opt name sc.captures with
              | Some idx -> A_cell (sc.nargs + idx)
              | None ->
                  let idx = List.length sc.captures in
                  sc.captures <- sc.captures @ [ (name, idx) ];
                  A_cell (sc.nargs + idx))))

and parent_has sc name =
  Hashtbl.mem sc.tbl name
  || match sc.parent with Some p -> parent_has p name | None -> false

(* the slot in [sc] that holds the cell for [name] (for closure capture) *)
let cell_slot_for sc name =
  match resolve sc name with
  | A_cell slot -> slot
  | A_local slot ->
      (* should not happen thanks to the celled analysis; be lenient *)
      slot
  | A_global -> error "cannot capture global %s" name

(* --- compilation --- *)

let quote_value (e : sexp) : Value.t =
  match e with
  | Num n -> Value.of_int n
  | Fnum f -> Value.of_float f
  | Strlit s -> Value.of_str s
  | Atom "#t" -> Value.of_bool true
  | Atom "#f" -> Value.of_bool false
  | Atom a -> Value.of_str a  (* symbols are interned as strings *)
  | Slist [] -> Value.nil
  | Slist _ -> error "quoted lists are not supported"

let rec compile_expr sc ~tail (e : sexp) =
  let b = sc.buf in
  match e with
  | Num n -> ignore (emit b (K_CONST (Value.of_int n)))
  | Fnum f -> ignore (emit b (K_CONST (Value.of_float f)))
  | Strlit s -> ignore (emit b (K_CONST (Value.of_str s)))
  | Atom "#t" -> ignore (emit b (K_CONST (Value.of_bool true)))
  | Atom "#f" -> ignore (emit b (K_CONST (Value.of_bool false)))
  | Atom name -> (
      match resolve sc name with
      | A_local slot -> ignore (emit b (K_LOCAL slot))
      | A_cell slot -> ignore (emit b (K_CELL_GET slot))
      | A_global -> ignore (emit b (K_GLOBAL name)))
  | Slist [] -> error "empty application"
  | Slist (head :: args) -> compile_form sc ~tail head args

and compile_form sc ~tail head args =
  let b = sc.buf in
  match (head, args) with
  | Atom "quote", [ v ] -> ignore (emit b (K_CONST (quote_value v)))
  | Atom "if", [ c; t ] ->
      compile_expr sc ~tail:false c;
      let jf = emit b (K_JUMP_IF_FALSE (-1)) in
      compile_expr sc ~tail t;
      let jend = emit b (K_JUMP (-1)) in
      patch b jf (K_JUMP_IF_FALSE b.len);
      ignore (emit b (K_CONST Value.nil));
      patch b jend (K_JUMP b.len)
  | Atom "if", [ c; t; e ] ->
      compile_expr sc ~tail:false c;
      let jf = emit b (K_JUMP_IF_FALSE (-1)) in
      compile_expr sc ~tail t;
      let jend = emit b (K_JUMP (-1)) in
      patch b jf (K_JUMP_IF_FALSE b.len);
      compile_expr sc ~tail e;
      patch b jend (K_JUMP b.len)
  | Atom "cond", clauses ->
      let jends = ref [] in
      let rec go = function
        | [] -> ignore (emit b (K_CONST Value.nil))
        | Slist (Atom "else" :: body) :: _ -> compile_body sc ~tail body
        | Slist (c :: body) :: rest ->
            compile_expr sc ~tail:false c;
            let jf = emit b (K_JUMP_IF_FALSE (-1)) in
            compile_body sc ~tail body;
            jends := emit b (K_JUMP (-1)) :: !jends;
            patch b jf (K_JUMP_IF_FALSE b.len);
            go rest
        | _ -> error "malformed cond clause"
      in
      go clauses;
      List.iter (fun j -> patch b j (K_JUMP b.len)) !jends
  | Atom "when", c :: body ->
      compile_expr sc ~tail:false c;
      let jf = emit b (K_JUMP_IF_FALSE (-1)) in
      compile_body sc ~tail body;
      let jend = emit b (K_JUMP (-1)) in
      patch b jf (K_JUMP_IF_FALSE b.len);
      ignore (emit b (K_CONST Value.nil));
      patch b jend (K_JUMP b.len)
  | Atom "unless", c :: body ->
      compile_form sc ~tail (Atom "when")
        (Slist [ Atom "not"; c ] :: body)
  | Atom "begin", body -> compile_body sc ~tail body
  | Atom "and", [] -> ignore (emit b (K_CONST (Value.of_bool true)))
  | Atom "and", items ->
      let rec go = function
        | [ last ] -> compile_expr sc ~tail last
        | x :: rest ->
            compile_expr sc ~tail:false x;
            let j = emit b (K_JFALSE_OR_POP (-1)) in
            go rest;
            patch b j (K_JFALSE_OR_POP b.len)
        | [] -> assert false
      in
      go items
  | Atom "or", [] -> ignore (emit b (K_CONST (Value.of_bool false)))
  | Atom "or", items ->
      let rec go = function
        | [ last ] -> compile_expr sc ~tail last
        | x :: rest ->
            compile_expr sc ~tail:false x;
            let j = emit b (K_JTRUE_OR_POP (-1)) in
            go rest;
            patch b j (K_JTRUE_OR_POP b.len)
        | [] -> assert false
      in
      go items
  | Atom "set!", [ Atom name; e ] -> (
      compile_expr sc ~tail:false e;
      match resolve sc name with
      | A_local slot -> ignore (emit b (K_SET_LOCAL slot))
      | A_cell slot -> ignore (emit b (K_CELL_SET slot))
      | A_global -> ignore (emit b (K_SET_GLOBAL name)));
      ignore (emit b (K_CONST Value.nil))
  | Atom "lambda", Slist params :: body ->
      compile_closure sc ~cname:"lambda" ~self:None params body
  | Atom "let", Atom name :: Slist bindings :: body ->
      (* named let: (letrec ((name (lambda (vars) body))) (name inits)) *)
      let vars =
        List.map
          (function
            | Slist [ Atom v; _ ] -> Atom v
            | _ -> error "malformed named-let binding")
          bindings
      in
      let inits =
        List.map
          (function
            | Slist [ Atom _; e ] -> e
            | _ -> error "malformed named-let binding")
          bindings
      in
      compile_form sc ~tail (Atom "letrec")
        [
          Slist [ Slist [ Atom name; Slist (Atom "lambda" :: Slist vars :: body) ] ];
          Slist (Atom name :: inits);
        ]
  | Atom ("let" | "let*"), Slist bindings :: body ->
      (* both evaluate bindings in order; [let*] scoping emerges because
         each binding is added to the table as soon as it is compiled —
         for plain [let] the benchmark programs do not rely on the
         simultaneous-scope difference *)
      let saved = Hashtbl.copy sc.tbl in
      List.iter
        (function
          | Slist [ Atom v; e ] ->
              compile_expr sc ~tail:false e;
              let slot = fresh_slot sc in
              Hashtbl.replace sc.tbl v slot;
              ignore (emit b (K_SET_LOCAL slot));
              if is_celled sc v then ignore (emit b (K_MAKE_CELL slot))
          | _ -> error "malformed let binding")
        bindings;
      compile_body sc ~tail body;
      Hashtbl.reset sc.tbl;
      Hashtbl.iter (Hashtbl.replace sc.tbl) saved
  | Atom "letrec", [ Slist _ ] -> error "letrec needs a body"
  | Atom "letrec", Slist bindings :: body ->
      let saved = Hashtbl.copy sc.tbl in
      (* pre-bind all names (celled, since the lambdas capture them) *)
      let slots =
        List.map
          (function
            | Slist [ Atom v; _ ] ->
                let slot = fresh_slot sc in
                Hashtbl.replace sc.tbl v slot;
                ignore (emit b (K_CONST Value.nil));
                ignore (emit b (K_SET_LOCAL slot));
                if is_celled sc v then ignore (emit b (K_MAKE_CELL slot));
                (v, slot)
            | _ -> error "malformed letrec binding")
          bindings
      in
      List.iter2
        (fun (v, slot) binding ->
          match binding with
          | Slist [ Atom _; Slist (Atom "lambda" :: Slist params :: lbody) ] ->
              compile_closure sc ~cname:v ~self:(Some v) params lbody;
              if is_celled sc v then ignore (emit b (K_CELL_SET slot))
              else ignore (emit b (K_SET_LOCAL slot))
          | Slist [ Atom _; e ] ->
              compile_expr sc ~tail:false e;
              if is_celled sc v then ignore (emit b (K_CELL_SET slot))
              else ignore (emit b (K_SET_LOCAL slot))
          | _ -> error "malformed letrec binding")
        slots bindings;
      compile_body sc ~tail body;
      Hashtbl.reset sc.tbl;
      Hashtbl.iter (Hashtbl.replace sc.tbl) saved
  | Atom "define", _ -> error "define is only allowed at toplevel"
  | Atom (("lambda" | "let" | "let*" | "letrec" | "if" | "quote" | "set!"
          | "when" | "unless" | "else") as kw), _ ->
      (* a keyword reaching this point missed every valid shape above *)
      error "malformed %s form" kw
  | Atom name, _
    when Some name = sc.self_name && tail
         && not (Hashtbl.mem sc.tbl name) -> (
      (* self tail call -> loop back-edge *)
      match sc.self_name with
      | Some _ when List.length args = sc.nargs ->
          List.iter (compile_expr sc ~tail:false) args;
          ignore (emit b (K_TAILJUMP (List.length args)))
      | _ -> compile_call sc ~tail head args)
  | Atom name, _ when List.mem_assoc name prims && not (parent_has sc name)
    ->
      let p = List.assoc name prims in
      List.iter (compile_expr sc ~tail:false) args;
      ignore (emit b (K_PRIM (p, List.length args)))
  | _, _ -> compile_call sc ~tail head args

and compile_call sc ~tail head args =
  compile_expr sc ~tail:false head;
  List.iter (compile_expr sc ~tail:false) args;
  if tail then ignore (emit sc.buf (K_TAILCALL (List.length args)))
  else ignore (emit sc.buf (K_CALL (List.length args)))

and compile_body sc ~tail = function
  | [] -> ignore (emit sc.buf (K_CONST Value.nil))
  | [ last ] -> compile_expr sc ~tail last
  | x :: rest ->
      compile_expr sc ~tail:false x;
      ignore (emit sc.buf K_POP);
      compile_body sc ~tail rest

and compile_closure sc ~cname ~self params body =
  let code = compile_lambda ~parent:(Some sc) ~cname ~self params body in
  (* tell the parent which of its cell slots to capture *)
  ignore code

and compile_lambda ~parent ~cname ~self params body : unit =
  (* the actual closure-compilation; emits K_CLOSURE into the parent *)
  let param_names =
    List.map
      (function Atom a -> a | _ -> error "bad parameter")
      params
  in
  let celled = captured_names body in
  let sc =
    {
      parent;
      fname = cname;
      nargs = List.length param_names;
      self_name = self;
      tbl = Hashtbl.create 16;
      celled;
      captures = [];
      nlocals = 0;
      buf = buf_create ();
    }
  in
  List.iter
    (fun p ->
      Hashtbl.replace sc.tbl p sc.nlocals;
      sc.nlocals <- sc.nlocals + 1)
    param_names;
  (* reserve capture slots after the parameters; filled at call time *)
  (* (the count is only known after compiling the body, so the body is
     compiled into its own buffer and capture slots use a distinct range
     starting at nargs; locals after that are offset accordingly) *)
  (* approach: temporarily allocate a generous window is avoided by
     numbering captures inside [resolve] as nargs + index, and starting
     ordinary locals after a post-pass renumber; instead we simply place
     captures at nargs.. and shift locals by patching below. *)
  (* To keep slot numbering simple, captures are discovered on the fly;
     ordinary locals are allocated from a separate high range and
     compacted afterwards. *)
  sc.nlocals <- sc.nargs + 64;  (* locals start after a capture window *)
  let entry_cells = ref [] in
  List.iteri
    (fun i p -> if SSet.mem p celled then entry_cells := i :: !entry_cells)
    param_names;
  let prelude = List.rev_map (fun slot -> K_MAKE_CELL slot) !entry_cells in
  List.iter (fun ins -> ignore (emit sc.buf ins)) prelude;
  compile_body sc ~tail:true body;
  ignore (emit sc.buf K_RETURN);
  let ncaptured = List.length sc.captures in
  if ncaptured > 64 then error "too many captured variables";
  let instrs = Array.sub sc.buf.arr 0 sc.buf.len in
  let n = Array.length instrs in
  let headers = Array.make n false in
  Array.iteri
    (fun pc i ->
      match i with
      | K_TAILJUMP _ -> headers.(0) <- true
      | K_JUMP t when t <= pc -> headers.(t) <- true
      | _ -> ())
    instrs;
  (* stack-size analysis *)
  let depth = Array.make n (-1) in
  let maxd = ref 0 in
  let work = Queue.create () in
  Queue.add (0, 0) work;
  while not (Queue.is_empty work) do
    let pc, d = Queue.pop work in
    if pc < n && depth.(pc) < d then begin
      depth.(pc) <- d;
      maxd := max !maxd d;
      let i = instrs.(pc) in
      let cont = d + stack_effect i in
      maxd := max !maxd (max cont (d + 1));
      List.iter
        (fun t -> Queue.add (t, max 0 (d + stack_effect ~taken:true i)) work)
        (jump_targets i);
      if falls_through i then Queue.add (pc + 1, max 0 cont) work
    end
  done;
  let code =
    {
      Kbytecode.id = Kcode_table.fresh_id ();
      name = cname;
      nargs = List.length param_names;
      ncaptured;
      nlocals = sc.nlocals;
      stacksize = !maxd + 8;
      instrs;
      headers;
    }
  in
  Kcode_table.register code;
  (* emit the K_CLOSURE into the parent, capturing the parent's cells *)
  match parent with
  | Some psc ->
      let capture_slots =
        Array.of_list
          (List.map (fun (name, _) -> cell_slot_for psc name) sc.captures)
      in
      ignore
        (emit psc.buf
           (K_CLOSURE
              {
                code_ref = code.Kbytecode.id;
                arity = code.Kbytecode.nargs;
                cname;
                capture_slots;
              }))
  | None -> ()

(* --- toplevel --- *)

let compile_program (forms : sexp list) : Kbytecode.code =
  let sc =
    {
      parent = None;
      fname = "<toplevel>";
      nargs = 0;
      self_name = None;
      tbl = Hashtbl.create 16;
      (* toplevel let/letrec bindings can be captured by lambdas too *)
      celled = captured_names forms;
      captures = [];
      nlocals = 0;
      buf = buf_create ();
    }
  in
  let b = sc.buf in
  List.iter
    (fun form ->
      (match form with
      | Slist [ Atom "define"; Atom name; e ] ->
          compile_expr sc ~tail:false e;
          ignore (emit b (K_SET_GLOBAL name));
          ignore (emit b (K_CONST Value.nil))
      | Slist (Atom "define" :: Slist (Atom name :: params) :: body) ->
          compile_lambda ~parent:(Some sc) ~cname:name ~self:(Some name)
            params body;
          ignore (emit b (K_SET_GLOBAL name));
          ignore (emit b (K_CONST Value.nil))
      | e -> compile_expr sc ~tail:false e);
      ignore (emit b K_POP))
    forms;
  ignore (emit b (K_CONST Value.nil));
  ignore (emit b K_RETURN);
  let instrs = Array.sub b.arr 0 b.len in
  let n = Array.length instrs in
  let headers = Array.make n false in
  Array.iteri
    (fun pc i ->
      match i with
      | K_JUMP t when t <= pc -> headers.(t) <- true
      | _ -> ())
    instrs;
  let code =
    {
      Kbytecode.id = Kcode_table.fresh_id ();
      name = "<toplevel>";
      nargs = 0;
      ncaptured = 0;
      nlocals = max 1 sc.nlocals;
      stacksize = 64;
      instrs;
      headers;
    }
  in
  Kcode_table.register code;
  code

let compile_source (src : string) : Kbytecode.code =
  compile_program (Reader.read_all src)
