(** The rklite virtual machine.

    With the JIT enabled on the RPython profile this models Pycket; under
    the custom-JIT profile with the JIT disabled it models the reference
    Racket VM (Table II's two Racket-language configurations). *)

open Mtj_core
open Mtj_rt
open Mtj_rjit

module Lang : Threaded.LANG with type code = Kbytecode.code = struct
  type code = Kbytecode.code

  let code_ref (c : code) = c.Kbytecode.id
  let lookup_code = Kcode_table.lookup
  let nlocals (c : code) = c.Kbytecode.nlocals
  let stack_size (c : code) = c.Kbytecode.stacksize
  let loop_header (c : code) pc = c.Kbytecode.headers.(pc)
  let opcode_at (c : code) pc = Kbytecode.tag c.Kbytecode.instrs.(pc)
  let name (c : code) = c.Kbytecode.name

  module Step = Kinterp.Step

  (* the threaded-dispatch tier (Config.threaded_interp) *)
  let headers (c : code) = c.Kbytecode.headers
  let threaded_code = Kinterp.threaded_code
  let lookup_threaded (c : code) = Kcode_table.lookup_threaded c.Kbytecode.id
  let store_threaded (c : code) s = Kcode_table.store_threaded c.Kbytecode.id s
end

module D = Driver.Make (Lang)

type t = { rtc : Ctx.t; driver : D.t }

(* the pair "struct": rklite's cons cells are 2-field instances, so car
   and cdr trace to plain getfield_gc nodes and non-escaping pairs are
   removed by the JIT's escape analysis *)
let install_pair_class rtc globals =
  let cls =
    Gc_sim.obj (Ctx.gc rtc)
      (Value.Class
         {
           Value.cls_id = -2;
           cls_name = "pair";
           layout = [| "car"; "cdr" |];
           attrs = [];
           parent = None;
         })
  in
  Globals.define globals "%pair" cls

let create ?(config = Config.default) ?(profile = Profile.rpython_interp) () =
  (* fresh per-VM code-id sequence (see Kcode_table) *)
  Kcode_table.reset ();
  let rtc = Ctx.create ~config () in
  let globals = Globals.create () in
  install_pair_class rtc globals;
  let driver = D.create ~profile rtc globals in
  { rtc; driver }

let rtc t = t.rtc
let engine t = Ctx.engine t.rtc
let jitlog t = D.jitlog t.driver
let globals t = D.globals t.driver
let output t = Buffer.contents (Ctx.out t.rtc)

let compile = Kcompiler.compile_source
let run_code t code : Driver.outcome = D.run t.driver code
let run_source t src = run_code t (compile src)

(* compiled-program bundles for the shared serving cache — same
   contract and determinism argument as [Mtj_pylite.Vm] *)

type bundle = {
  b_entry : Kbytecode.code;
  b_codes : Kbytecode.code list;  (* sorted by id; includes [b_entry] *)
  b_next_id : int;
}

let bundle_size b = List.length b.b_codes

let compile_bundle src =
  let entry = compile src in
  let codes, next_id = Kcode_table.export_bundle () in
  { b_entry = entry; b_codes = codes; b_next_id = next_id }

let import_bundle (_ : t) b =
  Kcode_table.import_bundle b.b_codes ~next_id:b.b_next_id

let run_bundle t b : Driver.outcome = run_code t b.b_entry

(* trace-profile seeding — same contract as Mtj_pylite.Vm *)
let export_profile t = D.export_profile t.driver
let seed_profile t p = D.seed_profile t.driver p

let run ?config ?profile src =
  let t = create ?config ?profile () in
  let outcome = run_source t src in
  (outcome, t)
