(** The rklite virtual machine: a Scheme-subset interpreter with proper
    tail calls, written against the {!Mtj_rjit.Ops_intf.OPS} seam and
    driven by the same generic meta-tracing JIT as pylite — the
    Pycket-on-Racket half of Table II and Figure 4.

    Self tail calls compile to an in-frame jump whose target is a loop
    header the JIT can trace; cons pairs are two-field instances of the
    pre-installed [%pair] class, so they participate in escape analysis
    like any other allocation. With {!Mtj_core.Profile.racket_custom}
    and the JIT disabled the VM stands in for the Racket reference
    implementation. *)

type t

val create :
  ?config:Mtj_core.Config.t -> ?profile:Mtj_core.Profile.t -> unit -> t

val compile : string -> Kbytecode.code
(** Compile a program (sequence of toplevel forms). Raises
    {!Reader.Syntax_error} or {!Kcompiler.Compile_error}. *)

val run_code : t -> Kbytecode.code -> Mtj_rjit.Driver.outcome
val run_source : t -> string -> Mtj_rjit.Driver.outcome

type bundle
(** A compiled program as a context-free artifact — same contract as
    {!Mtj_pylite.Vm.bundle}. *)

val compile_bundle : string -> bundle
val import_bundle : t -> bundle -> unit
val run_bundle : t -> bundle -> Mtj_rjit.Driver.outcome
val bundle_size : bundle -> int

val export_profile : t -> Mtj_rjit.Traceprofile.t
(** Same contract as {!Mtj_pylite.Vm.export_profile}. *)

val seed_profile : t -> Mtj_rjit.Traceprofile.t -> unit
(** Same contract as {!Mtj_pylite.Vm.seed_profile}: call after
    {!import_bundle}, before the VM runs. *)

val run :
  ?config:Mtj_core.Config.t ->
  ?profile:Mtj_core.Profile.t ->
  string ->
  Mtj_rjit.Driver.outcome * t

val output : t -> string
val rtc : t -> Mtj_rt.Ctx.t
val engine : t -> Mtj_machine.Engine.t
val jitlog : t -> Mtj_rjit.Jitlog.t
val globals : t -> Mtj_rjit.Globals.t
