(** Registry of compiled rklite code objects.

    Domain-local, reset per VM from [Kvm.create] — same reproducibility
    and isolation story as [Mtj_pylite.Code_table].  Ids start at
    1_000_000, disjoint from pylite ids, for sanity. *)

let first_id = 1_000_000

type store = {
  table : (int, Kbytecode.code) Hashtbl.t;
  mutable next_id : int;
}

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { table = Hashtbl.create 128; next_id = first_id })

let reset () =
  let s = Domain.DLS.get store_key in
  Hashtbl.reset s.table;
  s.next_id <- first_id

let fresh_id () =
  let s = Domain.DLS.get store_key in
  let id = s.next_id in
  s.next_id <- id + 1;
  id

let register (c : Kbytecode.code) =
  Hashtbl.replace (Domain.DLS.get store_key).table c.Kbytecode.id c

let lookup id =
  match Hashtbl.find_opt (Domain.DLS.get store_key).table id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "unknown rklite code_ref %d" id)
