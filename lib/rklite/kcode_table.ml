(** Registry of compiled rklite code objects. *)

let table : (int, Kbytecode.code) Hashtbl.t = Hashtbl.create 128
let next_id = ref 1_000_000  (* disjoint from pylite ids, for sanity *)

let fresh_id () =
  let id = !next_id in
  incr next_id;
  id

let register (c : Kbytecode.code) = Hashtbl.replace table c.Kbytecode.id c

let lookup id =
  match Hashtbl.find_opt table id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "unknown rklite code_ref %d" id)
