(** Registry of compiled rklite code objects.

    Domain-local, reset per VM from [Kvm.create] — same reproducibility
    and isolation story as [Mtj_pylite.Code_table].  Ids start at
    1_000_000, disjoint from pylite ids, for sanity. *)

let first_id = 1_000_000

type threaded =
  (Mtj_rjit.Direct_ops.t, Kbytecode.code) Mtj_rjit.Threaded.step array
(** a code object's threaded-dispatch translation (see
    {!Mtj_rjit.Threaded} and [Kinterp.threaded_code]) *)

type store = {
  table : (int, Kbytecode.code) Hashtbl.t;
  threaded : (int, threaded) Hashtbl.t;
      (* translate-once cache, keyed by code id.  Step closures bind the
         translating VM's engine and context, so this cache MUST be
         dropped whenever the id sequence restarts — [reset] clears it
         together with the code table. *)
  mutable next_id : int;
}

let store_key : store Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      { table = Hashtbl.create 128; threaded = Hashtbl.create 64;
        next_id = first_id })

let reset () =
  let s = Domain.DLS.get store_key in
  Hashtbl.reset s.table;
  Hashtbl.reset s.threaded;
  s.next_id <- first_id

let fresh_id () =
  let s = Domain.DLS.get store_key in
  let id = s.next_id in
  s.next_id <- id + 1;
  id

let register (c : Kbytecode.code) =
  Hashtbl.replace (Domain.DLS.get store_key).table c.Kbytecode.id c

let lookup id =
  match Hashtbl.find_opt (Domain.DLS.get store_key).table id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "unknown rklite code_ref %d" id)

let lookup_threaded id =
  Hashtbl.find_opt (Domain.DLS.get store_key).threaded id

let store_threaded id (s : threaded) =
  Hashtbl.replace (Domain.DLS.get store_key).threaded id s

(* compiled-program bundles for the shared serving cache — same
   contract as [Mtj_pylite.Code_table]: immutable bytecode only, ids
   deterministic because the sequence always restarts at [first_id],
   threaded translations never cross VMs *)

let export_bundle () =
  let s = Domain.DLS.get store_key in
  let codes = Hashtbl.fold (fun _ c acc -> c :: acc) s.table [] in
  ( List.sort
      (fun (a : Kbytecode.code) b -> compare a.Kbytecode.id b.Kbytecode.id)
      codes,
    s.next_id )

let import_bundle codes ~next_id =
  let s = Domain.DLS.get store_key in
  Hashtbl.reset s.table;
  Hashtbl.reset s.threaded;
  List.iter
    (fun (c : Kbytecode.code) -> Hashtbl.replace s.table c.Kbytecode.id c)
    codes;
  s.next_id <- next_id
