(** Pure decision logic of the multi-tier driver (DESIGN.md §3j).

    The policy reads per-trace profile state ([exec_count], [deopts],
    [promote_at], [bridges]) and per-site demotion counts, and returns
    verdicts; it never mutates VM state, which keeps the whole tier
    state machine property-testable without running a VM. *)

val never : int
(** Sentinel [promote_at] meaning "this trace is never promoted".
    Traces compiled under the Optimizing or Baseline policies carry it,
    so the executor's back-edge check costs one physical comparison. *)

val trace_threshold : Mtj_core.Config.t -> int
(** Loop-header executions before tracing starts under the given
    policy: [jit_threshold] when Optimizing,
    [min jit_threshold tier1_threshold] otherwise. *)

val compile_tier : Mtj_core.Config.t -> int
(** Tier of a freshly recorded loop trace: 2 when Optimizing, 1 when
    Baseline or Adaptive. *)

val initial_promote_at : Mtj_core.Config.t -> int
(** [promote_at] for a fresh loop trace: [tier2_threshold] when
    Adaptive, {!never} otherwise. *)

val seed_counter : Mtj_core.Config.t -> int
(** Hotness counter seeded into a loop site imported from a trace
    profile: [trace_threshold - 1], so the loop traces on its first
    header visit (the importer still observes one real iteration before
    recording). *)

val seeded_promote_at : Mtj_core.Config.t -> int
(** [promote_at] for a fresh loop trace whose site the publisher's
    profile marked as promoted: [max 1 (tier2_threshold / 4)] when
    Adaptive (trust the publisher's tier decision, promote early but
    keep the stability gate), {!initial_promote_at} otherwise. *)

val hot : promote_at:int -> execs:int -> bool
(** The trace has executed at least [promote_at] times (and is
    promotable at all). *)

val stable : Mtj_core.Config.t -> execs:int -> deopts:int -> bool
(** Guard-fail profile stability gate:
    [deopts * tier_stable_every <= execs]. *)

type verdict =
  | Promote  (** recompile through the optimizer at tier 2 *)
  | Defer of int
      (** hot but guard-unstable — set [promote_at] to this exec count
          and re-ask then, so the executor stops exiting every
          back-edge *)
  | Stay

val tier_up :
  Mtj_core.Config.t -> tier:int -> execs:int -> deopts:int -> promote_at:int -> verdict
(** Promotion verdict for a compiled loop trace at the portal.
    Monotone in hotness: once [Promote] at some [execs], it stays
    [Promote] for any larger [execs] with the same deopt rate. *)

val should_demote : Mtj_core.Config.t -> tier:int -> bridges:int -> bool
(** Demote an optimized loop once [bridges >= demote_bridges]
    (Adaptive policy only). *)

val demoted_promote_at : Mtj_core.Config.t -> demotions:int -> int
(** [promote_at] for the demoted replacement trace:
    [tier2_threshold * 2^demotions], or {!never} once the site has
    exceeded [max_demotions] — prevents tier oscillation. *)
