(** The shared, domain-safe JIT artifact cache behind the serving
    harness (ROADMAP item 1: tenant N amortizes tenant 1's warmup).

    A sharded-lock hash map from publication keys to {e context-free}
    compiled artifacts.  Languages extend {!entry} with their bundle
    types (pylite/rklite publish whole compiled-program bundles: the
    immutable bytecode objects a source string compiles to, plus the
    code-id watermark).  The publication/invalidation protocol — what
    may be published, and why trace-level [Ir.invalidate_code] events
    never need to reach this tier — is specified in DESIGN.md §3k.

    Domain-safety rests on two rules enforced at the publication sites:

    - {b only immutable, context-free values are published.}  Bytecode
      (instruction arrays, scalar constants, header bitmaps) qualifies;
      trace step closures and threaded interpreter step arrays do NOT —
      they close over the translating context's engine/GC, so sharing
      them would leak simulated state across requests (the same audit
      that made {!Mtj_rt.Ctx.code_cache} per-context).
    - {b first writer wins.}  A key is never overwritten, so concurrent
      readers of a published entry always observe the same artifact and
      a request stream's {e simulated} counters are byte-identical
      whether a given lookup hits or misses — the cache can only move
      host wall time.

    Every operation counts into process-wide statistics (hits split by
    publisher context, misses, publications, invalidations, lock
    contention) read back by the serving harness for the
    [mtj-metrics/8] export. *)

type entry = ..
(* extensible so language layers can publish without this module (or
   the context) depending on them; mirrors [Mtj_rt.Ctx.code] *)

type slot = { publisher : int;  (* Ctx.uid of the publishing context *)
              payload : entry }

type shard = { lock : Mutex.t; tbl : (string, slot) Hashtbl.t }

type t = { shards : shard array; mask : int }

(* --- statistics (process-wide, host-side only) --- *)

type stats = {
  shared_hits : int;      (** hits on entries published by another context *)
  local_hits : int;       (** hits on entries this context published *)
  misses : int;
  publications : int;     (** first-writer-wins successes *)
  invalidations : int;
  contention : int;       (** shard locks found held (try_lock failed) *)
}

let s_shared_hits = Atomic.make 0
let s_local_hits = Atomic.make 0
let s_misses = Atomic.make 0
let s_publications = Atomic.make 0
let s_invalidations = Atomic.make 0
let s_contention = Atomic.make 0

let stats () =
  {
    shared_hits = Atomic.get s_shared_hits;
    local_hits = Atomic.get s_local_hits;
    misses = Atomic.get s_misses;
    publications = Atomic.get s_publications;
    invalidations = Atomic.get s_invalidations;
    contention = Atomic.get s_contention;
  }

let reset_stats () =
  List.iter
    (fun a -> Atomic.set a 0)
    [ s_shared_hits; s_local_hits; s_misses; s_publications;
      s_invalidations; s_contention ]

(* --- the map --- *)

let create ?(shards = 16) () =
  (* power of two so [land mask] shards *)
  let n = max 1 shards in
  let n =
    let rec up p = if p >= n then p else up (p * 2) in
    up 1
  in
  {
    shards =
      Array.init n (fun _ ->
          { lock = Mutex.create (); tbl = Hashtbl.create 32 });
    mask = n - 1;
  }

let shard_of t key = t.shards.(Hashtbl.hash key land t.mask)

(* lock a shard, counting contention when the lock is already held —
   the serving harness exports this as its cache-contention counter *)
let with_shard (s : shard) f =
  if not (Mutex.try_lock s.lock) then begin
    Atomic.incr s_contention;
    Mutex.lock s.lock
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

(** [key ~lang ~program ~config_digest] — the publication key: artifacts
    are valid only for the exact (language, program, configuration)
    triple that produced them. *)
let key ~lang ~program ~config_digest =
  Printf.sprintf "%s:%s:%s" lang program config_digest

let find t ~ctx_uid k : entry option =
  let s = shard_of t k in
  with_shard s (fun () ->
      match Hashtbl.find_opt s.tbl k with
      | Some { publisher; payload } ->
          if publisher = ctx_uid then Atomic.incr s_local_hits
          else Atomic.incr s_shared_hits;
          Some payload
      | None ->
          Atomic.incr s_misses;
          None)

(** First writer wins: publishing under a key that is already bound
    leaves the existing entry in place and returns [false].  Concurrent
    cold requests for the same program may race here; exactly one
    publication succeeds and every later reader sees that artifact. *)
let publish t ~ctx_uid k (payload : entry) : bool =
  let s = shard_of t k in
  with_shard s (fun () ->
      if Hashtbl.mem s.tbl k then false
      else begin
        Hashtbl.replace s.tbl k { publisher = ctx_uid; payload };
        Atomic.incr s_publications;
        true
      end)

(** Drop a key (counted).  The serving harness invalidates a program's
    entry when a request for it fails, so a corrupt artifact cannot be
    served to later tenants. *)
let invalidate t k =
  let s = shard_of t k in
  with_shard s (fun () ->
      if Hashtbl.mem s.tbl k then begin
        Hashtbl.remove s.tbl k;
        Atomic.incr s_invalidations
      end)

let clear t =
  Array.iter (fun s -> with_shard s (fun () -> Hashtbl.reset s.tbl)) t.shards

let size t =
  Array.fold_left
    (fun acc s -> acc + with_shard s (fun () -> Hashtbl.length s.tbl))
    0 t.shards

(** The process-wide instance the serving harness publishes into. *)
let global : t = create ()
