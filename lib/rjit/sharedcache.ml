(** The shared, domain-safe JIT artifact cache behind the serving
    harness (ROADMAP item 1: tenant N amortizes tenant 1's warmup).

    A sharded-lock hash map from publication keys to {e context-free}
    compiled artifacts.  Languages extend {!entry} with their bundle
    types (pylite/rklite publish whole compiled-program bundles: the
    immutable bytecode objects a source string compiles to, plus the
    code-id watermark).  Alongside each bundle the publisher may attach
    a {!Traceprofile.t} — the hotness it learned about the program —
    which warm importers use to seed their own drivers.  The
    publication/invalidation protocol is specified in DESIGN.md §3k;
    profile seeding and eviction in §3m.

    Domain-safety rests on two rules enforced at the publication sites:

    - {b only immutable, context-free values are published.}  Bytecode
      (instruction arrays, scalar constants, header bitmaps) and trace
      profiles (sorted code_ref/pc integer lists) qualify; trace step
      closures and threaded interpreter step arrays do NOT — they close
      over the translating context's engine/GC, so sharing them would
      leak simulated state across requests (the same audit that made
      {!Mtj_rt.Ctx.code_cache} per-context).
    - {b first writer wins} — for bundles AND profiles.  A key's
      artifact is never overwritten, so concurrent readers always
      observe the same artifact; a profile is attached at most once,
      and only unseeded runs export profiles, so every candidate
      profile for a key is byte-identical and the race is benign.

    The cache is optionally {b bounded}: a global [capacity] is
    distributed over the shards and each shard evicts its
    least-recently-used entry when a publication would overflow its
    slice (a per-shard LRU approximates a global one without a global
    lock).  Re-publication of a previously evicted key is counted as a
    requeue.  Per-tenant publication quotas bound how many live entries
    any one tenant may hold; an over-quota publication is rejected and
    counted.

    Statistics are per-shard plain fields mutated under the shard lock
    and summed lock-by-lock at read time, so a {!stats} snapshot is
    never a torn multi-field read against a concurrent publish. *)

type entry = ..
(* extensible so language layers can publish without this module (or
   the context) depending on them; mirrors [Mtj_rt.Ctx.code] *)

type slot = {
  publisher : int;  (* Ctx.uid of the publishing context *)
  tenant : string;  (* quota owner of this entry *)
  payload : entry;
  mutable profile : Traceprofile.t option;
      (* attached after the publisher's (unseeded) run finished *)
  mutable stamp : int;  (* per-shard LRU clock value of the last touch *)
}

type shard = {
  lock : Mutex.t;
  tbl : (string, slot) Hashtbl.t;
  evicted : (string, unit) Hashtbl.t;
      (* keys this shard has evicted at least once — requeue detection *)
  cap : int;  (* this shard's slice of the global capacity; 0 = unbounded *)
  mutable clock : int;
  (* statistics: mutated under [lock] only, so a reader holding the
     lock sees a consistent snapshot (never a torn multi-field read) *)
  mutable c_shared_hits : int;
  mutable c_local_hits : int;
  mutable c_misses : int;
  mutable c_publications : int;
  mutable c_invalidations : int;
  mutable c_evictions : int;
  mutable c_requeues : int;
  mutable c_quota_rejections : int;
  mutable c_profile_publications : int;
  mutable c_seeded_imports : int;
  mutable c_contention : int;
}

type t = {
  shards : shard array;
  mask : int;
  capacity : int;  (* global capacity (sum of shard slices); 0 = unbounded *)
  quota : int;  (* max live entries per tenant; 0 = unbounded *)
  tlock : Mutex.t;
      (* guards [tenants]; lock order is shard lock first, then
         [tlock], everywhere — never the reverse *)
  tenants : (string, int) Hashtbl.t;  (* live entries per tenant *)
}

(* --- statistics --- *)

type stats = {
  shared_hits : int;      (** hits on entries published by another context *)
  local_hits : int;       (** hits on entries this context published *)
  misses : int;
  publications : int;     (** first-writer-wins successes *)
  invalidations : int;
  evictions : int;        (** LRU victims of over-capacity publications *)
  requeues : int;         (** publications of previously evicted keys *)
  quota_rejections : int; (** publications refused by the tenant quota *)
  profile_publications : int;  (** trace profiles attached to entries *)
  seeded_imports : int;   (** hits that also returned a trace profile *)
  contention : int;       (** shard locks found held (try_lock failed) *)
}

(* --- the map --- *)

let create ?(shards = 16) ?(capacity = 0) ?(tenant_quota = 0) () =
  if capacity < 0 then invalid_arg "Sharedcache.create: capacity < 0";
  if tenant_quota < 0 then invalid_arg "Sharedcache.create: tenant_quota < 0";
  (* power of two so [land mask] shards *)
  let n = max 1 shards in
  let n =
    let rec up p = if p >= n then p else up (p * 2) in
    up 1
  in
  (* a bounded cache never uses more shards than it has capacity, so
     every shard's slice holds at least one entry *)
  let n =
    if capacity = 0 then n
    else
      let rec down p = if p <= capacity then p else down (p / 2) in
      down n
  in
  let shard_cap i =
    if capacity = 0 then 0
    else (capacity / n) + (if i < capacity mod n then 1 else 0)
  in
  {
    shards =
      Array.init n (fun i ->
          {
            lock = Mutex.create ();
            tbl = Hashtbl.create 32;
            evicted = Hashtbl.create 8;
            cap = shard_cap i;
            clock = 0;
            c_shared_hits = 0;
            c_local_hits = 0;
            c_misses = 0;
            c_publications = 0;
            c_invalidations = 0;
            c_evictions = 0;
            c_requeues = 0;
            c_quota_rejections = 0;
            c_profile_publications = 0;
            c_seeded_imports = 0;
            c_contention = 0;
          });
    mask = n - 1;
    capacity;
    quota = tenant_quota;
    tlock = Mutex.create ();
    tenants = Hashtbl.create 16;
  }

let capacity t = t.capacity
let tenant_quota t = t.quota
let shard_of t key = t.shards.(Hashtbl.hash key land t.mask)

(* lock a shard, counting contention when the lock is already held —
   the serving harness exports this as its cache-contention counter.
   The count itself is bumped under the lock, like every other field. *)
let with_shard (s : shard) f =
  if not (Mutex.try_lock s.lock) then begin
    Mutex.lock s.lock;
    s.c_contention <- s.c_contention + 1
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let with_tenants t f =
  Mutex.lock t.tlock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.tlock) f

let stats t =
  (* per-shard snapshot under each shard's lock, summed in index order:
     a concurrent publish can interleave BETWEEN shards (the counters
     keep counting) but never tear one shard's multi-field read *)
  let z =
    ref
      {
        shared_hits = 0; local_hits = 0; misses = 0; publications = 0;
        invalidations = 0; evictions = 0; requeues = 0;
        quota_rejections = 0; profile_publications = 0; seeded_imports = 0;
        contention = 0;
      }
  in
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          let a = !z in
          z :=
            {
              shared_hits = a.shared_hits + s.c_shared_hits;
              local_hits = a.local_hits + s.c_local_hits;
              misses = a.misses + s.c_misses;
              publications = a.publications + s.c_publications;
              invalidations = a.invalidations + s.c_invalidations;
              evictions = a.evictions + s.c_evictions;
              requeues = a.requeues + s.c_requeues;
              quota_rejections = a.quota_rejections + s.c_quota_rejections;
              profile_publications =
                a.profile_publications + s.c_profile_publications;
              seeded_imports = a.seeded_imports + s.c_seeded_imports;
              contention = a.contention + s.c_contention;
            }))
    t.shards;
  !z

let reset_stats t =
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          s.c_shared_hits <- 0;
          s.c_local_hits <- 0;
          s.c_misses <- 0;
          s.c_publications <- 0;
          s.c_invalidations <- 0;
          s.c_evictions <- 0;
          s.c_requeues <- 0;
          s.c_quota_rejections <- 0;
          s.c_profile_publications <- 0;
          s.c_seeded_imports <- 0;
          s.c_contention <- 0))
    t.shards

(** [key ~lang ~program ~config_digest] — the publication key: artifacts
    are valid only for the exact (language, program, configuration)
    triple that produced them. *)
let key ~lang ~program ~config_digest =
  Printf.sprintf "%s:%s:%s" lang program config_digest

let touch (s : shard) (sl : slot) =
  s.clock <- s.clock + 1;
  sl.stamp <- s.clock

let find t ~ctx_uid k : entry option =
  let s = shard_of t k in
  with_shard s (fun () ->
      match Hashtbl.find_opt s.tbl k with
      | Some sl ->
          if sl.publisher = ctx_uid then s.c_local_hits <- s.c_local_hits + 1
          else s.c_shared_hits <- s.c_shared_hits + 1;
          touch s sl;
          Some sl.payload
      | None ->
          s.c_misses <- s.c_misses + 1;
          None)

(** Like {!find}, but also return the attached trace profile (if any);
    a hit that carries a profile is counted as a seeded import. *)
let find_with_profile t ~ctx_uid k : (entry * Traceprofile.t option) option =
  let s = shard_of t k in
  with_shard s (fun () ->
      match Hashtbl.find_opt s.tbl k with
      | Some sl ->
          if sl.publisher = ctx_uid then s.c_local_hits <- s.c_local_hits + 1
          else s.c_shared_hits <- s.c_shared_hits + 1;
          if sl.profile <> None then
            s.c_seeded_imports <- s.c_seeded_imports + 1;
          touch s sl;
          Some (sl.payload, sl.profile)
      | None ->
          s.c_misses <- s.c_misses + 1;
          None)

type pub_result = Published | Exists | Quota_rejected

(* drop the shard's least-recently-used slot (smallest stamp); caller
   holds the shard lock *)
let evict_lru t (s : shard) =
  let victim = ref None in
  Hashtbl.iter
    (fun k (sl : slot) ->
      match !victim with
      | Some (_, best) when best.stamp <= sl.stamp -> ()
      | _ -> victim := Some (k, sl))
    s.tbl;
  match !victim with
  | None -> ()
  | Some (k, sl) ->
      Hashtbl.remove s.tbl k;
      Hashtbl.replace s.evicted k ();
      s.c_evictions <- s.c_evictions + 1;
      with_tenants t (fun () ->
          match Hashtbl.find_opt t.tenants sl.tenant with
          | Some n when n > 1 -> Hashtbl.replace t.tenants sl.tenant (n - 1)
          | Some _ -> Hashtbl.remove t.tenants sl.tenant
          | None -> ())

(** First writer wins: publishing under a key that is already bound
    leaves the existing entry in place and returns [Exists].  Concurrent
    cold requests for the same program may race here; exactly one
    publication succeeds and every later reader sees that artifact.

    On a bounded cache, a publication into a full shard first evicts the
    shard's least-recently-used entry (counted); re-publication of a
    previously evicted key additionally counts a requeue.  When the
    tenant already holds [tenant_quota] live entries the publication is
    rejected ([Quota_rejected], counted) and the cache is unchanged. *)
let publish t ~ctx_uid ?(tenant = "") k (payload : entry) : pub_result =
  let s = shard_of t k in
  with_shard s (fun () ->
      if Hashtbl.mem s.tbl k then Exists
      else begin
        let admitted =
          t.quota = 0 || tenant = ""
          || with_tenants t (fun () ->
                 let n =
                   Option.value ~default:0 (Hashtbl.find_opt t.tenants tenant)
                 in
                 if n >= t.quota then false
                 else begin
                   Hashtbl.replace t.tenants tenant (n + 1);
                   true
                 end)
        in
        if not admitted then begin
          s.c_quota_rejections <- s.c_quota_rejections + 1;
          Quota_rejected
        end
        else begin
          if s.cap > 0 then
            while Hashtbl.length s.tbl >= s.cap do
              evict_lru t s
            done;
          let sl = { publisher = ctx_uid; tenant; payload; profile = None;
                     stamp = 0 } in
          touch s sl;
          Hashtbl.replace s.tbl k sl;
          s.c_publications <- s.c_publications + 1;
          if Hashtbl.mem s.evicted k then begin
            Hashtbl.remove s.evicted k;
            s.c_requeues <- s.c_requeues + 1
          end;
          Published
        end
      end)

(** Attach a trace profile to a published entry (first writer wins;
    returns whether this call attached).  No-op when the key is absent
    (it may have been evicted between the publication and the end of
    the publisher's run) or already profiled.  Empty profiles are not
    attached — a seeded import must have something to seed. *)
let attach_profile t k (p : Traceprofile.t) : bool =
  if Traceprofile.is_empty p then false
  else
    let s = shard_of t k in
    with_shard s (fun () ->
        match Hashtbl.find_opt s.tbl k with
        | Some sl when sl.profile = None ->
            sl.profile <- Some p;
            s.c_profile_publications <- s.c_profile_publications + 1;
            true
        | Some _ | None -> false)

(** Drop a key (counted).  The serving harness invalidates a program's
    entry when a request for it fails, so a corrupt artifact cannot be
    served to later tenants.  The tenant's live count is released. *)
let invalidate t k =
  let s = shard_of t k in
  with_shard s (fun () ->
      match Hashtbl.find_opt s.tbl k with
      | Some sl ->
          Hashtbl.remove s.tbl k;
          s.c_invalidations <- s.c_invalidations + 1;
          with_tenants t (fun () ->
              match Hashtbl.find_opt t.tenants sl.tenant with
              | Some n when n > 1 ->
                  Hashtbl.replace t.tenants sl.tenant (n - 1)
              | Some _ -> Hashtbl.remove t.tenants sl.tenant
              | None -> ())
      | None -> ())

let clear t =
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          Hashtbl.reset s.tbl;
          Hashtbl.reset s.evicted;
          s.clock <- 0))
    t.shards;
  with_tenants t (fun () -> Hashtbl.reset t.tenants)

let size t =
  Array.fold_left
    (fun acc s -> acc + with_shard s (fun () -> Hashtbl.length s.tbl))
    0 t.shards

(** Per-shard keys ordered most-recently-used first — test introspection
    for the LRU fixture; one list per shard, in shard-index order. *)
let recency t =
  Array.to_list
    (Array.map
       (fun s ->
         with_shard s (fun () ->
             let rows =
               Hashtbl.fold (fun k (sl : slot) acc -> (sl.stamp, k) :: acc)
                 s.tbl []
             in
             List.map snd
               (List.sort (fun (a, _) (b, _) -> compare b a) rows)))
       t.shards)

(** The process-wide instance (unbounded).  The serving harness builds
    its own per-session cache so capacity and quota are session
    parameters; this instance remains for ad-hoc cross-context
    sharing. *)
let global : t = create ()
