(** The tracing OPS instance: the meta-interpreter.

    Every operation executes concretely {e and} records trace IR.  Type
    dispatch becomes [guard_class]; promoted values (callees, classes,
    globals) become constants pinned by [guard_value]; operations with
    data-dependent loops (dict probes, bignum arithmetic, string
    building, set algebra) are recorded as residual calls to the same AOT
    functions the paper's Table III attributes time to. *)

open Mtj_rt
open Ops_intf
module R = Recorder

type t = R.tval
type cx = R.t

let rt = R.rt
let concrete (tv : t) = tv.R.v
let const _cx v : t = { R.v; src = Ir.Const v }
let frame_pool cx = R.pool cx
let lift v : t = { R.v; src = Ir.Const v }
let err = Semantics.err

(* --- type shapes --- *)

let tyshape_of (v : Value.t) : Ir.tyshape =
  if Value.is_int v then Ir.Ty_int
  else
    match Value.view v with
    | Value.Int _ -> Ir.Ty_int
    | Value.Float _ -> Ir.Ty_float
    | Value.Str _ -> Ir.Ty_str
    | Value.Bool _ -> Ir.Ty_bool
    | Value.Nil -> Ir.Ty_nil
    | Value.Obj o -> (
        match o.Value.payload with
        | Value.Instance i -> Ir.Ty_instance_of i.Value.cls.Value.uid
        | Value.Class _ -> Ir.Ty_class o.Value.uid
        | Value.List _ -> Ir.Ty_list
        | Value.Dict _ -> Ir.Ty_dict
        | Value.Set _ -> Ir.Ty_set
        | Value.Tuple _ -> Ir.Ty_tuple
        | Value.Func f -> Ir.Ty_func_code f.Value.code_ref
        | Value.Method _ -> Ir.Ty_method
        | Value.Cell _ -> Ir.Ty_cell
        | Value.Bigint _ -> Ir.Ty_bigint
        | Value.Strbuilder _ -> Ir.Ty_builder
        | Value.Range _ -> Ir.Ty_range)

(* guard the value's type shape unless it is already a trace constant *)
let guard_shape cx (tv : t) =
  match tv.R.src with
  | Ir.Const _ -> ()
  | Ir.Reg _ -> R.guard cx (Ir.G_class (tyshape_of tv.R.v)) [| tv.R.src |]

(* promote: pin the concrete value as a trace constant *)
let promote cx (tv : t) : t =
  match tv.R.src with
  | Ir.Const _ -> tv
  | Ir.Reg _ ->
      R.guard cx (Ir.G_value tv.R.v) [| tv.R.src |];
      { tv with src = Ir.Const tv.R.v }

(* --- residual AOT calls --- *)

let rc name src run ~effectful : Ir.rescall =
  { Ir.aot = Aot.register ~name ~src; run; effectful }

let residual_r cx (resc : Ir.rescall) (args : t array) : t =
  let cargs = Array.map concrete args in
  let result = resc.Ir.run (rt cx) cargs in
  R.emit cx (Ir.Call_r resc) (Array.map (fun (a : t) -> a.R.src) args) result

let residual_n cx (resc : Ir.rescall) (args : t array) =
  let cargs = Array.map concrete args in
  ignore (resc.Ir.run (rt cx) cargs);
  R.emit_n cx (Ir.Call_n resc) (Array.map (fun (a : t) -> a.R.src) args)

(* --- control --- *)

let is_true cx (tv : t) =
  let b = Value.truthy tv.R.v in
  (match tv.R.src with
  | Ir.Const _ -> ()
  | Ir.Reg _ ->
      R.guard cx (if b then Ir.G_true else Ir.G_false) [| tv.R.src |]);
  b

let guard_int cx (tv : t) =
  let v = tv.R.v in
  if Value.is_int v then begin
    guard_shape cx tv;
    Value.to_int_unchecked v
  end
  else if Value.is_bool v then begin
    guard_shape cx tv;
    Bool.to_int (Value.to_bool_unchecked v)
  end
  else err "expected int, got %s" (Value.type_name v)

let guard_func cx (tv : t) =
  match Value.view tv.R.v with
  | Value.Obj { payload = Value.Func f; _ } ->
      guard_shape cx tv;
      f
  | _ -> err "%s object is not callable" (Value.type_name tv.R.v)

let rc_method_func =
  rc "W_Method.w_function" Aot.I
    (fun _c a ->
      match Value.view a.(0) with
      | Value.Obj { payload = Value.Method m; _ } -> Value.of_obj m.func
      | _ -> err "not a method: %s" (Value.type_name a.(0)))
    ~effectful:false

let rc_method_self =
  rc "W_Method.w_instance" Aot.I
    (fun _c a ->
      match Value.view a.(0) with
      | Value.Obj { payload = Value.Method m; _ } -> m.receiver
      | _ -> err "not a method: %s" (Value.type_name a.(0)))
    ~effectful:false

let method_parts cx (tv : t) =
  match Value.view tv.R.v with
  | Value.Obj { payload = Value.Method _; _ } ->
      guard_shape cx tv;
      let f = residual_r cx rc_method_func [| tv |] in
      let recv = residual_r cx rc_method_self [| tv |] in
      Some (f, recv)
  | _ -> None

let func_captured cx (tv : t) i =
  match Value.view tv.R.v with
  | Value.Obj { payload = Value.Func fn; _ }
    when i < Array.length fn.Value.captured ->
      guard_shape cx tv;
      R.emit cx (Ir.Getfield_gc i) [| tv.R.src |] fn.Value.captured.(i)
  | _ -> err "bad closure environment access"

(* closures allocate via a residual call so each trace iteration gets a
   fresh function object with its own captured cells.  The memo table is
   domain-local (code_refs are only unique within a VM, and VMs on other
   domains must not observe this domain's entries), and keyed by the
   full (code_ref, arity, fname) triple so that a code_ref reused by a
   later VM on the same domain cannot alias a stale closure. *)
let closure_rc_tbl_key :
    (int * int * string, Ir.rescall) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

(* Pre-register every AOT name that is minted lazily during tracing
   (inside [neg], [compare], [setitem], [unpack], global load/store and
   [closure_rc] below).  After {!Aot.freeze} the registry rejects new
   names, so each of these must already exist before the first worker
   domain spawns; the lazy [rc] calls then resolve to these entries. *)
let () =
  List.iter
    (fun (name, src) -> ignore (Aot.register ~name ~src))
    [
      ("interp.make_closure", Aot.I);
      ("W_Object.descr_neg", Aot.I);
      ("W_Object.descr_richcompare", Aot.I);
      ("W_Object.descr_setitem", Aot.I);
      ("W_Object.descr_unpack", Aot.I);
      ("Module.getdictvalue", Aot.I);
      ("Module.setdictvalue", Aot.I);
    ]

let closure_rc code_ref arity fname =
  let tbl = Domain.DLS.get closure_rc_tbl_key in
  let key = (code_ref, arity, fname) in
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
      let r =
        rc "interp.make_closure" Aot.I
          (fun c args ->
            Gc_sim.obj (Ctx.gc c)
              (Value.Func
                 {
                   func_id = code_ref;
                   func_name = fname;
                   arity;
                   code_ref;
                   captured = args;
                 }))
          ~effectful:false
      in
      Hashtbl.replace tbl key r;
      r

let make_closure cx ~code_ref ~arity ~fname (captured : t array) =
  residual_r cx (closure_rc code_ref arity fname) captured

(* --- arithmetic --- *)

let[@inline] int_like (v : Value.t) = Value.is_int v || Value.is_bool v

let as_int = Semantics.as_int

let rc_add = rc "rbigint.add" Aot.L (fun c a -> Semantics.add c a.(0) a.(1)) ~effectful:false
let rc_sub = rc "rbigint.sub" Aot.L (fun c a -> Rarith.sub c a.(0) a.(1)) ~effectful:false
let rc_mul = rc "rbigint.mul" Aot.L (fun c a -> Semantics.mul c a.(0) a.(1)) ~effectful:false
let rc_floordiv = rc "rbigint.divmod" Aot.L (fun c a -> Rarith.floordiv c a.(0) a.(1)) ~effectful:false
let rc_mod = rc "rbigint.divmod" Aot.L (fun c a -> Rarith.modulo c a.(0) a.(1)) ~effectful:false
let rc_pow = rc "pow" Aot.C (fun c a -> Rarith.pow c a.(0) a.(1)) ~effectful:false
let rc_lshift =
  rc "rbigint.lshift" Aot.L
    (fun c a -> Rarith.lshift c a.(0) (Semantics.as_int a.(1)))
    ~effectful:false
let rc_rshift =
  rc "rbigint.rshift" Aot.L
    (fun c a -> Rarith.rshift c a.(0) (Semantics.as_int a.(1)))
    ~effectful:false
let rc_generic_add =
  rc "W_Object.descr_add" Aot.I (fun c a -> Semantics.add c a.(0) a.(1)) ~effectful:false
let rc_generic_mul =
  rc "W_Object.descr_mul" Aot.I (fun c a -> Semantics.mul c a.(0) a.(1)) ~effectful:false

let both_int (a : t) (b : t) = int_like a.R.v && int_like b.R.v

let is_float = Value.is_float
let is_str = Value.is_str

let has_bigint (a : t) (b : t) =
  let big (tv : t) =
    Value.is_obj tv.R.v
    &&
    match (Value.to_obj_unchecked tv.R.v).Value.payload with
    | Value.Bigint _ -> true
    | _ -> false
  in
  big a || big b

(* coerce a tracked number to a float-typed tracked value, recording the
   cast when needed *)
let to_float_t cx (tv : t) : t =
  let v = tv.R.v in
  if Value.is_float v then begin
    guard_shape cx tv;
    tv
  end
  else if int_like v then begin
    guard_shape cx tv;
    R.emit cx Ir.Cast_int_to_float [| tv.R.src |]
      (Value.of_float (float_of_int (as_int v)))
  end
  else err "expected number, got %s" (Value.type_name v)

let float_binop cx opcode f (a : t) (b : t) : t =
  let fa = to_float_t cx a and fb = to_float_t cx b in
  let x = Rarith.to_float fa.R.v and y = Rarith.to_float fb.R.v in
  R.emit cx opcode [| fa.R.src; fb.R.src |] (Value.of_float (f x y))

let int_ovf_binop cx opcode gkind f big_rc (a : t) (b : t) : t =
  guard_shape cx a;
  guard_shape cx b;
  let x = as_int a.R.v and y = as_int b.R.v in
  let exact = f x y in
  match exact with
  | Some r ->
      let res = R.emit cx opcode [| a.R.src; b.R.src |] (Value.of_int r) in
      R.guard cx gkind [| a.R.src; b.R.src |];
      res
  | None ->
      (* overflowed during tracing: record the bignum path *)
      residual_r cx big_rc [| a; b |]

let checked_add x y =
  let r = x + y in
  if (x >= 0) = (y >= 0) && (r >= 0) <> (x >= 0) then None else Some r

let checked_sub x y =
  let r = x - y in
  if (x >= 0) <> (y >= 0) && (r >= 0) <> (x >= 0) then None else Some r

let checked_mul x y =
  if x <> 0 && (abs x > 1 lsl 31 || abs y > 1 lsl 31) && (x * y) / x <> y then
    None
  else Some (x * y)

let add cx (a : t) (b : t) =
  if both_int a b then int_ovf_binop cx Ir.Int_add Ir.G_no_ovf_add checked_add rc_add a b
  else if is_float a.R.v || is_float b.R.v then
    float_binop cx Ir.Float_add ( +. ) a b
  else if is_str a.R.v && is_str b.R.v then begin
    guard_shape cx a;
    guard_shape cx b;
    R.emit cx Ir.Str_concat
      [| a.R.src; b.R.src |]
      (Semantics.add (rt cx) a.R.v b.R.v)
  end
  else if has_bigint a b then residual_r cx rc_add [| a; b |]
  else begin
    guard_shape cx a;
    guard_shape cx b;
    residual_r cx rc_generic_add [| a; b |]
  end

let sub cx a b =
  if both_int a b then int_ovf_binop cx Ir.Int_sub Ir.G_no_ovf_sub checked_sub rc_sub a b
  else if is_float a.R.v || is_float b.R.v then
    float_binop cx Ir.Float_sub ( -. ) a b
  else residual_r cx rc_sub [| a; b |]

let mul cx a b =
  if both_int a b then int_ovf_binop cx Ir.Int_mul Ir.G_no_ovf_mul checked_mul rc_mul a b
  else if is_float a.R.v || is_float b.R.v then
    float_binop cx Ir.Float_mul ( *. ) a b
  else if has_bigint a b then residual_r cx rc_mul [| a; b |]
  else begin
    guard_shape cx a;
    guard_shape cx b;
    residual_r cx rc_generic_mul [| a; b |]
  end

(* guard that an int divisor is nonzero: int_is_zero + guard_false *)
let guard_nonzero cx (b : t) y =
  if y = 0 then raise Division_by_zero;
  match b.R.src with
  | Ir.Const _ -> ()
  | Ir.Reg _ ->
      let z = R.emit cx Ir.Int_is_zero [| b.R.src |] Value.false_ in
      R.guard cx Ir.G_false [| z.R.src |]

let floordiv cx (a : t) (b : t) =
  if both_int a b then begin
    guard_shape cx a;
    guard_shape cx b;
    let x = as_int a.R.v and y = as_int b.R.v in
    guard_nonzero cx b y;
    R.emit cx Ir.Int_floordiv
      [| a.R.src; b.R.src |]
      (Value.of_int (Rarith.floordiv_int x y))
  end
  else if is_float a.R.v || is_float b.R.v then
    float_binop cx Ir.Float_truediv
      (fun x y ->
        if y = 0.0 then raise Division_by_zero else floor (x /. y))
      a b
  else residual_r cx rc_floordiv [| a; b |]

let modulo cx (a : t) (b : t) =
  if both_int a b then begin
    guard_shape cx a;
    guard_shape cx b;
    let x = as_int a.R.v and y = as_int b.R.v in
    guard_nonzero cx b y;
    R.emit cx Ir.Int_mod
      [| a.R.src; b.R.src |]
      (Value.of_int (Rarith.mod_int x y))
  end
  else residual_r cx rc_mod [| a; b |]

let truediv cx (a : t) (b : t) =
  float_binop cx Ir.Float_truediv
    (fun x y -> if y = 0.0 then raise Division_by_zero else x /. y)
    a b

let pow cx (a : t) (b : t) = residual_r cx rc_pow [| a; b |]

let neg cx (a : t) =
  let v = a.R.v in
  if Value.is_int v && Value.to_int_unchecked v <> min_int then begin
    guard_shape cx a;
    R.emit cx Ir.Int_neg [| a.R.src |]
      (Value.of_int (-Value.to_int_unchecked v))
  end
  else if Value.is_float v then begin
    guard_shape cx a;
    R.emit cx Ir.Float_neg [| a.R.src |]
      (Value.of_float (-.Value.to_float_unchecked v))
  end
  else
    residual_r cx
      (rc "W_Object.descr_neg" Aot.I (fun c ar -> Rarith.neg c ar.(0)) ~effectful:false)
      [| a |]

let lshift cx (a : t) (b : t) =
  let const_shift =
    match b.R.src with Ir.Const _ -> true | Ir.Reg _ -> false
  in
  if Value.is_int a.R.v && Value.is_int b.R.v then begin
    let x = Value.to_int_unchecked a.R.v
    and n = Value.to_int_unchecked b.R.v in
    if const_shift && n < 40 && x > -(1 lsl 20) && x < 1 lsl 20 then begin
      (* constant shift of a small int: inline, guarded by magnitude
         (x + 2^20 must stay within [0, 2^21)); explicit range rather
         than [abs], which would wrongly admit min_int *)
      guard_shape cx a;
      let shifted =
        R.emit cx Ir.Int_add
          [| a.R.src; Ir.Const (Value.of_int (1 lsl 20)) |]
          (Value.of_int (x + (1 lsl 20)))
      in
      R.guard cx Ir.G_index_lt
        [| shifted.R.src; Ir.Const (Value.of_int (1 lsl 21)) |];
      R.emit cx Ir.Int_lshift [| a.R.src; b.R.src |] (Value.of_int (x lsl n))
    end
    else
      (* data-dependent shifts go through the bignum runtime *)
      residual_r cx rc_lshift [| a; b |]
  end
  else residual_r cx rc_lshift [| a; b |]

let rshift cx (a : t) (b : t) =
  if
    Value.is_int a.R.v && Value.is_int b.R.v
    && Value.to_int_unchecked a.R.v >= 0
  then begin
    let x = Value.to_int_unchecked a.R.v
    and n = Value.to_int_unchecked b.R.v in
    guard_shape cx a;
    guard_shape cx b;
    (* record-time value must match [Eval_op]'s clamped semantics *)
    R.emit cx Ir.Int_rshift
      [| a.R.src; b.R.src |]
      (Value.of_int (x asr (if n > 62 then 62 else n)))
  end
  else residual_r cx rc_rshift [| a; b |]

let int2 cx opcode f (a : t) (b : t) =
  guard_shape cx a;
  guard_shape cx b;
  R.emit cx opcode
    [| a.R.src; b.R.src |]
    (Value.of_int (f (as_int a.R.v) (as_int b.R.v)))

let bitand cx a b = int2 cx Ir.Int_and ( land ) a b
let bitor cx a b = int2 cx Ir.Int_or ( lor ) a b
let bitxor cx a b = int2 cx Ir.Int_xor ( lxor ) a b

(* --- comparison --- *)

let cmp_ir_int : cmp -> Ir.opcode option = function
  | Lt -> Some Ir.Int_lt
  | Le -> Some Ir.Int_le
  | Gt -> Some Ir.Int_gt
  | Ge -> Some Ir.Int_ge
  | Eq -> Some Ir.Int_eq
  | Ne -> Some Ir.Int_ne
  | Is | Is_not | In | Not_in -> None

let cmp_ir_float : cmp -> Ir.opcode option = function
  | Lt -> Some Ir.Float_lt
  | Le -> Some Ir.Float_le
  | Gt -> Some Ir.Float_gt
  | Ge -> Some Ir.Float_ge
  | Eq -> Some Ir.Float_eq
  | Ne -> Some Ir.Float_ne
  | Is | Is_not | In | Not_in -> None

let rc_cmp op =
  rc "W_Object.descr_richcompare" Aot.I
    (fun c a -> Semantics.compare_values c op a.(0) a.(1))
    ~effectful:false

let compare cx op (a : t) (b : t) =
  let result () = Semantics.compare_values (rt cx) op a.R.v b.R.v in
  match op with
  | Is | Is_not ->
      let opcode = if op = Is then Ir.Ptr_eq else Ir.Ptr_ne in
      R.emit cx opcode [| a.R.src; b.R.src |] (result ())
  | In | Not_in -> residual_r cx (rc_cmp op) [| a; b |]
  | Lt | Le | Gt | Ge | Eq | Ne -> (
      if both_int a b then begin
        guard_shape cx a;
        guard_shape cx b;
        match cmp_ir_int op with
        | Some opcode -> R.emit cx opcode [| a.R.src; b.R.src |] (result ())
        | None -> assert false
      end
      else if
        (is_float a.R.v || is_float b.R.v)
        && Rarith.is_number a.R.v && Rarith.is_number b.R.v
      then begin
        let fa = to_float_t cx a and fb = to_float_t cx b in
        match cmp_ir_float op with
        | Some opcode -> R.emit cx opcode [| fa.R.src; fb.R.src |] (result ())
        | None -> assert false
      end
      else if is_str a.R.v && is_str b.R.v && (op = Eq || op = Ne) then begin
        guard_shape cx a;
        guard_shape cx b;
        let r = R.emit cx Ir.Str_eq [| a.R.src; b.R.src |] (result ()) in
        if op = Ne then
          R.emit cx Ir.Int_is_zero [| r.R.src |] (result ())
        else r
      end
      else residual_r cx (rc_cmp op) [| a; b |])

let not_ cx (a : t) =
  let b = is_true cx a in
  lift (Value.of_bool (not b))

(* --- attributes --- *)

let is_func_value f =
  Value.is_obj f
  &&
  match (Value.to_obj_unchecked f).Value.payload with
  | Value.Func _ -> true
  | _ -> false

let rc_getattr =
  rc "W_TypeObject.lookup" Aot.I
    (fun c a -> Semantics.getattr c a.(0) (Semantics.as_str a.(1)))
    ~effectful:false

let rc_setattr =
  rc "W_Object.setdictvalue" Aot.I
    (fun c a ->
      Semantics.setattr c a.(0) (Semantics.as_str a.(1)) a.(2);
      Value.nil)
    ~effectful:true

let getattr cx (tv : t) name =
  match Value.view tv.R.v with
  | Value.Obj { payload = Value.Instance i; _ } -> (
      guard_shape cx tv;
      let cls = Semantics.instance_cls (Semantics.as_obj tv.R.v) in
      match Semantics.layout_index cls name with
      | Some idx ->
          R.emit cx (Ir.Getfield_gc idx) [| tv.R.src |]
            (Semantics.field_get i idx)
      | None -> residual_r cx rc_getattr [| tv; lift (Value.of_str name) |])
  | Value.Obj { payload = Value.Class _; _ } ->
      let tv = promote cx tv in
      lift (Semantics.getattr (rt cx) tv.R.v name)
  | _ -> residual_r cx rc_getattr [| tv; lift (Value.of_str name) |]

let setattr cx (tv : t) name (x : t) =
  match Value.view tv.R.v with
  | Value.Obj { payload = Value.Instance _; _ } -> (
      guard_shape cx tv;
      let cls = Semantics.instance_cls (Semantics.as_obj tv.R.v) in
      match Semantics.layout_index cls name with
      | Some idx ->
          Semantics.setattr (rt cx) tv.R.v name x.R.v;
          R.emit_n cx (Ir.Setfield_gc idx) [| tv.R.src; x.R.src |]
      | None ->
          (* first write grows the class layout; do it concretely, then
             record the write at the now-fixed index *)
          Semantics.setattr (rt cx) tv.R.v name x.R.v;
          let idx =
            match Semantics.layout_index cls name with
            | Some idx -> idx
            | None -> assert false
          in
          R.emit_n cx (Ir.Setfield_gc idx) [| tv.R.src; x.R.src |])
  | _ -> residual_n cx rc_setattr [| tv; lift (Value.of_str name); x |]

let load_method cx (tv : t) name : t * t =
  match Value.view tv.R.v with
  | Value.Obj { payload = Value.Class c; _ } -> (
      let tv = promote cx tv in
      ignore tv;
      match Semantics.class_attr c name with
      | Some a -> (lift a, lift Value.nil)
      | None -> err "class %s has no attribute '%s'" c.Value.cls_name name)
  | Value.Obj { payload = Value.Instance _; _ } -> (
      guard_shape cx tv;
      let cls = Semantics.instance_cls (Semantics.as_obj tv.R.v) in
      match Semantics.class_attr cls name with
      | Some f when is_func_value f ->
          (* the class is pinned by the shape guard, so the method is a
             trace constant *)
          (lift f, tv)
      | Some other -> (lift other, lift Value.nil)
      | None ->
          (residual_r cx rc_getattr [| tv; lift (Value.of_str name) |],
           lift Value.nil))
  | _ -> (
      match Direct_ops.builtin_method name with
      | Some b ->
          guard_shape cx tv;
          (lift (Builtins_impl.builtin_value (rt cx) b), tv)
      | None ->
          err "%s object has no method '%s'" (Value.type_name tv.R.v) name)

(* --- subscripts --- *)

let rc_dict_get =
  rc "rordereddict.ll_call_lookup_function" Aot.R
    (fun c a -> Semantics.getitem c a.(0) a.(1))
    ~effectful:false

let rc_dict_set =
  rc "rordereddict.ll_call_lookup_function" Aot.R
    (fun c a ->
      Semantics.setitem c a.(0) a.(1) a.(2);
      Value.nil)
    ~effectful:true

let rc_getitem_generic =
  rc "W_Object.descr_getitem" Aot.I
    (fun c a -> Semantics.getitem c a.(0) a.(1))
    ~effectful:false

(* bounds-guarded index: returns the (possibly wrapped) index operand *)
let guarded_index cx (cont : t) (key : t) len len_opcode =
  guard_shape cx key;
  let i = as_int key.R.v in
  let len_t = R.emit cx len_opcode [| cont.R.src |] (Value.of_int len) in
  if i >= 0 then begin
    R.guard cx Ir.G_index_lt [| key.R.src; len_t.R.src |];
    (key, i)
  end
  else begin
    let wrapped =
      R.emit cx Ir.Int_add [| key.R.src; len_t.R.src |]
        (Value.of_int (i + len))
    in
    R.guard cx Ir.G_index_lt [| wrapped.R.src; len_t.R.src |];
    (wrapped, i + len)
  end

let getitem cx (cont : t) (key : t) =
  match (Value.view cont.R.v, Value.view key.R.v) with
  | Value.Obj { payload = Value.List l; _ }, Value.Int _ ->
      guard_shape cx cont;
      let n = Value.list_len l in
      let idx, i = guarded_index cx cont key n Ir.Arraylen in
      if i < 0 || i >= n then err "list index out of range";
      R.emit cx Ir.Getlistitem [| cont.R.src; idx.R.src |]
        (Rlist.get (rt cx) (Semantics.as_list cont.R.v) i)
  | Value.Obj { payload = Value.Tuple a; _ }, Value.Int _ ->
      guard_shape cx cont;
      let n = Array.length a in
      let idx, i = guarded_index cx cont key n Ir.Arraylen in
      if i < 0 || i >= n then err "tuple index out of range";
      R.emit cx Ir.Getarrayitem_gc [| cont.R.src; idx.R.src |] a.(i)
  | Value.Str s, Value.Int _ ->
      guard_shape cx cont;
      let n = String.length s in
      let idx, i = guarded_index cx cont key n Ir.Strlen in
      if i < 0 || i >= n then err "string index out of range";
      R.emit cx Ir.Strgetitem [| cont.R.src; idx.R.src |]
        (Value.of_str (String.make 1 s.[i]))
  | Value.Obj { payload = Value.Dict _; _ }, _ ->
      guard_shape cx cont;
      residual_r cx rc_dict_get [| cont; key |]
  | _ -> residual_r cx rc_getitem_generic [| cont; key |]

let setitem cx (cont : t) (key : t) (v : t) =
  match (Value.view cont.R.v, Value.view key.R.v) with
  | Value.Obj { payload = Value.List l; _ }, Value.Int _ ->
      guard_shape cx cont;
      let n = Value.list_len l in
      let idx, i = guarded_index cx cont key n Ir.Arraylen in
      if i < 0 || i >= n then err "list assignment index out of range";
      Rlist.set (rt cx) (Semantics.as_list cont.R.v) i v.R.v;
      R.emit_n cx Ir.Setlistitem [| cont.R.src; idx.R.src; v.R.src |]
  | Value.Obj { payload = Value.Dict _; _ }, _ ->
      guard_shape cx cont;
      residual_n cx rc_dict_set [| cont; key; v |]
  | _ ->
      residual_n cx
        (rc "W_Object.descr_setitem" Aot.I
           (fun c a ->
             Semantics.setitem c a.(0) a.(1) a.(2);
             Value.nil)
           ~effectful:true)
        [| cont; key; v |]

let len_ cx (tv : t) =
  match Value.view tv.R.v with
  | Value.Str s ->
      guard_shape cx tv;
      R.emit cx Ir.Strlen [| tv.R.src |] (Value.of_int (String.length s))
  | Value.Obj { payload = Value.List _ | Value.Tuple _ | Value.Dict _ | Value.Set _; _ } ->
      guard_shape cx tv;
      R.emit cx Ir.Arraylen [| tv.R.src |]
        (Value.of_int (Semantics.len_of (rt cx) tv.R.v))
  | _ -> err "object of type %s has no len()" (Value.type_name tv.R.v)

let unpack cx (tv : t) n =
  match Value.view tv.R.v with
  | Value.Obj { payload = Value.Tuple a; _ } when Array.length a = n ->
      guard_shape cx tv;
      let len_t =
        R.emit cx Ir.Arraylen [| tv.R.src |] (Value.of_int (Array.length a))
      in
      R.guard cx (Ir.G_value (Value.of_int n)) [| len_t.R.src |];
      Array.init n (fun i ->
          R.emit cx Ir.Getarrayitem_gc
            [| tv.R.src; Ir.Const (Value.of_int i) |]
            a.(i))
  | _ ->
      let values = Semantics.unpack (rt cx) tv.R.v n in
      Array.init n (fun i ->
          residual_r cx
            (rc "W_Object.descr_unpack" Aot.I
               (fun c a ->
                 (Semantics.unpack c a.(0) (Semantics.as_int a.(1))).(Semantics.as_int a.(2)))
               ~effectful:false)
            [| tv; lift (Value.of_int n); lift (Value.of_int i) |]
          |> fun r -> { r with R.v = values.(i) })

(* --- construction --- *)

let make_list cx (items : t array) =
  let v =
    Value.of_obj
      (Rlist.create (rt cx) (Array.to_list (Array.map concrete items)))
  in
  R.emit cx (Ir.New_list (Array.length items))
    (Array.map (fun (a : t) -> a.R.src) items)
    v

let make_tuple cx (items : t array) =
  let v =
    Gc_sim.obj (Ctx.gc (rt cx)) (Value.Tuple (Array.map concrete items))
  in
  R.emit cx (Ir.New_array (Array.length items))
    (Array.map (fun (a : t) -> a.R.src) items)
    v

let rc_make_dict =
  rc "rordereddict.ll_newdict" Aot.R
    (fun c a ->
      let d = Rdict.create c in
      let o = Gc_sim.alloc (Ctx.gc c) (Value.Dict d) in
      let n = Array.length a / 2 in
      for i = 0 to n - 1 do
        Rdict.set c o d a.(2 * i) a.((2 * i) + 1)
      done;
      Value.of_obj o)
    ~effectful:false

let make_dict cx pairs =
  let flat = Array.concat (Array.to_list (Array.map (fun (k, v) -> [| k; v |]) pairs)) in
  residual_r cx rc_make_dict flat

let rc_make_set =
  rc "ObjectSetStrategy_new" Aot.I
    (fun c a -> Value.of_obj (Rset.create c (Array.to_list a)))
    ~effectful:false

let make_set cx items = residual_r cx rc_make_set items

let make_cell cx (v : t) =
  let cell = Gc_sim.obj (Ctx.gc (rt cx)) (Value.Cell { cell = v.R.v }) in
  R.emit cx Ir.New_cell [| v.R.src |] cell

let cell_get cx (tv : t) =
  match Value.view tv.R.v with
  | Value.Obj { payload = Value.Cell c; _ } ->
      guard_shape cx tv;
      R.emit cx Ir.Getcell [| tv.R.src |] c.cell
  | _ -> err "expected cell"

let cell_set cx (tv : t) (x : t) =
  match Value.view tv.R.v with
  | Value.Obj ({ payload = Value.Cell c; _ } as o) ->
      guard_shape cx tv;
      c.cell <- x.R.v;
      Gc_sim.write_barrier (Ctx.gc (rt cx)) ~parent:o ~child:x.R.v;
      R.emit_n cx Ir.Setcell [| tv.R.src; x.R.src |]
  | _ -> err "expected cell"

(* --- classes --- *)

let alloc_instance cx (clsv : t) =
  let clsv = promote cx clsv in
  let cls_obj, cls = Semantics.as_cls clsv.R.v in
  let inst =
    Gc_sim.obj (Ctx.gc (rt cx))
      (Value.Instance
         {
           cls = cls_obj;
           fields = Array.make (Array.length cls.Value.layout) Value.nil;
         })
  in
  R.emit cx (Ir.New_with_vtable cls_obj) [||] inst

let class_init_func cx (clsv : t) =
  let _, cls = Semantics.as_cls (promote cx clsv).R.v in
  match Semantics.class_attr cls "__init__" with
  | Some f -> (
      match Value.view f with
      | Value.Obj { payload = Value.Func f; _ } -> Some f
      | _ -> None)
  | None -> None

(* --- globals --- *)

let load_global cx globals name =
  match Globals.binding globals name with
  | Some (Globals.Direct v) ->
      (* assigned once: promote to a constant under the version guard *)
      R.guard cx
        (Ir.G_global_version (globals.Globals.version, !(globals.Globals.version)))
        [||];
      lift v
  | Some (Globals.Celled cell) ->
      (* reassigned name (PyPy's ModuleCell): the binding's existence is
         version-guarded, but its value is read at runtime so stores
         don't invalidate the trace *)
      R.guard cx
        (Ir.G_global_version (globals.Globals.version, !(globals.Globals.version)))
        [||];
      residual_r cx
        (rc "Module.getdictvalue" Aot.I (fun _c _a -> !cell) ~effectful:false)
        [||]
  | None -> err "name '%s' is not defined" name

let store_global cx globals name (v : t) =
  residual_n cx
    (rc "Module.setdictvalue" Aot.I
       (fun _c a ->
         Globals.set globals name a.(0);
         Value.nil)
       ~effectful:true)
    [| v |]

(* --- builtins --- *)

let builtin_aot_name (b : Builtin.t) =
  match b with
  | Builtin.Append | Builtin.Insert | Builtin.Extend ->
      ("W_ListObject.append", Aot.I)
  | Builtin.Pop -> ("IntegerListStrategy_pop", Aot.I)
  | Builtin.Index -> ("IntegerListStrategy_safe_find", Aot.I)
  | Builtin.Dict_get | Builtin.Has_key | Builtin.Keys | Builtin.Values
  | Builtin.Items ->
      ("rordereddict.ll_call_lookup_function", Aot.R)
  | Builtin.Join -> ("rstr.ll_join", Aot.R)
  | Builtin.Split -> ("rstring.split", Aot.L)
  | Builtin.Replace -> ("rstring.replace", Aot.L)
  | Builtin.Find -> ("rstr.ll_find_char", Aot.R)
  | Builtin.Translate -> ("W_UnicodeObject_descr_translate", Aot.I)
  | Builtin.Encode_json -> ("_pypyjson.raw_encode_basestring_ascii", Aot.M)
  | Builtin.Sio_write -> ("rbuilder.ll_append", Aot.R)
  | Builtin.Sio_getvalue -> ("rbuilder.build", Aot.R)
  | Builtin.Sqrt | Builtin.Sin | Builtin.Cos | Builtin.Floor_f ->
      ("math.libm_call", Aot.C)
  | Builtin.Powf -> ("pow", Aot.C)
  | Builtin.Set_add -> ("ObjectSetStrategy_add", Aot.I)
  | Builtin.Set_remove -> ("ObjectSetStrategy_remove", Aot.I)
  | Builtin.Issubset -> ("BytesSetStrategy_issubset_unwrapped", Aot.I)
  | Builtin.Difference -> ("BytesSetStrategy_difference_unwrapped", Aot.I)
  | Builtin.Union -> ("ObjectSetStrategy_union", Aot.I)
  | Builtin.Intersection -> ("ObjectSetStrategy_intersect", Aot.I)
  | Builtin.Sorted -> ("listsort.TimSort", Aot.L)
  | Builtin.To_str | Builtin.Repr -> ("W_Object.descr_str", Aot.I)
  | Builtin.To_int -> ("arithmetic.string_to_int", Aot.L)
  | Builtin.Hashf -> ("rstr_ll_strhash", Aot.R)
  | Builtin.Slice_get -> ("IntegerListStrategy_fill_in_with_sliced_items", Aot.I)
  | Builtin.Slice_set -> ("IntegerListStrategy_setslice", Aot.I)
  | Builtin.Del_item -> ("rordereddict.ll_call_lookup_function", Aot.R)
  | Builtin.Make_vector -> ("ObjectListStrategy_newlist", Aot.I)
  | b -> ("builtin." ^ Builtin.name b, Aot.I)

let builtin_effectful (b : Builtin.t) =
  match b with
  | Builtin.Append | Builtin.Pop | Builtin.Insert | Builtin.Extend
  | Builtin.Set_add | Builtin.Set_remove | Builtin.Sio_write | Builtin.Print
  | Builtin.Annotate | Builtin.Del_item | Builtin.Slice_set
  | Builtin.Display ->
      true
  | _ -> false

(* Populated eagerly for every builtin at module-initialization time
   (single-domain, before Aot freezes), after which the table is
   read-only and safe to consult from any domain without a lock. *)
let rc_builtin_tbl : (Builtin.t, Ir.rescall) Hashtbl.t = Hashtbl.create 64

let () =
  List.iter
    (fun b ->
      let name, src = builtin_aot_name b in
      Hashtbl.replace rc_builtin_tbl b
        (rc name src
           (fun c a -> Builtins_impl.run c b a)
           ~effectful:(builtin_effectful b)))
    Builtin.all

let rc_builtin b =
  match Hashtbl.find_opt rc_builtin_tbl b with
  | Some r -> r
  | None -> invalid_arg ("rc_builtin: unregistered builtin " ^ Builtin.name b)

let call_builtin cx (b : Builtin.t) (args : t array) : t =
  match b with
  | Builtin.Len when Array.length args = 1 -> len_ cx args.(0)
  | Builtin.Annotate when Array.length args = 1 ->
      residual_n cx (rc_builtin b) args;
      lift Value.nil
  | _ ->
      if Array.length args > 0 then begin
        (* pin the receiver/first-argument shape so the residual call's
           fast path stays valid *)
        if Value.is_obj args.(0).R.v || Value.is_str args.(0).R.v then
          guard_shape cx args.(0)
      end;
      residual_r cx (rc_builtin b) args
