open Mtj_core

(* Tier policy: the pure decision logic of the multi-tier driver.

   All state the policy reads lives on the trace (exec_count, deopts,
   promote_at, bridges) or the loop site (demotions); this module only
   computes verdicts from it, so the whole state machine is
   property-testable without running a VM (test/test_jit_machinery.ml).

   The shape follows Izawa & Bolz-Tereick's lightweight multi-tier
   method: a cheap baseline tier compiled at a low threshold, promotion
   to the optimizing tier gated on hotness AND a stable guard-fail
   profile, and demotion (with an exponentially raised re-promotion
   threshold) when bridges proliferate on an optimized loop. *)

(* Sentinel promote_at for "this trace is never promoted" — used by the
   translate-time check in the threaded executor so Optimizing/Baseline
   traces carry zero promotion overhead. *)
let never = max_int

(* Loop-header hotness needed before tracing starts.  Baseline/Adaptive
   trace early at [tier1_threshold]; [min] keeps eager test configs
   (tiny jit_threshold) tracing at their configured point. *)
let trace_threshold cfg =
  match cfg.Config.tier_policy with
  | Config.Optimizing -> cfg.Config.jit_threshold
  | Config.Baseline | Config.Adaptive ->
      min cfg.Config.jit_threshold cfg.Config.tier1_threshold

(* Tier of a freshly recorded loop trace. *)
let compile_tier cfg =
  match cfg.Config.tier_policy with
  | Config.Optimizing -> 2
  | Config.Baseline | Config.Adaptive -> 1

(* promote_at for a freshly compiled loop trace: the exec_count at which
   the executor should exit to the portal for a tier-up decision. *)
let initial_promote_at cfg =
  match cfg.Config.tier_policy with
  | Config.Adaptive -> cfg.Config.tier2_threshold
  | Config.Optimizing | Config.Baseline -> never

(* Seeded hotness for a loop site imported from a publisher's trace
   profile: one short of the tracing threshold, so the loop traces on
   its first header visit instead of re-counting from zero.  Not the
   threshold itself — the importer still observes one real iteration
   before recording, keeping the recorded type state warm. *)
let seed_counter cfg = max 0 (trace_threshold cfg - 1)

(* promote_at for a freshly compiled loop whose site the profile marked
   as promoted by the publisher: under Adaptive, trust the publisher's
   tier decision and promote after a quarter of the usual threshold
   (still > 0 executions, so the stability gate keeps its say); the
   other policies never promote, profile or not. *)
let seeded_promote_at cfg =
  match cfg.Config.tier_policy with
  | Config.Adaptive -> max 1 (cfg.Config.tier2_threshold / 4)
  | Config.Optimizing | Config.Baseline -> initial_promote_at cfg

let hot ~promote_at ~execs = promote_at <> never && execs >= promote_at

(* Guard-fail profile stability: at most one deopt per
   [tier_stable_every] trace executions. *)
let stable cfg ~execs ~deopts = deopts * cfg.Config.tier_stable_every <= execs

type verdict =
  | Promote  (* recompile through the optimizer at tier 2 *)
  | Defer of int  (* hot but guard-unstable: re-ask at this exec_count *)
  | Stay

let tier_up cfg ~tier ~execs ~deopts ~promote_at =
  if tier >= 2 || not (hot ~promote_at ~execs) then Stay
  else if stable cfg ~execs ~deopts then Promote
  else Defer (execs + cfg.Config.tier2_threshold)

(* Demotion trigger: an optimized loop that keeps growing bridges is
   paying optimizer cost for a trace shape that no longer matches the
   workload — recompile it at the baseline tier and re-profile. *)
let should_demote cfg ~tier ~bridges =
  cfg.Config.tier_policy = Config.Adaptive
  && tier >= 2
  && bridges >= cfg.Config.demote_bridges

(* promote_at for the demoted replacement trace: exponentially raised
   with each demotion of the site, and [never] once the site exhausts
   [max_demotions] — a demoted trace is not re-promoted below the
   raised threshold, so tiers cannot oscillate. *)
let demoted_promote_at cfg ~demotions =
  if demotions > cfg.Config.max_demotions then never
  else cfg.Config.tier2_threshold * (1 lsl demotions)
