(** Pure evaluation of IR opcodes on concrete values, shared by the
    optimizer's constant folder and the trace executor. *)

exception Not_pure
(** Raised by {!eval} for opcodes that touch the heap or have effects. *)

exception Overflow
(** Raised by the checked arithmetic helpers on native-int overflow —
    the condition the [guard_no_overflow] family checks. *)

val as_int : Mtj_rt.Value.t -> int
val as_float : Mtj_rt.Value.t -> float
val as_str : Mtj_rt.Value.t -> string

val checked_add : int -> int -> int
val checked_sub : int -> int -> int
val checked_mul : int -> int -> int

val eval : Ir.opcode -> Mtj_rt.Value.t array -> Mtj_rt.Value.t
(** Evaluate a pure opcode. Raises {!Not_pure} for heap/effect opcodes,
    [Division_by_zero] and {!Mtj_rjit.Ops_intf.Lang_error} with the same
    messages the interpreter produces (so folding never changes
    observable errors). *)

val foldable : Ir.opcode -> bool
(** Whether the constant folder may evaluate this opcode at compile time
    when all arguments are constants. *)

val removable : Ir.op -> bool
(** Whether dead-code elimination may drop this operation when its
    result is unused. *)
