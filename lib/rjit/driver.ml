(** The generic VM driver: dispatch loop, hot-loop detection, tracing
    control, compiled-code entry and deoptimization plumbing.

    Instantiated once per hosted language (pylite, rklite).  The driver
    owns the mode transitions of Figure 1/3 of the paper:

    - {b interpreter}: the dispatch loop runs [Step(Direct_ops)], emitting
      one [Dispatch_tick] annotation and one indirect dispatch branch per
      bytecode — either through the reference decode-and-match loop or,
      by default, through the {!Threaded} tier's translate-once step
      arrays (same simulated charges, cheaper host dispatch);
    - {b tracing}: when a loop header's counter crosses the threshold the
      same handlers run as [Step(Trace_ops)], recording IR until the loop
      closes (or the trace aborts);
    - {b JIT}: compiled loops execute in {!Executor}; guard failures
      deoptimize through the blackhole back into the interpreter, and hot
      guards get bridges traced from their deopt state. *)

open Mtj_core
open Mtj_rt
module Engine = Mtj_machine.Engine

type outcome =
  | Completed of Value.t
  | Budget_exceeded
  | Runtime_error of string

module Make (L : Threaded.LANG) = struct
  module D = L.Step (Direct_ops)
  module T = L.Step (Trace_ops)

  type site = {
    mutable counter : int;
    mutable state : [ `Cold | `Compiled of Ir.trace | `Blacklisted ];
    mutable aborts : int;
    mutable raw : Ir.op array option;
        (* baseline/adaptive tiers: recorded (unoptimized) ops kept for
           the tier-2 recompile — and, under Adaptive, after promotion
           too, for the tier-1 recompile on demotion *)
    mutable demotions : int;
        (* times this site's optimized loop was demoted back to tier 1;
           raises the re-promotion threshold exponentially *)
    mutable promote_hint : bool;
        (* an imported trace profile marked this site as promoted by its
           publisher: compile the fresh tier-1 trace with the seeded
           (earlier) promotion point instead of the default *)
  }

  type dframe = (Value.t, L.code) Frame.t
  type tframe = (Recorder.tval, L.code) Frame.t

  type t = {
    rtc : Ctx.t;
    cfg : Config.t;
    profile : Profile.t;
    globals : Globals.t;
    jitlog : Jitlog.t;
    sites : (int * int, site) Hashtbl.t;
    dcx : Direct_ops.cx;
    charge_tab : Cost.t array;
        (* preinterned dispatch-loop cost table: slot 0 = per-bytecode
           dispatch bundle, slot 1 = frame setup/teardown; charged via
           [Engine.emit_static] *)
    mutable cur : dframe option;        (* GC roots: direct frames *)
    mutable tracking : tframe option;   (* GC roots: tracked frames *)
    mutable translated_refs : int list;
        (* code_refs this driver translated to threaded step arrays,
           newest first — exported (sorted) in the trace profile *)
  }

  let create ?(profile = Profile.rpython_interp) rtc globals =
    (* per-VM id sequences restart at zero so a run's simulated
       behaviour does not depend on what ran before it on this domain *)
    Recorder.reset_guard_ids ();
    let t =
      {
        rtc;
        cfg = Ctx.config rtc;
        profile;
        globals;
        jitlog = Jitlog.create ();
        sites = Hashtbl.create 64;
        dcx = Direct_ops.make_cx rtc profile;
        charge_tab = [| profile.Profile.dispatch; profile.Profile.frame_cost |];
        cur = None;
        tracking = None;
        translated_refs = [];
      }
    in
    Engine.set_interp_width (Ctx.engine rtc) profile.Profile.interp_width;
    (* frames and globals are GC roots *)
    let scan_dchain visit =
      let rec go = function
        | None -> ()
        | Some (f : dframe) ->
            Array.iter visit f.Frame.locals;
            for i = 0 to f.Frame.sp - 1 do
              visit f.Frame.stack.(i)
            done;
            go f.Frame.parent
      in
      go t.cur
    in
    let scan_tchain visit =
      let rec go = function
        | None -> ()
        | Some (f : tframe) ->
            Array.iter (fun (tv : Recorder.tval) -> visit tv.Recorder.v) f.Frame.locals;
            for i = 0 to f.Frame.sp - 1 do
              visit f.Frame.stack.(i).Recorder.v
            done;
            go f.Frame.parent
      in
      go t.tracking
    in
    ignore
      (Gc_sim.add_root_scanner (Ctx.gc rtc) (fun visit ->
           scan_dchain visit;
           scan_tchain visit;
           Globals.scan globals visit));
    t

  let jitlog t = t.jitlog
  let globals t = t.globals
  let rtc t = t.rtc

  let site_of t key =
    match Hashtbl.find_opt t.sites key with
    | Some s -> s
    | None ->
        let s =
          { counter = 0; state = `Cold; aborts = 0; raw = None;
            demotions = 0; promote_hint = false }
        in
        Hashtbl.replace t.sites key s;
        s

  let make_dframe t code parent : dframe =
    Frame.create_pooled ~pool:(Ctx.frame_pool t.rtc) ~code
      ~code_ref:(L.code_ref code) ~nlocals:(L.nlocals code)
      ~stack_size:(L.stack_size code) ~parent

  (* --- resume snapshots over tracked frames --- *)

  let source_of_tval (tv : Recorder.tval) : Ir.source =
    match tv.Recorder.src with
    | Ir.Reg r -> Ir.S_reg r
    | Ir.Const v -> Ir.S_const v

  let chain_outermost_first (bottom : tframe) =
    let rec go acc (f : tframe) =
      match f.Frame.parent with None -> f :: acc | Some p -> go (f :: acc) p
    in
    go [] bottom

  let build_resume (innermost : tframe) : Ir.resume =
    let frames =
      List.map
        (fun (f : tframe) ->
          {
            Ir.snap_code = f.Frame.code_ref;
            snap_pc = f.Frame.pc;
            snap_locals = Array.map source_of_tval f.Frame.locals;
            snap_stack =
              Array.init f.Frame.sp (fun i -> source_of_tval f.Frame.stack.(i));
            snap_discard = f.Frame.discard_return;
          })
        (chain_outermost_first innermost)
    in
    { Ir.frames; r_virtuals = [||] }

  type saved_frame = {
    s_code : L.code;
    s_pc : int;
    s_locals : Value.t array;
    s_stack : Value.t array;
    s_discard : bool;
  }

  let save_chain (innermost : tframe) =
    List.map
      (fun (f : tframe) ->
        {
          s_code = f.Frame.code;
          s_pc = f.Frame.pc;
          s_locals = Array.map (fun (tv : Recorder.tval) -> tv.Recorder.v) f.Frame.locals;
          s_stack =
            Array.init f.Frame.sp (fun i -> f.Frame.stack.(i).Recorder.v);
          s_discard = f.Frame.discard_return;
        })
      (chain_outermost_first innermost)

  (* rebuild a direct frame chain from saved state; [parent] is the frame
     below the traced region *)
  let rebuild_saved t (saved : saved_frame list) (parent : dframe option) :
      dframe =
    List.fold_left
      (fun parent s ->
        let f = make_dframe t s.s_code parent in
        f.Frame.pc <- s.s_pc;
        f.Frame.discard_return <- s.s_discard;
        Array.blit s.s_locals 0 f.Frame.locals 0 (Array.length s.s_locals);
        Array.iteri (fun i v -> f.Frame.stack.(i) <- v) s.s_stack;
        f.Frame.sp <- Array.length s.s_stack;
        Some f)
      parent saved
    |> Option.get

  let rebuild_deopt t (frames : Executor.deopt_frame list)
      (parent : dframe option) : dframe =
    rebuild_saved t
      (List.map
         (fun (d : Executor.deopt_frame) ->
           {
             s_code = L.lookup_code d.Executor.df_code;
             s_pc = d.Executor.df_pc;
             s_locals = d.Executor.df_locals;
             s_stack = d.Executor.df_stack;
             s_discard = d.Executor.df_discard;
           })
         frames)
      parent

  (* --- recording sessions (loops and bridges share this) --- *)

  type session_end =
    | Closed of Ir.op array * saved_frame list
    | Closed_return of Ir.op array * Value.t
        (* the traced region returned out of its bottom frame; the value
           flows to the caller of the region (bridges only) *)
    | Aborted of string * saved_frame list

  (* runs the tracing meta-interpreter until [close] says the trace is
     complete or tracing aborts; returns the recorded ops and the
     concrete state to resume direct execution from *)
  let record_session t (rec_ : Recorder.t) (start : tframe) ~target_key
      ~allow_finish
      ~(close : steps:int -> tframe -> bool) ~(finish : Recorder.t -> tframe -> unit) :
      session_end =
    let tcur = ref start in
    t.tracking <- Some start;
    let last_saved = ref (save_chain start) in
    let finish_session result =
      t.tracking <- None;
      result
    in
    ignore target_key;
    let rec loop steps =
      let f = !tcur in
      if close ~steps f then begin
        finish rec_ f;
        Closed (Recorder.ops rec_, save_chain f)
      end
      else begin
        (* inner loops that are already compiled are traced straight
           through (unrolled); overly long unrolls hit the trace-length
           abort, as in RPython *)
        last_saved := save_chain f;
        Recorder.begin_bytecode rec_ ~resume:(build_resume f)
          ~code:f.Frame.code_ref ~pc:f.Frame.pc;
        match T.step_ref rec_ t.globals f with
        | Frame.Continue -> loop (steps + 1)
        | Frame.Call nf ->
            if Frame.depth nf > t.cfg.Config.max_inline_depth then
              raise (Recorder.Abort "call too deep to inline");
            Recorder.enter_call rec_;
            tcur := nf;
            t.tracking <- Some nf;
            loop (steps + 1)
        | Frame.Return v -> (
            match f.Frame.parent with
            | Some p ->
                if not f.Frame.discard_return then Frame.push p v;
                Recorder.exit_call rec_;
                tcur := p;
                t.tracking <- Some p;
                (* [f] is now unreachable from the tracked chain and all
                   resume/save snapshots copied its arrays, so they can
                   be recycled for the next tracked call *)
                Frame.release ~pool:(Recorder.pool rec_) f;
                loop (steps + 1)
            | None ->
                if allow_finish then begin
                  (* the region returned: end the trace with [finish],
                     handing the value back to the region's caller *)
                  Recorder.emit_n rec_ Ir.Finish [| v.Recorder.src |];
                  Closed_return (Recorder.ops rec_, v.Recorder.v)
                end
                else raise (Recorder.Abort "returned out of the traced region"))
      end
    in
    match loop 0 with
    | result -> finish_session result
    | exception Recorder.Abort msg ->
        let where =
          match !tcur with
          | f -> Printf.sprintf " @%s:%d" (L.name f.Frame.code) f.Frame.pc
        in
        finish_session (Aborted (msg ^ where, !last_saved))
    | exception Ops_intf.Lang_error _ ->
        finish_session (Aborted ("language error while tracing", !last_saved))
    | exception Rarith.Type_error _ ->
        finish_session (Aborted ("type error while tracing", !last_saved))
    | exception Division_by_zero ->
        finish_session (Aborted ("division by zero while tracing", !last_saved))
    | exception e ->
        t.tracking <- None;
        raise e

  let tval_of_value r i v : Recorder.tval = ignore r; { Recorder.v; src = Ir.Reg i }

  (* --- tracing a loop --- *)

  let trace_loop t (f : dframe) (site : site) : dframe =
    let key = (f.Frame.code_ref, f.Frame.pc) in
    let eng = Ctx.engine t.rtc in
    Engine.push_phase eng Phase.Tracing;
    Fun.protect ~finally:(fun () -> Engine.pop_phase eng) @@ fun () ->
    let entry_slots = Array.length f.Frame.locals in
    let rec_ = Recorder.create t.rtc ~entry_slots in
    let tf : tframe =
      Frame.create_pooled ~pool:(Recorder.pool rec_) ~code:f.Frame.code
        ~code_ref:f.Frame.code_ref ~nlocals:entry_slots
        ~stack_size:(L.stack_size f.Frame.code) ~parent:None
    in
    Array.iteri (fun i v -> tf.Frame.locals.(i) <- tval_of_value rec_ i v) f.Frame.locals;
    tf.Frame.pc <- f.Frame.pc;
    let close ~steps (fr : tframe) =
      steps > 0 && fr.Frame.parent = None
      && fr.Frame.code_ref = fst key
      && fr.Frame.pc = snd key && fr.Frame.sp = 0
    in
    let finish rec_ (fr : tframe) =
      let args = Array.map (fun (tv : Recorder.tval) -> tv.Recorder.src) fr.Frame.locals in
      Recorder.emit_n rec_ Ir.Jump args
    in
    let orig_parent = f.Frame.parent in
    match record_session t rec_ tf ~target_key:key ~allow_finish:false ~close ~finish with
    | Closed (ops, saved) ->
        let trace =
          if Tierpolicy.compile_tier t.cfg <= 1 then begin
            (* baseline tier: skip the optimizer, pay a fraction of the
               compile cost, keep the raw recording for the tier-2
               recompile (and the post-demotion tier-1 recompile) *)
            site.raw <- Some (Ir.copy_ops ops);
            Backend.compile t.jitlog t.rtc
              ~kind:(Ir.Loop { loop_code = fst key; loop_pc = snd key })
              ~entry_slots ~tier:1
              ~promote_at:
                (if site.promote_hint then Tierpolicy.seeded_promote_at t.cfg
                 else Tierpolicy.initial_promote_at t.cfg)
              ops
          end
          else begin
            let opt_ops, loop_base, loop_start =
              Opt.optimize t.cfg ~kind:`Loop ops ~entry_slots
            in
            Backend.compile t.jitlog t.rtc
              ~kind:(Ir.Loop { loop_code = fst key; loop_pc = snd key })
              ~entry_slots ~loop_base ~loop_start opt_ops
          end
        in
        site.state <- `Compiled trace;
        rebuild_saved t saved orig_parent
    | Closed_return _ -> assert false (* loops never record [finish] *)
    | Aborted (msg, saved) ->
        Engine.annot eng (Annot.Trace_abort (fst key));
        Jitlog.record_abort t.jitlog msg;
        site.aborts <- site.aborts + 1;
        site.counter <- 0;
        if site.aborts >= t.cfg.Config.retrace_limit then begin
          site.state <- `Blacklisted;
          Jitlog.record_blacklist t.jitlog
        end;
        rebuild_saved t saved orig_parent

  (* --- tracing a bridge from a deoptimized state --- *)

  (* result of running / bridging JIT code: either an interpreter frame
     to continue from, or the whole region returned a value to the caller
     of [orig_parent]'s child (possibly ending the program) *)
  type jit_outcome = J_frame of dframe | J_done of Value.t

  let continue_after_region_return ~(orig_parent : dframe option)
      ~(discard : bool) (v : Value.t) : jit_outcome =
    match orig_parent with
    | Some p ->
        if not discard then Frame.push p v;
        J_frame p
    | None -> J_done v

  let loop_key_of (trace : Ir.trace) =
    match trace.Ir.kind with
    | Ir.Loop { loop_code; loop_pc } -> (loop_code, loop_pc)
    | Ir.Bridge { loop_code; loop_pc; _ } -> (loop_code, loop_pc)

  let trace_bridge t (g : Ir.guard) (frames : Executor.deopt_frame list)
      ~loop_key ~(owner : Ir.trace option) ~(orig_parent : dframe option) :
      jit_outcome =
    let eng = Ctx.engine t.rtc in
    Engine.push_phase eng Phase.Tracing;
    Fun.protect ~finally:(fun () -> Engine.pop_phase eng) @@ fun () ->
    (* flatten the deopt state: entry registers in frame order, locals
       then stack for each frame, outermost first *)
    let next = ref 0 in
    let entry_slots =
      List.fold_left
        (fun acc (d : Executor.deopt_frame) ->
          acc
          + Array.length d.Executor.df_locals
          + Array.length d.Executor.df_stack)
        0 frames
    in
    let rec_ = Recorder.create t.rtc ~entry_slots in
    let bottom_to_top =
      List.fold_left
        (fun parent (d : Executor.deopt_frame) ->
          let code = L.lookup_code d.Executor.df_code in
          let f : tframe =
            Frame.create_pooled ~pool:(Recorder.pool rec_) ~code
              ~code_ref:d.Executor.df_code ~nlocals:(L.nlocals code)
              ~stack_size:(L.stack_size code) ~parent
          in
          f.Frame.pc <- d.Executor.df_pc;
          f.Frame.discard_return <- d.Executor.df_discard;
          Array.iteri
            (fun i v ->
              let r = !next in
              incr next;
              f.Frame.locals.(i) <- { Recorder.v; src = Ir.Reg r })
            d.Executor.df_locals;
          Array.iteri
            (fun i v ->
              let r = !next in
              incr next;
              f.Frame.stack.(i) <- { Recorder.v; src = Ir.Reg r })
            d.Executor.df_stack;
          f.Frame.sp <- Array.length d.Executor.df_stack;
          Some f)
        None frames
    in
    let start = Option.get bottom_to_top in
    let close ~steps (fr : tframe) =
      steps > 0 && fr.Frame.parent = None
      && (fr.Frame.code_ref, fr.Frame.pc) = loop_key
      && fr.Frame.sp = 0
    in
    let target_trace_id () =
      match (site_of t loop_key).state with
      | `Compiled tr -> Some tr.Ir.trace_id
      | `Cold | `Blacklisted -> None
    in
    let finish rec_ (fr : tframe) =
      match target_trace_id () with
      | Some tid ->
          let args =
            Array.map (fun (tv : Recorder.tval) -> tv.Recorder.src) fr.Frame.locals
          in
          Recorder.emit_n rec_ (Ir.Call_assembler tid) args
      | None -> raise (Recorder.Abort "bridge target loop vanished")
    in
    (* demotion: an optimized loop that keeps growing bridges gets
       recompiled at the baseline tier from the kept raw recording, with
       an exponentially raised re-promotion threshold (never, once the
       site exhausts max_demotions).  The old optimized trace stays
       registered — bridges recorded against it still call back into it
       — but its cached threaded code is invalidated, so any stale
       code_ref re-translates instead of executing the cached closure
       array. *)
    let maybe_demote (owner : Ir.trace) =
      let site = site_of t loop_key in
      match site.state with
      | `Compiled cur
        when cur == owner
             && Tierpolicy.should_demote t.cfg ~tier:owner.Ir.tier
                  ~bridges:owner.Ir.bridges -> (
          match site.raw with
          | Some raw ->
              site.demotions <- site.demotions + 1;
              Jitlog.record_demotion t.jitlog;
              let ops = Ir.copy_ops raw in
              let demoted =
                Backend.compile t.jitlog t.rtc
                  ~kind:
                    (Ir.Loop { loop_code = fst loop_key; loop_pc = snd loop_key })
                  ~entry_slots:owner.Ir.entry_slots ~tier:1
                  ~promote_at:
                    (Tierpolicy.demoted_promote_at t.cfg
                       ~demotions:site.demotions)
                  ops
              in
              site.state <- `Compiled demoted;
              Ir.invalidate_code owner
          | None -> ())
      | _ -> ()
    in
    let compile_bridge ops =
      (* a bridge inherits its owner's tier: baseline loops get cheap
         unoptimized bridges, optimized loops get optimized ones *)
      let tier =
        match owner with Some o when o.Ir.tier <= 1 -> 1 | _ -> 2
      in
      let bridge_ops =
        if tier <= 1 then ops
        else
          let opt_ops, _, _ =
            Opt.optimize t.cfg ~kind:`Bridge ops ~entry_slots
          in
          opt_ops
      in
      let bridge =
        Backend.compile t.jitlog t.rtc
          ~kind:
            (Ir.Bridge
               {
                 from_guard = g.Ir.guard_id;
                 loop_code = fst loop_key;
                 loop_pc = snd loop_key;
               })
          ~entry_slots ~tier bridge_ops
      in
      g.Ir.bridge <- Some bridge;
      (* the guard's owning trace has a new fail path: drop its cached
         threaded code so the next entry re-translates with the bridge
         bound directly into the guard's fail step *)
      Option.iter Ir.invalidate_code owner;
      Jitlog.record_bridge t.jitlog;
      Option.iter
        (fun (o : Ir.trace) ->
          o.Ir.bridges <- o.Ir.bridges + 1;
          maybe_demote o)
        owner
    in
    let region_discard =
      match frames with
      | outermost :: _ -> outermost.Executor.df_discard
      | [] -> false
    in
    match
      record_session t rec_ start ~target_key:loop_key ~allow_finish:true
        ~close ~finish
    with
    | Closed (ops, saved) ->
        compile_bridge ops;
        J_frame (rebuild_saved t saved orig_parent)
    | Closed_return (ops, v) ->
        compile_bridge ops;
        continue_after_region_return ~orig_parent ~discard:region_discard v
    | Aborted (msg, saved) ->
        Engine.annot eng (Annot.Trace_abort (fst loop_key));
        Jitlog.record_abort t.jitlog msg;
        g.Ir.bridgeable <- false;
        J_frame (rebuild_saved t saved orig_parent)

  (* --- entering compiled code --- *)

  let enter_jit t (trace : Ir.trace) (f : dframe) : jit_outcome =
    let eng = Ctx.engine t.rtc in
    let orig_parent = f.Frame.parent in
    Engine.push_phase eng Phase.Jit;
    let ex =
      Fun.protect ~finally:(fun () -> Engine.pop_phase eng) @@ fun () ->
      Executor.run t.rtc t.jitlog ~trace ~entry:f.Frame.locals
    in
    match ex.Executor.finished with
    | Some v ->
        continue_after_region_return ~orig_parent
          ~discard:f.Frame.discard_return v
    | None -> (
        match ex.Executor.failed_guard with
        | Some g when ex.Executor.request_bridge && g.Ir.bridgeable ->
            trace_bridge t g ex.Executor.frames ~loop_key:(loop_key_of trace)
              ~owner:ex.Executor.failed_in ~orig_parent
        | Some _ | None -> J_frame (rebuild_deopt t ex.Executor.frames orig_parent))

  (* --- the JIT portal, consulted at every loop header --- *)

  let on_loop_header t (f : dframe) : jit_outcome =
    if f.Frame.sp <> 0 then J_frame f
    else begin
      let key = (f.Frame.code_ref, f.Frame.pc) in
      let site = site_of t key in
      match site.state with
      | `Compiled trace ->
          let trace =
            (* tier-up: once a baseline trace reaches its promotion
               point with a stable guard-fail profile, recompile the
               saved recording through the full optimizer
               (tracing-phase work, like the original compile) *)
            match
              Tierpolicy.tier_up t.cfg ~tier:trace.Ir.tier
                ~execs:trace.Ir.exec_count ~deopts:trace.Ir.deopts
                ~promote_at:trace.Ir.promote_at
            with
            | Tierpolicy.Stay -> trace
            | Tierpolicy.Defer p ->
                (* hot but guard-unstable: push the promotion point out
                   so the executor stops exiting every back-edge *)
                trace.Ir.promote_at <- p;
                trace
            | Tierpolicy.Promote -> (
                match site.raw with
                | Some raw ->
                    let eng = Ctx.engine t.rtc in
                    Engine.push_phase eng Phase.Tracing;
                    Fun.protect ~finally:(fun () -> Engine.pop_phase eng)
                    @@ fun () ->
                    let entry_slots = trace.Ir.entry_slots in
                    let ops = Ir.copy_ops raw in
                    let opt_ops, loop_base, loop_start =
                      Opt.optimize t.cfg ~kind:`Loop ops ~entry_slots
                    in
                    let t2 =
                      Backend.compile t.jitlog t.rtc ~kind:trace.Ir.kind
                        ~entry_slots ~loop_base ~loop_start opt_ops
                    in
                    Jitlog.record_retier t.jitlog;
                    site.state <- `Compiled t2;
                    (* Adaptive keeps the raw recording: demotion needs
                       it for the tier-1 recompile *)
                    if t.cfg.Config.tier_policy <> Config.Adaptive then
                      site.raw <- None;
                    t2
                | None ->
                    (* no recording to promote from: pin at tier 1 *)
                    trace.Ir.promote_at <- Tierpolicy.never;
                    trace)
          in
          enter_jit t trace f
      | `Blacklisted -> J_frame f
      | `Cold ->
          site.counter <- site.counter + 1;
          if site.counter >= Tierpolicy.trace_threshold t.cfg then
            J_frame (trace_loop t f site)
          else J_frame f
    end

  (* --- the dispatch loop --- *)

  (* Straight-line threaded execution: run pre-bound step closures
     back-to-back until a call or return.  All the per-iteration
     bookkeeping of the outer loop (result/current-frame refs, code
     switch compare, portal test) is hoisted out of this inner loop —
     per bytecode it costs one array load and one closure call. *)
  let rec exec_steps (steps : (Value.t, L.code) Threaded.step array)
      (f : dframe) =
    match steps.(f.Frame.pc) f with
    | Frame.Continue -> exec_steps steps f
    | oc -> oc

  (* Same, with the JIT on: additionally yield [Frame.Continue] at every
     loop-header merge point, BEFORE executing it, so the outer loop can
     run the portal (hot counting / trace entry).  Only headers produce
     [Continue] here — the inner loop consumes every other one. *)
  let rec exec_steps_jit (steps : (Value.t, L.code) Threaded.step array)
      (headers : bool array) (f : dframe) =
    if Array.unsafe_get headers f.Frame.pc then Frame.Continue
    else
      match steps.(f.Frame.pc) f with
      | Frame.Continue -> exec_steps_jit steps headers f
      | oc -> oc

  let run_frame t (frame0 : dframe) : outcome =
    let eng = Ctx.engine t.rtc in
    let jit_on = t.cfg.Config.jit_enabled in
    let threaded = t.cfg.Config.threaded_interp in
    let cur = ref frame0 in
    t.cur <- Some frame0;
    let result = ref None in
    (* threaded tier: the step array and header bitmap of the code object
       the current frame runs, re-fetched (translating on first sight)
       whenever the running code changes — calls, returns, deopt
       rebuilds all funnel through a single int compare per iteration *)
    let steps : (Value.t, L.code) Threaded.step array ref = ref [||] in
    let headers = ref [||] in
    let steps_for = ref min_int in
    let fetch_threaded (f : dframe) =
      (match L.lookup_threaded f.Frame.code with
      | Some s ->
          Jitlog.record_threaded_code_hit t.jitlog;
          steps := s
      | None ->
          let d =
            {
              Threaded.d_eng = eng;
              d_tab = t.charge_tab;
              d_site = 200_000 + (f.Frame.code_ref land 1023);
              d_indirect = t.profile.Profile.dispatch_indirect;
            }
          in
          let s = L.threaded_code t.dcx t.globals d f.Frame.code in
          L.store_threaded f.Frame.code s;
          Jitlog.record_interp_translation t.jitlog;
          t.translated_refs <- f.Frame.code_ref :: t.translated_refs;
          steps := s);
      headers := L.headers f.Frame.code;
      steps_for := f.Frame.code_ref
    in
    (try
       while !result == None do
         let f = !cur in
         if threaded && f.Frame.code_ref <> !steps_for then fetch_threaded f;
         (* the JIT portal *)
         let f =
           if
             jit_on
             &&
             if threaded then !headers.(f.Frame.pc)
             else L.loop_header f.Frame.code f.Frame.pc
           then begin
             match on_loop_header t f with
             | J_frame f' ->
                 cur := f';
                 t.cur <- Some f';
                 Some f'
             | J_done v ->
                 result := Some (Completed v);
                 None
           end
           else Some f
         in
         match f with
         | None -> ()
         | Some f ->
         (* one dispatch-loop iteration.  The threaded path runs the
            pre-bound step closure for this pc, which emits the exact
            charge sequence of the reference prologue + handler below
            (held by test/test_dispatch_diff.ml). *)
         let oc =
           if threaded then begin
             (* the portal may have deoptimized into a different code *)
             if f.Frame.code_ref <> !steps_for then fetch_threaded f;
             let s = !steps in
             (* run the step at this pc (it may be a loop header the
                portal just processed), then stay in the tight inner
                loop until a call, a return, or the next merge point *)
             match s.(f.Frame.pc) f with
             | Frame.Continue ->
                 if jit_on then exec_steps_jit s !headers f
                 else exec_steps s f
             | oc -> oc
           end
           else begin
             Engine.annot eng Annot.Dispatch_tick;
             Engine.emit_static eng t.charge_tab ~lo:0 ~hi:1;
             if t.profile.Profile.dispatch_indirect then
               Engine.branch_indirect eng
                 ~site:(200_000 + (f.Frame.code_ref land 1023))
                 ~target:(L.opcode_at f.Frame.code f.Frame.pc);
             D.step_ref t.dcx t.globals f
           end
         in
         match oc with
         | Frame.Continue -> ()
         | Frame.Call nf ->
             Engine.emit_static eng t.charge_tab ~lo:1 ~hi:2;
             cur := nf;
             t.cur <- Some nf
         | Frame.Return v -> (
             match f.Frame.parent with
             | Some p ->
                 Engine.emit_static eng t.charge_tab ~lo:1 ~hi:2;
                 if not f.Frame.discard_return then Frame.push p v;
                 cur := p;
                 t.cur <- Some p;
                 (* [f] left the live chain and nothing retains its
                    arrays (the executor blits entry slots, resume
                    snapshots are copies): recycle them *)
                 Frame.release ~pool:(Ctx.frame_pool t.rtc) f
             | None -> result := Some (Completed v))
       done
     with
    | Engine.Budget_exhausted -> result := Some Budget_exceeded
    | Ops_intf.Lang_error msg -> result := Some (Runtime_error msg)
    | Rarith.Type_error msg -> result := Some (Runtime_error msg)
    | Division_by_zero -> result := Some (Runtime_error "division by zero"));
    t.cur <- None;
    Option.get !result

  let run t (code : L.code) : outcome =
    run_frame t (make_dframe t code None)

  (* --- trace profiles (serving mode, DESIGN.md §3m) --- *)

  (* Everything this driver learned that a later context can reuse:
     which loop headers it compiled traces for (with the tier its
     policy converged on) and which code objects it translated to
     threaded step arrays.  Only deterministic integers cross the
     boundary; both lists are sorted so an unseeded run's profile is a
     pure function of the (program, config, budget) key. *)
  let export_profile t : Traceprofile.t =
    let sites =
      Hashtbl.fold
        (fun (code, pc) (s : site) acc ->
          match s.state with
          | `Compiled tr ->
              { Traceprofile.p_code = code; p_pc = pc;
                p_promoted = tr.Ir.tier >= 2 }
              :: acc
          | `Cold | `Blacklisted -> acc)
        t.sites []
    in
    {
      Traceprofile.hot_sites = List.sort compare sites;
      translated = List.sort_uniq compare t.translated_refs;
    }

  (* Seed this (fresh) driver from a publisher's profile: hot sites
     start one header visit short of the tracing threshold (and carry
     the publisher's promotion decision as a hint for the compile), and
     the profiled code objects are translated to threaded step arrays
     up front, off the first-dispatch path.  Translation is host-only
     work; the seeded counters change WHEN the simulated machine traces
     (earlier), never WHAT the program computes — outputs stay
     byte-identical, simulated counters legitimately differ from an
     unseeded run's. *)
  let seed_profile t (p : Traceprofile.t) =
    List.iter
      (fun (hs : Traceprofile.hot_site) ->
        let site = site_of t (hs.Traceprofile.p_code, hs.Traceprofile.p_pc) in
        match site.state with
        | `Cold when site.counter = 0 ->
            site.counter <- Tierpolicy.seed_counter t.cfg;
            site.promote_hint <- hs.Traceprofile.p_promoted;
            Jitlog.record_seeded_site t.jitlog
        | _ -> ())
      p.Traceprofile.hot_sites;
    if t.cfg.Config.threaded_interp then begin
      let eng = Ctx.engine t.rtc in
      List.iter
        (fun code_ref ->
          match L.lookup_code code_ref with
          | exception Invalid_argument _ ->
              (* a profile only lists refs from its own bundle, but a
                 stale ref must fail soft: the lazy path re-translates *)
              ()
          | code -> (
              match L.lookup_threaded code with
              | Some _ -> ()
              | None ->
                  let d =
                    {
                      Threaded.d_eng = eng;
                      d_tab = t.charge_tab;
                      d_site = 200_000 + (code_ref land 1023);
                      d_indirect = t.profile.Profile.dispatch_indirect;
                    }
                  in
                  let s = L.threaded_code t.dcx t.globals d code in
                  L.store_threaded code s;
                  Jitlog.record_interp_translation t.jitlog;
                  t.translated_refs <- code_ref :: t.translated_refs))
        p.Traceprofile.translated
    end
end
