(** Value-level semantics shared by the direct interpreter, the residual
    AOT thunks recorded in traces, and the trace executor.

    Raises {!Ops_intf.Lang_error} for language-level errors (TypeError,
    IndexError, KeyError, ZeroDivisionError analogues). *)

open Mtj_rt
open Ops_intf
module Engine = Mtj_machine.Engine

let err fmt = Printf.ksprintf (fun s -> raise (Lang_error s)) fmt

let getattr_generic_fn = Aot.register ~name:"W_TypeObject.lookup" ~src:Aot.I
let str_of_fn = Aot.register ~name:"W_Object.descr_str" ~src:Aot.I
let sort_fn = Aot.register ~name:"listsort.TimSort" ~src:Aot.L

(* --- coercions --- *)

let as_obj = function
  | Value.Obj o -> o
  | v -> err "expected heap object, got %s" (Value.type_name v)

let as_list = function
  | Value.Obj ({ payload = Value.List _; _ } as o) -> o
  | v -> err "expected list, got %s" (Value.type_name v)

let as_dict_obj = function
  | Value.Obj ({ payload = Value.Dict _; _ } as o) -> o
  | v -> err "expected dict, got %s" (Value.type_name v)

let as_set_obj = function
  | Value.Obj ({ payload = Value.Set _; _ } as o) -> o
  | v -> err "expected set, got %s" (Value.type_name v)

let as_int = function
  | Value.Int i -> i
  | Value.Bool b -> Bool.to_int b
  | v -> err "expected int, got %s" (Value.type_name v)

let as_str = function
  | Value.Str s -> s
  | v -> err "expected str, got %s" (Value.type_name v)

let as_cls = function
  | Value.Obj ({ payload = Value.Class c; _ } as o) -> (o, c)
  | v -> err "expected class, got %s" (Value.type_name v)

(* --- class / instance model --- *)

let layout_index (c : Value.cls) name =
  let n = Array.length c.Value.layout in
  let rec go i =
    if i >= n then None
    else if String.equal c.Value.layout.(i) name then Some i
    else go (i + 1)
  in
  go 0

let rec class_attr (c : Value.cls) name =
  match List.assoc_opt name c.Value.attrs with
  | Some v -> Some v
  | None -> (
      match c.Value.parent with
      | Some { Value.payload = Value.Class p; _ } -> class_attr p name
      | Some _ | None -> None)

let instance_cls (o : Value.obj) =
  match o.Value.payload with
  | Value.Instance i -> (
      match i.Value.cls.Value.payload with
      | Value.Class c -> c
      | _ -> err "corrupt instance class")
  | _ -> err "expected instance"

(* read a field slot, tolerating instances created before the layout grew *)
let field_get (i : Value.instance) idx =
  if idx < Array.length i.Value.fields then i.Value.fields.(idx) else Value.Nil

let field_set ctx (o : Value.obj) (i : Value.instance) idx v =
  if idx >= Array.length i.Value.fields then begin
    let bigger = Array.make (idx + 1) Value.Nil in
    Array.blit i.Value.fields 0 bigger 0 (Array.length i.Value.fields);
    i.Value.fields <- bigger;
    Gc_sim.grow (Ctx.gc ctx) o
  end;
  i.Value.fields.(idx) <- v;
  Gc_sim.write_barrier (Ctx.gc ctx) ~parent:o ~child:v

let getattr ctx v name =
  match v with
  | Value.Obj ({ payload = Value.Instance i; _ } as o) -> (
      let cls = instance_cls o in
      match layout_index cls name with
      | Some idx ->
          Engine.mem_access (Ctx.engine ctx) ~addr:(Gc_sim.addr o ~field:idx)
            ~write:false;
          field_get i idx
      | None -> (
          match class_attr cls name with
          | Some (Value.Obj ({ payload = Value.Func _; _ } as f)) ->
              Gc_sim.obj (Ctx.gc ctx) (Value.Method { receiver = v; func = f })
          | Some other -> other
          | None -> err "%s object has no attribute '%s'" cls.Value.cls_name name))
  | Value.Obj { payload = Value.Class c; _ } -> (
      match class_attr c name with
      | Some a -> a
      | None -> err "class %s has no attribute '%s'" c.Value.cls_name name)
  | v -> err "%s object has no attribute '%s'" (Value.type_name v) name

let setattr ctx v name x =
  match v with
  | Value.Obj ({ payload = Value.Instance i; _ } as o) -> (
      let cls = instance_cls o in
      match layout_index cls name with
      | Some idx -> field_set ctx o i idx x
      | None ->
          (* first store of this attribute on the class's layout: extend
             the shared layout (shape growth) *)
          let idx = Array.length cls.Value.layout in
          cls.Value.layout <-
            Array.append cls.Value.layout [| name |];
          field_set ctx o i idx x)
  | Value.Obj { payload = Value.Class c; _ } ->
      c.Value.attrs <- (name, x) :: List.remove_assoc name c.Value.attrs
  | v -> err "cannot set attribute on %s" (Value.type_name v)

(* --- subscripts --- *)

let norm_index len i = if i < 0 then len + i else i

let getitem ctx container key =
  match container with
  | Value.Obj ({ payload = Value.List l; _ } as o) ->
      let i = norm_index (Value.list_len l) (as_int key) in
      if i < 0 || i >= Value.list_len l then err "list index out of range";
      Rlist.get ctx o i
  | Value.Obj ({ payload = Value.Dict _; _ } as o) -> (
      let d = match o.Value.payload with Value.Dict d -> d | _ -> assert false in
      match Rdict.get ctx d key with
      | Some v -> v
      | None -> err "KeyError: %s" (Value.repr key))
  | Value.Obj { payload = Value.Tuple a; _ } ->
      let i = norm_index (Array.length a) (as_int key) in
      if i < 0 || i >= Array.length a then err "tuple index out of range";
      a.(i)
  | Value.Str s ->
      let i = norm_index (String.length s) (as_int key) in
      if i < 0 || i >= String.length s then err "string index out of range";
      Value.Str (String.make 1 s.[i])
  | v -> err "%s object is not subscriptable" (Value.type_name v)

(* [getitem] with the key's [Value.py_hash] hoisted by the caller (the
   threaded translators precompute it for string-constant keys); only
   the dict branch consumes the hash, and [py_hash] is pure host code,
   so this is simulation-identical to [getitem] (see rdict.mli) *)
let getitem_h ctx container key khash =
  match container with
  | Value.Obj { payload = Value.Dict d; _ } -> (
      match Rdict.get_h ctx d key khash with
      | Some v -> v
      | None -> err "KeyError: %s" (Value.repr key))
  | c -> getitem ctx c key

let setitem ctx container key v =
  match container with
  | Value.Obj ({ payload = Value.List l; _ } as o) ->
      let i = norm_index (Value.list_len l) (as_int key) in
      if i < 0 || i >= Value.list_len l then
        err "list assignment index out of range";
      Rlist.set ctx o i v
  | Value.Obj ({ payload = Value.Dict d; _ } as o) -> Rdict.set ctx o d key v
  | c -> err "%s object does not support item assignment" (Value.type_name c)

(* [setitem] with a hoisted key hash; dict branch only, as above *)
let setitem_h ctx container key v khash =
  match container with
  | Value.Obj ({ payload = Value.Dict d; _ } as o) ->
      Rdict.set_h ctx o d key v khash
  | c -> setitem ctx c key v

let len_of ctx v =
  ignore ctx;
  match v with
  | Value.Obj { payload = Value.List l; _ } -> Value.list_len l
  | Value.Obj { payload = Value.Dict d | Value.Set d; _ } -> d.Value.num_live
  | Value.Obj { payload = Value.Tuple a; _ } -> Array.length a
  | Value.Str s -> String.length s
  | v -> err "object of type %s has no len()" (Value.type_name v)

let contains ctx item container =
  match container with
  | Value.Obj ({ payload = Value.List _; _ } as o) -> Rlist.find ctx o item >= 0
  | Value.Obj { payload = Value.Dict d | Value.Set d; _ } ->
      Rdict.contains ctx d item
  | Value.Obj { payload = Value.Tuple a; _ } ->
      Array.exists (fun x -> Value.py_eq x item) a
  | Value.Str s -> (
      match item with
      | Value.Str sub ->
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          m = 0 || go 0
      | v -> err "'in <string>' requires string, got %s" (Value.type_name v))
  | c -> err "argument of type %s is not iterable" (Value.type_name c)

(* --- comparison / equality --- *)

let both_numbers a b = Rarith.is_number a && Rarith.is_number b

let rec compare_values ctx op a b =
  let boolean v = Value.of_bool v in
  match op with
  | Is -> boolean (identical a b)
  | Is_not -> boolean (not (identical a b))
  | In -> boolean (contains ctx a b)
  | Not_in -> boolean (not (contains ctx a b))
  | Eq -> boolean (py_equal ctx a b)
  | Ne -> boolean (not (py_equal ctx a b))
  | Lt | Le | Gt | Ge ->
      let c = order ctx a b in
      boolean
        (match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | _ -> assert false)

and identical a b =
  match (a, b) with
  | Value.Obj x, Value.Obj y -> x == y
  | Value.Nil, Value.Nil -> true
  | Value.Bool x, Value.Bool y -> x = y
  | Value.Int x, Value.Int y -> x = y
  | Value.Str x, Value.Str y -> String.equal x y
  | _ -> false

and py_equal ctx a b =
  if both_numbers a b then Rarith.compare_num ctx a b = 0 else Value.py_eq a b

and order ctx a b =
  if both_numbers a b then Rarith.compare_num ctx a b
  else
    match (a, b) with
    | Value.Str x, Value.Str y -> String.compare x y
    | ( Value.Obj { payload = Value.Tuple xs; _ },
        Value.Obj { payload = Value.Tuple ys; _ } ) ->
        let nx = Array.length xs and ny = Array.length ys in
        let rec go i =
          if i >= nx && i >= ny then 0
          else if i >= nx then -1
          else if i >= ny then 1
          else
            let c = order ctx xs.(i) ys.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0
    | ( Value.Obj ({ payload = Value.List xl; _ } as _x),
        Value.Obj ({ payload = Value.List yl; _ } as _y) ) ->
        let nx = Value.list_len xl and ny = Value.list_len yl in
        let rec go i =
          if i >= nx && i >= ny then 0
          else if i >= nx then -1
          else if i >= ny then 1
          else
            let c =
              order ctx (Value.list_get_unsafe xl i) (Value.list_get_unsafe yl i)
            in
            if c <> 0 then c else go (i + 1)
        in
        go 0
    | _ ->
        err "'<' not supported between %s and %s" (Value.type_name a)
          (Value.type_name b)

(* --- add with string/list/tuple semantics --- *)

let add ctx a b =
  match (a, b) with
  | Value.Str x, Value.Str y ->
      Engine.emit (Ctx.engine ctx)
        (Mtj_core.Cost.make
           ~alu:((String.length x + String.length y) / 4)
           ~load:((String.length x + String.length y) / 8)
           ~store:((String.length x + String.length y) / 8)
           ());
      Value.Str (x ^ y)
  | ( Value.Obj ({ payload = Value.List _; _ } as x),
      Value.Obj ({ payload = Value.List _; _ } as y) ) ->
      Value.Obj (Rlist.concat ctx x y)
  | ( Value.Obj { payload = Value.Tuple xs; _ },
      Value.Obj { payload = Value.Tuple ys; _ } ) ->
      Gc_sim.obj (Ctx.gc ctx) (Value.Tuple (Array.append xs ys))
  | _ when both_numbers a b -> Rarith.add ctx a b
  | _ ->
      err "unsupported operand type(s) for +: %s and %s" (Value.type_name a)
        (Value.type_name b)

let mul ctx a b =
  match (a, b) with
  | Value.Str s, Value.Int n | Value.Int n, Value.Str s ->
      if n <= 0 then Value.Str ""
      else begin
        let buf = Buffer.create (String.length s * n) in
        for _ = 1 to n do
          Buffer.add_string buf s
        done;
        Engine.emit (Ctx.engine ctx)
          (Mtj_core.Cost.make ~alu:(Buffer.length buf / 4)
             ~store:(Buffer.length buf / 8) ());
        Value.Str (Buffer.contents buf)
      end
  | Value.Obj ({ payload = Value.List l; _ } as o), Value.Int n
  | Value.Int n, Value.Obj ({ payload = Value.List l; _ } as o) ->
      let items = ref [] in
      for _ = 1 to n do
        for i = Value.list_len l - 1 downto 0 do
          ignore o;
          items := Value.list_get_unsafe l i :: !items
        done
      done;
      Value.Obj (Rlist.create ctx !items)
  | _ when both_numbers a b -> Rarith.mul ctx a b
  | _ ->
      err "unsupported operand type(s) for *: %s and %s" (Value.type_name a)
        (Value.type_name b)

(* --- stringification --- *)

let to_str ctx v =
  Aot.call ctx str_of_fn @@ fun () ->
  let s = Value.to_display_string v in
  Engine.emit (Ctx.engine ctx)
    (Mtj_core.Cost.make ~alu:(max 1 (String.length s / 2)) ());
  Value.Str s

(* --- unpack --- *)

let unpack _ctx v n =
  match v with
  | Value.Obj { payload = Value.Tuple a; _ } when Array.length a = n -> a
  | Value.Obj { payload = Value.List l; _ } when Value.list_len l = n ->
      Array.init n (Value.list_get_unsafe l)
  | _ -> err "cannot unpack %s into %d values" (Value.type_name v) n

(* --- iteration support (compiler lowers for-loops to index walks; dict
   iteration materializes the key list) --- *)

let keys_list ctx v =
  match v with
  | Value.Obj { payload = Value.Dict d | Value.Set d; _ } ->
      Value.Obj (Rlist.create ctx (Rdict.keys d))
  | v -> err "keys(): expected dict, got %s" (Value.type_name v)

let iterable_as_indexable ctx v =
  match v with
  | Value.Obj { payload = Value.List _ | Value.Tuple _; _ } | Value.Str _ -> v
  | Value.Obj { payload = Value.Dict _ | Value.Set _; _ } -> keys_list ctx v
  | v -> err "%s object is not iterable" (Value.type_name v)

(* --- sorting (TimSort stand-in, charged n log n) --- *)

let sorted ctx v =
  Aot.call ctx sort_fn @@ fun () ->
  let arr =
    match v with
    | Value.Obj { payload = Value.List l; _ } -> Rlist.to_array l
    | Value.Obj { payload = Value.Tuple a; _ } -> Array.copy a
    | v -> err "sorted(): expected list, got %s" (Value.type_name v)
  in
  let n = Array.length arr in
  let work = max 1 (n * (1 + int_of_float (Float.log2 (float_of_int (max 2 n))))) in
  Engine.emit (Ctx.engine ctx)
    (Mtj_core.Cost.make ~alu:(3 * work) ~load:work ~store:work ());
  Array.sort (fun a b -> order ctx a b) arr;
  Value.Obj (Rlist.create ctx (Array.to_list arr))

let _ = getattr_generic_fn
