(** Value-level semantics shared by the direct interpreter, the residual
    AOT thunks recorded in traces, and the trace executor.

    Raises {!Ops_intf.Lang_error} for language-level errors (TypeError,
    IndexError, KeyError, ZeroDivisionError analogues). *)

open Mtj_rt
open Ops_intf
module Engine = Mtj_machine.Engine

let err fmt = Printf.ksprintf (fun s -> raise (Lang_error s)) fmt

let getattr_generic_fn = Aot.register ~name:"W_TypeObject.lookup" ~src:Aot.I
let str_of_fn = Aot.register ~name:"W_Object.descr_str" ~src:Aot.I
let sort_fn = Aot.register ~name:"listsort.TimSort" ~src:Aot.L

(* --- coercions (hot: tag tests, no variant view) --- *)

let[@inline] as_obj v =
  if Value.is_obj v then Value.to_obj_unchecked v
  else err "expected heap object, got %s" (Value.type_name v)

let as_list v =
  if Value.is_obj v then begin
    let o = Value.to_obj_unchecked v in
    match o.Value.payload with
    | Value.List _ -> o
    | _ -> err "expected list, got %s" (Value.type_name v)
  end
  else err "expected list, got %s" (Value.type_name v)

let as_dict_obj v =
  if Value.is_obj v then begin
    let o = Value.to_obj_unchecked v in
    match o.Value.payload with
    | Value.Dict _ -> o
    | _ -> err "expected dict, got %s" (Value.type_name v)
  end
  else err "expected dict, got %s" (Value.type_name v)

let as_set_obj v =
  if Value.is_obj v then begin
    let o = Value.to_obj_unchecked v in
    match o.Value.payload with
    | Value.Set _ -> o
    | _ -> err "expected set, got %s" (Value.type_name v)
  end
  else err "expected set, got %s" (Value.type_name v)

let[@inline] as_int v =
  if Value.is_int v then Value.to_int_unchecked v
  else if Value.is_bool v then Bool.to_int (Value.to_bool_unchecked v)
  else err "expected int, got %s" (Value.type_name v)

let[@inline] as_str v =
  if Value.is_str v then Value.to_str_unchecked v
  else err "expected str, got %s" (Value.type_name v)

let as_cls v =
  if Value.is_obj v then
    let o = Value.to_obj_unchecked v in
    match o.Value.payload with
    | Value.Class c -> (o, c)
    | _ -> err "expected class, got %s" (Value.type_name v)
  else err "expected class, got %s" (Value.type_name v)

(* --- class / instance model --- *)

let layout_index (c : Value.cls) name =
  let n = Array.length c.Value.layout in
  let rec go i =
    if i >= n then None
    else if String.equal c.Value.layout.(i) name then Some i
    else go (i + 1)
  in
  go 0

let rec class_attr (c : Value.cls) name =
  match List.assoc_opt name c.Value.attrs with
  | Some v -> Some v
  | None -> (
      match c.Value.parent with
      | Some { Value.payload = Value.Class p; _ } -> class_attr p name
      | Some _ | None -> None)

let instance_cls (o : Value.obj) =
  match o.Value.payload with
  | Value.Instance i -> (
      match i.Value.cls.Value.payload with
      | Value.Class c -> c
      | _ -> err "corrupt instance class")
  | _ -> err "expected instance"

(* read a field slot, tolerating instances created before the layout grew *)
let field_get (i : Value.instance) idx =
  if idx < Array.length i.Value.fields then i.Value.fields.(idx) else Value.nil

let field_set ctx (o : Value.obj) (i : Value.instance) idx v =
  if idx >= Array.length i.Value.fields then begin
    let bigger = Array.make (idx + 1) Value.nil in
    Array.blit i.Value.fields 0 bigger 0 (Array.length i.Value.fields);
    i.Value.fields <- bigger;
    Gc_sim.grow (Ctx.gc ctx) o
  end;
  i.Value.fields.(idx) <- v;
  Gc_sim.write_barrier (Ctx.gc ctx) ~parent:o ~child:v

let getattr ctx v name =
  if Value.is_obj v then
    let o = Value.to_obj_unchecked v in
    match o.Value.payload with
    | Value.Instance i -> (
        let cls = instance_cls o in
        match layout_index cls name with
        | Some idx ->
            Engine.mem_access (Ctx.engine ctx) ~addr:(Gc_sim.addr o ~field:idx)
              ~write:false;
            field_get i idx
        | None -> (
            match class_attr cls name with
            | Some a -> (
                if Value.is_obj a then
                  let f = Value.to_obj_unchecked a in
                  match f.Value.payload with
                  | Value.Func _ ->
                      Gc_sim.obj (Ctx.gc ctx)
                        (Value.Method { receiver = v; func = f })
                  | _ -> a
                else a)
            | None ->
                err "%s object has no attribute '%s'" cls.Value.cls_name name))
    | Value.Class c -> (
        match class_attr c name with
        | Some a -> a
        | None -> err "class %s has no attribute '%s'" c.Value.cls_name name)
    | _ -> err "%s object has no attribute '%s'" (Value.type_name v) name
  else err "%s object has no attribute '%s'" (Value.type_name v) name

let setattr ctx v name x =
  if Value.is_obj v then
    let o = Value.to_obj_unchecked v in
    match o.Value.payload with
    | Value.Instance i -> (
        let cls = instance_cls o in
        match layout_index cls name with
        | Some idx -> field_set ctx o i idx x
        | None ->
            (* first store of this attribute on the class's layout: extend
               the shared layout (shape growth) *)
            let idx = Array.length cls.Value.layout in
            cls.Value.layout <- Array.append cls.Value.layout [| name |];
            field_set ctx o i idx x)
    | Value.Class c ->
        c.Value.attrs <- (name, x) :: List.remove_assoc name c.Value.attrs
    | _ -> err "cannot set attribute on %s" (Value.type_name v)
  else err "cannot set attribute on %s" (Value.type_name v)

(* --- subscripts --- *)

let norm_index len i = if i < 0 then len + i else i

let getitem ctx container key =
  if Value.is_obj container then begin
    let o = Value.to_obj_unchecked container in
    match o.Value.payload with
    | Value.List l ->
        let i = norm_index (Value.list_len l) (as_int key) in
        if i < 0 || i >= Value.list_len l then err "list index out of range";
        Rlist.get ctx o i
    | Value.Dict d -> (
        match Rdict.get ctx d key with
        | Some v -> v
        | None -> err "KeyError: %s" (Value.repr key))
    | Value.Tuple a ->
        let i = norm_index (Array.length a) (as_int key) in
        if i < 0 || i >= Array.length a then err "tuple index out of range";
        a.(i)
    | _ -> err "%s object is not subscriptable" (Value.type_name container)
  end
  else if Value.is_str container then begin
    let s = Value.to_str_unchecked container in
    let i = norm_index (String.length s) (as_int key) in
    if i < 0 || i >= String.length s then err "string index out of range";
    Value.of_str (String.make 1 s.[i])
  end
  else err "%s object is not subscriptable" (Value.type_name container)

(* [getitem] with the key's [Value.py_hash] hoisted by the caller (the
   threaded translators precompute it for string-constant keys); only
   the dict branch consumes the hash, and [py_hash] is pure host code,
   so this is simulation-identical to [getitem] (see rdict.mli) *)
let getitem_h ctx container key khash =
  if Value.is_obj container then begin
    match (Value.to_obj_unchecked container).Value.payload with
    | Value.Dict d -> (
        match Rdict.get_h ctx d key khash with
        | Some v -> v
        | None -> err "KeyError: %s" (Value.repr key))
    | _ -> getitem ctx container key
  end
  else getitem ctx container key

let setitem ctx container key v =
  if Value.is_obj container then begin
    let o = Value.to_obj_unchecked container in
    match o.Value.payload with
    | Value.List l ->
        let i = norm_index (Value.list_len l) (as_int key) in
        if i < 0 || i >= Value.list_len l then
          err "list assignment index out of range";
        Rlist.set ctx o i v
    | Value.Dict d -> Rdict.set ctx o d key v
    | _ ->
        err "%s object does not support item assignment"
          (Value.type_name container)
  end
  else
    err "%s object does not support item assignment"
      (Value.type_name container)

(* [setitem] with a hoisted key hash; dict branch only, as above *)
let setitem_h ctx container key v khash =
  if Value.is_obj container then begin
    let o = Value.to_obj_unchecked container in
    match o.Value.payload with
    | Value.Dict d -> Rdict.set_h ctx o d key v khash
    | _ -> setitem ctx container key v
  end
  else setitem ctx container key v

let len_of ctx v =
  ignore ctx;
  if Value.is_obj v then begin
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.List l -> Value.list_len l
    | Value.Dict d | Value.Set d -> d.Value.num_live
    | Value.Tuple a -> Array.length a
    | _ -> err "object of type %s has no len()" (Value.type_name v)
  end
  else if Value.is_str v then String.length (Value.to_str_unchecked v)
  else err "object of type %s has no len()" (Value.type_name v)

let contains ctx item container =
  if Value.is_obj container then begin
    let o = Value.to_obj_unchecked container in
    match o.Value.payload with
    | Value.List _ -> Rlist.find ctx o item >= 0
    | Value.Dict d | Value.Set d -> Rdict.contains ctx d item
    | Value.Tuple a -> Array.exists (fun x -> Value.py_eq x item) a
    | _ -> err "argument of type %s is not iterable" (Value.type_name container)
  end
  else if Value.is_str container then begin
    let s = Value.to_str_unchecked container in
    if Value.is_str item then begin
      let sub = Value.to_str_unchecked item in
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      m = 0 || go 0
    end
    else err "'in <string>' requires string, got %s" (Value.type_name item)
  end
  else err "argument of type %s is not iterable" (Value.type_name container)

(* --- comparison / equality --- *)

let both_numbers a b = Rarith.is_number a && Rarith.is_number b

let rec compare_values ctx op a b =
  let boolean v = Value.of_bool v in
  match op with
  | Is -> boolean (identical a b)
  | Is_not -> boolean (not (identical a b))
  | In -> boolean (contains ctx a b)
  | Not_in -> boolean (not (contains ctx a b))
  | Eq -> boolean (py_equal ctx a b)
  | Ne -> boolean (not (py_equal ctx a b))
  | Lt | Le | Gt | Ge ->
      let c = order ctx a b in
      boolean
        (match op with
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0
        | _ -> assert false)

and identical a b =
  if Value.is_int a then
    Value.is_int b && Value.to_int_unchecked a = Value.to_int_unchecked b
  else if Value.is_nil a then Value.is_nil b
  else if Value.is_bool a then
    (* singleton bools: identity coincides with equality *)
    a == b
  else if Value.is_str a then
    Value.is_str b
    && String.equal (Value.to_str_unchecked a) (Value.to_str_unchecked b)
  else if Value.is_obj a then
    Value.is_obj b && Value.to_obj_unchecked a == Value.to_obj_unchecked b
  else false (* floats are never `is` each other, as before *)

and py_equal ctx a b =
  if both_numbers a b then Rarith.compare_num ctx a b = 0 else Value.py_eq a b

and order ctx a b =
  if both_numbers a b then Rarith.compare_num ctx a b
  else if Value.is_str a && Value.is_str b then
    String.compare (Value.to_str_unchecked a) (Value.to_str_unchecked b)
  else
    let fail () =
      err "'<' not supported between %s and %s" (Value.type_name a)
        (Value.type_name b)
    in
    if Value.is_obj a && Value.is_obj b then
      match
        ( (Value.to_obj_unchecked a).Value.payload,
          (Value.to_obj_unchecked b).Value.payload )
      with
      | Value.Tuple xs, Value.Tuple ys ->
          let nx = Array.length xs and ny = Array.length ys in
          let rec go i =
            if i >= nx && i >= ny then 0
            else if i >= nx then -1
            else if i >= ny then 1
            else
              let c = order ctx xs.(i) ys.(i) in
              if c <> 0 then c else go (i + 1)
          in
          go 0
      | Value.List xl, Value.List yl ->
          let nx = Value.list_len xl and ny = Value.list_len yl in
          let rec go i =
            if i >= nx && i >= ny then 0
            else if i >= nx then -1
            else if i >= ny then 1
            else
              let c =
                order ctx (Value.list_get_unsafe xl i)
                  (Value.list_get_unsafe yl i)
              in
              if c <> 0 then c else go (i + 1)
          in
          go 0
      | _ -> fail ()
    else fail ()

(* --- add with string/list/tuple semantics --- *)

let add ctx a b =
  if both_numbers a b then Rarith.add ctx a b
  else if Value.is_str a && Value.is_str b then begin
    let x = Value.to_str_unchecked a and y = Value.to_str_unchecked b in
    Engine.emit (Ctx.engine ctx)
      (Mtj_core.Cost.make
         ~alu:((String.length x + String.length y) / 4)
         ~load:((String.length x + String.length y) / 8)
         ~store:((String.length x + String.length y) / 8)
         ());
    Value.of_str (x ^ y)
  end
  else
    let fail () =
      err "unsupported operand type(s) for +: %s and %s" (Value.type_name a)
        (Value.type_name b)
    in
    if Value.is_obj a && Value.is_obj b then
      let x = Value.to_obj_unchecked a and y = Value.to_obj_unchecked b in
      match (x.Value.payload, y.Value.payload) with
      | Value.List _, Value.List _ -> Value.of_obj (Rlist.concat ctx x y)
      | Value.Tuple xs, Value.Tuple ys ->
          Gc_sim.obj (Ctx.gc ctx) (Value.Tuple (Array.append xs ys))
      | _ -> fail ()
    else fail ()

let mul ctx a b =
  if both_numbers a b then Rarith.mul ctx a b
  else
    let str_rep s n =
      if n <= 0 then Value.of_str ""
      else begin
        let buf = Buffer.create (String.length s * n) in
        for _ = 1 to n do
          Buffer.add_string buf s
        done;
        Engine.emit (Ctx.engine ctx)
          (Mtj_core.Cost.make ~alu:(Buffer.length buf / 4)
             ~store:(Buffer.length buf / 8) ());
        Value.of_str (Buffer.contents buf)
      end
    in
    let list_of v =
      if Value.is_obj v then
        match (Value.to_obj_unchecked v).Value.payload with
        | Value.List l -> Some l
        | _ -> None
      else None
    in
    let list_rep l n =
      let items = ref [] in
      for _ = 1 to n do
        for i = Value.list_len l - 1 downto 0 do
          items := Value.list_get_unsafe l i :: !items
        done
      done;
      Value.of_obj (Rlist.create ctx !items)
    in
    if Value.is_str a && Value.is_int b then
      str_rep (Value.to_str_unchecked a) (Value.to_int_unchecked b)
    else if Value.is_int a && Value.is_str b then
      str_rep (Value.to_str_unchecked b) (Value.to_int_unchecked a)
    else
      match (list_of a, list_of b) with
      | Some l, _ when Value.is_int b -> list_rep l (Value.to_int_unchecked b)
      | _, Some l when Value.is_int a -> list_rep l (Value.to_int_unchecked a)
      | _ ->
          err "unsupported operand type(s) for *: %s and %s" (Value.type_name a)
            (Value.type_name b)

(* --- stringification --- *)

let to_str ctx v =
  Aot.call ctx str_of_fn @@ fun () ->
  let s = Value.to_display_string v in
  Engine.emit (Ctx.engine ctx)
    (Mtj_core.Cost.make ~alu:(max 1 (String.length s / 2)) ());
  Value.of_str s

(* --- unpack --- *)

let unpack _ctx v n =
  if Value.is_obj v then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Tuple a when Array.length a = n -> a
    | Value.List l when Value.list_len l = n ->
        Array.init n (Value.list_get_unsafe l)
    | _ -> err "cannot unpack %s into %d values" (Value.type_name v) n
  else err "cannot unpack %s into %d values" (Value.type_name v) n

(* --- iteration support (compiler lowers for-loops to index walks; dict
   iteration materializes the key list) --- *)

let keys_list ctx v =
  if Value.is_obj v then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Dict d | Value.Set d ->
        Value.of_obj (Rlist.create ctx (Rdict.keys d))
    | _ -> err "keys(): expected dict, got %s" (Value.type_name v)
  else err "keys(): expected dict, got %s" (Value.type_name v)

let iterable_as_indexable ctx v =
  if Value.is_str v then v
  else if Value.is_obj v then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.List _ | Value.Tuple _ -> v
    | Value.Dict _ | Value.Set _ -> keys_list ctx v
    | _ -> err "%s object is not iterable" (Value.type_name v)
  else err "%s object is not iterable" (Value.type_name v)

(* --- sorting (TimSort stand-in, charged n log n) --- *)

let sorted ctx v =
  Aot.call ctx sort_fn @@ fun () ->
  let arr =
    if Value.is_obj v then
      match (Value.to_obj_unchecked v).Value.payload with
      | Value.List l -> Rlist.to_array l
      | Value.Tuple a -> Array.copy a
      | _ -> err "sorted(): expected list, got %s" (Value.type_name v)
    else err "sorted(): expected list, got %s" (Value.type_name v)
  in
  let n = Array.length arr in
  let work = max 1 (n * (1 + int_of_float (Float.log2 (float_of_int (max 2 n))))) in
  Engine.emit (Ctx.engine ctx)
    (Mtj_core.Cost.make ~alu:(3 * work) ~load:work ~store:work ());
  Array.sort (fun a b -> order ctx a b) arr;
  Value.of_obj (Rlist.create ctx (Array.to_list arr))

let _ = getattr_generic_fn
