(** Interpreter frames, generic over the value representation.

    The same frame structure is used by the direct interpreter (['v] =
    {!Mtj_rt.Value.t}) and by the tracing meta-interpreter (['v] = tracked
    values carrying their IR operand).  A frame holds the code object, the
    program counter, the locals and the evaluation stack; frames link to
    their caller. *)

type ('v, 'code) t = {
  code : 'code;
  code_ref : int;
  mutable pc : int;
  locals : 'v array;
  stack : 'v array;
  mutable sp : int;
  mutable parent : ('v, 'code) t option;
  mutable discard_return : bool;
      (** constructor ([__init__]) frames: the caller already holds the
          instance; the return value is dropped *)
}

let create ~code ~code_ref ~nlocals ~stack_size ~default ~parent =
  {
    code;
    code_ref;
    pc = 0;
    locals = Array.make (max 1 nlocals) default;
    stack = Array.make (max 1 stack_size) default;
    sp = 0;
    parent;
    discard_return = false;
  }

let push t v =
  t.stack.(t.sp) <- v;
  t.sp <- t.sp + 1

let pop t =
  t.sp <- t.sp - 1;
  t.stack.(t.sp)

let peek t n = t.stack.(t.sp - 1 - n)

let set_top t v = t.stack.(t.sp - 1) <- v

let depth t =
  let rec go n = function None -> n | Some p -> go (n + 1) p.parent in
  go 0 t.parent

(** What one bytecode step did to control flow. *)
type ('v, 'code) outcome =
  | Continue                     (** stay in this frame *)
  | Call of ('v, 'code) t        (** push and enter the given frame *)
  | Return of 'v                 (** pop this frame with the result *)
