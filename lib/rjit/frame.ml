(** Interpreter frames, generic over the value representation.

    The same frame structure is used by the direct interpreter (['v] =
    {!Mtj_rt.Value.t}) and by the tracing meta-interpreter (['v] = tracked
    values carrying their IR operand).  A frame holds the code object, the
    program counter, the locals and the evaluation stack; frames link to
    their caller. *)

type ('v, 'code) t = {
  code : 'code;
  code_ref : int;
  mutable pc : int;
  locals : 'v array;
  stack : 'v array;
  mutable sp : int;
  mutable parent : ('v, 'code) t option;
  mutable discard_return : bool;
      (** constructor ([__init__]) frames: the caller already holds the
          instance; the return value is dropped *)
}

let create ~code ~code_ref ~nlocals ~stack_size ~default ~parent =
  {
    code;
    code_ref;
    pc = 0;
    locals = Array.make (max 1 nlocals) default;
    stack = Array.make (max 1 stack_size) default;
    sp = 0;
    parent;
    discard_return = false;
  }

(* [create] with the locals/stack arrays drawn from [pool].  The pool
   hands back arrays refilled with its default element, so a pooled
   frame is indistinguishable from a fresh one; with the pool disabled
   this IS [create]. *)
let create_pooled ~pool ~code ~code_ref ~nlocals ~stack_size ~parent =
  {
    code;
    code_ref;
    pc = 0;
    locals = Mtj_rt.Apool.acquire pool (max 1 nlocals);
    stack = Mtj_rt.Apool.acquire pool (max 1 stack_size);
    sp = 0;
    parent;
    discard_return = false;
  }

(* Return a dead frame's arrays to [pool].  Caller contract: the frame
   is unreachable from any live frame chain and its arrays were not
   handed to anything that outlives it (e.g. a compiled trace's entry
   slots). *)
let release ~pool t =
  Mtj_rt.Apool.release pool t.locals;
  Mtj_rt.Apool.release pool t.stack

let push t v =
  t.stack.(t.sp) <- v;
  t.sp <- t.sp + 1

let pop t =
  t.sp <- t.sp - 1;
  t.stack.(t.sp)

let peek t n = t.stack.(t.sp - 1 - n)

let set_top t v = t.stack.(t.sp - 1) <- v

let depth t =
  let rec go n = function None -> n | Some p -> go (n + 1) p.parent in
  go 0 t.parent

(** What one bytecode step did to control flow. *)
type ('v, 'code) outcome =
  | Continue                     (** stay in this frame *)
  | Call of ('v, 'code) t        (** push and enter the given frame *)
  | Return of 'v                 (** pop this frame with the result *)
