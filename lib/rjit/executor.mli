(** Trace executor: runs compiled trace code against the machine model.

    Executes the trace's operations on concrete values while charging
    each node's pre-lowered cost, evaluating guards, following attached
    bridges on guard failure, and switching into other compiled traces
    at [call_assembler] back-edges. On a guard failure with no bridge it
    deoptimizes: the blackhole interpreter (Phase [Blackhole], Table IV's
    worst-IPC phase) rebuilds interpreter frames from the guard's resume
    data, materializing any virtualized allocations.

    {!run} executes closure-threaded code: the op array is translated
    once ({!precompile}) into pre-bound step closures, cached in the
    context's code cache keyed by trace id, and invalidated when a
    bridge attachment bumps the trace's [code_version].  {!run_ref} is
    the reference interpreting loop with identical semantics and
    identical simulated-machine charging (the differential tests hold
    the two to byte-identical counters). *)

type deopt_frame = {
  df_code : int;             (** interpreter code_ref *)
  df_pc : int;               (** bytecode pc to re-execute from *)
  df_locals : Mtj_rt.Value.t array;
  df_stack : Mtj_rt.Value.t array;
  df_discard : bool;         (** the frame's return value is discarded *)
}

type exit_state = {
  frames : deopt_frame list;  (** outermost first; empty on [finished] *)
  failed_guard : Ir.guard option;
  failed_in : Ir.trace option;
      (** the trace the failing guard belongs to (execution may have
          switched traces since entry); the driver invalidates its
          cached threaded code when attaching a bridge to the guard *)
  request_bridge : bool;
      (** the failed guard is hot enough to deserve a bridge *)
  finished : Mtj_rt.Value.t option;
      (** a trace ended with [finish]: the traced region returned this
          value to its caller *)
}

val materialize_frames :
  Mtj_rt.Ctx.t -> Ir.resume -> Mtj_rt.Value.t array -> deopt_frame list
(** Rebuild interpreter frames from resume data and the current register
    file, allocating any virtual objects described by the resume's
    descriptors (shared descriptors materialize once, cycles are fine). *)

val guard_holds : Ir.guard -> Mtj_rt.Value.t array -> bool
(** Evaluate a guard's condition against its argument values. *)

val blackhole :
  Mtj_rt.Ctx.t ->
  Ir.resume ->
  Mtj_rt.Value.t array ->
  guard_id:int ->
  deopt_frame list
(** {!materialize_frames} wrapped in the blackhole phase with the
    deoptimization cost model (resume-chain walking, poor prediction). *)

val precompile : Mtj_rt.Ctx.t -> Jitlog.t -> Ir.trace -> unit
(** Translate [trace] into closure-threaded code and install it in the
    context's code cache (the backend calls this at compile time, so the
    first entry is already a cache hit).  Host-side work only: charges
    nothing to the simulated machine. *)

val run :
  Mtj_rt.Ctx.t ->
  Jitlog.t ->
  trace:Ir.trace ->
  entry:Mtj_rt.Value.t array ->
  exit_state
(** Execute a compiled trace from its entry, with [entry] filling the
    first [trace.entry_slots] registers. Returns how JIT code was left:
    a finished region, or frames to continue from in the interpreter
    (with [request_bridge] set when the failing guard crossed the bridge
    threshold). The register file is a GC root for the duration.  Runs
    the closure-threaded form out of the context's code cache,
    re-translating when the trace's [code_version] moved. *)

val run_ref :
  Mtj_rt.Ctx.t ->
  Jitlog.t ->
  trace:Ir.trace ->
  entry:Mtj_rt.Value.t array ->
  exit_state
(** Reference executor: interprets the trace IR directly (re-matching
    opcodes and re-decoding operands each iteration).  Semantically
    identical to {!run}, including every charge to the simulated
    machine; kept as the oracle for the differential tests. *)
