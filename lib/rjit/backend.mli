(** Trace "assembler": lowers optimized IR into executable, costed trace
    code.

    Each IR node is assigned its x86 footprint (Figure 9's templates from
    {!Ir.x86_template}); assembling charges machine work proportional to
    the trace length, with a superlinear term reflecting the compiler
    passes the paper notes scale super-linearly with trace size
    (Sec. V-E). *)

val compile :
  Jitlog.t ->
  Mtj_rt.Ctx.t ->
  kind:Ir.trace_kind ->
  entry_slots:int ->
  ?loop_base:int ->
  ?loop_start:int ->
  ?tier:int ->
  ?promote_at:int ->
  Ir.op array ->
  Ir.trace
(** Lower [ops] into a registered {!Ir.trace}, charging the assembling
    cost to the current machine phase (the driver wraps compiles in the
    tracing phase). [loop_base]/[loop_start] come from the peeler via
    {!Opt.optimize}. [tier] defaults to [2] (fully optimized); a [tier:1]
    compile (baseline tier) charges ~30% of the cost and no superlinear
    term, since the optimizer pipeline was skipped. [promote_at]
    (default {!Tierpolicy.never}) is the exec count at which the
    executor exits to the portal for a tier-up decision. *)
