(** The threaded-dispatch interpreter tier.

    PR 3 proved the translate-once closure pattern on traces
    ({!Executor}): compile each code object {e once} into an array of
    pre-bound step closures and dispatch by indexed call instead of
    decode-and-match (Izawa & Masuhara, "Threaded Code Generation with a
    Meta-Tracing JIT Compiler", 2021).  This module is the seam that
    extends the same pattern down to the interpreters themselves: the
    hosted language translates [Bytecode]/[Kbytecode] code objects into
    [step] arrays over {!Direct_ops}, and {!Driver.Make} runs them in
    place of the reference [Step(Direct_ops)] match loop.

    The contract is strict: a threaded step must emit {e exactly} the
    charge sequence of one reference dispatch-loop iteration — the
    [Dispatch_tick] annotation, the dispatch cost bundle, the indirect
    dispatch branch, then the handler's own operations, in that order —
    so simulated counters stay byte-identical between the two loops
    (held by test/test_dispatch_diff.ml).  Only host-side work may
    differ: operand decode, constant-pool loads, [Builtin.of_tag] and
    jump-target resolution all happen at translate time, and the hottest
    bytecode pairs are fused into superinstructions whose interior
    stack traffic is elided (safe because pushes and pops charge
    nothing, and fused operands stay GC-reachable through the locals). *)

open Mtj_core
module Engine = Mtj_machine.Engine

type ('v, 'code) step = ('v, 'code) Frame.t -> ('v, 'code) Frame.outcome
(** one pre-bound bytecode: runs the full dispatch-iteration charge
    sequence and the handler, then advances [Frame.pc] itself *)

type dispatch = {
  d_eng : Engine.t;
  d_tab : Cost.t array;
      (* the driver's preinterned dispatch-loop cost table; slot 0 is the
         per-bytecode dispatch bundle (slot 1, frame setup/teardown, is
         charged by the driver on Call/Return, never by a step) *)
  d_site : int;   (* indirect-dispatch predictor site of this code object *)
  d_indirect : bool;  (* Profile.dispatch_indirect, resolved once *)
}
(** per-code dispatch-charging context, bound into every step closure at
    translate time so the hot path re-checks nothing per bytecode *)

(* Must mirror the reference loop's per-iteration prologue in
   Driver.Make.run_frame byte for byte: annotation, dispatch bundle via
   the emit_static fast path, then the predictor's indirect branch. *)
let[@inline] charge d ~target =
  Engine.annot d.d_eng Annot.Dispatch_tick;
  Engine.emit_static d.d_eng d.d_tab ~lo:0 ~hi:1;
  if d.d_indirect then Engine.branch_indirect d.d_eng ~site:d.d_site ~target

(* The same prologue, specialized at translate time: the dispatch record
   is torn apart once per code translation, so each emitted step pays a
   single closure call with no field loads and no [d_indirect] test.
   Translators bind this as their [charge]. *)
let charger d =
  let eng = d.d_eng and tab = d.d_tab in
  if d.d_indirect then
    let site = d.d_site in
    fun ~target ->
      Engine.annot eng Annot.Dispatch_tick;
      Engine.emit_static eng tab ~lo:0 ~hi:1;
      Engine.branch_indirect eng ~site ~target
  else
    fun ~target:_ ->
      Engine.annot eng Annot.Dispatch_tick;
      Engine.emit_static eng tab ~lo:0 ~hi:1

(** What a hosted language provides to drive the threaded tier, on top
    of the base meta-tracing seam.  The translation cache lives in the
    language's code table (keyed by code id, cleared with it) so a
    fresh VM never sees stale step arrays. *)
module type LANG = sig
  include Ops_intf.LANG

  val headers : code -> bool array
  (** the loop-header bitmap, exposed directly so the threaded loop can
      test merge points without an indirect call per bytecode *)

  val threaded_code :
    Direct_ops.cx ->
    Globals.t ->
    dispatch ->
    code ->
    (Direct_ops.t, code) step array
  (** translate [code] once into its pre-bound step array; raises
      [Invalid_argument] if an instruction names a [code_ref] that the
      code table cannot resolve (stale tables fail at translation, not
      mid-run) *)

  val lookup_threaded : code -> (Direct_ops.t, code) step array option
  val store_threaded : code -> (Direct_ops.t, code) step array -> unit
end
