(** Context-free trace profiles: per-code-object loop-header hotness,
    tier decisions and threaded-translation selections, published to
    {!Sharedcache} alongside a compiled bundle and used to seed a warm
    importer's JIT driver (DESIGN.md §3m).

    A profile carries only deterministic integers (code_refs, pcs) and
    booleans — no values, closures or engine state — so it is
    domain-safe exactly like the bundle it accompanies.  Both lists are
    sorted: every unseeded run of the same (program, config, budget)
    exports a byte-identical profile, which is what makes
    first-writer-wins attachment sound. *)

type hot_site = {
  p_code : int;  (** code_ref of the loop's code object *)
  p_pc : int;  (** loop-header pc *)
  p_promoted : bool;
      (** the publisher's live trace for this site reached tier 2 *)
}

type t = {
  hot_sites : hot_site list;  (** sorted by (code_ref, pc) *)
  translated : int list;  (** code_refs with threaded step arrays, sorted *)
}

val empty : t
val is_empty : t -> bool

val size : t -> int
(** Total number of facts carried (hot sites + translated refs). *)
