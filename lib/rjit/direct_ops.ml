(** The direct-execution OPS instance: plain interpretation.

    Every operation performs its semantics and charges the machine the
    interpreter's cost for it (boxing, type dispatch, reference-count or
    shape bookkeeping), scaled by the running VM's {!Mtj_core.Profile} —
    this is what makes CPython-style and RPython-translated interpreters
    differ by ~2x at identical semantics (Table I). *)

open Mtj_rt
open Mtj_core
module Engine = Mtj_machine.Engine

(* base handler costs (pre-scaling) for classes of operations *)
let c_arith = Cost.make ~alu:6 ~load:4 ~store:2 ~other:3 ()
let c_cmp = Cost.make ~alu:5 ~load:3 ~other:2 ()
let c_attr = Cost.make ~alu:12 ~load:10 ~store:2 ~other:7 ()
let c_item = Cost.make ~alu:8 ~load:6 ~other:4 ()
let c_build = Cost.make ~alu:5 ~load:2 ~store:4 ~other:3 ()
let c_truth = Cost.make ~alu:3 ~load:2 ()
let c_global = Cost.make ~alu:4 ~load:4 ~other:2 ()

(* The profile-scaled versions of the class costs, interned once per VM
   in [make_cx] ([Cost.scale] is deterministic, so the interned record
   equals what per-call scaling used to produce).  The hot handlers
   charge these through the cached engine handle with no per-dispatch
   allocation or float work. *)
type cx = {
  rtc : Ctx.t;
  profile : Profile.t;
  eng : Engine.t;
  k_arith : Cost.t;
  k_cmp : Cost.t;
  k_attr : Cost.t;
  k_item : Cost.t;
  k_build : Cost.t;
  k_truth : Cost.t;
  k_global : Cost.t;
}

let make_cx rtc profile =
  let k =
    Cost.scale_all profile.Profile.op_scale
      [| c_arith; c_cmp; c_attr; c_item; c_build; c_truth; c_global |]
  in
  {
    rtc;
    profile;
    eng = Ctx.engine rtc;
    k_arith = k.(0);
    k_cmp = k.(1);
    k_attr = k.(2);
    k_item = k.(3);
    k_build = k.(4);
    k_truth = k.(5);
    k_global = k.(6);
  }

type t = Value.t

let rt cx = cx.rtc
let const _cx v = v
let concrete v = v
let frame_pool cx = Ctx.frame_pool cx.rtc
let[@inline] charge cx (c : Cost.t) = Engine.emit cx.eng c
let branch cx ~site ~taken = Engine.branch cx.eng ~site ~taken

let is_true cx v =
  charge cx cx.k_truth;
  let b = Value.truthy v in
  branch cx ~site:100_001 ~taken:b;
  b

let guard_int cx v =
  charge cx cx.k_truth;
  Semantics.as_int v

let guard_func cx v =
  charge cx cx.k_truth;
  if Value.is_obj v then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Func f -> f
    | _ -> Semantics.err "%s object is not callable" (Value.type_name v)
  else Semantics.err "%s object is not callable" (Value.type_name v)

let method_parts cx v =
  charge cx cx.k_truth;
  if Value.is_obj v then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Method m -> Some (Value.of_obj m.func, m.receiver)
    | _ -> None
  else None

let func_captured cx v i =
  charge cx cx.k_truth;
  if Value.is_obj v then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Func fn when i < Array.length fn.Value.captured ->
        fn.Value.captured.(i)
    | _ -> Semantics.err "bad closure environment access"
  else Semantics.err "bad closure environment access"

let make_closure cx ~code_ref ~arity ~fname captured =
  charge cx cx.k_build;
  Gc_sim.obj (Ctx.gc cx.rtc)
    (Value.Func
       { func_id = code_ref; func_name = fname; arity; code_ref; captured })

let arith f cx a b =
  charge cx cx.k_arith;
  branch cx ~site:100_002 ~taken:(Value.is_int a);
  f cx.rtc a b

let add = arith Semantics.add
let mul = arith Semantics.mul
let sub = arith Rarith.sub
let floordiv = arith Rarith.floordiv
let truediv = arith Rarith.truediv

let modulo cx a b =
  charge cx cx.k_arith;
  if Value.is_str a then
    Semantics.err "string %% formatting is not supported"
  else Rarith.modulo cx.rtc a b

let pow = arith Rarith.pow
let lshift cx a b = charge cx cx.k_arith; Rarith.lshift cx.rtc a (Semantics.as_int b)
let rshift cx a b = charge cx cx.k_arith; Rarith.rshift cx.rtc a (Semantics.as_int b)

let int2 f cx a b =
  charge cx cx.k_arith;
  Ctx.of_int cx.rtc (f (Semantics.as_int a) (Semantics.as_int b))

let bitand = int2 ( land )
let bitor = int2 ( lor )
let bitxor = int2 ( lxor )

let neg cx a =
  charge cx cx.k_arith;
  Rarith.neg cx.rtc a

let compare cx op a b =
  charge cx cx.k_cmp;
  (* immediate-immediate fast path: for-loop exit tests and other hot
     int comparisons skip the generic dispatch in [compare_values].
     [Rarith.compare_num] ticks the imm counter exactly as the generic
     path would, and the result is a singleton bool, so charges,
     branches and host counters are indistinguishable from the slow
     path — only host-side dispatch work is saved. *)
  let r =
    match op with
    | (Ops_intf.Lt | Ops_intf.Le | Ops_intf.Gt | Ops_intf.Ge | Ops_intf.Eq
      | Ops_intf.Ne)
      when Value.is_int a && Value.is_int b ->
        let c = Rarith.compare_num cx.rtc a b in
        Value.of_bool
          (match op with
          | Ops_intf.Lt -> c < 0
          | Ops_intf.Le -> c <= 0
          | Ops_intf.Gt -> c > 0
          | Ops_intf.Ge -> c >= 0
          | Ops_intf.Eq -> c = 0
          | _ -> c <> 0)
    | _ -> Semantics.compare_values cx.rtc op a b
  in
  branch cx ~site:100_003 ~taken:(Value.truthy r);
  r

let not_ cx a =
  charge cx cx.k_truth;
  Value.of_bool (not (Value.truthy a))

let getattr cx v name =
  charge cx cx.k_attr;
  Semantics.getattr cx.rtc v name

let setattr cx v name x =
  charge cx cx.k_attr;
  Semantics.setattr cx.rtc v name x

let builtin_value cx b = Builtins_impl.builtin_value cx.rtc b

let builtin_method name : Builtin.t option =
  match name with
  | "append" -> Some Builtin.Append
  | "pop" -> Some Builtin.Pop
  | "insert" -> Some Builtin.Insert
  | "extend" -> Some Builtin.Extend
  | "index" -> Some Builtin.Index
  | "keys" -> Some Builtin.Keys
  | "values" -> Some Builtin.Values
  | "items" -> Some Builtin.Items
  | "get" -> Some Builtin.Dict_get
  | "has_key" -> Some Builtin.Has_key
  | "join" -> Some Builtin.Join
  | "split" -> Some Builtin.Split
  | "replace" -> Some Builtin.Replace
  | "find" -> Some Builtin.Find
  | "strip" -> Some Builtin.Strip
  | "upper" -> Some Builtin.Upper
  | "lower" -> Some Builtin.Lower
  | "startswith" -> Some Builtin.Startswith
  | "add" -> Some Builtin.Set_add
  | "remove" -> Some Builtin.Set_remove
  | "issubset" -> Some Builtin.Issubset
  | "difference" -> Some Builtin.Difference
  | "union" -> Some Builtin.Union
  | "intersection" -> Some Builtin.Intersection
  | "translate" -> Some Builtin.Translate
  | "write" -> Some Builtin.Sio_write
  | "getvalue" -> Some Builtin.Sio_getvalue
  | "sort" -> None
  | _ -> None

let is_func_value f =
  Value.is_obj f
  &&
  match (Value.to_obj_unchecked f).Value.payload with
  | Value.Func _ -> true
  | _ -> false

let load_method cx v name =
  charge cx cx.k_attr;
  let fallback () =
    match builtin_method name with
    | Some b -> (builtin_value cx b, v)
    | None ->
        Semantics.err "%s object has no method '%s'" (Value.type_name v) name
  in
  if Value.is_obj v then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Class c -> (
        (* unbound access: Task.__init__(self, ...), math.sqrt(x) *)
        match Semantics.class_attr c name with
        | Some a -> (a, Value.nil)
        | None ->
            Semantics.err "class %s has no attribute '%s'" c.Value.cls_name
              name)
    | Value.Instance _ -> (
        let cls = Semantics.instance_cls (Semantics.as_obj v) in
        match Semantics.class_attr cls name with
        | Some f when is_func_value f -> (f, v)
        | Some other -> (other, Value.nil)
        | None ->
            (* fall back to attribute slots holding callables *)
            (Semantics.getattr cx.rtc v name, Value.nil))
    | _ -> fallback ()
  else fallback ()

let getitem cx c k =
  charge cx cx.k_item;
  Semantics.getitem cx.rtc c k

let setitem cx c k v =
  charge cx cx.k_item;
  Semantics.setitem cx.rtc c k v

(* subscript with the key's hash hoisted at translate time (string
   constants); charges exactly as [getitem]/[setitem] *)
let getitem_h cx c k khash =
  charge cx cx.k_item;
  Semantics.getitem_h cx.rtc c k khash

let setitem_h cx c k v khash =
  charge cx cx.k_item;
  Semantics.setitem_h cx.rtc c k v khash

let len_ cx v =
  charge cx cx.k_truth;
  Ctx.of_int cx.rtc (Semantics.len_of cx.rtc v)

let unpack cx v n =
  charge cx cx.k_item;
  Semantics.unpack cx.rtc v n

let make_list cx items =
  charge cx cx.k_build;
  Value.of_obj (Rlist.create cx.rtc (Array.to_list items))

let make_tuple cx items =
  charge cx cx.k_build;
  Gc_sim.obj (Ctx.gc cx.rtc) (Value.Tuple items)

let make_dict cx pairs =
  charge cx cx.k_build;
  let d = Rdict.create cx.rtc in
  let o = Gc_sim.alloc (Ctx.gc cx.rtc) (Value.Dict d) in
  Array.iter (fun (k, v) -> Rdict.set cx.rtc o d k v) pairs;
  Value.of_obj o

let make_set cx items =
  charge cx cx.k_build;
  Value.of_obj (Rset.create cx.rtc (Array.to_list items))

let make_cell cx v =
  charge cx cx.k_build;
  Gc_sim.obj (Ctx.gc cx.rtc) (Value.Cell { cell = v })

let cell_get cx v =
  charge cx cx.k_truth;
  if Value.is_obj v then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Cell c -> c.cell
    | _ -> Semantics.err "expected cell"
  else Semantics.err "expected cell"

let cell_set cx v x =
  charge cx cx.k_truth;
  if Value.is_obj v then
    let o = Value.to_obj_unchecked v in
    match o.Value.payload with
    | Value.Cell c ->
        c.cell <- x;
        Gc_sim.write_barrier (Ctx.gc cx.rtc) ~parent:o ~child:x
    | _ -> Semantics.err "expected cell"
  else Semantics.err "expected cell"

let alloc_instance cx clsv =
  charge cx cx.k_build;
  let cls_obj, cls = Semantics.as_cls clsv in
  Gc_sim.obj (Ctx.gc cx.rtc)
    (Value.Instance
       {
         cls = cls_obj;
         fields = Array.make (Array.length cls.Value.layout) Value.nil;
       })

let class_init_func cx clsv =
  charge cx cx.k_attr;
  let _, cls = Semantics.as_cls clsv in
  match Semantics.class_attr cls "__init__" with
  | Some f when Value.is_obj f -> (
      match (Value.to_obj_unchecked f).Value.payload with
      | Value.Func f -> Some f
      | _ -> None)
  | Some _ | None -> None

let load_global cx globals name =
  charge cx cx.k_global;
  match Globals.get globals name with
  | Some v -> v
  | None -> Semantics.err "name '%s' is not defined" name

let store_global cx globals name v =
  charge cx cx.k_global;
  Globals.set globals name v

let call_builtin cx b args =
  charge cx cx.k_item;
  Builtins_impl.run cx.rtc b args

