(** Context-free trace profiles: the hotness a publishing context
    learned about a program, in a form a later context can import.

    A profile names program locations by the same deterministic
    integers a bundle carries — code_refs (per-VM code ids restart at
    zero, so an importer that loaded the same bundle resolves the same
    refs) and bytecode pcs.  It holds no values, closures, traces or
    engine state, so it may cross domains exactly like the bundle it
    accompanies in {!Sharedcache}.

    Contents:

    - {b hot sites}: the loop headers the publisher compiled a trace
      for, with the tier decision the publisher's policy converged on
      (promoted = the site's live trace reached the optimizing tier).
      An importer seeds its hotness counters from these so the same
      loops tier up on (or near) first entry instead of re-counting to
      the threshold ({!Tierpolicy.seed_counter}).
    - {b translated code}: the code objects the publisher translated
      into threaded-dispatch step arrays.  Step closures themselves
      never cross contexts (they bind the translating VM's engine); the
      importer re-translates {e its own} closures for the listed refs
      up front, off the first-dispatch path.

    Both lists are sorted, so a profile is a deterministic function of
    the (program, config, budget) triple — every unseeded run of the
    same key exports byte-identical profiles, which is what lets
    {!Sharedcache.attach_profile} be first-writer-wins. *)

type hot_site = {
  p_code : int;  (** code_ref of the loop's code object *)
  p_pc : int;  (** loop-header pc *)
  p_promoted : bool;
      (** the publisher's live trace for this site reached tier 2 *)
}

type t = {
  hot_sites : hot_site list;  (** sorted by (code_ref, pc) *)
  translated : int list;  (** code_refs with threaded step arrays, sorted *)
}

let empty = { hot_sites = []; translated = [] }
let is_empty p = p.hot_sites = [] && p.translated = []

(** total number of facts carried (sites + translated refs) *)
let size p = List.length p.hot_sites + List.length p.translated
