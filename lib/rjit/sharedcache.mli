(** Shared, domain-safe cache of context-free compiled artifacts: the
    cross-context tier behind the multi-tenant serving harness.

    Sharded-lock hash map, first-writer-wins publication, process-wide
    hit/miss/publication/invalidation/contention counters with hits
    split by publisher context (same-context vs cross-context).  Only
    immutable, context-free artifacts may be published — see DESIGN.md
    §3k for the protocol and the domain-safety argument. *)

type entry = ..
(** Extensible payload type; language layers add their bundle
    constructors (e.g. a compiled-program bundle of immutable bytecode
    objects). *)

type t

type stats = {
  shared_hits : int;   (** hits on entries published by another context *)
  local_hits : int;    (** hits on entries the looking-up context published *)
  misses : int;
  publications : int;  (** first-writer-wins successes *)
  invalidations : int;
  contention : int;    (** shard locks found held (try_lock failed) *)
}

val create : ?shards:int -> unit -> t
(** Fresh cache with [shards] lock shards (rounded up to a power of
    two; default 16). *)

val global : t
(** The process-wide instance the serving harness publishes into. *)

val key : lang:string -> program:string -> config_digest:string -> string
(** The publication key: artifacts are valid only for the exact
    (language, program, configuration) triple that produced them. *)

val find : t -> ctx_uid:int -> string -> entry option
(** Look up a key.  Counts a shared or local hit depending on whether
    [ctx_uid] is the publisher, or a miss. *)

val publish : t -> ctx_uid:int -> string -> entry -> bool
(** Bind a key to an artifact unless it is already bound (first writer
    wins; returns whether this call published).  Concurrent cold
    requests may race here — exactly one wins, and every later reader
    sees that artifact. *)

val invalidate : t -> string -> unit
(** Drop a key (counted in {!stats}); no-op when absent. *)

val clear : t -> unit
(** Drop every entry (statistics keep counting; see {!reset_stats}). *)

val size : t -> int

val stats : unit -> stats
(** Snapshot of the process-wide counters. *)

val reset_stats : unit -> unit
