(** Shared, domain-safe cache of context-free compiled artifacts: the
    cross-context tier behind the multi-tenant serving harness.

    Sharded-lock hash map, first-writer-wins publication (of bundles
    and of the {!Traceprofile.t} a publisher attaches after its run),
    optional per-shard LRU eviction against a global capacity, and
    per-tenant publication quotas.  Statistics are per-shard fields
    mutated under the shard lock and summed lock-by-lock at read time,
    so {!stats} snapshots are never torn by concurrent publishes.  Only
    immutable, context-free artifacts may be published — see DESIGN.md
    §3k for the protocol and the domain-safety argument, §3m for
    profile seeding and eviction. *)

type entry = ..
(** Extensible payload type; language layers add their bundle
    constructors (e.g. a compiled-program bundle of immutable bytecode
    objects). *)

type t

type stats = {
  shared_hits : int;   (** hits on entries published by another context *)
  local_hits : int;    (** hits on entries the looking-up context published *)
  misses : int;
  publications : int;  (** first-writer-wins successes *)
  invalidations : int;
  evictions : int;     (** LRU victims of over-capacity publications *)
  requeues : int;      (** publications of previously evicted keys *)
  quota_rejections : int;
      (** publications refused because the tenant was at its quota *)
  profile_publications : int;  (** trace profiles attached to entries *)
  seeded_imports : int;
      (** {!find_with_profile} hits that also returned a profile *)
  contention : int;    (** shard locks found held (try_lock failed) *)
}

type pub_result =
  | Published       (** this call bound the key *)
  | Exists          (** the key was already bound (first writer won) *)
  | Quota_rejected  (** the tenant is at its live-entry quota *)

val create : ?shards:int -> ?capacity:int -> ?tenant_quota:int -> unit -> t
(** Fresh cache with [shards] lock shards (rounded up to a power of
    two; default 16).  [capacity] bounds the total entry count
    (0 = unbounded, the default): it is distributed over the shards and
    each shard LRU-evicts within its slice, so the global size never
    exceeds [capacity]; when [capacity] is smaller than the shard
    count, the shard count is lowered so every shard holds at least one
    entry.  [tenant_quota] bounds the live entries any one tenant may
    hold (0 = unbounded).  Raises [Invalid_argument] on negative
    [capacity] or [tenant_quota]. *)

val global : t
(** The process-wide instance (unbounded).  The serving harness builds
    a per-session cache instead, so capacity and quota are session
    parameters. *)

val capacity : t -> int
val tenant_quota : t -> int

val key : lang:string -> program:string -> config_digest:string -> string
(** The publication key: artifacts are valid only for the exact
    (language, program, configuration) triple that produced them. *)

val find : t -> ctx_uid:int -> string -> entry option
(** Look up a key.  Counts a shared or local hit depending on whether
    [ctx_uid] is the publisher, or a miss; a hit refreshes the entry's
    LRU position. *)

val find_with_profile :
  t -> ctx_uid:int -> string -> (entry * Traceprofile.t option) option
(** Like {!find}, but also return the attached trace profile (if any);
    a hit that carries a profile is counted as a seeded import. *)

val publish : t -> ctx_uid:int -> ?tenant:string -> string -> entry -> pub_result
(** Bind a key to an artifact unless it is already bound (first writer
    wins).  Concurrent cold requests may race here — exactly one wins,
    and every later reader sees that artifact.  On a bounded cache a
    publication into a full shard first evicts the shard's
    least-recently-used entry; re-publication of a previously evicted
    key additionally counts a requeue.  With a [tenant] and a nonzero
    quota, a tenant at its live-entry quota gets [Quota_rejected]. *)

val attach_profile : t -> string -> Traceprofile.t -> bool
(** Attach a trace profile to a published entry (first writer wins;
    returns whether this call attached).  No-op when the key is absent
    or already profiled; empty profiles are never attached.  Only
    {e unseeded} runs may export the profile they attach — their
    execution is a deterministic function of the key, so every
    candidate profile is byte-identical and the race is benign. *)

val invalidate : t -> string -> unit
(** Drop a key (counted in {!stats}); no-op when absent.  Releases the
    publishing tenant's quota slot. *)

val clear : t -> unit
(** Drop every entry, eviction memory and tenant count (statistics keep
    counting; see {!reset_stats}). *)

val size : t -> int

val recency : t -> string list list
(** Per-shard keys ordered most-recently-used first, in shard-index
    order — test introspection for the LRU fixture. *)

val stats : t -> stats
(** Consistent snapshot of the counters (summed shard by shard under
    each shard's lock). *)

val reset_stats : t -> unit
