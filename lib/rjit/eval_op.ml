(** Pure evaluation of side-effect-free IR opcodes over concrete values.

    Shared by the optimizer (constant folding) and the trace executor.
    Raises [Not_pure] for opcodes that touch the heap, call out, or
    control the trace; raises language errors ({!Ops_intf.Lang_error},
    [Division_by_zero]) exactly where the interpreter would. *)

open Mtj_rt

exception Not_pure
exception Overflow

let[@inline] as_int v =
  if Value.is_int v then Value.to_int_unchecked v
  else if Value.is_bool v then Bool.to_int (Value.to_bool_unchecked v)
  else Semantics.err "int op on %s" (Value.type_name v)

let[@inline] as_float v =
  if Value.is_float v then Value.to_float_unchecked v
  else Semantics.err "float op on %s" (Value.type_name v)

let[@inline] as_str v =
  if Value.is_str v then Value.to_str_unchecked v
  else Semantics.err "str op on %s" (Value.type_name v)

let checked_add x y =
  let r = x + y in
  if (x >= 0) = (y >= 0) && (r >= 0) <> (x >= 0) then raise Overflow else r

let checked_sub x y =
  let r = x - y in
  if (x >= 0) <> (y >= 0) && (r >= 0) <> (x >= 0) then raise Overflow else r

(* min_int-safe, mirroring [Rarith.mul_overflows]: explicit ranges
   instead of [abs] (whose min_int result is negative), and the
   quotient probe never divides by -1 (hardware trap) *)
let checked_mul x y =
  let overflows =
    x <> 0 && y <> 0
    &&
    if x = -1 then y = min_int
    else if y = -1 then x = min_int
    else
      (x < -(1 lsl 31) || x > 1 lsl 31 || y < -(1 lsl 31) || y > 1 lsl 31)
      && (x * y) / x <> y
  in
  if overflows then raise Overflow else x * y

let bool v = Value.of_bool v

let eval (opcode : Ir.opcode) (args : Value.t array) : Value.t =
  let i n = as_int args.(n) and f n = as_float args.(n) in
  match opcode with
  | Ir.Int_add -> Value.of_int (i 0 + i 1)
  | Ir.Int_sub -> Value.of_int (i 0 - i 1)
  | Ir.Int_mul -> Value.of_int (i 0 * i 1)
  | Ir.Int_and -> Value.of_int (i 0 land i 1)
  | Ir.Int_or -> Value.of_int (i 0 lor i 1)
  | Ir.Int_xor -> Value.of_int (i 0 lxor i 1)
  | Ir.Int_lshift -> Value.of_int (i 0 lsl i 1)
  | Ir.Int_rshift ->
      (* clamp: [asr] past the word size is unspecified (hardware wraps
         the count); traces only emit this for non-negative operands *)
      let n = i 1 in
      Value.of_int (i 0 asr (if n > 62 then 62 else n))
  | Ir.Int_lt -> bool (i 0 < i 1)
  | Ir.Int_le -> bool (i 0 <= i 1)
  | Ir.Int_eq -> bool (i 0 = i 1)
  | Ir.Int_ne -> bool (i 0 <> i 1)
  | Ir.Int_gt -> bool (i 0 > i 1)
  | Ir.Int_ge -> bool (i 0 >= i 1)
  | Ir.Int_neg ->
      let x = i 0 in
      if x = min_int then Semantics.err "integer negation overflow"
      else Value.of_int (-x)
  | Ir.Int_is_true -> bool (i 0 <> 0)
  | Ir.Int_is_zero -> bool (not (Value.truthy args.(0)))
  | Ir.Int_floordiv -> Value.of_int (Rarith.floordiv_int (i 0) (i 1))
  | Ir.Int_mod -> Value.of_int (Rarith.mod_int (i 0) (i 1))
  | Ir.Float_add -> Value.of_float (f 0 +. f 1)
  | Ir.Float_sub -> Value.of_float (f 0 -. f 1)
  | Ir.Float_mul -> Value.of_float (f 0 *. f 1)
  | Ir.Float_truediv ->
      if f 1 = 0.0 then raise Division_by_zero
      else Value.of_float (f 0 /. f 1)
  | Ir.Float_neg -> Value.of_float (-.(f 0))
  | Ir.Float_abs -> Value.of_float (Float.abs (f 0))
  | Ir.Float_lt -> bool (f 0 < f 1)
  | Ir.Float_le -> bool (f 0 <= f 1)
  | Ir.Float_eq -> bool (f 0 = f 1)
  | Ir.Float_ne -> bool (f 0 <> f 1)
  | Ir.Float_gt -> bool (f 0 > f 1)
  | Ir.Float_ge -> bool (f 0 >= f 1)
  | Ir.Cast_int_to_float -> Value.of_float (float_of_int (i 0))
  | Ir.Cast_float_to_int -> Value.of_int (int_of_float (Float.trunc (f 0)))
  | Ir.Str_concat -> Value.of_str (as_str args.(0) ^ as_str args.(1))
  | Ir.Str_eq -> bool (String.equal (as_str args.(0)) (as_str args.(1)))
  | Ir.Strlen -> Value.of_int (String.length (as_str args.(0)))
  | Ir.Strgetitem ->
      let s = as_str args.(0) and idx = i 1 in
      if idx < 0 || idx >= String.length s then
        Semantics.err "string index out of range"
      else Value.of_str (String.make 1 s.[idx])
  | Ir.Ptr_eq -> bool (Semantics.identical args.(0) args.(1))
  | Ir.Ptr_ne -> bool (not (Semantics.identical args.(0) args.(1)))
  | Ir.Same_as -> args.(0)
  | Ir.Unicode_len -> Value.of_int (String.length (as_str args.(0)))
  | Ir.Unicode_getitem ->
      let s = as_str args.(0) and idx = i 1 in
      if idx < 0 || idx >= String.length s then
        Semantics.err "string index out of range"
      else Value.of_str (String.make 1 s.[idx])
  | Ir.Getfield_gc _ | Ir.Setfield_gc _ | Ir.Getarrayitem_gc | Ir.Getlistitem
  | Ir.Setlistitem | Ir.Arraylen | Ir.Getcell | Ir.Setcell | Ir.Guard _
  | Ir.Call_r _ | Ir.Call_n _ | Ir.Call_assembler _ | Ir.Label | Ir.Jump | Ir.Finish
  | Ir.New_with_vtable _ | Ir.New_array _ | Ir.New_list _ | Ir.New_cell
  | Ir.Debug_merge_point _ ->
      raise Not_pure

(* is this opcode foldable when all arguments are constants? *)
let foldable opcode =
  match opcode with
  | Ir.Int_add | Ir.Int_sub | Ir.Int_mul | Ir.Int_and | Ir.Int_or
  | Ir.Int_xor | Ir.Int_lshift | Ir.Int_rshift | Ir.Int_lt | Ir.Int_le
  | Ir.Int_eq | Ir.Int_ne | Ir.Int_gt | Ir.Int_ge | Ir.Int_neg
  | Ir.Int_is_true | Ir.Int_is_zero | Ir.Int_floordiv | Ir.Int_mod
  | Ir.Float_add | Ir.Float_sub | Ir.Float_mul | Ir.Float_truediv
  | Ir.Float_neg | Ir.Float_abs | Ir.Float_lt | Ir.Float_le | Ir.Float_eq
  | Ir.Float_ne | Ir.Float_gt | Ir.Float_ge | Ir.Cast_int_to_float
  | Ir.Cast_float_to_int | Ir.Str_concat | Ir.Str_eq | Ir.Strlen
  | Ir.Strgetitem | Ir.Ptr_eq | Ir.Ptr_ne | Ir.Same_as | Ir.Unicode_len
  | Ir.Unicode_getitem ->
      true
  | _ -> false

(* result-producing ops with no observable effect: removable when the
   result is unused (allocations included — that is trivial escape
   analysis; pure residual calls included) *)
let removable (op : Ir.op) =
  op.Ir.result >= 0
  &&
  match op.Ir.opcode with
  | Ir.Guard _ | Ir.Setfield_gc _ | Ir.Setlistitem | Ir.Setcell | Ir.Jump
  | Ir.Finish | Ir.Label | Ir.Call_assembler _ | Ir.Debug_merge_point _
  | Ir.Call_n _ ->
      false
  | Ir.Call_r c -> not c.Ir.effectful
  | _ -> true
