(** The meta-tracing abstraction seam.

    Language interpreters are written {e once}, as a functor over [OPS].
    Instantiated with {!Direct_ops} the handlers execute and charge
    interpreter costs; instantiated with {!Trace_ops} every operation
    also records trace IR — the meta-trace is the stream of the
    interpreter's own operations (type dispatches become guards, field
    reads become [getfield_gc], dict probes become residual AOT calls),
    exactly the RPython architecture described in Sec. II of the paper.

    Handler discipline (required for sound deoptimization): within one
    bytecode, all operations that can record guards or raise language
    errors must be performed {e before} the first heap side effect, and
    [Frame.pc] must only be advanced once the bytecode cannot fail.
    Guards resume at the start of the current bytecode, which is then
    re-executed by the interpreter. *)

exception Lang_error of string
(** A language-level error (TypeError, IndexError, ZeroDivisionError...).
    During tracing it aborts the trace; the interpreter re-executes the
    bytecode and reports the error. *)

type cmp = Lt | Le | Gt | Ge | Eq | Ne | Is | Is_not | In | Not_in

module type OPS = sig
  type t
  (** the value representation (plain values, or values tracked with
      their IR operand during tracing) *)

  type cx
  (** per-execution context (runtime ctx, or the trace recorder) *)

  val rt : cx -> Mtj_rt.Ctx.t
  val const : cx -> Mtj_rt.Value.t -> t
  val concrete : t -> Mtj_rt.Value.t

  val frame_pool : cx -> t Mtj_rt.Apool.t
  (** the pool dead frames' locals/stack arrays are recycled through
      (host-side only; disabled pools degrade to plain allocation) *)

  (* --- control: these return concrete answers and record guards --- *)

  val is_true : cx -> t -> bool
  val guard_int : cx -> t -> int
  val guard_func : cx -> t -> Mtj_rt.Value.func
  (** pin the callee's identity so inlining it into the trace is sound *)

  val method_parts : cx -> t -> (t * t) option
  (** if the value is a bound method, split it into (function, receiver) *)

  val func_captured : cx -> t -> int -> t
  (** read slot [i] of a function value's captured environment (closure
      cells); recorded as a [getfield_gc] on the function object *)

  val make_closure :
    cx -> code_ref:int -> arity:int -> fname:string -> t array -> t
  (** allocate a closure capturing the given cells *)

  (* --- arithmetic / comparison (full dynamic dispatch) --- *)

  val add : cx -> t -> t -> t
  val sub : cx -> t -> t -> t
  val mul : cx -> t -> t -> t
  val floordiv : cx -> t -> t -> t
  val truediv : cx -> t -> t -> t
  val modulo : cx -> t -> t -> t
  val pow : cx -> t -> t -> t
  val neg : cx -> t -> t
  val lshift : cx -> t -> t -> t
  val rshift : cx -> t -> t -> t
  val bitand : cx -> t -> t -> t
  val bitor : cx -> t -> t -> t
  val bitxor : cx -> t -> t -> t
  val compare : cx -> cmp -> t -> t -> t
  val not_ : cx -> t -> t

  (* --- attributes --- *)

  val getattr : cx -> t -> string -> t
  val setattr : cx -> t -> string -> t -> unit
  val load_method : cx -> t -> string -> t * t
  (** returns [(callable, receiver)]; for builtin methods the receiver is
      passed as the first call argument, avoiding bound-method allocation *)

  (* --- subscripts / length --- *)

  val getitem : cx -> t -> t -> t
  val setitem : cx -> t -> t -> t -> unit
  val len_ : cx -> t -> t
  val unpack : cx -> t -> int -> t array
  (** destructure a tuple/list of statically-known length *)

  (* --- construction --- *)

  val make_list : cx -> t array -> t
  val make_tuple : cx -> t array -> t
  val make_dict : cx -> (t * t) array -> t
  val make_set : cx -> t array -> t
  val make_cell : cx -> t -> t
  val cell_get : cx -> t -> t
  val cell_set : cx -> t -> t -> unit

  (* --- classes --- *)

  val alloc_instance : cx -> t -> t
  (** allocate an instance of the (promoted) class value *)

  val class_init_func : cx -> t -> Mtj_rt.Value.func option
  (** the class's [__init__], pinned as a constant *)

  (* --- globals (promoted with version guards) --- *)

  val load_global : cx -> Globals.t -> string -> t
  val store_global : cx -> Globals.t -> string -> t -> unit

  (* --- builtins --- *)

  val call_builtin : cx -> Builtin.t -> t array -> t
end

(** What a hosted language provides to the generic driver. *)
module type LANG = sig
  type code
  (** a compiled code object (function body or module toplevel) *)

  val code_ref : code -> int
  val lookup_code : int -> code
  (** resolve a [code_ref] back to its code object (deoptimization) *)

  val nlocals : code -> int
  val stack_size : code -> int
  val loop_header : code -> int -> bool
  (** is this pc a hot-loop merge point (backward-jump target)? *)

  val opcode_at : code -> int -> int
  (** numeric opcode at the pc, used as the indirect-dispatch branch
      target for the predictor model *)

  val name : code -> string

  module Step (O : OPS) : sig
    val step_ref :
      O.cx -> Globals.t -> (O.t, code) Frame.t -> (O.t, code) Frame.outcome
    (** Execute exactly one bytecode — the reference decode-and-match
        handler.  A [Call] outcome must return a frame whose [parent] is
        already set to the current frame.  The [Trace_ops] meta-
        interpreter always records through this; the [Direct_ops]
        instantiation runs it when the threaded-dispatch tier
        ({!Threaded}) is off, and threaded translators reuse it as the
        pre-bound body of cold bytecodes. *)
  end
end
