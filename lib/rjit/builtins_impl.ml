(** Concrete implementations of the builtin operations.

    Used directly by the interpreter and as residual-call thunks from
    JIT-compiled traces.  Builtins that show up inside benchmark loops
    (abs/int/get/items/slice/...) inspect arguments with the
    allocation-free predicates; only genuinely cold ones (translate,
    bigint) still go through the boxing {!Value.view}. *)

open Mtj_rt
module Engine = Mtj_machine.Engine

let err = Semantics.err

let arity_err b n =
  err "%s() called with %d arguments" (Builtin.name b) n

let math_fn = Aot.register ~name:"math.libm_call" ~src:Aot.C
let libm_cost = Mtj_core.Cost.make ~fpu:18 ~alu:6 ()

let float1 ctx f args name =
  match args with
  | [| v |] ->
      Aot.call ctx math_fn @@ fun () ->
      Engine.emit (Ctx.engine ctx) libm_cost;
      Value.of_float (f (Rarith.to_float v))
  | _ -> err "%s() takes one argument" name

let make_range _ctx args =
  if not (Array.for_all Value.is_int args) then
    err "range() expects int arguments";
  match Array.map Value.to_int_unchecked args with
  | [| stop |] -> Value.Range { start = 0; stop; step = 1 }
  | [| start; stop |] -> Value.Range { start; stop; step = 1 }
  | [| start; stop; step |] ->
      if step = 0 then err "range() arg 3 must not be zero";
      Value.Range { start; stop; step }
  | _ -> err "range() expects int arguments"

(* range as a payload needs a heap object; allocate lazily *)
let range_value ctx args =
  match make_range ctx args with
  | Value.Range _ as p -> Gc_sim.obj (Ctx.gc ctx) p
  | _ -> assert false

let range_to_list ctx (r : Value.t) =
  if not (Value.is_obj r) then r
  else
  match (Value.to_obj_unchecked r).Value.payload with
  | Value.Range { start; stop; step } ->
      let items = ref [] in
      let i = ref start in
      if step > 0 then
        while !i < stop do
          items := Value.of_int !i :: !items;
          i := !i + step
        done
      else
        while !i > stop do
          items := Value.of_int !i :: !items;
          i := !i + step
        done;
      Value.of_obj (Rlist.create ctx (List.rev !items))
  | _ -> r

(* builtin function values are per-VM singletons so that calling them
   allocates nothing after the first use; their [code_ref] is the
   negated builtin tag.  The memo table lives in the runtime context
   (not a process-wide global) so each VM's builtins live in its own
   simulated heap — see the parallel-harness notes in DESIGN.md. *)
let builtin_value ctx b =
  let cache = Ctx.builtin_cache ctx in
  let tag = Builtin.tag b in
  match Hashtbl.find_opt cache tag with
  | Some v -> v
  | None ->
      let v =
        Gc_sim.obj (Ctx.gc ctx)
          (Value.Func
             {
               func_id = -(1 + tag);
               func_name = Builtin.name b;
               arity = -1;
               code_ref = -(1 + tag);
               captured = [||];
             })
      in
      Hashtbl.replace cache tag v;
      v

let builtin_of_code_ref cr =
  if cr >= 0 then None else Some (Builtin.of_tag (-cr - 1))

let run ctx (b : Builtin.t) (args : Value.t array) : Value.t =
  let one () = match args with [| v |] -> v | _ -> arity_err b (Array.length args) in
  let two () =
    match args with [| a; x |] -> (a, x) | _ -> arity_err b (Array.length args)
  in
  match b with
  | Builtin.Len -> Value.of_int (Semantics.len_of ctx (one ()))
  | Builtin.Range2 -> range_value ctx args
  | Builtin.Abs ->
      let v = one () in
      if Value.is_int v then Value.of_int (abs (Value.to_int_unchecked v))
      else if Value.is_float v then
        Value.of_float (Float.abs (Value.to_float_unchecked v))
      else err "abs(): bad operand %s" (Value.type_name v)
  | Builtin.Min2 ->
      let a, x = two () in
      if Semantics.order ctx a x <= 0 then a else x
  | Builtin.Max2 ->
      let a, x = two () in
      if Semantics.order ctx a x >= 0 then a else x
  | Builtin.Ord ->
      let v = one () in
      if Value.is_str v && String.length (Value.to_str_unchecked v) = 1 then
        Value.of_int (Char.code (Value.to_str_unchecked v).[0])
      else err "ord() expects a single character"
  | Builtin.Chr ->
      let v = one () in
      if
        Value.is_int v
        &&
        let i = Value.to_int_unchecked v in
        i >= 0 && i < 256
      then Value.of_str (String.make 1 (Char.chr (Value.to_int_unchecked v)))
      else err "chr() arg out of range"
  | Builtin.To_int ->
      let v = one () in
      if Value.is_int v then v
      else if Value.is_float v then
        Value.of_int (int_of_float (Float.trunc (Value.to_float_unchecked v)))
      else if Value.is_bool v then
        Value.of_int (Bool.to_int (Value.to_bool_unchecked v))
      else if Value.is_str v then (
        let s = Value.to_str_unchecked v in
        match Rstr.string_to_int ctx s with
        | Some i -> Value.of_int i
        | None -> err "invalid literal for int(): '%s'" s)
      else if
        Value.is_obj v
        &&
        match (Value.to_obj_unchecked v).Value.payload with
        | Value.Bigint _ -> true
        | _ -> false
      then v
      else err "int(): bad argument %s" (Value.type_name v)
  | Builtin.To_float ->
      let v = one () in
      if Value.is_float v then v
      else if Value.is_int v then
        Value.of_float (float_of_int (Value.to_int_unchecked v))
      else if Value.is_str v then (
        let s = Value.to_str_unchecked v in
        match float_of_string_opt (String.trim s) with
        | Some f -> Value.of_float f
        | None -> err "could not convert string to float: '%s'" s)
      else err "float(): bad argument %s" (Value.type_name v)
  | Builtin.To_str -> Semantics.to_str ctx (one ())
  | Builtin.Repr -> Value.of_str (Value.repr (one ()))
  | Builtin.Print ->
      let parts =
        Array.to_list (Array.map Value.to_display_string args)
      in
      Buffer.add_string (Ctx.out ctx) (String.concat " " parts);
      Buffer.add_char (Ctx.out ctx) '\n';
      Value.nil
  | Builtin.Append ->
      let lst, v = two () in
      Rlist.append ctx (Semantics.as_list lst) v;
      Value.nil
  | Builtin.Pop -> (
      match args with
      | [| lst |] ->
          let o = Semantics.as_list lst in
          let n = Rlist.length (Rlist.of_obj o) in
          if n = 0 then err "pop from empty list";
          Rlist.pop ctx o (n - 1)
      | [| lst; i |] when Value.is_int i ->
          let o = Semantics.as_list lst in
          let n = Rlist.length (Rlist.of_obj o) in
          let i = Semantics.norm_index n (Value.to_int_unchecked i) in
          if i < 0 || i >= n then err "pop index out of range";
          Rlist.pop ctx o i
      | _ -> arity_err b (Array.length args))
  | Builtin.Insert -> (
      match args with
      | [| lst; i; v |] when Value.is_int i ->
          let i = Value.to_int_unchecked i in
          let o = Semantics.as_list lst in
          (* append then rotate: O(n) like the real thing *)
          Rlist.append ctx o v;
          let l = Rlist.of_obj o in
          let n = Rlist.length l in
          let i = max 0 (min (n - 1) (Semantics.norm_index (n - 1) i)) in
          for j = n - 1 downto i + 1 do
            let prev = Rlist.get ctx o (j - 1) in
            let cur = Rlist.get ctx o j in
            Rlist.set ctx o (j - 1) cur;
            Rlist.set ctx o j prev
          done;
          Value.nil
      | _ -> arity_err b (Array.length args))
  | Builtin.Extend ->
      let lst, other = two () in
      let o = Semantics.as_list lst in
      let other_o = Semantics.as_list (Semantics.iterable_as_indexable ctx other) in
      let ol = Rlist.of_obj other_o in
      for i = 0 to Rlist.length ol - 1 do
        Rlist.append ctx o (Rlist.get ctx other_o i)
      done;
      Value.nil
  | Builtin.Index ->
      let lst, v = two () in
      let i = Rlist.find ctx (Semantics.as_list lst) v in
      if i < 0 then err "%s is not in list" (Value.repr v);
      Value.of_int i
  | Builtin.Keys -> Semantics.keys_list ctx (one ())
  | Builtin.Values ->
      let v = one () in
      if Value.is_obj v then (
        match (Value.to_obj_unchecked v).Value.payload with
        | Value.Dict d ->
            let acc = ref [] in
            Rdict.iter d (fun _ v -> acc := v :: !acc);
            Value.of_obj (Rlist.create ctx (List.rev !acc))
        | _ -> err "values(): expected dict, got %s" (Value.type_name v))
      else err "values(): expected dict, got %s" (Value.type_name v)
  | Builtin.Items ->
      let v = one () in
      if Value.is_obj v then (
        match (Value.to_obj_unchecked v).Value.payload with
        | Value.Dict d ->
            let acc = ref [] in
            Rdict.iter d (fun k v ->
                acc :=
                  Gc_sim.obj (Ctx.gc ctx) (Value.Tuple [| k; v |]) :: !acc);
            Value.of_obj (Rlist.create ctx (List.rev !acc))
        | _ -> err "items(): expected dict, got %s" (Value.type_name v))
      else err "items(): expected dict, got %s" (Value.type_name v)
  | Builtin.Dict_get -> (
      match args with
      | [| d; k |] | [| d; k; _ |] -> (
          let dd =
            if Value.is_obj d then
              match (Value.to_obj_unchecked d).Value.payload with
              | Value.Dict dd -> dd
              | _ -> err "get(): expected dict, got %s" (Value.type_name d)
            else err "get(): expected dict, got %s" (Value.type_name d)
          in
          match Rdict.get ctx dd k with
          | Some v -> v
          | None -> if Array.length args = 3 then args.(2) else Value.nil)
      | _ -> arity_err b (Array.length args))
  | Builtin.Has_key ->
      let d, k = two () in
      let dd =
        if Value.is_obj d then
          match (Value.to_obj_unchecked d).Value.payload with
          | Value.Dict dd | Value.Set dd -> dd
          | _ -> err "has_key(): expected dict, got %s" (Value.type_name d)
        else err "has_key(): expected dict, got %s" (Value.type_name d)
      in
      Value.of_bool (Rdict.contains ctx dd k)
  | Builtin.Join ->
      let sep, lst = two () in
      let sep = Semantics.as_str sep in
      let o = Semantics.as_list (Semantics.iterable_as_indexable ctx lst) in
      let l = Rlist.of_obj o in
      let parts =
        List.init (Rlist.length l) (fun i ->
            Semantics.as_str (Value.list_get_unsafe l i))
      in
      Value.of_str (Rstr.join ctx sep parts)
  | Builtin.Split ->
      let s, sep = two () in
      let parts =
        Rstr.split ctx (Semantics.as_str s)
          (if Value.is_str sep then (
             let sep = Value.to_str_unchecked sep in
             if String.length sep = 1 then sep.[0]
             else err "split(): single-char separators only")
           else err "split(): expected str, got %s" (Value.type_name sep))
      in
      Value.of_obj
        (Rlist.create ctx (List.map (fun p -> Value.of_str p) parts))
  | Builtin.Replace -> (
      match args with
      | [| s; a; x |] ->
          Value.of_str
            (Rstr.replace ctx (Semantics.as_str s) (Semantics.as_str a)
               (Semantics.as_str x))
      | _ -> arity_err b (Array.length args))
  | Builtin.Find -> (
      match args with
      | [| s; c |] when Value.is_str c ->
          let cs = Value.to_str_unchecked c in
          if String.length cs = 1 then
            Value.of_int (Rstr.find_char ctx (Semantics.as_str s) cs.[0] ~start:0)
          else begin
            (* substring search, charged linearly *)
            let s = Semantics.as_str s in
            let n = String.length s and m = String.length cs in
            Engine.emit (Ctx.engine ctx) (Mtj_core.Cost.make ~alu:n ~load:n ());
            let rec go i =
              if i + m > n then -1
              else if String.sub s i m = cs then i
              else go (i + 1)
            in
            Value.of_int (go 0)
          end
      | [| s; c; start |]
        when Value.is_str c
             && String.length (Value.to_str_unchecked c) = 1
             && Value.is_int start ->
          Value.of_int
            (Rstr.find_char ctx (Semantics.as_str s)
               (Value.to_str_unchecked c).[0]
               ~start:(Value.to_int_unchecked start))
      | _ -> arity_err b (Array.length args))
  | Builtin.Strip -> Value.of_str (String.trim (Semantics.as_str (one ())))
  | Builtin.Upper ->
      Value.of_str (String.uppercase_ascii (Semantics.as_str (one ())))
  | Builtin.Lower ->
      Value.of_str (String.lowercase_ascii (Semantics.as_str (one ())))
  | Builtin.Startswith ->
      let s, p = two () in
      let s = Semantics.as_str s and p = Semantics.as_str p in
      Value.of_bool
        (String.length p <= String.length s
        && String.sub s 0 (String.length p) = p)
  | Builtin.Sqrt -> float1 ctx sqrt args "sqrt"
  | Builtin.Sin -> float1 ctx sin args "sin"
  | Builtin.Cos -> float1 ctx cos args "cos"
  | Builtin.Floor_f -> float1 ctx floor args "floor"
  | Builtin.Powf ->
      let a, x = two () in
      Value.of_float (Rstr.pow_float ctx (Rarith.to_float a) (Rarith.to_float x))
  | Builtin.Set_add ->
      let s, v = two () in
      Rset.add ctx (Semantics.as_set_obj s) v;
      Value.nil
  | Builtin.Set_remove ->
      let s, v = two () in
      ignore (Rset.remove ctx (Semantics.as_set_obj s) v);
      Value.nil
  | Builtin.Issubset ->
      let a, x = two () in
      Value.of_bool
        (Rset.issubset ctx (Semantics.as_set_obj a) (Semantics.as_set_obj x))
  | Builtin.Difference ->
      let a, x = two () in
      Value.of_obj
        (Rset.difference ctx (Semantics.as_set_obj a) (Semantics.as_set_obj x))
  | Builtin.Union ->
      let a, x = two () in
      Value.of_obj (Rset.union ctx (Semantics.as_set_obj a) (Semantics.as_set_obj x))
  | Builtin.Intersection ->
      let a, x = two () in
      Value.of_obj
        (Rset.intersection ctx (Semantics.as_set_obj a) (Semantics.as_set_obj x))
  | Builtin.Translate ->
      let s, table = two () in
      let table =
        match Value.view table with
        | Value.Obj { payload = Value.Dict d; _ } ->
            let acc = ref [] in
            Rdict.iter d (fun k v ->
                match (Value.view k, Value.view v) with
                | Value.Str k, Value.Str v when String.length k = 1 ->
                    acc := (k.[0], v) :: !acc
                | _ -> ());
            !acc
        | _ -> err "translate(): expected dict table"
      in
      Value.of_str (Rstr.translate ctx (Semantics.as_str s) table)
  | Builtin.Encode_json ->
      Value.of_str (Rstr.encode_ascii ctx (Semantics.as_str (one ())))
  | Builtin.Hashf -> Value.of_int (Value.py_hash (one ()))
  | Builtin.Sorted -> Semantics.sorted ctx (one ())
  | Builtin.Sio_new -> Value.of_obj (Rstr.builder_new ctx)
  | Builtin.Sio_write ->
      let o, s = two () in
      Rstr.builder_append ctx (Semantics.as_obj o) (Semantics.as_str s);
      Value.nil
  | Builtin.Sio_getvalue ->
      Value.of_str (Rstr.builder_build ctx (Semantics.as_obj (one ())))
  | Builtin.Annotate ->
      Engine.annot (Ctx.engine ctx)
        (Mtj_core.Annot.App_marker (Semantics.as_int (one ())));
      Value.nil
  | Builtin.Bigint_of -> (
      let v = one () in
      match Value.view v with
      | Value.Int i ->
          Gc_sim.obj (Ctx.gc ctx) (Value.Bigint (Rbigint.of_int i))
      | Value.Str s ->
          Gc_sim.obj (Ctx.gc ctx) (Value.Bigint (Rbigint.of_string s))
      | _ -> err "bigint(): bad argument %s" (Value.type_name v))
  | Builtin.Make_vector -> (
      match args with
      | [| n; init |] when Value.is_int n ->
          let n = Value.to_int_unchecked n in
          if n < 0 then err "make-vector: negative size";
          Value.of_obj (Rlist.create ctx (List.init n (fun _ -> init)))
      | _ -> arity_err b (Array.length args))
  | Builtin.Display ->
      Array.iter
        (fun v -> Buffer.add_string (Ctx.out ctx) (Value.to_display_string v))
        args;
      Value.nil
  | Builtin.Indexable ->
      range_to_list ctx (Semantics.iterable_as_indexable ctx (one ()))
  | Builtin.Slice_get -> (
      match args with
      | [| container; lo; hi |] when Value.is_int lo && Value.is_int hi -> (
          let lo = Value.to_int_unchecked lo
          and hi = Value.to_int_unchecked hi in
          if Value.is_str container then (
            let s = Value.to_str_unchecked container in
            let n = String.length s in
            let lo = if lo < 0 then max 0 (n + lo) else min lo n in
            let hi = if hi < 0 then max 0 (n + hi) else min hi n in
            let hi = max lo hi in
            Value.of_str (String.sub s lo (hi - lo)))
          else if Value.is_obj container then (
            let o = Value.to_obj_unchecked container in
            match o.Value.payload with
            | Value.List l ->
                let n = Value.list_len l in
                let lo = if lo < 0 then max 0 (n + lo) else min lo n in
                let hi = if hi < 0 then max 0 (n + hi) else min hi n in
                Value.of_obj (Rlist.slice ctx o lo hi)
            | _ -> err "cannot slice %s" (Value.type_name container))
          else err "cannot slice %s" (Value.type_name container))
      | _ -> arity_err b (Array.length args))
  | Builtin.Del_item -> (
      match args with
      | [| d; k |] ->
          if Value.is_obj d then (
            match (Value.to_obj_unchecked d).Value.payload with
            | Value.Dict dd ->
                if not (Rdict.delete ctx dd k) then
                  err "KeyError: %s" (Value.repr k);
                Value.nil
            | _ -> err "cannot delete items of %s" (Value.type_name d))
          else err "cannot delete items of %s" (Value.type_name d)
      | _ -> arity_err b (Array.length args))
  | Builtin.Slice_set -> (
      match args with
      | [| container; lo; hi; src |] when Value.is_int lo && Value.is_int hi ->
          let lo = Value.to_int_unchecked lo
          and hi = Value.to_int_unchecked hi in
          let dst = Semantics.as_list container in
          let n = Rlist.length (Rlist.of_obj dst) in
          let lo = if lo < 0 then max 0 (n + lo) else min lo n in
          let hi = if hi < 0 then max 0 (n + hi) else min hi n in
          let hi = max lo hi in
          Rlist.setslice ctx dst lo hi (Semantics.as_list src);
          Value.nil
      | _ -> arity_err b (Array.length args))

let _ = range_to_list
