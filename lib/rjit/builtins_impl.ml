(** Concrete implementations of the builtin operations.

    Used directly by the interpreter and as residual-call thunks from
    JIT-compiled traces. *)

open Mtj_rt
module Engine = Mtj_machine.Engine

let err = Semantics.err

let arity_err b n =
  err "%s() called with %d arguments" (Builtin.name b) n

let math_fn = Aot.register ~name:"math.libm_call" ~src:Aot.C
let libm_cost = Mtj_core.Cost.make ~fpu:18 ~alu:6 ()

let float1 ctx f args name =
  match args with
  | [| v |] ->
      Aot.call ctx math_fn @@ fun () ->
      Engine.emit (Ctx.engine ctx) libm_cost;
      Value.Float (f (Rarith.to_float v))
  | _ -> err "%s() takes one argument" name

let make_range _ctx args =
  match args with
  | [| Value.Int stop |] -> Value.Range { start = 0; stop; step = 1 }
  | [| Value.Int start; Value.Int stop |] -> Value.Range { start; stop; step = 1 }
  | [| Value.Int start; Value.Int stop; Value.Int step |] ->
      if step = 0 then err "range() arg 3 must not be zero";
      Value.Range { start; stop; step }
  | _ -> err "range() expects int arguments"

(* range as a payload needs a heap object; allocate lazily *)
let range_value ctx args =
  match make_range ctx args with
  | Value.Range _ as p -> Gc_sim.obj (Ctx.gc ctx) p
  | _ -> assert false

let range_to_list ctx (r : Value.t) =
  match r with
  | Value.Obj { payload = Value.Range { start; stop; step }; _ } ->
      let items = ref [] in
      let i = ref start in
      if step > 0 then
        while !i < stop do
          items := Value.Int !i :: !items;
          i := !i + step
        done
      else
        while !i > stop do
          items := Value.Int !i :: !items;
          i := !i + step
        done;
      Value.Obj (Rlist.create ctx (List.rev !items))
  | v -> v

(* builtin function values are per-VM singletons so that calling them
   allocates nothing after the first use; their [code_ref] is the
   negated builtin tag.  The memo table lives in the runtime context
   (not a process-wide global) so each VM's builtins live in its own
   simulated heap — see the parallel-harness notes in DESIGN.md. *)
let builtin_value ctx b =
  let cache = Ctx.builtin_cache ctx in
  let tag = Builtin.tag b in
  match Hashtbl.find_opt cache tag with
  | Some v -> v
  | None ->
      let v =
        Gc_sim.obj (Ctx.gc ctx)
          (Value.Func
             {
               func_id = -(1 + tag);
               func_name = Builtin.name b;
               arity = -1;
               code_ref = -(1 + tag);
               captured = [||];
             })
      in
      Hashtbl.replace cache tag v;
      v

let builtin_of_code_ref cr =
  if cr >= 0 then None else Some (Builtin.of_tag (-cr - 1))

let run ctx (b : Builtin.t) (args : Value.t array) : Value.t =
  let one () = match args with [| v |] -> v | _ -> arity_err b (Array.length args) in
  let two () =
    match args with [| a; x |] -> (a, x) | _ -> arity_err b (Array.length args)
  in
  match b with
  | Builtin.Len -> Value.Int (Semantics.len_of ctx (one ()))
  | Builtin.Range2 -> range_value ctx args
  | Builtin.Abs -> (
      match one () with
      | Value.Int i -> Value.Int (abs i)
      | Value.Float f -> Value.Float (Float.abs f)
      | v -> err "abs(): bad operand %s" (Value.type_name v))
  | Builtin.Min2 ->
      let a, x = two () in
      if Semantics.order ctx a x <= 0 then a else x
  | Builtin.Max2 ->
      let a, x = two () in
      if Semantics.order ctx a x >= 0 then a else x
  | Builtin.Ord -> (
      match one () with
      | Value.Str s when String.length s = 1 -> Value.Int (Char.code s.[0])
      | _ -> err "ord() expects a single character")
  | Builtin.Chr -> (
      match one () with
      | Value.Int i when i >= 0 && i < 256 -> Value.Str (String.make 1 (Char.chr i))
      | _ -> err "chr() arg out of range")
  | Builtin.To_int -> (
      match one () with
      | Value.Int _ as v -> v
      | Value.Float f -> Value.Int (int_of_float (Float.trunc f))
      | Value.Bool x -> Value.Int (Bool.to_int x)
      | Value.Str s -> (
          match Rstr.string_to_int ctx s with
          | Some i -> Value.Int i
          | None -> err "invalid literal for int(): '%s'" s)
      | Value.Obj { payload = Value.Bigint _; _ } as v -> v
      | v -> err "int(): bad argument %s" (Value.type_name v))
  | Builtin.To_float -> (
      match one () with
      | Value.Float _ as v -> v
      | Value.Int i -> Value.Float (float_of_int i)
      | Value.Str s -> (
          match float_of_string_opt (String.trim s) with
          | Some f -> Value.Float f
          | None -> err "could not convert string to float: '%s'" s)
      | v -> err "float(): bad argument %s" (Value.type_name v))
  | Builtin.To_str -> Semantics.to_str ctx (one ())
  | Builtin.Repr -> Value.Str (Value.repr (one ()))
  | Builtin.Print ->
      let parts =
        Array.to_list (Array.map Value.to_display_string args)
      in
      Buffer.add_string (Ctx.out ctx) (String.concat " " parts);
      Buffer.add_char (Ctx.out ctx) '\n';
      Value.Nil
  | Builtin.Append ->
      let lst, v = two () in
      Rlist.append ctx (Semantics.as_list lst) v;
      Value.Nil
  | Builtin.Pop -> (
      match args with
      | [| lst |] ->
          let o = Semantics.as_list lst in
          let n = Rlist.length (Rlist.of_obj o) in
          if n = 0 then err "pop from empty list";
          Rlist.pop ctx o (n - 1)
      | [| lst; Value.Int i |] ->
          let o = Semantics.as_list lst in
          let n = Rlist.length (Rlist.of_obj o) in
          let i = Semantics.norm_index n i in
          if i < 0 || i >= n then err "pop index out of range";
          Rlist.pop ctx o i
      | _ -> arity_err b (Array.length args))
  | Builtin.Insert -> (
      match args with
      | [| lst; Value.Int i; v |] ->
          let o = Semantics.as_list lst in
          (* append then rotate: O(n) like the real thing *)
          Rlist.append ctx o v;
          let l = Rlist.of_obj o in
          let n = Rlist.length l in
          let i = max 0 (min (n - 1) (Semantics.norm_index (n - 1) i)) in
          for j = n - 1 downto i + 1 do
            let prev = Rlist.get ctx o (j - 1) in
            let cur = Rlist.get ctx o j in
            Rlist.set ctx o (j - 1) cur;
            Rlist.set ctx o j prev
          done;
          Value.Nil
      | _ -> arity_err b (Array.length args))
  | Builtin.Extend ->
      let lst, other = two () in
      let o = Semantics.as_list lst in
      let other_o = Semantics.as_list (Semantics.iterable_as_indexable ctx other) in
      let ol = Rlist.of_obj other_o in
      for i = 0 to Rlist.length ol - 1 do
        Rlist.append ctx o (Rlist.get ctx other_o i)
      done;
      Value.Nil
  | Builtin.Index ->
      let lst, v = two () in
      let i = Rlist.find ctx (Semantics.as_list lst) v in
      if i < 0 then err "%s is not in list" (Value.repr v);
      Value.Int i
  | Builtin.Keys -> Semantics.keys_list ctx (one ())
  | Builtin.Values -> (
      match one () with
      | Value.Obj { payload = Value.Dict d; _ } ->
          let acc = ref [] in
          Rdict.iter d (fun _ v -> acc := v :: !acc);
          Value.Obj (Rlist.create ctx (List.rev !acc))
      | v -> err "values(): expected dict, got %s" (Value.type_name v))
  | Builtin.Items -> (
      match one () with
      | Value.Obj { payload = Value.Dict d; _ } ->
          let acc = ref [] in
          Rdict.iter d (fun k v ->
              acc := Gc_sim.obj (Ctx.gc ctx) (Value.Tuple [| k; v |]) :: !acc);
          Value.Obj (Rlist.create ctx (List.rev !acc))
      | v -> err "items(): expected dict, got %s" (Value.type_name v))
  | Builtin.Dict_get -> (
      match args with
      | [| d; k |] | [| d; k; _ |] -> (
          let dd =
            match d with
            | Value.Obj { payload = Value.Dict dd; _ } -> dd
            | v -> err "get(): expected dict, got %s" (Value.type_name v)
          in
          match Rdict.get ctx dd k with
          | Some v -> v
          | None -> if Array.length args = 3 then args.(2) else Value.Nil)
      | _ -> arity_err b (Array.length args))
  | Builtin.Has_key ->
      let d, k = two () in
      let dd =
        match d with
        | Value.Obj { payload = Value.Dict dd | Value.Set dd; _ } -> dd
        | v -> err "has_key(): expected dict, got %s" (Value.type_name v)
      in
      Value.Bool (Rdict.contains ctx dd k)
  | Builtin.Join ->
      let sep, lst = two () in
      let sep = Semantics.as_str sep in
      let o = Semantics.as_list (Semantics.iterable_as_indexable ctx lst) in
      let l = Rlist.of_obj o in
      let parts =
        List.init (Rlist.length l) (fun i ->
            Semantics.as_str (Value.list_get_unsafe l i))
      in
      Value.Str (Rstr.join ctx sep parts)
  | Builtin.Split ->
      let s, sep = two () in
      let parts =
        Rstr.split ctx (Semantics.as_str s)
          (match sep with
          | Value.Str sep when String.length sep = 1 -> sep.[0]
          | Value.Str _ -> err "split(): single-char separators only"
          | v -> err "split(): expected str, got %s" (Value.type_name v))
      in
      Value.Obj (Rlist.create ctx (List.map (fun p -> Value.Str p) parts))
  | Builtin.Replace -> (
      match args with
      | [| s; a; x |] ->
          Value.Str
            (Rstr.replace ctx (Semantics.as_str s) (Semantics.as_str a)
               (Semantics.as_str x))
      | _ -> arity_err b (Array.length args))
  | Builtin.Find -> (
      match args with
      | [| s; Value.Str c |] when String.length c = 1 ->
          Value.Int (Rstr.find_char ctx (Semantics.as_str s) c.[0] ~start:0)
      | [| s; Value.Str c; Value.Int start |] when String.length c = 1 ->
          Value.Int (Rstr.find_char ctx (Semantics.as_str s) c.[0] ~start)
      | [| s; Value.Str sub |] ->
          (* substring search, charged linearly *)
          let s = Semantics.as_str s in
          let n = String.length s and m = String.length sub in
          Engine.emit (Ctx.engine ctx) (Mtj_core.Cost.make ~alu:n ~load:n ());
          let rec go i =
            if i + m > n then -1
            else if String.sub s i m = sub then i
            else go (i + 1)
          in
          Value.Int (go 0)
      | _ -> arity_err b (Array.length args))
  | Builtin.Strip -> Value.Str (String.trim (Semantics.as_str (one ())))
  | Builtin.Upper ->
      Value.Str (String.uppercase_ascii (Semantics.as_str (one ())))
  | Builtin.Lower ->
      Value.Str (String.lowercase_ascii (Semantics.as_str (one ())))
  | Builtin.Startswith ->
      let s, p = two () in
      let s = Semantics.as_str s and p = Semantics.as_str p in
      Value.Bool
        (String.length p <= String.length s
        && String.sub s 0 (String.length p) = p)
  | Builtin.Sqrt -> float1 ctx sqrt args "sqrt"
  | Builtin.Sin -> float1 ctx sin args "sin"
  | Builtin.Cos -> float1 ctx cos args "cos"
  | Builtin.Floor_f -> float1 ctx floor args "floor"
  | Builtin.Powf ->
      let a, x = two () in
      Value.Float (Rstr.pow_float ctx (Rarith.to_float a) (Rarith.to_float x))
  | Builtin.Set_add ->
      let s, v = two () in
      Rset.add ctx (Semantics.as_set_obj s) v;
      Value.Nil
  | Builtin.Set_remove ->
      let s, v = two () in
      ignore (Rset.remove ctx (Semantics.as_set_obj s) v);
      Value.Nil
  | Builtin.Issubset ->
      let a, x = two () in
      Value.Bool (Rset.issubset ctx (Semantics.as_set_obj a) (Semantics.as_set_obj x))
  | Builtin.Difference ->
      let a, x = two () in
      Value.Obj (Rset.difference ctx (Semantics.as_set_obj a) (Semantics.as_set_obj x))
  | Builtin.Union ->
      let a, x = two () in
      Value.Obj (Rset.union ctx (Semantics.as_set_obj a) (Semantics.as_set_obj x))
  | Builtin.Intersection ->
      let a, x = two () in
      Value.Obj (Rset.intersection ctx (Semantics.as_set_obj a) (Semantics.as_set_obj x))
  | Builtin.Translate ->
      let s, table = two () in
      let table =
        match table with
        | Value.Obj { payload = Value.Dict d; _ } ->
            let acc = ref [] in
            Rdict.iter d (fun k v ->
                match (k, v) with
                | Value.Str k, Value.Str v when String.length k = 1 ->
                    acc := (k.[0], v) :: !acc
                | _ -> ());
            !acc
        | _ -> err "translate(): expected dict table"
      in
      Value.Str (Rstr.translate ctx (Semantics.as_str s) table)
  | Builtin.Encode_json -> Value.Str (Rstr.encode_ascii ctx (Semantics.as_str (one ())))
  | Builtin.Hashf -> Value.Int (Value.py_hash (one ()))
  | Builtin.Sorted -> Semantics.sorted ctx (one ())
  | Builtin.Sio_new -> Value.Obj (Rstr.builder_new ctx)
  | Builtin.Sio_write ->
      let o, s = two () in
      Rstr.builder_append ctx (Semantics.as_obj o) (Semantics.as_str s);
      Value.Nil
  | Builtin.Sio_getvalue ->
      Value.Str (Rstr.builder_build ctx (Semantics.as_obj (one ())))
  | Builtin.Annotate ->
      Engine.annot (Ctx.engine ctx)
        (Mtj_core.Annot.App_marker (Semantics.as_int (one ())));
      Value.Nil
  | Builtin.Bigint_of -> (
      match one () with
      | Value.Int i ->
          Gc_sim.obj (Ctx.gc ctx) (Value.Bigint (Rbigint.of_int i))
      | Value.Str s ->
          Gc_sim.obj (Ctx.gc ctx) (Value.Bigint (Rbigint.of_string s))
      | v -> err "bigint(): bad argument %s" (Value.type_name v))
  | Builtin.Make_vector -> (
      match args with
      | [| Value.Int n; init |] ->
          if n < 0 then err "make-vector: negative size";
          Value.Obj (Rlist.create ctx (List.init n (fun _ -> init)))
      | _ -> arity_err b (Array.length args))
  | Builtin.Display ->
      Array.iter
        (fun v -> Buffer.add_string (Ctx.out ctx) (Value.to_display_string v))
        args;
      Value.Nil
  | Builtin.Indexable ->
      range_to_list ctx (Semantics.iterable_as_indexable ctx (one ()))
  | Builtin.Slice_get -> (
      match args with
      | [| container; Value.Int lo; Value.Int hi |] -> (
          match container with
          | Value.Obj ({ payload = Value.List l; _ } as o) ->
              let n = Value.list_len l in
              let lo = if lo < 0 then max 0 (n + lo) else min lo n in
              let hi = if hi < 0 then max 0 (n + hi) else min hi n in
              Value.Obj (Rlist.slice ctx o lo hi)
          | Value.Str s ->
              let n = String.length s in
              let lo = if lo < 0 then max 0 (n + lo) else min lo n in
              let hi = if hi < 0 then max 0 (n + hi) else min hi n in
              let hi = max lo hi in
              Value.Str (String.sub s lo (hi - lo))
          | v -> err "cannot slice %s" (Value.type_name v))
      | _ -> arity_err b (Array.length args))
  | Builtin.Del_item -> (
      match args with
      | [| d; k |] -> (
          match d with
          | Value.Obj { payload = Value.Dict dd; _ } ->
              if not (Rdict.delete ctx dd k) then
                err "KeyError: %s" (Value.repr k);
              Value.Nil
          | v -> err "cannot delete items of %s" (Value.type_name v))
      | _ -> arity_err b (Array.length args))
  | Builtin.Slice_set -> (
      match args with
      | [| container; Value.Int lo; Value.Int hi; src |] ->
          let dst = Semantics.as_list container in
          let n = Rlist.length (Rlist.of_obj dst) in
          let lo = if lo < 0 then max 0 (n + lo) else min lo n in
          let hi = if hi < 0 then max 0 (n + hi) else min hi n in
          let hi = max lo hi in
          Rlist.setslice ctx dst lo hi (Semantics.as_list src);
          Value.Nil
      | _ -> arity_err b (Array.length args))

let _ = range_to_list
