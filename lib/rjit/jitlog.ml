(** The PyPy-Log equivalent (Sec. III).

    Records every compiled trace (loops and bridges) with its IR, the
    bytecode merge points, the per-operation assembly footprint, and the
    dynamic execution counts maintained by the executor.  The JIT-IR-level
    characterization (Figures 6, 7, 8, 9) is computed from here. *)

type t = {
  mutable traces : Ir.trace list;  (* newest first *)
  mutable next_trace_id : int;
  mutable aborts : int;
  mutable abort_reasons : (string * int) list;
  mutable blacklisted : int;
  mutable deopts : int;
  mutable bridges_attached : int;
  mutable retiers : int;  (* tier-1 traces recompiled at tier 2 *)
  mutable translations : int;  (* traces translated to threaded code *)
  mutable code_cache_hits : int;
      (* trace entries served from this context's own code cache (the
         "local" side of the hit split; [shared_code_hits] counts the
         cross-context side, and the two never double count: a lookup
         is resolved by exactly one tier) *)
  mutable shared_code_hits : int;
      (* code artifacts served from the shared cross-context cache
         (Sharedcache) that were published by ANOTHER context — for a
         warm serve request, the compiled code objects it re-registered
         instead of compiling from source *)
  mutable interp_translations : int;
      (* interpreter code objects translated to threaded step arrays *)
  mutable threaded_code_hits : int;
      (* interpreter code switches served from the threaded-code cache *)
  mutable tier1_compiles : int;  (* baseline-tier trace compiles *)
  mutable tier2_compiles : int;  (* optimizing-tier trace compiles *)
  mutable demotions : int;
      (* optimized loops recompiled back at tier 1 after bridge
         proliferation (Adaptive policy) *)
  mutable first_entry_insns : int;
      (* simulated instruction count at the first compiled-trace entry;
         -1 until a trace has executed.  The time-to-first-compiled-
         execution warmup metric of the tier experiments. *)
  mutable seeded_sites : int;
      (* loop sites whose hotness counter was seeded from an imported
         trace profile (serving mode) instead of counted from zero *)
}

let create () =
  {
    traces = [];
    next_trace_id = 0;
    aborts = 0;
    abort_reasons = [];
    blacklisted = 0;
    deopts = 0;
    bridges_attached = 0;
    retiers = 0;
    translations = 0;
    code_cache_hits = 0;
    shared_code_hits = 0;
    interp_translations = 0;
    threaded_code_hits = 0;
    tier1_compiles = 0;
    tier2_compiles = 0;
    demotions = 0;
    first_entry_insns = -1;
    seeded_sites = 0;
  }

let fresh_trace_id t =
  let id = t.next_trace_id in
  t.next_trace_id <- id + 1;
  id

let register t trace = t.traces <- trace :: t.traces

let find t id =
  List.find_opt (fun (tr : Ir.trace) -> tr.Ir.trace_id = id) t.traces

let traces t = List.rev t.traces
let num_traces t = List.length t.traces

let record_abort t reason =
  t.aborts <- t.aborts + 1;
  let n = Option.value ~default:0 (List.assoc_opt reason t.abort_reasons) in
  t.abort_reasons <- (reason, n + 1) :: List.remove_assoc reason t.abort_reasons

let record_deopt t = t.deopts <- t.deopts + 1
let record_bridge t = t.bridges_attached <- t.bridges_attached + 1
let record_blacklist t = t.blacklisted <- t.blacklisted + 1
let record_retier t = t.retiers <- t.retiers + 1
let record_translation t = t.translations <- t.translations + 1
let record_code_cache_hit t = t.code_cache_hits <- t.code_cache_hits + 1

let record_shared_code_hits t ~n =
  if n < 0 then invalid_arg "Jitlog.record_shared_code_hits: n < 0";
  t.shared_code_hits <- t.shared_code_hits + n

(* the satellite invariant `shared + local = total`: total is derived,
   never maintained separately, so it cannot drift or double count *)
let total_code_hits t = t.code_cache_hits + t.shared_code_hits

let record_interp_translation t =
  t.interp_translations <- t.interp_translations + 1

let record_threaded_code_hit t =
  t.threaded_code_hits <- t.threaded_code_hits + 1

let record_tier_compile t ~tier =
  if tier <= 1 then t.tier1_compiles <- t.tier1_compiles + 1
  else t.tier2_compiles <- t.tier2_compiles + 1

let record_demotion t = t.demotions <- t.demotions + 1

let record_first_entry t ~insns =
  if t.first_entry_insns < 0 then t.first_entry_insns <- insns

let record_seeded_site t = t.seeded_sites <- t.seeded_sites + 1

(* per-tier residency: trace entries and dynamic IR executed at each
   tier.  Dynamic IR uses raw op_exec sums (debug markers included) so
   the numbers reconcile exactly with per-trace dynamic_ir rows in the
   metrics document. *)
let tier_residency t =
  let t1_entries = ref 0 and t2_entries = ref 0 in
  let t1_dyn = ref 0 and t2_dyn = ref 0 in
  List.iter
    (fun (tr : Ir.trace) ->
      let dyn = Array.fold_left ( + ) 0 tr.Ir.op_exec in
      if tr.Ir.tier <= 1 then begin
        t1_entries := !t1_entries + tr.Ir.exec_count;
        t1_dyn := !t1_dyn + dyn
      end
      else begin
        t2_entries := !t2_entries + tr.Ir.exec_count;
        t2_dyn := !t2_dyn + dyn
      end)
    t.traces;
  (!t1_entries, !t2_entries, !t1_dyn, !t2_dyn)

(* --- aggregate statistics for the figures --- *)

(* counted IR nodes exclude pure debug markers, as the paper's counts do *)
let countable (op : Ir.op) =
  match op.Ir.opcode with Ir.Debug_merge_point _ | Ir.Label -> false | _ -> true

(** total IR nodes compiled (Figure 6a) *)
let total_ir_compiled t =
  List.fold_left
    (fun acc (tr : Ir.trace) ->
      acc + Array.length (Array.of_seq (Seq.filter countable (Array.to_seq tr.Ir.ops))))
    0 t.traces

(** total dynamic IR node executions (Figure 6c numerator) *)
let total_dynamic_ir t =
  List.fold_left
    (fun acc (tr : Ir.trace) ->
      let s = ref 0 in
      Array.iteri
        (fun i op -> if countable op then s := !s + tr.Ir.op_exec.(i))
        tr.Ir.ops;
      acc + !s)
    0 t.traces

(** fraction (in %) of compiled IR nodes that account for [coverage]
    (e.g. 0.95) of all dynamic IR executions (Figure 6b) *)
let hot_ir_fraction t ~coverage =
  let counts = ref [] in
  let compiled = ref 0 in
  List.iter
    (fun (tr : Ir.trace) ->
      Array.iteri
        (fun i op ->
          if countable op then begin
            incr compiled;
            counts := tr.Ir.op_exec.(i) :: !counts
          end)
        tr.Ir.ops)
    t.traces;
  let sorted = List.sort (fun a b -> Int.compare b a) !counts in
  let total = List.fold_left ( + ) 0 sorted in
  if total = 0 || !compiled = 0 then 0.0
  else begin
    let target = coverage *. float_of_int total in
    let rec go acc n = function
      | [] -> n
      | c :: rest ->
          let acc = acc +. float_of_int c in
          if acc >= target then n + 1 else go acc (n + 1) rest
    in
    let needed = go 0.0 0 sorted in
    100.0 *. float_of_int needed /. float_of_int !compiled
  end

(** dynamic execution count per IR node-type name (Figure 8) *)
let dynamic_by_node_type t =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (tr : Ir.trace) ->
      Array.iteri
        (fun i op ->
          if countable op then begin
            let k = Ir.node_type op.Ir.opcode in
            let cur = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
            Hashtbl.replace tbl k (cur + tr.Ir.op_exec.(i))
          end)
        tr.Ir.ops)
    t.traces;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

(** dynamic execution count per IR category (Figure 7) *)
let dynamic_by_category t =
  let counts = Array.make (List.length Ir.all_cats) 0 in
  let idx c =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = c then i else go (i + 1) rest
    in
    go 0 Ir.all_cats
  in
  List.iter
    (fun (tr : Ir.trace) ->
      Array.iteri
        (fun i op ->
          if countable op then begin
            let c = idx (Ir.category op.Ir.opcode) in
            if c >= 0 then counts.(c) <- counts.(c) + tr.Ir.op_exec.(i)
          end)
        tr.Ir.ops)
    t.traces;
  List.mapi (fun i c -> (c, counts.(i))) Ir.all_cats

(** mean x86 instructions per IR node type, dynamically weighted
    (Figure 9) *)
let x86_per_node_type t =
  let tbl : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (tr : Ir.trace) ->
      Array.iteri
        (fun i op ->
          if countable op then begin
            let k = Ir.node_type op.Ir.opcode in
            let x86 = Ir.x86_count op.Ir.opcode in
            let execs, insns =
              Option.value ~default:(0, 0) (Hashtbl.find_opt tbl k)
            in
            Hashtbl.replace tbl k
              (execs + tr.Ir.op_exec.(i), insns + (x86 * max 1 tr.Ir.op_exec.(i)))
          end)
        tr.Ir.ops)
    t.traces;
  Hashtbl.fold
    (fun k (execs, insns) acc ->
      if execs > 0 then (k, float_of_int insns /. float_of_int execs) :: acc
      else (k, float_of_int insns) :: acc)
    tbl []
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
