(** Builtin operations shared by the hosted languages.

    Builtins are exposed to programs as function values whose [code_ref]
    is the negated builtin tag; calling one never pushes an interpreter
    frame.  During tracing, each builtin either inlines primitive IR
    (e.g. [Len] becomes an [arraylen_gc] node) or records a residual call
    to the corresponding AOT function — reproducing the paper's split
    between JIT-compiled and AOT-compiled work. *)

type t =
  | Len
  | Range2           (* range(a, b) / range(a, b, c) / range(n) *)
  | Abs
  | Min2
  | Max2
  | Ord
  | Chr
  | To_int
  | To_float
  | To_str
  | Repr
  | Print
  | Append
  | Pop
  | Insert
  | Extend
  | Index
  | Keys
  | Values
  | Items
  | Dict_get
  | Has_key
  | Join
  | Split
  | Replace
  | Find
  | Strip
  | Upper
  | Lower
  | Startswith
  | Sqrt
  | Sin
  | Cos
  | Floor_f
  | Powf
  | Set_add
  | Set_remove
  | Issubset
  | Difference
  | Union
  | Intersection
  | Translate
  | Encode_json
  | Hashf
  | Sorted
  | Sio_new          (* cStringIO-style builder *)
  | Sio_write
  | Sio_getvalue
  | Annotate         (* application-level cross-layer annotation *)
  | Bigint_of        (* force a bignum (pidigits setup) *)
  | Indexable        (* coerce an iterable to an indexable sequence *)
  | Slice_get        (* l[a:b] *)
  | Slice_set        (* l[a:b] = other *)
  | Del_item         (* del d[k] *)
  | Make_vector      (* scheme: make-vector n init *)
  | Display          (* scheme: display (no newline) *)

let all =
  [ Len; Range2; Abs; Min2; Max2; Ord; Chr; To_int; To_float; To_str; Repr;
    Print; Append; Pop; Insert; Extend; Index; Keys; Values; Items;
    Dict_get; Has_key; Join; Split; Replace; Find; Strip; Upper; Lower;
    Startswith; Sqrt; Sin; Cos; Floor_f; Powf; Set_add; Set_remove;
    Issubset; Difference; Union; Intersection; Translate; Encode_json;
    Hashf; Sorted; Sio_new; Sio_write; Sio_getvalue; Annotate; Bigint_of;
    Indexable; Slice_get; Slice_set; Del_item; Make_vector; Display ]

(* [of_tag] sits on the call path of every builtin invocation from both
   the interpreter and compiled traces, so it must be O(1): back [all]
   with an array and index directly *)
let all_arr = Array.of_list all

let tag b =
  let rec idx i = function
    | [] -> invalid_arg "Builtin.tag"
    | x :: rest -> if x = b then i else idx (i + 1) rest
  in
  idx 0 all

let of_tag i =
  if i < 0 || i >= Array.length all_arr then invalid_arg "Builtin.of_tag"
  else Array.unsafe_get all_arr i

let name = function
  | Len -> "len"
  | Range2 -> "range"
  | Abs -> "abs"
  | Min2 -> "min"
  | Max2 -> "max"
  | Ord -> "ord"
  | Chr -> "chr"
  | To_int -> "int"
  | To_float -> "float"
  | To_str -> "str"
  | Repr -> "repr"
  | Print -> "print"
  | Append -> "append"
  | Pop -> "pop"
  | Insert -> "insert"
  | Extend -> "extend"
  | Index -> "index"
  | Keys -> "keys"
  | Values -> "values"
  | Items -> "items"
  | Dict_get -> "get"
  | Has_key -> "has_key"
  | Join -> "join"
  | Split -> "split"
  | Replace -> "replace"
  | Find -> "find"
  | Strip -> "strip"
  | Upper -> "upper"
  | Lower -> "lower"
  | Startswith -> "startswith"
  | Sqrt -> "sqrt"
  | Sin -> "sin"
  | Cos -> "cos"
  | Floor_f -> "floor"
  | Powf -> "pow"
  | Set_add -> "add"
  | Set_remove -> "remove"
  | Issubset -> "issubset"
  | Difference -> "difference"
  | Union -> "union"
  | Intersection -> "intersection"
  | Translate -> "translate"
  | Encode_json -> "encode_json"
  | Hashf -> "hash"
  | Sorted -> "sorted"
  | Sio_new -> "StringIO"
  | Sio_write -> "write"
  | Sio_getvalue -> "getvalue"
  | Annotate -> "annotate"
  | Bigint_of -> "bigint"
  | Indexable -> "__indexable"
  | Slice_get -> "__slice_get"
  | Slice_set -> "__slice_set"
  | Del_item -> "__del_item"
  | Make_vector -> "make-vector"
  | Display -> "display"
