(** Trace "assembler": lowers optimized IR into executable, costed trace
    code.

    Each IR node is assigned its x86 footprint (Figure 9's templates from
    {!Ir.x86_template}); assembling charges machine work proportional to
    the trace length, with a superlinear term reflecting the compiler
    passes the paper notes scale super-linearly with trace size
    (Sec. V-E). *)

open Mtj_core
module Engine = Mtj_machine.Engine

(* each lowered node also carries register-shuffle/spill traffic: one
   extra instruction per op keeps trace branch density realistic *)
let cost_of_template (a, f, l, s, o) =
  Cost.make ~alu:a ~fpu:f ~load:l ~store:s ~other:(o + 1) ()

let compile jitlog rtc ~(kind : Ir.trace_kind) ~entry_slots
    ?(loop_base = 0) ?(loop_start = 0) ?(tier = 2)
    ?(promote_at = Tierpolicy.never) (ops : Ir.op array) : Ir.trace =
  let nops = Array.length ops in
  (* assembling cost: linear register allocation + superlinear passes.
     A tier-1 compile skipped the optimizer pipeline, so it pays only a
     single lowering pass and none of the superlinear terms. *)
  let eng = Mtj_rt.Ctx.engine rtc in
  if tier <= 1 then
    Engine.emit eng
      (Cost.make ~alu:(5 * nops) ~load:(3 * nops) ~store:(3 * nops)
         ~other:(4 * nops) ())
  else begin
    Engine.emit eng
      (Cost.make ~alu:(14 * nops) ~load:(9 * nops) ~store:(7 * nops)
         ~other:(11 * nops) ());
    let superlinear = nops * nops / 400 in
    if superlinear > 0 then Engine.emit eng (Cost.make ~alu:superlinear ())
  end;
  let min_regs = max entry_slots (loop_base + entry_slots) in
  let nregs =
    Array.fold_left
      (fun acc (op : Ir.op) ->
        let acc = max acc (op.Ir.result + 1) in
        Array.fold_left
          (fun acc arg ->
            match arg with Ir.Reg r -> max acc (r + 1) | Ir.Const _ -> acc)
          acc op.Ir.args)
      min_regs ops
  in
  let trace =
    {
      Ir.trace_id = Jitlog.fresh_trace_id jitlog;
      kind;
      ops;
      op_costs = Array.map (fun (op : Ir.op) -> cost_of_template (Ir.x86_template op.Ir.opcode)) ops;
      nregs;
      entry_slots;
      loop_base;
      loop_start;
      exec_count = 0;
      op_exec = Array.make nops 0;
      tier;
      promote_at;
      deopts = 0;
      bridges = 0;
      code_version = 0;
      translations = 0;
      cache_hits = 0;
    }
  in
  Jitlog.register jitlog trace;
  Jitlog.record_tier_compile jitlog ~tier;
  Engine.annot eng (Annot.Trace_compile trace.Ir.trace_id);
  (* translate once, here, so the first entry already runs threaded code
     out of the context's cache.  Host-side work only: translation is
     part of what the simulated assembling cost above already models, so
     it charges nothing extra. *)
  Executor.precompile rtc jitlog trace;
  trace
