(** Trace recorder — the recording half of the meta-interpreter.

    While tracing, the interpreter's operations are both executed
    concretely and appended here as IR.  Guards snapshot resume data that
    points at the {e start of the bytecode being traced}; the handler
    discipline (guards before heap effects within one bytecode, enforced
    below) makes re-executing that bytecode after deoptimization sound.

    Tracing overhead is charged per recorded operation; the paper
    measures tracing at roughly an order of magnitude the cost of plain
    interpretation, which the constants here reproduce. *)

open Mtj_core
open Mtj_rt
module Engine = Mtj_machine.Engine

exception Abort of string
(** Tracing cannot continue (trace too long, call too deep, unsupported
    construct, language error mid-trace). *)

type tval = { v : Value.t; src : Ir.operand }

(* Guard ids only need to be unique within one VM (bridges attach to
   guards through the VM's own jitlog), but their numeric value feeds
   branch-predictor site hashes in the executor, so they must be
   reproducible run-to-run.  The counter is domain-local — no cross-
   domain races — and [Driver.create] resets it, so every VM sees the
   same id sequence no matter which domain it runs on or what ran
   before it. *)
let next_guard_id : int ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref 0)

let fresh_guard_id () =
  let r = Domain.DLS.get next_guard_id in
  let id = !r in
  incr r;
  id

let reset_guard_ids () = Domain.DLS.get next_guard_id := 0

type t = {
  rtc : Ctx.t;
  cfg : Config.t;
  mutable ops_rev : Ir.op list;
  mutable nops : int;
  mutable next_reg : int;
  mutable cur_resume : Ir.resume;
  mutable effect_in_bytecode : bool;
  mutable call_depth : int;
  known_shapes : (int, Ir.tyshape) Hashtbl.t;
      (* register type shapes proven by a producing op or a prior guard;
         sound because registers are SSA and the back-edge only refreshes
         entry registers, whose guards re-execute each iteration *)
  pool : tval Apool.t;
      (* frame pool for tracked frames; shares the runtime context's
         enable flag and host-stat counters so pool-on/off and the
         exported reuse count cover both interpreters uniformly *)
}

let create rtc ~entry_slots =
  {
    rtc;
    cfg = Ctx.config rtc;
    ops_rev = [];
    nops = 0;
    next_reg = entry_slots;
    cur_resume = { Ir.frames = []; r_virtuals = [||] };
    effect_in_bytecode = false;
    call_depth = 0;
    known_shapes = Hashtbl.create 64;
    pool =
      Apool.create
        ~enabled:(Apool.enabled (Ctx.frame_pool rtc))
        ~stats:(Ctx.hstats rtc)
        { v = Value.nil; src = Ir.Const Value.nil };
  }

let rt t = t.rtc
let pool t = t.pool

(* cost of the meta-interpreter recording one operation *)
let trace_op_cost = Cost.make ~alu:14 ~load:9 ~store:8 ~other:10 ()

let opcode_is_effect (opc : Ir.opcode) =
  match opc with
  | Ir.Setfield_gc _ | Ir.Setlistitem | Ir.Setcell -> true
  | Ir.Call_n c -> c.Ir.effectful
  | Ir.Call_r c -> c.Ir.effectful
  | _ -> false

let push_op t (op : Ir.op) =
  if t.nops >= t.cfg.Config.max_trace_ops then raise (Abort "trace too long");
  t.ops_rev <- op :: t.ops_rev;
  t.nops <- t.nops + 1;
  if opcode_is_effect op.Ir.opcode then t.effect_in_bytecode <- true;
  Engine.emit (Ctx.engine t.rtc) trace_op_cost

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

(* record an operation with a result *)
let emit t opcode args value =
  let r = fresh_reg t in
  push_op t { Ir.opcode; args; result = r };
  (match Ir.result_shape opcode with
  | Some sh -> Hashtbl.replace t.known_shapes r sh
  | None -> ());
  { v = value; src = Ir.Reg r }

(* record an operation without a result *)
let emit_n t opcode args = push_op t { Ir.opcode; args; result = -1 }

let gkind_label (g : Ir.gkind) =
  match g with
  | Ir.G_true -> "true"
  | Ir.G_false -> "false"
  | Ir.G_value _ -> "value"
  | Ir.G_class _ -> "class"
  | Ir.G_nonnull -> "nonnull"
  | Ir.G_no_ovf_add | Ir.G_no_ovf_sub | Ir.G_no_ovf_mul -> "no_ovf"
  | Ir.G_index_lt -> "index"
  | Ir.G_global_version _ -> "global_version"

let guard t gkind args =
  match (gkind, args) with
  | Ir.G_class sh, [| Ir.Reg r |]
    when Hashtbl.find_opt t.known_shapes r = Some sh ->
      (* the register's shape is already proven: no guard is recorded, so
         the effect-ordering discipline is not implicated *)
      ()
  | _ ->
  if t.effect_in_bytecode then
    raise
      (Abort
         ("guard after side effect within a bytecode: " ^ gkind_label gkind));
  (match (gkind, args) with
  | Ir.G_class sh, [| Ir.Reg r |] -> Hashtbl.replace t.known_shapes r sh
  | _ -> ());
  let g =
    {
      Ir.guard_id = fresh_guard_id ();
      gkind;
      resume = t.cur_resume;
      fail_count = 0;
      bridge = None;
      bridgeable = true;
    }
  in
  push_op t { Ir.opcode = Ir.Guard g; args; result = -1 }

(* called by the tracing loop before each bytecode *)
let begin_bytecode t ~resume ~code ~pc =
  (* the tracing interpreter is still executing the program: the
     dispatch-loop work annotation fires here too (Sec. IV) *)
  Engine.annot (Ctx.engine t.rtc) Mtj_core.Annot.Dispatch_tick;
  t.cur_resume <- resume;
  t.effect_in_bytecode <- false;
  push_op t
    {
      Ir.opcode =
        Ir.Debug_merge_point { dmp_code = code; dmp_pc = pc; dmp_resume = resume };
      args = [||];
      result = -1;
    }

let ops t = Array.of_list (List.rev t.ops_rev)
let num_ops t = t.nops
let call_depth t = t.call_depth
let enter_call t = t.call_depth <- t.call_depth + 1
let exit_call t = t.call_depth <- max 0 (t.call_depth - 1)
