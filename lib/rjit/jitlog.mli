(** The PyPy-Log equivalent (Sec. III).

    Records every compiled trace (loops and bridges) with its IR and the
    dynamic per-operation execution counts maintained by the executor,
    plus the JIT machinery event counters (aborts, deopts, bridges,
    blacklists, retiers). The JIT-IR-level characterization (Figures
    6–9) is computed from here. *)

type t = {
  mutable traces : Ir.trace list;  (** newest first *)
  mutable next_trace_id : int;
  mutable aborts : int;
  mutable abort_reasons : (string * int) list;
  mutable blacklisted : int;
  mutable deopts : int;
  mutable bridges_attached : int;
  mutable retiers : int;  (** tier-1 traces recompiled at tier 2 *)
  mutable translations : int;
      (** traces translated into closure-threaded code *)
  mutable code_cache_hits : int;
      (** trace entries whose threaded code came from the per-context
          code cache — the {e local} (same-context) side of the code
          hit split; {!total_code_hits} adds the cross-context side *)
  mutable shared_code_hits : int;
      (** code artifacts served from the shared cross-context cache
          ({!Sharedcache}) published by another context; disjoint from
          [code_cache_hits] by construction (a lookup is resolved by
          exactly one tier, so the two never double count) *)
  mutable interp_translations : int;
      (** interpreter code objects translated into threaded-dispatch
          step arrays (the tier below traces; see {!Threaded}) *)
  mutable threaded_code_hits : int;
      (** dispatch-loop code switches served from the threaded-code
          cache in the language's code table *)
  mutable tier1_compiles : int;  (** baseline-tier trace compiles *)
  mutable tier2_compiles : int;
      (** optimizing-tier trace compiles (initial compiles, promotions
          and optimized bridges alike) *)
  mutable demotions : int;
      (** optimized loops recompiled back at the baseline tier after
          bridge proliferation (Adaptive policy) *)
  mutable first_entry_insns : int;
      (** simulated instruction count at the first compiled-trace
          entry, or [-1] if no trace ever ran — the
          time-to-first-compiled-execution warmup metric *)
  mutable seeded_sites : int;
      (** loop sites whose hotness counter was seeded from an imported
          {!Traceprofile.t} (serving mode) instead of counted from
          zero *)
}

val create : unit -> t
val fresh_trace_id : t -> int
val register : t -> Ir.trace -> unit

val find : t -> int -> Ir.trace option
(** Look up a trace by id (the executor resolves [call_assembler]
    targets through this). *)

val traces : t -> Ir.trace list
(** All compiled traces, oldest first. *)

val num_traces : t -> int

val record_abort : t -> string -> unit
val record_deopt : t -> unit
val record_bridge : t -> unit
val record_blacklist : t -> unit
val record_retier : t -> unit
val record_translation : t -> unit
val record_code_cache_hit : t -> unit

val record_shared_code_hits : t -> n:int -> unit
(** Count [n] code artifacts served from the shared cross-context
    cache (a warm serve request records its bundle's size here).
    Raises [Invalid_argument] on negative [n]. *)

val total_code_hits : t -> int
(** [code_cache_hits + shared_code_hits] — derived, never maintained
    separately, so the validator invariant
    [shared_hits + local_hits = total hits] holds by construction. *)

val record_interp_translation : t -> unit
val record_threaded_code_hit : t -> unit

val record_tier_compile : t -> tier:int -> unit
(** Bump [tier1_compiles] or [tier2_compiles]; called by
    {!Backend.compile} for every trace. *)

val record_demotion : t -> unit

val record_first_entry : t -> insns:int -> unit
(** Latch [first_entry_insns] on the first compiled-trace entry;
    subsequent calls are no-ops. *)

val record_seeded_site : t -> unit
(** Count a loop site seeded from an imported trace profile. *)

val tier_residency : t -> int * int * int * int
(** [(t1_entries, t2_entries, t1_dynamic_ir, t2_dynamic_ir)]: trace
    entries and raw dynamic IR executions (debug markers included, so
    the numbers reconcile exactly with per-trace rows) per tier. *)

(** {2 Aggregate statistics for the figures}

    All counts exclude debug merge points and labels, as the paper's
    do. *)

val total_ir_compiled : t -> int
(** Total IR nodes compiled (Figure 6a). *)

val total_dynamic_ir : t -> int
(** Total dynamic IR node executions (Figure 6c numerator). *)

val hot_ir_fraction : t -> coverage:float -> float
(** Percentage of compiled IR nodes accounting for [coverage] (e.g.
    [0.95]) of all dynamic IR executions (Figure 6b). *)

val dynamic_by_node_type : t -> (string * int) list
(** Dynamic execution count per IR node-type name, descending
    (Figure 8). *)

val dynamic_by_category : t -> (Ir.cat * int) list
(** Dynamic execution count per IR category (Figure 7). *)

val x86_per_node_type : t -> (string * float) list
(** Mean x86 instructions per IR node type, dynamically weighted
    (Figure 9). *)
