(** Interpreter frames, generic over the value representation.

    The same frame structure is used by the direct interpreter (['v] =
    {!Mtj_rt.Value.t}) and by the tracing meta-interpreter (['v] =
    tracked values carrying their IR operand).  A frame holds the code
    object, the program counter, the locals and the evaluation stack;
    frames link to their caller.

    Code throughout the interpreters relies on
    [Array.length t.locals = max 1 nlocals] (e.g. to recover the local
    count and to blit call arguments), which is why the frame pool
    below buckets arrays by exact length. *)

type ('v, 'code) t = {
  code : 'code;
  code_ref : int;
  mutable pc : int;
  locals : 'v array;
  stack : 'v array;
  mutable sp : int;
  mutable parent : ('v, 'code) t option;
  mutable discard_return : bool;
      (** constructor ([__init__]) frames: the caller already holds the
          instance; the return value is dropped *)
}

val create :
  code:'code ->
  code_ref:int ->
  nlocals:int ->
  stack_size:int ->
  default:'v ->
  parent:('v, 'code) t option ->
  ('v, 'code) t
(** Fresh frame with newly allocated locals/stack arrays filled with
    [default]. *)

val create_pooled :
  pool:'v Mtj_rt.Apool.t ->
  code:'code ->
  code_ref:int ->
  nlocals:int ->
  stack_size:int ->
  parent:('v, 'code) t option ->
  ('v, 'code) t
(** [create] with the locals/stack arrays drawn from [pool] (the pool's
    default element plays the role of [~default]).

    {b Reuse contract}: {!Mtj_rt.Apool.release} re-fills arrays with the
    pool default before shelving them, so a pooled frame starts fully
    re-initialized — every locals/stack slot holds the default, [pc] and
    [sp] are 0 — and is indistinguishable from one built by [create].
    No value from a previous frame's life can be observed through a
    pooled frame.  With a disabled pool this degrades to exactly
    [create]. *)

val release : pool:'v Mtj_rt.Apool.t -> ('v, 'code) t -> unit
(** Return a dead frame's locals/stack arrays to [pool].

    Caller contract: the frame must be unreachable from every live
    frame chain (the driver's current-frame pointer, the recorder's
    tracked chain) {e before} release, and its arrays must not have
    been handed to anything that outlives the frame — in particular,
    frames whose [locals] were passed to a compiled trace as entry
    slots must never be released.  The frame record itself is not
    pooled; only its arrays are.  Touching a frame after releasing it
    is a bug. *)

val push : ('v, 'code) t -> 'v -> unit
val pop : ('v, 'code) t -> 'v
val peek : ('v, 'code) t -> int -> 'v
val set_top : ('v, 'code) t -> 'v -> unit

val depth : ('v, 'code) t -> int
(** Number of ancestor frames. *)

(** What one bytecode step did to control flow. *)
type ('v, 'code) outcome =
  | Continue                     (** stay in this frame *)
  | Call of ('v, 'code) t        (** push and enter the given frame *)
  | Return of 'v                 (** pop this frame with the result *)
