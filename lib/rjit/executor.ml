(** Compiled-trace executor.

    Runs a compiled loop over a register file of runtime values, charging
    the machine each operation's lowered footprint.  Guards evaluate
    their condition on live data; a failing guard either transfers to an
    attached bridge or {e deoptimizes}: under the [Blackhole] phase the
    interpreter frames are rebuilt from the guard's resume data,
    materializing objects removed by escape analysis.  Residual calls run
    under the [Jit_call] phase via {!Mtj_rt.Aot.call}; a language error
    raised by one deoptimizes to the current bytecode boundary, where the
    interpreter re-executes and reports it. *)

open Mtj_core
open Mtj_rt
module Engine = Mtj_machine.Engine

type deopt_frame = {
  df_code : int;
  df_pc : int;
  df_locals : Value.t array;
  df_stack : Value.t array;
  df_discard : bool;
}

type exit_state = {
  frames : deopt_frame list;  (* outermost first; empty on [finished] *)
  failed_guard : Ir.guard option;
  request_bridge : bool;
  finished : Value.t option;
      (* a bridge ended with [finish]: the traced region returned this
         value to its caller *)
}

let as_obj = Semantics.as_obj
let as_int = Eval_op.as_int

(* --- materialization of resume data --- *)

let materialize_frames rtc (resume : Ir.resume) (regs : Value.t array) =
  let gc = Ctx.gc rtc in
  let memo = Array.make (Array.length resume.Ir.r_virtuals) None in
  let rec value_of (s : Ir.source) : Value.t =
    match s with
    | Ir.S_reg r -> regs.(r)
    | Ir.S_const v -> v
    | Ir.S_virtual k -> (
        match memo.(k) with
        | Some v -> v
        | None -> build k)
  and build k =
    match resume.Ir.r_virtuals.(k) with
    | Ir.V_instance { v_cls; v_fields } ->
        let inst =
          {
            Value.cls = v_cls;
            fields = Array.make (Array.length v_fields) Value.Nil;
          }
        in
        let o = Gc_sim.obj gc (Value.Instance inst) in
        memo.(k) <- Some o;
        Array.iteri (fun i s -> inst.Value.fields.(i) <- value_of s) v_fields;
        o
    | Ir.V_tuple srcs ->
        let v = Gc_sim.obj gc (Value.Tuple (Array.map value_of srcs)) in
        memo.(k) <- Some v;
        v
    | Ir.V_list srcs ->
        let lst = Rlist.create rtc [] in
        let v = Value.Obj lst in
        memo.(k) <- Some v;
        Array.iter (fun s -> Rlist.append rtc lst (value_of s)) srcs;
        v
    | Ir.V_cell s ->
        let payload = Value.Cell { cell = Value.Nil } in
        let v = Gc_sim.obj gc payload in
        memo.(k) <- Some v;
        (match payload with
        | Value.Cell c -> c.cell <- value_of s
        | _ -> assert false);
        v
  in
  List.map
    (fun (f : Ir.frame_snap) ->
      {
        df_code = f.Ir.snap_code;
        df_pc = f.Ir.snap_pc;
        df_locals = Array.map value_of f.Ir.snap_locals;
        df_stack = Array.map value_of f.Ir.snap_stack;
        df_discard = f.Ir.snap_discard;
      })
    resume.Ir.frames

(* --- guard evaluation --- *)

let guard_holds (g : Ir.guard) (vals : Value.t array) =
  match g.Ir.gkind with
  | Ir.G_true -> Value.truthy vals.(0)
  | Ir.G_false -> not (Value.truthy vals.(0))
  | Ir.G_value v -> Value.py_eq vals.(0) v
  | Ir.G_class sh -> Trace_ops.tyshape_of vals.(0) = sh
  | Ir.G_nonnull -> vals.(0) <> Value.Nil
  | Ir.G_no_ovf_add -> (
      match Eval_op.checked_add (as_int vals.(0)) (as_int vals.(1)) with
      | (_ : int) -> true
      | exception Eval_op.Overflow -> false)
  | Ir.G_no_ovf_sub -> (
      match Eval_op.checked_sub (as_int vals.(0)) (as_int vals.(1)) with
      | (_ : int) -> true
      | exception Eval_op.Overflow -> false)
  | Ir.G_no_ovf_mul -> (
      match Eval_op.checked_mul (as_int vals.(0)) (as_int vals.(1)) with
      | (_ : int) -> true
      | exception Eval_op.Overflow -> false)
  | Ir.G_index_lt ->
      let i = as_int vals.(0) and n = as_int vals.(1) in
      i >= 0 && i < n
  | Ir.G_global_version (cell, ver) -> !cell = ver

(* --- blackhole: charge deoptimization and rebuild frames --- *)

let blackhole rtc (resume : Ir.resume) regs ~guard_id =
  let eng = Ctx.engine rtc in
  Engine.in_phase eng Phase.Blackhole @@ fun () ->
  let slots =
    List.fold_left
      (fun acc (f : Ir.frame_snap) ->
        acc + Array.length f.Ir.snap_locals + Array.length f.Ir.snap_stack)
      0 resume.Ir.frames
  in
  Engine.emit eng (Cost.make ~alu:160 ~load:130 ~store:95 ~other:120 ());
  Engine.emit eng
    (Cost.make ~alu:(5 * slots) ~load:(4 * slots) ~store:(4 * slots) ());
  (* the blackhole interpreter walks resume chains with irregular,
     data-dependent control flow: poor prediction (Table IV) *)
  for i = 0 to (slots / 2) + 3 do
    Engine.branch eng
      ~site:(950_000 + (guard_id land 63))
      ~taken:(((i * 7) + guard_id) mod 3 <> 0)
  done;
  materialize_frames rtc resume regs

(* --- heap operations on concrete values --- *)

let getfield rtc o idx =
  let obj = as_obj o in
  Engine.mem_access (Ctx.engine rtc) ~addr:(Gc_sim.addr obj ~field:idx)
    ~write:false;
  match obj.Value.payload with
  | Value.Instance i -> Semantics.field_get i idx
  | Value.Func f ->
      if idx < Array.length f.Value.captured then f.Value.captured.(idx)
      else Value.Nil
  | _ -> Semantics.err "getfield on %s" (Value.type_name o)

let setfield rtc o idx v =
  let obj = as_obj o in
  Engine.mem_access (Ctx.engine rtc) ~addr:(Gc_sim.addr obj ~field:idx)
    ~write:true;
  match obj.Value.payload with
  | Value.Instance i -> Semantics.field_set rtc obj i idx v
  | _ -> Semantics.err "setfield on %s" (Value.type_name o)

(* --- the main loop --- *)

let entry_cost = Cost.make ~alu:6 ~load:8 ~store:8 ~other:9 ()

let run rtc (jitlog : Jitlog.t) ~(trace : Ir.trace) ~(entry : Value.t array) :
    exit_state =
  let eng = Ctx.engine rtc in
  let cfg = Ctx.config rtc in
  let gc = Ctx.gc rtc in
  (* current register file, tracked for GC root scanning *)
  let cur_regs = ref (Array.make trace.Ir.nregs Value.Nil) in
  Array.blit entry 0 !cur_regs 0 (Array.length entry);
  let scanner_id =
    Gc_sim.add_root_scanner gc (fun visit -> Array.iter visit !cur_regs)
  in
  Fun.protect ~finally:(fun () -> Gc_sim.remove_root_scanner gc scanner_id)
  @@ fun () ->
  let cur_trace = ref trace in
  let last_resume = ref None in
  Engine.annot eng (Annot.Trace_enter trace.Ir.trace_id);
  Engine.emit eng entry_cost;
  trace.Ir.exec_count <- trace.Ir.exec_count + 1;
  let exit_state = ref None in
  let ip = ref 0 in
  let switch_trace (target : Ir.trace) (values : Value.t array) =
    Engine.annot eng (Annot.Trace_exit !cur_trace.Ir.trace_id);
    Engine.annot eng (Annot.Trace_enter target.Ir.trace_id);
    let regs = Array.make target.Ir.nregs Value.Nil in
    Array.blit values 0 regs 0 (Array.length values);
    cur_regs := regs;
    cur_trace := target;
    target.Ir.exec_count <- target.Ir.exec_count + 1;
    ip := 0
  in
  let deopt resume ~guard =
    let guard_id = match guard with Some g -> g.Ir.guard_id | None -> -1 in
    Engine.annot eng (Annot.Guard_fail guard_id);
    Jitlog.record_deopt jitlog;
    let frames = blackhole rtc resume !cur_regs ~guard_id in
    let request_bridge =
      match guard with
      | Some g ->
          g.Ir.fail_count >= cfg.Config.bridge_threshold
          && g.Ir.bridgeable && g.Ir.bridge = None
      | None -> false
    in
    exit_state :=
      Some { frames; failed_guard = guard; request_bridge; finished = None }
  in
  while !exit_state = None do
    let t = !cur_trace in
    let regs = !cur_regs in
    let op = t.Ir.ops.(!ip) in
    t.Ir.op_exec.(!ip) <- t.Ir.op_exec.(!ip) + 1;
    Engine.emit eng t.Ir.op_costs.(!ip);
    let arg i =
      match op.Ir.args.(i) with
      | Ir.Const v -> v
      | Ir.Reg r -> regs.(r)
    in
    let argvals () = Array.map (function
        | Ir.Const v -> v
        | Ir.Reg r -> regs.(r)) op.Ir.args
    in
    let set_result v = if op.Ir.result >= 0 then regs.(op.Ir.result) <- v in
    match op.Ir.opcode with
    | Ir.Debug_merge_point d ->
        last_resume := Some d.dmp_resume;
        Engine.annot eng Annot.Dispatch_tick;
        incr ip
    | Ir.Label -> incr ip
    | Ir.Guard g -> (
        let vals = argvals () in
        match guard_holds g vals with
        | true ->
            Engine.branch eng ~site:(400_000 + (g.Ir.guard_id land 4095)) ~taken:true;
            incr ip
        | false -> (
            Engine.branch eng ~site:(400_000 + (g.Ir.guard_id land 4095)) ~taken:false;
            g.Ir.fail_count <- g.Ir.fail_count + 1;
            match g.Ir.bridge with
            | Some bridge ->
                (* patched side-exit: jump straight into the bridge with
                   the (materialized) frame state flattened into its
                   entry registers *)
                let frames = materialize_frames rtc g.Ir.resume regs in
                let flat =
                  List.concat_map
                    (fun f -> Array.to_list f.df_locals @ Array.to_list f.df_stack)
                    frames
                in
                switch_trace bridge (Array.of_list flat)
            | None -> deopt g.Ir.resume ~guard:(Some g))
        | exception (Ops_intf.Lang_error _ | Rarith.Type_error _ | Division_by_zero) ->
            deopt g.Ir.resume ~guard:(Some g))
    | Ir.Finish ->
        Engine.branch eng ~site:(430_000 + (t.Ir.trace_id land 1023)) ~taken:true;
        exit_state :=
          Some
            {
              frames = [];
              failed_guard = None;
              request_bridge = false;
              finished = Some (arg 0);
            }
    | Ir.Jump -> (
        let vals = argvals () in
        (* two-tier mode: a quick tier-1 loop that has proven hot leaves
           JIT code at its own back-edge — the frame state there is
           exactly the loop-header state — so the driver can recompile it
           through the full optimizer and re-enter *)
        match t.Ir.kind with
        | Ir.Loop { loop_code; loop_pc }
          when cfg.Config.tiered && t.Ir.tier = 1
               && t.Ir.exec_count >= cfg.Config.tier2_threshold ->
            exit_state :=
              Some
                {
                  frames =
                    [
                      {
                        df_code = loop_code;
                        df_pc = loop_pc;
                        df_locals = vals;
                        df_stack = [||];
                        df_discard = false;
                      };
                    ];
                  failed_guard = None;
                  request_bridge = false;
                  finished = None;
                }
        | _ ->
            Array.blit vals 0 regs t.Ir.loop_base (Array.length vals);
            Engine.branch eng ~site:(410_000 + (t.Ir.trace_id land 1023))
              ~taken:true;
            t.Ir.exec_count <- t.Ir.exec_count + 1;
            ip := t.Ir.loop_start)
    | Ir.Call_assembler target_id -> (
        match Jitlog.find jitlog target_id with
        | Some target ->
            Engine.branch_indirect eng ~site:(420_000 + (t.Ir.trace_id land 1023))
              ~target:target_id;
            switch_trace target (argvals ())
        | None -> (
            match !last_resume with
            | Some r -> deopt r ~guard:None
            | None -> Semantics.err "call_assembler to unknown trace"))
    | _ -> (
        (* ordinary operations; language errors deoptimize to the current
           bytecode boundary *)
        match
          (match op.Ir.opcode with
          | Ir.Getfield_gc idx -> set_result (getfield rtc (arg 0) idx)
          | Ir.Setfield_gc idx -> setfield rtc (arg 0) idx (arg 1)
          | Ir.Getcell -> (
              match arg 0 with
              | Value.Obj { payload = Value.Cell c; _ } -> set_result c.cell
              | v -> Semantics.err "getcell on %s" (Value.type_name v))
          | Ir.Setcell -> (
              match arg 0 with
              | Value.Obj ({ payload = Value.Cell c; _ } as o) ->
                  c.cell <- arg 1;
                  Gc_sim.write_barrier gc ~parent:o ~child:(arg 1)
              | v -> Semantics.err "setcell on %s" (Value.type_name v))
          | Ir.Getlistitem ->
              let o = Semantics.as_list (arg 0) in
              let i = as_int (arg 1) in
              let l = Rlist.of_obj o in
              if i < 0 || i >= Rlist.length l then
                Semantics.err "list index out of range";
              Engine.mem_access eng ~addr:(Gc_sim.addr o ~field:(i land 15))
                ~write:false;
              set_result (Value.list_get_unsafe l i)
          | Ir.Setlistitem ->
              let o = Semantics.as_list (arg 0) in
              let i = as_int (arg 1) in
              let l = Rlist.of_obj o in
              if i < 0 || i >= Rlist.length l then
                Semantics.err "list assignment index out of range";
              Rlist.set rtc o i (arg 2)
          | Ir.Getarrayitem_gc -> (
              match arg 0 with
              | Value.Obj ({ payload = Value.Tuple a; _ } as o) ->
                  let i = as_int (arg 1) in
                  if i < 0 || i >= Array.length a then
                    Semantics.err "tuple index out of range";
                  Engine.mem_access eng
                    ~addr:(Gc_sim.addr o ~field:(i land 15))
                    ~write:false;
                  set_result a.(i)
              | v -> Semantics.err "getarrayitem on %s" (Value.type_name v))
          | Ir.Arraylen ->
              set_result (Value.Int (Semantics.len_of rtc (arg 0)))
          | Ir.New_with_vtable cls_obj -> (
              match cls_obj.Value.payload with
              | Value.Class c ->
                  set_result
                    (Gc_sim.obj gc
                       (Value.Instance
                          {
                            cls = cls_obj;
                            fields =
                              Array.make
                                (Array.length c.Value.layout)
                                Value.Nil;
                          }))
              | _ -> Semantics.err "new_with_vtable: not a class")
          | Ir.New_array _ ->
              set_result (Gc_sim.obj gc (Value.Tuple (argvals ())))
          | Ir.New_list _ ->
              set_result
                (Value.Obj (Rlist.create rtc (Array.to_list (argvals ()))))
          | Ir.New_cell ->
              set_result (Gc_sim.obj gc (Value.Cell { cell = arg 0 }))
          | Ir.Call_r rc ->
              let vals = argvals () in
              set_result (Aot.call rtc rc.Ir.aot (fun () -> rc.Ir.run rtc vals))
          | Ir.Call_n rc ->
              let vals = argvals () in
              ignore (Aot.call rtc rc.Ir.aot (fun () -> rc.Ir.run rtc vals))
          | opc ->
              (* pure ops *)
              set_result (Eval_op.eval opc (argvals ())))
        with
        | () -> incr ip
        | exception
            ((Ops_intf.Lang_error _ | Rarith.Type_error _ | Division_by_zero)
             as e) -> (
            match !last_resume with
            | Some r -> deopt r ~guard:None
            | None -> raise e))
  done;
  Engine.annot eng (Annot.Trace_exit !cur_trace.Ir.trace_id);
  Option.get !exit_state
