(** Compiled-trace executor.

    Runs a compiled loop over a register file of runtime values, charging
    the machine each operation's lowered footprint.  Guards evaluate
    their condition on live data; a failing guard either transfers to an
    attached bridge or {e deoptimizes}: under the [Blackhole] phase the
    interpreter frames are rebuilt from the guard's resume data,
    materializing objects removed by escape analysis.  Residual calls run
    under the [Jit_call] phase via {!Mtj_rt.Aot.call}; a language error
    raised by one deoptimizes to the current bytecode boundary, where the
    interpreter re-executes and reports it.

    Two execution strategies share these semantics:

    - {!run_ref}, the reference loop, re-matches [op.opcode] and
      re-decodes operands on every iteration;
    - {!run}, the closure-threaded loop (after Izawa et al. 2021):
      {!precompile}/[code_for] translate the op array {e once} into an
      array of pre-bound step closures — operands resolved to direct
      register indices or hoisted constants, guards pre-bound to their
      resume data and fail path, compare+guard and int-op+overflow-guard
      pairs fused into superinstructions — cached per context and keyed
      by trace id, invalidated when a bridge attachment bumps the
      trace's [code_version].

    Both charge the simulated machine identically: every counter the
    engine sees is byte-for-byte the same under either strategy. *)

open Mtj_core
open Mtj_rt
module Engine = Mtj_machine.Engine

type deopt_frame = {
  df_code : int;
  df_pc : int;
  df_locals : Value.t array;
  df_stack : Value.t array;
  df_discard : bool;
}

type exit_state = {
  frames : deopt_frame list;  (* outermost first; empty on [finished] *)
  failed_guard : Ir.guard option;
  failed_in : Ir.trace option;
      (* the trace the failing guard belongs to (the executor may have
         switched traces since entry); the driver invalidates its cached
         threaded code when it attaches a bridge to the guard *)
  request_bridge : bool;
  finished : Value.t option;
      (* a bridge ended with [finish]: the traced region returned this
         value to its caller *)
}

let as_obj = Semantics.as_obj
let as_int = Eval_op.as_int
let as_float = Eval_op.as_float

(* --- materialization of resume data --- *)

let materialize_frames rtc (resume : Ir.resume) (regs : Value.t array) =
  let gc = Ctx.gc rtc in
  let memo = Array.make (Array.length resume.Ir.r_virtuals) None in
  let rec value_of (s : Ir.source) : Value.t =
    match s with
    | Ir.S_reg r -> regs.(r)
    | Ir.S_const v -> v
    | Ir.S_virtual k -> (
        match memo.(k) with
        | Some v -> v
        | None -> build k)
  and build k =
    match resume.Ir.r_virtuals.(k) with
    | Ir.V_instance { v_cls; v_fields } ->
        let inst =
          {
            Value.cls = v_cls;
            fields = Array.make (Array.length v_fields) Value.nil;
          }
        in
        let o = Gc_sim.obj gc (Value.Instance inst) in
        memo.(k) <- Some o;
        Array.iteri (fun i s -> inst.Value.fields.(i) <- value_of s) v_fields;
        o
    | Ir.V_tuple srcs ->
        let v = Gc_sim.obj gc (Value.Tuple (Array.map value_of srcs)) in
        memo.(k) <- Some v;
        v
    | Ir.V_list srcs ->
        let lst = Rlist.create rtc [] in
        let v = Value.of_obj lst in
        memo.(k) <- Some v;
        Array.iter (fun s -> Rlist.append rtc lst (value_of s)) srcs;
        v
    | Ir.V_cell s ->
        let payload = Value.Cell { cell = Value.nil } in
        let v = Gc_sim.obj gc payload in
        memo.(k) <- Some v;
        (match payload with
        | Value.Cell c -> c.cell <- value_of s
        | _ -> assert false);
        v
  in
  List.map
    (fun (f : Ir.frame_snap) ->
      {
        df_code = f.Ir.snap_code;
        df_pc = f.Ir.snap_pc;
        df_locals = Array.map value_of f.Ir.snap_locals;
        df_stack = Array.map value_of f.Ir.snap_stack;
        df_discard = f.Ir.snap_discard;
      })
    resume.Ir.frames

(* --- guard evaluation --- *)

let guard_holds (g : Ir.guard) (vals : Value.t array) =
  match g.Ir.gkind with
  | Ir.G_true -> Value.truthy vals.(0)
  | Ir.G_false -> not (Value.truthy vals.(0))
  | Ir.G_value v -> Value.py_eq vals.(0) v
  | Ir.G_class sh -> Trace_ops.tyshape_of vals.(0) = sh
  | Ir.G_nonnull -> not (Value.is_nil vals.(0))
  | Ir.G_no_ovf_add -> (
      match Eval_op.checked_add (as_int vals.(0)) (as_int vals.(1)) with
      | (_ : int) -> true
      | exception Eval_op.Overflow -> false)
  | Ir.G_no_ovf_sub -> (
      match Eval_op.checked_sub (as_int vals.(0)) (as_int vals.(1)) with
      | (_ : int) -> true
      | exception Eval_op.Overflow -> false)
  | Ir.G_no_ovf_mul -> (
      match Eval_op.checked_mul (as_int vals.(0)) (as_int vals.(1)) with
      | (_ : int) -> true
      | exception Eval_op.Overflow -> false)
  | Ir.G_index_lt ->
      let i = as_int vals.(0) and n = as_int vals.(1) in
      i >= 0 && i < n
  | Ir.G_global_version (cell, ver) -> !cell = ver

(* --- blackhole: charge deoptimization and rebuild frames --- *)

(* fixed entry cost of a deopt, hoisted so it is not rebuilt per event *)
let blackhole_entry_cost = Cost.make ~alu:160 ~load:130 ~store:95 ~other:120 ()

let blackhole rtc (resume : Ir.resume) regs ~guard_id =
  let eng = Ctx.engine rtc in
  Engine.in_phase eng Phase.Blackhole @@ fun () ->
  let slots =
    List.fold_left
      (fun acc (f : Ir.frame_snap) ->
        acc + Array.length f.Ir.snap_locals + Array.length f.Ir.snap_stack)
      0 resume.Ir.frames
  in
  Engine.emit eng blackhole_entry_cost;
  Engine.emit eng
    (Cost.make ~alu:(5 * slots) ~load:(4 * slots) ~store:(4 * slots) ());
  (* the blackhole interpreter walks resume chains with irregular,
     data-dependent control flow: poor prediction (Table IV) *)
  for i = 0 to (slots / 2) + 3 do
    Engine.branch eng
      ~site:(950_000 + (guard_id land 63))
      ~taken:(((i * 7) + guard_id) mod 3 <> 0)
  done;
  materialize_frames rtc resume regs

(* --- heap operations on concrete values --- *)

let getfield rtc o idx =
  let obj = as_obj o in
  Engine.mem_access (Ctx.engine rtc) ~addr:(Gc_sim.addr obj ~field:idx)
    ~write:false;
  match obj.Value.payload with
  | Value.Instance i -> Semantics.field_get i idx
  | Value.Func f ->
      if idx < Array.length f.Value.captured then f.Value.captured.(idx)
      else Value.nil
  | _ -> Semantics.err "getfield on %s" (Value.type_name o)

let setfield rtc o idx v =
  let obj = as_obj o in
  Engine.mem_access (Ctx.engine rtc) ~addr:(Gc_sim.addr obj ~field:idx)
    ~write:true;
  match obj.Value.payload with
  | Value.Instance i -> Semantics.field_set rtc obj i idx v
  | _ -> Semantics.err "setfield on %s" (Value.type_name o)

let entry_cost = Cost.make ~alu:6 ~load:8 ~store:8 ~other:9 ()

(* --- the reference loop ---

   Interprets the IR directly: the executable semantics the threaded
   translation below must reproduce exactly (the differential test in
   test/test_threaded_diff.ml holds the two to identical exits, register
   files and machine counters). *)

let run_ref rtc (jitlog : Jitlog.t) ~(trace : Ir.trace)
    ~(entry : Value.t array) : exit_state =
  let eng = Ctx.engine rtc in
  let cfg = Ctx.config rtc in
  let gc = Ctx.gc rtc in
  (* current register file, tracked for GC root scanning *)
  let cur_regs = ref (Array.make trace.Ir.nregs Value.nil) in
  Array.blit entry 0 !cur_regs 0 (Array.length entry);
  let scanner_id =
    Gc_sim.add_root_scanner gc (fun visit -> Array.iter visit !cur_regs)
  in
  Fun.protect ~finally:(fun () -> Gc_sim.remove_root_scanner gc scanner_id)
  @@ fun () ->
  let cur_trace = ref trace in
  let last_resume = ref None in
  Engine.annot eng (Annot.Trace_enter trace.Ir.trace_id);
  Jitlog.record_first_entry jitlog ~insns:(Engine.total_insns eng);
  Engine.emit eng entry_cost;
  trace.Ir.exec_count <- trace.Ir.exec_count + 1;
  let exit_state = ref None in
  let ip = ref 0 in
  let switch_trace (target : Ir.trace) (values : Value.t array) =
    Engine.annot eng (Annot.Trace_exit !cur_trace.Ir.trace_id);
    Engine.annot eng (Annot.Trace_enter target.Ir.trace_id);
    let regs = Array.make target.Ir.nregs Value.nil in
    Array.blit values 0 regs 0 (Array.length values);
    cur_regs := regs;
    cur_trace := target;
    target.Ir.exec_count <- target.Ir.exec_count + 1;
    ip := 0
  in
  let deopt resume ~guard =
    let guard_id = match guard with Some g -> g.Ir.guard_id | None -> -1 in
    Engine.annot eng (Annot.Guard_fail guard_id);
    Jitlog.record_deopt jitlog;
    (!cur_trace).Ir.deopts <- (!cur_trace).Ir.deopts + 1;
    let frames = blackhole rtc resume !cur_regs ~guard_id in
    let request_bridge =
      match guard with
      | Some g ->
          g.Ir.fail_count >= cfg.Config.bridge_threshold
          && g.Ir.bridgeable && g.Ir.bridge = None
      | None -> false
    in
    exit_state :=
      Some
        {
          frames;
          failed_guard = guard;
          failed_in = Some !cur_trace;
          request_bridge;
          finished = None;
        }
  in
  while !exit_state = None do
    let t = !cur_trace in
    let regs = !cur_regs in
    let op = t.Ir.ops.(!ip) in
    t.Ir.op_exec.(!ip) <- t.Ir.op_exec.(!ip) + 1;
    (* per-opcode costs are interned in the trace's code table at
       compile time; charge through the block API *)
    Engine.emit_static eng t.Ir.op_costs ~lo:!ip ~hi:(!ip + 1);
    let arg i =
      match op.Ir.args.(i) with
      | Ir.Const v -> v
      | Ir.Reg r -> regs.(r)
    in
    let argvals () = Array.map (function
        | Ir.Const v -> v
        | Ir.Reg r -> regs.(r)) op.Ir.args
    in
    let set_result v = if op.Ir.result >= 0 then regs.(op.Ir.result) <- v in
    match op.Ir.opcode with
    | Ir.Debug_merge_point d ->
        last_resume := Some d.dmp_resume;
        Engine.annot eng Annot.Dispatch_tick;
        incr ip
    | Ir.Label -> incr ip
    | Ir.Guard g -> (
        let vals = argvals () in
        match guard_holds g vals with
        | true ->
            Engine.branch eng ~site:(400_000 + (g.Ir.guard_id land 4095)) ~taken:true;
            incr ip
        | false -> (
            Engine.branch eng ~site:(400_000 + (g.Ir.guard_id land 4095)) ~taken:false;
            g.Ir.fail_count <- g.Ir.fail_count + 1;
            match g.Ir.bridge with
            | Some bridge ->
                (* patched side-exit: jump straight into the bridge with
                   the (materialized) frame state flattened into its
                   entry registers *)
                let frames = materialize_frames rtc g.Ir.resume regs in
                let flat =
                  List.concat_map
                    (fun f -> Array.to_list f.df_locals @ Array.to_list f.df_stack)
                    frames
                in
                switch_trace bridge (Array.of_list flat)
            | None -> deopt g.Ir.resume ~guard:(Some g))
        | exception (Ops_intf.Lang_error _ | Rarith.Type_error _ | Division_by_zero) ->
            deopt g.Ir.resume ~guard:(Some g))
    | Ir.Finish ->
        Engine.branch eng ~site:(430_000 + (t.Ir.trace_id land 1023)) ~taken:true;
        exit_state :=
          Some
            {
              frames = [];
              failed_guard = None;
              failed_in = None;
              request_bridge = false;
              finished = Some (arg 0);
            }
    | Ir.Jump -> (
        let vals = argvals () in
        (* adaptive tiers: a baseline loop that has reached its
           promotion point leaves JIT code at its own back-edge — the
           frame state there is exactly the loop-header state — so the
           driver's portal can take a tier-up decision and re-enter *)
        match t.Ir.kind with
        | Ir.Loop { loop_code; loop_pc }
          when t.Ir.tier = 1 && t.Ir.exec_count >= t.Ir.promote_at ->
            exit_state :=
              Some
                {
                  frames =
                    [
                      {
                        df_code = loop_code;
                        df_pc = loop_pc;
                        df_locals = vals;
                        df_stack = [||];
                        df_discard = false;
                      };
                    ];
                  failed_guard = None;
                  failed_in = None;
                  request_bridge = false;
                  finished = None;
                }
        | _ ->
            Array.blit vals 0 regs t.Ir.loop_base (Array.length vals);
            Engine.branch eng ~site:(410_000 + (t.Ir.trace_id land 1023))
              ~taken:true;
            t.Ir.exec_count <- t.Ir.exec_count + 1;
            ip := t.Ir.loop_start)
    | Ir.Call_assembler target_id -> (
        match Jitlog.find jitlog target_id with
        | Some target ->
            Engine.branch_indirect eng ~site:(420_000 + (t.Ir.trace_id land 1023))
              ~target:target_id;
            switch_trace target (argvals ())
        | None -> (
            match !last_resume with
            | Some r -> deopt r ~guard:None
            | None -> Semantics.err "call_assembler to unknown trace"))
    | _ -> (
        (* ordinary operations; language errors deoptimize to the current
           bytecode boundary *)
        match
          (match op.Ir.opcode with
          | Ir.Getfield_gc idx -> set_result (getfield rtc (arg 0) idx)
          | Ir.Setfield_gc idx -> setfield rtc (arg 0) idx (arg 1)
          | Ir.Getcell ->
              let v = arg 0 in
              if Value.is_obj v then (
                match (Value.to_obj_unchecked v).Value.payload with
                | Value.Cell c -> set_result c.cell
                | _ -> Semantics.err "getcell on %s" (Value.type_name v))
              else Semantics.err "getcell on %s" (Value.type_name v)
          | Ir.Setcell ->
              let v = arg 0 in
              if Value.is_obj v then (
                let o = Value.to_obj_unchecked v in
                match o.Value.payload with
                | Value.Cell c ->
                    c.cell <- arg 1;
                    Gc_sim.write_barrier gc ~parent:o ~child:(arg 1)
                | _ -> Semantics.err "setcell on %s" (Value.type_name v))
              else Semantics.err "setcell on %s" (Value.type_name v)
          | Ir.Getlistitem ->
              let o = Semantics.as_list (arg 0) in
              let i = as_int (arg 1) in
              let l = Rlist.of_obj o in
              if i < 0 || i >= Rlist.length l then
                Semantics.err "list index out of range";
              Engine.mem_access eng ~addr:(Gc_sim.addr o ~field:(i land 15))
                ~write:false;
              set_result (Value.list_get_unsafe l i)
          | Ir.Setlistitem ->
              let o = Semantics.as_list (arg 0) in
              let i = as_int (arg 1) in
              let l = Rlist.of_obj o in
              if i < 0 || i >= Rlist.length l then
                Semantics.err "list assignment index out of range";
              Rlist.set rtc o i (arg 2)
          | Ir.Getarrayitem_gc ->
              let v = arg 0 in
              if Value.is_obj v then (
                let o = Value.to_obj_unchecked v in
                match o.Value.payload with
                | Value.Tuple a ->
                    let i = as_int (arg 1) in
                    if i < 0 || i >= Array.length a then
                      Semantics.err "tuple index out of range";
                    Engine.mem_access eng
                      ~addr:(Gc_sim.addr o ~field:(i land 15))
                      ~write:false;
                    set_result a.(i)
                | _ -> Semantics.err "getarrayitem on %s" (Value.type_name v))
              else Semantics.err "getarrayitem on %s" (Value.type_name v)
          | Ir.Arraylen ->
              set_result (Value.of_int (Semantics.len_of rtc (arg 0)))
          | Ir.New_with_vtable cls_obj -> (
              match cls_obj.Value.payload with
              | Value.Class c ->
                  set_result
                    (Gc_sim.obj gc
                       (Value.Instance
                          {
                            cls = cls_obj;
                            fields =
                              Array.make
                                (Array.length c.Value.layout)
                                Value.nil;
                          }))
              | _ -> Semantics.err "new_with_vtable: not a class")
          | Ir.New_array _ ->
              set_result (Gc_sim.obj gc (Value.Tuple (argvals ())))
          | Ir.New_list _ ->
              set_result
                (Value.of_obj (Rlist.create rtc (Array.to_list (argvals ()))))
          | Ir.New_cell ->
              set_result (Gc_sim.obj gc (Value.Cell { cell = arg 0 }))
          | Ir.Call_r rc ->
              let vals = argvals () in
              set_result (Aot.call rtc rc.Ir.aot (fun () -> rc.Ir.run rtc vals))
          | Ir.Call_n rc ->
              let vals = argvals () in
              ignore (Aot.call rtc rc.Ir.aot (fun () -> rc.Ir.run rtc vals))
          | opc ->
              (* pure ops *)
              set_result (Eval_op.eval opc (argvals ())))
        with
        | () -> incr ip
        | exception
            ((Ops_intf.Lang_error _ | Rarith.Type_error _ | Division_by_zero)
             as e) -> (
            match !last_resume with
            | Some r -> deopt r ~guard:None
            | None -> raise e))
  done;
  Engine.annot eng (Annot.Trace_exit !cur_trace.Ir.trace_id);
  Option.get !exit_state

(* --- closure-threaded trace code ---

   [translate] lowers a trace's op array, once, into an array of [step]
   closures over a small mutable machine state.  Each step is pre-bound
   at translation time: operand lookups are direct register indices or
   hoisted constants, the per-op cost bundle and op_exec counter cell
   are captured, guards carry their resolved fail path (bridge target or
   deopt), and the two pairs the recorder always emits adjacently —
   compare+guard and int-op+overflow-guard — collapse into fused
   superinstruction steps.  The interpretive costs of the reference loop
   (opcode re-match, operand re-decode, per-iteration closure and array
   allocation) are paid once per translation instead of once per
   executed op. *)

type state = {
  mutable st_regs : Value.t array;
  mutable st_cur : Ir.trace;
  mutable st_code : step array;
  mutable st_ip : int;
  mutable st_resume : Ir.resume option;
  mutable st_exit : exit_state option;
}

and step = state -> unit

type threaded = { th_version : int; th_code : step array }
type Ctx.code += Threaded of threaded

(* the executor's caught-error set: language errors deoptimize to the
   bytecode boundary, everything else (Budget_exhausted in particular)
   propagates *)
let lang_errors = function
  | Ops_intf.Lang_error _ | Rarith.Type_error _ | Division_by_zero -> true
  | _ -> false

let rec translate rtc (jitlog : Jitlog.t) (t : Ir.trace) : step array =
  let eng = Ctx.engine rtc in
  let cfg = Ctx.config rtc in
  let gc = Ctx.gc rtc in
  let ops = t.Ir.ops in
  let costs = t.Ir.op_costs in
  let exec = t.Ir.op_exec in
  let n = Array.length ops in
  if t.Ir.loop_start < 0 || t.Ir.loop_start > n then
    invalid_arg "Executor.translate: loop_start out of range";
  (* operand fetchers: constants hoisted, registers resolved to direct
     (validated, hence unsafe-indexable) slots *)
  let getter (o : Ir.operand) : Value.t array -> Value.t =
    match o with
    | Ir.Const v -> fun _ -> v
    | Ir.Reg r ->
        if r < 0 || r >= t.Ir.nregs then
          invalid_arg "Executor.translate: register out of range";
        fun regs -> Array.unsafe_get regs r
  in
  let store (d : int) : Value.t array -> Value.t -> unit =
    if d >= 0 then begin
      if d >= t.Ir.nregs then
        invalid_arg "Executor.translate: result register out of range";
      fun regs v -> Array.unsafe_set regs d v
    end
    else fun _ _ -> ()
  in
  let fetch_all (args : Ir.operand array) : Value.t array -> Value.t array =
    let gs = Array.map getter args in
    fun regs -> Array.map (fun g -> g regs) gs
  in
  (* shared exit paths, mirroring the reference loop exactly *)
  let deopt st (resume : Ir.resume) (guard : Ir.guard option) =
    let guard_id = match guard with Some g -> g.Ir.guard_id | None -> -1 in
    Engine.annot eng (Annot.Guard_fail guard_id);
    Jitlog.record_deopt jitlog;
    st.st_cur.Ir.deopts <- st.st_cur.Ir.deopts + 1;
    let frames = blackhole rtc resume st.st_regs ~guard_id in
    let request_bridge =
      match guard with
      | Some g ->
          g.Ir.fail_count >= cfg.Config.bridge_threshold
          && g.Ir.bridgeable && g.Ir.bridge = None
      | None -> false
    in
    st.st_exit <-
      Some
        {
          frames;
          failed_guard = guard;
          failed_in = Some st.st_cur;
          request_bridge;
          finished = None;
        }
  in
  let deopt_boundary st e =
    match st.st_resume with
    | Some r -> deopt st r None
    | None -> raise e
  in
  let switch st (target : Ir.trace) (values : Value.t array) =
    Engine.annot eng (Annot.Trace_exit st.st_cur.Ir.trace_id);
    Engine.annot eng (Annot.Trace_enter target.Ir.trace_id);
    let regs = Array.make target.Ir.nregs Value.nil in
    Array.blit values 0 regs 0 (Array.length values);
    st.st_regs <- regs;
    st.st_cur <- target;
    st.st_code <- code_for rtc jitlog target;
    target.Ir.exec_count <- target.Ir.exec_count + 1;
    st.st_ip <- 0
  in
  (* a guard's fail path, resolved at translation time: an attached
     bridge becomes a direct jump-with-flattened-frames, otherwise the
     deopt.  Sound to pre-bind because bridges only attach between runs
     (in the driver), and attaching one bumps [code_version] which
     invalidates this translation. *)
  let fail_path (g : Ir.guard) : state -> unit =
    match g.Ir.bridge with
    | Some bridge ->
        fun st ->
          g.Ir.fail_count <- g.Ir.fail_count + 1;
          let frames = materialize_frames rtc g.Ir.resume st.st_regs in
          let flat =
            List.concat_map
              (fun f -> Array.to_list f.df_locals @ Array.to_list f.df_stack)
              frames
          in
          switch st bridge (Array.of_list flat)
    | None ->
        fun st ->
          g.Ir.fail_count <- g.Ir.fail_count + 1;
          deopt st g.Ir.resume (Some g)
  in
  (* guard condition, specialized on the (immutable) kind *)
  let guard_test (g : Ir.guard) (args : Ir.operand array) :
      Value.t array -> bool =
    match g.Ir.gkind with
    | Ir.G_true ->
        let a = getter args.(0) in
        fun regs -> Value.truthy (a regs)
    | Ir.G_false ->
        let a = getter args.(0) in
        fun regs -> not (Value.truthy (a regs))
    | Ir.G_value v ->
        let a = getter args.(0) in
        fun regs -> Value.py_eq (a regs) v
    | Ir.G_class sh ->
        let a = getter args.(0) in
        fun regs -> Trace_ops.tyshape_of (a regs) = sh
    | Ir.G_nonnull ->
        let a = getter args.(0) in
        fun regs -> not (Value.is_nil (a regs))
    | Ir.G_no_ovf_add ->
        let a = getter args.(0) and b = getter args.(1) in
        fun regs -> (
          match Eval_op.checked_add (as_int (a regs)) (as_int (b regs)) with
          | (_ : int) -> true
          | exception Eval_op.Overflow -> false)
    | Ir.G_no_ovf_sub ->
        let a = getter args.(0) and b = getter args.(1) in
        fun regs -> (
          match Eval_op.checked_sub (as_int (a regs)) (as_int (b regs)) with
          | (_ : int) -> true
          | exception Eval_op.Overflow -> false)
    | Ir.G_no_ovf_mul ->
        let a = getter args.(0) and b = getter args.(1) in
        fun regs -> (
          match Eval_op.checked_mul (as_int (a regs)) (as_int (b regs)) with
          | (_ : int) -> true
          | exception Eval_op.Overflow -> false)
    | Ir.G_index_lt ->
        let a = getter args.(0) and b = getter args.(1) in
        fun regs ->
          let i = as_int (a regs) and n = as_int (b regs) in
          i >= 0 && i < n
    | Ir.G_global_version (cell, ver) -> fun _ -> !cell = ver
  in
  let guard_step i (g : Ir.guard) (args : Ir.operand array) : step =
    let cost = costs.(i) in
    let site = 400_000 + (g.Ir.guard_id land 4095) in
    let test = guard_test g args in
    let fail = fail_path g in
    fun st ->
      exec.(i) <- exec.(i) + 1;
      Engine.emit eng cost;
      match test st.st_regs with
      | true ->
          Engine.branch eng ~site ~taken:true;
          st.st_ip <- i + 1
      | false ->
          Engine.branch eng ~site ~taken:false;
          fail st
      | exception e when lang_errors e -> deopt st g.Ir.resume (Some g)
  in
  (* ordinary (non-control) op: bump, charge, do the work, fall through;
     language errors deoptimize to the last bytecode boundary *)
  let ordinary i (work : state -> unit) : step =
    let cost = costs.(i) in
    fun st ->
      exec.(i) <- exec.(i) + 1;
      Engine.emit eng cost;
      match work st with
      | () -> st.st_ip <- i + 1
      | exception e when lang_errors e -> deopt_boundary st e
  in
  let generic i (op : Ir.op) : step =
    let fetch = fetch_all op.Ir.args in
    let set = store op.Ir.result in
    let opc = op.Ir.opcode in
    ordinary i (fun st -> set st.st_regs (Eval_op.eval opc (fetch st.st_regs)))
  in
  (* binary specializations.  [y] is converted before [x], matching the
     reference loop's right-to-left operand evaluation, so a type error
     on either operand surfaces identically. *)
  let int_binop i (op : Ir.op) (f : int -> int -> Value.t) : step =
    let a = getter op.Ir.args.(0) and b = getter op.Ir.args.(1) in
    let set = store op.Ir.result in
    ordinary i (fun st ->
        let regs = st.st_regs in
        let y = as_int (b regs) in
        let x = as_int (a regs) in
        set regs (f x y))
  in
  let float_binop i (op : Ir.op) (f : float -> float -> Value.t) : step =
    let a = getter op.Ir.args.(0) and b = getter op.Ir.args.(1) in
    let set = store op.Ir.result in
    ordinary i (fun st ->
        let regs = st.st_regs in
        let y = as_float (b regs) in
        let x = as_float (a regs) in
        set regs (f x y))
  in
  let plain_step i (op : Ir.op) : step =
    match op.Ir.opcode with
    | Ir.Debug_merge_point d ->
        let cost = costs.(i) in
        let resume = Some d.dmp_resume in
        fun st ->
          exec.(i) <- exec.(i) + 1;
          Engine.emit eng cost;
          st.st_resume <- resume;
          Engine.annot eng Annot.Dispatch_tick;
          st.st_ip <- i + 1
    | Ir.Label ->
        let cost = costs.(i) in
        fun st ->
          exec.(i) <- exec.(i) + 1;
          Engine.emit eng cost;
          st.st_ip <- i + 1
    | Ir.Guard g -> guard_step i g op.Ir.args
    | Ir.Finish ->
        let cost = costs.(i) in
        let a0 = getter op.Ir.args.(0) in
        let site = 430_000 + (t.Ir.trace_id land 1023) in
        fun st ->
          exec.(i) <- exec.(i) + 1;
          Engine.emit eng cost;
          Engine.branch eng ~site ~taken:true;
          st.st_exit <-
            Some
              {
                frames = [];
                failed_guard = None;
                failed_in = None;
                request_bridge = false;
                finished = Some (a0 st.st_regs);
              }
    | Ir.Jump -> (
        let cost = costs.(i) in
        let gs = Array.map getter op.Ir.args in
        let len = Array.length gs in
        let site = 410_000 + (t.Ir.trace_id land 1023) in
        let back_edge st vals =
          (* values are all read before the blit: the jump's sources may
             overlap the entry registers it refills *)
          Array.blit vals 0 st.st_regs t.Ir.loop_base len;
          Engine.branch eng ~site ~taken:true;
          t.Ir.exec_count <- t.Ir.exec_count + 1;
          st.st_ip <- t.Ir.loop_start
        in
        match t.Ir.kind with
        | Ir.Loop { loop_code; loop_pc }
          when t.Ir.tier = 1 && t.Ir.promote_at <> Tierpolicy.never ->
            fun st ->
              exec.(i) <- exec.(i) + 1;
              Engine.emit eng cost;
              let regs = st.st_regs in
              let vals = Array.map (fun g -> g regs) gs in
              if t.Ir.exec_count >= t.Ir.promote_at then
                (* baseline loop at its promotion point: leave JIT code
                   at the back-edge so the driver's portal can take a
                   tier-up decision *)
                st.st_exit <-
                  Some
                    {
                      frames =
                        [
                          {
                            df_code = loop_code;
                            df_pc = loop_pc;
                            df_locals = vals;
                            df_stack = [||];
                            df_discard = false;
                          };
                        ];
                      failed_guard = None;
                      failed_in = None;
                      request_bridge = false;
                      finished = None;
                    }
              else back_edge st vals
        | _ ->
            (* steady state: the argument scratch never escapes, so one
               translation-time array serves every iteration *)
            let tmp = Array.make len Value.nil in
            fun st ->
              exec.(i) <- exec.(i) + 1;
              Engine.emit eng cost;
              let regs = st.st_regs in
              for k = 0 to len - 1 do
                Array.unsafe_set tmp k ((Array.unsafe_get gs k) regs)
              done;
              back_edge st tmp)
    | Ir.Call_assembler target_id -> (
        let cost = costs.(i) in
        let gs = Array.map getter op.Ir.args in
        let len = Array.length gs in
        let site = 420_000 + (t.Ir.trace_id land 1023) in
        match Jitlog.find jitlog target_id with
        | Some target ->
            (* target resolved at translation time; trace registration is
               permanent, so the binding can never go stale *)
            let tmp = Array.make len Value.nil in
            fun st ->
              exec.(i) <- exec.(i) + 1;
              Engine.emit eng cost;
              Engine.branch_indirect eng ~site ~target:target_id;
              let regs = st.st_regs in
              for k = 0 to len - 1 do
                Array.unsafe_set tmp k ((Array.unsafe_get gs k) regs)
              done;
              switch st target tmp
        | None ->
            fun st -> (
              exec.(i) <- exec.(i) + 1;
              Engine.emit eng cost;
              match Jitlog.find jitlog target_id with
              | Some target ->
                  Engine.branch_indirect eng ~site ~target:target_id;
                  let regs = st.st_regs in
                  switch st target (Array.map (fun g -> g regs) gs)
              | None -> (
                  match st.st_resume with
                  | Some r -> deopt st r None
                  | None -> Semantics.err "call_assembler to unknown trace")))
    (* memops *)
    | Ir.Getfield_gc idx ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st -> set st.st_regs (getfield rtc (a0 st.st_regs) idx))
    | Ir.Setfield_gc idx ->
        let a0 = getter op.Ir.args.(0) and a1 = getter op.Ir.args.(1) in
        ordinary i (fun st ->
            let regs = st.st_regs in
            setfield rtc (a0 regs) idx (a1 regs))
    | Ir.Getcell ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let v = a0 st.st_regs in
            if Value.is_obj v then (
              match (Value.to_obj_unchecked v).Value.payload with
              | Value.Cell c -> set st.st_regs c.cell
              | _ -> Semantics.err "getcell on %s" (Value.type_name v))
            else Semantics.err "getcell on %s" (Value.type_name v))
    | Ir.Setcell ->
        let a0 = getter op.Ir.args.(0) and a1 = getter op.Ir.args.(1) in
        ordinary i (fun st ->
            let regs = st.st_regs in
            let cell = a0 regs in
            if Value.is_obj cell then (
              let o = Value.to_obj_unchecked cell in
              match o.Value.payload with
              | Value.Cell c ->
                  let v = a1 regs in
                  c.cell <- v;
                  Gc_sim.write_barrier gc ~parent:o ~child:v
              | _ -> Semantics.err "setcell on %s" (Value.type_name cell))
            else Semantics.err "setcell on %s" (Value.type_name cell))
    | Ir.Getlistitem ->
        let a0 = getter op.Ir.args.(0) and a1 = getter op.Ir.args.(1) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            let o = Semantics.as_list (a0 regs) in
            let i_ = as_int (a1 regs) in
            let l = Rlist.of_obj o in
            if i_ < 0 || i_ >= Rlist.length l then
              Semantics.err "list index out of range";
            Engine.mem_access eng ~addr:(Gc_sim.addr o ~field:(i_ land 15))
              ~write:false;
            set regs (Value.list_get_unsafe l i_))
    | Ir.Setlistitem ->
        let a0 = getter op.Ir.args.(0)
        and a1 = getter op.Ir.args.(1)
        and a2 = getter op.Ir.args.(2) in
        ordinary i (fun st ->
            let regs = st.st_regs in
            let o = Semantics.as_list (a0 regs) in
            let i_ = as_int (a1 regs) in
            let l = Rlist.of_obj o in
            if i_ < 0 || i_ >= Rlist.length l then
              Semantics.err "list assignment index out of range";
            Rlist.set rtc o i_ (a2 regs))
    | Ir.Getarrayitem_gc ->
        let a0 = getter op.Ir.args.(0) and a1 = getter op.Ir.args.(1) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            let v = a0 regs in
            if Value.is_obj v then (
              let o = Value.to_obj_unchecked v in
              match o.Value.payload with
              | Value.Tuple a ->
                  let i_ = as_int (a1 regs) in
                  if i_ < 0 || i_ >= Array.length a then
                    Semantics.err "tuple index out of range";
                  Engine.mem_access eng
                    ~addr:(Gc_sim.addr o ~field:(i_ land 15))
                    ~write:false;
                  set regs a.(i_)
              | _ -> Semantics.err "getarrayitem on %s" (Value.type_name v))
            else Semantics.err "getarrayitem on %s" (Value.type_name v))
    | Ir.Arraylen ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Value.of_int (Semantics.len_of rtc (a0 regs))))
    (* allocation *)
    | Ir.New_with_vtable cls_obj ->
        let set = store op.Ir.result in
        let nfields =
          match cls_obj.Value.payload with
          | Value.Class c -> Array.length c.Value.layout
          | _ -> -1
        in
        ordinary i (fun st ->
            if nfields < 0 then Semantics.err "new_with_vtable: not a class";
            set st.st_regs
              (Gc_sim.obj gc
                 (Value.Instance
                    { cls = cls_obj; fields = Array.make nfields Value.nil })))
    | Ir.New_array _ ->
        let fetch = fetch_all op.Ir.args in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            set st.st_regs (Gc_sim.obj gc (Value.Tuple (fetch st.st_regs))))
    | Ir.New_list _ ->
        let fetch = fetch_all op.Ir.args in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            set st.st_regs
              (Value.of_obj (Rlist.create rtc (Array.to_list (fetch st.st_regs)))))
    | Ir.New_cell ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Gc_sim.obj gc (Value.Cell { cell = a0 regs })))
    (* residual calls *)
    | Ir.Call_r rc ->
        let fetch = fetch_all op.Ir.args in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let vals = fetch st.st_regs in
            set st.st_regs
              (Aot.call rtc rc.Ir.aot (fun () -> rc.Ir.run rtc vals)))
    | Ir.Call_n rc ->
        let fetch = fetch_all op.Ir.args in
        ordinary i (fun st ->
            let vals = fetch st.st_regs in
            ignore (Aot.call rtc rc.Ir.aot (fun () -> rc.Ir.run rtc vals)))
    (* pure int ops *)
    | Ir.Int_add -> int_binop i op (fun x y -> Value.of_int (x + y))
    | Ir.Int_sub -> int_binop i op (fun x y -> Value.of_int (x - y))
    | Ir.Int_mul -> int_binop i op (fun x y -> Value.of_int (x * y))
    | Ir.Int_and -> int_binop i op (fun x y -> Value.of_int (x land y))
    | Ir.Int_or -> int_binop i op (fun x y -> Value.of_int (x lor y))
    | Ir.Int_xor -> int_binop i op (fun x y -> Value.of_int (x lxor y))
    | Ir.Int_lshift -> int_binop i op (fun x y -> Value.of_int (x lsl y))
    | Ir.Int_rshift -> int_binop i op (fun x y -> Value.of_int (x asr y))
    | Ir.Int_lt -> int_binop i op (fun x y -> Value.of_bool (x < y))
    | Ir.Int_le -> int_binop i op (fun x y -> Value.of_bool (x <= y))
    | Ir.Int_eq -> int_binop i op (fun x y -> Value.of_bool (x = y))
    | Ir.Int_ne -> int_binop i op (fun x y -> Value.of_bool (x <> y))
    | Ir.Int_gt -> int_binop i op (fun x y -> Value.of_bool (x > y))
    | Ir.Int_ge -> int_binop i op (fun x y -> Value.of_bool (x >= y))
    | Ir.Int_floordiv ->
        int_binop i op (fun x y -> Value.of_int (Rarith.floordiv_int x y))
    | Ir.Int_mod -> int_binop i op (fun x y -> Value.of_int (Rarith.mod_int x y))
    | Ir.Int_neg ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            let x = as_int (a0 regs) in
            if x = min_int then Semantics.err "integer negation overflow"
            else set regs (Value.of_int (-x)))
    | Ir.Int_is_true ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Value.of_bool (as_int (a0 regs) <> 0)))
    | Ir.Int_is_zero ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Value.of_bool (not (Value.truthy (a0 regs)))))
    (* pure float ops *)
    | Ir.Float_add -> float_binop i op (fun x y -> Value.of_float (x +. y))
    | Ir.Float_sub -> float_binop i op (fun x y -> Value.of_float (x -. y))
    | Ir.Float_mul -> float_binop i op (fun x y -> Value.of_float (x *. y))
    | Ir.Float_truediv ->
        let a = getter op.Ir.args.(0) and b = getter op.Ir.args.(1) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            (* divisor converted (and checked) first, like Eval_op *)
            let y = as_float (b regs) in
            if y = 0.0 then raise Division_by_zero
            else set regs (Value.of_float (as_float (a regs) /. y)))
    | Ir.Float_lt -> float_binop i op (fun x y -> Value.of_bool (x < y))
    | Ir.Float_le -> float_binop i op (fun x y -> Value.of_bool (x <= y))
    | Ir.Float_eq -> float_binop i op (fun x y -> Value.of_bool (x = y))
    | Ir.Float_ne -> float_binop i op (fun x y -> Value.of_bool (x <> y))
    | Ir.Float_gt -> float_binop i op (fun x y -> Value.of_bool (x > y))
    | Ir.Float_ge -> float_binop i op (fun x y -> Value.of_bool (x >= y))
    | Ir.Float_neg ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Value.of_float (-.as_float (a0 regs))))
    | Ir.Float_abs ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Value.of_float (Float.abs (as_float (a0 regs)))))
    | Ir.Cast_int_to_float ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Value.of_float (float_of_int (as_int (a0 regs)))))
    | Ir.Cast_float_to_int ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Value.of_int (int_of_float (Float.trunc (as_float (a0 regs))))))
    (* ptr ops *)
    | Ir.Ptr_eq ->
        let a = getter op.Ir.args.(0) and b = getter op.Ir.args.(1) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Value.of_bool (Semantics.identical (a regs) (b regs))))
    | Ir.Ptr_ne ->
        let a = getter op.Ir.args.(0) and b = getter op.Ir.args.(1) in
        let set = store op.Ir.result in
        ordinary i (fun st ->
            let regs = st.st_regs in
            set regs (Value.of_bool (not (Semantics.identical (a regs) (b regs)))))
    | Ir.Same_as ->
        let a0 = getter op.Ir.args.(0) in
        let set = store op.Ir.result in
        ordinary i (fun st -> set st.st_regs (a0 st.st_regs))
    (* str/unicode ops are cold in the bench suite: generic evaluation *)
    | Ir.Str_concat | Ir.Str_eq | Ir.Strlen | Ir.Strgetitem | Ir.Unicode_len
    | Ir.Unicode_getitem ->
        generic i op
  in
  (* superinstruction fusion: compare feeding a truth guard, and the
     int-op + overflow-guard pair the recorder always emits adjacently.
     The guard slot keeps its standalone step so a back-edge landing on
     it (loop_start) still works. *)
  let cmp_test (op : Ir.op) : (Value.t array -> bool) option =
    let a () = getter op.Ir.args.(0) and b () = getter op.Ir.args.(1) in
    match op.Ir.opcode with
    | Ir.Int_lt ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_int (b regs) in as_int (a regs) < y)
    | Ir.Int_le ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_int (b regs) in as_int (a regs) <= y)
    | Ir.Int_eq ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_int (b regs) in as_int (a regs) = y)
    | Ir.Int_ne ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_int (b regs) in as_int (a regs) <> y)
    | Ir.Int_gt ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_int (b regs) in as_int (a regs) > y)
    | Ir.Int_ge ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_int (b regs) in as_int (a regs) >= y)
    | Ir.Int_is_true ->
        let a = a () in
        Some (fun regs -> as_int (a regs) <> 0)
    | Ir.Int_is_zero ->
        let a = a () in
        Some (fun regs -> not (Value.truthy (a regs)))
    | Ir.Float_lt ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_float (b regs) in as_float (a regs) < y)
    | Ir.Float_le ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_float (b regs) in as_float (a regs) <= y)
    | Ir.Float_eq ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_float (b regs) in as_float (a regs) = y)
    | Ir.Float_ne ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_float (b regs) in as_float (a regs) <> y)
    | Ir.Float_gt ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_float (b regs) in as_float (a regs) > y)
    | Ir.Float_ge ->
        let a = a () and b = b () in
        Some (fun regs -> let y = as_float (b regs) in as_float (a regs) >= y)
    | Ir.Ptr_eq ->
        let a = a () and b = b () in
        Some (fun regs -> Semantics.identical (a regs) (b regs))
    | Ir.Ptr_ne ->
        let a = a () and b = b () in
        Some (fun regs -> not (Semantics.identical (a regs) (b regs)))
    | _ -> None
  in
  let fused_cmp_guard i (op : Ir.op) (g : Ir.guard) (test : Value.t array -> bool)
      : step =
    let cost_op = costs.(i) and cost_g = costs.(i + 1) in
    let set = store op.Ir.result in
    let site = 400_000 + (g.Ir.guard_id land 4095) in
    let want = match g.Ir.gkind with Ir.G_true -> true | _ -> false in
    let fail = fail_path g in
    fun st ->
      exec.(i) <- exec.(i) + 1;
      Engine.emit eng cost_op;
      match test st.st_regs with
      | b ->
          set st.st_regs (Value.of_bool b);
          exec.(i + 1) <- exec.(i + 1) + 1;
          Engine.emit eng cost_g;
          if b = want then begin
            Engine.branch eng ~site ~taken:true;
            st.st_ip <- i + 2
          end
          else begin
            Engine.branch eng ~site ~taken:false;
            fail st
          end
      | exception e when lang_errors e -> deopt_boundary st e
  in
  let fused_int_ovf i (op : Ir.op) (g : Ir.guard) : step =
    let a = getter op.Ir.args.(0) and b = getter op.Ir.args.(1) in
    let set = store op.Ir.result in
    let cost_op = costs.(i) and cost_g = costs.(i + 1) in
    let site = 400_000 + (g.Ir.guard_id land 4095) in
    let fail = fail_path g in
    let wrap, checked =
      match op.Ir.opcode with
      | Ir.Int_add -> (( + ), Eval_op.checked_add)
      | Ir.Int_sub -> (( - ), Eval_op.checked_sub)
      | _ -> (( * ), Eval_op.checked_mul)
    in
    fun st ->
      exec.(i) <- exec.(i) + 1;
      Engine.emit eng cost_op;
      let regs = st.st_regs in
      match
        let y = as_int (b regs) in
        let x = as_int (a regs) in
        set regs (Value.of_int (wrap x y));
        (x, y)
      with
      | x, y -> (
          exec.(i + 1) <- exec.(i + 1) + 1;
          Engine.emit eng cost_g;
          match checked x y with
          | (_ : int) ->
              Engine.branch eng ~site ~taken:true;
              st.st_ip <- i + 2
          | exception Eval_op.Overflow ->
              Engine.branch eng ~site ~taken:false;
              fail st)
      | exception e when lang_errors e -> deopt_boundary st e
  in
  let reads_reg (args : Ir.operand array) r =
    Array.exists (function Ir.Reg x -> x = r | Ir.Const _ -> false) args
  in
  let same_args (xs : Ir.operand array) (ys : Ir.operand array) =
    Array.length xs = Array.length ys
    && Array.for_all2
         (fun (x : Ir.operand) (y : Ir.operand) ->
           match (x, y) with
           | Ir.Reg a, Ir.Reg b -> a = b
           | Ir.Const a, Ir.Const b ->
               Value.is_int a && Value.is_int b
               && Value.to_int_unchecked a = Value.to_int_unchecked b
           | _ -> false)
         xs ys
  in
  let fuse i (op : Ir.op) : step option =
    if i + 1 >= n then None
    else
      match ops.(i + 1).Ir.opcode with
      | Ir.Guard g -> (
          let gargs = ops.(i + 1).Ir.args in
          match (g.Ir.gkind, op.Ir.opcode) with
          | (Ir.G_true | Ir.G_false), _
            when op.Ir.result >= 0
                 && same_args gargs [| Ir.Reg op.Ir.result |] -> (
              match cmp_test op with
              | Some test -> Some (fused_cmp_guard i op g test)
              | None -> None)
          | Ir.G_no_ovf_add, Ir.Int_add
          | Ir.G_no_ovf_sub, Ir.Int_sub
          | Ir.G_no_ovf_mul, Ir.Int_mul
            when op.Ir.result >= 0
                 && same_args gargs op.Ir.args
                 && not (reads_reg op.Ir.args op.Ir.result) ->
              Some (fused_int_ovf i op g)
          | _ -> None)
      | _ -> None
  in
  let code =
    Array.init (n + 1) (fun i ->
        if i = n then (fun (_ : state) ->
          invalid_arg "Executor: trace ran off the end")
        else
          let op = ops.(i) in
          match fuse i op with Some s -> s | None -> plain_step i op)
  in
  code

(* --- the per-context trace code cache --- *)

and code_for rtc (jitlog : Jitlog.t) (t : Ir.trace) : step array =
  let cache = Ctx.code_cache rtc in
  match Hashtbl.find_opt cache t.Ir.trace_id with
  | Some (Threaded { th_version; th_code }) when th_version = t.Ir.code_version
    ->
      t.Ir.cache_hits <- t.Ir.cache_hits + 1;
      Jitlog.record_code_cache_hit jitlog;
      th_code
  | _ -> install rtc jitlog t

and install rtc (jitlog : Jitlog.t) (t : Ir.trace) : step array =
  let code = translate rtc jitlog t in
  Hashtbl.replace (Ctx.code_cache rtc) t.Ir.trace_id
    (Threaded { th_version = t.Ir.code_version; th_code = code });
  t.Ir.translations <- t.Ir.translations + 1;
  Jitlog.record_translation jitlog;
  code

let precompile rtc jitlog t = ignore (install rtc jitlog t : step array)

(* --- the threaded main loop --- *)

let run rtc (jitlog : Jitlog.t) ~(trace : Ir.trace) ~(entry : Value.t array) :
    exit_state =
  let eng = Ctx.engine rtc in
  let gc = Ctx.gc rtc in
  let regs = Array.make trace.Ir.nregs Value.nil in
  Array.blit entry 0 regs 0 (Array.length entry);
  let st =
    {
      st_regs = regs;
      st_cur = trace;
      st_code = code_for rtc jitlog trace;
      st_ip = 0;
      st_resume = None;
      st_exit = None;
    }
  in
  (* the live register file is a GC root for the duration *)
  let scanner_id =
    Gc_sim.add_root_scanner gc (fun visit -> Array.iter visit st.st_regs)
  in
  Fun.protect ~finally:(fun () -> Gc_sim.remove_root_scanner gc scanner_id)
  @@ fun () ->
  Engine.annot eng (Annot.Trace_enter trace.Ir.trace_id);
  Jitlog.record_first_entry jitlog ~insns:(Engine.total_insns eng);
  Engine.emit eng entry_cost;
  trace.Ir.exec_count <- trace.Ir.exec_count + 1;
  while st.st_exit == None do
    (Array.unsafe_get st.st_code st.st_ip) st
  done;
  Engine.annot eng (Annot.Trace_exit st.st_cur.Ir.trace_id);
  Option.get st.st_exit
