(** Trace optimizer.

    Runs the passes the RPython optimizer applies to a recorded meta-trace
    (Sec. II; their combined effect is what Figures 6–8 measure):

    - constant folding of pure operations;
    - guard strengthening: a guard implied by an earlier guard on the
      same SSA register (or by a known allocation / integer bounds) is
      removed — sound because a trace is straight-line code;
    - heap load forwarding, invalidated across effectful residual calls
      and aliasing stores;
    - escape analysis: allocations that never escape the trace are
      removed ("virtuals"); guard resume data is rewritten to carry
      materialization descriptors so deoptimization can rebuild them;
    - dead-code elimination of unused pure results;
    - loop peeling ([`Loop] traces only): the trace is duplicated into a
      preamble and a loop body, and facts established by the preamble
      (type shapes, integer bounds) carried over the back-edge let the
      body shed loop-invariant guards.

    Each pass is toggled by a {!Mtj_core.Config} flag, which is what the
    ablation benchmark (`bench/main.exe ablation`) and the differential
    test matrix sweep. *)

val optimize :
  Mtj_core.Config.t ->
  ?kind:[ `Loop | `Bridge ] ->
  Ir.op array ->
  entry_slots:int ->
  Ir.op array * int * int
(** [optimize cfg ~kind ops ~entry_slots] returns
    [(ops', loop_base, loop_start)]: the optimized operations plus, when
    the trace was peeled, the register base the back-edge jump refills
    and the operation index it targets (both [0] otherwise).
    [entry_slots] is the number of registers filled from interpreter
    frame locals on trace entry. Setting [MTJ_VERIFY_TRACES] in the
    environment makes every (intermediate) result run a define-before-use
    check and report dangling registers on stderr. *)
