(** Module-level global bindings with a version counter (PyPy's
    module-dict cells / [guard_not_invalidated]).

    Global lookups in hot code are {e promoted}: the trace records the
    value seen during tracing as a constant, guarded by the dictionary's
    version. To keep that sound without invalidating traces on every
    store, assignment follows PyPy's ModuleDict strategy:

    - a name assigned {e once} is stored directly; traces may treat its
      value as a constant under the version guard, because any
      reassignment converts the binding and bumps the version;
    - a name assigned {e again} is converted to a {e cell} (one final
      version bump); loads of a celled name compile to a runtime cell
      read, and further stores mutate the cell without touching the
      version — a toplevel counter updated in a loop costs one trace
      invalidation ever, not one per iteration. *)

type binding =
  | Direct of Mtj_rt.Value.t         (* assigned once: promotable *)
  | Celled of Mtj_rt.Value.t ref     (* reassigned: runtime reads *)

type t = {
  tbl : (string, binding) Hashtbl.t;
  version : int ref;
}

let create () = { tbl = Hashtbl.create 64; version = ref 0 }

let binding t name = Hashtbl.find_opt t.tbl name

let get t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Direct v) -> Some v
  | Some (Celled c) -> Some !c
  | None -> None

let set t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some (Celled c) -> c := v
  | Some (Direct _) ->
      (* second assignment: convert to a cell; the version bump kills
         every trace that promoted the old value *)
      incr t.version;
      Hashtbl.replace t.tbl name (Celled (ref v))
  | None ->
      incr t.version;
      Hashtbl.replace t.tbl name (Direct v)

(* defining at startup also bumps the version; traces recorded later see
   the settled version *)
let define = set

let scan t visit =
  Hashtbl.iter
    (fun _ b -> match b with Direct v -> visit v | Celled c -> visit !c)
    t.tbl
