(** Trace optimizer.

    Runs the passes the RPython optimizer applies to a recorded meta-trace
    (Sec. II; their combined effect is what Figures 6–8 measure):

    - constant folding of pure operations;
    - guard strengthening: a guard implied by an earlier guard on the same
      SSA register (or by a known allocation) is removed — sound because
      a trace is straight-line code whose entry registers are only
      refreshed by the trailing [jump];
    - heap forwarding: a [getfield]/[getlistitem]/[arraylen]/[getcell]
      whose value is already known from an earlier access is forwarded,
      invalidated across effectful residual calls and aliasing stores;
    - escape analysis: allocations that never escape the trace are
      removed ("virtuals"); guard resume data is rewritten to carry
      materialization descriptors so deoptimization can rebuild them;
    - dead-code elimination of unused pure results.

    Each pass can be toggled from {!Mtj_core.Config} for the ablation
    benchmarks. *)

open Mtj_core

(* keys for heap-forwarding and guard-dedup tables *)
type okey = K_reg of int | K_int of int | K_obj of int | K_none

let okey_of (o : Ir.operand) =
  match o with
  | Ir.Reg r -> K_reg r
  | Ir.Const c ->
      if Mtj_rt.Value.is_int c then K_int (Mtj_rt.Value.to_int_unchecked c)
      else if Mtj_rt.Value.is_obj c then
        K_obj (Mtj_rt.Value.to_obj_unchecked c).Mtj_rt.Value.uid
      else K_none

(* integer value bounds, for RPython-style intbounds guard removal *)
type bounds = { lo : int; hi : int }

(* values stay clear of the 63-bit limits so single operations cannot
   overflow the representation *)
let max_safe = (1 lsl 62) - 1

type env = {
  cfg : Config.t;
  subst : (int, Ir.operand) Hashtbl.t;
  int_bounds : (int, bounds) Hashtbl.t;
  shapes : (int, Ir.tyshape) Hashtbl.t;
  truthy : (int, bool * int) Hashtbl.t;           (* reg -> value, epoch *)
  gvalues : (int, Mtj_rt.Value.t) Hashtbl.t;
  novf_seen : (int * okey * okey, unit) Hashtbl.t;
  idx_seen : (okey * okey, int) Hashtbl.t;        (* -> epoch *)
  mutable gver_seen : (int ref * int) list;       (* epoch-free: see note *)
  heap_fields : (okey * int, Ir.operand) Hashtbl.t;
  heap_items : (okey * okey, Ir.operand) Hashtbl.t;
  heap_lens : (okey, Ir.operand) Hashtbl.t;
  heap_cells : (okey, Ir.operand) Hashtbl.t;
  mutable epoch : int;
}

let make_env cfg =
  {
    cfg;
    subst = Hashtbl.create 64;
    int_bounds = Hashtbl.create 64;
    shapes = Hashtbl.create 64;
    truthy = Hashtbl.create 64;
    gvalues = Hashtbl.create 16;
    novf_seen = Hashtbl.create 32;
    idx_seen = Hashtbl.create 32;
    gver_seen = [];
    heap_fields = Hashtbl.create 64;
    heap_items = Hashtbl.create 64;
    heap_lens = Hashtbl.create 32;
    heap_cells = Hashtbl.create 16;
    epoch = 0;
  }

let resolve env (o : Ir.operand) =
  match o with
  | Ir.Reg r -> (
      match Hashtbl.find_opt env.subst r with Some o' -> o' | None -> o)
  | Ir.Const _ -> o

let const_of = function Ir.Const v -> Some v | Ir.Reg _ -> None

let clear_heap env =
  Hashtbl.reset env.heap_fields;
  Hashtbl.reset env.heap_items;
  Hashtbl.reset env.heap_lens;
  Hashtbl.reset env.heap_cells

let bump_effect env =
  env.epoch <- env.epoch + 1

(* shape of a constant value, for dropping guards on constants *)
let shape_of_const (v : Mtj_rt.Value.t) : Ir.tyshape option =
  match Mtj_rt.Value.view v with
  | Mtj_rt.Value.Int _ -> Some Ir.Ty_int
  | Mtj_rt.Value.Float _ -> Some Ir.Ty_float
  | Mtj_rt.Value.Str _ -> Some Ir.Ty_str
  | Mtj_rt.Value.Bool _ -> Some Ir.Ty_bool
  | Mtj_rt.Value.Nil -> Some Ir.Ty_nil
  | Mtj_rt.Value.Obj o -> (
      match o.Mtj_rt.Value.payload with
      | Mtj_rt.Value.Instance i ->
          Some (Ir.Ty_instance_of i.Mtj_rt.Value.cls.Mtj_rt.Value.uid)
      | Mtj_rt.Value.Func f -> Some (Ir.Ty_func_code f.Mtj_rt.Value.code_ref)
      | Mtj_rt.Value.Class _ -> Some (Ir.Ty_class o.Mtj_rt.Value.uid)
      | Mtj_rt.Value.List _ -> Some Ir.Ty_list
      | Mtj_rt.Value.Dict _ -> Some Ir.Ty_dict
      | Mtj_rt.Value.Set _ -> Some Ir.Ty_set
      | Mtj_rt.Value.Tuple _ -> Some Ir.Ty_tuple
      | Mtj_rt.Value.Bigint _ -> Some Ir.Ty_bigint
      | Mtj_rt.Value.Cell _ -> Some Ir.Ty_cell
      | Mtj_rt.Value.Strbuilder _ -> Some Ir.Ty_builder
      | Mtj_rt.Value.Method _ -> Some Ir.Ty_method
      | Mtj_rt.Value.Range _ -> Some Ir.Ty_range)

(* shape established by an allocation opcode *)
let shape_of_new (opc : Ir.opcode) : Ir.tyshape option =
  match opc with
  | Ir.New_with_vtable cls ->
      Some (Ir.Ty_instance_of cls.Mtj_rt.Value.uid)
  | Ir.New_array _ -> Some Ir.Ty_tuple
  | Ir.New_list _ -> Some Ir.Ty_list
  | Ir.New_cell -> Some Ir.Ty_cell
  | _ -> None

(* --- intbounds: a light version of RPython's integer-bounds pass.
   Bounds are tracked per SSA register; an overflow guard whose operands'
   ranges cannot overflow is removed (the bulk of RPython's
   guard-strengthening wins on arithmetic code). --- *)

let bounds_of env (o : Ir.operand) : bounds option =
  match o with
  | Ir.Const c ->
      if Mtj_rt.Value.is_int c then
        let i = Mtj_rt.Value.to_int_unchecked c in
        Some { lo = i; hi = i }
      else if Mtj_rt.Value.is_bool c then Some { lo = 0; hi = 1 }
      else None
  | Ir.Reg r -> Hashtbl.find_opt env.int_bounds r

let bounds_safe b = b.lo > -max_safe && b.hi < max_safe

(* saturating interval arithmetic *)
let sat v = if v > max_safe then max_safe else if v < -max_safe then -max_safe else v

let badd a b =
  { lo = sat (a.lo + b.lo); hi = sat (a.hi + b.hi) }

let bsub a b =
  { lo = sat (a.lo - b.hi); hi = sat (a.hi - b.lo) }

let bmul a b =
  let cands = [ a.lo * b.lo; a.lo * b.hi; a.hi * b.lo; a.hi * b.hi ] in
  (* only trust the product when the factors are small enough that the
     native multiply cannot have wrapped *)
  if
    max (abs a.lo) (abs a.hi) < (1 lsl 31)
    && max (abs b.lo) (abs b.hi) < (1 lsl 31)
  then
    Some
      {
        lo = List.fold_left min max_int cands;
        hi = List.fold_left max min_int cands;
      }
  else None

(* record the result bounds of an integer op; returns whether a
   following overflow guard is redundant *)
let learn_bounds env (op : Ir.op) (args : Ir.operand array) =
  let set b = Hashtbl.replace env.int_bounds op.Ir.result b in
  if op.Ir.result >= 0 then
    match op.Ir.opcode with
    | Ir.Int_add -> (
        match (bounds_of env args.(0), bounds_of env args.(1)) with
        | Some a, Some b ->
            let r = badd a b in
            if bounds_safe r then set r
        | _ -> ())
    | Ir.Int_sub -> (
        match (bounds_of env args.(0), bounds_of env args.(1)) with
        | Some a, Some b ->
            let r = bsub a b in
            if bounds_safe r then set r
        | _ -> ())
    | Ir.Int_mul -> (
        match (bounds_of env args.(0), bounds_of env args.(1)) with
        | Some a, Some b -> (
            match bmul a b with
            | Some r when bounds_safe r -> set r
            | _ -> ())
        | _ -> ())
    | Ir.Int_mod -> (
        (* Python modulo takes the divisor's sign *)
        match bounds_of env args.(1) with
        | Some b when b.lo > 0 -> set { lo = 0; hi = b.hi - 1 }
        | Some b when b.hi < 0 -> set { lo = b.lo + 1; hi = 0 }
        | _ -> ())
    | Ir.Int_and -> (
        match (bounds_of env args.(0), bounds_of env args.(1)) with
        | Some a, _ when a.lo >= 0 -> set { lo = 0; hi = a.hi }
        | _, Some b when b.lo >= 0 -> set { lo = 0; hi = b.hi }
        | _ -> ())
    | Ir.Arraylen | Ir.Strlen | Ir.Unicode_len ->
        set { lo = 0; hi = 1 lsl 40 }
    | Ir.Int_rshift -> (
        match bounds_of env args.(0) with
        | Some a when a.lo >= 0 -> set { lo = 0; hi = a.hi }
        | _ -> ())
    | _ -> ()

(* does this overflow guard's arithmetic provably stay in range? *)
let ovf_redundant env gkind (args : Ir.operand array) =
  match (bounds_of env args.(0), bounds_of env args.(1)) with
  | Some a, Some b -> (
      match gkind with
      | Ir.G_no_ovf_add -> bounds_safe (badd a b)
      | Ir.G_no_ovf_sub -> bounds_safe (bsub a b)
      | Ir.G_no_ovf_mul -> (
          match bmul a b with Some r -> bounds_safe r | None -> false)
      | _ -> false)
  | _ -> false

(* --- pass 1: fold / guard-elim / forwarding --- *)

(* returns `Keep op | `Drop; updates env *)
let guard_step env (g : Ir.guard) (args : Ir.operand array) =
  let dedup = env.cfg.Config.opt_guard_elim in
  match (g.Ir.gkind, args) with
  | Ir.G_class sh, [| Ir.Const v |] ->
      if shape_of_const v = Some sh then `Drop else `Keep
  | Ir.G_class sh, [| Ir.Reg r |] ->
      if dedup && Hashtbl.find_opt env.shapes r = Some sh then `Drop
      else begin
        Hashtbl.replace env.shapes r sh;
        `Keep
      end
  | Ir.G_value v, [| Ir.Const c |] ->
      if Mtj_rt.Value.py_eq v c then `Drop else `Keep
  | Ir.G_value v, [| Ir.Reg r |] ->
      let known =
        match Hashtbl.find_opt env.gvalues r with
        | Some v' -> v' == v || Mtj_rt.Value.py_eq v' v
        | None -> false
      in
      if dedup && known then `Drop
      else begin
        Hashtbl.replace env.gvalues r v;
        (match shape_of_const v with
        | Some sh -> Hashtbl.replace env.shapes r sh
        | None -> ());
        (* NOTE: the register is NOT substituted by the constant — the
           substitution table is applied position-independently by the
           virtuals pass, and entry registers are refreshed by [jump],
           so pinning here would corrupt earlier uses and the back-edge.
           (Promotion already made future *recorded* uses constants at
           trace-recording time.) *)
        `Keep
      end
  | (Ir.G_true | Ir.G_false), [| Ir.Const v |] ->
      ignore v;
      `Drop
  | (Ir.G_true | Ir.G_false), [| Ir.Reg r |] ->
      let b = g.Ir.gkind = Ir.G_true in
      let stable_fact =
        match Hashtbl.find_opt env.truthy r with
        | Some (b', epoch) -> b' = b && epoch = env.epoch
        | None -> false
      in
      if dedup && stable_fact then `Drop
      else begin
        Hashtbl.replace env.truthy r (b, env.epoch);
        `Keep
      end
  | (Ir.G_no_ovf_add | Ir.G_no_ovf_sub | Ir.G_no_ovf_mul), [| a; b |] ->
      if dedup && ovf_redundant env g.Ir.gkind args then `Drop
      else begin
        let tag =
          match g.Ir.gkind with
          | Ir.G_no_ovf_add -> 0
          | Ir.G_no_ovf_sub -> 1
          | _ -> 2
        in
        let ka = okey_of a and kb = okey_of b in
        if ka = K_none || kb = K_none then `Keep
        else if dedup && Hashtbl.mem env.novf_seen (tag, ka, kb) then `Drop
        else begin
          Hashtbl.replace env.novf_seen (tag, ka, kb) ();
          `Keep
        end
      end
  | Ir.G_index_lt, [| idx; len |] ->
      let ki = okey_of idx and kl = okey_of len in
      if ki = K_none || kl = K_none then `Keep
      else if
        dedup && Hashtbl.find_opt env.idx_seen (ki, kl) = Some env.epoch
      then `Drop
      else begin
        Hashtbl.replace env.idx_seen (ki, kl) env.epoch;
        `Keep
      end
  | Ir.G_global_version (cell, ver), _ ->
      let seen =
        List.exists (fun (c, v) -> c == cell && v = ver) env.gver_seen
      in
      if dedup && seen then `Drop
      else begin
        env.gver_seen <- (cell, ver) :: env.gver_seen;
        `Keep
      end
  | Ir.G_nonnull, [| Ir.Const _ |] -> `Drop
  | Ir.G_nonnull, [| Ir.Reg r |] ->
      if dedup && Hashtbl.mem env.shapes r then `Drop else `Keep
  | _, _ -> `Keep

let pass_fold_forward ?(seed_shapes = []) ?(seed_bounds = []) cfg
    (ops : Ir.op array) =
  let env = make_env cfg in
  List.iter (fun (r, sh) -> Hashtbl.replace env.shapes r sh) seed_shapes;
  List.iter (fun (r, b) -> Hashtbl.replace env.int_bounds r b) seed_bounds;
  let out = ref [] in
  let keep (op : Ir.op) =
    (* every kept op teaches the env its result's type shape and integer
       bounds, so later guards on it can be elided and loop peeling can
       transfer the facts across the back-edge *)
    if op.Ir.result >= 0 then begin
      (match Ir.result_shape op.Ir.opcode with
      | Some sh -> Hashtbl.replace env.shapes op.Ir.result sh
      | None -> ());
      learn_bounds env op op.Ir.args
    end;
    out := op :: !out
  in
  Array.iter
    (fun (op : Ir.op) ->
      let args = Array.map (resolve env) op.Ir.args in
      let op = { op with Ir.args = args } in
      match op.Ir.opcode with
      | Ir.Guard g -> (
          match guard_step env g args with
          | `Keep -> keep op
          | `Drop -> ())
      | Ir.Setfield_gc idx ->
          bump_effect env;
          let ko = okey_of args.(0) in
          (* kill aliasing entries for this field index *)
          Hashtbl.iter
            (fun (k, i) _ ->
              if i = idx && k <> ko then
                Hashtbl.remove env.heap_fields (k, i))
            (Hashtbl.copy env.heap_fields);
          if env.cfg.Config.opt_forward && ko <> K_none then
            Hashtbl.replace env.heap_fields (ko, idx) args.(1);
          keep op
      | Ir.Getfield_gc idx ->
          let ko = okey_of args.(0) in
          let hit =
            if env.cfg.Config.opt_forward && ko <> K_none then
              Hashtbl.find_opt env.heap_fields (ko, idx)
            else None
          in
          (match hit with
          | Some fwd -> Hashtbl.replace env.subst op.Ir.result fwd
          | None ->
              if env.cfg.Config.opt_forward && ko <> K_none then
                Hashtbl.replace env.heap_fields (ko, idx)
                  (Ir.Reg op.Ir.result);
              keep op)
      | Ir.Setlistitem ->
          bump_effect env;
          Hashtbl.reset env.heap_items;
          let kc = okey_of args.(0) and ki = okey_of args.(1) in
          if env.cfg.Config.opt_forward && kc <> K_none && ki <> K_none then
            Hashtbl.replace env.heap_items (kc, ki) args.(2);
          keep op
      | Ir.Getlistitem | Ir.Getarrayitem_gc ->
          let kc = okey_of args.(0) and ki = okey_of args.(1) in
          let hit =
            if env.cfg.Config.opt_forward && kc <> K_none && ki <> K_none
            then Hashtbl.find_opt env.heap_items (kc, ki)
            else None
          in
          (match hit with
          | Some fwd -> Hashtbl.replace env.subst op.Ir.result fwd
          | None ->
              if env.cfg.Config.opt_forward && kc <> K_none && ki <> K_none
              then
                Hashtbl.replace env.heap_items (kc, ki) (Ir.Reg op.Ir.result);
              keep op)
      | Ir.Arraylen | Ir.Strlen | Ir.Unicode_len -> (
          let kc = okey_of args.(0) in
          let hit =
            if env.cfg.Config.opt_forward && kc <> K_none then
              Hashtbl.find_opt env.heap_lens kc
            else None
          in
          match hit with
          | Some fwd -> Hashtbl.replace env.subst op.Ir.result fwd
          | None ->
              (match const_of args.(0) with
              | Some c
                when env.cfg.Config.opt_fold
                     && (match op.Ir.opcode with
                        | Ir.Strlen | Ir.Unicode_len -> true
                        | _ -> false)
                     && Mtj_rt.Value.is_str c ->
                  (* lengths of constant strings fold away *)
                  Hashtbl.replace env.subst op.Ir.result
                    (Ir.Const
                       (Mtj_rt.Value.of_int
                          (String.length (Mtj_rt.Value.to_str_unchecked c))))
              | _ ->
                  if kc <> K_none && env.cfg.Config.opt_forward then
                    Hashtbl.replace env.heap_lens kc (Ir.Reg op.Ir.result);
                  keep op))
      | Ir.Getcell -> (
          let kc = okey_of args.(0) in
          match
            if env.cfg.Config.opt_forward && kc <> K_none then
              Hashtbl.find_opt env.heap_cells kc
            else None
          with
          | Some fwd -> Hashtbl.replace env.subst op.Ir.result fwd
          | None ->
              if env.cfg.Config.opt_forward && kc <> K_none then
                Hashtbl.replace env.heap_cells kc (Ir.Reg op.Ir.result);
              keep op)
      | Ir.Setcell ->
          bump_effect env;
          Hashtbl.reset env.heap_cells;
          let kc = okey_of args.(0) in
          if env.cfg.Config.opt_forward && kc <> K_none then
            Hashtbl.replace env.heap_cells kc args.(1);
          keep op
      | Ir.Call_r c ->
          if c.Ir.effectful then begin
            bump_effect env;
            clear_heap env
          end;
          keep op
      | Ir.Call_n c ->
          if c.Ir.effectful then begin
            bump_effect env;
            clear_heap env
          end;
          keep op
      | Ir.Call_assembler _ ->
          bump_effect env;
          clear_heap env;
          keep op
      | Ir.Same_as when env.cfg.Config.opt_fold ->
          Hashtbl.replace env.subst op.Ir.result args.(0)
      | opc when shape_of_new opc <> None ->
          (match shape_of_new opc with
          | Some sh -> Hashtbl.replace env.shapes op.Ir.result sh
          | None -> ());
          (* a fresh instance/tuple/cell is always truthy *)
          (match opc with
          | Ir.New_with_vtable _ | Ir.New_cell ->
              Hashtbl.replace env.truthy op.Ir.result (true, env.epoch)
          | _ -> ());
          keep op
      | opc
        when env.cfg.Config.opt_fold && Eval_op.foldable opc
             && Array.for_all (fun a -> const_of a <> None) args -> (
          let values =
            Array.map (fun a -> Option.get (const_of a)) args
          in
          match Eval_op.eval opc values with
          | v -> Hashtbl.replace env.subst op.Ir.result (Ir.Const v)
          | exception _ -> keep op)
      | _ -> keep op)
    ops;
  (Array.of_list (List.rev !out), env)

(* --- pass 2: escape analysis / virtuals --- *)

module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type vstate = {
  v_opcode : Ir.opcode;
  mutable v_fields : Ir.operand IntMap.t;  (* field/element index -> value *)
  v_len : int;  (* static element count for arrays/lists; -1 for instances *)
}

let new_candidates (ops : Ir.op array) =
  Array.to_seq ops
  |> Seq.filter_map (fun (op : Ir.op) ->
         match op.Ir.opcode with
         | Ir.New_with_vtable _ | Ir.New_array _ | Ir.New_list _
         | Ir.New_cell ->
             Some op.Ir.result
         | _ -> None)
  |> IntSet.of_seq

let compute_escapes (ops : Ir.op array) candidates =
  (* stores into (possibly virtual) targets: target reg -> stored operands *)
  let stores : (int, Ir.operand list ref) Hashtbl.t = Hashtbl.create 16 in
  let escaped = ref IntSet.empty in
  let escape_op (o : Ir.operand) =
    match o with
    | Ir.Reg r when IntSet.mem r candidates ->
        escaped := IntSet.add r !escaped
    | _ -> ()
  in
  let record_store target v =
    match target with
    | Ir.Reg r when IntSet.mem r candidates ->
        let l =
          match Hashtbl.find_opt stores r with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace stores r l;
              l
        in
        l := v :: !l
    | _ -> escape_op v
  in
  Array.iter
    (fun (op : Ir.op) ->
      match op.Ir.opcode with
      | Ir.Getfield_gc _ | Ir.Getcell | Ir.Arraylen -> ()
      | Ir.Getarrayitem_gc | Ir.Getlistitem -> (
          (* dynamic-index reads of a virtual cannot be resolved *)
          match (op.Ir.args.(0), op.Ir.args.(1)) with
          | Ir.Reg r, Ir.Const c
            when IntSet.mem r candidates && Mtj_rt.Value.is_int c ->
              ()
          | target, _ -> escape_op target)
      | Ir.Setfield_gc _ -> record_store op.Ir.args.(0) op.Ir.args.(1)
      | Ir.Setcell -> record_store op.Ir.args.(0) op.Ir.args.(1)
      | Ir.Setlistitem -> (
          match (op.Ir.args.(0), op.Ir.args.(1)) with
          | (Ir.Reg r as t), Ir.Const c
            when IntSet.mem r candidates && Mtj_rt.Value.is_int c ->
              record_store t op.Ir.args.(2)
          | t, _ ->
              escape_op t;
              escape_op op.Ir.args.(2))
      | Ir.Guard _ -> Array.iter escape_op op.Ir.args
      | Ir.New_with_vtable _ | Ir.New_array _ | Ir.New_list _ | Ir.New_cell
        ->
          (* initial elements of arrays/lists/cells count as stores *)
          Array.iter (fun v -> record_store (Ir.Reg op.Ir.result) v) op.Ir.args
      | Ir.Debug_merge_point _ | Ir.Label -> ()
      | _ -> Array.iter escape_op op.Ir.args)
    ops;
  (* fixpoint: everything stored into an escaping virtual escapes too *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun target values ->
        if IntSet.mem target !escaped then
          List.iter
            (fun v ->
              match v with
              | Ir.Reg r
                when IntSet.mem r candidates && not (IntSet.mem r !escaped)
                ->
                  escaped := IntSet.add r !escaped;
                  changed := true
              | _ -> ())
            !values)
      stores
  done;
  (match Sys.getenv_opt "MTJ_DEBUG_ESCAPE" with
  | Some tgt ->
      let r = int_of_string tgt in
      if IntSet.mem r candidates then begin
        Printf.eprintf "ESCAPE[%d ops]: r%d candidate=%b escaped=%b\n"
          (Array.length ops) r true (IntSet.mem r !escaped);
        Hashtbl.iter
          (fun target values ->
            if List.exists (function Ir.Reg x -> x = r | _ -> false) !values
            then
              Printf.eprintf "  stored into r%d (candidate=%b escaped=%b)\n"
                target (IntSet.mem target candidates)
                (IntSet.mem target !escaped))
          stores
      end
  | None -> ());
  !escaped

(* debug bisection hook: cap how many allocations may be virtualized *)
let max_virtuals =
  match Sys.getenv_opt "MTJ_MAX_VIRTUALS" with
  | Some s -> (try int_of_string s with _ -> max_int)
  | None -> max_int

(* shared across domains; only consulted when MTJ_MAX_VIRTUALS is set,
   so an atomic is plenty *)
let virtuals_seen = Atomic.make 0

let pass_virtuals_once cfg (ops : Ir.op array)
    (subst0 : (int, Ir.operand) Hashtbl.t) ~(forced : IntSet.t) =
  let subst = Hashtbl.copy subst0 in
  (* virtual-read substitutions can chain (a getcell of a value that was
     itself read out of a virtual), so resolution must be transitive *)
  let rec resolve_chain (o : Ir.operand) =
    match o with
    | Ir.Reg r -> (
        match Hashtbl.find_opt subst r with
        | Some (Ir.Reg r') when r' <> r -> resolve_chain (Ir.Reg r')
        | Some o' -> o'
        | None -> o)
    | Ir.Const _ -> o
  in
  let candidates =
    if cfg.Config.opt_virtuals then IntSet.diff (new_candidates ops) forced
    else IntSet.empty
  in
  let escaped = compute_escapes ops candidates in
  let virtuals = IntSet.diff candidates escaped in
  let virtuals =
    if max_virtuals = max_int then virtuals
    else
      IntSet.filter
        (fun r ->
          let keep = 1 + Atomic.fetch_and_add virtuals_seen 1 <= max_virtuals in
          if keep && Sys.getenv_opt "MTJ_DEBUG_VIRTUALS" <> None then begin
            Printf.eprintf "VIRTUALIZING reg %d in trace of %d ops\n"
              r (Array.length ops);
            Array.iteri
              (fun i (op : Ir.op) ->
                let uses =
                  op.Ir.result = r
                  || Array.exists
                       (function Ir.Reg x -> x = r | _ -> false)
                       op.Ir.args
                in
                if uses then
                  Printf.eprintf "   op %d: %s\n" i
                    (Format.asprintf "%a" Ir.pp_op op))
              ops
          end;
          keep)
        virtuals
  in
  let vstates : (int, vstate) Hashtbl.t = Hashtbl.create 16 in
  let is_virtual = function
    | Ir.Reg r -> IntSet.mem r virtuals
    | Ir.Const _ -> false
  in
  (* capture a resume record, rewriting substituted regs and virtuals *)
  let resume_memo : (Ir.resume * Ir.resume) list ref = ref [] in
  let capture_resume (resume : Ir.resume) : Ir.resume =
    match List.assq_opt resume !resume_memo with
    | Some r -> r
    | None ->
        let vdescs = ref [] in
        let nv = ref 0 in
        let vindex : (int, int) Hashtbl.t = Hashtbl.create 8 in
        let rec source_of (o : Ir.operand) : Ir.source =
          let o = resolve_chain o in
          match o with
          | Ir.Const v -> Ir.S_const v
          | Ir.Reg r when IntSet.mem r virtuals -> Ir.S_virtual (vreg r)
          | Ir.Reg r -> Ir.S_reg r
        and vreg r =
          match Hashtbl.find_opt vindex r with
          | Some i -> i
          | None ->
              let i = !nv in
              incr nv;
              Hashtbl.replace vindex r i;
              (* reserve the slot before recursing (cyclic structures) *)
              vdescs := (i, ref None) :: !vdescs;
              let st = Hashtbl.find vstates r in
              let fields n =
                Array.init n (fun k ->
                    match IntMap.find_opt k st.v_fields with
                    | Some o -> source_of o
                    | None -> Ir.S_const Mtj_rt.Value.nil)
              in
              let desc =
                match st.v_opcode with
                | Ir.New_with_vtable cls ->
                    let nfields =
                      match IntMap.max_binding_opt st.v_fields with
                      | Some (k, _) -> k + 1
                      | None -> 0
                    in
                    Ir.V_instance { v_cls = cls; v_fields = fields nfields }
                | Ir.New_array n -> Ir.V_tuple (fields n)
                | Ir.New_list n -> Ir.V_list (fields n)
                | Ir.New_cell -> Ir.V_cell (source_of (IntMap.find 0 st.v_fields))
                | _ -> assert false
              in
              (match List.assoc_opt i !vdescs with
              | Some slot -> slot := Some desc
              | None -> ());
              i
        in
        let rewrite_source (s : Ir.source) =
          match s with
          | Ir.S_reg r -> source_of (Ir.Reg r)
          | Ir.S_const _ | Ir.S_virtual _ -> s
        in
        let snap_frame (f : Ir.frame_snap) =
          {
            f with
            Ir.snap_locals = Array.map rewrite_source f.Ir.snap_locals;
            Ir.snap_stack = Array.map rewrite_source f.Ir.snap_stack;
          }
        in
        let frames = List.map snap_frame resume.Ir.frames in
        let arr =
          Array.init !nv (fun i ->
              match List.assoc_opt i !vdescs with
              | Some { contents = Some d } -> d
              | _ -> Ir.V_tuple [||])
        in
        let r = { Ir.frames; r_virtuals = arr } in
        resume_memo := (resume, r) :: !resume_memo;
        r
  in
  let out = ref [] in
  let keep op = out := op :: !out in
  Array.iter
    (fun (op : Ir.op) ->
      match op.Ir.opcode with
      | (Ir.New_with_vtable _ | Ir.New_array _ | Ir.New_list _ | Ir.New_cell)
        when IntSet.mem op.Ir.result virtuals ->
          let fields =
            Array.to_list op.Ir.args
            |> List.mapi (fun i a -> (i, resolve_chain a))
            |> List.fold_left (fun m (i, a) -> IntMap.add i a m) IntMap.empty
          in
          Hashtbl.replace vstates op.Ir.result
            {
              v_opcode = op.Ir.opcode;
              v_fields = fields;
              v_len = Array.length op.Ir.args;
            }
      | Ir.Setfield_gc idx when is_virtual op.Ir.args.(0) -> (
          match op.Ir.args.(0) with
          | Ir.Reg r ->
              let st = Hashtbl.find vstates r in
              st.v_fields <-
                IntMap.add idx (resolve_chain op.Ir.args.(1)) st.v_fields
          | Ir.Const _ -> assert false)
      | Ir.Setcell when is_virtual op.Ir.args.(0) -> (
          match op.Ir.args.(0) with
          | Ir.Reg r ->
              let st = Hashtbl.find vstates r in
              st.v_fields <-
                IntMap.add 0 (resolve_chain op.Ir.args.(1)) st.v_fields
          | Ir.Const _ -> assert false)
      | Ir.Setlistitem when is_virtual op.Ir.args.(0) -> (
          match (op.Ir.args.(0), op.Ir.args.(1)) with
          | Ir.Reg r, Ir.Const c when Mtj_rt.Value.is_int c ->
              let idx = Mtj_rt.Value.to_int_unchecked c in
              let st = Hashtbl.find vstates r in
              st.v_fields <-
                IntMap.add idx (resolve_chain op.Ir.args.(2)) st.v_fields
          | _ -> assert false)
      | (Ir.Getfield_gc idx) when is_virtual op.Ir.args.(0) -> (
          match op.Ir.args.(0) with
          | Ir.Reg r ->
              let st = Hashtbl.find vstates r in
              let v =
                match IntMap.find_opt idx st.v_fields with
                | Some o -> o
                | None -> Ir.Const Mtj_rt.Value.nil
              in
              Hashtbl.replace subst op.Ir.result v
          | Ir.Const _ -> assert false)
      | Ir.Getcell when is_virtual op.Ir.args.(0) -> (
          match op.Ir.args.(0) with
          | Ir.Reg r ->
              let st = Hashtbl.find vstates r in
              Hashtbl.replace subst op.Ir.result (IntMap.find 0 st.v_fields)
          | Ir.Const _ -> assert false)
      | (Ir.Getarrayitem_gc | Ir.Getlistitem)
        when is_virtual op.Ir.args.(0) -> (
          match (op.Ir.args.(0), op.Ir.args.(1)) with
          | Ir.Reg r, Ir.Const c when Mtj_rt.Value.is_int c ->
              let idx = Mtj_rt.Value.to_int_unchecked c in
              let st = Hashtbl.find vstates r in
              let v =
                match IntMap.find_opt idx st.v_fields with
                | Some o -> o
                | None -> Ir.Const Mtj_rt.Value.nil
              in
              Hashtbl.replace subst op.Ir.result v
          | _ -> assert false)
      | Ir.Arraylen when is_virtual op.Ir.args.(0) -> (
          match op.Ir.args.(0) with
          | Ir.Reg r ->
              let st = Hashtbl.find vstates r in
              Hashtbl.replace subst op.Ir.result
                (Ir.Const (Mtj_rt.Value.of_int st.v_len))
          | Ir.Const _ -> assert false)
      | Ir.Guard g ->
          let args = Array.map resolve_chain op.Ir.args in
          keep
            {
              op with
              Ir.opcode = Ir.Guard { g with Ir.resume = capture_resume g.Ir.resume };
              args;
            }
      | Ir.Debug_merge_point d ->
          keep
            {
              op with
              Ir.opcode =
                Ir.Debug_merge_point
                  { d with dmp_resume = capture_resume d.dmp_resume };
            }
      | _ ->
          let args = Array.map resolve_chain op.Ir.args in
          keep { op with Ir.args })
    ops;
  (Array.of_list (List.rev !out), virtuals)

(* regs from [removed] still referenced by the output (dangling uses):
   the escape analysis runs before virtual-read forwarding, so a value
   read back out of one virtual and stored into an escaping location can
   be missed on the first attempt; such allocations are forced to escape
   and the pass retried *)
let dangling_uses (ops : Ir.op array) (removed : IntSet.t) =
  let found = ref IntSet.empty in
  let check_operand = function
    | Ir.Reg r when IntSet.mem r removed -> found := IntSet.add r !found
    | _ -> ()
  in
  let check_src = function
    | Ir.S_reg r when IntSet.mem r removed -> found := IntSet.add r !found
    | _ -> ()
  in
  let check_resume (r : Ir.resume) =
    List.iter
      (fun (f : Ir.frame_snap) ->
        Array.iter check_src f.Ir.snap_locals;
        Array.iter check_src f.Ir.snap_stack)
      r.Ir.frames;
    Array.iter
      (function
        | Ir.V_instance { v_fields; _ } -> Array.iter check_src v_fields
        | Ir.V_tuple a | Ir.V_list a -> Array.iter check_src a
        | Ir.V_cell sc -> check_src sc)
      r.Ir.r_virtuals
  in
  Array.iter
    (fun (op : Ir.op) ->
      Array.iter check_operand op.Ir.args;
      match op.Ir.opcode with
      | Ir.Guard g -> check_resume g.Ir.resume
      | Ir.Debug_merge_point d -> check_resume d.dmp_resume
      | _ -> ())
    ops;
  !found

let pass_virtuals cfg (ops : Ir.op array) (subst : (int, Ir.operand) Hashtbl.t) =
  let rec go forced =
    let out, virtuals = pass_virtuals_once cfg ops subst ~forced in
    let dangling = dangling_uses out virtuals in
    if IntSet.is_empty dangling then out
    else go (IntSet.union forced dangling)
  in
  go IntSet.empty

(* --- pass 3: dead code elimination (reverse walk) --- *)

let pass_dce (ops : Ir.op array) =
  let used = Hashtbl.create 128 in
  let use (o : Ir.operand) =
    match o with Ir.Reg r -> Hashtbl.replace used r () | Ir.Const _ -> ()
  in
  let use_source (s : Ir.source) =
    match s with Ir.S_reg r -> Hashtbl.replace used r () | _ -> ()
  in
  let use_resume (r : Ir.resume) =
    List.iter
      (fun (f : Ir.frame_snap) ->
        Array.iter use_source f.Ir.snap_locals;
        Array.iter use_source f.Ir.snap_stack)
      r.Ir.frames;
    Array.iter
      (function
        | Ir.V_instance { v_fields; _ } -> Array.iter use_source v_fields
        | Ir.V_tuple a | Ir.V_list a -> Array.iter use_source a
        | Ir.V_cell s -> use_source s)
      r.Ir.r_virtuals
  in
  let kept = ref [] in
  for i = Array.length ops - 1 downto 0 do
    let op = ops.(i) in
    let needed =
      (not (Eval_op.removable op))
      || (op.Ir.result >= 0 && Hashtbl.mem used op.Ir.result)
    in
    if needed then begin
      Array.iter use op.Ir.args;
      (match op.Ir.opcode with
      | Ir.Guard g -> use_resume g.Ir.resume
      | Ir.Debug_merge_point d -> use_resume d.dmp_resume
      | _ -> ());
      kept := op :: !kept
    end
  done;
  Array.of_list !kept

(* --- loop peeling (RPython's preamble + loop structure) ---

   The recorded trace is duplicated: the first copy (the preamble) runs
   once per entry and establishes facts; the second copy (the loop) is
   optimized under facts that provably hold at {e every} arrival of the
   back-edge — computed as a shrink-only fixpoint over the types and
   integer bounds of the values the jumps carry.  Loop-invariant type
   and overflow guards then survive only in the preamble. *)

let remap_operand k (o : Ir.operand) =
  match o with Ir.Reg r -> Ir.Reg (r + k) | Ir.Const _ -> o

let remap_source k (src : Ir.source) =
  match src with
  | Ir.S_reg r -> Ir.S_reg (r + k)
  | Ir.S_const _ | Ir.S_virtual _ -> src

let remap_vdesc k = function
  | Ir.V_instance { v_cls; v_fields } ->
      Ir.V_instance { v_cls; v_fields = Array.map (remap_source k) v_fields }
  | Ir.V_tuple a -> Ir.V_tuple (Array.map (remap_source k) a)
  | Ir.V_list a -> Ir.V_list (Array.map (remap_source k) a)
  | Ir.V_cell s -> Ir.V_cell (remap_source k s)

let remap_resume k (r : Ir.resume) =
  {
    Ir.frames =
      List.map
        (fun (f : Ir.frame_snap) ->
          {
            f with
            Ir.snap_locals = Array.map (remap_source k) f.Ir.snap_locals;
            snap_stack = Array.map (remap_source k) f.Ir.snap_stack;
          })
        r.Ir.frames;
    r_virtuals = Array.map (remap_vdesc k) r.Ir.r_virtuals;
  }

let remap_op k (op : Ir.op) : Ir.op =
  let opcode =
    match op.Ir.opcode with
    | Ir.Guard g ->
        Ir.Guard
          {
            Ir.guard_id = Recorder.fresh_guard_id ();
            gkind = g.Ir.gkind;
            resume = remap_resume k g.Ir.resume;
            fail_count = 0;
            bridge = None;
            bridgeable = g.Ir.bridgeable;
          }
    | Ir.Debug_merge_point d ->
        Ir.Debug_merge_point { d with dmp_resume = remap_resume k d.dmp_resume }
    | other -> other
  in
  {
    Ir.opcode;
    args = Array.map (remap_operand k) op.Ir.args;
    result = (if op.Ir.result >= 0 then op.Ir.result + k else -1);
  }

let max_reg (ops : Ir.op array) =
  Array.fold_left
    (fun acc (op : Ir.op) ->
      let acc = max acc op.Ir.result in
      Array.fold_left
        (fun acc a -> match a with Ir.Reg r -> max acc r | Ir.Const _ -> acc)
        acc op.Ir.args)
    0 ops

let shape_of_operand env = function
  | Ir.Const v -> shape_of_const v
  | Ir.Reg r -> Hashtbl.find_opt env.shapes r

let bounds_within (b : bounds) (c : bounds) = b.lo >= c.lo && b.hi <= c.hi

let ends_with_jump (ops : Ir.op array) =
  Array.length ops > 0
  && match ops.(Array.length ops - 1).Ir.opcode with
     | Ir.Jump -> true
     | _ -> false

(* one full pipeline over a straight op sequence *)
let straight cfg ?seed_shapes ?seed_bounds ops =
  let ops, env = pass_fold_forward ?seed_shapes ?seed_bounds cfg ops in
  let ops' = pass_virtuals cfg ops env.subst in
  (pass_dce ops', ops, env)

(* debug: detect uses of registers whose defining op was removed *)
let verify_defs name (ops : Ir.op array) ~entry_slots ~loop_base =
  if Sys.getenv_opt "MTJ_VERIFY_TRACES" <> None then begin
    let defined = Hashtbl.create 64 in
    for i = 0 to entry_slots - 1 do
      Hashtbl.replace defined i ();
      Hashtbl.replace defined (loop_base + i) ()
    done;
    Array.iteri
      (fun i (op : Ir.op) ->
        Array.iter
          (function
            | Ir.Reg r when not (Hashtbl.mem defined r) ->
                Printf.eprintf "DANGLING %s: op %d uses undefined r%d: %s\n"
                  name i r
                  (Format.asprintf "%a" Ir.pp_op op)
            | _ -> ())
          op.Ir.args;
        let check_src s =
          match s with
          | Ir.S_reg r when not (Hashtbl.mem defined r) ->
              Printf.eprintf "DANGLING %s: op %d resume uses undefined r%d\n"
                name i r
          | _ -> ()
        in
        (match op.Ir.opcode with
        | Ir.Guard g ->
            List.iter
              (fun (f : Ir.frame_snap) ->
                Array.iter check_src f.Ir.snap_locals;
                Array.iter check_src f.Ir.snap_stack)
              g.Ir.resume.Ir.frames;
            Array.iter
              (function
                | Ir.V_instance { v_fields; _ } -> Array.iter check_src v_fields
                | Ir.V_tuple a | Ir.V_list a -> Array.iter check_src a
                | Ir.V_cell sc -> check_src sc)
              g.Ir.resume.Ir.r_virtuals
        | Ir.Debug_merge_point d ->
            List.iter
              (fun (f : Ir.frame_snap) ->
                Array.iter check_src f.Ir.snap_locals;
                Array.iter check_src f.Ir.snap_stack)
              d.dmp_resume.Ir.frames
        | _ -> ());
        if op.Ir.result >= 0 then Hashtbl.replace defined op.Ir.result ())
      ops
  end

let optimize (cfg : Config.t) ?(kind = `Bridge) (ops : Ir.op array)
    ~entry_slots : Ir.op array * int * int =
  let plain () =
    let final, _, _ = straight cfg ops in
    verify_defs "plain" final ~entry_slots ~loop_base:0;
    (final, 0, 0)
  in
  if not (cfg.Config.opt_peel && kind = `Loop && ends_with_jump ops) then
    plain ()
  else begin
    let k = max_reg ops + 1 in
    let body_raw = Array.map (remap_op k) ops in
    (* optimize the preamble and take the facts its jump carries *)
    let pre_final, pre_ops, pre_env = straight cfg ops in
    let pre_jump_args = pre_ops.(Array.length pre_ops - 1).Ir.args in
    let n = Array.length pre_jump_args in
    if n <> entry_slots then plain ()
    else begin
      let cand_shapes =
        Array.map (shape_of_operand pre_env) pre_jump_args
      in
      let cand_bounds = Array.map (bounds_of pre_env) pre_jump_args in
      (* shrink-only fixpoint: a candidate fact survives only if the
         loop body re-establishes it on its own back-edge *)
      let stable = ref false in
      let body_result = ref None in
      while not !stable do
        let seed_shapes = ref [] and seed_bounds = ref [] in
        Array.iteri
          (fun i sh ->
            match sh with
            | Some sh -> seed_shapes := (k + i, sh) :: !seed_shapes
            | None -> ())
          cand_shapes;
        Array.iteri
          (fun i b ->
            match b with
            | Some b -> seed_bounds := (k + i, b) :: !seed_bounds
            | None -> ())
          cand_bounds;
        let body_final, body_ops, body_env =
          straight cfg ~seed_shapes:!seed_shapes ~seed_bounds:!seed_bounds
            body_raw
        in
        let body_jump_args =
          body_ops.(Array.length body_ops - 1).Ir.args
        in
        let changed = ref false in
        Array.iteri
          (fun i cand ->
            match cand with
            | None -> ()
            | Some sh -> (
                match shape_of_operand body_env body_jump_args.(i) with
                | Some sh' when sh' = sh -> ()
                | _ ->
                    cand_shapes.(i) <- None;
                    changed := true))
          (Array.copy cand_shapes);
        Array.iteri
          (fun i cand ->
            match cand with
            | None -> ()
            | Some c -> (
                match bounds_of body_env body_jump_args.(i) with
                | Some b when bounds_within b c -> ()
                | _ ->
                    cand_bounds.(i) <- None;
                    changed := true))
          (Array.copy cand_bounds);
        if !changed then stable := false
        else begin
          stable := true;
          body_result := Some body_final
        end
      done;
      match !body_result with
      | None -> plain ()
      | Some body_final ->
          let all = Array.append pre_final body_final in
          verify_defs "peeled" all ~entry_slots ~loop_base:k;
          (all, k, Array.length pre_final)
    end
  end
