(** Trace intermediate representation.

    A meta-trace is a straight-line sequence of operations recorded while
    the {e interpreter} executed one iteration of a hot application-level
    loop (Sec. II).  Operand values are SSA registers or constants; type
    and control assumptions are guards carrying resume data for
    deoptimization; operations the meta-interpreter cannot inline
    (data-dependent loops: dict probes, bignum arithmetic, string
    building) are residual calls to AOT-compiled functions.

    Opcode names and the category split (memop / guard / call / ctrl /
    int / new / float / str / ptr / unicode) follow the paper's
    Figures 7–9. *)

(* ---------- categories (Figure 7) ---------- *)

type cat =
  | Memop
  | Guardop
  | Callop
  | Ctrl
  | Intop
  | Newop
  | Floatop
  | Strop
  | Ptrop
  | Unicodeop
  | Debugop

let cat_name = function
  | Memop -> "memop"
  | Guardop -> "guard"
  | Callop -> "call"
  | Ctrl -> "ctrl"
  | Intop -> "int"
  | Newop -> "new"
  | Floatop -> "float"
  | Strop -> "str"
  | Ptrop -> "ptr"
  | Unicodeop -> "unicode"
  | Debugop -> "debug"

let all_cats =
  [ Memop; Guardop; Callop; Ctrl; Intop; Newop; Floatop; Strop; Ptrop;
    Unicodeop ]

(* ---------- operands ---------- *)

type operand =
  | Const of Mtj_rt.Value.t
  | Reg of int

(* ---------- guard kinds ---------- *)

(* the runtime type shape a guard_class checks *)
type tyshape =
  | Ty_int
  | Ty_float
  | Ty_str
  | Ty_bool
  | Ty_nil
  | Ty_bigint
  | Ty_list
  | Ty_dict
  | Ty_set
  | Ty_tuple
  | Ty_instance_of of int  (* class object uid *)
  | Ty_func_code of int    (* function identity by code_ref *)
  | Ty_range
  | Ty_iter
  | Ty_cell
  | Ty_builder
  | Ty_class of int        (* a specific class object, by uid *)
  | Ty_method

type gkind =
  | G_true                      (* arg truthy *)
  | G_false                     (* arg falsy *)
  | G_value of Mtj_rt.Value.t   (* arg structurally equals the constant *)
  | G_class of tyshape          (* arg has the type shape *)
  | G_nonnull
  | G_no_ovf_add
  | G_no_ovf_sub
  | G_no_ovf_mul
  | G_index_lt                  (* 0 <= args0 < args1 (bound check) *)
  | G_global_version of int ref * int
      (* the promoted-globals version cell still holds the value *)

(* ---------- resume data ---------- *)

(* where a slot's value comes from at deoptimization time *)
type source =
  | S_reg of int
  | S_const of Mtj_rt.Value.t
  | S_virtual of int  (* index into the trace's virtual descriptors *)

type frame_snap = {
  snap_code : int;          (* code_ref of the interpreter frame *)
  snap_pc : int;            (* pc of the bytecode being (re)executed *)
  snap_locals : source array;
  snap_stack : source array;
  snap_discard : bool;      (* the frame's return value is discarded *)
}

(* materialization descriptor for an allocation removed by escape
   analysis: on deopt the object is rebuilt from these sources *)
type vdesc =
  | V_instance of { v_cls : Mtj_rt.Value.obj; v_fields : source array }
  | V_tuple of source array
  | V_list of source array
  | V_cell of source

type resume = {
  frames : frame_snap list;   (* outermost first *)
  r_virtuals : vdesc array;   (* S_virtual indices resolve here *)
}

(* ---------- residual (AOT) calls ---------- *)

type rescall = {
  aot : Mtj_rt.Aot.fn;
  run : Mtj_rt.Ctx.t -> Mtj_rt.Value.t array -> Mtj_rt.Value.t;
      (** must be free of heap side effects when it raises *)
  effectful : bool;  (** writes the heap (barrier for load forwarding) *)
}

(* ---------- opcodes ---------- *)

type opcode =
  (* memops *)
  | Getfield_gc of int          (* field index *)
  | Setfield_gc of int
  | Getarrayitem_gc             (* tuple element, args: tuple, index *)
  | Getlistitem                 (* list element (typed strategy load) *)
  | Setlistitem
  | Arraylen                    (* list/tuple length *)
  | Strgetitem
  | Strlen
  | Getcell                     (* closure cell load *)
  | Setcell
  (* guards *)
  | Guard of guard
  (* calls *)
  | Call_r of rescall           (* returns a value *)
  | Call_n of rescall           (* no (interesting) result *)
  | Call_assembler of int       (* jump into compiled loop [trace_id] *)
  (* ctrl *)
  | Label
  | Jump                        (* back-edge: args refill entry registers *)
  | Finish                      (* leave JIT code, returning args.(0) to the
                                   caller of the traced region *)
  (* int *)
  | Int_add | Int_sub | Int_mul
  | Int_and | Int_or | Int_xor
  | Int_lshift | Int_rshift
  | Int_lt | Int_le | Int_eq | Int_ne | Int_gt | Int_ge
  | Int_neg | Int_is_true | Int_is_zero
  | Int_floordiv | Int_mod
  (* new *)
  | New_with_vtable of Mtj_rt.Value.obj   (* class object *)
  | New_array of int                      (* tuple/list of n elements *)
  | New_list of int
  | New_cell
  (* float *)
  | Float_add | Float_sub | Float_mul | Float_truediv
  | Float_neg | Float_abs
  | Float_lt | Float_le | Float_eq | Float_ne | Float_gt | Float_ge
  | Cast_int_to_float | Cast_float_to_int
  (* str *)
  | Str_concat | Str_eq
  (* ptr *)
  | Ptr_eq | Ptr_ne | Same_as
  (* unicode *)
  | Unicode_len | Unicode_getitem
  (* debug *)
  | Debug_merge_point of { dmp_code : int; dmp_pc : int; dmp_resume : resume }

and guard = {
  guard_id : int;
  gkind : gkind;
  resume : resume;
  mutable fail_count : int;
  mutable bridge : trace option;
  mutable bridgeable : bool;
}

(* ---------- operations and traces ---------- *)

and op = {
  opcode : opcode;
  args : operand array;
  result : int;  (* destination register, or -1 *)
}

and trace = {
  trace_id : int;
  kind : trace_kind;
  ops : op array;
  op_costs : Mtj_core.Cost.t array;  (* pre-lowered machine cost per op *)
  nregs : int;           (* register-file size *)
  entry_slots : int;     (* registers filled from frame slots on entry *)
  loop_base : int;       (* register base the back-edge jump refills *)
  loop_start : int;      (* op index the back-edge jumps to (after the
                            peeled preamble, when peeling is on) *)
  mutable exec_count : int;
  op_exec : int array;   (* per-op dynamic execution counts *)
  tier : int;            (* 1 = quick unoptimized compile, 2 = full *)
  mutable promote_at : int;
      (* exec_count at which the executor exits to the portal for a
         tier-up decision; Tierpolicy.never for traces that are never
         promoted (Optimizing/Baseline, or a site past max_demotions).
         Only ever mutated finite -> finite (promotion deferral), so a
         translate-time [promote_at <> never] check stays sound. *)
  mutable deopts : int;  (* guard-fail side exits taken from this trace;
                            with exec_count, the guard-fail profile the
                            tier-up stability gate reads *)
  mutable bridges : int; (* bridges attached to this trace's guards;
                            the tier-down trigger reads it *)
  mutable code_version : int;
      (* bumped whenever a guard of this trace gains a bridge; cached
         threaded translations carry the version they were built at and
         are re-translated on mismatch, so guard fail paths re-specialize
         to jump straight into the attached bridge *)
  mutable translations : int;  (* times this trace was threaded *)
  mutable cache_hits : int;    (* entries served from the code cache *)
}

and trace_kind =
  | Loop of { loop_code : int; loop_pc : int }
  | Bridge of { from_guard : int; loop_code : int; loop_pc : int }
      (* a bridge ultimately jumps back into the loop it side-exited *)

(* invalidate any cached threaded code for [t] (a bridge was attached to
   one of its guards; the next entry re-translates, so the guard's fail
   path re-specializes to jump straight into the bridge) *)
let invalidate_code (t : trace) = t.code_version <- t.code_version + 1

(* ---------- opcode metadata ---------- *)

let opcode_name = function
  | Getfield_gc _ -> "getfield_gc"
  | Setfield_gc _ -> "setfield_gc"
  | Getarrayitem_gc -> "getarrayitem_gc"
  | Getlistitem -> "getlistitem_gc"
  | Setlistitem -> "setlistitem_gc"
  | Arraylen -> "arraylen_gc"
  | Strgetitem -> "strgetitem"
  | Strlen -> "strlen"
  | Getcell -> "getfield_gc_cell"
  | Setcell -> "setfield_gc_cell"
  | Guard g -> (
      match g.gkind with
      | G_true -> "guard_true"
      | G_false -> "guard_false"
      | G_value _ -> "guard_value"
      | G_class _ -> "guard_class"
      | G_nonnull -> "guard_nonnull"
      | G_no_ovf_add | G_no_ovf_sub | G_no_ovf_mul -> "guard_no_overflow"
      | G_index_lt -> "guard_index"
      | G_global_version _ -> "guard_not_invalidated")
  | Call_r c -> "call_r:" ^ Mtj_rt.Aot.name c.aot
  | Call_n c -> "call_n:" ^ Mtj_rt.Aot.name c.aot
  | Call_assembler _ -> "call_assembler"
  | Label -> "label"
  | Jump -> "jump"
  | Finish -> "finish"
  | Int_add -> "int_add"
  | Int_sub -> "int_sub"
  | Int_mul -> "int_mul"
  | Int_and -> "int_and"
  | Int_or -> "int_or"
  | Int_xor -> "int_xor"
  | Int_lshift -> "int_lshift"
  | Int_rshift -> "int_rshift"
  | Int_lt -> "int_lt"
  | Int_le -> "int_le"
  | Int_eq -> "int_eq"
  | Int_ne -> "int_ne"
  | Int_gt -> "int_gt"
  | Int_ge -> "int_ge"
  | Int_neg -> "int_neg"
  | Int_is_true -> "int_is_true"
  | Int_is_zero -> "int_is_zero"
  | Int_floordiv -> "int_floordiv"
  | Int_mod -> "int_mod"
  | New_with_vtable _ -> "new_with_vtable"
  | New_array _ -> "new_array"
  | New_list _ -> "new"
  | New_cell -> "new_cell"
  | Float_add -> "float_add"
  | Float_sub -> "float_sub"
  | Float_mul -> "float_mul"
  | Float_truediv -> "float_truediv"
  | Float_neg -> "float_neg"
  | Float_abs -> "float_abs"
  | Float_lt -> "float_lt"
  | Float_le -> "float_le"
  | Float_eq -> "float_eq"
  | Float_ne -> "float_ne"
  | Float_gt -> "float_gt"
  | Float_ge -> "float_ge"
  | Cast_int_to_float -> "cast_int_to_float"
  | Cast_float_to_int -> "cast_float_to_int"
  | Str_concat -> "strconcat"
  | Str_eq -> "str_eq"
  | Ptr_eq -> "ptr_eq"
  | Ptr_ne -> "ptr_ne"
  | Same_as -> "same_as"
  | Unicode_len -> "unicodelen"
  | Unicode_getitem -> "unicodegetitem"
  | Debug_merge_point _ -> "debug_merge_point"

(* generic node-type name for the histograms (Figure 8): call nodes
   collapse onto their class, not the callee *)
let node_type = function
  | Call_r _ -> "call_r"
  | Call_n _ -> "call_n"
  | op -> opcode_name op

let category = function
  | Getfield_gc _ | Setfield_gc _ | Getarrayitem_gc | Getlistitem
  | Setlistitem | Arraylen | Strgetitem | Strlen | Getcell | Setcell ->
      Memop
  | Guard _ -> Guardop
  | Call_r _ | Call_n _ | Call_assembler _ -> Callop
  | Label | Jump | Finish -> Ctrl
  | Int_add | Int_sub | Int_mul | Int_and | Int_or | Int_xor | Int_lshift
  | Int_rshift | Int_lt | Int_le | Int_eq | Int_ne | Int_gt | Int_ge
  | Int_neg | Int_is_true | Int_is_zero | Int_floordiv | Int_mod ->
      Intop
  | New_with_vtable _ | New_array _ | New_list _ | New_cell -> Newop
  | Float_add | Float_sub | Float_mul | Float_truediv | Float_neg
  | Float_abs | Float_lt | Float_le | Float_eq | Float_ne | Float_gt
  | Float_ge | Cast_int_to_float | Cast_float_to_int ->
      Floatop
  | Str_concat | Str_eq -> Strop
  | Ptr_eq | Ptr_ne | Same_as -> Ptrop
  | Unicode_len | Unicode_getitem -> Unicodeop
  | Debug_merge_point _ -> Debugop

(* the type shape an opcode's result is guaranteed to have, when the
   opcode's semantics close over one shape (used by the recorder to skip
   redundant guard_class nodes) *)
let result_shape = function
  | Int_add | Int_sub | Int_mul | Int_and | Int_or | Int_xor | Int_lshift
  | Int_rshift | Int_neg | Int_floordiv | Int_mod | Arraylen | Strlen
  | Unicode_len | Cast_float_to_int ->
      Some Ty_int
  | Int_lt | Int_le | Int_eq | Int_ne | Int_gt | Int_ge | Int_is_true
  | Int_is_zero | Float_lt | Float_le | Float_eq | Float_ne | Float_gt
  | Float_ge | Ptr_eq | Ptr_ne | Str_eq ->
      Some Ty_bool
  | Float_add | Float_sub | Float_mul | Float_truediv | Float_neg
  | Float_abs | Cast_int_to_float ->
      Some Ty_float
  | Str_concat | Strgetitem | Unicode_getitem -> Some Ty_str
  | New_with_vtable cls -> Some (Ty_instance_of cls.Mtj_rt.Value.uid)
  | New_array _ -> Some Ty_tuple
  | New_list _ -> Some Ty_list
  | New_cell -> Some Ty_cell
  | _ -> None

(* x86 instructions required to implement each IR node type (Figure 9's
   y-axis): (alu, fpu, load, store, other).  Calls are the call
   {e overhead} only; the callee's work is charged by the callee. *)
let x86_template = function
  | Getfield_gc _ | Getcell -> (0, 0, 1, 0, 0)
  | Setfield_gc _ | Setcell -> (0, 0, 0, 1, 1)
  | Getarrayitem_gc | Getlistitem -> (1, 0, 2, 0, 0)
  | Setlistitem -> (1, 0, 1, 1, 0)
  | Arraylen | Strlen | Unicode_len -> (0, 0, 1, 0, 0)
  | Strgetitem | Unicode_getitem -> (1, 0, 1, 0, 0)
  | Guard _ -> (1, 0, 0, 0, 0)  (* plus the branch, emitted separately *)
  | Call_r _ | Call_n _ -> (3, 0, 3, 4, 6)
  | Call_assembler _ -> (6, 0, 8, 8, 9)
  | Label -> (0, 0, 0, 0, 1)
  | Jump -> (1, 0, 0, 0, 1)  (* plus the back-edge branch *)
  | Finish -> (2, 0, 2, 2, 3)
  | Int_add | Int_sub | Int_and | Int_or | Int_xor | Int_lshift
  | Int_rshift | Int_neg | Int_is_true | Int_is_zero ->
      (1, 0, 0, 0, 0)
  | Int_lt | Int_le | Int_eq | Int_ne | Int_gt | Int_ge -> (1, 0, 0, 0, 1)
  | Int_mul -> (3, 0, 0, 0, 0)
  | Int_floordiv | Int_mod -> (8, 0, 0, 0, 1)
  | New_with_vtable _ | New_list _ -> (2, 0, 1, 3, 2)
  | New_array _ -> (2, 0, 1, 2, 2)
  | New_cell -> (1, 0, 0, 2, 1)
  | Float_add | Float_sub -> (0, 1, 0, 0, 0)
  | Float_mul -> (0, 2, 0, 0, 0)
  | Float_truediv -> (0, 6, 0, 0, 0)
  | Float_neg | Float_abs -> (0, 1, 0, 0, 0)
  | Float_lt | Float_le | Float_eq | Float_ne | Float_gt | Float_ge ->
      (0, 1, 0, 0, 1)
  | Cast_int_to_float | Cast_float_to_int -> (0, 1, 0, 0, 0)
  | Str_concat -> (2, 0, 2, 2, 2)
  | Str_eq -> (2, 0, 2, 0, 1)
  | Ptr_eq | Ptr_ne | Same_as -> (1, 0, 0, 0, 0)
  | Debug_merge_point _ -> (0, 0, 0, 0, 0)

let x86_count opc =
  let a, f, l, s, o = x86_template opc in
  let base = a + f + l + s + o in
  match opc with
  | Guard _ | Jump | Finish -> base + 1  (* the branch instruction *)
  | Call_r _ | Call_n _ | Call_assembler _ -> base + 1  (* the call *)
  | _ -> base

(* pretty-printing for the jitlog *)
let pp_operand fmt = function
  | Const v -> Format.fprintf fmt "Const(%s)" (Mtj_rt.Value.repr v)
  | Reg r -> Format.fprintf fmt "r%d" r

let pp_op fmt (op : op) =
  if op.result >= 0 then Format.fprintf fmt "r%d = " op.result;
  Format.fprintf fmt "%s(" (opcode_name op.opcode);
  Array.iteri
    (fun i a ->
      if i > 0 then Format.fprintf fmt ", ";
      pp_operand fmt a)
    op.args;
  Format.fprintf fmt ")"

(* deep-copy recorded ops so a recompile (tier-2, or a test harness)
   starts from pristine guards: fresh guard records with no attached
   bridge and a zero fail count, and private resume/arg arrays. The old
   trace keeps its own guards, so bridges already attached to it keep
   working while it remains reachable. *)
let copy_ops (ops : op array) : op array =
  let copy_resume (r : resume) =
    {
      frames =
        List.map
          (fun (f : frame_snap) ->
            {
              f with
              snap_locals = Array.copy f.snap_locals;
              snap_stack = Array.copy f.snap_stack;
            })
          r.frames;
      r_virtuals = Array.copy r.r_virtuals;
    }
  in
  Array.map
    (fun (op : op) ->
      let opcode =
        match op.opcode with
        | Guard g ->
            Guard
              {
                g with
                resume = copy_resume g.resume;
                fail_count = 0;
                bridge = None;
              }
        | Debug_merge_point d ->
            Debug_merge_point { d with dmp_resume = copy_resume d.dmp_resume }
        | other -> other
      in
      { op with opcode; args = Array.copy op.args })
    ops
