(** String runtime functions (RPython's [rstr] / [rbuilder] / [runicode]
    plus a few C-library and PyPy-module functions).

    These are the remaining AOT-compiled entry points of Table III:
    [rstr.ll_join], [rstr.ll_find_char], [rstr_ll_strhash],
    [ll_str_ll_int2dec], [rstring.replace], [rbuilder.ll_append],
    [arithmetic.string_to_int], [runicode.unicode_encode_ucs1_helper],
    [W_UnicodeObject_descr_translate],
    [_pypyjson.raw_encode_basestring_ascii], and the external C calls
    [pow] and [memcpy].  Each charges machine work proportional to the
    characters actually processed. *)

val join : Ctx.t -> string -> string list -> string
val find_char : Ctx.t -> string -> char -> start:int -> int
val replace : Ctx.t -> string -> string -> string -> string
val split : Ctx.t -> string -> char -> string list
val strhash : Ctx.t -> string -> int
val int2dec : Ctx.t -> int -> string
val string_to_int : Ctx.t -> string -> int option
val encode_ascii : Ctx.t -> string -> string
(** JSON string escaping ([_pypyjson.raw_encode_basestring_ascii]). *)

val translate : Ctx.t -> string -> (char * string) list -> string
(** Character-table translation ([W_UnicodeObject_descr_translate]). *)

val unicode_encode : Ctx.t -> string -> string
(** Identity byte walk standing in for UCS-1 encoding. *)

val pow_float : Ctx.t -> float -> float -> float
(** The C library [pow] (dominates [nbody_modified] in Table III). *)

val memcpy_cost : Ctx.t -> int -> unit
(** Charge a [memcpy] of [n] bytes (twisted_tcp's hot C call). *)

(* --- string builders (rbuilder) --- *)

val builder_new : Ctx.t -> Value.obj
val builder_append : Ctx.t -> Value.obj -> string -> unit
val builder_build : Ctx.t -> Value.obj -> string
