(** Host-side fast-path statistics.

    Counts how often the allocation-free value fast paths fired: these
    are HOST-level counters (like [Engine.charge_flushes]), not simulated
    machine work — the fast paths are invisible to the simulation by
    construction.  One record per {!Ctx}, so parallel runs never share a
    counter and the exported values are deterministic. *)

type t = {
  mutable value_interned_hits : int;
      (* [Int] results served from the preallocated intern table by the
         counted (ctx-bearing) runtime paths; a lower bound on total
         intern-table hits, since context-free paths (eval_op, translate-
         time constant interning) do not count *)
  mutable frame_pool_reuses : int;
      (* locals/stack arrays served from a frame pool free list instead
         of [Array.make] *)
  mutable dict_hash_skips : int;
      (* dict/set operations entered with a precomputed key hash, so no
         [py_hash]/[str_hash] recomputation ran *)
}

let create () =
  { value_interned_hits = 0; frame_pool_reuses = 0; dict_hash_skips = 0 }
