(** Host-side fast-path statistics.

    Counts how often the allocation-free value fast paths fired: these
    are HOST-level counters (like [Engine.charge_flushes]), not simulated
    machine work — the fast paths are invisible to the simulation by
    construction.  One record per {!Ctx}, so parallel runs never share a
    counter and the exported values are deterministic. *)

type t = {
  mutable imm_fast_path_hits : int;
      (* typed arithmetic/comparison entry points (Rarith) fully handled
         on the immediate-int fast path: no heap block touched, result
         (if any) built with the allocation-free [Value.of_int]/
         [Value.of_bool] *)
  mutable boxed_slow_path_hits : int;
      (* the same entry points falling back to the boxed path: a float,
         bool, bigint or overflow-promotion was involved *)
  mutable typed_ops_total : int;
      (* entries into the counted typed entry points; every entry
         classifies as exactly one of the two buckets above, so
         [imm_fast_path_hits + boxed_slow_path_hits = typed_ops_total]
         is a structural invariant (checked by the metrics validator) *)
  mutable frame_pool_reuses : int;
      (* locals/stack arrays served from a frame pool free list instead
         of [Array.make] *)
  mutable dict_hash_skips : int;
      (* dict/set operations entered with a precomputed key hash, so no
         [py_hash]/[str_hash] recomputation ran *)
}

let create () =
  {
    imm_fast_path_hits = 0;
    boxed_slow_path_hits = 0;
    typed_ops_total = 0;
    frame_pool_reuses = 0;
    dict_hash_skips = 0;
  }
