(** The dynamic object model shared by every VM in the reproduction.

    {b Immediate-tagged representation.}  [t] is abstract: [Nil], [Bool]
    and [Int] are OCaml native tagged immediates (no heap block, no GC
    header), while [Float], [Str] and [Obj] remain boxed.  Building an
    int value is the identity on the host ([of_int] never allocates),
    and nil/bools are preallocated singletons, so the interpreter's hot
    arithmetic and control paths are allocation-free end-to-end.

    Heap objects carry GC metadata (generation, age, mark bit) managed
    by Gc_sim; immediate values are unboxed from the GC's point of view,
    as in PyPy after its small-int optimization.  The payload/obj layer
    is still exposed concretely: the runtime, the hosted-language
    interpreters, and the trace machinery all pattern-match on payloads
    and mutate them in place.  Only the outer [t] is opaque — cold paths
    inspect it through {!view}, hot paths through the predicates and
    unchecked destructors below.  All [Stdlib.Obj] trickery is confined
    to [value.ml]; no unsafe cast leaks past this interface. *)

type t
(** A dynamic value.  Immediate (int/bool/nil) or boxed
    (float/str/heap object); see the module header. *)

type obj = {
  uid : int;
  mutable payload : payload;
  mutable gc_gen : int;    (* 0 = nursery, 1 = old generation *)
  mutable gc_age : int;    (* minor collections survived *)
  mutable gc_mark : bool;
  mutable remembered : bool;
  mutable words : int;     (* current heap footprint in words *)
}

and payload =
  | Instance of instance
  | Class of cls
  | List of lst
  | Dict of dict
  | Set of dict            (* sets reuse the ordered-dict storage *)
  | Tuple of t array
  | Func of func
  | Method of { receiver : t; func : obj }
  | Cell of { mutable cell : t }
  | Bigint of Rbigint.t
  | Strbuilder of Buffer.t
  | Range of { start : int; stop : int; step : int }

and instance = { cls : obj; mutable fields : t array }

and cls = {
  cls_id : int;
  cls_name : string;
  mutable layout : string array;   (* field name -> index ("map"/shape) *)
  mutable attrs : (string * t) list;  (* methods and class attributes *)
  mutable parent : obj option;
}

and func = {
  func_id : int;
  func_name : string;
  arity : int;
  code_ref : int;               (* index into the owning VM's code table *)
  mutable captured : t array;   (* closed-over cells *)
}

and lst = { mutable strategy : strategy }

and strategy =
  | S_empty
  | S_int of { mutable ints : int array; mutable len : int }
  | S_float of { mutable floats : float array; mutable len : int }
  | S_str of { mutable strs : string array; mutable len : int }
  | S_obj of { mutable objs : t array; mutable len : int }

and dict = {
  mutable entries : entry array;
  mutable num_entries : int;  (* used slots in [entries], incl. dead *)
  mutable num_live : int;
  mutable index : int array;  (* -1 empty, -2 tombstone, else entry slot *)
  mutable index_mask : int;
}

and entry = {
  mutable key : t;
  mutable dval : t;
  mutable khash : int;
  mutable live : bool;
}

(** {1 Construction}

    Total and allocation-free for immediates: [of_int] is the identity
    on the host word, [of_bool]/[nil] return preallocated singletons.
    [of_float]/[of_str]/[of_obj] box (one small host block). *)

val of_int : int -> t
(** Never allocates; the full native [int] range is preserved, so
    overflow thresholds (bigint promotion) are unchanged. *)

val nil : t
val true_ : t
val false_ : t
val of_bool : bool -> t
val of_float : float -> t
val of_str : string -> t
val of_obj : obj -> t

(** {1 Predicates}

    Constant-time tag tests; no allocation. *)

val is_int : t -> bool
val is_nil : t -> bool
val is_bool : t -> bool
val is_float : t -> bool
val is_str : t -> bool
val is_obj : t -> bool

(** {1 Unchecked destructors}

    Callers must establish the matching predicate first; behaviour is
    undefined otherwise (the implementation reads the raw word).  These
    are the hot-path companions of {!view}. *)

val to_int_unchecked : t -> int
val to_bool_unchecked : t -> bool
val to_float_unchecked : t -> float
val to_str_unchecked : t -> string
val to_obj_unchecked : t -> obj

(** {1 Cold-path view}

    A safe, total one-level decomposition.  [view] allocates a small
    host block for int/float/str/obj cases, so it belongs on cold
    paths; hot paths use the predicates + unchecked destructors. *)

type view =
  | Nil
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Obj of obj

val view : t -> view

(** {1 Predicates, equality, hashing} *)

val type_name : t -> string
val list_len : lst -> int
val truthy : t -> bool

val py_eq : t -> t -> bool
(** Structural equality with Python semantics for immediates, tuples and
    bigints; identity for other heap objects. *)

val integral_float_limit : float
(** Integral floats with magnitude below this are treated as exact
    integers by both [py_hash] and [float_repr].  The shared constant
    keeps the hash/equality contract intact: [py_eq (of_int i)
    (of_float f)] implies [py_hash (of_int i) = py_hash (of_float f)]. *)

val str_hash : string -> int
(** FNV-style string hash, standing in for rstr_ll_strhash. *)

val py_hash : t -> int
(** Hash consistent with [py_eq]: equal values hash equal. *)

val payload_words : payload -> int
(** Heap footprint in words of a freshly-built payload (header excluded;
    Gc_sim adds a fixed header). *)

(** {1 Rendering} *)

val float_repr : float -> string
val repr : t -> string
val to_display_string : t -> string
val list_get_unsafe : lst -> int -> t
val pp : Format.formatter -> t -> unit
