(** The dynamic object model shared by every VM in the reproduction.

    Heap objects carry GC metadata (generation, age, mark bit) managed
    by Gc_sim; immediate values (nil, bools, ints, floats, immutable
    strings) are unboxed from the GC's point of view, as in PyPy after
    its small-int optimization.

    All type definitions are exposed concretely: the runtime, the
    hosted-language interpreters, and the trace machinery all pattern-
    match on values and mutate heap payloads in place. *)

type t =
  | Nil
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Obj of obj

and obj = {
  uid : int;
  mutable payload : payload;
  mutable gc_gen : int;    (* 0 = nursery, 1 = old generation *)
  mutable gc_age : int;    (* minor collections survived *)
  mutable gc_mark : bool;
  mutable remembered : bool;
  mutable words : int;     (* current heap footprint in words *)
}

and payload =
  | Instance of instance
  | Class of cls
  | List of lst
  | Dict of dict
  | Set of dict            (* sets reuse the ordered-dict storage *)
  | Tuple of t array
  | Func of func
  | Method of { receiver : t; func : obj }
  | Cell of { mutable cell : t }
  | Bigint of Rbigint.t
  | Strbuilder of Buffer.t
  | Range of { start : int; stop : int; step : int }
  | Iter of { mutable idx : int; src : t }

and instance = { cls : obj; mutable fields : t array }

and cls = {
  cls_id : int;
  cls_name : string;
  mutable layout : string array;   (* field name -> index ("map"/shape) *)
  mutable attrs : (string * t) list;  (* methods and class attributes *)
  mutable parent : obj option;
}

and func = {
  func_id : int;
  func_name : string;
  arity : int;
  code_ref : int;               (* index into the owning VM's code table *)
  mutable captured : t array;   (* closed-over cells *)
}

and lst = { mutable strategy : strategy }

and strategy =
  | S_empty
  | S_int of { mutable ints : int array; mutable len : int }
  | S_float of { mutable floats : float array; mutable len : int }
  | S_str of { mutable strs : string array; mutable len : int }
  | S_obj of { mutable objs : t array; mutable len : int }

and dict = {
  mutable entries : entry array;
  mutable num_entries : int;  (* used slots in [entries], incl. dead *)
  mutable num_live : int;
  mutable index : int array;  (* -1 empty, -2 tombstone, else entry slot *)
  mutable index_mask : int;
}

and entry = {
  mutable key : t;
  mutable dval : t;
  mutable khash : int;
  mutable live : bool;
}

(** {1 Interned immediates}

    A preallocated table of [Int] boxes for [min_interned..max_interned]
    plus shared singletons for [Bool] and [Nil], after PyPy's small-int
    optimization.  Hot arithmetic produces mostly small ints; serving
    them from the table makes the common case allocation-free on the
    host.

    {b Physical-equality guarantees.}  For any [i] with
    [is_interned_int i], every [of_int i] returns the {e same} box:
    [of_int i == of_int i].  Likewise [of_bool b == of_bool b] and
    [nil == Nil] structurally.  The converse is NOT guaranteed: values
    built directly with the [Int]/[Bool] constructors (or arriving from
    outside the fast paths) may be distinct boxes with equal payloads,
    so consumers must keep comparing structurally ([py_eq], [py_hash],
    pattern matching) — never with [==].  Sharing is safe because these
    boxes are immutable, all runtime comparisons are structural, and
    immediates are unboxed from the simulated GC's point of view, so no
    simulated counter can observe whether two equal ints share a box. *)

val min_interned : int
(** Smallest interned integer (inclusive). *)

val max_interned : int
(** Largest interned integer (inclusive). *)

val is_interned_int : int -> bool
(** [is_interned_int i] is true iff [of_int i] is served from the intern
    table. *)

val of_int : int -> t
(** [of_int i] is [Int i], shared from the intern table when
    [is_interned_int i]. *)

val true_ : t
(** Shared [Bool true] box. *)

val false_ : t
(** Shared [Bool false] box. *)

val nil : t
(** [Nil] (exported for symmetry with [true_]/[false_]). *)

val of_bool : bool -> t
(** [of_bool b] is the shared [true_] or [false_] box. *)

val intern : t -> t
(** [intern v] normalizes [v] to its shared box when one exists
    ([Int] in the interned range, [Bool]); other values pass through
    unchanged.  Used on translate-time constants so each threaded-code
    constant is boxed once. *)

(** {1 Predicates, equality, hashing} *)

val type_name : t -> string
val list_len : lst -> int
val truthy : t -> bool

val py_eq : t -> t -> bool
(** Structural equality with Python semantics for immediates, tuples and
    bigints; identity for other heap objects. *)

val integral_float_limit : float
(** Integral floats with magnitude below this are treated as exact
    integers by both [py_hash] and [float_repr].  The shared constant
    keeps the hash/equality contract intact: [py_eq (Int i) (Float f)]
    implies [py_hash (Int i) = py_hash (Float f)]. *)

val str_hash : string -> int
(** FNV-style string hash, standing in for rstr_ll_strhash. *)

val py_hash : t -> int
(** Hash consistent with [py_eq]: equal values hash equal. *)

val payload_words : payload -> int
(** Heap footprint in words of a freshly-built payload (header excluded;
    Gc_sim adds a fixed header). *)

(** {1 Rendering} *)

val float_repr : float -> string
val repr : t -> string
val to_display_string : t -> string
val list_get_unsafe : lst -> int -> t
val pp : Format.formatter -> t -> unit
