(** Arbitrary-precision integers (RPython's [rbigint]).

    Sign-magnitude representation over base-2{^30} digits.  This is the
    AOT-compiled arithmetic library that the paper's [pidigits] benchmark
    spends >90% of its time in (Table III: [rbigint.add], [.divmod],
    [.lshift], [.mul]); the meta-traces call into it rather than inlining
    it, because its loops have data-dependent bounds (Sec. II).

    All operations are total over valid values; [divmod] raises
    [Division_by_zero] on a zero divisor. *)

type t

val zero : t
val one : t
val of_int : int -> t
val to_int_opt : t -> int option
(** [None] if the value does not fit in a native [int]. *)

val sign : t -> int
(** -1, 0 or 1. *)

val numbits : t -> int
(** Bits in the magnitude; 0 for zero. *)

val num_digits : t -> int
(** Base-2{^30} digits in the magnitude. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val divmod : t -> t -> t * t
(** Floor division: [divmod a b = (q, r)] with [a = q*b + r] and
    [0 <= |r| < |b|], [r] having the sign of [b] (Python semantics). *)

val lshift : t -> int -> t

val rshift : t -> int -> t
(** Arithmetic shift (floor), like Python. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
val of_string : string -> t
(** Decimal, with optional leading [-].  Raises [Invalid_argument] on
    malformed input. *)

val pp : Format.formatter -> t -> unit

val work : t -> t -> int
(** Rough digit-operation count for an operation over these operands;
    used by the AOT cost model to charge machine work proportional to
    actual bignum sizes. *)
