(** Insertion-ordered hash dictionary (RPython's [rordereddict]).

    A dense entries array preserving insertion order plus an
    open-addressing index table, as in PyPy/CPython 3.6+.  The probe loop
    is the paper's [rordereddict.ll_call_lookup_function] — the single
    most commonly significant AOT function in Table III.  Every probe
    step touches the cache model and emits a comparison branch, so
    dict-heavy workloads (django, genshi, bm_mdp) show the memory-bound,
    call-heavy profile the paper reports.

    Sets reuse this storage with a dummy value (as CPython/PyPy do not —
    they specialize — but our set strategies charge their own costs). *)

val lookup_fn : Aot.fn
(** The registered [rordereddict.ll_call_lookup_function] handle. *)

val create : Ctx.t -> Value.dict
(** Fresh empty dictionary storage (8 entries, 16 index slots). *)

val length : Value.dict -> int

val get : Ctx.t -> Value.dict -> Value.t -> Value.t option
val set : Ctx.t -> Value.obj -> Value.dict -> Value.t -> Value.t -> unit
(** [set ctx owner d k v]: insert or update.  [owner] is the heap object
    holding [d], needed for the GC write barrier and resize accounting. *)

val delete : Ctx.t -> Value.dict -> Value.t -> bool
(** Remove a key; returns whether it was present. *)

val contains : Ctx.t -> Value.dict -> Value.t -> bool

(** {2 Precomputed-hash entry points}

    The [_h] variants take the key's [Value.py_hash] from the caller,
    for hot paths where the hash was hoisted (e.g. computed once per
    interned string constant at translate time).  [py_hash] is pure host
    code and charges nothing, so these are simulation-identical to their
    hashing counterparts; each call ticks [Hstats.dict_hash_skips].
    Passing a hash that is not [Value.py_hash key] is undefined. *)

val get_h : Ctx.t -> Value.dict -> Value.t -> int -> Value.t option
val set_h : Ctx.t -> Value.obj -> Value.dict -> Value.t -> Value.t -> int -> unit
val delete_h : Ctx.t -> Value.dict -> Value.t -> int -> bool
val contains_h : Ctx.t -> Value.dict -> Value.t -> int -> bool

val iter : Value.dict -> (Value.t -> Value.t -> unit) -> unit
(** In insertion order, live entries only. *)

val keys : Value.dict -> Value.t list
(** In insertion order. *)

val nth_live : Value.dict -> int -> (Value.t * Value.t) option
(** [nth_live d i]: the [i]-th live entry in insertion order (used by
    dict iterators). *)
