(** Set operations over dict-backed set storage (PyPy's set strategies).

    [meteor_contest] in Table III spends >55% of its time in
    [BytesSetStrategy_difference_unwrapped] and
    [BytesSetStrategy_issubset_unwrapped]; these are those functions. *)

val create : Ctx.t -> Value.t list -> Value.obj
val length : Value.dict -> int
val add : Ctx.t -> Value.obj -> Value.t -> unit
val contains : Ctx.t -> Value.dict -> Value.t -> bool

val add_h : Ctx.t -> Value.obj -> Value.t -> int -> unit
(** [add] with the element's [Value.py_hash] precomputed by the caller;
    simulation-identical (see rdict.mli). *)

(** [contains] with a precomputed hash. *)
val contains_h : Ctx.t -> Value.dict -> Value.t -> int -> bool
val remove : Ctx.t -> Value.obj -> Value.t -> bool
val difference : Ctx.t -> Value.obj -> Value.obj -> Value.obj
val union : Ctx.t -> Value.obj -> Value.obj -> Value.obj
val intersection : Ctx.t -> Value.obj -> Value.obj -> Value.obj
val issubset : Ctx.t -> Value.obj -> Value.obj -> bool
val elements : Value.dict -> Value.t list
val of_obj : Value.obj -> Value.dict
