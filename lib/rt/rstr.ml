open Mtj_core
module Engine = Mtj_machine.Engine

(* constant charge records for the scan/libm paths, interned once *)
let scan_char_cost = Cost.make ~alu:1 ~load:1 ()
let pow_cost = Cost.make ~fpu:22 ~alu:8 ~load:4 ()

let join_fn = Aot.register ~name:"rstr.ll_join" ~src:Aot.R
let find_char_fn = Aot.register ~name:"rstr.ll_find_char" ~src:Aot.R
let strhash_fn = Aot.register ~name:"rstr_ll_strhash" ~src:Aot.R
let int2dec_fn = Aot.register ~name:"ll_str_ll_int2dec" ~src:Aot.R
let replace_fn = Aot.register ~name:"rstring.replace" ~src:Aot.L
let split_fn = Aot.register ~name:"rstring.split" ~src:Aot.L
let string_to_int_fn = Aot.register ~name:"arithmetic.string_to_int" ~src:Aot.L
let unicode_encode_fn =
  Aot.register ~name:"runicode.unicode_encode_ucs1_helper" ~src:Aot.L
let translate_fn =
  Aot.register ~name:"W_UnicodeObject_descr_translate" ~src:Aot.I
let json_encode_fn =
  Aot.register ~name:"_pypyjson.raw_encode_basestring_ascii" ~src:Aot.M
let builder_append_fn = Aot.register ~name:"rbuilder.ll_append" ~src:Aot.R
let pow_fn = Aot.register ~name:"pow" ~src:Aot.C
let memcpy_fn = Aot.register ~name:"memcpy" ~src:Aot.C

let charge_chars ctx n =
  Engine.emit (Ctx.engine ctx)
    (Cost.make ~alu:(max 1 (n / 2)) ~load:(max 1 (n / 4))
       ~store:(max 1 (n / 8)) ())

let join ctx sep parts =
  Aot.call ctx join_fn @@ fun () ->
  let result = String.concat sep parts in
  charge_chars ctx (String.length result);
  result

let find_char ctx s c ~start =
  Aot.call ctx find_char_fn @@ fun () ->
  let eng = Ctx.engine ctx in
  let n = String.length s in
  let rec go i =
    if i >= n then begin
      Engine.branch eng ~site:930_001 ~taken:false;
      -1
    end
    else begin
      Engine.emit eng scan_char_cost;
      let hit = s.[i] = c in
      Engine.branch eng ~site:930_001 ~taken:(not hit);
      if hit then i else go (i + 1)
    end
  in
  go (max 0 start)

let replace ctx s old_sub new_sub =
  Aot.call ctx replace_fn @@ fun () ->
  charge_chars ctx (2 * String.length s);
  if String.length old_sub = 0 then s
  else begin
    let buf = Buffer.create (String.length s) in
    let ol = String.length old_sub in
    let i = ref 0 in
    let n = String.length s in
    while !i <= n - ol do
      if String.sub s !i ol = old_sub then begin
        Buffer.add_string buf new_sub;
        i := !i + ol
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    while !i < n do
      Buffer.add_char buf s.[!i];
      incr i
    done;
    Buffer.contents buf
  end

let split ctx s c =
  Aot.call ctx split_fn @@ fun () ->
  charge_chars ctx (String.length s);
  String.split_on_char c s

let strhash ctx s =
  Aot.call ctx strhash_fn @@ fun () ->
  charge_chars ctx (String.length s);
  Value.str_hash s

let int2dec ctx i =
  Aot.call ctx int2dec_fn @@ fun () ->
  let s = string_of_int i in
  charge_chars ctx (String.length s);
  s

let string_to_int ctx s =
  Aot.call ctx string_to_int_fn @@ fun () ->
  charge_chars ctx (String.length s);
  int_of_string_opt (String.trim s)

let encode_ascii ctx s =
  Aot.call ctx json_encode_fn @@ fun () ->
  charge_chars ctx (2 * String.length s);
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 || Char.code c > 126 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let translate ctx s table =
  Aot.call ctx translate_fn @@ fun () ->
  charge_chars ctx (2 * String.length s);
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match List.assoc_opt c table with
      | Some repl -> Buffer.add_string buf repl
      | None -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unicode_encode ctx s =
  Aot.call ctx unicode_encode_fn @@ fun () ->
  charge_chars ctx (String.length s);
  s

let pow_float ctx x y =
  Aot.call ctx pow_fn @@ fun () ->
  Engine.emit (Ctx.engine ctx) pow_cost;
  Float.pow x y

let memcpy_cost ctx n =
  Aot.call ctx memcpy_fn @@ fun () ->
  Engine.emit (Ctx.engine ctx)
    (Cost.make ~load:(max 1 (n / 16)) ~store:(max 1 (n / 16)) ~alu:4 ())

(* --- builders --- *)

let builder_new ctx =
  Gc_sim.alloc (Ctx.gc ctx) (Value.Strbuilder (Buffer.create 32))

let buffer_of (o : Value.obj) =
  match o.Value.payload with
  | Value.Strbuilder b -> b
  | _ -> invalid_arg "Rstr.buffer_of: not a builder"

let builder_append ctx o s =
  Aot.call ctx builder_append_fn @@ fun () ->
  charge_chars ctx (String.length s);
  Buffer.add_string (buffer_of o) s;
  Gc_sim.grow (Ctx.gc ctx) o

let builder_build ctx o =
  let b = buffer_of o in
  charge_chars ctx (Buffer.length b);
  Buffer.contents b
