open Mtj_core
module Engine = Mtj_machine.Engine

exception Type_error of string

let big_add_fn = Aot.register ~name:"rbigint.add" ~src:Aot.L
let big_sub_fn = Aot.register ~name:"rbigint.sub" ~src:Aot.L
let big_mul_fn = Aot.register ~name:"rbigint.mul" ~src:Aot.L
let big_divmod_fn = Aot.register ~name:"rbigint.divmod" ~src:Aot.L
let big_lshift_fn = Aot.register ~name:"rbigint.lshift" ~src:Aot.L
let big_rshift_fn = Aot.register ~name:"rbigint.rshift" ~src:Aot.L
let big_cmp_fn = Aot.register ~name:"rbigint.cmp" ~src:Aot.L

let is_number = function
  | Value.Int _ | Value.Float _ | Value.Bool _ -> true
  | Value.Obj { payload = Value.Bigint _; _ } -> true
  | Value.Nil | Value.Str _ | Value.Obj _ -> false


let normalize_big ctx b =
  match Rbigint.to_int_opt b with
  | Some i -> Ctx.of_int ctx i
  | None -> Gc_sim.obj (Ctx.gc ctx) (Value.Bigint b)

let as_big = function
  | Value.Int i -> Some (Rbigint.of_int i)
  | Value.Bool b -> Some (Rbigint.of_int (Bool.to_int b))
  | Value.Obj { payload = Value.Bigint b; _ } -> Some b
  | Value.Nil | Value.Float _ | Value.Str _ | Value.Obj _ -> None

let to_float = function
  | Value.Int i -> float_of_int i
  | Value.Float f -> f
  | Value.Bool b -> if b then 1.0 else 0.0
  | Value.Obj { payload = Value.Bigint b; _ } ->
      float_of_string (Rbigint.to_string b)
  | v -> raise (Type_error ("expected number, got " ^ Value.type_name v))

let charge_digits ctx fn a b op =
  Aot.call ctx fn @@ fun () ->
  let da = max 1 (Rbigint.num_digits a) and db = max 1 (Rbigint.num_digits b) in
  let w =
    if fn == big_mul_fn then da * db
    else if fn == big_divmod_fn then (max 1 (da - db + 1)) * db
    else max da db
  in
  Engine.emit (Ctx.engine ctx)
    (Cost.make ~alu:(3 * w) ~load:w ~store:w ~other:w ());
  op ()

(* fallthrough: promote both to bigint, run, demote if possible *)
let big_binop ctx fn op a b =
  match (as_big a, as_big b) with
  | Some ba, Some bb ->
      charge_digits ctx fn ba bb (fun () -> normalize_big ctx (op ba bb))
  | _ ->
      raise
        (Type_error
           (Printf.sprintf "unsupported operand types: %s and %s"
              (Value.type_name a) (Value.type_name b)))

let overflowed_add a b r = (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0)

let int_like = function
  | Value.Int _ | Value.Bool _ -> true
  | Value.Nil | Value.Float _ | Value.Str _ | Value.Obj _ -> false

let as_int = function
  | Value.Int i -> i
  | Value.Bool b -> Bool.to_int b
  | _ -> raise (Type_error "expected int")

let float_involved a b =
  match (a, b) with
  | Value.Float _, _ | _, Value.Float _ -> true
  | _ -> false

let add ctx a b =
  if float_involved a b then Value.Float (to_float a +. to_float b)
  else if int_like a && int_like b then begin
    let x = as_int a and y = as_int b in
    let r = x + y in
    if overflowed_add x y r then
      big_binop ctx big_add_fn Rbigint.add a b
    else Ctx.of_int ctx r
  end
  else big_binop ctx big_add_fn Rbigint.add a b

let sub ctx a b =
  if float_involved a b then Value.Float (to_float a -. to_float b)
  else if int_like a && int_like b then begin
    let x = as_int a and y = as_int b in
    let r = x - y in
    if (x >= 0) <> (y >= 0) && (r >= 0) <> (x >= 0) then
      big_binop ctx big_sub_fn Rbigint.sub a b
    else Ctx.of_int ctx r
  end
  else big_binop ctx big_sub_fn Rbigint.sub a b

let mul_overflows x y =
  x <> 0
  && (abs x > 1 lsl 31 || abs y > 1 lsl 31)
  && (let r = x * y in r / x <> y)

let mul ctx a b =
  if float_involved a b then Value.Float (to_float a *. to_float b)
  else if int_like a && int_like b then begin
    let x = as_int a and y = as_int b in
    if mul_overflows x y then big_binop ctx big_mul_fn Rbigint.mul a b
    else Ctx.of_int ctx (x * y)
  end
  else big_binop ctx big_mul_fn Rbigint.mul a b

(* Python floor division / modulo on native ints *)
let floordiv_int x y =
  if y = 0 then raise Division_by_zero;
  let q = x / y in
  if (x < 0) <> (y < 0) && x mod y <> 0 then q - 1 else q

let mod_int x y =
  if y = 0 then raise Division_by_zero;
  let r = x mod y in
  if r <> 0 && (r < 0) <> (y < 0) then r + y else r

let floordiv ctx a b =
  if float_involved a b then begin
    let d = to_float b in
    if d = 0.0 then raise Division_by_zero;
    Value.Float (floor (to_float a /. d))
  end
  else if int_like a && int_like b then
    Ctx.of_int ctx (floordiv_int (as_int a) (as_int b))
  else
    big_binop ctx big_divmod_fn (fun x y -> fst (Rbigint.divmod x y)) a b

let modulo ctx a b =
  if float_involved a b then begin
    let d = to_float b in
    if d = 0.0 then raise Division_by_zero;
    let r = Float.rem (to_float a) d in
    let r = if r <> 0.0 && (r < 0.0) <> (d < 0.0) then r +. d else r in
    Value.Float r
  end
  else if int_like a && int_like b then
    Ctx.of_int ctx (mod_int (as_int a) (as_int b))
  else
    big_binop ctx big_divmod_fn (fun x y -> snd (Rbigint.divmod x y)) a b

let truediv _ctx a b =
  let d = to_float b in
  if d = 0.0 then raise Division_by_zero;
  Value.Float (to_float a /. d)

let divmod ctx a b = (floordiv ctx a b, modulo ctx a b)

let neg ctx = function
  | Value.Int i when i <> min_int -> Ctx.of_int ctx (-i)
  | Value.Int i -> normalize_big ctx (Rbigint.neg (Rbigint.of_int i))
  | Value.Float f -> Value.Float (-.f)
  | Value.Bool b -> Ctx.of_int ctx (-Bool.to_int b)
  | Value.Obj { payload = Value.Bigint b; _ } ->
      normalize_big ctx (Rbigint.neg b)
  | v -> raise (Type_error ("bad operand for unary -: " ^ Value.type_name v))

let pow ctx a b =
  match (a, b) with
  | _, _ when float_involved a b ->
      Value.Float (Rstr.pow_float ctx (to_float a) (to_float b))
  | _ when int_like a && int_like b ->
      let base = as_int a and e = as_int b in
      if e < 0 then Value.Float (Rstr.pow_float ctx (float_of_int base) (float_of_int e))
      else begin
        (* exponentiation by squaring with overflow promotion *)
        let rec go acc base e =
          if e = 0 then acc
          else begin
            let acc = if e land 1 = 1 then mul ctx acc base else acc in
            let base' = if e > 1 then mul ctx base base else base in
            go acc base' (e lsr 1)
          end
        in
        go (Value.of_int 1) (Value.of_int base) e
      end
  | _ ->
      raise
        (Type_error
           (Printf.sprintf "pow: unsupported operands %s, %s"
              (Value.type_name a) (Value.type_name b)))

let lshift ctx a n =
  match a with
  | Value.Int i when n < 40 && abs i < 1 lsl 20 -> Ctx.of_int ctx (i lsl n)
  | _ -> (
      match as_big a with
      | Some b ->
          Aot.call ctx big_lshift_fn (fun () ->
              let w = Rbigint.num_digits b + (n / 30) + 1 in
              Engine.emit (Ctx.engine ctx)
                (Cost.make ~alu:(2 * w) ~load:w ~store:w ());
              normalize_big ctx (Rbigint.lshift b n))
      | None -> raise (Type_error "lshift: expected int"))

let rshift ctx a n =
  match a with
  | Value.Int i when i >= 0 -> Ctx.of_int ctx (i asr n)
  | _ -> (
      match as_big a with
      | Some b ->
          Aot.call ctx big_rshift_fn (fun () ->
              let w = max 1 (Rbigint.num_digits b) in
              Engine.emit (Ctx.engine ctx)
                (Cost.make ~alu:(2 * w) ~load:w ~store:w ());
              normalize_big ctx (Rbigint.rshift b n))
      | None -> raise (Type_error "rshift: expected int"))

let compare_num ctx a b =
  if float_involved a b then Float.compare (to_float a) (to_float b)
  else if int_like a && int_like b then Int.compare (as_int a) (as_int b)
  else
    match (as_big a, as_big b) with
    | Some ba, Some bb ->
        Aot.call ctx big_cmp_fn (fun () ->
            let w = Rbigint.work ba bb in
            Engine.emit (Ctx.engine ctx) (Cost.make ~alu:w ~load:w ());
            Rbigint.compare ba bb)
    | _ ->
        raise
          (Type_error
             (Printf.sprintf "cannot compare %s and %s" (Value.type_name a)
                (Value.type_name b)))
