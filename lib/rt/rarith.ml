open Mtj_core
module Engine = Mtj_machine.Engine

exception Type_error of string

let big_add_fn = Aot.register ~name:"rbigint.add" ~src:Aot.L
let big_sub_fn = Aot.register ~name:"rbigint.sub" ~src:Aot.L
let big_mul_fn = Aot.register ~name:"rbigint.mul" ~src:Aot.L
let big_divmod_fn = Aot.register ~name:"rbigint.divmod" ~src:Aot.L
let big_lshift_fn = Aot.register ~name:"rbigint.lshift" ~src:Aot.L
let big_rshift_fn = Aot.register ~name:"rbigint.rshift" ~src:Aot.L
let big_cmp_fn = Aot.register ~name:"rbigint.cmp" ~src:Aot.L

(* typed-op accounting: every counted entry point classifies exactly once
   as immediate-fast or boxed-slow, so fast + slow = total structurally.
   Host-side counters only; the simulation never sees them. *)

let[@inline] tick_imm ctx =
  let h = Ctx.hstats ctx in
  h.Hstats.typed_ops_total <- h.Hstats.typed_ops_total + 1;
  h.Hstats.imm_fast_path_hits <- h.Hstats.imm_fast_path_hits + 1

let[@inline] tick_boxed ctx =
  let h = Ctx.hstats ctx in
  h.Hstats.typed_ops_total <- h.Hstats.typed_ops_total + 1;
  h.Hstats.boxed_slow_path_hits <- h.Hstats.boxed_slow_path_hits + 1

let is_number v =
  Value.is_int v || Value.is_float v || Value.is_bool v
  || (Value.is_obj v
     &&
     match (Value.to_obj_unchecked v).Value.payload with
     | Value.Bigint _ -> true
     | _ -> false)

let normalize_big ctx b =
  match Rbigint.to_int_opt b with
  | Some i -> Ctx.of_int ctx i
  | None -> Gc_sim.obj (Ctx.gc ctx) (Value.Bigint b)

let as_big v =
  if Value.is_int v then Some (Rbigint.of_int (Value.to_int_unchecked v))
  else if Value.is_bool v then
    Some (Rbigint.of_int (Bool.to_int (Value.to_bool_unchecked v)))
  else if Value.is_obj v then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Bigint b -> Some b
    | _ -> None
  else None

let to_float v =
  if Value.is_int v then float_of_int (Value.to_int_unchecked v)
  else if Value.is_float v then Value.to_float_unchecked v
  else if Value.is_bool v then (if Value.to_bool_unchecked v then 1.0 else 0.0)
  else if
    Value.is_obj v
    &&
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Bigint _ -> true
    | _ -> false
  then
    match (Value.to_obj_unchecked v).Value.payload with
    | Value.Bigint b -> float_of_string (Rbigint.to_string b)
    | _ -> assert false
  else raise (Type_error ("expected number, got " ^ Value.type_name v))

let charge_digits ctx fn a b op =
  Aot.call ctx fn @@ fun () ->
  let da = max 1 (Rbigint.num_digits a) and db = max 1 (Rbigint.num_digits b) in
  let w =
    if fn == big_mul_fn then da * db
    else if fn == big_divmod_fn then (max 1 (da - db + 1)) * db
    else max da db
  in
  Engine.emit (Ctx.engine ctx)
    (Cost.make ~alu:(3 * w) ~load:w ~store:w ~other:w ());
  op ()

(* fallthrough: promote both to bigint, run, demote if possible *)
let big_binop ctx fn op a b =
  match (as_big a, as_big b) with
  | Some ba, Some bb ->
      charge_digits ctx fn ba bb (fun () -> normalize_big ctx (op ba bb))
  | _ ->
      raise
        (Type_error
           (Printf.sprintf "unsupported operand types: %s and %s"
              (Value.type_name a) (Value.type_name b)))

let overflowed_add a b r = (a >= 0) = (b >= 0) && (r >= 0) <> (a >= 0)

let[@inline] int_like v = Value.is_int v || Value.is_bool v

let[@inline] as_int v =
  if Value.is_int v then Value.to_int_unchecked v
  else if Value.is_bool v then Bool.to_int (Value.to_bool_unchecked v)
  else raise (Type_error "expected int")

let[@inline] float_involved a b = Value.is_float a || Value.is_float b

(* Each binop leads with the immediate-int tag-test fast path: two tag
   tests, native arithmetic, an allocation-free [of_int] — no variant
   round-trip, no heap traffic.  The boxed tail is the old logic and
   also re-covers int operands mixed with bools. *)

let add ctx a b =
  if Value.is_int a && Value.is_int b then begin
    let x = Value.to_int_unchecked a and y = Value.to_int_unchecked b in
    let r = x + y in
    if overflowed_add x y r then begin
      tick_boxed ctx;
      big_binop ctx big_add_fn Rbigint.add a b
    end
    else begin
      tick_imm ctx;
      Value.of_int r
    end
  end
  else begin
    tick_boxed ctx;
    if float_involved a b then Value.of_float (to_float a +. to_float b)
    else if int_like a && int_like b then begin
      let x = as_int a and y = as_int b in
      let r = x + y in
      if overflowed_add x y r then big_binop ctx big_add_fn Rbigint.add a b
      else Ctx.of_int ctx r
    end
    else big_binop ctx big_add_fn Rbigint.add a b
  end

let sub ctx a b =
  if Value.is_int a && Value.is_int b then begin
    let x = Value.to_int_unchecked a and y = Value.to_int_unchecked b in
    let r = x - y in
    if (x >= 0) <> (y >= 0) && (r >= 0) <> (x >= 0) then begin
      tick_boxed ctx;
      big_binop ctx big_sub_fn Rbigint.sub a b
    end
    else begin
      tick_imm ctx;
      Value.of_int r
    end
  end
  else begin
    tick_boxed ctx;
    if float_involved a b then Value.of_float (to_float a -. to_float b)
    else if int_like a && int_like b then begin
      let x = as_int a and y = as_int b in
      let r = x - y in
      if (x >= 0) <> (y >= 0) && (r >= 0) <> (x >= 0) then
        big_binop ctx big_sub_fn Rbigint.sub a b
      else Ctx.of_int ctx r
    end
    else big_binop ctx big_sub_fn Rbigint.sub a b
  end

(* min_int-safe: [abs min_int] is still negative, so the old magnitude
   screen let [min_int * -1] wrap silently; and the quotient probe must
   never divide by -1 ([min_int / -1] traps in hardware) *)
let mul_overflows x y =
  x <> 0 && y <> 0
  &&
  if x = -1 then y = min_int
  else if y = -1 then x = min_int
  else
    (x < -(1 lsl 31) || x > 1 lsl 31 || y < -(1 lsl 31) || y > 1 lsl 31)
    && (let r = x * y in r / x <> y)

let mul ctx a b =
  if Value.is_int a && Value.is_int b then begin
    let x = Value.to_int_unchecked a and y = Value.to_int_unchecked b in
    if mul_overflows x y then begin
      tick_boxed ctx;
      big_binop ctx big_mul_fn Rbigint.mul a b
    end
    else begin
      tick_imm ctx;
      Value.of_int (x * y)
    end
  end
  else begin
    tick_boxed ctx;
    if float_involved a b then Value.of_float (to_float a *. to_float b)
    else if int_like a && int_like b then begin
      let x = as_int a and y = as_int b in
      if mul_overflows x y then big_binop ctx big_mul_fn Rbigint.mul a b
      else Ctx.of_int ctx (x * y)
    end
    else big_binop ctx big_mul_fn Rbigint.mul a b
  end

(* Python floor division / modulo on native ints *)
let floordiv_int x y =
  if y = 0 then raise Division_by_zero;
  let q = x / y in
  if (x < 0) <> (y < 0) && x mod y <> 0 then q - 1 else q

let mod_int x y =
  if y = 0 then raise Division_by_zero;
  let r = x mod y in
  if r <> 0 && (r < 0) <> (y < 0) then r + y else r

let floordiv ctx a b =
  if Value.is_int a && Value.is_int b then begin
    tick_imm ctx;
    Value.of_int
      (floordiv_int (Value.to_int_unchecked a) (Value.to_int_unchecked b))
  end
  else begin
    tick_boxed ctx;
    if float_involved a b then begin
      let d = to_float b in
      if d = 0.0 then raise Division_by_zero;
      Value.of_float (floor (to_float a /. d))
    end
    else if int_like a && int_like b then
      Ctx.of_int ctx (floordiv_int (as_int a) (as_int b))
    else big_binop ctx big_divmod_fn (fun x y -> fst (Rbigint.divmod x y)) a b
  end

let modulo ctx a b =
  if Value.is_int a && Value.is_int b then begin
    tick_imm ctx;
    Value.of_int (mod_int (Value.to_int_unchecked a) (Value.to_int_unchecked b))
  end
  else begin
    tick_boxed ctx;
    if float_involved a b then begin
      let d = to_float b in
      if d = 0.0 then raise Division_by_zero;
      let r = Float.rem (to_float a) d in
      let r = if r <> 0.0 && (r < 0.0) <> (d < 0.0) then r +. d else r in
      Value.of_float r
    end
    else if int_like a && int_like b then
      Ctx.of_int ctx (mod_int (as_int a) (as_int b))
    else big_binop ctx big_divmod_fn (fun x y -> snd (Rbigint.divmod x y)) a b
  end

let truediv ctx a b =
  tick_boxed ctx;
  let d = to_float b in
  if d = 0.0 then raise Division_by_zero;
  Value.of_float (to_float a /. d)

let divmod ctx a b = (floordiv ctx a b, modulo ctx a b)

let neg ctx v =
  if Value.is_int v then begin
    let i = Value.to_int_unchecked v in
    if i <> min_int then begin
      tick_imm ctx;
      Value.of_int (-i)
    end
    else begin
      tick_boxed ctx;
      normalize_big ctx (Rbigint.neg (Rbigint.of_int i))
    end
  end
  else begin
    tick_boxed ctx;
    if Value.is_float v then Value.of_float (-.(Value.to_float_unchecked v))
    else if Value.is_bool v then
      Ctx.of_int ctx (-Bool.to_int (Value.to_bool_unchecked v))
    else
      match as_big v with
      | Some b -> normalize_big ctx (Rbigint.neg b)
      | None ->
          raise (Type_error ("bad operand for unary -: " ^ Value.type_name v))
  end

let pow ctx a b =
  if float_involved a b then
    Value.of_float (Rstr.pow_float ctx (to_float a) (to_float b))
  else if int_like a && int_like b then begin
    let base = as_int a and e = as_int b in
    if e < 0 then
      Value.of_float (Rstr.pow_float ctx (float_of_int base) (float_of_int e))
    else begin
      (* exponentiation by squaring with overflow promotion; the [mul]
         calls do the typed-op accounting *)
      let rec go acc base e =
        if e = 0 then acc
        else begin
          let acc = if e land 1 = 1 then mul ctx acc base else acc in
          let base' = if e > 1 then mul ctx base base else base in
          go acc base' (e lsr 1)
        end
      in
      go (Value.of_int 1) (Value.of_int base) e
    end
  end
  else
    raise
      (Type_error
         (Printf.sprintf "pow: unsupported operands %s, %s"
            (Value.type_name a) (Value.type_name b)))

let lshift ctx a n =
  if
    (* explicit range, not [abs]: [abs min_int] is still negative, so
       the magnitude guard would wrongly admit min_int and wrap *)
    Value.is_int a && n < 40
    && Value.to_int_unchecked a > -(1 lsl 20)
    && Value.to_int_unchecked a < 1 lsl 20
  then begin
    tick_imm ctx;
    Value.of_int (Value.to_int_unchecked a lsl n)
  end
  else begin
    tick_boxed ctx;
    match as_big a with
    | Some b ->
        Aot.call ctx big_lshift_fn (fun () ->
            let w = Rbigint.num_digits b + (n / 30) + 1 in
            Engine.emit (Ctx.engine ctx)
              (Cost.make ~alu:(2 * w) ~load:w ~store:w ());
            normalize_big ctx (Rbigint.lshift b n))
    | None -> raise (Type_error "lshift: expected int")
  end

let rshift ctx a n =
  if Value.is_int a && Value.to_int_unchecked a >= 0 then begin
    tick_imm ctx;
    (* [asr] is unspecified past the word size (hardware wraps the
       count); clamp — a non-negative int shifted by >= 62 is 0 *)
    Value.of_int (Value.to_int_unchecked a asr (if n > 62 then 62 else n))
  end
  else begin
    tick_boxed ctx;
    match as_big a with
    | Some b ->
        Aot.call ctx big_rshift_fn (fun () ->
            let w = max 1 (Rbigint.num_digits b) in
            Engine.emit (Ctx.engine ctx)
              (Cost.make ~alu:(2 * w) ~load:w ~store:w ());
            normalize_big ctx (Rbigint.rshift b n))
    | None -> raise (Type_error "rshift: expected int")
  end

let compare_num ctx a b =
  if Value.is_int a && Value.is_int b then begin
    tick_imm ctx;
    Int.compare (Value.to_int_unchecked a) (Value.to_int_unchecked b)
  end
  else begin
    tick_boxed ctx;
    if float_involved a b then Float.compare (to_float a) (to_float b)
    else if int_like a && int_like b then Int.compare (as_int a) (as_int b)
    else
      match (as_big a, as_big b) with
      | Some ba, Some bb ->
          Aot.call ctx big_cmp_fn (fun () ->
              let w = Rbigint.work ba bb in
              Engine.emit (Ctx.engine ctx) (Cost.make ~alu:w ~load:w ());
              Rbigint.compare ba bb)
      | _ ->
          raise
            (Type_error
               (Printf.sprintf "cannot compare %s and %s" (Value.type_name a)
                  (Value.type_name b)))
  end
