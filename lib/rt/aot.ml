open Mtj_core
module Engine = Mtj_machine.Engine

type src = R | L | C | I | M

type fn = { id : int; name : string; src : src }

let registry : (string, fn) Hashtbl.t = Hashtbl.create 64
let by_id : (int, fn) Hashtbl.t = Hashtbl.create 64
let next_id = ref 0

(* The registry is written during module initialization (every runtime
   module registers its functions at load time) and then frozen by the
   harness before any worker domain starts.  After [freeze], the tables
   are read-only and may be consulted from any domain without taking
   [lock]; a registration of a genuinely new name after the freeze is a
   programming error and raises. *)
let lock = Mutex.create ()
let frozen = ref false

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let freeze () = frozen := true
let is_frozen () = !frozen

let register ~name ~src =
  match Hashtbl.find_opt registry name with
  | Some fn -> fn
  | None when !frozen ->
      invalid_arg
        ("Aot.register: registry is frozen but " ^ name
       ^ " was never registered during startup")
  | None ->
      with_lock (fun () ->
          match Hashtbl.find_opt registry name with
          | Some fn -> fn
          | None ->
              let fn = { id = !next_id; name; src } in
              incr next_id;
              Hashtbl.replace registry name fn;
              Hashtbl.replace by_id fn.id fn;
              fn)

let id fn = fn.id
let name fn = fn.name
let src fn = fn.src

let src_letter = function
  | R -> "R"
  | L -> "L"
  | C -> "C"
  | I -> "I"
  | M -> "M"

let find i = Hashtbl.find_opt by_id i

(* call/return overhead of leaving JIT-compiled code for an AOT function:
   argument shuffling, spills, the call itself (the paper's Fig. 9 shows
   call-class IR nodes costing 15+ x86 instructions) *)
let call_overhead = Cost.make ~alu:3 ~load:3 ~store:4 ~other:5 ()

let call ctx fn body =
  let eng = Ctx.engine ctx in
  let from_jit =
    Phase.equal (Engine.current_phase eng) Phase.Jit
  in
  Engine.emit eng call_overhead;
  Engine.branch_indirect eng ~site:(700_000 + fn.id) ~target:fn.id;
  if from_jit then begin
    Engine.push_phase eng Phase.Jit_call;
    Engine.annot eng (Annot.Aot_enter fn.id);
    Fun.protect
      ~finally:(fun () ->
        Engine.annot eng (Annot.Aot_exit fn.id);
        Engine.pop_phase eng)
      body
  end
  else begin
    Engine.annot eng (Annot.Aot_enter fn.id);
    Fun.protect
      ~finally:(fun () -> Engine.annot eng (Annot.Aot_exit fn.id))
      body
  end
