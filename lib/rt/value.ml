(** The dynamic object model shared by every VM in the reproduction.

    Immediate-tagged implementation.  See value.mli for the contract;
    this file is the ONLY place allowed to use [Stdlib.Obj].

    Representation: a [t] is one OCaml word.
    - [Int i] is the native tagged immediate [i] itself ([Obj.is_int]
      true).  OCaml's int tagging gives immediates a low bit of 1, so
      the GC never dereferences them and [of_int] is the identity —
      the full 63-bit range is preserved, which matters because the
      bigint-promotion overflow thresholds feed simulated digests.
    - Everything else is a pointer to a [boxed] block, discriminated by
      the block's header tag.  All [boxed] constructors carry an
      argument on purpose: a constant (argument-less) constructor would
      itself be an immediate and collide with small ints.

    Safety: a match over [boxed] compiles to a header-tag switch, which
    would read one word past an immediate, so every [Stdlib.Obj.magic v
    : boxed] below is dominated by an [is_int] test.  [nil]/[true_]/
    [false_] are the only [BNil]/[BBool] blocks ever built (nothing here
    or in the public API constructs fresh ones, and values are never
    marshalled), so the nil/bool predicates are single pointer
    compares.  No [t] value is ever a [Double_tag] block ([BFloat] is a
    regular block POINTING at a boxed float), so [Array.make] on
    [t array] can never flip to a flat float array behind our back. *)

type t = Stdlib.Obj.t

type obj = {
  uid : int;
  mutable payload : payload;
  mutable gc_gen : int;    (* 0 = nursery, 1 = old generation *)
  mutable gc_age : int;    (* minor collections survived *)
  mutable gc_mark : bool;
  mutable remembered : bool;
  mutable words : int;     (* current heap footprint in words *)
}

and payload =
  | Instance of instance
  | Class of cls
  | List of lst
  | Dict of dict
  | Set of dict            (* sets reuse the ordered-dict storage *)
  | Tuple of t array
  | Func of func
  | Method of { receiver : t; func : obj }
  | Cell of { mutable cell : t }
  | Bigint of Rbigint.t
  | Strbuilder of Buffer.t
  | Range of { start : int; stop : int; step : int }

and instance = { cls : obj; mutable fields : t array }

and cls = {
  cls_id : int;
  cls_name : string;
  mutable layout : string array;   (* field name -> index ("map"/shape) *)
  mutable attrs : (string * t) list;  (* methods and class attributes *)
  mutable parent : obj option;
}

and func = {
  func_id : int;
  func_name : string;
  arity : int;
  code_ref : int;               (* index into the owning VM's code table *)
  mutable captured : t array;   (* closed-over cells *)
}

(* list strategies, after PyPy's storage strategies (Table III names
   IntegerListStrategy / BytesListStrategy functions) *)
and lst = { mutable strategy : strategy }

and strategy =
  | S_empty
  | S_int of { mutable ints : int array; mutable len : int }
  | S_float of { mutable floats : float array; mutable len : int }
  | S_str of { mutable strs : string array; mutable len : int }
  | S_obj of { mutable objs : t array; mutable len : int }

(* RPython-style insertion-ordered dict: a dense entries array plus an
   open-addressing index table *)
and dict = {
  mutable entries : entry array;
  mutable num_entries : int;  (* used slots in [entries], incl. dead *)
  mutable num_live : int;
  mutable index : int array;  (* -1 empty, -2 tombstone, else entry slot *)
  mutable index_mask : int;
}

and entry = {
  mutable key : t;
  mutable dval : t;
  mutable khash : int;
  mutable live : bool;
}

(* the boxed half of the representation; tags 0..4 in declaration order *)
and boxed =
  | BNil of unit
  | BBool of bool
  | BFloat of float
  | BStr of string
  | BObj of obj

(* --- construction --- *)

let[@inline] of_int (i : int) : t = Stdlib.Obj.repr i

let nil : t = Stdlib.Obj.repr (BNil ())
let true_ : t = Stdlib.Obj.repr (BBool true)
let false_ : t = Stdlib.Obj.repr (BBool false)

let[@inline] of_bool b = if b then true_ else false_
let[@inline] of_float (f : float) : t = Stdlib.Obj.repr (BFloat f)
let[@inline] of_str (s : string) : t = Stdlib.Obj.repr (BStr s)
let[@inline] of_obj (o : obj) : t = Stdlib.Obj.repr (BObj o)

(* --- predicates --- *)

let[@inline] is_int (v : t) = Stdlib.Obj.is_int v
let[@inline] is_nil (v : t) = v == nil
let[@inline] is_bool (v : t) = v == true_ || v == false_

(* block-only decomposition; every call is dominated by an is_int test *)
let[@inline] as_boxed (v : t) : boxed = Stdlib.Obj.obj v

let[@inline] is_float v =
  (not (is_int v))
  && (match as_boxed v with BFloat _ -> true | _ -> false)

let[@inline] is_str v =
  (not (is_int v)) && (match as_boxed v with BStr _ -> true | _ -> false)

let[@inline] is_obj v =
  (not (is_int v)) && (match as_boxed v with BObj _ -> true | _ -> false)

(* --- unchecked destructors --- *)

let[@inline] to_int_unchecked (v : t) : int = Stdlib.Obj.obj v
let[@inline] to_bool_unchecked (v : t) : bool = v == true_

(* the single field of a [boxed] block holds the payload value itself
   (for [BFloat] that is the pointer to the boxed float, not an inline
   double — see the header comment) *)
let[@inline] to_float_unchecked (v : t) : float =
  Stdlib.Obj.obj (Stdlib.Obj.field v 0)

let[@inline] to_str_unchecked (v : t) : string =
  Stdlib.Obj.obj (Stdlib.Obj.field v 0)

let[@inline] to_obj_unchecked (v : t) : obj =
  Stdlib.Obj.obj (Stdlib.Obj.field v 0)

(* --- cold-path view --- *)

type view =
  | Nil
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Obj of obj

let[@inline] view (v : t) : view =
  if is_int v then Int (to_int_unchecked v)
  else
    match as_boxed v with
    | BNil () -> Nil
    | BBool b -> Bool b
    | BFloat f -> Float f
    | BStr s -> Str s
    | BObj o -> Obj o

(* --- inspection --- *)

let type_name v =
  if is_int v then "int"
  else
    match as_boxed v with
    | BNil () -> "NoneType"
    | BBool _ -> "bool"
    | BFloat _ -> "float"
    | BStr _ -> "str"
    | BObj o -> (
        match o.payload with
        | Instance i -> (
            match i.cls.payload with
            | Class c -> c.cls_name
            | _ -> "instance")
        | Class _ -> "type"
        | List _ -> "list"
        | Dict _ -> "dict"
        | Set _ -> "set"
        | Tuple _ -> "tuple"
        | Func _ -> "function"
        | Method _ -> "method"
        | Cell _ -> "cell"
        | Bigint _ -> "int"
        | Strbuilder _ -> "strbuilder"
        | Range _ -> "range")

let list_len (l : lst) =
  match l.strategy with
  | S_empty -> 0
  | S_int s -> s.len
  | S_float s -> s.len
  | S_str s -> s.len
  | S_obj s -> s.len

let truthy v =
  if is_int v then to_int_unchecked v <> 0
  else
    match as_boxed v with
    | BNil () -> false
    | BBool b -> b
    | BFloat f -> f <> 0.0
    | BStr s -> String.length s > 0
    | BObj o -> (
        match o.payload with
        | List l -> list_len l > 0
        | Dict d | Set d -> d.num_live > 0
        | Tuple a -> Array.length a > 0
        | Bigint b -> Rbigint.sign b <> 0
        | Strbuilder b -> Buffer.length b > 0
        | Range r ->
            if r.step > 0 then r.stop > r.start else r.stop < r.start
        | Instance _ | Class _ | Func _ | Method _ | Cell _ -> true)

(* structural equality with Python semantics for immediates, tuples,
   bigints; identity for other heap objects *)
let rec py_eq a b =
  if is_int a then
    if is_int b then (to_int_unchecked a : int) = to_int_unchecked b
    else
      (* int vs float cross-equality, int vs bigint *)
      match as_boxed b with
      | BFloat y -> float_of_int (to_int_unchecked a) = y
      | BObj { payload = Bigint bb; _ } ->
          Rbigint.equal bb (Rbigint.of_int (to_int_unchecked a))
      | BNil () | BBool _ | BStr _ | BObj _ -> false
  else if is_int b then py_eq b a
  else
    match (as_boxed a, as_boxed b) with
    | BNil (), BNil () -> true
    | BBool x, BBool y -> x = y
    | BFloat x, BFloat y -> x = y
    | BStr x, BStr y -> String.equal x y
    | BObj x, BObj y -> (
        match (x.payload, y.payload) with
        | Tuple xs, Tuple ys ->
            Array.length xs = Array.length ys
            && begin
                 let rec go i =
                   i >= Array.length xs || (py_eq xs.(i) ys.(i) && go (i + 1))
                 in
                 go 0
               end
        | Bigint bx, Bigint by -> Rbigint.equal bx by
        | _ -> x == y)
    | (BNil () | BBool _ | BFloat _ | BStr _ | BObj _), _ -> false

(* Integral floats below this magnitude are treated as exact integers by
   both [py_hash] and [float_repr].  The two MUST share one threshold:
   [py_eq] says [of_int i = of_float f] whenever [float_of_int i = f],
   so any integral float the hash treats differently from its integer
   twin breaks the hash/equality contract dicts rely on.  (Historically
   py_hash used 1e15 while float_repr used 1e16, so integral floats in
   [1e15, 1e16) hashed differently from their equal ints.) *)
let integral_float_limit = 1e16

(* FNV-style string hash, standing in for rstr_ll_strhash *)
let str_hash s =
  let h = ref 2166136261 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 16777619 land max_int) s;
  !h

let rec py_hash v =
  if is_int v then to_int_unchecked v land max_int
  else
    match as_boxed v with
    | BNil () -> 271828
    | BBool b -> if b then 1 else 0
    | BFloat f ->
        if Float.is_integer f && Float.abs f < integral_float_limit then
          int_of_float f land max_int
        else Hashtbl.hash f
    | BStr s -> str_hash s
    | BObj o -> (
        match o.payload with
        | Tuple xs ->
            Array.fold_left
              (fun acc v -> ((acc * 31) + py_hash v) land max_int)
              1000003 xs
        | Bigint b -> (
            match Rbigint.to_int_opt b with
            | Some i -> i land max_int
            | None -> str_hash (Rbigint.to_string b))
        | _ -> o.uid)

(* heap footprint in words of a freshly-built payload (header excluded;
   Gc_sim adds a fixed header) *)
let payload_words = function
  | Instance i -> 1 + Array.length i.fields
  | Class _ -> 8
  | List l -> (
      2
      +
      match l.strategy with
      | S_empty -> 0
      | S_int s -> Array.length s.ints
      | S_float s -> Array.length s.floats
      | S_str s -> Array.length s.strs
      | S_obj s -> Array.length s.objs)
  | Dict d | Set d -> 3 + (2 * Array.length d.entries) + Array.length d.index
  | Tuple a -> 1 + Array.length a
  | Func f -> 4 + Array.length f.captured
  | Method _ -> 3
  | Cell _ -> 2
  | Bigint b -> 2 + Rbigint.num_digits b
  | Strbuilder b -> 2 + ((Buffer.length b + 7) / 8)
  | Range _ -> 4

(* --- rendering (repr/str for the hosted languages) --- *)

let float_repr f =
  if Float.is_integer f && Float.abs f < integral_float_limit then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec repr v =
  match view v with
  | Nil -> "None"
  | Bool true -> "True"
  | Bool false -> "False"
  | Int i -> string_of_int i
  | Float f -> float_repr f
  | Str s -> "'" ^ s ^ "'"
  | Obj o -> (
      match o.payload with
      | Bigint b -> Rbigint.to_string b
      | Tuple a ->
          "(" ^ String.concat ", " (Array.to_list (Array.map repr a)) ^ ")"
      | List l ->
          let items = ref [] in
          for i = list_len l - 1 downto 0 do
            items := repr (list_get_unsafe l i) :: !items
          done;
          "[" ^ String.concat ", " !items ^ "]"
      | Dict d ->
          let items = ref [] in
          for i = d.num_entries - 1 downto 0 do
            let e = d.entries.(i) in
            if e.live then
              items := (repr e.key ^ ": " ^ repr e.dval) :: !items
          done;
          "{" ^ String.concat ", " !items ^ "}"
      | Set d ->
          let items = ref [] in
          for i = d.num_entries - 1 downto 0 do
            let e = d.entries.(i) in
            if e.live then items := repr e.key :: !items
          done;
          "{" ^ String.concat ", " !items ^ "}"
      | Instance i -> (
          match i.cls.payload with
          | Class c -> "<" ^ c.cls_name ^ " instance>"
          | _ -> "<instance>")
      | Class c -> "<class " ^ c.cls_name ^ ">"
      | Func f -> "<function " ^ f.func_name ^ ">"
      | Method _ -> "<bound method>"
      | Cell _ -> "<cell>"
      | Strbuilder b -> "<strbuilder " ^ string_of_int (Buffer.length b) ^ ">"
      | Range r -> Printf.sprintf "range(%d, %d, %d)" r.start r.stop r.step)

and to_display_string v = if is_str v then to_str_unchecked v else repr v

and list_get_unsafe (l : lst) i =
  match l.strategy with
  | S_empty -> invalid_arg "list_get_unsafe: empty"
  | S_int s -> of_int s.ints.(i)
  | S_float s -> of_float s.floats.(i)
  | S_str s -> of_str s.strs.(i)
  | S_obj s -> s.objs.(i)

let pp fmt v = Format.pp_print_string fmt (repr v)
