(** The dynamic object model shared by every VM in the reproduction.
   Heap objects carry GC metadata (generation, age, mark bit) managed by
   Gc_sim; immediate values (nil, bools, ints, floats, immutable strings)
   are unboxed from the GC's point of view, as in PyPy after its
   small-int optimization. *)

type t =
  | Nil
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Obj of obj

and obj = {
  uid : int;
  mutable payload : payload;
  mutable gc_gen : int;    (* 0 = nursery, 1 = old generation *)
  mutable gc_age : int;    (* minor collections survived *)
  mutable gc_mark : bool;
  mutable remembered : bool;
  mutable words : int;     (* current heap footprint in words *)
}

and payload =
  | Instance of instance
  | Class of cls
  | List of lst
  | Dict of dict
  | Set of dict            (* sets reuse the ordered-dict storage *)
  | Tuple of t array
  | Func of func
  | Method of { receiver : t; func : obj }
  | Cell of { mutable cell : t }
  | Bigint of Rbigint.t
  | Strbuilder of Buffer.t
  | Range of { start : int; stop : int; step : int }
  | Iter of { mutable idx : int; src : t }

and instance = { cls : obj; mutable fields : t array }

and cls = {
  cls_id : int;
  cls_name : string;
  mutable layout : string array;   (* field name -> index ("map"/shape) *)
  mutable attrs : (string * t) list;  (* methods and class attributes *)
  mutable parent : obj option;
}

and func = {
  func_id : int;
  func_name : string;
  arity : int;
  code_ref : int;               (* index into the owning VM's code table *)
  mutable captured : t array;   (* closed-over cells *)
}

(* list strategies, after PyPy's storage strategies (Table III names
   IntegerListStrategy / BytesListStrategy functions) *)
and lst = { mutable strategy : strategy }

and strategy =
  | S_empty
  | S_int of { mutable ints : int array; mutable len : int }
  | S_float of { mutable floats : float array; mutable len : int }
  | S_str of { mutable strs : string array; mutable len : int }
  | S_obj of { mutable objs : t array; mutable len : int }

(* RPython-style insertion-ordered dict: a dense entries array plus an
   open-addressing index table *)
and dict = {
  mutable entries : entry array;
  mutable num_entries : int;  (* used slots in [entries], incl. dead *)
  mutable num_live : int;
  mutable index : int array;  (* -1 empty, -2 tombstone, else entry slot *)
  mutable index_mask : int;
}

and entry = {
  mutable key : t;
  mutable dval : t;
  mutable khash : int;
  mutable live : bool;
}

(* --- interned immediates (PyPy's small-int optimization) --- *)

(* Hot arithmetic produces mostly small ints; serving those from a
   preallocated table makes the common case allocation-free on the host.
   Safe because [Int] boxes are immutable and every consumer compares
   them structurally ([py_eq]/[py_hash]/[Semantics.identical] all match
   on the payload, never on the box), and because immediates are unboxed
   from the simulated GC's point of view (see the header comment), so
   sharing boxes changes nothing the simulation can observe. *)

let min_interned = -1024
let max_interned = 1024

let interned_ints =
  Array.init (max_interned - min_interned + 1) (fun i -> Int (min_interned + i))

let[@inline] is_interned_int i = i >= min_interned && i <= max_interned

let[@inline] of_int i =
  if is_interned_int i then Array.unsafe_get interned_ints (i - min_interned)
  else Int i

let true_ = Bool true
let false_ = Bool false
let nil = Nil

let[@inline] of_bool b = if b then true_ else false_

(* normalize a value to its interned box if one exists; used on
   translate-time constants so each threaded-code constant is boxed once
   and shared *)
let intern = function
  | Int i -> of_int i
  | Bool b -> of_bool b
  | v -> v

let type_name = function
  | Nil -> "NoneType"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "str"
  | Obj o -> (
      match o.payload with
      | Instance i -> (
          match i.cls.payload with
          | Class c -> c.cls_name
          | _ -> "instance")
      | Class _ -> "type"
      | List _ -> "list"
      | Dict _ -> "dict"
      | Set _ -> "set"
      | Tuple _ -> "tuple"
      | Func _ -> "function"
      | Method _ -> "method"
      | Cell _ -> "cell"
      | Bigint _ -> "int"
      | Strbuilder _ -> "strbuilder"
      | Range _ -> "range"
      | Iter _ -> "iterator")

let list_len (l : lst) =
  match l.strategy with
  | S_empty -> 0
  | S_int s -> s.len
  | S_float s -> s.len
  | S_str s -> s.len
  | S_obj s -> s.len

let truthy = function
  | Nil -> false
  | Bool b -> b
  | Int i -> i <> 0
  | Float f -> f <> 0.0
  | Str s -> String.length s > 0
  | Obj o -> (
      match o.payload with
      | List l -> list_len l > 0
      | Dict d | Set d -> d.num_live > 0
      | Tuple a -> Array.length a > 0
      | Bigint b -> Rbigint.sign b <> 0
      | Strbuilder b -> Buffer.length b > 0
      | Range r ->
          if r.step > 0 then r.stop > r.start else r.stop < r.start
      | Instance _ | Class _ | Func _ | Method _ | Cell _ | Iter _ -> true)

(* structural equality with Python semantics for immediates, tuples,
   bigints; identity for other heap objects *)
let rec py_eq a b =
  match (a, b) with
  | Nil, Nil -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> String.equal x y
  | Obj x, Obj y -> (
      match (x.payload, y.payload) with
      | Tuple xs, Tuple ys ->
          Array.length xs = Array.length ys
          && begin
               let rec go i =
                 i >= Array.length xs || (py_eq xs.(i) ys.(i) && go (i + 1))
               in
               go 0
             end
      | Bigint bx, Bigint by -> Rbigint.equal bx by
      | _ -> x == y)
  | Obj { payload = Bigint bx; _ }, Int y
  | Int y, Obj { payload = Bigint bx; _ } ->
      Rbigint.equal bx (Rbigint.of_int y)
  | (Nil | Bool _ | Int _ | Float _ | Str _ | Obj _), _ -> false

(* Integral floats below this magnitude are treated as exact integers by
   both [py_hash] and [float_repr].  The two MUST share one threshold:
   [py_eq] says [Int i = Float f] whenever [float_of_int i = f], so any
   integral float the hash treats differently from its integer twin
   breaks the hash/equality contract dicts rely on.  (Historically
   py_hash used 1e15 while float_repr used 1e16, so integral floats in
   [1e15, 1e16) hashed differently from their equal ints.) *)
let integral_float_limit = 1e16

(* FNV-style string hash, standing in for rstr_ll_strhash *)
let str_hash s =
  let h = ref 2166136261 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 16777619 land max_int) s;
  !h

let rec py_hash = function
  | Nil -> 271828
  | Bool b -> if b then 1 else 0
  | Int i -> i land max_int
  | Float f ->
      if Float.is_integer f && Float.abs f < integral_float_limit then
        int_of_float f land max_int
      else Hashtbl.hash f
  | Str s -> str_hash s
  | Obj o -> (
      match o.payload with
      | Tuple xs ->
          Array.fold_left (fun acc v -> ((acc * 31) + py_hash v) land max_int)
            1000003 xs
      | Bigint b -> (
          match Rbigint.to_int_opt b with
          | Some i -> i land max_int
          | None -> str_hash (Rbigint.to_string b))
      | _ -> o.uid)

(* heap footprint in words of a freshly-built payload (header excluded;
   Gc_sim adds a fixed header) *)
let payload_words = function
  | Instance i -> 1 + Array.length i.fields
  | Class _ -> 8
  | List l -> (
      2
      +
      match l.strategy with
      | S_empty -> 0
      | S_int s -> Array.length s.ints
      | S_float s -> Array.length s.floats
      | S_str s -> Array.length s.strs
      | S_obj s -> Array.length s.objs)
  | Dict d | Set d -> 3 + (2 * Array.length d.entries) + Array.length d.index
  | Tuple a -> 1 + Array.length a
  | Func f -> 4 + Array.length f.captured
  | Method _ -> 3
  | Cell _ -> 2
  | Bigint b -> 2 + Rbigint.num_digits b
  | Strbuilder b -> 2 + ((Buffer.length b + 7) / 8)
  | Range _ -> 4
  | Iter _ -> 3

(* --- rendering (repr/str for the hosted languages) --- *)

let float_repr f =
  if Float.is_integer f && Float.abs f < integral_float_limit then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec repr v =
  match v with
  | Nil -> "None"
  | Bool true -> "True"
  | Bool false -> "False"
  | Int i -> string_of_int i
  | Float f -> float_repr f
  | Str s -> "'" ^ s ^ "'"
  | Obj o -> (
      match o.payload with
      | Bigint b -> Rbigint.to_string b
      | Tuple a ->
          "(" ^ String.concat ", " (Array.to_list (Array.map repr a)) ^ ")"
      | List l ->
          let items = ref [] in
          for i = list_len l - 1 downto 0 do
            items := repr (list_get_unsafe l i) :: !items
          done;
          "[" ^ String.concat ", " !items ^ "]"
      | Dict d ->
          let items = ref [] in
          for i = d.num_entries - 1 downto 0 do
            let e = d.entries.(i) in
            if e.live then
              items := (repr e.key ^ ": " ^ repr e.dval) :: !items
          done;
          "{" ^ String.concat ", " !items ^ "}"
      | Set d ->
          let items = ref [] in
          for i = d.num_entries - 1 downto 0 do
            let e = d.entries.(i) in
            if e.live then items := repr e.key :: !items
          done;
          "{" ^ String.concat ", " !items ^ "}"
      | Instance i -> (
          match i.cls.payload with
          | Class c -> "<" ^ c.cls_name ^ " instance>"
          | _ -> "<instance>")
      | Class c -> "<class " ^ c.cls_name ^ ">"
      | Func f -> "<function " ^ f.func_name ^ ">"
      | Method _ -> "<bound method>"
      | Cell _ -> "<cell>"
      | Strbuilder b -> "<strbuilder " ^ string_of_int (Buffer.length b) ^ ">"
      | Range r -> Printf.sprintf "range(%d, %d, %d)" r.start r.stop r.step
      | Iter _ -> "<iterator>")

and to_display_string v =
  match v with Str s -> s | other -> repr other

and list_get_unsafe (l : lst) i =
  match l.strategy with
  | S_empty -> invalid_arg "list_get_unsafe: empty"
  | S_int s -> of_int s.ints.(i)
  | S_float s -> Float s.floats.(i)
  | S_str s -> Str s.strs.(i)
  | S_obj s -> s.objs.(i)

let pp fmt v = Format.pp_print_string fmt (repr v)
