(** Lists with storage strategies (PyPy's list strategies).

    A list of homogeneous ints/floats/strings is stored unboxed; mixing
    types generalizes the storage to boxed objects.  The strategy
    transition functions and the slice/find helpers are the
    interpreter-level AOT functions of Table III
    ([IntegerListStrategy_setslice], [_fill_in_with_sliced],
    [_safe_find], [BytesListStrategy_setslice]). *)

val create : Ctx.t -> Value.t list -> Value.obj
(** Allocate a list object choosing the narrowest strategy that fits. *)

val length : Value.lst -> int
val get : Ctx.t -> Value.obj -> int -> Value.t
(** Raises [Invalid_argument] when out of bounds (the VM layers raise
    their language-level IndexError before calling). *)

val set : Ctx.t -> Value.obj -> int -> Value.t -> unit
val append : Ctx.t -> Value.obj -> Value.t -> unit
val pop : Ctx.t -> Value.obj -> int -> Value.t
val slice : Ctx.t -> Value.obj -> int -> int -> Value.obj
val setslice : Ctx.t -> Value.obj -> int -> int -> Value.obj -> unit
(** [setslice ctx dst lo hi src] replaces [dst[lo:hi]] with [src]'s
    elements (equal lengths only, as the benchmarks use). *)

val find : Ctx.t -> Value.obj -> Value.t -> int
(** Index of the first structurally-equal element, or -1. *)

val concat : Ctx.t -> Value.obj -> Value.obj -> Value.obj
val to_array : Value.lst -> Value.t array
val of_obj : Value.obj -> Value.lst
(** Extract list storage; raises [Invalid_argument] on non-lists. *)

val strategy_name : Value.lst -> string
