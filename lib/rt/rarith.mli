(** Numeric tower shared by the hosted languages.

    Native ints overflow transparently into {!Rbigint} values (Python
    semantics); bignum operations run as AOT-compiled calls registered in
    Table III's names ([rbigint.add], [.mul], [.divmod], [.lshift]), with
    machine work charged proportionally to the digits processed — this is
    what makes [pidigits] JIT-call-bound, as in the paper.

    Operations raise {!Type_error} on non-numeric operands (the language
    layers translate this into their own exceptions) and [Division_by_zero]
    where Python would raise ZeroDivisionError. *)

exception Type_error of string

val is_number : Value.t -> bool

val add : Ctx.t -> Value.t -> Value.t -> Value.t
val sub : Ctx.t -> Value.t -> Value.t -> Value.t
val mul : Ctx.t -> Value.t -> Value.t -> Value.t
val floordiv : Ctx.t -> Value.t -> Value.t -> Value.t
val truediv : Ctx.t -> Value.t -> Value.t -> Value.t
val modulo : Ctx.t -> Value.t -> Value.t -> Value.t
val divmod : Ctx.t -> Value.t -> Value.t -> Value.t * Value.t
val neg : Ctx.t -> Value.t -> Value.t
val pow : Ctx.t -> Value.t -> Value.t -> Value.t
val lshift : Ctx.t -> Value.t -> int -> Value.t
val rshift : Ctx.t -> Value.t -> int -> Value.t
val compare_num : Ctx.t -> Value.t -> Value.t -> int
val to_float : Value.t -> float
(** Raises {!Type_error} on non-numbers. *)

val normalize_big : Ctx.t -> Rbigint.t -> Value.t
(** Box as [Int] when it fits, else allocate a bigint object. *)

val floordiv_int : int -> int -> int
(** Python floor division on native ints; raises [Division_by_zero]. *)

val mod_int : int -> int -> int
(** Python modulo on native ints; raises [Division_by_zero]. *)
