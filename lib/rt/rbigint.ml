(* Sign-magnitude bignums over base-2^30 digits, little-endian, no
   leading zero digits.  The magnitude algorithms follow Knuth TAOCP
   vol. 2 (algorithm D for division). *)

let shift_bits = 30
let base = 1 lsl shift_bits
let digit_mask = base - 1

type t = { sign : int; mag : int array }
(* invariant: sign = 0 iff mag = [||]; mag has no trailing (most
   significant) zero digit *)

let zero = { sign = 0; mag = [||] }
let one = { sign = 1; mag = [| 1 |] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

(* increment a magnitude in place semantics-free: returns a fresh array *)
let incr_mag mag =
  let lm = Array.length mag in
  let out = Array.make (lm + 1) 0 in
  Array.blit mag 0 out 0 lm;
  let i = ref 0 in
  let carry = ref 1 in
  while !carry = 1 && !i <= lm do
    let s = out.(!i) + 1 in
    if s = base then out.(!i) <- 0
    else begin
      out.(!i) <- s;
      carry := 0
    end;
    incr i
  done;
  out

let rec of_int i =
  if i = 0 then zero
  else if i = min_int then
    (* abs min_int overflows; build |min_int| as |min_int + 1| + 1 *)
    let near = of_int (min_int + 1) in
    normalize (-1) (incr_mag near.mag)
  else begin
    let sign = if i < 0 then -1 else 1 in
    (* careful with min_int: negate via abs on the magnitude digits *)
    let rec digits acc m = if m = 0 then acc else digits (acc + 1) (m lsr shift_bits) in
    let m0 = abs i in
    let n = digits 0 m0 in
    let mag = Array.make n 0 in
    let m = ref m0 in
    for k = 0 to n - 1 do
      mag.(k) <- !m land digit_mask;
      m := !m lsr shift_bits
    done;
    { sign; mag }
  end

let to_int_opt t =
  match Array.length t.mag with
  | 0 -> Some 0
  | 1 -> Some (t.sign * t.mag.(0))
  | 2 -> Some (t.sign * ((t.mag.(1) lsl shift_bits) lor t.mag.(0)))
  | 3 when t.mag.(2) < 4 ->
      let v =
        (t.mag.(2) lsl (2 * shift_bits))
        lor (t.mag.(1) lsl shift_bits)
        lor t.mag.(0)
      in
      if v >= 0 then Some (t.sign * v) else None
  | 3 when t.mag.(2) = 4 && t.mag.(1) = 0 && t.mag.(0) = 0 && t.sign < 0 ->
      (* -2^62 is exactly min_int: the one magnitude-2^62 value that
         fits a native int *)
      Some min_int
  | _ -> None

let sign t = t.sign
let num_digits t = Array.length t.mag

let bits_of_digit d =
  let rec go n d = if d = 0 then n else go (n + 1) (d lsr 1) in
  go 0 d

let numbits t =
  let n = Array.length t.mag in
  if n = 0 then 0
  else ((n - 1) * shift_bits) + bits_of_digit t.mag.(n - 1)

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then { t with sign = 1 } else t

(* --- magnitude primitives --- *)

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else if a.(i) <> b.(i) then Int.compare a.(i) b.(i)
      else go (i - 1)
    in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lo, hi, llo, lhi = if la < lb then (a, b, la, lb) else (b, a, lb, la) in
  let out = Array.make (lhi + 1) 0 in
  let carry = ref 0 in
  for i = 0 to llo - 1 do
    let s = lo.(i) + hi.(i) + !carry in
    out.(i) <- s land digit_mask;
    carry := s lsr shift_bits
  done;
  for i = llo to lhi - 1 do
    let s = hi.(i) + !carry in
    out.(i) <- s land digit_mask;
    carry := s lsr shift_bits
  done;
  out.(lhi) <- !carry;
  out

(* requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bi = if i < lb then b.(i) else 0 in
    let d = a.(i) - bi - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  out

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      if ai <> 0 then begin
        for j = 0 to lb - 1 do
          let p = (ai * b.(j)) + out.(i + j) + !carry in
          out.(i + j) <- p land digit_mask;
          carry := p lsr shift_bits
        done;
        out.(i + lb) <- out.(i + lb) + !carry
      end
    done;
    out
  end

(* --- signed operations --- *)

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    match cmp_mag a.mag b.mag with
    | 0 -> zero
    | c when c > 0 -> normalize a.sign (sub_mag a.mag b.mag)
    | _ -> normalize b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)
let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

let compare a b =
  if a.sign <> b.sign then Int.compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let equal a b = compare a b = 0

(* --- shifts on magnitudes --- *)

let lshift_mag mag n =
  if Array.length mag = 0 then [||]
  else begin
    let words = n / shift_bits and bits = n mod shift_bits in
    let lm = Array.length mag in
    let out = Array.make (lm + words + 1) 0 in
    if bits = 0 then Array.blit mag 0 out words lm
    else begin
      let carry = ref 0 in
      for i = 0 to lm - 1 do
        let v = (mag.(i) lsl bits) lor !carry in
        out.(words + i) <- v land digit_mask;
        carry := v lsr shift_bits
      done;
      out.(words + lm) <- !carry
    end;
    out
  end

let rshift_mag mag n =
  let words = n / shift_bits and bits = n mod shift_bits in
  let lm = Array.length mag in
  if words >= lm then [||]
  else begin
    let lo = lm - words in
    let out = Array.make lo 0 in
    if bits = 0 then Array.blit mag words out 0 lo
    else begin
      for i = 0 to lo - 1 do
        let hi_part =
          if words + i + 1 < lm then
            (mag.(words + i + 1) lsl (shift_bits - bits)) land digit_mask
          else 0
        in
        out.(i) <- (mag.(words + i) lsr bits) lor hi_part
      done
    end;
    out
  end

let lshift a n =
  if n < 0 then invalid_arg "Rbigint.lshift: negative shift"
  else if n = 0 || a.sign = 0 then a
  else normalize a.sign (lshift_mag a.mag n)

(* --- division --- *)

(* short division of a magnitude by a single digit *)
let divmod_digit mag d =
  let lm = Array.length mag in
  let q = Array.make lm 0 in
  let r = ref 0 in
  for i = lm - 1 downto 0 do
    let cur = (!r lsl shift_bits) lor mag.(i) in
    q.(i) <- cur / d;
    r := cur mod d
  done;
  (q, !r)

(* Knuth algorithm D over magnitudes: returns (q, r) with u = q*v + r,
   0 <= r < v.  Requires v nonzero. *)
let divmod_mag u v =
  let lv = Array.length v in
  if lv = 0 then raise Division_by_zero;
  if cmp_mag u v < 0 then ([||], u)
  else if lv = 1 then begin
    let q, r = divmod_digit u v.(0) in
    (q, if r = 0 then [||] else [| r |])
  end
  else begin
    (* D1: normalize so the top divisor digit has its high bit set *)
    let shift = shift_bits - bits_of_digit v.(lv - 1) in
    let un = lshift_mag u shift in
    (* ensure un has an extra high digit slot: lshift_mag already adds one *)
    let vn = rshift_mag (lshift_mag v shift) 0 in
    let vn =
      (* strip the extra zero limb lshift_mag may have appended *)
      let n = ref (Array.length vn) in
      while !n > 0 && vn.(!n - 1) = 0 do decr n done;
      Array.sub vn 0 !n
    in
    let n = Array.length vn in
    let m =
      let lu = ref (Array.length un) in
      while !lu > 0 && un.(!lu - 1) = 0 do decr lu done;
      !lu - n
    in
    let m = max m 0 in
    (* un padded to n + m + 1 digits *)
    let u_arr = Array.make (n + m + 1) 0 in
    Array.blit un 0 u_arr 0 (min (Array.length un) (n + m + 1));
    let q = Array.make (m + 1) 0 in
    let vtop = vn.(n - 1) and vsecond = vn.(n - 2) in
    for j = m downto 0 do
      (* D3: estimate qhat from the top two dividend digits *)
      let top2 = (u_arr.(j + n) lsl shift_bits) lor u_arr.(j + n - 1) in
      let qhat = ref (top2 / vtop) in
      let rhat = ref (top2 mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := top2 - (!qhat * vtop)
      end;
      let continue = ref true in
      while !continue && !rhat < base do
        let u_next = if j + n - 2 >= 0 then u_arr.(j + n - 2) else 0 in
        if !qhat * vsecond > (!rhat lsl shift_bits) lor u_next then begin
          decr qhat;
          rhat := !rhat + vtop
        end
        else continue := false
      done;
      (* D4: multiply and subtract *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * vn.(i) + !carry in
        carry := p lsr shift_bits;
        let d = u_arr.(j + i) - (p land digit_mask) - !borrow in
        if d < 0 then begin
          u_arr.(j + i) <- d + base;
          borrow := 1
        end
        else begin
          u_arr.(j + i) <- d;
          borrow := 0
        end
      done;
      let d = u_arr.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* D6: estimate was one too large; add back *)
        u_arr.(j + n) <- d + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s = u_arr.(j + i) + vn.(i) + !carry2 in
          u_arr.(j + i) <- s land digit_mask;
          carry2 := s lsr shift_bits
        done;
        u_arr.(j + n) <- (u_arr.(j + n) + !carry2) land digit_mask
      end
      else u_arr.(j + n) <- d;
      q.(j) <- !qhat
    done;
    (* D8: denormalize the remainder *)
    let r = rshift_mag (Array.sub u_arr 0 n) shift in
    (q, r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (* adjust to floor semantics: remainder takes the divisor's sign *)
    if r.sign <> 0 && r.sign <> b.sign then
      (sub q one, add r b)
    else (q, r)
  end

let rshift a n =
  if n < 0 then invalid_arg "Rbigint.rshift: negative shift"
  else if n = 0 || a.sign = 0 then a
  else if a.sign > 0 then normalize 1 (rshift_mag a.mag n)
  else begin
    (* floor semantics for negatives: -((-a + (2^n - 1)) >> n) done via
       divmod by 2^n *)
    let q, _ = divmod a (lshift one n) in
    q
  end

(* --- decimal conversion --- *)

let chunk = 100_000_000 (* 10^8 < 2^30, so short division by it is exact *)
let chunk_digits = 8

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go mag acc =
      let lm =
        let n = ref (Array.length mag) in
        while !n > 0 && mag.(!n - 1) = 0 do decr n done;
        !n
      in
      if lm = 0 then acc
      else begin
        let mag = Array.sub mag 0 lm in
        let q, r = divmod_digit mag chunk in
        go q (r :: acc)
      end
    in
    let chunks = go t.mag [] in
    if t.sign < 0 then Buffer.add_char buf '-';
    (match chunks with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
        Buffer.add_string buf (string_of_int first);
        List.iter
          (fun c -> Buffer.add_string buf (Printf.sprintf "%0*d" chunk_digits c))
          rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Rbigint.of_string: empty";
  let negative = s.[0] = '-' in
  let start = if negative || s.[0] = '+' then 1 else 0 in
  if start >= len then invalid_arg "Rbigint.of_string: no digits";
  let acc = ref zero in
  let chunk_big = of_int chunk in
  let i = ref start in
  while !i < len do
    let upto = min len (!i + chunk_digits) in
    let piece = String.sub s !i (upto - !i) in
    String.iter
      (fun c -> if c < '0' || c > '9' then invalid_arg "Rbigint.of_string")
      piece;
    let scale =
      if upto - !i = chunk_digits then chunk_big
      else of_int (int_of_float (10.0 ** float_of_int (upto - !i)))
    in
    acc := add (mul !acc scale) (of_int (int_of_string piece));
    i := upto
  done;
  if negative then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)

let work a b =
  let da = max 1 (num_digits a) and db = max 1 (num_digits b) in
  da + db
