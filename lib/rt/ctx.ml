(** Runtime context threaded through all runtime operations: the machine
    engine that work is charged to and the garbage collector that owns
    the heap. *)

type t = {
  engine : Mtj_machine.Engine.t;
  gc : Gc_sim.t;
  out : Buffer.t;  (* program output (print), kept off stdout for benches *)
}

let create ?config () =
  let config = Option.value ~default:Mtj_core.Config.default config in
  let engine = Mtj_machine.Engine.create ~config () in
  let gc = Gc_sim.create engine config in
  { engine; gc; out = Buffer.create 256 }

let engine t = t.engine
let gc t = t.gc
let out t = t.out
let config t = Mtj_machine.Engine.config t.engine
