(** Runtime context threaded through all runtime operations: the machine
    engine that work is charged to and the garbage collector that owns
    the heap. *)

type code = ..
(* executable form of a compiled trace.  The constructor lives in the
   JIT layer (Mtj_rjit.Executor extends this with its closure-threaded
   step arrays); declaring the extensible type here lets the context own
   the cache without depending on the JIT. *)

type t = {
  engine : Mtj_machine.Engine.t;
  gc : Gc_sim.t;
  out : Buffer.t;  (* program output (print), kept off stdout for benches *)
  builtin_cache : (int, Value.t) Hashtbl.t;
      (* builtin function singletons, keyed by builtin tag.  Per-context
         (rather than a process-wide table) so every VM allocates its
         builtins in its own simulated heap: runs stay independent of
         which VM happened to run first, which is what makes results
         reproducible under the parallel harness. *)
  code_cache : (int, code) Hashtbl.t;
      (* threaded trace code keyed by trace id.  Per-context for the same
         reason as [builtin_cache]: translations close over this
         context's engine/gc, so sharing them across domains would leak
         simulated state between runs. *)
  hstats : Hstats.t;
      (* host-side fast-path counters; per-context so parallel runs never
         share a counter *)
  frame_pool : Value.t Apool.t;
      (* free lists for dead frames' locals/stack arrays, per-context so
         pooled arrays never cross domains *)
  uid : int;
      (* process-unique context identity.  The shared artifact cache
         (Mtj_rjit.Sharedcache) records the publishing context's uid so
         hits can be split into same-context and cross-context; the uid
         is host-side bookkeeping only and never feeds simulated state,
         so allocation order across domains cannot perturb a run. *)
}

(* uid source; Atomic so contexts can be created from any domain *)
let next_uid = Atomic.make 0

let create ?config () =
  let config = Option.value ~default:Mtj_core.Config.default config in
  let engine = Mtj_machine.Engine.create ~config () in
  let gc = Gc_sim.create engine config in
  let hstats = Hstats.create () in
  {
    engine;
    gc;
    out = Buffer.create 256;
    builtin_cache = Hashtbl.create 64;
    code_cache = Hashtbl.create 64;
    hstats;
    frame_pool =
      Apool.create ~enabled:config.Mtj_core.Config.frame_pool ~stats:hstats
        Value.nil;
    uid = Atomic.fetch_and_add next_uid 1;
  }

let engine t = t.engine
let gc t = t.gc
let out t = t.out
let builtin_cache t = t.builtin_cache
let code_cache t = t.code_cache
let config t = Mtj_machine.Engine.config t.engine
let hstats t = t.hstats
let frame_pool t = t.frame_pool
let uid t = t.uid

(* small-int boxing used to be counted here (intern-table hits); with
   the immediate representation [Value.of_int] is the identity and the
   fast-path accounting moved into Rarith's typed entry points *)
let[@inline] of_int _t i = Value.of_int i
