open Mtj_core
module Engine = Mtj_machine.Engine

let setslice_int_fn = Aot.register ~name:"IntegerListStrategy_setslice" ~src:Aot.I
let fill_sliced_fn =
  Aot.register ~name:"IntegerListStrategy_fill_in_with_sliced_items" ~src:Aot.I
let safe_find_fn = Aot.register ~name:"IntegerListStrategy_safe_find" ~src:Aot.I
let setslice_bytes_fn = Aot.register ~name:"BytesListStrategy_setslice" ~src:Aot.I

let of_obj (o : Value.obj) =
  match o.Value.payload with
  | Value.List l -> l
  | _ -> invalid_arg "Rlist.of_obj: not a list"

let length = Value.list_len

(* choose the narrowest strategy covering all the values; tag tests on
   the immediates, no variant round-trip *)
let strategy_of_values values : Value.strategy =
  let all p = List.for_all p values in
  if values = [] then Value.S_empty
  else if all Value.is_int then
    Value.S_int
      {
        ints = Array.of_list (List.map Value.to_int_unchecked values);
        len = List.length values;
      }
  else if all Value.is_float then
    Value.S_float
      {
        floats = Array.of_list (List.map Value.to_float_unchecked values);
        len = List.length values;
      }
  else if all Value.is_str then
    Value.S_str
      {
        strs = Array.of_list (List.map Value.to_str_unchecked values);
        len = List.length values;
      }
  else Value.S_obj { objs = Array.of_list values; len = List.length values }

let create ctx values =
  Gc_sim.alloc (Ctx.gc ctx) (Value.List { strategy = strategy_of_values values })

let strategy_name (l : Value.lst) =
  match l.Value.strategy with
  | Value.S_empty -> "empty"
  | Value.S_int _ -> "int"
  | Value.S_float _ -> "float"
  | Value.S_str _ -> "bytes"
  | Value.S_obj _ -> "object"

let nth (l : Value.lst) i : Value.t =
  match l.Value.strategy with
  | Value.S_empty -> invalid_arg "Rlist.get: index out of range"
  | Value.S_int s ->
      if i >= s.len then invalid_arg "Rlist.get" else Value.of_int s.ints.(i)
  | Value.S_float s ->
      if i >= s.len then invalid_arg "Rlist.get"
      else Value.of_float s.floats.(i)
  | Value.S_str s ->
      if i >= s.len then invalid_arg "Rlist.get" else Value.of_str s.strs.(i)
  | Value.S_obj s ->
      if i >= s.len then invalid_arg "Rlist.get" else s.objs.(i)

let get ctx (o : Value.obj) i =
  let l = of_obj o in
  if i < 0 || i >= length l then invalid_arg "Rlist.get: index out of range";
  Engine.mem_access (Ctx.engine ctx) ~addr:(Gc_sim.addr o ~field:i) ~write:false;
  nth l i

(* generalize storage to boxed objects (PyPy's strategy switch) *)
let generalize ctx (o : Value.obj) (l : Value.lst) =
  let n = length l in
  let objs = Array.init (max 4 n) (fun i -> if i < n then nth l i else Value.nil) in
  l.Value.strategy <- Value.S_obj { objs; len = n };
  Engine.emit (Ctx.engine ctx) (Cost.make ~alu:(2 * n) ~load:n ~store:n ());
  Gc_sim.grow (Ctx.gc ctx) o

let grow_array arr len make =
  if len < Array.length arr then arr
  else begin
    let bigger = make (max 4 (2 * Array.length arr)) in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

(* append dispatches on the storage strategy and the value's tag; an
   immediate int lands in int storage with one tag test and one store,
   never materializing a variant view *)
let rec append ctx (o : Value.obj) v =
  let l = of_obj o in
  let eng = Ctx.engine ctx in
  Engine.mem_access eng ~addr:(Gc_sim.addr o ~field:(length l)) ~write:true;
  match l.Value.strategy with
  | Value.S_empty ->
      if Value.is_int v then begin
        l.Value.strategy <-
          Value.S_int
            { ints = Array.make 4 (Value.to_int_unchecked v); len = 1 };
        Gc_sim.grow (Ctx.gc ctx) o
      end
      else if Value.is_float v then begin
        l.Value.strategy <-
          Value.S_float
            { floats = Array.make 4 (Value.to_float_unchecked v); len = 1 };
        Gc_sim.grow (Ctx.gc ctx) o
      end
      else if Value.is_str v then begin
        l.Value.strategy <-
          Value.S_str
            { strs = Array.make 4 (Value.to_str_unchecked v); len = 1 };
        Gc_sim.grow (Ctx.gc ctx) o
      end
      else begin
        l.Value.strategy <- Value.S_obj { objs = Array.make 4 v; len = 1 };
        Gc_sim.grow (Ctx.gc ctx) o;
        Gc_sim.write_barrier (Ctx.gc ctx) ~parent:o ~child:v
      end
  | Value.S_int s when Value.is_int v ->
      let arr = grow_array s.ints s.len (fun n -> Array.make n 0) in
      if arr != s.ints then begin
        s.ints <- arr;
        Gc_sim.grow (Ctx.gc ctx) o
      end;
      s.ints.(s.len) <- Value.to_int_unchecked v;
      s.len <- s.len + 1
  | Value.S_float s when Value.is_float v ->
      let arr = grow_array s.floats s.len (fun n -> Array.make n 0.0) in
      if arr != s.floats then begin
        s.floats <- arr;
        Gc_sim.grow (Ctx.gc ctx) o
      end;
      s.floats.(s.len) <- Value.to_float_unchecked v;
      s.len <- s.len + 1
  | Value.S_str s when Value.is_str v ->
      let arr = grow_array s.strs s.len (fun n -> Array.make n "") in
      if arr != s.strs then begin
        s.strs <- arr;
        Gc_sim.grow (Ctx.gc ctx) o
      end;
      s.strs.(s.len) <- Value.to_str_unchecked v;
      s.len <- s.len + 1
  | Value.S_obj s ->
      let arr = grow_array s.objs s.len (fun n -> Array.make n Value.nil) in
      if arr != s.objs then begin
        s.objs <- arr;
        Gc_sim.grow (Ctx.gc ctx) o
      end;
      s.objs.(s.len) <- v;
      s.len <- s.len + 1;
      Gc_sim.write_barrier (Ctx.gc ctx) ~parent:o ~child:v
  | Value.S_int _ | Value.S_float _ | Value.S_str _ ->
      generalize ctx o l;
      append ctx o v

let rec set ctx (o : Value.obj) i v =
  let l = of_obj o in
  if i < 0 || i >= length l then invalid_arg "Rlist.set: index out of range";
  Engine.mem_access (Ctx.engine ctx) ~addr:(Gc_sim.addr o ~field:i) ~write:true;
  match l.Value.strategy with
  | Value.S_int s when Value.is_int v -> s.ints.(i) <- Value.to_int_unchecked v
  | Value.S_float s when Value.is_float v ->
      s.floats.(i) <- Value.to_float_unchecked v
  | Value.S_str s when Value.is_str v ->
      s.strs.(i) <- Value.to_str_unchecked v
  | Value.S_obj s ->
      s.objs.(i) <- v;
      Gc_sim.write_barrier (Ctx.gc ctx) ~parent:o ~child:v
  | Value.S_int _ | Value.S_float _ | Value.S_str _ | Value.S_empty ->
      generalize ctx o l;
      set ctx o i v

let pop ctx (o : Value.obj) i =
  let l = of_obj o in
  let n = length l in
  if i < 0 || i >= n then invalid_arg "Rlist.pop: index out of range";
  let v = nth l i in
  let eng = Ctx.engine ctx in
  Engine.emit eng (Cost.make ~alu:(n - i) ~load:(n - i) ~store:(n - i) ());
  (match l.Value.strategy with
  | Value.S_empty -> ()
  | Value.S_int s ->
      Array.blit s.ints (i + 1) s.ints i (s.len - i - 1);
      s.len <- s.len - 1
  | Value.S_float s ->
      Array.blit s.floats (i + 1) s.floats i (s.len - i - 1);
      s.len <- s.len - 1
  | Value.S_str s ->
      Array.blit s.strs (i + 1) s.strs i (s.len - i - 1);
      s.len <- s.len - 1
  | Value.S_obj s ->
      Array.blit s.objs (i + 1) s.objs i (s.len - i - 1);
      s.objs.(s.len - 1) <- Value.nil;
      s.len <- s.len - 1);
  v

let slice ctx (o : Value.obj) lo hi =
  let l = of_obj o in
  let n = length l in
  let lo = max 0 lo and hi = min n hi in
  let hi = max lo hi in
  Aot.call ctx fill_sliced_fn @@ fun () ->
  let eng = Ctx.engine ctx in
  let count = hi - lo in
  Engine.emit eng (Cost.make ~alu:count ~load:count ~store:count ());
  let values = ref [] in
  for i = hi - 1 downto lo do
    values := nth l i :: !values
  done;
  create ctx !values

let setslice ctx (dst : Value.obj) lo hi (src : Value.obj) =
  let dl = of_obj dst and sl = of_obj src in
  let fn =
    match dl.Value.strategy with
    | Value.S_str _ -> setslice_bytes_fn
    | Value.S_empty | Value.S_int _ | Value.S_float _ | Value.S_obj _ ->
        setslice_int_fn
  in
  Aot.call ctx fn @@ fun () ->
  let eng = Ctx.engine ctx in
  let count = hi - lo in
  Engine.emit eng (Cost.make ~alu:(2 * count) ~load:count ~store:count ());
  if count <> length sl then
    invalid_arg "Rlist.setslice: length mismatch";
  for i = 0 to count - 1 do
    set ctx dst (lo + i) (nth sl i)
  done

(* per-element probe charge of [find], interned once *)
let find_step_cost = Cost.make ~alu:2 ~load:1 ()

let find ctx (o : Value.obj) v =
  let l = of_obj o in
  Aot.call ctx safe_find_fn @@ fun () ->
  let eng = Ctx.engine ctx in
  let n = length l in
  let result = ref (-1) in
  (try
     for i = 0 to n - 1 do
       Engine.emit eng find_step_cost;
       let hit = Value.py_eq (nth l i) v in
       Engine.branch eng ~site:920_001 ~taken:hit;
       if hit then begin
         result := i;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let to_array (l : Value.lst) = Array.init (length l) (fun i -> nth l i)

let concat ctx (a : Value.obj) (b : Value.obj) =
  let la = of_obj a and lb = of_obj b in
  let values =
    List.init (length la) (nth la) @ List.init (length lb) (nth lb)
  in
  let n = List.length values in
  Engine.emit (Ctx.engine ctx) (Cost.make ~alu:n ~load:n ~store:n ());
  create ctx values
