open Mtj_core
module Engine = Mtj_machine.Engine

let lookup_fn = Aot.register ~name:"rordereddict.ll_call_lookup_function" ~src:Aot.R
let resize_fn = Aot.register ~name:"rordereddict.ll_dict_resize" ~src:Aot.R

let free_slot = -1
let tombstone = -2

let create _ctx : Value.dict =
  {
    Value.entries =
      Array.init 8 (fun _ ->
          { Value.key = Value.nil; dval = Value.nil; khash = 0; live = false });
    num_entries = 0;
    num_live = 0;
    index = Array.make 16 free_slot;
    index_mask = 15;
  }

let length (d : Value.dict) = d.Value.num_live

(* The probe loop: CPython/PyPy-style perturbed open addressing.  Returns
   [`Found slot] or [`Free index_position].  Charges one index load per
   probe and a key-comparison branch on collisions. *)
(* per-probe charge records, interned once (the probe loop is the
   hottest dict path) *)
let probe_index_cost = Cost.make ~alu:3 ~load:1 ()
let probe_entry_cost = Cost.make ~load:2 ~alu:2 ()

let probe ctx (d : Value.dict) key khash =
  let eng = Ctx.engine ctx in
  let mask = d.Value.index_mask in
  let rec go j perturb first_tomb =
    Engine.emit eng probe_index_cost;
    let slot = d.Value.index.(j) in
    if slot = free_slot then begin
      Engine.branch eng ~site:910_001 ~taken:false;
      `Free (Option.value ~default:j first_tomb)
    end
    else if slot = tombstone then begin
      Engine.branch eng ~site:910_001 ~taken:true;
      let first_tomb = Some (Option.value ~default:j first_tomb) in
      go (((5 * j) + 1 + perturb) land mask) (perturb lsr 5) first_tomb
    end
    else begin
      let e = d.Value.entries.(slot) in
      (* touch the entry for the cache model *)
      Engine.emit eng probe_entry_cost;
      let hit = e.Value.khash = khash && Value.py_eq e.Value.key key in
      Engine.branch eng ~site:910_002 ~taken:hit;
      if hit && e.Value.live then `Found slot
      else go (((5 * j) + 1 + perturb) land mask) (perturb lsr 5) first_tomb
    end
  in
  go (khash land mask) khash None

let lookup ctx d key khash =
  Aot.call ctx lookup_fn (fun () -> probe ctx d key khash)

(* [*_with] variants take the key hash from the caller.  [Value.py_hash]
   is pure host code — it charges nothing — so whether the hash is
   recomputed here or hoisted by the caller is invisible to the
   simulation; the [_h] entry points only save host work (and tick the
   [dict_hash_skips] counter). *)

let get_with ctx (d : Value.dict) key khash =
  match lookup ctx d key khash with
  | `Found slot -> Some d.Value.entries.(slot).Value.dval
  | `Free _ -> None

let get ctx (d : Value.dict) key = get_with ctx d key (Value.py_hash key)

let[@inline] skip_hash ctx =
  let h = Ctx.hstats ctx in
  h.Hstats.dict_hash_skips <- h.Hstats.dict_hash_skips + 1

let get_h ctx d key khash =
  skip_hash ctx;
  get_with ctx d key khash

let contains ctx d key = Option.is_some (get ctx d key)

let contains_h ctx d key khash = Option.is_some (get_h ctx d key khash)

let grow_index ctx (owner : Value.obj) (d : Value.dict) =
  Aot.call ctx resize_fn @@ fun () ->
  let eng = Ctx.engine ctx in
  (* compact the entries array, dropping dead entries *)
  let live =
    Array.of_list
      (List.filter
         (fun (e : Value.entry) -> e.Value.live)
         (Array.to_list (Array.sub d.Value.entries 0 d.Value.num_entries)))
  in
  let nlive = Array.length live in
  let cap = max 8 (nlive * 2) in
  let entries =
    Array.init cap (fun i ->
        if i < nlive then live.(i)
        else
          { Value.key = Value.nil; dval = Value.nil; khash = 0; live = false })
  in
  let isize =
    let rec go n = if n >= 3 * cap then n else go (n * 2) in
    go 16
  in
  let index = Array.make isize free_slot in
  let mask = isize - 1 in
  Array.iteri
    (fun slot (e : Value.entry) ->
      let rec place j perturb =
        if index.(j) = free_slot then index.(j) <- slot
        else place (((5 * j) + 1 + perturb) land mask) (perturb lsr 5)
      in
      place (e.Value.khash land mask) e.Value.khash)
    (Array.sub entries 0 nlive);
  d.Value.entries <- entries;
  d.Value.num_entries <- nlive;
  d.Value.index <- index;
  d.Value.index_mask <- mask;
  Engine.emit eng (Cost.make ~alu:(4 * nlive) ~load:(2 * nlive) ~store:(2 * nlive) ());
  Gc_sim.grow (Ctx.gc ctx) owner

let rec set_with ctx (owner : Value.obj) (d : Value.dict) key v khash =
  (match lookup ctx d key khash with
  | `Found slot ->
      let e = d.Value.entries.(slot) in
      e.Value.dval <- v;
      Engine.mem_access (Ctx.engine ctx) ~addr:(Gc_sim.addr owner ~field:slot)
        ~write:true
  | `Free pos ->
      if d.Value.num_entries >= Array.length d.Value.entries then begin
        grow_index ctx owner d;
        set_fresh ctx owner d key v khash
      end
      else begin
        let slot = d.Value.num_entries in
        let e = d.Value.entries.(slot) in
        e.Value.key <- key;
        e.Value.dval <- v;
        e.Value.khash <- khash;
        e.Value.live <- true;
        d.Value.num_entries <- slot + 1;
        d.Value.num_live <- d.Value.num_live + 1;
        d.Value.index.(pos) <- slot;
        Engine.mem_access (Ctx.engine ctx)
          ~addr:(Gc_sim.addr owner ~field:slot) ~write:true;
        (* keep the index sparse enough for short probe sequences *)
        if 3 * d.Value.num_entries > 2 * Array.length d.Value.index then
          grow_index ctx owner d
      end);
  Gc_sim.write_barrier (Ctx.gc ctx) ~parent:owner ~child:key;
  Gc_sim.write_barrier (Ctx.gc ctx) ~parent:owner ~child:v

and set_fresh ctx _owner d key v khash =
  (* insert after a resize: the probe must be redone on the new index *)
  match lookup ctx d key khash with
  | `Found slot -> d.Value.entries.(slot).Value.dval <- v
  | `Free pos ->
      let slot = d.Value.num_entries in
      let e = d.Value.entries.(slot) in
      e.Value.key <- key;
      e.Value.dval <- v;
      e.Value.khash <- khash;
      e.Value.live <- true;
      d.Value.num_entries <- slot + 1;
      d.Value.num_live <- d.Value.num_live + 1;
      d.Value.index.(pos) <- slot

let set ctx owner d key v = set_with ctx owner d key v (Value.py_hash key)

let set_h ctx owner d key v khash =
  skip_hash ctx;
  set_with ctx owner d key v khash

let delete_with ctx (d : Value.dict) key khash =
  match lookup ctx d key khash with
  | `Found slot ->
      let e = d.Value.entries.(slot) in
      e.Value.live <- false;
      e.Value.key <- Value.nil;
      e.Value.dval <- Value.nil;
      d.Value.num_live <- d.Value.num_live - 1;
      (* tombstone the index position pointing at this slot *)
      let mask = d.Value.index_mask in
      let rec go j perturb =
        if d.Value.index.(j) = slot then d.Value.index.(j) <- tombstone
        else if d.Value.index.(j) = free_slot then ()
        else go (((5 * j) + 1 + perturb) land mask) (perturb lsr 5)
      in
      go (khash land mask) khash;
      true
  | `Free _ -> false

let delete ctx d key = delete_with ctx d key (Value.py_hash key)

let delete_h ctx d key khash =
  skip_hash ctx;
  delete_with ctx d key khash

let iter (d : Value.dict) f =
  for i = 0 to d.Value.num_entries - 1 do
    let e = d.Value.entries.(i) in
    if e.Value.live then f e.Value.key e.Value.dval
  done

let keys d =
  let acc = ref [] in
  iter d (fun k _ -> acc := k :: !acc);
  List.rev !acc

let nth_live (d : Value.dict) n =
  let seen = ref 0 in
  let result = ref None in
  (try
     for i = 0 to d.Value.num_entries - 1 do
       let e = d.Value.entries.(i) in
       if e.Value.live then begin
         if !seen = n then begin
           result := Some (e.Value.key, e.Value.dval);
           raise Exit
         end;
         incr seen
       end
     done
   with Exit -> ());
  !result
