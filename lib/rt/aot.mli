(** Registry of AOT-compiled runtime functions.

    In a meta-tracing JIT, interpreter/runtime functions whose loops have
    data-dependent bounds are not inlined into traces; they are compiled
    ahead of time and {e called} from JIT-compiled code (Sec. II).  The
    paper shows these calls dominate many benchmarks (Figure 2's
    [jit_call] phase, Table III).

    Every such function in this reproduction is registered here.  Calling
    through {!call} while JIT-compiled code is executing switches the
    engine to the [Jit_call] phase and emits [Aot_enter]/[Aot_exit]
    cross-layer annotations, which {!Mtj_pintool.Aot_attrib} uses to
    attribute time exactly as the paper's PinTool does. *)

(** Where the function is defined, following Table III's legend. *)
type src =
  | R  (** RPython type-system intrinsics *)
  | L  (** RPython standard library *)
  | C  (** external C standard library *)
  | I  (** the interpreter *)
  | M  (** a PyPy module *)

type fn

val register : name:string -> src:src -> fn
(** Register (or look up, if already registered) a function by name.
    Registration of new names is only legal before {!freeze}; afterwards
    the call degrades to a (domain-safe, lock-free) lookup and raises
    [Invalid_argument] on an unknown name. *)

val freeze : unit -> unit
(** Mark startup registration as complete.  All runtime modules register
    their functions at module-initialization time, so by the time a
    worker domain can exist the registry is fully populated; freezing
    makes the tables read-only so concurrent domains can consult them
    without synchronization.  Called by the harness (and by
    {!Mtj_harness.Pool}) before the first domain is spawned. *)

val is_frozen : unit -> bool

val id : fn -> int
val name : fn -> string
val src : fn -> src
val src_letter : src -> string
val find : int -> fn option
(** Look up by id (used when resolving annotation tags). *)

val call : Ctx.t -> fn -> (unit -> 'a) -> 'a
(** Execute the function body.  Charges the call/return overhead, emits
    the annotations, and — when invoked from JIT-compiled code — runs the
    body under the [Jit_call] phase.  The body itself charges its
    data-dependent work. *)
