(** Two-generation garbage collector (RPython's incminimark, simplified).

    Objects are allocated into a nursery; when the nursery budget is
    exceeded a {e minor collection} traces the registered roots (VM
    frames, globals, JIT executor registers) plus the remembered set, and
    survivors age and are eventually promoted to the old generation.  A
    {e major collection} runs a full mark-sweep when the old generation
    has grown enough.  Collection work is charged to the machine engine
    under the [Gc_minor]/[Gc_major] phases, so GC time shows up in the
    phase breakdowns exactly as in the paper (Figures 2–4, Q4).

    The collector performs {e real} reachability tracing over the object
    graph; the escape analysis in the JIT optimizer genuinely removes
    allocations, so reduced GC pressure under JIT-compiled code (Fig. 3)
    is an emergent effect. *)

type t

type stats = {
  minor_collections : int;
  major_collections : int;
  allocated_objects : int;
  allocated_words : int;
  promoted_objects : int;
  freed_objects : int;
}

val create : Mtj_machine.Engine.t -> Mtj_core.Config.t -> t

val alloc : t -> Value.payload -> Value.obj
(** Allocate a heap object; may trigger collections first. *)

val obj : t -> Value.payload -> Value.t
(** [alloc] wrapped as a {!Value.t}. *)

val grow : t -> Value.obj -> unit
(** Recompute an object's footprint after its payload grew (list resize,
    dict rehash, builder growth) and account the delta as allocation. *)

val write_barrier : t -> parent:Value.obj -> child:Value.t -> unit
(** Record old-to-young pointers in the remembered set. *)

val add_root_scanner : t -> ((Value.t -> unit) -> unit) -> int
(** Register a closure that applies its argument to every root the caller
    owns; returns a handle for {!remove_root_scanner}. *)

val remove_root_scanner : t -> int -> unit

val collect_minor : t -> unit
(** Force a minor collection (normally triggered by {!alloc}). *)

val collect_major : t -> unit

val stats : t -> stats
val nursery_used : t -> int   (* words *)
val old_words : t -> int

val addr : Value.obj -> field:int -> int
(** Synthetic heap address of a field slot, for the cache model. *)
