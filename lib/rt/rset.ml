let difference_fn =
  Aot.register ~name:"BytesSetStrategy_difference_unwrapped" ~src:Aot.I
let issubset_fn =
  Aot.register ~name:"BytesSetStrategy_issubset_unwrapped" ~src:Aot.I
let union_fn = Aot.register ~name:"ObjectSetStrategy_union" ~src:Aot.I
let intersect_fn = Aot.register ~name:"ObjectSetStrategy_intersect" ~src:Aot.I

let of_obj (o : Value.obj) =
  match o.Value.payload with
  | Value.Set d -> d
  | _ -> invalid_arg "Rset.of_obj: not a set"

let length (d : Value.dict) = d.Value.num_live

let create ctx values =
  let d = Rdict.create ctx in
  let o = Gc_sim.alloc (Ctx.gc ctx) (Value.Set d) in
  List.iter (fun v -> Rdict.set ctx o d v Value.nil) values;
  o

let add ctx (o : Value.obj) v = Rdict.set ctx o (of_obj o) v Value.nil
let contains ctx d v = Rdict.contains ctx d v

(* precomputed-hash variants; see the note in rdict.mli *)
let add_h ctx (o : Value.obj) v khash =
  Rdict.set_h ctx o (of_obj o) v Value.nil khash

let contains_h ctx d v khash = Rdict.contains_h ctx d v khash
let remove ctx (o : Value.obj) v = Rdict.delete ctx (of_obj o) v
let elements (d : Value.dict) = Rdict.keys d

let difference ctx (a : Value.obj) (b : Value.obj) =
  Aot.call ctx difference_fn @@ fun () ->
  let da = of_obj a and db = of_obj b in
  let keep =
    List.filter (fun v -> not (contains ctx db v)) (elements da)
  in
  create ctx keep

let union ctx (a : Value.obj) (b : Value.obj) =
  Aot.call ctx union_fn @@ fun () ->
  create ctx (elements (of_obj a) @ elements (of_obj b))

let intersection ctx (a : Value.obj) (b : Value.obj) =
  Aot.call ctx intersect_fn @@ fun () ->
  let db = of_obj b in
  create ctx (List.filter (fun v -> contains ctx db v) (elements (of_obj a)))

let issubset ctx (a : Value.obj) (b : Value.obj) =
  Aot.call ctx issubset_fn @@ fun () ->
  let db = of_obj b in
  List.for_all (fun v -> contains ctx db v) (elements (of_obj a))
