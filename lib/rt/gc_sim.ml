open Mtj_core
module Engine = Mtj_machine.Engine

type stats = {
  minor_collections : int;
  major_collections : int;
  allocated_objects : int;
  allocated_words : int;
  promoted_objects : int;
  freed_objects : int;
}

type t = {
  engine : Engine.t;
  cfg : Config.t;
  mutable nursery : Value.obj list;
  mutable nursery_words : int;
  mutable old_objs : Value.obj list;
  mutable old_words : int;
  mutable old_words_high : int;   (* old size after the last major GC *)
  mutable remembered : Value.obj list;
  mutable scanners : (int * ((Value.t -> unit) -> unit)) list;
  mutable next_scanner : int;
  mutable next_uid : int;
  mutable s : stats;
  mutable collecting : bool;  (* re-entrancy guard *)
}

let create engine cfg =
  {
    engine;
    cfg;
    nursery = [];
    nursery_words = 0;
    old_objs = [];
    old_words = 0;
    old_words_high = 4 * 1024;
    remembered = [];
    scanners = [];
    next_scanner = 0;
    next_uid = 1;
    s =
      {
        minor_collections = 0;
        major_collections = 0;
        allocated_objects = 0;
        allocated_words = 0;
        promoted_objects = 0;
        freed_objects = 0;
      };
    collecting = false;
  }

let header_words = 2
let addr (o : Value.obj) ~field = (o.Value.uid lsl 8) lor ((field land 15) lsl 3)

(* --- tracing --- *)

let payload_children (p : Value.payload) (visit : Value.t -> unit) =
  match p with
  | Value.Instance i ->
      visit (Value.of_obj i.Value.cls);
      Array.iter visit i.Value.fields
  | Value.Class c ->
      List.iter (fun (_, v) -> visit v) c.Value.attrs;
      Option.iter (fun p -> visit (Value.of_obj p)) c.Value.parent
  | Value.List l -> (
      match l.Value.strategy with
      | Value.S_obj s ->
          for i = 0 to s.len - 1 do
            visit s.objs.(i)
          done
      | Value.S_empty | Value.S_int _ | Value.S_float _ | Value.S_str _ -> ())
  | Value.Dict d | Value.Set d ->
      for i = 0 to d.Value.num_entries - 1 do
        let e = d.Value.entries.(i) in
        if e.Value.live then begin
          visit e.Value.key;
          visit e.Value.dval
        end
      done
  | Value.Tuple a -> Array.iter visit a
  | Value.Func f -> Array.iter visit f.Value.captured
  | Value.Method m ->
      visit m.receiver;
      visit (Value.of_obj m.func)
  | Value.Cell c -> visit c.cell
  | Value.Bigint _ | Value.Strbuilder _ | Value.Range _ -> ()

(* Generic mark from roots.  [follow_old] controls whether marking
   descends into old-generation objects (true for major collections). *)
let mark t ~follow_old ~extra_roots =
  let marked = ref [] in
  let stack = ref [] in
  let visit v =
    if Value.is_obj v then begin
      let o = Value.to_obj_unchecked v in
      if (not o.Value.gc_mark) && (follow_old || o.Value.gc_gen = 0) then begin
        o.Value.gc_mark <- true;
        marked := o :: !marked;
        stack := o :: !stack
      end
    end
  in
  List.iter (fun (_, scan) -> scan visit) t.scanners;
  List.iter visit extra_roots;
  (* remembered set: old objects that may point to young ones; their
     children are roots for a minor collection *)
  if not follow_old then
    List.iter (fun o -> payload_children o.Value.payload visit) t.remembered;
  let visited = ref 0 in
  let rec drain () =
    match !stack with
    | [] -> ()
    | o :: rest ->
        stack := rest;
        incr visited;
        payload_children o.Value.payload visit;
        drain ()
  in
  drain ();
  (!marked, !visited)

let has_young_child (o : Value.obj) =
  let found = ref false in
  payload_children o.Value.payload (fun v ->
      if Value.is_obj v && (Value.to_obj_unchecked v).Value.gc_gen = 0 then
        found := true);
  !found

(* After a collection the remembered set is rebuilt from the old objects
   that still reference young ones (the previous set plus anything just
   promoted); dropping them would let live young objects be miscounted as
   dead at the next minor collection. *)
let rebuild_remembered t candidates =
  List.iter (fun (o : Value.obj) -> o.Value.remembered <- false) candidates;
  t.remembered <- [];
  List.iter
    (fun (o : Value.obj) ->
      if (not o.Value.remembered) && has_young_child o then begin
        o.Value.remembered <- true;
        t.remembered <- o :: t.remembered
      end)
    candidates

let scan_cost = Cost.make ~alu:10 ~load:8 ~store:4 ()

(* constant charge records for the per-event paths, interned once *)
let collection_entry_cost = Cost.make ~alu:900 ~load:400 ~store:400 ~other:300 ()
let alloc_cost = Cost.make ~alu:4 ~store:4 ~other:2 ()
let barrier_cost = Cost.make ~alu:1 ~store:1 ()

let charge_collection t ~visited ~promoted_words ~freed =
  let eng = t.engine in
  Engine.emit eng collection_entry_cost;
  (* per-object scanning loop: predictable branches, dense code *)
  for i = 0 to (visited / 4) - 1 do
    Engine.branch eng ~site:900_001 ~taken:(i mod 16 <> 15)
  done;
  Engine.emit eng (Cost.scale (float_of_int visited) scan_cost);
  if promoted_words > 0 then
    Engine.emit eng (Cost.make ~store:promoted_words ~load:promoted_words ());
  if freed > 0 then Engine.emit eng (Cost.make ~alu:freed ())

let collect_minor t =
  if not t.collecting then begin
    t.collecting <- true;
    Fun.protect ~finally:(fun () -> t.collecting <- false) @@ fun () ->
    Engine.in_phase t.engine Phase.Gc_minor @@ fun () ->
    let marked, visited = mark t ~follow_old:false ~extra_roots:[] in
    let survivors = ref [] in
    let survivor_words = ref 0 in
    let promoted_words = ref 0 in
    let promoted = ref 0 in
    let promoted_objs = ref [] in
    let freed = ref 0 in
    List.iter
      (fun (o : Value.obj) ->
        if o.Value.gc_mark then begin
          o.Value.gc_age <- o.Value.gc_age + 1;
          if o.Value.gc_age >= 2 then begin
            (* promote *)
            o.Value.gc_gen <- 1;
            t.old_objs <- o :: t.old_objs;
            t.old_words <- t.old_words + o.Value.words;
            promoted_words := !promoted_words + o.Value.words;
            promoted_objs := o :: !promoted_objs;
            incr promoted
          end
          else begin
            survivors := o :: !survivors;
            survivor_words := !survivor_words + o.Value.words
          end
        end
        else incr freed)
      t.nursery;
    List.iter (fun (o : Value.obj) -> o.Value.gc_mark <- false) marked;
    t.nursery <- !survivors;
    t.nursery_words <- !survivor_words;
    rebuild_remembered t (List.rev_append !promoted_objs t.remembered);
    t.s <-
      {
        t.s with
        minor_collections = t.s.minor_collections + 1;
        promoted_objects = t.s.promoted_objects + !promoted;
        freed_objects = t.s.freed_objects + !freed;
      };
    charge_collection t ~visited ~promoted_words:!promoted_words ~freed:!freed
  end

let collect_major t =
  if not t.collecting then begin
    t.collecting <- true;
    Fun.protect ~finally:(fun () -> t.collecting <- false) @@ fun () ->
    Engine.in_phase t.engine Phase.Gc_major @@ fun () ->
    let marked, visited = mark t ~follow_old:true ~extra_roots:[] in
    let keep_old = ref [] and old_words = ref 0 in
    let freed = ref 0 in
    List.iter
      (fun (o : Value.obj) ->
        if o.Value.gc_mark then begin
          keep_old := o :: !keep_old;
          old_words := !old_words + o.Value.words
        end
        else incr freed)
      t.old_objs;
    let keep_young = ref [] and young_words = ref 0 in
    List.iter
      (fun (o : Value.obj) ->
        if o.Value.gc_mark then begin
          keep_young := o :: !keep_young;
          young_words := !young_words + o.Value.words
        end
        else incr freed)
      t.nursery;
    List.iter (fun (o : Value.obj) -> o.Value.gc_mark <- false) marked;
    t.old_objs <- !keep_old;
    t.old_words <- !old_words;
    t.nursery <- !keep_young;
    t.nursery_words <- !young_words;
    t.old_words_high <- max (4 * 1024) t.old_words;
    rebuild_remembered t t.old_objs;
    t.s <-
      {
        t.s with
        major_collections = t.s.major_collections + 1;
        freed_objects = t.s.freed_objects + !freed;
      };
    charge_collection t ~visited ~promoted_words:0 ~freed:!freed
  end

let maybe_collect t =
  if t.nursery_words > t.cfg.Config.nursery_words then collect_minor t;
  if
    float_of_int t.old_words
    > t.cfg.Config.major_growth *. float_of_int t.old_words_high
  then collect_major t

let alloc t payload =
  maybe_collect t;
  let words = header_words + Value.payload_words payload in
  let o =
    {
      Value.uid = t.next_uid;
      payload;
      gc_gen = 0;
      gc_age = 0;
      gc_mark = false;
      remembered = false;
      words;
    }
  in
  t.next_uid <- t.next_uid + 1;
  t.nursery <- o :: t.nursery;
  t.nursery_words <- t.nursery_words + words;
  t.s <-
    {
      t.s with
      allocated_objects = t.s.allocated_objects + 1;
      allocated_words = t.s.allocated_words + words;
    };
  (* bump-pointer allocation plus the amortized slow path *)
  Engine.emit t.engine alloc_cost;
  o

let obj t payload = Value.of_obj (alloc t payload)

let grow t (o : Value.obj) =
  let words = header_words + Value.payload_words o.Value.payload in
  let delta = words - o.Value.words in
  if delta <> 0 then begin
    o.Value.words <- words;
    if o.Value.gc_gen = 0 then t.nursery_words <- t.nursery_words + delta
    else t.old_words <- t.old_words + delta;
    if delta > 0 then begin
      t.s <- { t.s with allocated_words = t.s.allocated_words + delta };
      Engine.emit t.engine
        (Cost.make ~load:(min delta 64) ~store:(min delta 64) ())
    end
  end

let write_barrier t ~parent ~child =
  if
    Value.is_obj child
    && parent.Value.gc_gen = 1
    && (Value.to_obj_unchecked child).Value.gc_gen = 0
    && not parent.Value.remembered
  then begin
    parent.Value.remembered <- true;
    t.remembered <- parent :: t.remembered;
    Engine.emit t.engine barrier_cost
  end

let add_root_scanner t scan =
  let id = t.next_scanner in
  t.next_scanner <- id + 1;
  t.scanners <- (id, scan) :: t.scanners;
  id

let remove_root_scanner t id =
  t.scanners <- List.filter (fun (i, _) -> i <> id) t.scanners

let stats t = t.s
let nursery_used t = t.nursery_words
let old_words t = t.old_words
