(** Array pool: free lists of equal-length arrays, bucketed by exact
    length.

    Backs the per-context frame pools — interpreter frames die in LIFO
    order at a very high rate, and their locals/stack arrays are the
    dominant host allocation of the dispatch loop.  Buckets are keyed by
    EXACT length (not a size class rounded up) because frame code relies
    on [Array.length f.locals = nlocals] to recover the local count.

    Reuse contract: {!release} re-fills the array with the pool's
    default element before shelving it, so an acquired array is
    indistinguishable from a fresh [Array.make n default] — no stale
    values leak between frames, and the host GC cannot be kept from
    collecting values the simulation has dropped.  Callers must not
    touch an array after releasing it.

    A disabled pool ([enabled = false]) degrades to plain allocation:
    {!acquire} is [Array.make] and {!release} a no-op, so call sites
    stay unconditional and the [--frame-pool off] mode exercises the
    exact same code path minus the free lists. *)

type 'a t = {
  default : 'a;
  max_len : int;  (* lengths above this are never pooled *)
  buckets : 'a array list array;  (* index = array length, 0..max_len *)
  enabled : bool;
  stats : Hstats.t;
}

let create ?(max_len = 64) ~enabled ~stats default =
  { default; max_len; buckets = Array.make (max_len + 1) []; enabled; stats }

let enabled t = t.enabled

let acquire t n =
  if t.enabled && n <= t.max_len then
    match t.buckets.(n) with
    | arr :: rest ->
        t.buckets.(n) <- rest;
        t.stats.Hstats.frame_pool_reuses <-
          t.stats.Hstats.frame_pool_reuses + 1;
        arr
    | [] -> Array.make n t.default
  else Array.make n t.default

let release t arr =
  if t.enabled then begin
    let n = Array.length arr in
    if n <= t.max_len then begin
      Array.fill arr 0 n t.default;
      t.buckets.(n) <- arr :: t.buckets.(n)
    end
  end
