type t = {
  tags : int array;       (* sets * ways; -1 = invalid *)
  lru : int array;        (* per-line last-use stamp *)
  sets_mask : int;
  ways : int;
  line_bits : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(sets_bits = 9) ?(ways = 4) ?(line_bits = 6) () =
  let sets = 1 lsl sets_bits in
  {
    tags = Array.make (sets * ways) (-1);
    lru = Array.make (sets * ways) 0;
    sets_mask = sets - 1;
    ways;
    line_bits;
    clock = 0;
    hits = 0;
    misses = 0;
  }

(* allocation-free lookup: way index or -1, no option box on the hot
   hit path *)
let[@inline] find_way t ~base ~line =
  let rec go i =
    if i >= t.ways then -1
    else if t.tags.(base + i) = line then i
    else go (i + 1)
  in
  go 0

(* least-recently-used way, as a plain accumulator loop (no ref cell) *)
let victim_way t ~base =
  let rec go i best =
    if i >= t.ways then best
    else go (i + 1) (if t.lru.(base + i) < t.lru.(base + best) then i else best)
  in
  go 1 0

let[@inline] access t ~addr =
  let line = addr lsr t.line_bits in
  let set = line land t.sets_mask in
  let base = set * t.ways in
  t.clock <- t.clock + 1;
  let i = find_way t ~base ~line in
  if i >= 0 then begin
    t.lru.(base + i) <- t.clock;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    let v = victim_way t ~base in
    t.tags.(base + v) <- line;
    t.lru.(base + v) <- t.clock;
    t.misses <- t.misses + 1;
    false
  end

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0

let hits t = t.hits
let misses t = t.misses
