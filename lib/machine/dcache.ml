type t = {
  tags : int array;       (* sets * ways; -1 = invalid *)
  lru : int array;        (* per-line last-use stamp *)
  sets_mask : int;
  ways : int;
  line_bits : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(sets_bits = 9) ?(ways = 4) ?(line_bits = 6) () =
  let sets = 1 lsl sets_bits in
  {
    tags = Array.make (sets * ways) (-1);
    lru = Array.make (sets * ways) 0;
    sets_mask = sets - 1;
    ways;
    line_bits;
    clock = 0;
    hits = 0;
    misses = 0;
  }

let access t ~addr =
  let line = addr lsr t.line_bits in
  let set = line land t.sets_mask in
  let base = set * t.ways in
  t.clock <- t.clock + 1;
  let rec find i =
    if i >= t.ways then None
    else if t.tags.(base + i) = line then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
      t.lru.(base + i) <- t.clock;
      t.hits <- t.hits + 1;
      true
  | None ->
      (* evict least-recently-used way *)
      let victim = ref 0 in
      for i = 1 to t.ways - 1 do
        if t.lru.(base + i) < t.lru.(base + !victim) then victim := i
      done;
      t.tags.(base + !victim) <- line;
      t.lru.(base + !victim) <- t.clock;
      t.misses <- t.misses + 1;
      false

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0;
  t.clock <- 0;
  t.hits <- 0;
  t.misses <- 0

let hits t = t.hits
let misses t = t.misses
