(** The execution target.

    Every VM in this reproduction — reference interpreters, the
    RPython-style interpreter, JIT-compiled trace code, the GC, the
    blackhole deoptimizer, native baselines — performs its semantic work
    in OCaml and charges the corresponding machine work here: instruction
    bundles, individual branch events (fed to the predictor), heap
    accesses (fed to the cache model) and zero-cost cross-layer
    annotations (delivered to listeners, playing the role of the paper's
    PinTool intercepting tagged [nop]s).

    Cycle model: a bundle of [n] instructions issued under phase [p]
    costs [n / width(p)] cycles; a mispredicted branch adds a fixed
    pipeline-flush penalty; a cache miss adds a fixed stall.  Widths for
    interpreter-style phases come from the running VM's {!Mtj_core.Profile};
    widths for JIT/GC/blackhole phases are properties of that code style. *)

exception Budget_exhausted
(** Raised when the configured instruction budget is reached; the harness
    catches it to end a run (the paper runs each benchmark for a fixed
    10 B instructions). *)

type t

type listener = insns:int -> Mtj_core.Annot.t -> unit
(** Called for every annotation with the current total instruction count. *)

val create : ?config:Mtj_core.Config.t -> unit -> t

val set_interp_width : t -> float -> unit
(** Install the effective issue width used while in the [Interpreter],
    [Tracing] and [Native] phases (from the VM's profile). *)

(* --- charging work --- *)

val emit : t -> Mtj_core.Cost.t -> unit
(** Charge a bundle of non-branch instructions to the current phase. *)

val emit_static : t -> Mtj_core.Cost.t array -> lo:int -> hi:int -> unit
(** [emit_static t costs ~lo ~hi] charges the preinterned bundles
    [costs.(lo) .. costs.(hi - 1)] in order, exactly as the equivalent
    sequence of {!emit} calls would (same per-bundle cycle arithmetic,
    same per-bundle budget check, so [Budget_exhausted] raises at the
    identical bundle).  This is the block API for dispatch loops and the
    trace executor, whose per-opcode costs are interned in code tables
    at compile time.  Raises [Invalid_argument] when [lo < 0],
    [hi > Array.length costs] or [lo > hi]. *)

val branch : t -> site:int -> taken:bool -> unit
(** A conditional branch at code site [site]. *)

val branch_indirect : t -> site:int -> target:int -> unit
(** An indirect branch (dispatch, call_assembler, virtual call). *)

val mem_access : t -> addr:int -> write:bool -> unit
(** A heap access: charges one load or store instruction and consults the
    data-cache model. *)

(* --- phases --- *)

val push_phase : t -> Mtj_core.Phase.t -> unit
val pop_phase : t -> unit
val current_phase : t -> Mtj_core.Phase.t
val in_phase : t -> Mtj_core.Phase.t -> (unit -> 'a) -> 'a
(** [in_phase t p f] runs [f] with [p] pushed, popping even on exception. *)

(* --- annotations / instrumentation --- *)

val annot : t -> Mtj_core.Annot.t -> unit
(** Emit a cross-layer annotation (zero machine cost). *)

val add_listener : t -> listener -> unit
(** Attach [l]; it is delivered before previously attached listeners.

    Contract: attachment is RARE (harness/tool setup), delivery is the
    HOT path (every annotation).  Listeners are kept in a capacity-
    doubled buffer so attaching is amortized O(1) and delivery is a tight
    array scan with no per-annotation allocation.  Listeners must not
    attach further listeners from inside a delivery. *)

(* --- observation --- *)

val total_insns : t -> int
val total_cycles : t -> float
val counters : t -> Counters.t

val charge_flushes : t -> int
(** Writebacks of the staged counter state (see {!Counters.charge_flushes}). *)

val fast_path_bundles : t -> int
(** Bundles charged through the staged fast path (see
    {!Counters.fast_path_bundles}). *)

val config : t -> Mtj_core.Config.t
val predictor : t -> Predictor.t
val dcache : t -> Dcache.t
