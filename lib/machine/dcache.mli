(** Set-associative data cache model with LRU replacement.

    Fed by the explicit heap accesses performed by the runtime object
    model (field reads/writes, list elements, dictionary probes); misses
    add a fixed stall to the current phase's cycle count. *)

type t

val create : ?sets_bits:int -> ?ways:int -> ?line_bits:int -> unit -> t

val access : t -> addr:int -> bool
(** Touch [addr]; returns [true] on hit.  A miss fills the line. *)

val reset : t -> unit
val hits : t -> int
val misses : t -> int
