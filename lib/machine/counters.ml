open Mtj_core

type snapshot = {
  insns : int;
  cycles : float;
  branches : int;
  branch_misses : int;
  loads : int;
  stores : int;
  cache_misses : int;
}

type t = {
  insns : int array;
  cycles : float array;
  branches : int array;
  branch_misses : int array;
  loads : int array;
  stores : int array;
  cache_misses : int array;
}

let create () =
  let n = Phase.count in
  {
    insns = Array.make n 0;
    cycles = Array.make n 0.0;
    branches = Array.make n 0;
    branch_misses = Array.make n 0;
    loads = Array.make n 0;
    stores = Array.make n 0;
    cache_misses = Array.make n 0;
  }

let reset t =
  Array.fill t.insns 0 Phase.count 0;
  Array.fill t.cycles 0 Phase.count 0.0;
  Array.fill t.branches 0 Phase.count 0;
  Array.fill t.branch_misses 0 Phase.count 0;
  Array.fill t.loads 0 Phase.count 0;
  Array.fill t.stores 0 Phase.count 0;
  Array.fill t.cache_misses 0 Phase.count 0

let add_bundle t phase (c : Cost.t) ~cycles =
  let i = Phase.index phase in
  t.insns.(i) <- t.insns.(i) + Cost.total c;
  t.cycles.(i) <- t.cycles.(i) +. cycles;
  t.loads.(i) <- t.loads.(i) + c.Cost.load;
  t.stores.(i) <- t.stores.(i) + c.Cost.store

let add_branch t phase ~mispredicted ~cycles =
  let i = Phase.index phase in
  t.insns.(i) <- t.insns.(i) + 1;
  t.branches.(i) <- t.branches.(i) + 1;
  if mispredicted then t.branch_misses.(i) <- t.branch_misses.(i) + 1;
  t.cycles.(i) <- t.cycles.(i) +. cycles

let add_cache_miss t phase ~cycles =
  let i = Phase.index phase in
  t.cache_misses.(i) <- t.cache_misses.(i) + 1;
  t.cycles.(i) <- t.cycles.(i) +. cycles

let phase t p : snapshot =
  let i = Phase.index p in
  {
    insns = t.insns.(i);
    cycles = t.cycles.(i);
    branches = t.branches.(i);
    branch_misses = t.branch_misses.(i);
    loads = t.loads.(i);
    stores = t.stores.(i);
    cache_misses = t.cache_misses.(i);
  }

let total t =
  let add (a : snapshot) (s : snapshot) : snapshot =
    {
      insns = a.insns + s.insns;
      cycles = a.cycles +. s.cycles;
      branches = a.branches + s.branches;
      branch_misses = a.branch_misses + s.branch_misses;
      loads = a.loads + s.loads;
      stores = a.stores + s.stores;
      cache_misses = a.cache_misses + s.cache_misses;
    }
  in
  let zero : snapshot =
    { insns = 0; cycles = 0.0; branches = 0; branch_misses = 0; loads = 0;
      stores = 0; cache_misses = 0 }
  in
  List.fold_left (fun acc p -> add acc (phase t p)) zero Phase.all

let ipc (s : snapshot) = if s.cycles <= 0.0 then 0.0 else float_of_int s.insns /. s.cycles

let branch_mpki (s : snapshot) =
  if s.insns = 0 then 0.0
  else 1000.0 *. float_of_int s.branch_misses /. float_of_int s.insns

let branch_per_insn (s : snapshot) =
  if s.insns = 0 then 0.0
  else float_of_int s.branches /. float_of_int s.insns

let branch_miss_rate (s : snapshot) =
  if s.branches = 0 then 0.0
  else float_of_int s.branch_misses /. float_of_int s.branches
