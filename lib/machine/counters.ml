open Mtj_core

type snapshot = {
  insns : int;
  cycles : float;
  branches : int;
  branch_misses : int;
  loads : int;
  stores : int;
  cache_misses : int;
}

(* The committed per-phase tallies live in the arrays.  On top of them
   sits a one-phase staging area: the scalar [s_*] fields (plus the
   one-element [s_cycles] float array, kept as an array so stores stay
   unboxed) hold the CURRENT values for phase index [cur], and the array
   slots for [cur] are stale whenever [dirty] is set.  Every query
   flushes first, so readers never observe the split. *)
type t = {
  insns : int array;
  cycles : float array;
  branches : int array;
  branch_misses : int array;
  loads : int array;
  stores : int array;
  cache_misses : int array;
  mutable cur : int;
  mutable s_insns : int;
  mutable s_branches : int;
  mutable s_branch_misses : int;
  mutable s_loads : int;
  mutable s_stores : int;
  mutable s_cache_misses : int;
  s_cycles : float array;
  x_cycles : float array;
      (* one-cell cycle-transfer register: hot callers (Engine) store the
         freshly computed cycle delta here and call the [_x] entry
         points, instead of passing a [float] argument that ocamlopt
         (classic mode, no flambda) would box on every call — the
         dominant host allocation of the whole interpreter row before
         it was staged through this cell *)
  mutable dirty : bool;
  mutable flushes : int;
  mutable fast_bundles : int;
}

let create () =
  let n = Phase.count in
  {
    insns = Array.make n 0;
    cycles = Array.make n 0.0;
    branches = Array.make n 0;
    branch_misses = Array.make n 0;
    loads = Array.make n 0;
    stores = Array.make n 0;
    cache_misses = Array.make n 0;
    cur = 0;
    s_insns = 0;
    s_branches = 0;
    s_branch_misses = 0;
    s_loads = 0;
    s_stores = 0;
    s_cache_misses = 0;
    s_cycles = Array.make 1 0.0;
    x_cycles = Array.make 1 0.0;
    dirty = false;
    flushes = 0;
    fast_bundles = 0;
  }

let flush t =
  if t.dirty then begin
    let i = t.cur in
    t.insns.(i) <- t.s_insns;
    t.cycles.(i) <- Array.unsafe_get t.s_cycles 0;
    t.branches.(i) <- t.s_branches;
    t.branch_misses.(i) <- t.s_branch_misses;
    t.loads.(i) <- t.s_loads;
    t.stores.(i) <- t.s_stores;
    t.cache_misses.(i) <- t.s_cache_misses;
    t.dirty <- false;
    t.flushes <- t.flushes + 1
  end

(* Point the staging area at phase index [i].  The loads below are
   bounds-checked on purpose: this is the only place an out-of-range
   index could enter the staged state. *)
let[@inline] select t i =
  if i <> t.cur then begin
    flush t;
    t.cur <- i;
    t.s_insns <- t.insns.(i);
    Array.unsafe_set t.s_cycles 0 t.cycles.(i);
    t.s_branches <- t.branches.(i);
    t.s_branch_misses <- t.branch_misses.(i);
    t.s_loads <- t.loads.(i);
    t.s_stores <- t.stores.(i);
    t.s_cache_misses <- t.cache_misses.(i)
  end

let reset t =
  Array.fill t.insns 0 Phase.count 0;
  Array.fill t.cycles 0 Phase.count 0.0;
  Array.fill t.branches 0 Phase.count 0;
  Array.fill t.branch_misses 0 Phase.count 0;
  Array.fill t.loads 0 Phase.count 0;
  Array.fill t.stores 0 Phase.count 0;
  Array.fill t.cache_misses 0 Phase.count 0;
  t.cur <- 0;
  t.s_insns <- 0;
  t.s_branches <- 0;
  t.s_branch_misses <- 0;
  t.s_loads <- 0;
  t.s_stores <- 0;
  t.s_cache_misses <- 0;
  Array.unsafe_set t.s_cycles 0 0.0;
  Array.unsafe_set t.x_cycles 0 0.0;
  t.dirty <- false;
  t.flushes <- 0;
  t.fast_bundles <- 0

(* --- charging fast path (Engine passes a cached Phase.index) ---

   The staged cycle scalar is loaded from the committed array value and
   receives exactly the [+.] sequence the array slot used to receive, so
   the flushed value is bit-for-bit what unstaged charging produced. *)

let cycles_xfer t = t.x_cycles

let[@inline] add_bundle_idx_x t i ~n ~loads ~stores =
  select t i;
  t.s_insns <- t.s_insns + n;
  Array.unsafe_set t.s_cycles 0
    (Array.unsafe_get t.s_cycles 0 +. Array.unsafe_get t.x_cycles 0);
  t.s_loads <- t.s_loads + loads;
  t.s_stores <- t.s_stores + stores;
  t.dirty <- true;
  t.fast_bundles <- t.fast_bundles + 1

let[@inline] add_branch_idx_x t i ~mispredicted =
  select t i;
  t.s_insns <- t.s_insns + 1;
  t.s_branches <- t.s_branches + 1;
  if mispredicted then t.s_branch_misses <- t.s_branch_misses + 1;
  Array.unsafe_set t.s_cycles 0
    (Array.unsafe_get t.s_cycles 0 +. Array.unsafe_get t.x_cycles 0);
  t.dirty <- true

let[@inline] add_cache_miss_idx_x t i =
  select t i;
  t.s_cache_misses <- t.s_cache_misses + 1;
  Array.unsafe_set t.s_cycles 0
    (Array.unsafe_get t.s_cycles 0 +. Array.unsafe_get t.x_cycles 0);
  t.dirty <- true

(* boxing-argument variants, kept for callers off the hot path *)

let[@inline] add_bundle_idx t i ~n ~loads ~stores ~cycles =
  Array.unsafe_set t.x_cycles 0 cycles;
  add_bundle_idx_x t i ~n ~loads ~stores

let[@inline] add_branch_idx t i ~mispredicted ~cycles =
  Array.unsafe_set t.x_cycles 0 cycles;
  add_branch_idx_x t i ~mispredicted

let[@inline] add_cache_miss_idx t i ~cycles =
  Array.unsafe_set t.x_cycles 0 cycles;
  add_cache_miss_idx_x t i

(* --- legacy Phase.t entry points (kept for callers off the hot path) --- *)

let add_bundle t phase (c : Cost.t) ~cycles =
  add_bundle_idx t (Phase.index phase) ~n:(Cost.total c) ~loads:c.Cost.load
    ~stores:c.Cost.store ~cycles

let add_branch t phase ~mispredicted ~cycles =
  add_branch_idx t (Phase.index phase) ~mispredicted ~cycles

let add_cache_miss t phase ~cycles =
  add_cache_miss_idx t (Phase.index phase) ~cycles

(* --- fast-path observability --- *)

let charge_flushes t = flush t; t.flushes
let fast_path_bundles t = t.fast_bundles

(* --- queries (self-flushing, so captured handles always read exact) --- *)

let phase t p : snapshot =
  flush t;
  let i = Phase.index p in
  {
    insns = t.insns.(i);
    cycles = t.cycles.(i);
    branches = t.branches.(i);
    branch_misses = t.branch_misses.(i);
    loads = t.loads.(i);
    stores = t.stores.(i);
    cache_misses = t.cache_misses.(i);
  }

let total t =
  flush t;
  let add (a : snapshot) (s : snapshot) : snapshot =
    {
      insns = a.insns + s.insns;
      cycles = a.cycles +. s.cycles;
      branches = a.branches + s.branches;
      branch_misses = a.branch_misses + s.branch_misses;
      loads = a.loads + s.loads;
      stores = a.stores + s.stores;
      cache_misses = a.cache_misses + s.cache_misses;
    }
  in
  let zero : snapshot =
    { insns = 0; cycles = 0.0; branches = 0; branch_misses = 0; loads = 0;
      stores = 0; cache_misses = 0 }
  in
  List.fold_left (fun acc p -> add acc (phase t p)) zero Phase.all

let ipc (s : snapshot) = if s.cycles <= 0.0 then 0.0 else float_of_int s.insns /. s.cycles

let branch_mpki (s : snapshot) =
  if s.insns = 0 then 0.0
  else 1000.0 *. float_of_int s.branch_misses /. float_of_int s.insns

let branch_per_insn (s : snapshot) =
  if s.insns = 0 then 0.0
  else float_of_int s.branches /. float_of_int s.insns

let branch_miss_rate (s : snapshot) =
  if s.branches = 0 then 0.0
  else float_of_int s.branch_misses /. float_of_int s.branches
