(** Per-phase performance counters (the PAPI/perf substitute).

    Tracks instructions, cycles, branches, branch misses, loads, stores
    and cache misses, attributed to the framework phase that was current
    when the work was charged.  Derived metrics (IPC, branch MPKI, branch
    rate, miss rate) feed Table I, Table IV and the per-phase
    microarchitecture analysis. *)

type t

type snapshot = {
  insns : int;
  cycles : float;
  branches : int;
  branch_misses : int;
  loads : int;
  stores : int;
  cache_misses : int;
}

val create : unit -> t
val reset : t -> unit

(* --- charging (used by Engine) --- *)

val add_bundle : t -> Mtj_core.Phase.t -> Mtj_core.Cost.t -> cycles:float -> unit
val add_branch : t -> Mtj_core.Phase.t -> mispredicted:bool -> cycles:float -> unit
val add_cache_miss : t -> Mtj_core.Phase.t -> cycles:float -> unit

(* --- queries --- *)

val phase : t -> Mtj_core.Phase.t -> snapshot
val total : t -> snapshot
val ipc : snapshot -> float
(** instructions per cycle; 0 when no cycles elapsed *)

val branch_mpki : snapshot -> float
(** branch misses per 1000 instructions *)

val branch_per_insn : snapshot -> float
val branch_miss_rate : snapshot -> float
(** fraction of branches mispredicted *)
