(** Per-phase performance counters (the PAPI/perf substitute).

    Tracks instructions, cycles, branches, branch misses, loads, stores
    and cache misses, attributed to the framework phase that was current
    when the work was charged.  Derived metrics (IPC, branch MPKI, branch
    rate, miss rate) feed Table I, Table IV and the per-phase
    microarchitecture analysis. *)

type t

type snapshot = {
  insns : int;
  cycles : float;
  branches : int;
  branch_misses : int;
  loads : int;
  stores : int;
  cache_misses : int;
}

val create : unit -> t
val reset : t -> unit

(* --- charging (used by Engine) ---

    Charging is staged: updates for the current phase accumulate in
    scalar registers and are written back to the per-phase arrays on the
    next phase switch or query ("flush").  The staged cycle scalar is
    seeded from the committed value and receives the identical [+.]
    sequence the array slot would have, so flushed counters are
    bit-for-bit equal to unstaged per-event charging.  Every query below
    flushes first, so a captured [t] handle always reads exact values —
    there is no "pending" state observable from outside. *)

val add_bundle : t -> Mtj_core.Phase.t -> Mtj_core.Cost.t -> cycles:float -> unit
val add_branch : t -> Mtj_core.Phase.t -> mispredicted:bool -> cycles:float -> unit
val add_cache_miss : t -> Mtj_core.Phase.t -> cycles:float -> unit

(* Index-taking fast paths: [i] must be a valid [Phase.index] (the
   Engine passes its cached current-phase index).  [add_bundle_idx]
   takes the bundle pre-decomposed so callers with preinterned costs
   skip the record walk. *)

val add_bundle_idx :
  t -> int -> n:int -> loads:int -> stores:int -> cycles:float -> unit

val add_branch_idx : t -> int -> mispredicted:bool -> cycles:float -> unit
val add_cache_miss_idx : t -> int -> cycles:float -> unit

(* Unboxed cycle transfer: without flambda, every [cycles:float]
   argument above boxes a fresh float per charge — one 2-word minor
   allocation per simulated charge event, which dominated the
   interpreter row's host allocation.  Hot callers instead store the
   delta into the one-cell [cycles_xfer] array (float-array stores stay
   unboxed) and call the [_x] variants, which read it back out.  The
   accumulated values are bit-for-bit identical to the boxed path. *)

val cycles_xfer : t -> float array
(** the one-cell transfer register; cache it once, store the cycle
    delta at index 0 immediately before each [_x] call *)

val add_bundle_idx_x : t -> int -> n:int -> loads:int -> stores:int -> unit
val add_branch_idx_x : t -> int -> mispredicted:bool -> unit
val add_cache_miss_idx_x : t -> int -> unit

val flush : t -> unit
(** Write any staged updates back to the per-phase arrays.  Queries call
    this implicitly; it is exposed for explicit synchronization points
    (e.g. before handing the arrays to an external reader). *)

val charge_flushes : t -> int
(** Number of staged-state writebacks performed so far (phase switches
    and query-triggered flushes that had pending updates). *)

val fast_path_bundles : t -> int
(** Number of instruction bundles charged through the staged fast path
    (i.e. every [add_bundle]/[add_bundle_idx] call). *)

(* --- queries --- *)

val phase : t -> Mtj_core.Phase.t -> snapshot
val total : t -> snapshot
val ipc : snapshot -> float
(** instructions per cycle; 0 when no cycles elapsed *)

val branch_mpki : snapshot -> float
(** branch misses per 1000 instructions *)

val branch_per_insn : snapshot -> float
val branch_miss_rate : snapshot -> float
(** fraction of branches mispredicted *)
