(** Branch prediction model.

    Conditional branches use a gshare predictor (global history XOR branch
    site indexing a table of 2-bit saturating counters).  Indirect
    branches — interpreter dispatch, [call_assembler], virtual calls — use
    a branch target buffer that predicts the last observed target for the
    site.  This is the component that makes the paper's
    microarchitecture-level observations (Table I, Table IV) emerge from
    real control behaviour: trace code with monotone guards predicts well;
    dispatch loops with high opcode entropy do not. *)

type t

val create : ?history_bits:int -> ?table_bits:int -> ?btb_bits:int -> unit -> t

val conditional : t -> site:int -> taken:bool -> bool
(** Record a conditional branch outcome; returns [true] if the prediction
    was correct. *)

val indirect : t -> site:int -> target:int -> bool
(** Record an indirect branch to [target]; returns [true] if the BTB
    predicted that target. *)

val reset : t -> unit
